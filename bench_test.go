package rdbdyn_test

import (
	"testing"

	"rdbdyn/internal/bench"
)

// Each benchmark regenerates one paper artifact (figure or table — see
// the experiment index in DESIGN.md) per iteration. Sizes are reduced
// from the defaults so a full -bench=. sweep stays in the minutes
// range; cmd/rdbbench runs the full-size versions.

func benchReport(b *testing.B, run func() (*bench.Report, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r, err := run()
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) == 0 {
			b.Fatal("empty report")
		}
	}
}

func BenchmarkFig21(b *testing.B) {
	benchReport(b, func() (*bench.Report, error) { return bench.Fig21(128) })
}

func BenchmarkFig22(b *testing.B) {
	benchReport(b, func() (*bench.Report, error) { return bench.Fig22(128) })
}

func BenchmarkHyperbolaFit(b *testing.B) {
	benchReport(b, func() (*bench.Report, error) { return bench.HyperbolaFits(128) })
}

func BenchmarkCompetition(b *testing.B) {
	benchReport(b, bench.CompetitionCosts)
}

func BenchmarkHostVariable(b *testing.B) {
	benchReport(b, func() (*bench.Report, error) { return bench.HostVariable(20000) })
}

func BenchmarkEstimation(b *testing.B) {
	benchReport(b, func() (*bench.Report, error) { return bench.EstimationStudy(30000) })
}

func BenchmarkJscan(b *testing.B) {
	benchReport(b, func() (*bench.Report, error) { return bench.JscanStudy(20000) })
}

func BenchmarkTacticBackground(b *testing.B) {
	benchReport(b, func() (*bench.Report, error) { return bench.TacticBackground(20000) })
}

func BenchmarkTacticFastFirst(b *testing.B) {
	benchReport(b, func() (*bench.Report, error) { return bench.TacticFastFirst(20000) })
}

func BenchmarkTacticSorted(b *testing.B) {
	benchReport(b, func() (*bench.Report, error) { return bench.TacticSorted(20000) })
}

func BenchmarkTacticIndexOnly(b *testing.B) {
	benchReport(b, func() (*bench.Report, error) { return bench.TacticIndexOnly(20000) })
}

func BenchmarkGoalInference(b *testing.B) {
	benchReport(b, bench.GoalInference)
}

func BenchmarkHybridContainer(b *testing.B) {
	benchReport(b, bench.HybridContainer)
}

func BenchmarkUnionScan(b *testing.B) {
	benchReport(b, func() (*bench.Report, error) { return bench.UnionScan(20000) })
}

func BenchmarkAblations(b *testing.B) {
	benchReport(b, func() (*bench.Report, error) { return bench.Ablations(20000) })
}

func BenchmarkInterference(b *testing.B) {
	benchReport(b, func() (*bench.Report, error) { return bench.Interference(20000) })
}

func BenchmarkHistogramBaseline(b *testing.B) {
	benchReport(b, func() (*bench.Report, error) { return bench.HistogramBaseline(30000) })
}

func BenchmarkSamplerComparison(b *testing.B) {
	benchReport(b, func() (*bench.Report, error) { return bench.SamplerComparison(30000) })
}
