// Package rdbdyn is a from-scratch Go reproduction of Gennady
// Antoshenkov's "Dynamic Query Optimization in Rdb/VMS" (ICDE 1993):
// the competition-based dynamic optimizer for single-table access, its
// selectivity-distribution theory, and the storage substrate it needs.
//
// The public surface lives in internal/engine (database façade),
// internal/core (the dynamic optimizer), internal/dist (the Section 2
// selectivity calculus), and internal/competition (the Section 3 cost
// model). See README.md for the architecture overview, DESIGN.md for
// the system inventory and experiment index, and EXPERIMENTS.md for
// paper-vs-measured results.
package rdbdyn
