package storage

import "sync"

// Disk simulates a disk: a set of files, each an append-only sequence of
// pages. Reads and writes at this level are what the IOStats counters
// measure; all access from executors goes through a BufferPool, which
// calls down here only on misses and write-backs.
//
// For efficiency the simulated disk hands out page pointers rather than
// copies. The buffer pool and disk therefore share page storage, and a
// "write" is purely an accounting event. This preserves the paper's cost
// shape (number of physical I/Os) without byte-level copying.
type Disk struct {
	mu       sync.Mutex
	files    map[FileID][]*Page
	nextFile FileID
	pageSize int
}

// NewDisk creates an empty disk whose pages carry the given byte budget
// (DefaultPageSize if size <= 0).
func NewDisk(pageSize int) *Disk {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	return &Disk{files: make(map[FileID][]*Page), pageSize: pageSize}
}

// PageSize returns the byte budget of pages on this disk.
func (d *Disk) PageSize() int { return d.pageSize }

// CreateFile allocates a new empty file and returns its ID.
func (d *Disk) CreateFile() FileID {
	d.mu.Lock()
	defer d.mu.Unlock()
	id := d.nextFile
	d.nextFile++
	d.files[id] = nil
	return id
}

// DropFile removes a file and all its pages.
func (d *Disk) DropFile(id FileID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.files[id]; !ok {
		return ErrNoSuchFile
	}
	delete(d.files, id)
	return nil
}

// AllocPage appends a fresh page to the file and returns it. The new
// page is considered resident (the caller typically registers it with
// the buffer pool); allocation itself is not charged as an I/O.
func (d *Disk) AllocPage(id FileID) (*Page, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	pages, ok := d.files[id]
	if !ok {
		return nil, ErrNoSuchFile
	}
	p := NewPage(PageID{File: id, No: PageNo(len(pages))}, d.pageSize)
	d.files[id] = append(pages, p)
	return p, nil
}

// NumPages returns the number of pages in the file, or 0 for unknown
// files.
func (d *Disk) NumPages(id FileID) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.files[id])
}

// read fetches a page from the simulated platter. Only the buffer pool
// calls this.
func (d *Disk) read(id PageID) (*Page, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	pages, ok := d.files[id.File]
	if !ok || int(id.No) >= len(pages) {
		return nil, ErrNoSuchPage
	}
	return pages[id.No], nil
}
