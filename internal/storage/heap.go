package storage

import "sync/atomic"

// HeapFile stores table records in page-append order. It remembers the
// last page with free space so bulk loads fill pages densely; there is
// no free-space map, matching the simple heap organization the paper's
// Tscan and record-fetch costs assume.
//
// Mutating methods (Insert, Delete) must be serialized by the caller —
// the catalog serializes them per table. Read paths (Get, Cursor) are
// safe to run concurrently with each other.
type HeapFile struct {
	pool *BufferPool
	file FileID
	// lastPage caches the page currently receiving inserts.
	lastPage PageNo
	havePage bool
	count    atomic.Int64
}

// NewHeapFile creates a heap file on a fresh disk file.
func NewHeapFile(pool *BufferPool) *HeapFile {
	return &HeapFile{pool: pool, file: pool.Disk().CreateFile()}
}

// File returns the underlying disk file ID.
func (h *HeapFile) File() FileID { return h.file }

// NumPages returns the number of pages in the heap.
func (h *HeapFile) NumPages() int { return h.pool.Disk().NumPages(h.file) }

// Count returns the number of live records inserted (minus deletions).
func (h *HeapFile) Count() int64 { return h.count.Load() }

// Insert appends rec and returns its RID.
func (h *HeapFile) Insert(rec []byte) (RID, error) { return h.InsertTracked(rec, nil) }

// InsertTracked is Insert charging buffer-pool traffic to tr.
func (h *HeapFile) InsertTracked(rec []byte, tr *Tracker) (RID, error) {
	if h.havePage {
		id := PageID{File: h.file, No: h.lastPage}
		p, err := h.pool.GetTracked(id, tr)
		if err != nil {
			return RID{}, err
		}
		// Mark dirty only on success: a full page probed and left alone
		// must not be charged a write-back.
		if slot, err := p.Insert(rec); err == nil {
			h.pool.MarkDirty(id)
			h.count.Add(1)
			return RID{Page: id, Slot: slot}, nil
		} else if err != ErrPageFull {
			return RID{}, err
		}
	}
	p, err := h.pool.NewPageTracked(h.file, tr)
	if err != nil {
		return RID{}, err
	}
	slot, err := p.Insert(rec)
	if err != nil {
		return RID{}, err
	}
	h.lastPage = p.ID.No
	h.havePage = true
	h.count.Add(1)
	return RID{Page: p.ID, Slot: slot}, nil
}

// Get fetches the record at rid through the buffer pool.
func (h *HeapFile) Get(rid RID) ([]byte, error) { return h.GetTracked(rid, nil) }

// GetTracked is Get charging the page fetch to tr.
func (h *HeapFile) GetTracked(rid RID, tr *Tracker) ([]byte, error) {
	p, err := h.pool.GetTracked(rid.Page, tr)
	if err != nil {
		return nil, err
	}
	return p.Get(rid.Slot)
}

// Delete tombstones the record at rid.
func (h *HeapFile) Delete(rid RID) error {
	p, err := h.pool.GetDirty(rid.Page)
	if err != nil {
		return err
	}
	if err := p.Delete(rid.Slot); err != nil {
		return err
	}
	h.count.Add(-1)
	return nil
}

// Cursor returns a sequential scan cursor positioned before the first
// record. This is the physical engine under Tscan.
func (h *HeapFile) Cursor() *HeapCursor {
	return &HeapCursor{heap: h, page: 0, slot: -1}
}

// CursorTracked is Cursor charging every page fetch to tr.
func (h *HeapFile) CursorTracked(tr *Tracker) *HeapCursor {
	return &HeapCursor{heap: h, page: 0, slot: -1, tr: tr}
}

// HeapCursor iterates records in physical (page, slot) order. It pins
// its current page and unpins it on page transitions, exhaustion, or
// Close; callers abandoning the cursor early must Close it.
type HeapCursor struct {
	heap   *HeapFile
	page   PageNo
	slot   int
	cur    *Page
	pinned bool
	tr     *Tracker
}

// Next advances to the next live record. It returns the record, its
// RID, and false when the scan is exhausted.
func (c *HeapCursor) Next() ([]byte, RID, bool, error) {
	n := PageNo(c.heap.NumPages())
	for c.page < n {
		if c.cur == nil || c.cur.ID.No != c.page {
			p, err := c.heap.pool.GetTracked(PageID{File: c.heap.file, No: c.page}, c.tr)
			if err != nil {
				return nil, RID{}, false, err
			}
			c.unpin()
			c.cur = p
			c.heap.pool.Pin(p.ID)
			c.pinned = true
		}
		c.slot++
		for c.slot < c.cur.NumSlots() {
			rec, err := c.cur.Get(uint16(c.slot))
			if err == nil {
				return rec, RID{Page: c.cur.ID, Slot: uint16(c.slot)}, true, nil
			}
			c.slot++ // tombstone
		}
		c.page++
		c.slot = -1
	}
	c.unpin()
	return nil, RID{}, false, nil
}

func (c *HeapCursor) unpin() {
	if c.pinned {
		c.heap.pool.Unpin(c.cur.ID)
		c.pinned = false
	}
}

// Close releases the cursor's page pin. Idempotent; an exhausted cursor
// has already unpinned itself.
func (c *HeapCursor) Close() {
	c.unpin()
	c.page = PageNo(c.heap.NumPages())
	c.slot = -1
}

// PagesRemaining reports how many pages the cursor has not yet entered.
// Competition uses it to project the remaining Tscan cost.
func (c *HeapCursor) PagesRemaining() int {
	n := c.heap.NumPages()
	done := int(c.page)
	if done > n {
		done = n
	}
	return n - done
}
