package storage

import "sync/atomic"

// HeapFile stores table records in page-append order. It remembers the
// last page with free space so bulk loads fill pages densely; there is
// no free-space map, matching the simple heap organization the paper's
// Tscan and record-fetch costs assume.
//
// Mutating methods (Insert, Delete) must be serialized by the caller —
// the catalog serializes them per table. Read paths (Get, Cursor) are
// safe to run concurrently with each other.
type HeapFile struct {
	pool *BufferPool
	file FileID
	// lastPage caches the page currently receiving inserts.
	lastPage PageNo
	havePage bool
	count    atomic.Int64
}

// NewHeapFile creates a heap file on a fresh disk file.
func NewHeapFile(pool *BufferPool) *HeapFile {
	return &HeapFile{pool: pool, file: pool.Disk().CreateFile()}
}

// File returns the underlying disk file ID.
func (h *HeapFile) File() FileID { return h.file }

// NumPages returns the number of pages in the heap.
func (h *HeapFile) NumPages() int { return h.pool.Disk().NumPages(h.file) }

// Count returns the number of live records inserted (minus deletions).
func (h *HeapFile) Count() int64 { return h.count.Load() }

// Insert appends rec and returns its RID.
func (h *HeapFile) Insert(rec []byte) (RID, error) { return h.InsertTracked(rec, nil) }

// InsertTracked is Insert charging buffer-pool traffic to tr.
func (h *HeapFile) InsertTracked(rec []byte, tr *Tracker) (RID, error) {
	if h.havePage {
		id := PageID{File: h.file, No: h.lastPage}
		p, err := h.pool.GetTracked(id, tr)
		if err != nil {
			return RID{}, err
		}
		// Mark dirty only on success: a full page probed and left alone
		// must not be charged a write-back.
		if slot, err := p.Insert(rec); err == nil {
			h.pool.MarkDirty(id)
			h.count.Add(1)
			return RID{Page: id, Slot: slot}, nil
		} else if err != ErrPageFull {
			return RID{}, err
		}
	}
	p, err := h.pool.NewPageTracked(h.file, tr)
	if err != nil {
		return RID{}, err
	}
	slot, err := p.Insert(rec)
	if err != nil {
		return RID{}, err
	}
	h.lastPage = p.ID.No
	h.havePage = true
	h.count.Add(1)
	return RID{Page: p.ID, Slot: slot}, nil
}

// InsertBatchTracked appends recs in order, returning their RIDs
// appended to out (on error, out holds the RIDs inserted so far). The
// buffer-pool charges are exactly what a per-record InsertTracked loop
// would produce: every record probes the active page once (the first
// probe of a run is a real Get — hit or miss — and the rest are
// credited as hits, since the page cannot leave the pool between
// probes), a record that overflows the page still pays its probe before
// landing on a fresh page, and each touched page is marked dirty. Only
// the governor check coarsens: once per page run instead of per record.
func (h *HeapFile) InsertBatchTracked(recs [][]byte, tr *Tracker, out []RID) ([]RID, error) {
	for i := 0; i < len(recs); {
		if h.havePage {
			id := PageID{File: h.file, No: h.lastPage}
			p, err := h.pool.GetTracked(id, tr)
			if err != nil {
				return out, err
			}
			first, n, serr := p.InsertBatch(recs[i:])
			for s := 0; s < n; s++ {
				out = append(out, RID{Page: id, Slot: first + uint16(s)})
			}
			if n > 0 {
				h.count.Add(int64(n))
				h.pool.MarkDirty(id)
			}
			// Every record probes the active page once: the first probe is
			// the real GetTracked above, each later record's probe is a hit,
			// and the record that stopped the run (overflow or too big)
			// still paid its probe before failing.
			hits := n - 1
			if i+n < len(recs) {
				hits = n
			}
			h.pool.ChargeHits(hits, tr)
			if serr != nil {
				return out, serr
			}
			i += n
			if i >= len(recs) {
				return out, nil
			}
		}
		// Land recs[i] on a fresh page, which becomes the active page.
		p, err := h.pool.NewPageTracked(h.file, tr)
		if err != nil {
			return out, err
		}
		slot, err := p.Insert(recs[i])
		if err != nil {
			return out, err
		}
		h.lastPage = p.ID.No
		h.havePage = true
		h.count.Add(1)
		out = append(out, RID{Page: p.ID, Slot: slot})
		i++
	}
	return out, nil
}

// Get fetches the record at rid through the buffer pool.
func (h *HeapFile) Get(rid RID) ([]byte, error) { return h.GetTracked(rid, nil) }

// GetTracked is Get charging the page fetch to tr.
func (h *HeapFile) GetTracked(rid RID, tr *Tracker) ([]byte, error) {
	p, err := h.pool.GetTracked(rid.Page, tr)
	if err != nil {
		return nil, err
	}
	return p.Get(rid.Slot)
}

// GetSpanTracked fetches the page holding a clustered run of span
// records, charged as span record accesses (one potential miss plus
// span-1 hits) — exactly what span GetTracked calls on the same page
// would cost. Callers extract the individual records from the returned
// page.
func (h *HeapFile) GetSpanTracked(id PageID, span int, tr *Tracker) (*Page, error) {
	return h.pool.GetSpanTracked(id, span, tr)
}

// Delete tombstones the record at rid.
func (h *HeapFile) Delete(rid RID) error {
	p, err := h.pool.GetDirty(rid.Page)
	if err != nil {
		return err
	}
	if err := p.Delete(rid.Slot); err != nil {
		return err
	}
	h.count.Add(-1)
	return nil
}

// Cursor returns a sequential scan cursor positioned before the first
// record. This is the physical engine under Tscan.
func (h *HeapFile) Cursor() *HeapCursor {
	return &HeapCursor{heap: h, page: 0, slot: -1}
}

// CursorTracked is Cursor charging every page fetch to tr.
func (h *HeapFile) CursorTracked(tr *Tracker) *HeapCursor {
	return &HeapCursor{heap: h, page: 0, slot: -1, tr: tr}
}

// RangeCursorTracked returns a cursor over the half-open physical page
// range [start, end), charging every page fetch to tr. Partitioned
// Tscan hands each worker one contiguous range: the union of the
// workers' page fetches is exactly the sequential cursor's fetches, and
// the bounded readahead window keeps each worker's prefetch inside its
// own partition.
func (h *HeapFile) RangeCursorTracked(start, end PageNo, tr *Tracker) *HeapCursor {
	return &HeapCursor{heap: h, page: start, slot: -1, tr: tr, limit: end, bounded: true}
}

// HeapCursor iterates records in physical (page, slot) order. It pins
// its current page and unpins it on page transitions, exhaustion, or
// Close; callers abandoning the cursor early must Close it.
type HeapCursor struct {
	heap    *HeapFile
	page    PageNo
	slot    int
	cur     *Page
	pinned  bool
	tr      *Tracker
	limit   PageNo // exclusive upper page bound when bounded
	bounded bool
	ra      [heapReadahead]PageID // scratch for readahead IDs
}

// heapReadahead is the page window a sequential heap cursor stages
// ahead of its position. Staging is accounting-free (see
// BufferPool.Prefetch): the scan's simulated cost is unchanged, only
// the physical reads are overlapped.
const heapReadahead = 8

// bound returns the exclusive page number the cursor stops at: the end
// of its range partition if bounded, else the current heap size.
func (c *HeapCursor) bound() PageNo {
	n := PageNo(c.heap.NumPages())
	if c.bounded && c.limit < n {
		n = c.limit
	}
	return n
}

// Next advances to the next live record. It returns the record, its
// RID, and false when the scan is exhausted.
func (c *HeapCursor) Next() ([]byte, RID, bool, error) {
	n := c.bound()
	for c.page < n {
		if c.cur == nil || c.cur.ID.No != c.page {
			p, err := c.heap.pool.GetTracked(PageID{File: c.heap.file, No: c.page}, c.tr)
			if err != nil {
				return nil, RID{}, false, err
			}
			c.unpin()
			c.cur = p
			c.heap.pool.Pin(p.ID)
			c.pinned = true
			c.prefetchAhead(n)
		}
		c.slot++
		for c.slot < c.cur.NumSlots() {
			rec, err := c.cur.Get(uint16(c.slot))
			if err == nil {
				return rec, RID{Page: c.cur.ID, Slot: uint16(c.slot)}, true, nil
			}
			c.slot++ // tombstone
		}
		c.page++
		c.slot = -1
	}
	c.unpin()
	return nil, RID{}, false, nil
}

// prefetchAhead stages the next window of heap pages. After the first
// transition only one page per hop is actually new — Prefetch skips
// pages already staged or resident.
func (c *HeapCursor) prefetchAhead(npages PageNo) {
	end := c.page + 1 + heapReadahead
	if end > npages {
		end = npages
	}
	if end <= c.page+1 {
		return
	}
	ids := c.ra[:0]
	for no := c.page + 1; no < end; no++ {
		ids = append(ids, PageID{File: c.heap.file, No: no})
	}
	c.heap.pool.Prefetch(ids)
}

func (c *HeapCursor) unpin() {
	if c.pinned {
		c.heap.pool.Unpin(c.cur.ID)
		c.pinned = false
	}
}

// Close releases the cursor's page pin. Idempotent; an exhausted cursor
// has already unpinned itself.
func (c *HeapCursor) Close() {
	c.unpin()
	c.page = c.bound()
	c.slot = -1
}

// PagesRemaining reports how many pages the cursor has not yet entered.
// Competition uses it to project the remaining Tscan cost.
func (c *HeapCursor) PagesRemaining() int {
	n := int(c.bound())
	done := int(c.page)
	if done > n {
		done = n
	}
	return n - done
}
