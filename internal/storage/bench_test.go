package storage

import "testing"

func BenchmarkBufferPoolHit(b *testing.B) {
	d := NewDisk(8192)
	bp := NewBufferPool(d, 64)
	f := d.CreateFile()
	p, err := bp.NewPage(f)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bp.Get(p.ID); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBufferPoolMissEvict(b *testing.B) {
	d := NewDisk(8192)
	bp := NewBufferPool(d, 8)
	f := d.CreateFile()
	const pages = 64
	for i := 0; i < pages; i++ {
		if _, err := bp.NewPage(f); err != nil {
			b.Fatal(err)
		}
	}
	bp.FlushAll()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := PageID{File: f, No: PageNo(i % pages)}
		if _, err := bp.Get(id); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeapInsert(b *testing.B) {
	d := NewDisk(8192)
	bp := NewBufferPool(d, 0)
	h := NewHeapFile(bp)
	rec := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Insert(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeapSequentialScan(b *testing.B) {
	d := NewDisk(8192)
	bp := NewBufferPool(d, 0)
	h := NewHeapFile(bp)
	rec := make([]byte, 64)
	for i := 0; i < 100000; i++ {
		if _, err := h.Insert(rec); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := h.Cursor()
		for {
			_, _, ok, err := c.Next()
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				break
			}
		}
	}
}
