package storage

// Page is a slotted page holding variable-length records. Records are
// addressed by slot number; deleting a record leaves a tombstone so that
// RIDs of other records remain stable.
//
// A Page tracks its used byte budget: each record costs its length plus
// slotOverhead bytes. The page never reclaims tombstone slots (as in a
// real slotted page without compaction), which keeps RIDs stable for the
// lifetime of the simulation.
type Page struct {
	ID    PageID
	slots [][]byte // nil entry = tombstone
	used  int      // bytes consumed, including slot overhead
	size  int      // byte budget
}

// NewPage returns an empty page with the given byte budget.
func NewPage(id PageID, size int) *Page {
	if size <= 0 {
		size = DefaultPageSize
	}
	return &Page{ID: id, size: size}
}

// Size returns the page's byte budget.
func (p *Page) Size() int { return p.size }

// Free returns the remaining byte budget.
func (p *Page) Free() int { return p.size - p.used }

// NumSlots returns the number of slots ever allocated, including
// tombstones. Valid slot numbers are [0, NumSlots).
func (p *Page) NumSlots() int { return len(p.slots) }

// Fits reports whether a record of n bytes can be inserted.
func (p *Page) Fits(n int) bool { return n+slotOverhead <= p.Free() }

// Insert stores rec in a fresh slot and returns its slot number.
// It returns ErrPageFull when the record does not fit and
// ErrRecordTooBig when it could never fit even in an empty page.
func (p *Page) Insert(rec []byte) (uint16, error) {
	if len(rec)+slotOverhead > p.size {
		return 0, ErrRecordTooBig
	}
	if !p.Fits(len(rec)) {
		return 0, ErrPageFull
	}
	cp := make([]byte, len(rec))
	copy(cp, rec)
	p.slots = append(p.slots, cp)
	p.used += len(rec) + slotOverhead
	return uint16(len(p.slots) - 1), nil
}

// InsertBatch stores the longest prefix of recs that fits in
// consecutive fresh slots, sharing one backing allocation across the
// run, and returns the first slot number and the count stored. A stop
// before len(recs) means the page is full for the next record; the
// error is non-nil (ErrRecordTooBig) only when that record could never
// fit even in an empty page.
func (p *Page) InsertBatch(recs [][]byte) (uint16, int, error) {
	n, total := 0, 0
	free := p.Free()
	var err error
	for _, rec := range recs {
		if len(rec)+slotOverhead > free {
			if len(rec)+slotOverhead > p.size {
				err = ErrRecordTooBig
			}
			break
		}
		free -= len(rec) + slotOverhead
		total += len(rec)
		n++
	}
	if n == 0 {
		return 0, 0, err
	}
	arena := make([]byte, total)
	first := uint16(len(p.slots))
	off := 0
	for _, rec := range recs[:n] {
		end := off + len(rec)
		copy(arena[off:end], rec)
		p.slots = append(p.slots, arena[off:end:end])
		p.used += len(rec) + slotOverhead
		off = end
	}
	return first, n, err
}

// Get returns the record in the given slot. It returns ErrNoSuchSlot
// for out-of-range slots or tombstones.
func (p *Page) Get(slot uint16) ([]byte, error) {
	if int(slot) >= len(p.slots) || p.slots[slot] == nil {
		return nil, ErrNoSuchSlot
	}
	return p.slots[slot], nil
}

// Delete tombstones the given slot. The byte budget of the record is
// released but the slot number is never reused.
func (p *Page) Delete(slot uint16) error {
	if int(slot) >= len(p.slots) || p.slots[slot] == nil {
		return ErrNoSuchSlot
	}
	p.used -= len(p.slots[slot]) + slotOverhead
	// Keep the slot-directory overhead accounted: the directory entry
	// itself is not reclaimed.
	p.used += slotOverhead
	p.slots[slot] = nil
	return nil
}

// Update replaces the record in slot with rec if it fits within the
// page's remaining budget (plus the space of the old record).
func (p *Page) Update(slot uint16, rec []byte) error {
	if int(slot) >= len(p.slots) || p.slots[slot] == nil {
		return ErrNoSuchSlot
	}
	old := len(p.slots[slot])
	if p.used-old+len(rec) > p.size {
		return ErrPageFull
	}
	cp := make([]byte, len(rec))
	copy(cp, rec)
	p.used += len(rec) - old
	p.slots[slot] = cp
	return nil
}
