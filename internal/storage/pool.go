package storage

import (
	"container/list"
	"runtime"
	"sync"
	"sync/atomic"
)

// BufferPool caches pages in memory with LRU replacement and charges
// IOStats for every miss (a simulated disk read) and every dirty-page
// write-back (a simulated disk write).
//
// The pool is the single chokepoint through which executors touch pages,
// so its counters are the ground truth for retrieval cost. Section 3(c)
// of the paper observes that caching makes per-query cost unpredictable
// because unrelated queries shuffle the cache; the experiments reproduce
// that by sharing one pool between interleaved retrievals.
//
// The pool is sharded for concurrency: pages hash onto N independent
// shards (N a power of two), each with its own mutex, LRU list, and
// frame map, so unrelated page touches from concurrent queries never
// contend. The global Reads/Writes/Hits counters are atomics, so Stats
// never takes a lock.
//
// Sharding and cost fidelity: an unbounded pool behaves identically at
// any shard count (hits and misses depend only on residency, and nothing
// is ever evicted), so unbounded pools shard automatically. A bounded
// pool's per-shard LRU is only an approximation of the global LRU the
// experiments' cost model assumes, so bounded pools default to a single
// shard — exact global LRU — unless the caller opts into sharding with
// NewBufferPoolSharded (as the parallel throughput benchmarks do).
type BufferPool struct {
	disk     *Disk
	capacity int

	reads  atomic.Int64
	writes atomic.Int64
	hits   atomic.Int64
	pinned atomic.Int64

	mask   uint64
	shards []poolShard
}

type poolShard struct {
	mu       sync.Mutex
	capacity int // frame budget of this shard (<= 0 = unbounded)
	frames   map[PageID]*list.Element
	lru      *list.List // front = most recently used
	pins     map[PageID]int
	// staged holds prefetched pages that have been read from disk but
	// not yet demanded. Staged pages are invisible to the cost model:
	// they are outside the LRU, count toward no statistic, and the read
	// is still charged (to the demanding tracker) when a Get consumes
	// them. Bounded by prefetchCapPerShard.
	staged map[PageID]*Page
	_      [40]byte // pad to a cache line to avoid false sharing
}

type frame struct {
	page  *Page
	dirty bool
}

// NewBufferPool creates a pool over disk holding at most capacity pages.
// A capacity <= 0 means effectively unbounded (everything stays hot
// after first touch). Unbounded pools are sharded to the number of CPUs;
// bounded pools keep one shard (exact global LRU) — use
// NewBufferPoolSharded to shard a bounded pool.
func NewBufferPool(disk *Disk, capacity int) *BufferPool {
	shards := 1
	if capacity <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	return NewBufferPoolSharded(disk, capacity, shards)
}

// NewBufferPoolSharded creates a pool with an explicit shard count. The
// count is rounded up to a power of two, and for bounded pools clamped
// so every shard holds at least one frame; the capacity is split across
// shards. Bounded sharded pools approximate global LRU per shard, which
// can change eviction order versus a single-shard pool of the same
// capacity.
func NewBufferPoolSharded(disk *Disk, capacity, shards int) *BufferPool {
	n := nextPow2(shards)
	if capacity > 0 && n > capacity {
		n = nextPow2(capacity)
		if n > capacity {
			n /= 2
		}
	}
	if n < 1 {
		n = 1
	}
	bp := &BufferPool{
		disk:     disk,
		capacity: capacity,
		mask:     uint64(n - 1),
		shards:   make([]poolShard, n),
	}
	base, rem := 0, 0
	if capacity > 0 {
		base, rem = capacity/n, capacity%n
	}
	for i := range bp.shards {
		s := &bp.shards[i]
		s.capacity = 0
		if capacity > 0 {
			s.capacity = base
			if i < rem {
				s.capacity++
			}
		}
		s.frames = make(map[PageID]*list.Element)
		s.lru = list.New()
		s.pins = make(map[PageID]int)
		s.staged = make(map[PageID]*Page)
	}
	return bp
}

func nextPow2(n int) int {
	if n < 1 {
		return 1
	}
	p := 1
	for p < n {
		p *= 2
	}
	return p
}

// shard maps a page ID onto its shard (fibonacci hashing of file+page).
func (bp *BufferPool) shard(id PageID) *poolShard {
	h := (uint64(id.File)<<32 | uint64(id.No)) * 0x9E3779B97F4A7C15
	return &bp.shards[(h>>32)&bp.mask]
}

// Disk returns the underlying disk.
func (bp *BufferPool) Disk() *Disk { return bp.disk }

// Capacity returns the pool's total frame capacity (<= 0 = unbounded).
func (bp *BufferPool) Capacity() int { return bp.capacity }

// Shards returns the number of shards.
func (bp *BufferPool) Shards() int { return len(bp.shards) }

// Stats returns a snapshot of the I/O counters. It is lock-free.
func (bp *BufferPool) Stats() IOStats {
	return IOStats{
		Reads:  bp.reads.Load(),
		Writes: bp.writes.Load(),
		Hits:   bp.hits.Load(),
	}
}

// ResetStats zeroes the I/O counters. Experiments call this between runs.
func (bp *BufferPool) ResetStats() {
	bp.reads.Store(0)
	bp.writes.Store(0)
	bp.hits.Store(0)
}

// Get returns the page with the given ID, charging one read on a miss.
func (bp *BufferPool) Get(id PageID) (*Page, error) { return bp.GetTracked(id, nil) }

// GetTracked is Get, additionally charging the hit/miss (and any
// eviction write-back it triggers) to tr. A nil tracker charges only the
// global counters.
func (bp *BufferPool) GetTracked(id PageID, tr *Tracker) (*Page, error) {
	return bp.get(id, tr, false)
}

// GetDirty is Get plus MarkDirty under one shard-lock acquisition, so a
// concurrent eviction can never slip between the fetch and the mark.
func (bp *BufferPool) GetDirty(id PageID) (*Page, error) { return bp.GetDirtyTracked(id, nil) }

// GetDirtyTracked is GetDirty charging tr.
func (bp *BufferPool) GetDirtyTracked(id PageID, tr *Tracker) (*Page, error) {
	return bp.get(id, tr, true)
}

func (bp *BufferPool) get(id PageID, tr *Tracker, dirty bool) (*Page, error) {
	return bp.getSpan(id, tr, dirty, 1)
}

// GetSpanTracked is GetTracked for a clustered run of span record
// accesses that all land on one page: the first access is charged as a
// normal hit or miss and the remaining span-1 as hits, so the counters
// (global and tracker) end up exactly where span individual GetTracked
// calls would leave them, while paying one lock acquisition and at most
// one disk read. The final retrieval stage uses it to fetch each data
// page once per run of sorted RIDs.
func (bp *BufferPool) GetSpanTracked(id PageID, span int, tr *Tracker) (*Page, error) {
	if span < 1 {
		span = 1
	}
	return bp.getSpan(id, tr, false, span)
}

func (bp *BufferPool) getSpan(id PageID, tr *Tracker, dirty bool, span int) (*Page, error) {
	// Cooperative cancellation checkpoint: every page access — hit or
	// miss — first asks the tracker's governor whether the query may
	// continue. This bounds cancellation latency to one simulated page
	// I/O without sprinkling ctx checks through every operator.
	if err := tr.Err(); err != nil {
		return nil, err
	}
	extra := int64(span - 1)
	s := bp.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.frames[id]; ok {
		bp.hits.Add(1 + extra)
		tr.hit()
		tr.hitN(extra)
		s.lru.MoveToFront(el)
		f := el.Value.(*frame)
		if dirty {
			f.dirty = true
		}
		return f.page, nil
	}
	p, ok := s.staged[id]
	if ok {
		// A prefetched page: skip the physical read, but charge the
		// miss normally — readahead changes wall-clock, never cost.
		delete(s.staged, id)
	} else {
		var err error
		p, err = bp.disk.read(id)
		if err != nil {
			return nil, err
		}
	}
	bp.reads.Add(1)
	tr.read()
	if extra > 0 {
		bp.hits.Add(extra)
		tr.hitN(extra)
	}
	bp.admit(s, p, dirty, tr)
	return p, nil
}

// ChargeHits records n buffer-pool hits against the global counters and
// tr without touching any page. Batched writers use it to mirror the
// per-record page probes they coalesced (see HeapFile.InsertBatchTracked),
// keeping the counters identical to the unbatched path.
func (bp *BufferPool) ChargeHits(n int, tr *Tracker) {
	if n <= 0 {
		return
	}
	bp.hits.Add(int64(n))
	tr.hitN(int64(n))
}

// prefetchCapPerShard bounds staged pages per shard so readahead for an
// abandoned scan cannot grow memory without limit.
const prefetchCapPerShard = 64

// Prefetch stages the given pages so future demand fetches skip the
// physical disk read. It is pure readahead: no counters move, no LRU or
// pin state changes, and nothing is admitted to the pool, so the
// simulated cost model (and eviction order) is untouched — the miss is
// still charged to the demanding query's tracker when the page is
// actually fetched. Pages already resident or staged are skipped, each
// shard stages at most prefetchCapPerShard pages, and EvictAll drops
// staged pages along with the rest of the pool.
func (bp *BufferPool) Prefetch(ids []PageID) {
	for _, id := range ids {
		s := bp.shard(id)
		s.mu.Lock()
		_, resident := s.frames[id]
		_, staged := s.staged[id]
		if !resident && !staged && len(s.staged) < prefetchCapPerShard {
			if p, err := bp.disk.read(id); err == nil {
				s.staged[id] = p
			}
		}
		s.mu.Unlock()
	}
}

// ReadUncounted returns the page bypassing all accounting: no counters
// move, no tracker or governor is consulted, and nothing is admitted to
// the pool or its LRU. Like Prefetch, it exists for coordination work
// that must not perturb the simulated cost model — B-tree partition
// planning descends the tree through it to choose worker split points,
// and later demand fetches of the same pages still pay their full
// hit/miss charges.
func (bp *BufferPool) ReadUncounted(id PageID) (*Page, error) {
	return bp.disk.read(id)
}

// Staged returns the number of prefetched pages not yet demanded.
func (bp *BufferPool) Staged() int {
	total := 0
	for i := range bp.shards {
		s := &bp.shards[i]
		s.mu.Lock()
		total += len(s.staged)
		s.mu.Unlock()
	}
	return total
}

// NewPage allocates a fresh page in the file and admits it to the pool
// as dirty. Allocation is free; the eventual write-back is charged.
func (bp *BufferPool) NewPage(file FileID) (*Page, error) { return bp.NewPageTracked(file, nil) }

// NewPageTracked is NewPage charging any eviction write-back to tr.
func (bp *BufferPool) NewPageTracked(file FileID, tr *Tracker) (*Page, error) {
	if err := tr.Err(); err != nil {
		return nil, err
	}
	p, err := bp.disk.AllocPage(file)
	if err != nil {
		return nil, err
	}
	s := bp.shard(p.ID)
	s.mu.Lock()
	defer s.mu.Unlock()
	bp.admit(s, p, true, tr)
	return p, nil
}

// MarkDirty records that the page has been modified, so its eviction or
// flush will cost one write.
func (bp *BufferPool) MarkDirty(id PageID) {
	s := bp.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.frames[id]; ok {
		el.Value.(*frame).dirty = true
	}
}

// Contains reports whether the page is currently resident. Estimators
// use it to predict whether a fetch would be a hit without paying for
// the fetch.
func (bp *BufferPool) Contains(id PageID) bool {
	s := bp.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.frames[id]
	return ok
}

// FlushAll writes back every dirty page, charging one write apiece, and
// leaves the pages resident and clean.
func (bp *BufferPool) FlushAll() {
	for i := range bp.shards {
		s := &bp.shards[i]
		s.mu.Lock()
		for el := s.lru.Front(); el != nil; el = el.Next() {
			f := el.Value.(*frame)
			if f.dirty {
				bp.writes.Add(1)
				f.dirty = false
			}
		}
		s.mu.Unlock()
	}
}

// EvictAll empties the pool (writing back dirty pages) so the next run
// starts cold. Experiments call this between measured runs.
func (bp *BufferPool) EvictAll() {
	for i := range bp.shards {
		s := &bp.shards[i]
		s.mu.Lock()
		for el := s.lru.Front(); el != nil; el = el.Next() {
			if f := el.Value.(*frame); f.dirty {
				bp.writes.Add(1)
			}
		}
		s.frames = make(map[PageID]*list.Element)
		s.lru.Init()
		s.staged = make(map[PageID]*Page)
		s.mu.Unlock()
	}
}

// Resident returns the number of pages currently cached.
func (bp *BufferPool) Resident() int {
	total := 0
	for i := range bp.shards {
		s := &bp.shards[i]
		s.mu.Lock()
		total += s.lru.Len()
		s.mu.Unlock()
	}
	return total
}

// Pin takes a reference on the page for a cursor that holds it across
// calls. Pins are pure accounting for leak detection: the simulated disk
// keeps every page addressable, so eviction of a pinned page is harmless
// for correctness, and letting pins influence eviction would perturb the
// LRU order (and therefore the simulated I/O counts) the experiments
// depend on. Cancellation tests assert PinnedPages() == 0 after every
// unwound query.
func (bp *BufferPool) Pin(id PageID) {
	s := bp.shard(id)
	s.mu.Lock()
	s.pins[id]++
	s.mu.Unlock()
	bp.pinned.Add(1)
}

// Unpin releases one reference taken by Pin. Unpinning a page that is
// not pinned is a no-op, so release paths can be idempotent.
func (bp *BufferPool) Unpin(id PageID) {
	s := bp.shard(id)
	s.mu.Lock()
	n, ok := s.pins[id]
	if ok {
		if n <= 1 {
			delete(s.pins, id)
		} else {
			s.pins[id] = n - 1
		}
	}
	s.mu.Unlock()
	if ok {
		bp.pinned.Add(-1)
	}
}

// PinnedPages returns the number of outstanding pin references across
// all shards. Zero means no cursor is holding a page.
func (bp *BufferPool) PinnedPages() int64 { return bp.pinned.Load() }

// admit inserts page p into shard s, evicting the shard's LRU victim if
// at capacity. Caller holds s.mu.
func (bp *BufferPool) admit(s *poolShard, p *Page, dirty bool, tr *Tracker) {
	if s.capacity > 0 {
		for s.lru.Len() >= s.capacity {
			victim := s.lru.Back()
			if victim == nil {
				break
			}
			f := victim.Value.(*frame)
			if f.dirty {
				bp.writes.Add(1)
				tr.write()
			}
			delete(s.frames, f.page.ID)
			s.lru.Remove(victim)
		}
	}
	s.frames[p.ID] = s.lru.PushFront(&frame{page: p, dirty: dirty})
}
