package storage

import (
	"container/list"
	"sync"
)

// BufferPool caches pages in memory with LRU replacement and charges
// IOStats for every miss (a simulated disk read) and every dirty-page
// write-back (a simulated disk write).
//
// The pool is the single chokepoint through which executors touch pages,
// so its counters are the ground truth for retrieval cost. Section 3(c)
// of the paper observes that caching makes per-query cost unpredictable
// because unrelated queries shuffle the cache; the experiments reproduce
// that by sharing one pool between interleaved retrievals.
type BufferPool struct {
	mu       sync.Mutex
	disk     *Disk
	capacity int
	stats    IOStats
	frames   map[PageID]*list.Element // -> *frame in lru
	lru      *list.List               // front = most recently used
}

type frame struct {
	page  *Page
	dirty bool
}

// NewBufferPool creates a pool over disk holding at most capacity pages.
// A capacity <= 0 means effectively unbounded (everything stays hot
// after first touch).
func NewBufferPool(disk *Disk, capacity int) *BufferPool {
	return &BufferPool{
		disk:     disk,
		capacity: capacity,
		frames:   make(map[PageID]*list.Element),
		lru:      list.New(),
	}
}

// Disk returns the underlying disk.
func (bp *BufferPool) Disk() *Disk { return bp.disk }

// Capacity returns the pool's frame capacity (<= 0 = unbounded).
func (bp *BufferPool) Capacity() int { return bp.capacity }

// Stats returns a snapshot of the I/O counters.
func (bp *BufferPool) Stats() IOStats {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.stats
}

// ResetStats zeroes the I/O counters. Experiments call this between runs.
func (bp *BufferPool) ResetStats() {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.stats = IOStats{}
}

// Get returns the page with the given ID, charging one read on a miss.
func (bp *BufferPool) Get(id PageID) (*Page, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if el, ok := bp.frames[id]; ok {
		bp.stats.Hits++
		bp.lru.MoveToFront(el)
		return el.Value.(*frame).page, nil
	}
	p, err := bp.disk.read(id)
	if err != nil {
		return nil, err
	}
	bp.stats.Reads++
	bp.admit(p, false)
	return p, nil
}

// GetDirty is Get plus MarkDirty in one call.
func (bp *BufferPool) GetDirty(id PageID) (*Page, error) {
	p, err := bp.Get(id)
	if err != nil {
		return nil, err
	}
	bp.MarkDirty(id)
	return p, nil
}

// NewPage allocates a fresh page in the file and admits it to the pool
// as dirty. Allocation is free; the eventual write-back is charged.
func (bp *BufferPool) NewPage(file FileID) (*Page, error) {
	p, err := bp.disk.AllocPage(file)
	if err != nil {
		return nil, err
	}
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.admit(p, true)
	return p, nil
}

// MarkDirty records that the page has been modified, so its eviction or
// flush will cost one write.
func (bp *BufferPool) MarkDirty(id PageID) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if el, ok := bp.frames[id]; ok {
		el.Value.(*frame).dirty = true
	}
}

// Contains reports whether the page is currently resident. Estimators
// use it to predict whether a fetch would be a hit without paying for
// the fetch.
func (bp *BufferPool) Contains(id PageID) bool {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	_, ok := bp.frames[id]
	return ok
}

// FlushAll writes back every dirty page, charging one write apiece, and
// leaves the pages resident and clean.
func (bp *BufferPool) FlushAll() {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for el := bp.lru.Front(); el != nil; el = el.Next() {
		f := el.Value.(*frame)
		if f.dirty {
			bp.stats.Writes++
			f.dirty = false
		}
	}
}

// EvictAll empties the pool (writing back dirty pages) so the next run
// starts cold. Experiments call this between measured runs.
func (bp *BufferPool) EvictAll() {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for el := bp.lru.Front(); el != nil; el = el.Next() {
		if f := el.Value.(*frame); f.dirty {
			bp.stats.Writes++
		}
	}
	bp.frames = make(map[PageID]*list.Element)
	bp.lru.Init()
}

// Resident returns the number of pages currently cached.
func (bp *BufferPool) Resident() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.lru.Len()
}

// admit inserts page p, evicting the LRU victim if at capacity.
// Caller holds bp.mu.
func (bp *BufferPool) admit(p *Page, dirty bool) {
	if bp.capacity > 0 {
		for bp.lru.Len() >= bp.capacity {
			victim := bp.lru.Back()
			if victim == nil {
				break
			}
			f := victim.Value.(*frame)
			if f.dirty {
				bp.stats.Writes++
			}
			delete(bp.frames, f.page.ID)
			bp.lru.Remove(victim)
		}
	}
	bp.frames[p.ID] = bp.lru.PushFront(&frame{page: p, dirty: dirty})
}
