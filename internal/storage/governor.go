package storage

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrBudgetExceeded is returned once a query has consumed its per-query
// simulated-I/O budget. It surfaces from Rows.Next exactly like a
// context error; core re-exports it as core.ErrBudgetExceeded.
var ErrBudgetExceeded = errors.New("storage: per-query simulated I/O budget exceeded")

// Governor is the per-query cooperative cancellation authority. It
// bundles the caller's context with an optional simulated-I/O budget and
// is consulted by the buffer pool before every page access (hit or
// miss), which makes a page fetch the cancellation granularity: a
// cancelled query stops within one simulated page I/O.
//
// A Governor is shared by every Tracker of one query (foreground scan,
// background scan, final stage, borrow fetcher), so the budget covers
// the query's total attributed I/O, not any single leg's.
//
// All methods are nil-safe: a nil *Governor never cancels and never
// charges, so ungoverned call sites (the seed experiments, DML, index
// builds) pay only a nil check and stay byte-identical in cost.
type Governor struct {
	ctx    context.Context
	budget int64 // simulated I/Os allowed; <= 0 = unlimited
	spent  atomic.Int64
}

// NewGovernor builds a governor for ctx with the given simulated-I/O
// budget (<= 0 = unlimited). It returns nil — the free, never-cancelling
// governor — when ctx can never be cancelled and no budget is set, so
// legacy paths keep their zero-overhead fast path.
func NewGovernor(ctx context.Context, budget int64) *Governor {
	if ctx == nil {
		ctx = context.Background()
	}
	if ctx.Done() == nil && budget <= 0 {
		return nil
	}
	return &Governor{ctx: ctx, budget: budget}
}

// Context returns the governed context (context.Background for nil).
func (g *Governor) Context() context.Context {
	if g == nil || g.ctx == nil {
		return context.Background()
	}
	return g.ctx
}

// Err reports why the query must stop, or nil to continue: the context's
// error (context.Canceled / context.DeadlineExceeded) takes priority,
// then ErrBudgetExceeded once the I/O budget is spent.
func (g *Governor) Err() error {
	if g == nil {
		return nil
	}
	if err := g.ctx.Err(); err != nil {
		return err
	}
	if g.budget > 0 && g.spent.Load() >= g.budget {
		return ErrBudgetExceeded
	}
	return nil
}

// charge records n simulated I/Os against the budget.
func (g *Governor) charge(n int64) {
	if g != nil {
		g.spent.Add(n)
	}
}

// Spent returns the simulated I/Os charged so far.
func (g *Governor) Spent() int64 {
	if g == nil {
		return 0
	}
	return g.spent.Load()
}

// Budget returns the configured budget (<= 0 = unlimited).
func (g *Governor) Budget() int64 {
	if g == nil {
		return 0
	}
	return g.budget
}
