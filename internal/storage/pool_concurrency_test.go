package storage

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// stressDisk allocates a file with n pages and returns their IDs.
func stressDisk(t *testing.T, n int) (*Disk, []PageID) {
	t.Helper()
	disk := NewDisk(0)
	f := disk.CreateFile()
	ids := make([]PageID, n)
	for i := range ids {
		p, err := disk.AllocPage(f)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = p.ID
	}
	return disk, ids
}

// TestShardedPoolParallelStress hammers a sharded bounded pool from many
// goroutines (Get, GetDirty, MarkDirty, and concurrent EvictAll) and
// checks the global accounting invariants afterwards:
//
//   - every Get is either a read (miss) or a hit: Reads+Hits == Gets;
//   - a dirty residency writes back at most once, so Writes never
//     exceeds the number of dirtying operations;
//   - the clean phase performs no writes at all.
//
// Run with -race to exercise the locking.
func TestShardedPoolParallelStress(t *testing.T) {
	const (
		pages      = 256
		workers    = 8
		iterations = 2000
	)
	disk, ids := stressDisk(t, pages)
	bp := NewBufferPoolSharded(disk, 64, 8)

	var gets, dirties atomic.Int64

	// Phase 1: clean reads only.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iterations; i++ {
				id := ids[rng.Intn(pages)]
				if _, err := bp.Get(id); err != nil {
					t.Error(err)
					return
				}
				gets.Add(1)
			}
		}(int64(w + 1))
	}
	wg.Wait()
	st := bp.Stats()
	if st.Reads+st.Hits != gets.Load() {
		t.Fatalf("clean phase: Reads(%d)+Hits(%d) != Gets(%d)", st.Reads, st.Hits, gets.Load())
	}
	if st.Writes != 0 {
		t.Fatalf("clean phase: %d writes without any dirtying op", st.Writes)
	}

	// Phase 2: mixed dirtying traffic with concurrent wholesale eviction.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			tr := new(Tracker)
			for i := 0; i < iterations; i++ {
				id := ids[rng.Intn(pages)]
				switch rng.Intn(4) {
				case 0:
					if _, err := bp.GetDirtyTracked(id, tr); err != nil {
						t.Error(err)
						return
					}
					gets.Add(1)
					dirties.Add(1)
				case 1:
					if _, err := bp.Get(id); err != nil {
						t.Error(err)
						return
					}
					gets.Add(1)
					if bp.Contains(id) {
						// MarkDirty on a possibly-evicted page: a no-op
						// miss is fine, the op only counts if resident.
						bp.MarkDirty(id)
						dirties.Add(1)
					}
				case 2:
					if _, err := bp.Get(id); err != nil {
						t.Error(err)
						return
					}
					gets.Add(1)
				default:
					if i%500 == 0 {
						bp.EvictAll()
					} else {
						if _, err := bp.Get(id); err != nil {
							t.Error(err)
							return
						}
						gets.Add(1)
					}
				}
			}
		}(int64(100 + w))
	}
	wg.Wait()
	bp.EvictAll()

	st = bp.Stats()
	if st.Reads+st.Hits != gets.Load() {
		t.Fatalf("mixed phase: Reads(%d)+Hits(%d) != Gets(%d)", st.Reads, st.Hits, gets.Load())
	}
	if st.Writes > dirties.Load() {
		t.Fatalf("write-back imbalance: %d writes > %d dirtying ops", st.Writes, dirties.Load())
	}
	if st.Writes == 0 {
		t.Fatalf("expected some write-backs after %d dirtying ops", dirties.Load())
	}
	if bp.Resident() != 0 {
		t.Fatalf("EvictAll left %d resident frames", bp.Resident())
	}
}

// TestShardedUnboundedMatchesUnsharded verifies the cost-fidelity claim
// for unbounded pools: an identical access sequence yields identical
// global statistics whether the pool has one shard or many (no eviction
// can ever occur, so sharding is observationally equivalent).
func TestShardedUnboundedMatchesUnsharded(t *testing.T) {
	const pages = 128
	run := func(bp *BufferPool, ids []PageID) IOStats {
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 5000; i++ {
			id := ids[rng.Intn(pages)]
			if rng.Intn(10) == 0 {
				if _, err := bp.GetDirty(id); err != nil {
					t.Fatal(err)
				}
			} else {
				if _, err := bp.Get(id); err != nil {
					t.Fatal(err)
				}
			}
		}
		bp.EvictAll()
		return bp.Stats()
	}
	diskA, idsA := stressDisk(t, pages)
	diskB, idsB := stressDisk(t, pages)
	a := run(NewBufferPool(diskA, 0), idsA)
	b := run(NewBufferPoolSharded(diskB, 0, 8), idsB)
	if a != b {
		t.Fatalf("unbounded stats diverge: unsharded %+v, sharded %+v", a, b)
	}
}

// TestTrackerMatchesGlobalDelta pins the attribution contract: when a
// single actor drives the pool, a private tracker observes exactly the
// same delta as global-snapshot differencing used to.
func TestTrackerMatchesGlobalDelta(t *testing.T) {
	const pages = 64
	disk, ids := stressDisk(t, pages)
	bp := NewBufferPoolSharded(disk, 16, 4)
	tr := new(Tracker)
	before := bp.Stats()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 3000; i++ {
		id := ids[rng.Intn(pages)]
		if rng.Intn(5) == 0 {
			if _, err := bp.GetDirtyTracked(id, tr); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := bp.GetTracked(id, tr); err != nil {
				t.Fatal(err)
			}
		}
	}
	delta := bp.Stats().Sub(before)
	if delta != tr.Stats() {
		t.Fatalf("tracker %+v != global delta %+v", tr.Stats(), delta)
	}
}
