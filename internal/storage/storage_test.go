package storage

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestRIDOrdering(t *testing.T) {
	rids := []RID{
		{Page: PageID{File: 1, No: 2}, Slot: 0},
		{Page: PageID{File: 0, No: 5}, Slot: 9},
		{Page: PageID{File: 0, No: 5}, Slot: 2},
		{Page: PageID{File: 0, No: 1}, Slot: 7},
	}
	sort.Slice(rids, func(i, j int) bool { return rids[i].Less(rids[j]) })
	want := []RID{
		{Page: PageID{File: 0, No: 1}, Slot: 7},
		{Page: PageID{File: 0, No: 5}, Slot: 2},
		{Page: PageID{File: 0, No: 5}, Slot: 9},
		{Page: PageID{File: 1, No: 2}, Slot: 0},
	}
	for i := range rids {
		if rids[i] != want[i] {
			t.Fatalf("position %d: got %v, want %v", i, rids[i], want[i])
		}
	}
}

func TestRIDCompareConsistentWithLess(t *testing.T) {
	f := func(a, b uint32, s1, s2 uint16) bool {
		x := RID{Page: PageID{File: 0, No: PageNo(a)}, Slot: s1}
		y := RID{Page: PageID{File: 0, No: PageNo(b)}, Slot: s2}
		c := x.Compare(y)
		switch {
		case x.Less(y):
			return c == -1
		case y.Less(x):
			return c == 1
		default:
			return c == 0 && x == y
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRIDKeyPreservesOrderWithinFile(t *testing.T) {
	f := func(a, b uint32, s1, s2 uint16) bool {
		// Page numbers in the simulator stay far below 2^32; Key packs
		// page<<16|slot so Less order must match integer order.
		x := RID{Page: PageID{File: 3, No: PageNo(a)}, Slot: s1}
		y := RID{Page: PageID{File: 3, No: PageNo(b)}, Slot: s2}
		return x.Less(y) == (x.Key() < y.Key())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIOStatsArithmetic(t *testing.T) {
	a := IOStats{Reads: 10, Writes: 4, Hits: 100}
	b := IOStats{Reads: 3, Writes: 1, Hits: 40}
	d := a.Sub(b)
	if d != (IOStats{Reads: 7, Writes: 3, Hits: 60}) {
		t.Fatalf("Sub: got %+v", d)
	}
	if got := d.Add(b); got != a {
		t.Fatalf("Add: got %+v, want %+v", got, a)
	}
	if a.IOCost() != 14 {
		t.Fatalf("IOCost: got %d, want 14", a.IOCost())
	}
}

func TestPageInsertGetDelete(t *testing.T) {
	p := NewPage(PageID{File: 0, No: 0}, 128)
	s0, err := p.Insert([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	s1, err := p.Insert([]byte("world!"))
	if err != nil {
		t.Fatal(err)
	}
	if s0 == s1 {
		t.Fatal("slots must differ")
	}
	got, err := p.Get(s1)
	if err != nil || string(got) != "world!" {
		t.Fatalf("Get(s1) = %q, %v", got, err)
	}
	if err := p.Delete(s0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(s0); err != ErrNoSuchSlot {
		t.Fatalf("Get of tombstone: got %v, want ErrNoSuchSlot", err)
	}
	// Slot numbers remain stable after delete.
	if got, err := p.Get(s1); err != nil || string(got) != "world!" {
		t.Fatalf("Get(s1) after delete = %q, %v", got, err)
	}
}

func TestPageRejectsOversizedRecord(t *testing.T) {
	p := NewPage(PageID{}, 64)
	if _, err := p.Insert(make([]byte, 100)); err != ErrRecordTooBig {
		t.Fatalf("got %v, want ErrRecordTooBig", err)
	}
}

func TestPageFillsToCapacityThenRejects(t *testing.T) {
	p := NewPage(PageID{}, 100)
	rec := make([]byte, 16) // 16+4 = 20 bytes per record -> 5 fit
	var n int
	for {
		if _, err := p.Insert(rec); err != nil {
			if err != ErrPageFull {
				t.Fatalf("unexpected error %v", err)
			}
			break
		}
		n++
	}
	if n != 5 {
		t.Fatalf("records inserted = %d, want 5", n)
	}
	if p.Free() != 0 {
		t.Fatalf("free = %d, want 0", p.Free())
	}
}

func TestPageUpdate(t *testing.T) {
	p := NewPage(PageID{}, 128)
	s, err := p.Insert([]byte("aaaa"))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Update(s, []byte("bbbbbbbb")); err != nil {
		t.Fatal(err)
	}
	got, _ := p.Get(s)
	if string(got) != "bbbbbbbb" {
		t.Fatalf("got %q", got)
	}
	if err := p.Update(s, make([]byte, 1000)); err != ErrPageFull {
		t.Fatalf("oversize update: got %v, want ErrPageFull", err)
	}
}

func TestDiskFiles(t *testing.T) {
	d := NewDisk(256)
	f1 := d.CreateFile()
	f2 := d.CreateFile()
	if f1 == f2 {
		t.Fatal("file IDs must be distinct")
	}
	p, err := d.AllocPage(f1)
	if err != nil {
		t.Fatal(err)
	}
	if p.ID != (PageID{File: f1, No: 0}) {
		t.Fatalf("page ID = %v", p.ID)
	}
	if d.NumPages(f1) != 1 || d.NumPages(f2) != 0 {
		t.Fatalf("page counts: %d, %d", d.NumPages(f1), d.NumPages(f2))
	}
	if err := d.DropFile(f2); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AllocPage(f2); err != ErrNoSuchFile {
		t.Fatalf("alloc on dropped file: got %v", err)
	}
	if err := d.DropFile(f2); err != ErrNoSuchFile {
		t.Fatalf("double drop: got %v", err)
	}
}

func TestBufferPoolCountsMissesAndHits(t *testing.T) {
	d := NewDisk(256)
	bp := NewBufferPool(d, 10)
	f := d.CreateFile()
	p, err := bp.NewPage(f)
	if err != nil {
		t.Fatal(err)
	}
	id := p.ID
	// NewPage admits the page; the first Get must be a hit.
	if _, err := bp.Get(id); err != nil {
		t.Fatal(err)
	}
	s := bp.Stats()
	if s.Hits != 1 || s.Reads != 0 {
		t.Fatalf("after hot get: %+v", s)
	}
	bp.EvictAll()
	if _, err := bp.Get(id); err != nil {
		t.Fatal(err)
	}
	s = bp.Stats()
	if s.Reads != 1 {
		t.Fatalf("after cold get: %+v", s)
	}
}

func TestBufferPoolEvictionChargesDirtyWrites(t *testing.T) {
	d := NewDisk(256)
	bp := NewBufferPool(d, 2)
	f := d.CreateFile()
	var ids []PageID
	for i := 0; i < 3; i++ {
		p, err := bp.NewPage(f)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, p.ID)
	}
	// Capacity 2: creating the 3rd page evicts the 1st, which is dirty.
	s := bp.Stats()
	if s.Writes != 1 {
		t.Fatalf("writes = %d, want 1 (dirty eviction)", s.Writes)
	}
	if bp.Contains(ids[0]) {
		t.Fatal("page 0 should have been evicted")
	}
	if !bp.Contains(ids[1]) || !bp.Contains(ids[2]) {
		t.Fatal("pages 1 and 2 should be resident")
	}
}

func TestBufferPoolLRUOrder(t *testing.T) {
	d := NewDisk(256)
	bp := NewBufferPool(d, 2)
	f := d.CreateFile()
	p0, _ := bp.NewPage(f)
	p1, _ := bp.NewPage(f)
	bp.FlushAll() // make both clean so evictions don't write
	// Touch p0 so p1 becomes LRU.
	if _, err := bp.Get(p0.ID); err != nil {
		t.Fatal(err)
	}
	p2, _ := d.AllocPage(f)
	_ = p2
	// Reading a third page must evict p1 (the LRU), not p0.
	if _, err := bp.Get(PageID{File: f, No: 2}); err != nil {
		t.Fatal(err)
	}
	if !bp.Contains(p0.ID) {
		t.Fatal("recently-used page evicted")
	}
	if bp.Contains(p1.ID) {
		t.Fatal("LRU page not evicted")
	}
}

func TestBufferPoolUnboundedNeverEvicts(t *testing.T) {
	d := NewDisk(256)
	bp := NewBufferPool(d, 0)
	f := d.CreateFile()
	for i := 0; i < 100; i++ {
		if _, err := bp.NewPage(f); err != nil {
			t.Fatal(err)
		}
	}
	if bp.Resident() != 100 {
		t.Fatalf("resident = %d, want 100", bp.Resident())
	}
	if w := bp.Stats().Writes; w != 0 {
		t.Fatalf("writes = %d, want 0", w)
	}
}

func TestBufferPoolFlushAllIdempotent(t *testing.T) {
	d := NewDisk(256)
	bp := NewBufferPool(d, 0)
	f := d.CreateFile()
	p, _ := bp.NewPage(f)
	bp.MarkDirty(p.ID)
	bp.FlushAll()
	w1 := bp.Stats().Writes
	bp.FlushAll()
	if w2 := bp.Stats().Writes; w2 != w1 {
		t.Fatalf("second flush wrote again: %d -> %d", w1, w2)
	}
}

func newTestHeap(t *testing.T, pageSize, poolCap int) (*HeapFile, *BufferPool) {
	t.Helper()
	d := NewDisk(pageSize)
	bp := NewBufferPool(d, poolCap)
	return NewHeapFile(bp), bp
}

func TestHeapInsertGetRoundTrip(t *testing.T) {
	h, _ := newTestHeap(t, 256, 0)
	recs := map[RID]string{}
	for i := 0; i < 200; i++ {
		s := fmt.Sprintf("record-%03d", i)
		rid, err := h.Insert([]byte(s))
		if err != nil {
			t.Fatal(err)
		}
		recs[rid] = s
	}
	if h.Count() != 200 {
		t.Fatalf("count = %d", h.Count())
	}
	for rid, want := range recs {
		got, err := h.Get(rid)
		if err != nil || string(got) != want {
			t.Fatalf("Get(%v) = %q, %v; want %q", rid, got, err, want)
		}
	}
}

func TestHeapPacksPagesDensely(t *testing.T) {
	h, _ := newTestHeap(t, 256, 0)
	// 20-byte records cost 24 bytes -> 10 per 256-byte page.
	for i := 0; i < 100; i++ {
		if _, err := h.Insert(make([]byte, 20)); err != nil {
			t.Fatal(err)
		}
	}
	if got := h.NumPages(); got != 10 {
		t.Fatalf("pages = %d, want 10", got)
	}
}

func TestHeapCursorSeesAllRecordsInOrder(t *testing.T) {
	h, _ := newTestHeap(t, 256, 0)
	var want []RID
	for i := 0; i < 57; i++ {
		rid, err := h.Insert([]byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, rid)
	}
	c := h.Cursor()
	var got []RID
	for {
		rec, rid, ok, err := c.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if len(got) < len(want) && rec[0] != byte(len(got)) {
			t.Fatalf("record %d holds %d", len(got), rec[0])
		}
		got = append(got, rid)
	}
	if len(got) != len(want) {
		t.Fatalf("cursor saw %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("cursor order diverges at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestHeapCursorSkipsTombstones(t *testing.T) {
	h, _ := newTestHeap(t, 256, 0)
	var rids []RID
	for i := 0; i < 30; i++ {
		rid, _ := h.Insert([]byte{byte(i)})
		rids = append(rids, rid)
	}
	for i := 0; i < 30; i += 2 {
		if err := h.Delete(rids[i]); err != nil {
			t.Fatal(err)
		}
	}
	c := h.Cursor()
	n := 0
	for {
		rec, _, ok, err := c.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if rec[0]%2 == 0 {
			t.Fatalf("deleted record %d surfaced", rec[0])
		}
		n++
	}
	if n != 15 {
		t.Fatalf("live records = %d, want 15", n)
	}
	if h.Count() != 15 {
		t.Fatalf("Count = %d, want 15", h.Count())
	}
}

func TestHeapScanCostEqualsPageCount(t *testing.T) {
	h, bp := newTestHeap(t, 256, 4)
	for i := 0; i < 100; i++ {
		if _, err := h.Insert(make([]byte, 20)); err != nil {
			t.Fatal(err)
		}
	}
	bp.EvictAll()
	bp.ResetStats()
	c := h.Cursor()
	for {
		_, _, ok, err := c.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	if r := bp.Stats().Reads; int(r) != h.NumPages() {
		t.Fatalf("cold scan reads = %d, want %d (one per page)", r, h.NumPages())
	}
}

func TestHeapCursorPagesRemaining(t *testing.T) {
	h, _ := newTestHeap(t, 256, 0)
	for i := 0; i < 100; i++ {
		h.Insert(make([]byte, 20))
	}
	c := h.Cursor()
	if got := c.PagesRemaining(); got != 10 {
		t.Fatalf("initial PagesRemaining = %d, want 10", got)
	}
	// Consume the first page's 10 records plus one more.
	for i := 0; i < 11; i++ {
		if _, _, ok, _ := c.Next(); !ok {
			t.Fatal("cursor exhausted early")
		}
	}
	if got := c.PagesRemaining(); got != 9 {
		t.Fatalf("PagesRemaining after page 1 = %d, want 9", got)
	}
}

// Property: random interleavings of inserts and deletes keep Get results
// consistent with a reference map.
func TestHeapRandomizedAgainstModel(t *testing.T) {
	h, _ := newTestHeap(t, 512, 0)
	rng := rand.New(rand.NewSource(42))
	model := map[RID][]byte{}
	var live []RID
	for op := 0; op < 5000; op++ {
		if len(live) == 0 || rng.Intn(3) != 0 {
			rec := make([]byte, 1+rng.Intn(40))
			rng.Read(rec)
			rid, err := h.Insert(rec)
			if err != nil {
				t.Fatal(err)
			}
			if _, dup := model[rid]; dup {
				t.Fatalf("RID %v reused", rid)
			}
			model[rid] = append([]byte(nil), rec...)
			live = append(live, rid)
		} else {
			i := rng.Intn(len(live))
			rid := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			if err := h.Delete(rid); err != nil {
				t.Fatal(err)
			}
			delete(model, rid)
		}
	}
	for rid, want := range model {
		got, err := h.Get(rid)
		if err != nil {
			t.Fatalf("Get(%v): %v", rid, err)
		}
		if string(got) != string(want) {
			t.Fatalf("Get(%v) mismatch", rid)
		}
	}
	if int(h.Count()) != len(model) {
		t.Fatalf("Count = %d, model has %d", h.Count(), len(model))
	}
}
