package storage

import (
	"context"
	"errors"
	"testing"
)

// newGovPool builds a small unbounded pool with n allocated pages and
// returns it with the page IDs, flushed clean and evicted so the first
// access to each page is a genuine miss.
func newGovPool(t *testing.T, n int) (*BufferPool, []PageID) {
	t.Helper()
	pool := NewBufferPool(NewDisk(512), 0)
	file := pool.Disk().CreateFile()
	ids := make([]PageID, n)
	for i := range ids {
		p, err := pool.NewPage(file)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = p.ID
	}
	pool.EvictAll()
	pool.ResetStats()
	return pool, ids
}

// TestGovernorNilFastPath: an uncancellable context with no budget must
// collapse to the nil governor, and every method on it must be safe.
func TestGovernorNilFastPath(t *testing.T) {
	g := NewGovernor(context.Background(), 0)
	if g != nil {
		t.Fatalf("background ctx + no budget should yield the nil governor, got %+v", g)
	}
	if err := g.Err(); err != nil {
		t.Fatalf("nil governor Err = %v", err)
	}
	if g.Context() != context.Background() {
		t.Fatal("nil governor Context should be context.Background")
	}
	g.charge(5)
	if g.Spent() != 0 || g.Budget() != 0 {
		t.Fatalf("nil governor accounting: spent=%d budget=%d", g.Spent(), g.Budget())
	}
	// A nil ctx is normalized rather than dereferenced.
	if NewGovernor(nil, 0) != nil {
		t.Fatal("NewGovernor(nil, 0) should be the nil governor")
	}
	if NewGovernor(nil, 1) == nil {
		t.Fatal("a budget alone must produce a live governor")
	}
}

// TestGovernorBudgetBoundary charges a budget-3 governor through pool
// misses: Err stays nil through the third I/O and flips to
// ErrBudgetExceeded on the next checkpoint — and pool hits charge
// nothing.
func TestGovernorBudgetBoundary(t *testing.T) {
	pool, ids := newGovPool(t, 8)
	gov := NewGovernor(context.Background(), 3)
	trk := NewTracker(gov)
	for i := 0; i < 3; i++ {
		if _, err := pool.GetTracked(ids[i], trk); err != nil {
			t.Fatalf("miss %d within budget: %v", i, err)
		}
	}
	if gov.Spent() != 3 {
		t.Fatalf("Spent = %d, want 3", gov.Spent())
	}
	// The budget is now exactly spent: hits would be free, but the
	// checkpoint fires before the shard lookup, so any access refuses.
	if _, err := pool.GetTracked(ids[0], trk); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("access past budget err = %v, want ErrBudgetExceeded", err)
	}
	if gov.Spent() != 3 {
		t.Fatalf("refused access still charged: spent=%d", gov.Spent())
	}
	// Hits below the budget are free: a fresh budget-2 governor can hit
	// a resident page arbitrarily often after one miss.
	pool2, ids2 := newGovPool(t, 2)
	trk2 := NewTracker(NewGovernor(context.Background(), 2))
	if _, err := pool2.GetTracked(ids2[0], trk2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := pool2.GetTracked(ids2[0], trk2); err != nil {
			t.Fatalf("hit %d charged the budget: %v", i, err)
		}
	}
	if got := trk2.IOCost(); got != 1 {
		t.Fatalf("IOCost = %d, want 1 (one miss, hits free)", got)
	}
}

// TestGovernorContextPriority: once the context is cancelled, Err
// reports the context error even if the budget is also exhausted.
func TestGovernorContextPriority(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	gov := NewGovernor(ctx, 1)
	gov.charge(5)
	if err := gov.Err(); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("pre-cancel Err = %v, want ErrBudgetExceeded", err)
	}
	cancel()
	if err := gov.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("post-cancel Err = %v, want context.Canceled (context outranks budget)", err)
	}
}

// TestTrackerNilGovernor: a tracker without a governor meters I/O but
// never refuses, and a nil tracker is safe at the pool chokepoint.
func TestTrackerNilGovernor(t *testing.T) {
	pool, ids := newGovPool(t, 4)
	trk := NewTracker(nil)
	for i := 0; i < 4; i++ {
		if _, err := pool.GetTracked(ids[i], trk); err != nil {
			t.Fatal(err)
		}
	}
	if trk.IOCost() != 4 {
		t.Fatalf("IOCost = %d, want 4", trk.IOCost())
	}
	if err := trk.Err(); err != nil {
		t.Fatalf("ungoverned tracker Err = %v", err)
	}
	if _, err := pool.GetTracked(ids[0], nil); err != nil {
		t.Fatalf("nil tracker: %v", err)
	}
}

// TestPinAccounting exercises the pin ledger: nested pins, idempotent
// unpin, and eviction neutrality (pins are leak-detection accounting,
// not residency locks — evicting a pinned page must not disturb the
// ledger, and pinning must not disturb eviction).
func TestPinAccounting(t *testing.T) {
	pool, ids := newGovPool(t, 4)
	if n := pool.PinnedPages(); n != 0 {
		t.Fatalf("fresh pool reports %d pins", n)
	}
	pool.Pin(ids[0])
	pool.Pin(ids[0]) // nested
	pool.Pin(ids[1])
	if n := pool.PinnedPages(); n != 3 {
		t.Fatalf("PinnedPages = %d, want 3", n)
	}
	pool.Unpin(ids[0])
	if n := pool.PinnedPages(); n != 2 {
		t.Fatalf("after one unpin PinnedPages = %d, want 2", n)
	}
	// Unpinning a page that holds no pin is a no-op, so release paths
	// can be idempotent.
	pool.Unpin(ids[2])
	pool.Unpin(ids[2])
	if n := pool.PinnedPages(); n != 2 {
		t.Fatalf("no-op unpin changed the ledger: %d", n)
	}
	// Eviction neutrality: emptying the pool neither consults nor
	// clears pins.
	pool.EvictAll()
	if n := pool.Resident(); n != 0 {
		t.Fatalf("EvictAll left %d resident pages despite pins", n)
	}
	if n := pool.PinnedPages(); n != 2 {
		t.Fatalf("eviction disturbed the pin ledger: %d", n)
	}
	pool.Unpin(ids[0])
	pool.Unpin(ids[1])
	if n := pool.PinnedPages(); n != 0 {
		t.Fatalf("ledger does not drain to zero: %d", n)
	}
}
