// Package storage implements the paged storage substrate used by every
// other component of the repository: an in-memory simulated disk holding
// slotted pages, a buffer pool with LRU replacement, heap files for table
// records, and I/O statistics.
//
// The buffer pool is the cost currency of the whole reproduction. The
// dynamic optimizer described in the paper reasons about retrieval cost in
// units of page I/Os; here every buffer-pool miss counts as one simulated
// read and every dirty-page eviction or explicit flush counts as one
// simulated write. Operators attribute costs to themselves by snapshotting
// IOStats before and after each execution step (execution is cooperative
// and single-threaded within a query, so the attribution is exact).
package storage

import (
	"errors"
	"fmt"
)

// DefaultPageSize is the byte budget of a page when a Disk is created
// with size 0. It mirrors a common database page size.
const DefaultPageSize = 8192

// slotOverhead is the per-record bookkeeping charge inside a page. It
// models the slot directory entry of a classic slotted page.
const slotOverhead = 4

// Errors returned by the storage layer.
var (
	ErrPageFull     = errors.New("storage: page full")
	ErrNoSuchPage   = errors.New("storage: no such page")
	ErrNoSuchSlot   = errors.New("storage: no such slot")
	ErrNoSuchFile   = errors.New("storage: no such file")
	ErrRecordTooBig = errors.New("storage: record exceeds page capacity")
)

// FileID names a file on the simulated disk.
type FileID uint32

// PageNo is the ordinal of a page within a file.
type PageNo uint32

// PageID uniquely names a page on the disk.
type PageID struct {
	File FileID
	No   PageNo
}

func (p PageID) String() string { return fmt.Sprintf("%d:%d", p.File, p.No) }

// RID is a record identifier: the page and slot where a record lives.
// RIDs are the values stored in index leaves and the items carried by
// RID lists during Jscan.
type RID struct {
	Page PageID
	Slot uint16
}

func (r RID) String() string { return fmt.Sprintf("%s.%d", r.Page, r.Slot) }

// Less orders RIDs by file, page, then slot. Sorting a RID list into
// this order makes the final fetch stage visit each page once.
func (r RID) Less(o RID) bool {
	if r.Page.File != o.Page.File {
		return r.Page.File < o.Page.File
	}
	if r.Page.No != o.Page.No {
		return r.Page.No < o.Page.No
	}
	return r.Slot < o.Slot
}

// Key packs the RID into an integer that preserves Less order for RIDs
// of the same file. It is the hash input for bitmap filters.
func (r RID) Key() uint64 {
	return uint64(r.Page.No)<<16 | uint64(r.Slot)
}

// Compare returns -1, 0, or +1 ordering r against o.
func (r RID) Compare(o RID) int {
	switch {
	case r.Less(o):
		return -1
	case o.Less(r):
		return 1
	default:
		return 0
	}
}

// IOStats counts simulated I/O and cache traffic. The zero value is
// ready to use.
type IOStats struct {
	Reads  int64 // pages read from disk (buffer-pool misses)
	Writes int64 // pages written to disk (evictions and flushes)
	Hits   int64 // buffer-pool hits
}

// IOCost is the total number of simulated physical I/Os (reads+writes).
// It is the quantity the paper's cost model minimizes.
func (s IOStats) IOCost() int64 { return s.Reads + s.Writes }

// Sub returns the component-wise difference s-o. Operators use it to
// attribute cost to a step: Sub(snapshotBefore).
func (s IOStats) Sub(o IOStats) IOStats {
	return IOStats{Reads: s.Reads - o.Reads, Writes: s.Writes - o.Writes, Hits: s.Hits - o.Hits}
}

// Add returns the component-wise sum s+o.
func (s IOStats) Add(o IOStats) IOStats {
	return IOStats{Reads: s.Reads + o.Reads, Writes: s.Writes + o.Writes, Hits: s.Hits + o.Hits}
}

func (s IOStats) String() string {
	return fmt.Sprintf("reads=%d writes=%d hits=%d", s.Reads, s.Writes, s.Hits)
}
