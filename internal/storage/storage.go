// Package storage implements the paged storage substrate used by every
// other component of the repository: an in-memory simulated disk holding
// slotted pages, a buffer pool with LRU replacement, heap files for table
// records, and I/O statistics.
//
// The buffer pool is the cost currency of the whole reproduction. The
// dynamic optimizer described in the paper reasons about retrieval cost in
// units of page I/Os; here every buffer-pool miss counts as one simulated
// read and every dirty-page eviction or explicit flush counts as one
// simulated write. Operators attribute costs to themselves by passing a
// per-query Tracker down through the tracked pool accessors (GetTracked,
// GetDirtyTracked, NewPageTracked); the pool charges each hit, miss, and
// eviction write-back to both the global atomic counters and the tracker,
// so attribution stays exact even while many queries run concurrently.
// The pool itself is sharded (see BufferPool) so unrelated page touches
// do not contend on one mutex.
package storage

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// DefaultPageSize is the byte budget of a page when a Disk is created
// with size 0. It mirrors a common database page size.
const DefaultPageSize = 8192

// slotOverhead is the per-record bookkeeping charge inside a page. It
// models the slot directory entry of a classic slotted page.
const slotOverhead = 4

// Errors returned by the storage layer.
var (
	ErrPageFull     = errors.New("storage: page full")
	ErrNoSuchPage   = errors.New("storage: no such page")
	ErrNoSuchSlot   = errors.New("storage: no such slot")
	ErrNoSuchFile   = errors.New("storage: no such file")
	ErrRecordTooBig = errors.New("storage: record exceeds page capacity")
)

// FileID names a file on the simulated disk.
type FileID uint32

// PageNo is the ordinal of a page within a file.
type PageNo uint32

// PageID uniquely names a page on the disk.
type PageID struct {
	File FileID
	No   PageNo
}

func (p PageID) String() string { return fmt.Sprintf("%d:%d", p.File, p.No) }

// RID is a record identifier: the page and slot where a record lives.
// RIDs are the values stored in index leaves and the items carried by
// RID lists during Jscan.
type RID struct {
	Page PageID
	Slot uint16
}

func (r RID) String() string { return fmt.Sprintf("%s.%d", r.Page, r.Slot) }

// Less orders RIDs by file, page, then slot. Sorting a RID list into
// this order makes the final fetch stage visit each page once.
func (r RID) Less(o RID) bool {
	if r.Page.File != o.Page.File {
		return r.Page.File < o.Page.File
	}
	if r.Page.No != o.Page.No {
		return r.Page.No < o.Page.No
	}
	return r.Slot < o.Slot
}

// Key packs the RID into an integer that preserves Less order for file
// IDs below 2^16. It is the hash input for bitmap filters; the file ID
// is mixed in so RIDs in different files with the same page and slot do
// not collide.
func (r RID) Key() uint64 {
	return uint64(r.Page.File)<<48 | uint64(r.Page.No)<<16 | uint64(r.Slot)
}

// Compare returns -1, 0, or +1 ordering r against o.
func (r RID) Compare(o RID) int {
	switch {
	case r.Less(o):
		return -1
	case o.Less(r):
		return 1
	default:
		return 0
	}
}

// IOStats counts simulated I/O and cache traffic. The zero value is
// ready to use.
type IOStats struct {
	Reads  int64 // pages read from disk (buffer-pool misses)
	Writes int64 // pages written to disk (evictions and flushes)
	Hits   int64 // buffer-pool hits
}

// IOCost is the total number of simulated physical I/Os (reads+writes).
// It is the quantity the paper's cost model minimizes.
func (s IOStats) IOCost() int64 { return s.Reads + s.Writes }

// Sub returns the component-wise difference s-o. Operators use it to
// attribute cost to a step: Sub(snapshotBefore).
func (s IOStats) Sub(o IOStats) IOStats {
	return IOStats{Reads: s.Reads - o.Reads, Writes: s.Writes - o.Writes, Hits: s.Hits - o.Hits}
}

// Add returns the component-wise sum s+o.
func (s IOStats) Add(o IOStats) IOStats {
	return IOStats{Reads: s.Reads + o.Reads, Writes: s.Writes + o.Writes, Hits: s.Hits + o.Hits}
}

func (s IOStats) String() string {
	return fmt.Sprintf("reads=%d writes=%d hits=%d", s.Reads, s.Writes, s.Hits)
}

// Tracker accumulates the I/O charged to one consumer — typically one
// scan leg of one query. The tracked BufferPool accessors charge it in
// addition to the pool's global counters, which keeps per-step cost
// attribution exact while other queries hammer the same pool (the
// global-delta snapshot trick the engine used before is wrong under
// concurrency).
//
// All methods are safe for concurrent use, and all are safe on a nil
// receiver (a nil tracker charges nothing), so untracked call sites pay
// only a nil check.
//
// A tracker may carry a Governor (see NewTracker): every read and write
// it records is also charged against the governor's per-query budget,
// and the buffer pool consults Err before each page access, turning the
// pool into the cooperative cancellation checkpoint.
type Tracker struct {
	reads  atomic.Int64
	writes atomic.Int64
	hits   atomic.Int64
	gov    *Governor
}

// NewTracker returns a tracker charging gov (which may be nil for an
// ungoverned tracker, equivalent to new(Tracker)).
func NewTracker(gov *Governor) *Tracker {
	return &Tracker{gov: gov}
}

// Err reports why the tracked query must stop (context cancelled,
// deadline expired, or I/O budget exhausted), or nil to continue. The
// buffer pool calls it before every page access on behalf of the query.
func (t *Tracker) Err() error {
	if t == nil {
		return nil
	}
	return t.gov.Err()
}

// Governor returns the tracker's governor (nil if ungoverned).
func (t *Tracker) Governor() *Governor {
	if t == nil {
		return nil
	}
	return t.gov
}

func (t *Tracker) read() {
	if t != nil {
		t.reads.Add(1)
		t.gov.charge(1)
	}
}

func (t *Tracker) write() {
	if t != nil {
		t.writes.Add(1)
		t.gov.charge(1)
	}
}

func (t *Tracker) hit() {
	if t != nil {
		t.hits.Add(1)
	}
}

// hitN records n hits at once; batched accessors use it to charge a
// clustered run of record accesses in one step. Hits never charge the
// governor (they cost no physical I/O), matching hit().
func (t *Tracker) hitN(n int64) {
	if t != nil && n > 0 {
		t.hits.Add(n)
	}
}

// Stats returns a snapshot of the tracker's counters.
func (t *Tracker) Stats() IOStats {
	if t == nil {
		return IOStats{}
	}
	return IOStats{Reads: t.reads.Load(), Writes: t.writes.Load(), Hits: t.hits.Load()}
}

// IOCost returns reads+writes charged so far — the paper's cost unit.
func (t *Tracker) IOCost() int64 {
	if t == nil {
		return 0
	}
	return t.reads.Load() + t.writes.Load()
}

// MergeStats folds a counter snapshot into t. Merging is associative
// and commutative (the counters are sums), so any partition of a scan's
// charges across worker trackers, merged in any order and grouping,
// equals the sequential total — the invariant partitioned scans rely on
// for exact per-query attribution.
//
// The governor is deliberately NOT charged: worker trackers share the
// query's governor and charged it live at access time, so a merge is
// pure bookkeeping and the budget is never double-counted.
func (t *Tracker) MergeStats(s IOStats) {
	if t == nil {
		return
	}
	t.reads.Add(s.Reads)
	t.writes.Add(s.Writes)
	t.hits.Add(s.Hits)
}

// Merge folds a snapshot of o's counters into t (see MergeStats). o may
// be nil or may keep accumulating afterwards; only the charges recorded
// at snapshot time move.
func (t *Tracker) Merge(o *Tracker) { t.MergeStats(o.Stats()) }

// Reset zeroes the tracker.
func (t *Tracker) Reset() {
	if t == nil {
		return
	}
	t.reads.Store(0)
	t.writes.Store(0)
	t.hits.Store(0)
}
