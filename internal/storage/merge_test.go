package storage

import (
	"math/rand"
	"testing"
)

// applyCharge replays one recorded charge kind against a tracker using
// the same internal accessors the buffer pool calls.
func applyCharge(tr *Tracker, kind int) {
	switch kind % 3 {
	case 0:
		tr.read()
	case 1:
		tr.write()
	default:
		tr.hit()
	}
}

// TestTrackerMergeQuickcheck is the partitioned-scan attribution
// property: take any sequence of charges (a scan's page accesses),
// partition it arbitrarily across any number of worker trackers, merge
// the workers in any order and any grouping (pairwise Merge calls form
// an arbitrary reduction tree), and the result must equal charging one
// tracker sequentially. This is what lets core/parallel.go hand each
// partition worker its own tracker and still report exact per-query
// attributed I/O at the barrier.
func TestTrackerMergeQuickcheck(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	for iter := 0; iter < 500; iter++ {
		nops := 1 + rng.Intn(300)
		charges := make([]int, nops)
		seq := NewTracker(nil)
		for i := range charges {
			charges[i] = rng.Intn(3)
			applyCharge(seq, charges[i])
		}
		want := seq.Stats()

		// Partition the sequence into 1..8 contiguous worker shares
		// (contiguous mirrors the executor's range partitioning, but any
		// assignment works — counters are order-free sums).
		k := 1 + rng.Intn(8)
		workers := make([]*Tracker, k)
		for i := range workers {
			workers[i] = NewTracker(nil)
		}
		if rng.Intn(2) == 0 {
			// Contiguous chunks.
			for i, c := range charges {
				applyCharge(workers[i*k/nops], c)
			}
		} else {
			// Arbitrary assignment.
			for _, c := range charges {
				applyCharge(workers[rng.Intn(k)], c)
			}
		}

		// Merge with a random reduction tree: repeatedly fold a random
		// tracker into another random one until a single root remains.
		pool := append([]*Tracker(nil), workers...)
		for len(pool) > 1 {
			i := rng.Intn(len(pool))
			j := rng.Intn(len(pool) - 1)
			if j >= i {
				j++
			}
			pool[i].Merge(pool[j])
			pool = append(pool[:j], pool[j+1:]...)
		}
		got := pool[0].Stats()

		if got != want {
			t.Fatalf("iter %d: merged %+v, sequential %+v (k=%d, n=%d)", iter, got, want, k, nops)
		}
		if got.IOCost() != want.IOCost() {
			t.Fatalf("iter %d: merged cost %d, sequential %d", iter, got.IOCost(), want.IOCost())
		}
	}
}

// TestTrackerMergeDoesNotChargeGovernor: workers share the query's
// governor and charge it live at access time, so the barrier merge must
// fold counters only — re-charging would double-bill the budget.
func TestTrackerMergeDoesNotChargeGovernor(t *testing.T) {
	gov := NewGovernor(nil, 100)
	parent := NewTracker(gov)
	worker := NewTracker(gov)
	worker.read()
	worker.write()
	if spent := gov.Spent(); spent != 2 {
		t.Fatalf("worker charges: governor spent %d, want 2", spent)
	}
	parent.Merge(worker)
	if spent := gov.Spent(); spent != 2 {
		t.Fatalf("merge re-charged the governor: spent %d, want 2", spent)
	}
	if got := parent.Stats(); got != (IOStats{Reads: 1, Writes: 1}) {
		t.Fatalf("parent stats %+v after merge", got)
	}
	// Nil-safety mirrors the rest of the Tracker API.
	var nilT *Tracker
	nilT.Merge(worker)
	parent.Merge(nil)
	if got := parent.Stats(); got != (IOStats{Reads: 1, Writes: 1}) {
		t.Fatalf("nil merges changed stats: %+v", got)
	}
}
