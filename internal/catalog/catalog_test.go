package catalog

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"rdbdyn/internal/expr"
	"rdbdyn/internal/storage"
)

func newCatalog() *Catalog {
	return New(storage.NewBufferPool(storage.NewDisk(2048), 0))
}

func familiesTable(t *testing.T) (*Catalog, *Table) {
	t.Helper()
	c := newCatalog()
	tb, err := c.CreateTable("FAMILIES", []Column{
		{Name: "ID", Type: expr.TypeInt},
		{Name: "AGE", Type: expr.TypeInt},
		{Name: "NAME", Type: expr.TypeString},
		{Name: "INCOME", Type: expr.TypeFloat},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, tb
}

func TestCreateTableValidation(t *testing.T) {
	c := newCatalog()
	if _, err := c.CreateTable("T", nil); err == nil {
		t.Fatal("no columns accepted")
	}
	if _, err := c.CreateTable("T", []Column{{Name: "A", Type: expr.TypeInt}, {Name: "A", Type: expr.TypeInt}}); err == nil {
		t.Fatal("duplicate column accepted")
	}
	if _, err := c.CreateTable("T", []Column{{Name: "A", Type: expr.TypeInt}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateTable("T", []Column{{Name: "B", Type: expr.TypeInt}}); !errors.Is(err, ErrDuplicateTable) {
		t.Fatalf("duplicate table: %v", err)
	}
	if _, err := c.Table("MISSING"); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("missing table: %v", err)
	}
	if got, err := c.Table("T"); err != nil || got.Name != "T" {
		t.Fatalf("lookup: %v %v", got, err)
	}
}

func TestInsertFetchRoundTrip(t *testing.T) {
	_, tb := familiesTable(t)
	row := expr.Row{expr.Int(1), expr.Int(42), expr.Str("jones"), expr.Float(55000)}
	rid, err := tb.Insert(row)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tb.Fetch(rid)
	if err != nil {
		t.Fatal(err)
	}
	for i := range row {
		if expr.Compare(got[i], row[i]) != 0 {
			t.Fatalf("column %d: %v != %v", i, got[i], row[i])
		}
	}
	if tb.Cardinality() != 1 {
		t.Fatalf("cardinality = %d", tb.Cardinality())
	}
}

func TestInsertValidation(t *testing.T) {
	_, tb := familiesTable(t)
	if _, err := tb.Insert(expr.Row{expr.Int(1)}); !errors.Is(err, ErrArity) {
		t.Fatalf("arity: %v", err)
	}
	bad := expr.Row{expr.Int(1), expr.Str("not-an-int"), expr.Str("x"), expr.Float(1)}
	if _, err := tb.Insert(bad); !errors.Is(err, ErrType) {
		t.Fatalf("type: %v", err)
	}
	// NULLs pass type checking.
	nulls := expr.Row{expr.Int(1), expr.Null(), expr.Null(), expr.Null()}
	if _, err := tb.Insert(nulls); err != nil {
		t.Fatalf("nulls rejected: %v", err)
	}
}

func TestIndexMaintenanceOnInsert(t *testing.T) {
	_, tb := familiesTable(t)
	ix, err := tb.CreateIndex("AGE_IX", "AGE")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		row := expr.Row{expr.Int(int64(i)), expr.Int(int64(i % 50)), expr.Str("n"), expr.Float(0)}
		if _, err := tb.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	if ix.Tree.Len() != 500 {
		t.Fatalf("index has %d entries, want 500", ix.Tree.Len())
	}
	// Range count over the index matches predicate truth.
	r := expr.Range{
		Lo: expr.Bound{Value: expr.Int(10), Inclusive: true, Present: true},
		Hi: expr.Bound{Value: expr.Int(20), Present: true},
	}
	lo, hi := r.EncodedBounds()
	n, err := ix.Tree.CountRange(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 { // ages 10..19, 10 each
		t.Fatalf("CountRange = %d, want 100", n)
	}
}

func TestCreateIndexBackfills(t *testing.T) {
	_, tb := familiesTable(t)
	for i := 0; i < 300; i++ {
		row := expr.Row{expr.Int(int64(i)), expr.Int(int64(i)), expr.Str("x"), expr.Float(0)}
		if _, err := tb.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := tb.CreateIndex("LATE_IX", "AGE")
	if err != nil {
		t.Fatal(err)
	}
	if ix.Tree.Len() != 300 {
		t.Fatalf("backfill produced %d entries, want 300", ix.Tree.Len())
	}
	if _, err := tb.CreateIndex("LATE_IX", "AGE"); !errors.Is(err, ErrDuplicateIndex) {
		t.Fatalf("duplicate index: %v", err)
	}
	if _, err := tb.CreateIndex("BAD", "NOPE"); !errors.Is(err, ErrNoSuchColumn) {
		t.Fatalf("bad column: %v", err)
	}
}

func TestDeleteMaintainsIndexes(t *testing.T) {
	_, tb := familiesTable(t)
	ix, _ := tb.CreateIndex("AGE_IX", "AGE")
	var rids []storage.RID
	for i := 0; i < 100; i++ {
		rid, err := tb.Insert(expr.Row{expr.Int(int64(i)), expr.Int(int64(i)), expr.Str("x"), expr.Float(0)})
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	for i := 0; i < 100; i += 2 {
		if err := tb.Delete(rids[i]); err != nil {
			t.Fatal(err)
		}
	}
	if tb.Cardinality() != 50 {
		t.Fatalf("cardinality = %d", tb.Cardinality())
	}
	if ix.Tree.Len() != 50 {
		t.Fatalf("index entries = %d", ix.Tree.Len())
	}
}

func TestMultiColumnIndexAndDecodeEntry(t *testing.T) {
	_, tb := familiesTable(t)
	ix, err := tb.CreateIndex("NAME_AGE", "NAME", "AGE")
	if err != nil {
		t.Fatal(err)
	}
	row := expr.Row{expr.Int(9), expr.Int(33), expr.Str("smith"), expr.Float(1)}
	if _, err := tb.Insert(row); err != nil {
		t.Fatal(err)
	}
	key := ix.KeyFor(row)
	back, err := ix.DecodeEntry(key)
	if err != nil {
		t.Fatal(err)
	}
	if back[2].S != "smith" || back[1].I != 33 {
		t.Fatalf("DecodeEntry wrong: %v", back)
	}
	if !back[0].IsNull() {
		t.Fatal("non-key columns must decode as NULL")
	}
}

func TestCoversAndDeliversOrder(t *testing.T) {
	_, tb := familiesTable(t)
	ix, _ := tb.CreateIndex("NAME_AGE", "NAME", "AGE")
	ageCol, _ := tb.ColumnIndex("AGE")
	nameCol, _ := tb.ColumnIndex("NAME")
	incomeCol, _ := tb.ColumnIndex("INCOME")
	if !ix.Covers([]int{ageCol, nameCol}) {
		t.Fatal("index covers NAME and AGE")
	}
	if ix.Covers([]int{ageCol, incomeCol}) {
		t.Fatal("index must not cover INCOME")
	}
	if !ix.Covers(nil) {
		t.Fatal("empty set is always covered")
	}
	if !ix.DeliversOrder([]int{nameCol}) || !ix.DeliversOrder([]int{nameCol, ageCol}) {
		t.Fatal("prefix orders must be delivered")
	}
	if ix.DeliversOrder([]int{ageCol}) {
		t.Fatal("non-prefix order must not be delivered")
	}
	if ix.DeliversOrder([]int{nameCol, ageCol, incomeCol}) {
		t.Fatal("order longer than key must not be delivered")
	}
}

func TestClusterRatioDistinguishesLayouts(t *testing.T) {
	_, tb := familiesTable(t)
	clustered, _ := tb.CreateIndex("ID_IX", "ID")     // insertion order = key order
	unclustered, _ := tb.CreateIndex("AGE_IX", "AGE") // scattered
	rng := rand.New(rand.NewSource(4))
	perm := rng.Perm(2000)
	for i := 0; i < 2000; i++ {
		row := expr.Row{expr.Int(int64(i)), expr.Int(int64(perm[i])), expr.Str("abcdefgh"), expr.Float(0)}
		if _, err := tb.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	rc, err := clustered.EstimateClusterRatio(rng, 300)
	if err != nil {
		t.Fatal(err)
	}
	ru, err := unclustered.EstimateClusterRatio(rng, 300)
	if err != nil {
		t.Fatal(err)
	}
	if rc < 0.9 {
		t.Fatalf("clustered ratio = %v, want ~1", rc)
	}
	if ru > 0.5 {
		t.Fatalf("unclustered ratio = %v, want low", ru)
	}
}

func TestTableUpdateMaintainsIndexes(t *testing.T) {
	_, tb := familiesTable(t)
	ix, _ := tb.CreateIndex("AGE_IX", "AGE")
	rid, err := tb.Insert(expr.Row{expr.Int(1), expr.Int(30), expr.Str("x"), expr.Float(1)})
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Update(rid, expr.Row{expr.Int(1), expr.Int(77), expr.Str("y"), expr.Float(2)}); err != nil {
		t.Fatal(err)
	}
	got, err := tb.Fetch(rid)
	if err != nil || got[1].I != 77 || got[2].S != "y" {
		t.Fatalf("fetched %v, %v", got, err)
	}
	// The index moved to the new key.
	has, _ := ix.Tree.Contains(ix.KeyFor(got), rid)
	if !has {
		t.Fatal("new key missing from index")
	}
	oldKey := expr.EncodeKey(nil, expr.Int(30))
	has, _ = ix.Tree.Contains(oldKey, rid)
	if has {
		t.Fatal("old key still in index")
	}
	if ix.Tree.Len() != 1 {
		t.Fatalf("index entries = %d", ix.Tree.Len())
	}
	// Updates are type-checked.
	if err := tb.Update(rid, expr.Row{expr.Int(1), expr.Str("no"), expr.Str("y"), expr.Float(2)}); err == nil {
		t.Fatal("type mismatch accepted")
	}
	// Updating a missing RID fails.
	bad := storage.RID{Page: rid.Page, Slot: rid.Slot + 99}
	if err := tb.Update(bad, got); err == nil {
		t.Fatal("phantom update accepted")
	}
}

func TestDropIndex(t *testing.T) {
	_, tb := familiesTable(t)
	if _, err := tb.CreateIndex("AGE_IX", "AGE"); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.CreateIndex("NAME_IX", "NAME"); err != nil {
		t.Fatal(err)
	}
	v := tb.Version()
	if err := tb.DropIndex("AGE_IX"); err != nil {
		t.Fatal(err)
	}
	if tb.Version() != v+1 {
		t.Fatalf("version = %d, want %d", tb.Version(), v+1)
	}
	if tb.IndexByName("AGE_IX") != nil {
		t.Fatal("dropped index still visible")
	}
	if tb.IndexByName("NAME_IX") == nil {
		t.Fatal("surviving index lost")
	}
	if err := tb.DropIndex("AGE_IX"); !errors.Is(err, ErrNoSuchIndex) {
		t.Fatalf("double drop: %v", err)
	}
	// The dropped name can be re-created.
	if _, err := tb.CreateIndex("AGE_IX", "AGE"); err != nil {
		t.Fatal(err)
	}
}

func TestEpochCounters(t *testing.T) {
	_, tb := familiesTable(t)
	if tb.Version() != 0 || tb.StatsEpoch() != 0 {
		t.Fatal("fresh table must start at epoch zero")
	}
	rid, err := tb.Insert(expr.Row{expr.Int(1), expr.Int(30), expr.Str("x"), expr.Float(1)})
	if err != nil {
		t.Fatal(err)
	}
	if tb.StatsEpoch() != 1 {
		t.Fatalf("stats epoch after insert = %d", tb.StatsEpoch())
	}
	if err := tb.Update(rid, expr.Row{expr.Int(1), expr.Int(31), expr.Str("x"), expr.Float(1)}); err != nil {
		t.Fatal(err)
	}
	if err := tb.Delete(rid); err != nil {
		t.Fatal(err)
	}
	if tb.StatsEpoch() != 3 {
		t.Fatalf("stats epoch after update+delete = %d", tb.StatsEpoch())
	}
	if tb.Version() != 0 {
		t.Fatal("row mutations must not bump the schema version")
	}
	if _, err := tb.CreateIndex("AGE_IX", "AGE"); err != nil {
		t.Fatal(err)
	}
	if tb.Version() != 1 {
		t.Fatalf("version after create = %d", tb.Version())
	}
	// RLock excludes writers for its duration.
	unlock := tb.RLock()
	before := tb.StatsEpoch()
	done := make(chan struct{})
	go func() {
		_, _ = tb.Insert(expr.Row{expr.Int(2), expr.Int(5), expr.Str("y"), expr.Float(0)})
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("insert completed while read lock held")
	case <-time.After(20 * time.Millisecond):
	}
	if tb.StatsEpoch() != before {
		t.Fatal("stats moved under read lock")
	}
	unlock()
	<-done
	if tb.StatsEpoch() != before+1 {
		t.Fatal("insert did not land after unlock")
	}
}

func TestCatalogAccessors(t *testing.T) {
	c, tb := familiesTable(t)
	if c.Pool() == nil || tb.Pool() == nil {
		t.Fatal("pool accessors nil")
	}
	if got := c.Tables(); len(got) != 1 || got[0] != "FAMILIES" {
		t.Fatalf("Tables = %v", got)
	}
	if tb.Pages() != tb.Heap.NumPages() {
		t.Fatal("Pages mismatch")
	}
	ix, _ := tb.CreateIndex("NA", "NAME", "AGE")
	nameCol, _ := tb.ColumnIndex("NAME")
	if ix.LeadingCol() != nameCol {
		t.Fatalf("leading col = %d", ix.LeadingCol())
	}
}
