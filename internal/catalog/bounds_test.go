package catalog

import (
	"testing"

	"rdbdyn/internal/expr"
	"rdbdyn/internal/storage"
)

// boundsTable builds a table with a composite (A, B) index and
// 10x10 rows covering every (A, B) pair in [0,10)x[0,10).
func boundsTable(t *testing.T) (*Table, *Index) {
	t.Helper()
	cat := New(storage.NewBufferPool(storage.NewDisk(4096), 0))
	tab, err := cat.CreateTable("G", []Column{
		{Name: "A", Type: expr.TypeInt},
		{Name: "B", Type: expr.TypeInt},
		{Name: "C", Type: expr.TypeInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := tab.CreateIndex("AB", "A", "B")
	if err != nil {
		t.Fatal(err)
	}
	for a := int64(0); a < 10; a++ {
		for b := int64(0); b < 10; b++ {
			if _, err := tab.Insert(expr.Row{expr.Int(a), expr.Int(b), expr.Int(a + b)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return tab, ix
}

// countBounds scans the index between the bounds and counts entries.
func countBounds(t *testing.T, ix *Index, lo, hi []byte) int {
	t.Helper()
	c, err := ix.Tree.Seek(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	num := 0
	for {
		_, _, ok, err := c.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return num
		}
		num++
	}
}

func cmpOn(tab *Table, t *testing.T, col string, op expr.CmpOp, v int64) expr.Expr {
	t.Helper()
	ci, err := tab.ColumnIndex(col)
	if err != nil {
		t.Fatal(err)
	}
	return expr.NewCmp(op, expr.Col(ci, col), expr.Lit(expr.Int(v)))
}

func TestRestrictionBoundsLeadingRange(t *testing.T) {
	tab, ix := boundsTable(t)
	e := cmpOn(tab, t, "A", expr.LT, 3)
	lo, hi, n, empty := ix.RestrictionBounds(e, nil)
	if n != 1 || empty {
		t.Fatalf("n=%d empty=%v", n, empty)
	}
	if got := countBounds(t, ix, lo, hi); got != 30 {
		t.Fatalf("A<3 scanned %d entries, want 30", got)
	}
}

func TestRestrictionBoundsEqualityPrefixPlusRange(t *testing.T) {
	tab, ix := boundsTable(t)
	e := expr.NewAnd(
		cmpOn(tab, t, "A", expr.EQ, 4),
		cmpOn(tab, t, "B", expr.GE, 7),
	)
	lo, hi, n, empty := ix.RestrictionBounds(e, nil)
	if n != 2 || empty {
		t.Fatalf("n=%d empty=%v", n, empty)
	}
	// A=4 AND B>=7: exactly 3 entries (B in {7,8,9}).
	if got := countBounds(t, ix, lo, hi); got != 3 {
		t.Fatalf("scanned %d entries, want 3", got)
	}
}

func TestRestrictionBoundsFullPointKey(t *testing.T) {
	tab, ix := boundsTable(t)
	e := expr.NewAnd(
		cmpOn(tab, t, "A", expr.EQ, 2),
		cmpOn(tab, t, "B", expr.EQ, 5),
	)
	lo, hi, n, empty := ix.RestrictionBounds(e, nil)
	if n != 2 || empty {
		t.Fatalf("n=%d empty=%v", n, empty)
	}
	if got := countBounds(t, ix, lo, hi); got != 1 {
		t.Fatalf("scanned %d entries, want 1", got)
	}
}

func TestRestrictionBoundsPrefixOnly(t *testing.T) {
	tab, ix := boundsTable(t)
	// Only A pinned; B unrestricted: 10 entries under the prefix.
	e := cmpOn(tab, t, "A", expr.EQ, 9)
	lo, hi, n, empty := ix.RestrictionBounds(e, nil)
	if n != 1 || empty {
		t.Fatalf("n=%d empty=%v", n, empty)
	}
	if got := countBounds(t, ix, lo, hi); got != 10 {
		t.Fatalf("scanned %d entries, want 10", got)
	}
}

func TestRestrictionBoundsSecondColumnOnlyIsUnsargable(t *testing.T) {
	tab, ix := boundsTable(t)
	// A restriction only on B cannot bound an (A, B) scan.
	e := cmpOn(tab, t, "B", expr.EQ, 5)
	lo, hi, n, _ := ix.RestrictionBounds(e, nil)
	if n != 0 || lo != nil || hi != nil {
		t.Fatalf("n=%d lo=%v hi=%v, want open", n, lo, hi)
	}
}

func TestRestrictionBoundsEmptyDetected(t *testing.T) {
	tab, ix := boundsTable(t)
	e := expr.NewAnd(
		cmpOn(tab, t, "A", expr.EQ, 4),
		expr.NewAnd(cmpOn(tab, t, "B", expr.GT, 8), cmpOn(tab, t, "B", expr.LT, 3)),
	)
	_, _, _, empty := ix.RestrictionBounds(e, nil)
	if !empty {
		t.Fatal("contradictory second column not detected")
	}
}

func TestRestrictionBoundsExclusiveEdges(t *testing.T) {
	tab, ix := boundsTable(t)
	e := expr.NewAnd(
		cmpOn(tab, t, "A", expr.EQ, 4),
		cmpOn(tab, t, "B", expr.GT, 2),
		cmpOn(tab, t, "B", expr.LE, 6),
	)
	lo, hi, _, empty := ix.RestrictionBounds(e, nil)
	if empty {
		t.Fatal("range is not empty")
	}
	// B in (2, 6]: {3,4,5,6} = 4 entries.
	if got := countBounds(t, ix, lo, hi); got != 4 {
		t.Fatalf("scanned %d entries, want 4", got)
	}
}

func TestRestrictionBoundsWithParams(t *testing.T) {
	tab, ix := boundsTable(t)
	aCol, _ := tab.ColumnIndex("A")
	bCol, _ := tab.ColumnIndex("B")
	e := expr.NewAnd(
		expr.NewCmp(expr.EQ, expr.Col(aCol, "A"), expr.Var("PA")),
		expr.NewCmp(expr.LT, expr.Col(bCol, "B"), expr.Var("PB")),
	)
	lo, hi, n, empty := ix.RestrictionBounds(e, expr.Bindings{"PA": expr.Int(1), "PB": expr.Int(4)})
	if n != 2 || empty {
		t.Fatalf("n=%d empty=%v", n, empty)
	}
	if got := countBounds(t, ix, lo, hi); got != 4 {
		t.Fatalf("scanned %d entries, want 4 (A=1, B<4)", got)
	}
	// Unbound: nothing sargable.
	_, _, n, _ = ix.RestrictionBounds(e, nil)
	if n != 0 {
		t.Fatalf("unbound params must not be sargable, n=%d", n)
	}
}
