// Package catalog defines tables, columns, and index metadata, and keeps
// heap files and B-tree indexes consistent under inserts and deletes.
//
// Concurrency: the catalog registry is guarded by an RWMutex, so table
// registration and lookup are safe from any goroutine. Each table
// serializes its mutations (Insert/Update/Delete/CreateIndex) behind a
// per-table mutex; read paths (Fetch, index scans) may run concurrently
// with each other, but a mutation must not overlap reads of the same
// table — higher layers or the application schedule that.
//
// The catalog is also where the paper's per-query index classification
// (Section 4) gets its raw material: an index is *self-sufficient* for a
// query when its key columns cover every column the query touches,
// *order-needed* when its leading columns deliver the requested order,
// and *fetch-needed* otherwise.
package catalog

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"rdbdyn/internal/btree"
	"rdbdyn/internal/expr"
	"rdbdyn/internal/storage"
)

// Errors returned by the catalog.
var (
	ErrDuplicateTable = errors.New("catalog: table already exists")
	ErrNoSuchTable    = errors.New("catalog: no such table")
	ErrDuplicateIndex = errors.New("catalog: index already exists")
	ErrNoSuchIndex    = errors.New("catalog: no such index")
	ErrNoSuchColumn   = errors.New("catalog: no such column")
	ErrArity          = errors.New("catalog: row arity mismatch")
	ErrType           = errors.New("catalog: value type mismatch")
)

// Column describes one table column.
type Column struct {
	Name string
	Type expr.Type
}

// Catalog is the schema registry of one database. Registration and
// lookup are safe for concurrent use.
type Catalog struct {
	pool   *storage.BufferPool
	mu     sync.RWMutex
	tables map[string]*Table
}

// New creates an empty catalog over a buffer pool.
func New(pool *storage.BufferPool) *Catalog {
	return &Catalog{pool: pool, tables: make(map[string]*Table)}
}

// Pool returns the buffer pool the catalog's objects live on.
func (c *Catalog) Pool() *storage.BufferPool { return c.pool }

// CreateTable registers a new table with the given columns.
func (c *Catalog) CreateTable(name string, cols []Column) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[name]; ok {
		return nil, fmt.Errorf("%w: %s", ErrDuplicateTable, name)
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("catalog: table %s has no columns", name)
	}
	seen := map[string]bool{}
	for _, col := range cols {
		if col.Name == "" || seen[col.Name] {
			return nil, fmt.Errorf("catalog: bad column name %q in %s", col.Name, name)
		}
		seen[col.Name] = true
	}
	t := &Table{
		Name:    name,
		Columns: append([]Column(nil), cols...),
		Heap:    storage.NewHeapFile(c.pool),
		pool:    c.pool,
	}
	c.tables[name] = t
	return t, nil
}

// Table looks a table up by name.
func (c *Catalog) Table(name string) (*Table, error) {
	c.mu.RLock()
	t, ok := c.tables[name]
	c.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchTable, name)
	}
	return t, nil
}

// Tables returns all table names.
func (c *Catalog) Tables() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	return out
}

// Table is a named relation: a heap file plus its indexes.
type Table struct {
	Name    string
	Columns []Column
	Heap    *storage.HeapFile
	Indexes []*Index

	pool *storage.BufferPool
	// wmu serializes mutations (Insert/Update/Delete/CreateIndex,
	// DropIndex) so concurrent writers cannot corrupt the heap or the
	// index trees. Readers that need a consistent statistics snapshot
	// across cardinality, page counts, and index ranges (Stmt.Freeze's
	// sniffing pass) hold the read side for the duration.
	wmu sync.RWMutex
	// version counts schema changes (CreateIndex/DropIndex); statsEpoch
	// counts row mutations. Frozen plans and cache entries record both
	// at capture time and revalidate lazily against them.
	version    atomic.Uint64
	statsEpoch atomic.Uint64
}

// ColumnIndex returns the position of the named column.
func (t *Table) ColumnIndex(name string) (int, error) {
	for i, c := range t.Columns {
		if c.Name == name {
			return i, nil
		}
	}
	return -1, fmt.Errorf("%w: %s.%s", ErrNoSuchColumn, t.Name, name)
}

// Cardinality returns the number of live rows.
func (t *Table) Cardinality() int64 { return t.Heap.Count() }

// Version returns the schema version: it advances whenever an index is
// created or dropped, invalidating any plan that chose among the
// table's indexes.
func (t *Table) Version() uint64 { return t.version.Load() }

// StatsEpoch returns the statistics epoch: it advances on every row
// mutation, so a plan frozen against stale cardinalities can detect
// how far the table has moved since.
func (t *Table) StatsEpoch() uint64 { return t.statsEpoch.Load() }

// RLock takes the table's mutation lock in read mode and returns the
// matching unlock. While held, no Insert/Update/Delete/CreateIndex/
// DropIndex can run, so statistics reads (Cardinality, Pages, index
// ranges) observe one consistent snapshot.
func (t *Table) RLock() func() {
	t.wmu.RLock()
	return t.wmu.RUnlock
}

// Pool returns the buffer pool the table's pages live on.
func (t *Table) Pool() *storage.BufferPool { return t.pool }

// Pages returns the number of heap pages — the cost of a full Tscan.
func (t *Table) Pages() int { return t.Heap.NumPages() }

// checkRow validates arity and types (NULL is allowed anywhere).
func (t *Table) checkRow(row expr.Row) error {
	if len(row) != len(t.Columns) {
		return fmt.Errorf("%w: got %d values for %d columns", ErrArity, len(row), len(t.Columns))
	}
	for i, v := range row {
		if v.IsNull() {
			continue
		}
		if v.T != t.Columns[i].Type {
			return fmt.Errorf("%w: column %s wants %s, got %s",
				ErrType, t.Columns[i].Name, t.Columns[i].Type, v.T)
		}
	}
	return nil
}

// Insert stores a row and maintains every index. It returns the row's
// RID. Inserts on the same table serialize behind a per-table mutex.
func (t *Table) Insert(row expr.Row) (storage.RID, error) {
	if err := t.checkRow(row); err != nil {
		return storage.RID{}, err
	}
	t.wmu.Lock()
	defer t.wmu.Unlock()
	rid, err := t.Heap.Insert(expr.EncodeRow(row))
	if err != nil {
		return storage.RID{}, err
	}
	for _, ix := range t.Indexes {
		if err := ix.Tree.Insert(ix.KeyFor(row), rid); err != nil {
			return storage.RID{}, fmt.Errorf("catalog: index %s: %w", ix.Name, err)
		}
	}
	t.statsEpoch.Add(1)
	return rid, nil
}

// Fetch reads and decodes the row at rid.
func (t *Table) Fetch(rid storage.RID) (expr.Row, error) { return t.FetchTracked(rid, nil) }

// FetchTracked is Fetch charging the page access to tr.
func (t *Table) FetchTracked(rid storage.RID, tr *storage.Tracker) (expr.Row, error) {
	rec, err := t.Heap.GetTracked(rid, tr)
	if err != nil {
		return nil, err
	}
	return expr.DecodeRow(rec)
}

// Update replaces the row at rid, maintaining every index whose key
// changes. The new row must satisfy the table's types and fit in the
// page (records in this simulator are similar sizes, so in-place update
// virtually always fits; a genuine overflow surfaces as an error).
func (t *Table) Update(rid storage.RID, newRow expr.Row) error {
	if err := t.checkRow(newRow); err != nil {
		return err
	}
	t.wmu.Lock()
	defer t.wmu.Unlock()
	oldRow, err := t.Fetch(rid)
	if err != nil {
		return err
	}
	p, err := t.pool.GetDirty(rid.Page)
	if err != nil {
		return err
	}
	if err := p.Update(rid.Slot, expr.EncodeRow(newRow)); err != nil {
		return err
	}
	for _, ix := range t.Indexes {
		oldKey, newKey := ix.KeyFor(oldRow), ix.KeyFor(newRow)
		if expr.CompareKeys(oldKey, newKey) == 0 {
			continue
		}
		if _, err := ix.Tree.Delete(oldKey, rid); err != nil {
			return fmt.Errorf("catalog: index %s: %w", ix.Name, err)
		}
		if err := ix.Tree.Insert(newKey, rid); err != nil {
			return fmt.Errorf("catalog: index %s: %w", ix.Name, err)
		}
	}
	t.statsEpoch.Add(1)
	return nil
}

// Delete removes the row at rid from the heap and all indexes.
func (t *Table) Delete(rid storage.RID) error {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	row, err := t.Fetch(rid)
	if err != nil {
		return err
	}
	for _, ix := range t.Indexes {
		if _, err := ix.Tree.Delete(ix.KeyFor(row), rid); err != nil {
			return fmt.Errorf("catalog: index %s: %w", ix.Name, err)
		}
	}
	t.statsEpoch.Add(1)
	return t.Heap.Delete(rid)
}

// CreateIndex builds a B-tree index over the named columns, populating
// it from existing rows.
func (t *Table) CreateIndex(name string, colNames ...string) (*Index, error) {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	for _, ix := range t.Indexes {
		if ix.Name == name {
			return nil, fmt.Errorf("%w: %s", ErrDuplicateIndex, name)
		}
	}
	if len(colNames) == 0 {
		return nil, fmt.Errorf("catalog: index %s has no columns", name)
	}
	cols := make([]int, len(colNames))
	for i, cn := range colNames {
		ci, err := t.ColumnIndex(cn)
		if err != nil {
			return nil, err
		}
		cols[i] = ci
	}
	tree, err := btree.New(t.pool, t.Heap.File())
	if err != nil {
		return nil, err
	}
	ix := &Index{Name: name, Table: t, Cols: cols, Tree: tree}
	// Backfill from existing rows.
	c := t.Heap.Cursor()
	for {
		rec, rid, ok, err := c.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		row, err := expr.DecodeRow(rec)
		if err != nil {
			return nil, err
		}
		if err := tree.Insert(ix.KeyFor(row), rid); err != nil {
			return nil, err
		}
	}
	t.Indexes = append(t.Indexes, ix)
	t.version.Add(1)
	return ix, nil
}

// DropIndex removes the named index from the table's index set and
// bumps the schema version so frozen plans and cache entries that
// chose it revalidate. The tree's pages are left to the pool (this
// simulator has no free-list); what matters is that no future plan
// can select the index.
func (t *Table) DropIndex(name string) error {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	for i, ix := range t.Indexes {
		if ix.Name == name {
			// Copy-on-write so an in-flight reader ranging over the old
			// slice never observes shifted elements.
			next := make([]*Index, 0, len(t.Indexes)-1)
			next = append(next, t.Indexes[:i]...)
			next = append(next, t.Indexes[i+1:]...)
			t.Indexes = next
			t.version.Add(1)
			return nil
		}
	}
	return fmt.Errorf("%w: %s.%s", ErrNoSuchIndex, t.Name, name)
}

// IndexByName looks an index up by name, or nil when absent.
func (t *Table) IndexByName(name string) *Index {
	for _, ix := range t.Indexes {
		if ix.Name == name {
			return ix
		}
	}
	return nil
}

// Index is a B-tree secondary index over one or more columns.
type Index struct {
	Name  string
	Table *Table
	Cols  []int // column positions; Cols[0] is the leading column
	Tree  *btree.BTree
}

// LeadingCol returns the position of the index's leading column — the
// column whose restriction range drives the index scan.
func (ix *Index) LeadingCol() int { return ix.Cols[0] }

// KeyFor encodes the index key of a row.
func (ix *Index) KeyFor(row expr.Row) []byte {
	vals := make([]expr.Value, len(ix.Cols))
	for i, c := range ix.Cols {
		vals[i] = row[c]
	}
	return expr.EncodeKey(nil, vals...)
}

// KeyTypes returns the expected types of the key columns, for DecodeKey.
func (ix *Index) KeyTypes() []expr.Type {
	ts := make([]expr.Type, len(ix.Cols))
	for i, c := range ix.Cols {
		ts[i] = ix.Table.Columns[c].Type
	}
	return ts
}

// DecodeEntry converts an index entry key back into the key column
// values, positioned into a full-width row (non-key columns NULL) so
// restrictions that only touch key columns can be evaluated against it.
func (ix *Index) DecodeEntry(key []byte) (expr.Row, error) {
	vals, err := expr.DecodeKey(key, ix.KeyTypes())
	if err != nil {
		return nil, err
	}
	row := make(expr.Row, len(ix.Table.Columns))
	for i, c := range ix.Cols {
		row[c] = vals[i]
	}
	return row, nil
}

// Covers reports whether the index key columns include every column in
// cols — the self-sufficiency test of Section 4.
func (ix *Index) Covers(cols []int) bool {
	for _, c := range cols {
		found := false
		for _, k := range ix.Cols {
			if k == c {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// DeliversOrder reports whether an ascending scan of the index yields
// rows ordered by the given column positions — the order-needed test.
func (ix *Index) DeliversOrder(order []int) bool {
	if len(order) > len(ix.Cols) {
		return false
	}
	for i, c := range order {
		if ix.Cols[i] != c {
			return false
		}
	}
	return true
}

// RestrictionBounds derives the encoded key bounds an index scan must
// cover for a restriction under bindings, using as many key columns as
// the restriction pins: leading columns with point (equality) ranges
// extend the key prefix, the first column with a broader range
// contributes its bounds, and later columns are left to per-entry
// evaluation. It returns lo inclusive / hi exclusive (nil = open), how
// many conjuncts contributed, and whether the range is provably empty.
func (ix *Index) RestrictionBounds(e expr.Expr, binds expr.Bindings) (lo, hi []byte, sargable int, empty bool) {
	var prefix []expr.Value
	for _, col := range ix.Cols {
		rg, n := expr.ExtractRange(e, col, binds)
		if n == 0 {
			break
		}
		sargable += n
		if rg.Empty() {
			return nil, nil, sargable, true
		}
		if rg.IsPoint() {
			prefix = append(prefix, rg.Lo.Value)
			continue
		}
		// First non-point column: combine prefix and range bounds.
		base := expr.EncodeKey(nil, prefix...)
		if rg.Lo.Present {
			lo = expr.EncodeKey(append([]byte(nil), base...), rg.Lo.Value)
			if !rg.Lo.Inclusive {
				lo = expr.KeySuccessor(lo)
			}
		} else if len(prefix) > 0 {
			lo = base
		}
		if rg.Hi.Present {
			hi = expr.EncodeKey(append([]byte(nil), base...), rg.Hi.Value)
			if rg.Hi.Inclusive {
				hi = expr.KeySuccessor(hi)
			}
		} else if len(prefix) > 0 {
			hi = expr.KeySuccessor(base)
		}
		return lo, hi, sargable, false
	}
	if len(prefix) == 0 {
		return nil, nil, sargable, false
	}
	base := expr.EncodeKey(nil, prefix...)
	return base, expr.KeySuccessor(base), sargable, false
}

// EstimateClusterRatio samples consecutive index entries and reports
// the fraction whose RIDs land on the same or adjacent heap page — the
// clustering effect of Section 3(b), which "may not be known or may be
// hard to detect" and is measured here by cheap ranked sampling.
func (ix *Index) EstimateClusterRatio(rng *rand.Rand, samples int) (float64, error) {
	n := ix.Tree.Len()
	if n < 2 {
		return 1, nil
	}
	if samples < 1 {
		samples = 1
	}
	hits := 0
	for i := 0; i < samples; i++ {
		r := rng.Int63n(n - 1)
		_, rid1, err := ix.Tree.EntryAt(r)
		if err != nil {
			return 0, err
		}
		_, rid2, err := ix.Tree.EntryAt(r + 1)
		if err != nil {
			return 0, err
		}
		d := int64(rid2.Page.No) - int64(rid1.Page.No)
		if d < 0 {
			d = -d
		}
		if d <= 1 {
			hits++
		}
	}
	return float64(hits) / float64(samples), nil
}
