// Package competition implements the cost model of the paper's
// Section 3: competition between alternative plans whose costs follow
// L-shaped (truncated-hyperbola) distributions.
//
// The analytic half of the package evaluates the expected cost of
//
//   - the traditional arrangement (pick the lowest-mean plan, run it to
//     the end),
//   - direct competition with a switch point (run the riskier plan
//     until its invested cost reaches c2, then switch),
//   - proportional simultaneous runs (advance both plans with speeds
//     alpha : 1-alpha until the first completes),
//
// and finds optimal switch points and speed ratios numerically. The
// paper's headline claim — that the switch arrangement costs about
// (m2 + c2 + M1)/2, roughly half the traditional M1 — is reproduced by
// the package's tests and by the T3.C experiment.
//
// The runtime half is SwitchCriterion, the rule the Jscan executor
// (Section 6) applies while scanning: abandon the current index scan
// when the projected final retrieval cost approaches the guaranteed
// best cost, or when the scan cost itself starts to dominate it.
package competition

import (
	"fmt"
	"math"

	"rdbdyn/internal/dist"
)

// CostDist is a cost distribution: a shape on [0,1] scaled so that
// selectivity s corresponds to cost s*Scale.
type CostDist struct {
	D     *dist.Dist
	Scale float64
}

// NewCostDist wraps a shape with a scale.
func NewCostDist(d *dist.Dist, scale float64) (CostDist, error) {
	if d == nil || scale <= 0 {
		return CostDist{}, fmt.Errorf("competition: invalid cost distribution")
	}
	return CostDist{D: d, Scale: scale}, nil
}

// Mean returns the expected cost.
func (c CostDist) Mean() float64 { return c.D.Mean() * c.Scale }

// CDF returns P(C <= x).
func (c CostDist) CDF(x float64) float64 { return c.D.CDF(x / c.Scale) }

// Quantile returns the cost at quantile p.
func (c CostDist) Quantile(p float64) float64 { return c.D.Quantile(p) * c.Scale }

// PartialMean returns E[C * 1{C <= x}] — the mean restricted to
// completions at or below cost x (unnormalized).
func (c CostDist) PartialMean(x float64) float64 {
	var m float64
	n := c.D.N()
	for i := 0; i < n; i++ {
		cost := c.D.Center(i) * c.Scale
		if cost > x {
			break
		}
		m += c.D.Mass(i) * cost
	}
	return m
}

// LShaped builds the canonical L-shaped cost distribution of Section 3:
// headMass of the probability uniformly inside [0, head*scale] and the
// rest spread hyperbolically over (head*scale, scale]. It is the
// workload generator for competition experiments.
func LShaped(n int, scale, head, headMass float64) (CostDist, error) {
	if head <= 0 || head >= 1 || headMass <= 0 || headMass >= 1 {
		return CostDist{}, fmt.Errorf("competition: head and headMass must be in (0,1)")
	}
	d := dist.NewZero(n)
	w := make([]float64, n)
	for i := 0; i < n; i++ {
		s := d.Center(i)
		if s <= head {
			w[i] = headMass / head
		} else {
			// Hyperbolic tail ~ 1/(s + head); normalized below.
			w[i] = 1 / (s + head)
		}
	}
	// Normalize the tail region to carry 1-headMass.
	var tail float64
	for i := 0; i < n; i++ {
		if d.Center(i) > head {
			tail += w[i]
		}
	}
	for i := 0; i < n; i++ {
		if d.Center(i) > head {
			w[i] *= (1 - headMass) / tail * float64(n)
		}
	}
	dd, err := dist.FromWeights(w)
	if err != nil {
		return CostDist{}, err
	}
	return CostDist{D: dd, Scale: scale}, nil
}

// TraditionalCost returns the expected cost of the traditional
// optimizer's arrangement: run the lowest-mean plan to the end.
func TraditionalCost(plans ...CostDist) float64 {
	best := math.Inf(1)
	for _, p := range plans {
		if m := p.Mean(); m < best {
			best = m
		}
	}
	return best
}

// SwitchCost returns the expected cost of the direct-competition switch
// arrangement: run plan p2 until its invested cost reaches c2; if it
// has not completed, abandon it and run plan A1 (expected cost m1) from
// scratch.
//
//	E = E[C2 ; C2 <= c2] + P(C2 > c2) * (c2 + m1)
//
// With the paper's 50% head assumption this reduces to
// (m2 + c2 + M1)/2.
func SwitchCost(p2 CostDist, c2, m1 float64) float64 {
	pDone := p2.CDF(c2)
	return p2.PartialMean(c2) + (1-pDone)*(c2+m1)
}

// OptimalSwitch finds the switch point c2 minimizing SwitchCost by
// scanning the quantiles of p2. It returns the best point and its
// expected cost.
func OptimalSwitch(p2 CostDist, m1 float64) (c2, cost float64) {
	best := math.Inf(1)
	bestC := 0.0
	n := p2.D.N()
	for i := 0; i <= n; i++ {
		c := float64(i) / float64(n) * p2.Scale
		if e := SwitchCost(p2, c, m1); e < best {
			best, bestC = e, c
		}
	}
	return bestC, best
}

// ProportionalCost returns the expected total cost of running two plans
// simultaneously, plan 1 at speed alpha and plan 2 at speed 1-alpha
// (0 < alpha < 1), stopping when the first completes. Total invested
// cost at the moment plan i has spent c_i is c_i/speed_i, so
//
//	E = E[min(C1/alpha, C2/(1-alpha))]
//
// computed by numeric integration over the two independent cost
// distributions.
func ProportionalCost(p1, p2 CostDist, alpha float64) (float64, error) {
	if alpha <= 0 || alpha >= 1 {
		return 0, fmt.Errorf("competition: alpha must be in (0,1), got %v", alpha)
	}
	var e float64
	n1, n2 := p1.D.N(), p2.D.N()
	for i := 0; i < n1; i++ {
		w1 := p1.D.Mass(i)
		if w1 == 0 {
			continue
		}
		t1 := p1.D.Center(i) * p1.Scale / alpha
		for j := 0; j < n2; j++ {
			w2 := p2.D.Mass(j)
			if w2 == 0 {
				continue
			}
			t2 := p2.D.Center(j) * p2.Scale / (1 - alpha)
			t := t1
			if t2 < t1 {
				t = t2
			}
			e += w1 * w2 * t
		}
	}
	return e, nil
}

// OptimalAlpha searches for the speed ratio minimizing
// ProportionalCost. It returns the best alpha and its expected cost.
func OptimalAlpha(p1, p2 CostDist) (alpha, cost float64, err error) {
	best := math.Inf(1)
	bestA := 0.5
	for a := 0.05; a < 1; a += 0.05 {
		e, err := ProportionalCost(p1, p2, a)
		if err != nil {
			return 0, 0, err
		}
		if e < best {
			best, bestA = e, a
		}
	}
	return bestA, best, nil
}

// SwitchCriterion is the runtime strategy-switch rule of Section 6.
//
// An index scan (the cheap first stage of RID-list retrieval) is
// abandoned when the projected final-stage cost approaches the
// guaranteed best retrieval cost: "the scan is terminated and discarded
// when the projected retrieval cost approaches (e.g. becomes 95% of)
// the guaranteed best retrieval cost". Additionally, when a large
// portion of RIDs is rejected by filters the scan cost itself may
// dominate an already small guaranteed best cost, so the criterion is
// extended with a scan-cost limit set to a proportion of the guaranteed
// best.
type SwitchCriterion struct {
	// Threshold is the fraction of the guaranteed best cost at which a
	// projected final cost triggers abandonment (paper example: 0.95).
	Threshold float64
	// ScanCostFrac is the fraction of the guaranteed best cost the
	// first-stage scan itself may consume before being abandoned.
	ScanCostFrac float64
}

// DefaultSwitchCriterion returns the paper's example settings.
func DefaultSwitchCriterion() SwitchCriterion {
	return SwitchCriterion{Threshold: 0.95, ScanCostFrac: 0.5}
}

// Abandon reports whether the current scan should be terminated, given
// the projected cost of the final retrieval stage, the cost invested in
// the scan so far, and the guaranteed best retrieval cost.
func (c SwitchCriterion) Abandon(projectedFinal, scanCost, guaranteedBest float64) bool {
	if guaranteedBest <= 0 {
		return true
	}
	if projectedFinal >= c.Threshold*guaranteedBest {
		return true
	}
	return scanCost >= c.ScanCostFrac*guaranteedBest
}
