package competition

import (
	"math"
	"testing"

	"rdbdyn/internal/dist"
)

func mustLShaped(t *testing.T, scale, head, headMass float64) CostDist {
	t.Helper()
	c, err := LShaped(512, scale, head, headMass)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestLShapedShape(t *testing.T) {
	c := mustLShaped(t, 1000, 0.02, 0.5)
	// Half the mass below head*scale = 20.
	if got := c.CDF(20); math.Abs(got-0.5) > 0.02 {
		t.Fatalf("head mass = %v, want ~0.5", got)
	}
	// Mean far above the median (L-shape).
	if c.Mean() < 5*c.Quantile(0.5) {
		t.Fatalf("mean %v should dwarf median %v", c.Mean(), c.Quantile(0.5))
	}
}

func TestLShapedValidation(t *testing.T) {
	for _, bad := range [][3]float64{{1000, 0, 0.5}, {1000, 1, 0.5}, {1000, 0.1, 0}, {1000, 0.1, 1}} {
		if _, err := LShaped(128, bad[0], bad[1], bad[2]); err == nil {
			t.Fatalf("accepted %v", bad)
		}
	}
}

func TestCostDistBasics(t *testing.T) {
	d := dist.Uniform(256)
	c, err := NewCostDist(d, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Mean()-50) > 1 {
		t.Fatalf("mean = %v", c.Mean())
	}
	if math.Abs(c.CDF(25)-0.25) > 0.02 {
		t.Fatalf("CDF(25) = %v", c.CDF(25))
	}
	// PartialMean over everything equals the mean.
	if math.Abs(c.PartialMean(100)-c.Mean()) > 1e-6 {
		t.Fatalf("PartialMean(max) = %v, mean %v", c.PartialMean(100), c.Mean())
	}
	if _, err := NewCostDist(nil, 10); err == nil {
		t.Fatal("nil dist accepted")
	}
	if _, err := NewCostDist(d, 0); err == nil {
		t.Fatal("zero scale accepted")
	}
}

func TestSwitchCostMatchesPaperFormula(t *testing.T) {
	// Section 3: both plans L-shaped with 50% mass in [0, c2]; running
	// A2 to c2 then switching to A1 costs (m2 + c2 + M1)/2.
	p2 := mustLShaped(t, 1000, 0.02, 0.5)
	m1 := 400.0 // A1's mean cost (M1 <= M2)
	c2 := p2.Quantile(0.5)
	got := SwitchCost(p2, c2, m1)
	// m2 = mean of A2 on [0, c2], conditioned: PartialMean/0.5.
	m2 := p2.PartialMean(c2) / p2.CDF(c2)
	want := (m2 + c2 + m1) / 2
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("SwitchCost = %v, paper formula gives %v", got, want)
	}
	// And the arrangement beats the traditional M1 by roughly 2x.
	if got > 0.65*m1 {
		t.Fatalf("switch arrangement %v not clearly better than traditional %v", got, m1)
	}
}

func TestOptimalSwitchNoWorseThanFixed(t *testing.T) {
	p2 := mustLShaped(t, 1000, 0.05, 0.5)
	m1 := 300.0
	cOpt, eOpt := OptimalSwitch(p2, m1)
	for _, c := range []float64{10, 50, 100, 500, 999} {
		if e := SwitchCost(p2, c, m1); e < eOpt-1e-9 {
			t.Fatalf("OptimalSwitch %v@%v beaten by fixed %v@%v", eOpt, cOpt, e, c)
		}
	}
	// Never worse than not running A2 at all (switch at 0 = just A1).
	if eOpt > SwitchCost(p2, 0, m1)+1e-9 {
		t.Fatalf("optimal switch %v worse than degenerate %v", eOpt, SwitchCost(p2, 0, m1))
	}
}

func TestProportionalCostDegenerateCases(t *testing.T) {
	// Against a point-cost competitor, min(C1/a, C2/(1-a)) is exact.
	p1, _ := NewCostDist(dist.Point(512, 0.5), 100) // C1 = 50 always
	p2, _ := NewCostDist(dist.Point(512, 0.5), 400) // C2 = 200 always
	got, err := ProportionalCost(p1, p2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// min(50/0.5, 200/0.5) = 100.
	if math.Abs(got-100) > 2 {
		t.Fatalf("proportional cost = %v, want ~100", got)
	}
	if _, err := ProportionalCost(p1, p2, 0); err == nil {
		t.Fatal("alpha=0 accepted")
	}
	if _, err := ProportionalCost(p1, p2, 1); err == nil {
		t.Fatal("alpha=1 accepted")
	}
}

func TestProportionalBeatsTraditionalOnLShapes(t *testing.T) {
	// Section 3: with truncated-hyperbola L-shapes, running both plans
	// simultaneously with proportional speeds beats running the
	// lowest-mean plan alone.
	p1 := mustLShaped(t, 800, 0.03, 0.5)
	p2 := mustLShaped(t, 1000, 0.03, 0.5)
	trad := TraditionalCost(p1, p2)
	_, prop, err := OptimalAlpha(p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	if prop >= trad {
		t.Fatalf("proportional run %v not better than traditional %v", prop, trad)
	}
	if prop > 0.7*trad {
		t.Fatalf("proportional run %v should clearly beat traditional %v on L-shapes", prop, trad)
	}
}

func TestOptimalAlphaWithinRange(t *testing.T) {
	p1 := mustLShaped(t, 500, 0.05, 0.5)
	p2 := mustLShaped(t, 500, 0.05, 0.5)
	a, cost, err := OptimalAlpha(p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	if a <= 0 || a >= 1 {
		t.Fatalf("alpha = %v", a)
	}
	// Symmetric plans: optimum near 0.5.
	if math.Abs(a-0.5) > 0.15 {
		t.Fatalf("symmetric plans should race near alpha=0.5, got %v", a)
	}
	if cost <= 0 {
		t.Fatalf("cost = %v", cost)
	}
}

func TestTraditionalCostPicksMinimum(t *testing.T) {
	p1, _ := NewCostDist(dist.Point(64, 0.5), 100)
	p2, _ := NewCostDist(dist.Point(64, 0.5), 60)
	if got := TraditionalCost(p1, p2); math.Abs(got-30) > 1 {
		t.Fatalf("traditional = %v, want ~30", got)
	}
}

func TestSwitchCriterion(t *testing.T) {
	c := DefaultSwitchCriterion()
	// Projection well below the guaranteed best: keep going.
	if c.Abandon(50, 5, 1000) {
		t.Fatal("should not abandon a promising scan")
	}
	// Projection at 96% of guaranteed best: abandon.
	if !c.Abandon(960, 5, 1000) {
		t.Fatal("should abandon when projection approaches guaranteed best")
	}
	// Scan cost itself dominating a small guaranteed best: abandon.
	if !c.Abandon(10, 600, 1000) {
		t.Fatal("should abandon when scan cost dominates")
	}
	// Zero guaranteed best (already have a free plan): abandon.
	if !c.Abandon(0, 0, 0) {
		t.Fatal("should abandon when guaranteed best is zero")
	}
}
