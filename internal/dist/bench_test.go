package dist

import "testing"

func BenchmarkAndFixedCorrelation(b *testing.B) {
	x := Uniform(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AndC(x, x, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAndUnknownCorrelation(b *testing.B) {
	x := Uniform(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := And(x, x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHyperbolaFitDist(b *testing.B) {
	x := Uniform(256)
	d, err := Apply("&&", x)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FitHyperbola(d)
	}
}
