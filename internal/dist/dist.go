// Package dist implements the selectivity-distribution calculus of the
// paper's Section 2: numeric probability density functions of Boolean
// selectivity on [0,1], transformed by NOT/AND/OR under correlation
// assumptions ranging from -1 to +1 and under the "unknown correlation"
// uniform mixture.
//
// A distribution is a discretized probability mass function over n bins
// covering [0,1]. AND of two distributions combines every pair of
// weighted point estimates exactly as described in the paper; OR is
// derived through De Morgan mirror symmetry; JOIN behaves as AND on the
// key-domain selectivity scale (paper, end of Section 2).
//
// The package also provides the truncated-hyperbola fit used by the
// paper to characterize the resulting L-shaped distributions, with the
// paper's relative-error metric, and L-shape statistics (median vs.
// mean, mass concentration) used by the competition model of Section 3.
package dist

import (
	"fmt"
	"math"
)

// DefaultBins is the default discretization granularity.
const DefaultBins = 512

// Dist is a probability mass function over n equal bins of [0,1].
// Bin i covers [i/n, (i+1)/n) with representative point (i+0.5)/n.
type Dist struct {
	w []float64
}

// NewZero returns an all-zero mass function with n bins (not a valid
// distribution until mass is added and Normalize is called).
func NewZero(n int) *Dist {
	if n <= 0 {
		n = DefaultBins
	}
	return &Dist{w: make([]float64, n)}
}

// Uniform returns the uniform distribution on [0,1] with n bins — the
// paper's model of a totally unknown selectivity.
func Uniform(n int) *Dist {
	d := NewZero(n)
	m := 1.0 / float64(len(d.w))
	for i := range d.w {
		d.w[i] = m
	}
	return d
}

// Point returns a distribution with all mass at selectivity s — a
// perfectly known selectivity.
func Point(n int, s float64) *Dist {
	d := NewZero(n)
	d.w[d.binOf(s)] = 1
	return d
}

// Bell returns a truncated normal distribution with the given mean and
// standard deviation, renormalized on [0,1] — the paper's model of "an
// estimation with mean m and error e" (Figure 2.2 uses m=0.2, e=0.005).
func Bell(n int, mean, sd float64) *Dist {
	d := NewZero(n)
	if sd <= 0 {
		return Point(n, mean)
	}
	for i := range d.w {
		s := d.center(i)
		z := (s - mean) / sd
		d.w[i] = math.Exp(-z * z / 2)
	}
	d.Normalize()
	return d
}

// FromWeights builds a distribution from raw nonnegative weights,
// normalizing them.
func FromWeights(w []float64) (*Dist, error) {
	if len(w) == 0 {
		return nil, fmt.Errorf("dist: empty weight vector")
	}
	d := &Dist{w: append([]float64(nil), w...)}
	var sum float64
	for _, x := range d.w {
		if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			return nil, fmt.Errorf("dist: invalid weight %v", x)
		}
		sum += x
	}
	if sum == 0 {
		return nil, fmt.Errorf("dist: zero total mass")
	}
	d.Normalize()
	return d, nil
}

// N returns the number of bins.
func (d *Dist) N() int { return len(d.w) }

// Mass returns the probability mass of bin i.
func (d *Dist) Mass(i int) float64 { return d.w[i] }

// Density returns the probability density at bin i (mass / bin width).
func (d *Dist) Density(i int) float64 { return d.w[i] * float64(len(d.w)) }

// center returns the representative selectivity of bin i.
func (d *Dist) center(i int) float64 { return (float64(i) + 0.5) / float64(len(d.w)) }

// Center is the exported representative selectivity of bin i.
func (d *Dist) Center(i int) float64 { return d.center(i) }

// binOf maps a selectivity in [0,1] to its bin.
func (d *Dist) binOf(s float64) int {
	n := len(d.w)
	i := int(s * float64(n))
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}

// Normalize rescales mass to sum to 1.
func (d *Dist) Normalize() {
	var sum float64
	for _, x := range d.w {
		sum += x
	}
	if sum == 0 {
		return
	}
	for i := range d.w {
		d.w[i] /= sum
	}
}

// TotalMass returns the sum of bin masses (1 for a valid distribution,
// up to rounding).
func (d *Dist) TotalMass() float64 {
	var sum float64
	for _, x := range d.w {
		sum += x
	}
	return sum
}

// Clone returns a deep copy.
func (d *Dist) Clone() *Dist {
	return &Dist{w: append([]float64(nil), d.w...)}
}

// Mean returns the expected selectivity.
func (d *Dist) Mean() float64 {
	var m float64
	for i, x := range d.w {
		m += x * d.center(i)
	}
	return m
}

// Variance returns the selectivity variance.
func (d *Dist) Variance() float64 {
	m := d.Mean()
	var v float64
	for i, x := range d.w {
		dd := d.center(i) - m
		v += x * dd * dd
	}
	return v
}

// StdDev returns the selectivity standard deviation.
func (d *Dist) StdDev() float64 { return math.Sqrt(d.Variance()) }

// CDF returns P(S <= s).
func (d *Dist) CDF(s float64) float64 {
	var c float64
	for i, x := range d.w {
		if d.center(i) <= s {
			c += x
		} else {
			break
		}
	}
	return c
}

// Quantile returns the smallest bin-center s with CDF(s) >= p.
func (d *Dist) Quantile(p float64) float64 {
	var c float64
	for i, x := range d.w {
		c += x
		if c >= p {
			return d.center(i)
		}
	}
	return 1
}

// Median is Quantile(0.5).
func (d *Dist) Median() float64 { return d.Quantile(0.5) }

// MassIn returns the probability mass within [lo, hi].
func (d *Dist) MassIn(lo, hi float64) float64 {
	var m float64
	for i, x := range d.w {
		if s := d.center(i); s >= lo && s <= hi {
			m += x
		}
	}
	return m
}

// MaxDensity returns the maximum bin density.
func (d *Dist) MaxDensity() float64 {
	var mx float64
	for i := range d.w {
		if dd := d.Density(i); dd > mx {
			mx = dd
		}
	}
	return mx
}

// MinDensity returns the minimum bin density.
func (d *Dist) MinDensity() float64 {
	mn := math.Inf(1)
	for i := range d.w {
		if dd := d.Density(i); dd < mn {
			mn = dd
		}
	}
	return mn
}

// LShape summarizes how L-shaped a distribution is, the property the
// competition model of Section 3 exploits.
type LShape struct {
	Mean     float64
	Median   float64
	Q10, Q90 float64
	// HeadMass is the probability mass below one tenth of the mean —
	// an L-shape concentrates a large mass there.
	HeadMass float64
	// Skew is a robust skewness proxy: (mean - median) / stddev.
	Skew float64
}

// LShapeStats computes the summary.
func (d *Dist) LShapeStats() LShape {
	mean := d.Mean()
	sd := d.StdDev()
	sk := 0.0
	if sd > 0 {
		sk = (mean - d.Median()) / sd
	}
	return LShape{
		Mean:     mean,
		Median:   d.Median(),
		Q10:      d.Quantile(0.1),
		Q90:      d.Quantile(0.9),
		HeadMass: d.CDF(mean / 10),
		Skew:     sk,
	}
}

// Rebin resamples the distribution to n bins, preserving mass.
func (d *Dist) Rebin(n int) *Dist {
	out := NewZero(n)
	for i, x := range d.w {
		out.w[out.binOf(d.center(i))] += x
	}
	return out
}
