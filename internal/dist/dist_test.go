package dist

import (
	"math"
	"testing"
)

const tol = 1e-9

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestUniformBasics(t *testing.T) {
	d := Uniform(100)
	if !approx(d.TotalMass(), 1, tol) {
		t.Fatalf("mass = %v", d.TotalMass())
	}
	if !approx(d.Mean(), 0.5, 1e-6) {
		t.Fatalf("mean = %v", d.Mean())
	}
	// Var of uniform = 1/12.
	if !approx(d.Variance(), 1.0/12, 1e-3) {
		t.Fatalf("var = %v", d.Variance())
	}
	if !approx(d.Median(), 0.5, 0.02) {
		t.Fatalf("median = %v", d.Median())
	}
}

func TestPointAndBell(t *testing.T) {
	p := Point(256, 0.3)
	if !approx(p.Mean(), 0.3, 0.01) || p.Variance() > 1e-4 {
		t.Fatalf("point: mean=%v var=%v", p.Mean(), p.Variance())
	}
	b := Bell(512, 0.2, 0.02)
	if !approx(b.Mean(), 0.2, 0.005) {
		t.Fatalf("bell mean = %v", b.Mean())
	}
	if !approx(b.StdDev(), 0.02, 0.005) {
		t.Fatalf("bell sd = %v", b.StdDev())
	}
	if !approx(b.TotalMass(), 1, tol) {
		t.Fatalf("bell mass = %v", b.TotalMass())
	}
}

func TestFromWeightsValidation(t *testing.T) {
	if _, err := FromWeights(nil); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := FromWeights([]float64{0, 0}); err == nil {
		t.Fatal("zero mass accepted")
	}
	if _, err := FromWeights([]float64{1, -1}); err == nil {
		t.Fatal("negative weight accepted")
	}
	d, err := FromWeights([]float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(d.Mass(1), 0.75, tol) {
		t.Fatalf("normalization wrong: %v", d.Mass(1))
	}
}

func TestNotIsMirror(t *testing.T) {
	d := Bell(256, 0.2, 0.05)
	n := d.Not()
	if !approx(n.Mean(), 0.8, 0.01) {
		t.Fatalf("mirror mean = %v", n.Mean())
	}
	// Double negation restores.
	nn := n.Not()
	for i := 0; i < d.N(); i++ {
		if !approx(nn.Mass(i), d.Mass(i), tol) {
			t.Fatalf("double Not diverges at bin %d", i)
		}
	}
}

func TestCorrSelectivityEndpoints(t *testing.T) {
	sx, sy := 0.6, 0.7
	if !approx(CorrSelectivity(sx, sy, 0), 0.42, tol) {
		t.Fatal("independence")
	}
	if !approx(CorrSelectivity(sx, sy, 1), 0.6, tol) {
		t.Fatal("+1 correlation = min")
	}
	if !approx(CorrSelectivity(sx, sy, -1), 0.3, tol) {
		t.Fatal("-1 correlation = max(0, sx+sy-1)")
	}
	// Interpolation midpoints.
	if !approx(CorrSelectivity(sx, sy, 0.5), (0.42+0.6)/2, tol) {
		t.Fatal("+0.5 interpolation")
	}
	if !approx(CorrSelectivity(sx, sy, -0.5), (0.42+0.3)/2, tol) {
		t.Fatal("-0.5 interpolation")
	}
	// Clamp at zero for small selectivities.
	if CorrSelectivity(0.1, 0.2, -1) != 0 {
		t.Fatal("negative-correlation floor")
	}
}

func TestAndCPointOperands(t *testing.T) {
	x := Point(512, 0.5)
	y := Point(512, 0.4)
	got, err := AndC(x, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(got.Mean(), 0.2, 0.01) {
		t.Fatalf("point AND mean = %v, want 0.2", got.Mean())
	}
	if got.StdDev() > 0.01 {
		t.Fatalf("point AND should stay a point, sd=%v", got.StdDev())
	}
}

func TestAndCMassConservation(t *testing.T) {
	x := Uniform(256)
	for _, c := range []float64{-1, -0.9, -0.5, 0, 0.5, 1} {
		got, err := AndC(x, x, c)
		if err != nil {
			t.Fatal(err)
		}
		if !approx(got.TotalMass(), 1, 1e-9) {
			t.Fatalf("c=%v: mass=%v", c, got.TotalMass())
		}
	}
}

func TestAndUnknownMassConservation(t *testing.T) {
	x := Uniform(256)
	got, err := And(x, x)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(got.TotalMass(), 1, 1e-9) {
		t.Fatalf("mass=%v", got.TotalMass())
	}
}

func TestAndShiftsMassTowardZero(t *testing.T) {
	x := Uniform(512)
	and, err := SelfAnd(x)
	if err != nil {
		t.Fatal(err)
	}
	if and.Mean() >= x.Mean() {
		t.Fatalf("AND must lower the mean: %v >= %v", and.Mean(), x.Mean())
	}
	if and.Median() >= x.Median() {
		t.Fatalf("AND must lower the median")
	}
	// Paper (B): ANDs concentrate mass near zero.
	if and.CDF(0.25) < x.CDF(0.25) {
		t.Fatal("AND must concentrate mass at the low end")
	}
}

func TestOrMirrorsAnd(t *testing.T) {
	x := Uniform(256)
	and, err := SelfAnd(x)
	if err != nil {
		t.Fatal(err)
	}
	or, err := SelfOr(x)
	if err != nil {
		t.Fatal(err)
	}
	n := x.N()
	for i := 0; i < n; i++ {
		if !approx(or.Mass(i), and.Mass(n-1-i), 1e-9) {
			t.Fatalf("OR is not the mirror of AND at bin %d: %v vs %v", i, or.Mass(i), and.Mass(n-1-i))
		}
	}
}

func TestDeMorganConsistencyFixedCorrelation(t *testing.T) {
	// For distributions, OrC is defined via De Morgan; check the
	// resulting mean matches the algebraic identity for independent
	// point selectivities: s_or = sx + sy - sx*sy.
	x := Point(512, 0.3)
	y := Point(512, 0.5)
	or, err := OrC(x, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.3 + 0.5 - 0.15
	if !approx(or.Mean(), want, 0.01) {
		t.Fatalf("OR mean = %v, want %v", or.Mean(), want)
	}
}

func TestBalancedAndOrRestoresSymmetry(t *testing.T) {
	// Paper: "A mixture of equal numbers of ANDs/ORs restores the
	// original symmetry ... near uniform distribution." The restoration
	// is in shape — skewness shrinks and the density flattens back
	// toward uniform — not in the mean (E[(X&Y)|Z] = 0.625 for
	// independent uniforms).
	x := Uniform(256)
	and, err := Apply("&", x)
	if err != nil {
		t.Fatal(err)
	}
	bal, err := Apply("|&", x)
	if err != nil {
		t.Fatal(err)
	}
	if abs := math.Abs(bal.LShapeStats().Skew); abs >= math.Abs(and.LShapeStats().Skew)/2 {
		t.Fatalf("balanced mix should halve the skew: |&X %v vs &X %v",
			bal.LShapeStats().Skew, and.LShapeStats().Skew)
	}
	if bal.MaxDensity() >= and.MaxDensity()/2 {
		t.Fatalf("balanced mix should flatten density: %v vs %v",
			bal.MaxDensity(), and.MaxDensity())
	}
	if bal.StdDev() < 0.8*x.StdDev() {
		t.Fatalf("balanced mix spread %v should approach uniform's %v",
			bal.StdDev(), x.StdDev())
	}
	// And the |&X / &|X pair are mirror images of each other.
	mir, err := Apply("&|", x)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(bal.Mean(), 1-mir.Mean(), 0.01) {
		t.Fatalf("|&X and &|X must mirror: %v vs %v", bal.Mean(), mir.Mean())
	}
}

func TestSkewnessGrowsWithChainLength(t *testing.T) {
	x := Uniform(256)
	var prevMedian = 1.0
	for _, ops := range []string{"&", "&&", "&&&"} {
		d, err := Apply(ops, x)
		if err != nil {
			t.Fatal(err)
		}
		st := d.LShapeStats()
		if st.Median >= prevMedian {
			t.Fatalf("%sX median %v did not shrink (prev %v)", ops, st.Median, prevMedian)
		}
		prevMedian = st.Median
	}
}

func TestCorrelationDecreaseIncreasesSkew(t *testing.T) {
	// Paper: skewness increases "upon correlation decrease".
	x := Uniform(256)
	d1, _ := ApplyC("&", x, 1)   // min(sx,sy): moderate
	d0, _ := ApplyC("&", x, 0)   // product: more skew
	dm, _ := ApplyC("&", x, -.9) // near-disjoint: most skew
	if !(d1.Median() > d0.Median() && d0.Median() > dm.Median()) {
		t.Fatalf("medians not decreasing with correlation: %v, %v, %v",
			d1.Median(), d0.Median(), dm.Median())
	}
}

func TestBellDegradation(t *testing.T) {
	// Paper Figure 2.2 processes: a single AND on a tight bell far from
	// the interval ends inflates the spread to the order of the
	// distance from zero.
	x := Bell(512, 0.2, 0.005)
	d, err := SelfAnd(x)
	if err != nil {
		t.Fatal(err)
	}
	if d.StdDev() < 10*x.StdDev() {
		t.Fatalf("single AND must blow up the spread: %v -> %v", x.StdDev(), d.StdDev())
	}
	// Repeated ORs spread the bell away from zero, roughly doubling.
	or1, _ := SelfOr(x)
	or2, _ := Or(or1, x)
	if !(or2.Mean() > or1.Mean() && or1.Mean() > x.Mean()) {
		t.Fatal("ORs must push the bell upward")
	}
}

func TestApplyUnknownOperator(t *testing.T) {
	if _, err := Apply("&?", Uniform(64)); err == nil {
		t.Fatal("bad operator accepted")
	}
	if _, err := ApplyC("x", Uniform(64), 0); err == nil {
		t.Fatal("bad operator accepted")
	}
}

func TestBinMismatchRejected(t *testing.T) {
	if _, err := And(Uniform(64), Uniform(128)); err == nil {
		t.Fatal("bin mismatch accepted")
	}
	if _, err := AndC(Uniform(64), Uniform(128), 0); err == nil {
		t.Fatal("bin mismatch accepted")
	}
}

func TestQuantileAndMassIn(t *testing.T) {
	d := Uniform(100)
	if q := d.Quantile(0.25); !approx(q, 0.25, 0.02) {
		t.Fatalf("q25 = %v", q)
	}
	if m := d.MassIn(0.2, 0.4); !approx(m, 0.2, 0.03) {
		t.Fatalf("MassIn = %v", m)
	}
}

func TestRebinPreservesMassAndShape(t *testing.T) {
	d := Bell(512, 0.3, 0.1)
	r := d.Rebin(64)
	if !approx(r.TotalMass(), 1, tol) {
		t.Fatalf("rebinned mass = %v", r.TotalMass())
	}
	if !approx(r.Mean(), d.Mean(), 0.02) {
		t.Fatalf("rebinned mean = %v vs %v", r.Mean(), d.Mean())
	}
}

func TestHyperbolaFitOnExactHyperbola(t *testing.T) {
	// Build a distribution whose density is exactly a hyperbola; the
	// fit should recover it with tiny relative error.
	n := 256
	w := make([]float64, n)
	h := Hyperbola{A: 0.05, B: 0.02, C: 0.1}
	for i := range w {
		s := (float64(i) + 0.5) / float64(n)
		w[i] = h.At(s)
	}
	d, err := FromWeights(w)
	if err != nil {
		t.Fatal(err)
	}
	fit := FitHyperbola(d)
	if fit.RelError > 0.02 {
		t.Fatalf("exact hyperbola fit error = %v", fit.RelError)
	}
}

func TestHyperbolaFitErrorsMatchPaperShape(t *testing.T) {
	// Paper: truncated hyperbolas fit &X with relative error ~1/4,
	// &&X ~1/7, &&&X ~1/23 — i.e. the fit improves as AND chains grow.
	x := Uniform(256)
	var prev = math.Inf(1)
	errs := map[string]float64{}
	for _, ops := range []string{"&", "&&", "&&&"} {
		d, err := Apply(ops, x)
		if err != nil {
			t.Fatal(err)
		}
		fit := FitHyperbola(d)
		errs[ops] = fit.RelError
		if fit.RelError >= prev {
			t.Fatalf("fit error must improve along the chain: %v then %v", prev, fit.RelError)
		}
		prev = fit.RelError
	}
	// Loose absolute sanity versus the paper's numbers.
	if errs["&"] > 0.5 {
		t.Fatalf("&X fit error %v too large (paper ~0.25)", errs["&"])
	}
	if errs["&&&"] > 0.15 {
		t.Fatalf("&&&X fit error %v too large (paper ~0.04)", errs["&&&"])
	}
}

func TestLShapeStats(t *testing.T) {
	x := Uniform(256)
	and3, err := Apply("&&&", x)
	if err != nil {
		t.Fatal(err)
	}
	st := and3.LShapeStats()
	if st.Median >= st.Mean {
		t.Fatalf("L-shape must have median < mean: %+v", st)
	}
	if st.Skew <= 0 {
		t.Fatalf("L-shape skew must be positive: %+v", st)
	}
	if st.HeadMass < 0.2 {
		t.Fatalf("L-shape concentrates mass near zero: head mass %v", st.HeadMass)
	}
}
