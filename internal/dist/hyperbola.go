package dist

import "math"

// Hyperbola is the truncated hyperbola h(s) = A/(s+B) + C used by the
// paper to approximate the skewed selectivity distributions produced by
// disbalanced AND/OR chains.
type Hyperbola struct {
	A, B, C float64
}

// At evaluates the hyperbola density at selectivity s.
func (h Hyperbola) At(s float64) float64 { return h.A/(s+h.B) + h.C }

// FitResult reports a hyperbola fit and the paper's relative-error
// metric: max_s |p(s)-h(s)| / (max_s p(s) - min_s p(s)).
type FitResult struct {
	Hyperbola Hyperbola
	RelError  float64
}

// FitHyperbola fits a truncated hyperbola to the distribution's density
// and returns the fit minimizing the paper's relative error. The search
// uses a log grid over the pole offset B; for each B, A and C start at
// their least-squares values and are refined by coordinate descent on
// the max deviation.
func FitHyperbola(d *Dist) FitResult {
	best := FitResult{RelError: math.Inf(1)}
	n := d.N()
	dens := make([]float64, n)
	for i := range dens {
		dens[i] = d.Density(i)
	}
	span := densitySpan(dens)
	if span == 0 {
		// Constant density: a flat hyperbola (A=0) fits exactly.
		return FitResult{Hyperbola: Hyperbola{A: 0, B: 1, C: dens[0]}, RelError: 0}
	}
	for exp := -4.0; exp <= 1.0; exp += 0.125 {
		b := math.Pow(10, exp)
		h := leastSquaresAC(d, dens, b)
		h = refineAC(d, dens, h)
		if e := relError(d, dens, h, span); e < best.RelError {
			best = FitResult{Hyperbola: h, RelError: e}
		}
	}
	// Local refinement of B around the winner.
	for step := best.Hyperbola.B / 2; step > best.Hyperbola.B/64; step /= 2 {
		for _, b := range []float64{best.Hyperbola.B - step, best.Hyperbola.B + step} {
			if b <= 0 {
				continue
			}
			h := leastSquaresAC(d, dens, b)
			h = refineAC(d, dens, h)
			if e := relError(d, dens, h, span); e < best.RelError {
				best = FitResult{Hyperbola: h, RelError: e}
			}
		}
	}
	return best
}

func densitySpan(dens []float64) float64 {
	mn, mx := math.Inf(1), math.Inf(-1)
	for _, x := range dens {
		if x < mn {
			mn = x
		}
		if x > mx {
			mx = x
		}
	}
	return mx - mn
}

// leastSquaresAC solves min sum (A*g_i + C - p_i)^2 for fixed B, with
// g_i = 1/(s_i+B).
func leastSquaresAC(d *Dist, dens []float64, b float64) Hyperbola {
	var sg, sgg, sp, sgp float64
	n := float64(len(dens))
	for i, p := range dens {
		g := 1 / (d.center(i) + b)
		sg += g
		sgg += g * g
		sp += p
		sgp += g * p
	}
	det := n*sgg - sg*sg
	if det == 0 {
		return Hyperbola{A: 0, B: b, C: sp / n}
	}
	a := (n*sgp - sg*sp) / det
	c := (sp - a*sg) / n
	return Hyperbola{A: a, B: b, C: c}
}

// refineAC performs coordinate descent on A and C to reduce the max
// absolute deviation.
func refineAC(d *Dist, dens []float64, h Hyperbola) Hyperbola {
	cur := maxDev(d, dens, h)
	stepA := math.Abs(h.A)/4 + 1e-6
	stepC := math.Abs(h.C)/4 + 1e-6
	for iter := 0; iter < 60; iter++ {
		improved := false
		for _, cand := range []Hyperbola{
			{h.A + stepA, h.B, h.C}, {h.A - stepA, h.B, h.C},
			{h.A, h.B, h.C + stepC}, {h.A, h.B, h.C - stepC},
		} {
			if e := maxDev(d, dens, cand); e < cur {
				h, cur = cand, e
				improved = true
			}
		}
		if !improved {
			stepA /= 2
			stepC /= 2
			if stepA < 1e-9 && stepC < 1e-9 {
				break
			}
		}
	}
	return h
}

func maxDev(d *Dist, dens []float64, h Hyperbola) float64 {
	var mx float64
	for i, p := range dens {
		if dev := math.Abs(p - h.At(d.center(i))); dev > mx {
			mx = dev
		}
	}
	return mx
}

func relError(d *Dist, dens []float64, h Hyperbola, span float64) float64 {
	return maxDev(d, dens, h) / span
}
