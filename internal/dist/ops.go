package dist

import "fmt"

// CorrSelectivity returns the combined selectivity of X AND Y for
// operand selectivities sx, sy under an assumed correlation c in
// [-1, +1], linearly interpolating between
//
//	c = -1: max(0, sx+sy-1)   (smallest possible intersection)
//	c =  0: sx * sy           (independence)
//	c = +1: min(sx, sy)       (largest possible intersection)
//
// exactly as defined in the paper's Section 2.
func CorrSelectivity(sx, sy, c float64) float64 {
	ind := sx * sy
	if c >= 0 {
		hi := sx
		if sy < sx {
			hi = sy
		}
		return ind + c*(hi-ind)
	}
	lo := sx + sy - 1
	if lo < 0 {
		lo = 0
	}
	return ind + (-c)*(lo-ind)
}

// Not returns the distribution of ~X: the mirror symmetry p(1-s).
func (d *Dist) Not() *Dist {
	n := len(d.w)
	out := NewZero(n)
	for i, x := range d.w {
		out.w[n-1-i] = x
	}
	return out
}

// AndC returns the distribution of X AND Y under assumed correlation c,
// treating X and Y as independent random *estimates* (their selectivity
// uncertainties are independent even when the predicate overlap is
// correlated). Each weighted point pair (sx, wx) x (sy, wy) contributes
// wx*wy at CorrSelectivity(sx, sy, c).
func AndC(x, y *Dist, c float64) (*Dist, error) {
	if x.N() != y.N() {
		return nil, fmt.Errorf("dist: bin count mismatch %d vs %d", x.N(), y.N())
	}
	out := NewZero(x.N())
	for i, wx := range x.w {
		if wx == 0 {
			continue
		}
		sx := x.center(i)
		for j, wy := range y.w {
			if wy == 0 {
				continue
			}
			out.w[out.binOf(CorrSelectivity(sx, x.center(j), c))] += wx * wy
		}
	}
	return out, nil
}

// And returns the distribution of X AND Y under the unknown-correlation
// assumption: a uniform mixture of correlations c over [-1, +1].
//
// For a fixed operand pair (sx, sy), the combined selectivity is
// piecewise linear in c: it sweeps [max(0,sx+sy-1), sx*sy] for c in
// [-1,0] and [sx*sy, min(sx,sy)] for c in [0,+1]. A uniform mixture of
// c therefore spreads half the pair's weight uniformly over each
// segment, which this implementation does exactly (no sampling of c).
func And(x, y *Dist) (*Dist, error) {
	if x.N() != y.N() {
		return nil, fmt.Errorf("dist: bin count mismatch %d vs %d", x.N(), y.N())
	}
	out := NewZero(x.N())
	for i, wx := range x.w {
		if wx == 0 {
			continue
		}
		sx := x.center(i)
		for j, wy := range y.w {
			if wy == 0 {
				continue
			}
			sy := y.center(j)
			w := wx * wy
			ind := sx * sy
			lo := sx + sy - 1
			if lo < 0 {
				lo = 0
			}
			hi := sx
			if sy < sx {
				hi = sy
			}
			out.spread(lo, ind, w/2)
			out.spread(ind, hi, w/2)
		}
	}
	return out, nil
}

// spread distributes mass w uniformly over the selectivity interval
// [a, b] (a <= b), allocating to bins proportionally to overlap. A
// degenerate interval becomes a point mass.
func (d *Dist) spread(a, b, w float64) {
	n := float64(len(d.w))
	if b-a < 1e-12 {
		d.w[d.binOf((a+b)/2)] += w
		return
	}
	i0 := d.binOf(a)
	i1 := d.binOf(b)
	if i0 == i1 {
		d.w[i0] += w
		return
	}
	inv := w / (b - a)
	for i := i0; i <= i1; i++ {
		binLo := float64(i) / n
		binHi := float64(i+1) / n
		lo := a
		if binLo > lo {
			lo = binLo
		}
		hi := b
		if binHi < hi {
			hi = binHi
		}
		if hi > lo {
			d.w[i] += inv * (hi - lo)
		}
	}
}

// OrC returns the distribution of X OR Y under assumed correlation c,
// via De Morgan: X|Y = ~(~X & ~Y). Note that the correlation of the
// negated predicates equals the correlation of the originals on the
// min/product/max scale, so the same c applies.
func OrC(x, y *Dist, c float64) (*Dist, error) {
	a, err := AndC(x.Not(), y.Not(), c)
	if err != nil {
		return nil, err
	}
	return a.Not(), nil
}

// Or returns the distribution of X OR Y under unknown correlation,
// mirror-symmetric to And per the paper.
func Or(x, y *Dist) (*Dist, error) {
	a, err := And(x.Not(), y.Not())
	if err != nil {
		return nil, err
	}
	return a.Not(), nil
}

// SelfAnd is the paper's unary &X: X AND Y where Y has the same
// distribution as X (an independent estimate), under unknown
// correlation.
func SelfAnd(x *Dist) (*Dist, error) { return And(x, x) }

// SelfOr is the paper's unary |X under unknown correlation.
func SelfOr(x *Dist) (*Dist, error) { return Or(x, x) }

// Apply evaluates a chain of unary operators written in the paper's
// notation, e.g. "&&&" applies SelfAnd three times, "|||&" applies
// SelfAnd then SelfOr three times (operators apply right to left, as in
// the paper's figures: |||||&X means & first, then five |).
func Apply(ops string, x *Dist) (*Dist, error) {
	d := x
	var err error
	for i := len(ops) - 1; i >= 0; i-- {
		switch ops[i] {
		case '&':
			d, err = And(d, x)
		case '|':
			d, err = Or(d, x)
		case '~':
			d = d.Not()
		default:
			return nil, fmt.Errorf("dist: unknown operator %q", ops[i])
		}
		if err != nil {
			return nil, err
		}
	}
	return d, nil
}

// ApplyC is Apply under a fixed correlation assumption.
func ApplyC(ops string, x *Dist, c float64) (*Dist, error) {
	d := x
	var err error
	for i := len(ops) - 1; i >= 0; i-- {
		switch ops[i] {
		case '&':
			d, err = AndC(d, x, c)
		case '|':
			d, err = OrC(d, x, c)
		case '~':
			d = d.Not()
		default:
			return nil, fmt.Errorf("dist: unknown operator %q", ops[i])
		}
		if err != nil {
			return nil, err
		}
	}
	return d, nil
}
