package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randDist builds a valid random distribution from quick-generated
// weights.
func randDist(raw []float64, n int) *Dist {
	w := make([]float64, n)
	any := false
	for i := range w {
		if i < len(raw) {
			v := math.Abs(raw[i])
			if !math.IsNaN(v) && !math.IsInf(v, 0) && v < 1e12 {
				w[i] = v
			}
		}
		if w[i] > 0 {
			any = true
		}
	}
	if !any {
		w[0] = 1
	}
	d, _ := FromWeights(w)
	return d
}

// Property: every AND/OR transform conserves probability mass.
func TestQuickMassConservation(t *testing.T) {
	f := func(rawX, rawY []float64, corrSeed int64) bool {
		x := randDist(rawX, 64)
		y := randDist(rawY, 64)
		rng := rand.New(rand.NewSource(corrSeed))
		c := rng.Float64()*2 - 1
		ac, err := AndC(x, y, c)
		if err != nil || math.Abs(ac.TotalMass()-1) > 1e-9 {
			return false
		}
		oc, err := OrC(x, y, c)
		if err != nil || math.Abs(oc.TotalMass()-1) > 1e-9 {
			return false
		}
		au, err := And(x, y)
		if err != nil || math.Abs(au.TotalMass()-1) > 1e-9 {
			return false
		}
		return math.Abs(x.Not().TotalMass()-1) <= 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: De Morgan mirror symmetry holds for arbitrary operand
// distributions: Or(x,y) is the bin-wise mirror of And(~x,~y).
func TestQuickDeMorganMirror(t *testing.T) {
	f := func(rawX, rawY []float64) bool {
		x := randDist(rawX, 64)
		y := randDist(rawY, 64)
		or, err := Or(x, y)
		if err != nil {
			return false
		}
		and, err := And(x.Not(), y.Not())
		if err != nil {
			return false
		}
		n := x.N()
		for i := 0; i < n; i++ {
			if math.Abs(or.Mass(i)-and.Mass(n-1-i)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: AND under +1 correlation dominates (stochastically) AND
// under independence, which dominates AND under -1 correlation: the
// CDFs are ordered.
func TestQuickCorrelationMonotonicity(t *testing.T) {
	f := func(rawX, rawY []float64) bool {
		x := randDist(rawX, 64)
		y := randDist(rawY, 64)
		hi, err := AndC(x, y, 1)
		if err != nil {
			return false
		}
		mid, err := AndC(x, y, 0)
		if err != nil {
			return false
		}
		lo, err := AndC(x, y, -1)
		if err != nil {
			return false
		}
		// CDF(lo) >= CDF(mid) >= CDF(hi) pointwise (lower correlation
		// pushes selectivity toward zero).
		var cl, cm, ch float64
		for i := 0; i < x.N(); i++ {
			cl += lo.Mass(i)
			cm += mid.Mass(i)
			ch += hi.Mass(i)
			if cl < cm-1e-9 || cm < ch-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: CorrSelectivity stays within the Fréchet bounds and is
// monotone in c for any operand pair.
func TestQuickCorrSelectivityBounds(t *testing.T) {
	f := func(a, b, c1, c2 float64) bool {
		sx := math.Abs(math.Mod(a, 1))
		sy := math.Abs(math.Mod(b, 1))
		cA := math.Mod(math.Abs(c1), 2) - 1
		cB := math.Mod(math.Abs(c2), 2) - 1
		if math.IsNaN(sx) || math.IsNaN(sy) || math.IsNaN(cA) || math.IsNaN(cB) {
			return true
		}
		lo := math.Max(0, sx+sy-1)
		hi := math.Min(sx, sy)
		vA := CorrSelectivity(sx, sy, cA)
		vB := CorrSelectivity(sx, sy, cB)
		if vA < lo-1e-12 || vA > hi+1e-12 {
			return false
		}
		if cA <= cB && vA > vB+1e-12 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
