package expr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), "NULL"},
		{Bool(true), "TRUE"},
		{Bool(false), "FALSE"},
		{Int(-42), "-42"},
		{Float(2.5), "2.5"},
		{Str("a\"b"), `"a\"b"`},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestCompareNumericCrossType(t *testing.T) {
	if Compare(Int(3), Float(3.0)) != 0 {
		t.Error("3 should equal 3.0")
	}
	if Compare(Int(3), Float(3.5)) != -1 {
		t.Error("3 < 3.5")
	}
	if Compare(Float(-1), Int(0)) != -1 {
		t.Error("-1.0 < 0")
	}
}

func TestCompareLargeIntsExact(t *testing.T) {
	a := Int(1<<52 - 1)
	b := Int(1 << 52)
	if Compare(a, b) != -1 || Compare(b, a) != 1 {
		t.Error("large int comparison must stay exact")
	}
}

func TestCompareTypeRanks(t *testing.T) {
	// NULL < BOOL < numbers < STRING
	ordered := []Value{Null(), Bool(false), Bool(true), Int(-100), Float(1e9), Str(""), Str("z")}
	for i := 0; i < len(ordered); i++ {
		for j := 0; j < len(ordered); j++ {
			got := Compare(ordered[i], ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			// Within numbers the list above is ascending; adjust for the
			// int/float pair which are genuinely ordered.
			if got != want {
				t.Fatalf("Compare(%v, %v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestComparable(t *testing.T) {
	if !Comparable(TypeInt, TypeFloat) {
		t.Error("int and float must be comparable")
	}
	if Comparable(TypeInt, TypeString) {
		t.Error("int and string must not be comparable")
	}
	if !Comparable(TypeNull, TypeString) {
		t.Error("NULL is comparable with anything (evaluates false)")
	}
}

func TestCompareAntisymmetry(t *testing.T) {
	f := func(a, b int64) bool {
		return Compare(Int(a), Int(b)) == -Compare(Int(b), Int(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func randValue(rng *rand.Rand) Value {
	switch rng.Intn(5) {
	case 0:
		return Null()
	case 1:
		return Bool(rng.Intn(2) == 0)
	case 2:
		return Int(rng.Int63n(1<<50) - 1<<49)
	case 3:
		return Float(rng.NormFloat64() * 1e6)
	default:
		n := rng.Intn(12)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(rng.Intn(256))
		}
		return Str(string(b))
	}
}

func TestCompareTransitivityRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		a, b, c := randValue(rng), randValue(rng), randValue(rng)
		if Compare(a, b) <= 0 && Compare(b, c) <= 0 && Compare(a, c) > 0 {
			t.Fatalf("transitivity violated: %v <= %v <= %v but %v > %v", a, b, b, a, c)
		}
	}
}

func TestRowClone(t *testing.T) {
	r := Row{Int(1), Str("x")}
	c := r.Clone()
	c[0] = Int(9)
	if r[0].I != 1 {
		t.Error("Clone must not alias")
	}
}

func TestRowCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 2000; i++ {
		n := rng.Intn(8)
		row := make(Row, n)
		for j := range row {
			row[j] = randValue(rng)
		}
		enc := EncodeRow(row)
		dec, err := DecodeRow(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(dec) != len(row) {
			t.Fatalf("length %d != %d", len(dec), len(row))
		}
		for j := range row {
			if row[j].T != dec[j].T || Compare(row[j], dec[j]) != 0 {
				t.Fatalf("column %d: %v != %v", j, row[j], dec[j])
			}
		}
	}
}

func TestRowCodecRejectsCorrupt(t *testing.T) {
	row := Row{Int(5), Str("hello"), Float(1.5)}
	enc := EncodeRow(row)
	for cut := 1; cut < len(enc); cut++ {
		if _, err := DecodeRow(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := DecodeRow(append(enc, 0)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	if _, err := DecodeRow(nil); err == nil {
		t.Fatal("empty record accepted")
	}
}

func TestKeyEncodingPreservesOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for i := 0; i < 50000; i++ {
		a, b := randValue(rng), randValue(rng)
		// Skip NaN-producing cases: no NaNs come from randValue.
		ka := EncodeKey(nil, a)
		kb := EncodeKey(nil, b)
		vc := Compare(a, b)
		kc := CompareKeys(ka, kb)
		if vc != kc {
			t.Fatalf("order mismatch: Compare(%v,%v)=%d but keys compare %d", a, b, vc, kc)
		}
	}
}

func TestKeyEncodingCompositeOrder(t *testing.T) {
	// ("a", 2) < ("a", 10) < ("ab", 0) and string prefix termination works.
	k1 := EncodeKey(nil, Str("a"), Int(2))
	k2 := EncodeKey(nil, Str("a"), Int(10))
	k3 := EncodeKey(nil, Str("ab"), Int(0))
	if CompareKeys(k1, k2) != -1 || CompareKeys(k2, k3) != -1 {
		t.Fatal("composite key order broken")
	}
}

func TestKeyEncodingEmbeddedZeros(t *testing.T) {
	a := Str("a\x00b")
	b := Str("a\x00c")
	c := Str("a")
	ka, kb, kc := EncodeKey(nil, a), EncodeKey(nil, b), EncodeKey(nil, c)
	if CompareKeys(ka, kb) != -1 {
		t.Fatal("embedded zero order broken")
	}
	if CompareKeys(kc, ka) != -1 {
		t.Fatal("prefix must sort before extension")
	}
}

func TestKeySuccessor(t *testing.T) {
	k := EncodeKey(nil, Int(41))
	s := KeySuccessor(k)
	if CompareKeys(k, s) != -1 {
		t.Fatal("successor must be greater")
	}
	next := EncodeKey(nil, Int(42))
	if CompareKeys(s, next) != -1 {
		t.Fatal("successor must sort before the next distinct key")
	}
}
