package expr

import (
	"errors"
	"strings"
	"testing"
)

// testRow: columns 0=AGE int, 1=NAME string, 2=SALARY float, 3=ACTIVE bool
var testRow = Row{Int(30), Str("smith"), Float(1500.5), Bool(true)}

func age() Expr    { return Col(0, "AGE") }
func name() Expr   { return Col(1, "NAME") }
func salary() Expr { return Col(2, "SALARY") }

func mustEval(t *testing.T, e Expr, row Row, binds Bindings) Value {
	t.Helper()
	v, err := e.Eval(row, binds)
	if err != nil {
		t.Fatalf("Eval(%s): %v", e, err)
	}
	return v
}

func TestCmpOperators(t *testing.T) {
	cases := []struct {
		op   CmpOp
		rhs  Value
		want bool
	}{
		{EQ, Int(30), true}, {EQ, Int(31), false},
		{NE, Int(30), false}, {NE, Int(31), true},
		{LT, Int(31), true}, {LT, Int(30), false},
		{LE, Int(30), true}, {LE, Int(29), false},
		{GT, Int(29), true}, {GT, Int(30), false},
		{GE, Int(30), true}, {GE, Int(31), false},
	}
	for _, c := range cases {
		e := NewCmp(c.op, age(), Lit(c.rhs))
		if got := mustEval(t, e, testRow, nil); got.Truth() != c.want {
			t.Errorf("%s on AGE=30: got %v, want %v", e, got, c.want)
		}
	}
}

func TestCmpCrossTypeNumeric(t *testing.T) {
	e := NewCmp(GT, salary(), Lit(Int(1500)))
	if !mustEval(t, e, testRow, nil).Truth() {
		t.Error("1500.5 > 1500 should hold")
	}
}

func TestCmpTypeMismatchIsError(t *testing.T) {
	e := NewCmp(EQ, age(), Lit(Str("30")))
	if _, err := e.Eval(testRow, nil); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("got %v, want ErrTypeMismatch", err)
	}
}

func TestCmpNullIsFalse(t *testing.T) {
	e := NewCmp(EQ, age(), Lit(Null()))
	if mustEval(t, e, testRow, nil).Truth() {
		t.Error("comparison with NULL must be FALSE")
	}
	e = NewCmp(NE, age(), Lit(Null()))
	if mustEval(t, e, testRow, nil).Truth() {
		t.Error("NE with NULL must also be FALSE")
	}
}

func TestParamBinding(t *testing.T) {
	e := NewCmp(GE, age(), Var("A1"))
	if !mustEval(t, e, testRow, Bindings{"A1": Int(0)}).Truth() {
		t.Error("AGE >= 0 should hold")
	}
	if mustEval(t, e, testRow, Bindings{"A1": Int(200)}).Truth() {
		t.Error("AGE >= 200 should not hold")
	}
	if _, err := e.Eval(testRow, nil); !errors.Is(err, ErrUnboundParam) {
		t.Fatalf("unbound param: got %v", err)
	}
}

func TestAndOrNot(t *testing.T) {
	tr := NewCmp(EQ, age(), Lit(Int(30)))
	fa := NewCmp(EQ, age(), Lit(Int(31)))
	if !mustEval(t, NewAnd(tr, tr), testRow, nil).Truth() {
		t.Error("T AND T")
	}
	if mustEval(t, NewAnd(tr, fa), testRow, nil).Truth() {
		t.Error("T AND F")
	}
	if !mustEval(t, NewOr(fa, tr), testRow, nil).Truth() {
		t.Error("F OR T")
	}
	if mustEval(t, NewOr(fa, fa), testRow, nil).Truth() {
		t.Error("F OR F")
	}
	if mustEval(t, NewNot(tr), testRow, nil).Truth() {
		t.Error("NOT T")
	}
	if !mustEval(t, NewAnd(), testRow, nil).Truth() {
		t.Error("empty AND must be TRUE")
	}
	if mustEval(t, NewOr(), testRow, nil).Truth() {
		t.Error("empty OR must be FALSE")
	}
}

func TestAndShortCircuitSkipsError(t *testing.T) {
	fa := NewCmp(EQ, age(), Lit(Int(31)))
	boom := NewCmp(EQ, age(), Var("missing"))
	if mustEval(t, NewAnd(fa, boom), testRow, nil).Truth() {
		t.Error("want FALSE")
	}
	tr := NewCmp(EQ, age(), Lit(Int(30)))
	if !mustEval(t, NewOr(tr, boom), testRow, nil).Truth() {
		t.Error("want TRUE")
	}
}

func TestNonBooleanOperandIsError(t *testing.T) {
	if _, err := NewAnd(age()).Eval(testRow, nil); !errors.Is(err, ErrNotBoolean) {
		t.Fatalf("AND over int: got %v", err)
	}
	if _, err := NewNot(age()).Eval(testRow, nil); !errors.Is(err, ErrNotBoolean) {
		t.Fatalf("NOT over int: got %v", err)
	}
	if _, err := EvalPred(age(), testRow, nil); !errors.Is(err, ErrNotBoolean) {
		t.Fatalf("EvalPred over int: got %v", err)
	}
}

func TestColumnOutOfRange(t *testing.T) {
	e := Col(9, "X")
	if _, err := e.Eval(testRow, nil); !errors.Is(err, ErrColumnMissing) {
		t.Fatalf("got %v", err)
	}
}

func TestEvalPredNilIsTrue(t *testing.T) {
	ok, err := EvalPred(nil, testRow, nil)
	if err != nil || !ok {
		t.Fatalf("nil restriction: %v, %v", ok, err)
	}
}

func TestConjunctsFlattensNestedAnds(t *testing.T) {
	a := NewCmp(GT, age(), Lit(Int(1)))
	b := NewCmp(LT, age(), Lit(Int(9)))
	c := NewCmp(EQ, name(), Lit(Str("x")))
	e := NewAnd(NewAnd(a, b), c)
	cs := Conjuncts(e)
	if len(cs) != 3 {
		t.Fatalf("got %d conjuncts, want 3", len(cs))
	}
	// An OR is a single conjunct.
	e2 := NewAnd(a, NewOr(b, c))
	if got := Conjuncts(e2); len(got) != 2 {
		t.Fatalf("got %d conjuncts, want 2", len(got))
	}
	if Conjuncts(nil) != nil {
		t.Fatal("nil expression must have no conjuncts")
	}
}

func TestColumnsAndParams(t *testing.T) {
	e := NewAnd(
		NewCmp(GT, age(), Var("A1")),
		NewOr(
			NewCmp(EQ, name(), Lit(Str("x"))),
			NewNot(NewCmp(LT, salary(), Var("S"))),
		),
	)
	if got := Columns(e); len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("Columns = %v", got)
	}
	if got := Params(e); len(got) != 2 || got[0] != "A1" || got[1] != "S" {
		t.Fatalf("Params = %v", got)
	}
}

func TestStringRendering(t *testing.T) {
	e := NewAnd(
		NewCmp(GE, age(), Var("A1")),
		NewOr(NewCmp(EQ, name(), Lit(Str("x"))), NewCmp(LT, salary(), Lit(Float(10)))),
	)
	s := e.String()
	for _, want := range []string{"AGE >= :A1", "OR", `NAME = "x"`} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestValidate(t *testing.T) {
	good := NewAnd(NewCmp(EQ, age(), Lit(Int(1))), NewNot(NewCmp(LT, age(), Var("p"))))
	if err := Validate(good); err != nil {
		t.Fatalf("good tree rejected: %v", err)
	}
	bad := &Cmp{Op: EQ, L: age(), R: nil}
	if err := Validate(bad); err == nil {
		t.Fatal("nil operand accepted")
	}
	if err := Validate(&And{Kids: []Expr{nil}}); err == nil {
		t.Fatal("nil AND child accepted")
	}
	if err := Validate(nil); err != nil {
		t.Fatalf("nil expression should validate: %v", err)
	}
}

func TestFlipOp(t *testing.T) {
	pairs := map[CmpOp]CmpOp{EQ: EQ, NE: NE, LT: GT, LE: GE, GT: LT, GE: LE}
	for op, want := range pairs {
		if got := op.Flip(); got != want {
			t.Errorf("Flip(%s) = %s, want %s", op, got, want)
		}
	}
}
