package expr

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Bindings supplies values for host-language parameters (":A1" in the
// paper's Section 4 example) at run time. A nil Bindings is valid and
// binds nothing.
type Bindings map[string]Value

// Errors from expression evaluation.
var (
	ErrUnboundParam  = errors.New("expr: unbound parameter")
	ErrTypeMismatch  = errors.New("expr: type mismatch in comparison")
	ErrNotBoolean    = errors.New("expr: expression is not boolean")
	ErrColumnMissing = errors.New("expr: column index out of range")
)

// Expr is a node of an expression tree evaluated against a row.
type Expr interface {
	// Eval computes the node's value for a row under bindings.
	Eval(row Row, binds Bindings) (Value, error)
	String() string
}

// ColRef references a column by position; Name is for display only.
type ColRef struct {
	Index int
	Name  string
}

// Col constructs a column reference.
func Col(index int, name string) *ColRef { return &ColRef{Index: index, Name: name} }

// Eval implements Expr.
func (c *ColRef) Eval(row Row, _ Bindings) (Value, error) {
	if c.Index < 0 || c.Index >= len(row) {
		return Null(), fmt.Errorf("%w: %d", ErrColumnMissing, c.Index)
	}
	return row[c.Index], nil
}

func (c *ColRef) String() string {
	if c.Name != "" {
		return c.Name
	}
	return fmt.Sprintf("#%d", c.Index)
}

// Const is a literal value.
type Const struct{ V Value }

// Lit constructs a literal node.
func Lit(v Value) *Const { return &Const{V: v} }

// Eval implements Expr.
func (c *Const) Eval(Row, Bindings) (Value, error) { return c.V, nil }

func (c *Const) String() string { return c.V.String() }

// Param is a host-language variable, bound per run. Its presence is what
// makes a query "parametric" in the paper's sense: the right plan can
// change between runs.
type Param struct{ Name string }

// Var constructs a parameter node.
func Var(name string) *Param { return &Param{Name: name} }

// Eval implements Expr.
func (p *Param) Eval(_ Row, binds Bindings) (Value, error) {
	v, ok := binds[p.Name]
	if !ok {
		return Null(), fmt.Errorf("%w: :%s", ErrUnboundParam, p.Name)
	}
	return v, nil
}

func (p *Param) String() string { return ":" + p.Name }

// CmpOp is a comparison operator.
type CmpOp uint8

// Comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

func (op CmpOp) String() string {
	switch op {
	case EQ:
		return "="
	case NE:
		return "<>"
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	default:
		return "?"
	}
}

// Flip returns the operator with operands swapped (a op b == b Flip(op) a).
func (op CmpOp) Flip() CmpOp {
	switch op {
	case LT:
		return GT
	case LE:
		return GE
	case GT:
		return LT
	case GE:
		return LE
	default:
		return op // EQ, NE are symmetric
	}
}

// Cmp compares two sub-expressions.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// NewCmp constructs a comparison node.
func NewCmp(op CmpOp, l, r Expr) *Cmp { return &Cmp{Op: op, L: l, R: r} }

// Eval implements Expr. Comparisons involving NULL evaluate to FALSE
// (two-valued logic: the simulator has no UNKNOWN).
func (c *Cmp) Eval(row Row, binds Bindings) (Value, error) {
	lv, err := c.L.Eval(row, binds)
	if err != nil {
		return Null(), err
	}
	rv, err := c.R.Eval(row, binds)
	if err != nil {
		return Null(), err
	}
	if lv.IsNull() || rv.IsNull() {
		return Bool(false), nil
	}
	if !Comparable(lv.T, rv.T) {
		return Null(), fmt.Errorf("%w: %s %s %s", ErrTypeMismatch, lv.T, c.Op, rv.T)
	}
	d := Compare(lv, rv)
	var out bool
	switch c.Op {
	case EQ:
		out = d == 0
	case NE:
		out = d != 0
	case LT:
		out = d < 0
	case LE:
		out = d <= 0
	case GT:
		out = d > 0
	case GE:
		out = d >= 0
	}
	return Bool(out), nil
}

func (c *Cmp) String() string {
	return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R)
}

// And is an N-ary conjunction. Empty And is TRUE.
type And struct{ Kids []Expr }

// NewAnd constructs a conjunction, flattening nested Ands.
func NewAnd(kids ...Expr) *And {
	a := &And{}
	for _, k := range kids {
		if sub, ok := k.(*And); ok {
			a.Kids = append(a.Kids, sub.Kids...)
		} else {
			a.Kids = append(a.Kids, k)
		}
	}
	return a
}

// Eval implements Expr with short-circuiting.
func (a *And) Eval(row Row, binds Bindings) (Value, error) {
	for _, k := range a.Kids {
		v, err := k.Eval(row, binds)
		if err != nil {
			return Null(), err
		}
		if v.T != TypeBool {
			return Null(), fmt.Errorf("%w: AND operand %s", ErrNotBoolean, k)
		}
		if !v.Truth() {
			return Bool(false), nil
		}
	}
	return Bool(true), nil
}

func (a *And) String() string { return joinKids(a.Kids, " AND ", "TRUE") }

// Or is an N-ary disjunction. Empty Or is FALSE.
type Or struct{ Kids []Expr }

// NewOr constructs a disjunction, flattening nested Ors.
func NewOr(kids ...Expr) *Or {
	o := &Or{}
	for _, k := range kids {
		if sub, ok := k.(*Or); ok {
			o.Kids = append(o.Kids, sub.Kids...)
		} else {
			o.Kids = append(o.Kids, k)
		}
	}
	return o
}

// Eval implements Expr with short-circuiting.
func (o *Or) Eval(row Row, binds Bindings) (Value, error) {
	for _, k := range o.Kids {
		v, err := k.Eval(row, binds)
		if err != nil {
			return Null(), err
		}
		if v.T != TypeBool {
			return Null(), fmt.Errorf("%w: OR operand %s", ErrNotBoolean, k)
		}
		if v.Truth() {
			return Bool(true), nil
		}
	}
	return Bool(false), nil
}

func (o *Or) String() string { return joinKids(o.Kids, " OR ", "FALSE") }

// Not negates a boolean sub-expression.
type Not struct{ Kid Expr }

// NewNot constructs a negation.
func NewNot(kid Expr) *Not { return &Not{Kid: kid} }

// Eval implements Expr.
func (n *Not) Eval(row Row, binds Bindings) (Value, error) {
	v, err := n.Kid.Eval(row, binds)
	if err != nil {
		return Null(), err
	}
	if v.T != TypeBool {
		return Null(), fmt.Errorf("%w: NOT operand %s", ErrNotBoolean, n.Kid)
	}
	return Bool(!v.Truth()), nil
}

func (n *Not) String() string { return "NOT (" + n.Kid.String() + ")" }

func joinKids(kids []Expr, sep, empty string) string {
	if len(kids) == 0 {
		return empty
	}
	parts := make([]string, len(kids))
	for i, k := range kids {
		switch k.(type) {
		case *And, *Or:
			parts[i] = "(" + k.String() + ")"
		default:
			parts[i] = k.String()
		}
	}
	return strings.Join(parts, sep)
}

// EvalPred evaluates e as a boolean restriction on row.
func EvalPred(e Expr, row Row, binds Bindings) (bool, error) {
	if e == nil {
		return true, nil
	}
	v, err := e.Eval(row, binds)
	if err != nil {
		return false, err
	}
	if v.T != TypeBool {
		return false, fmt.Errorf("%w: %s", ErrNotBoolean, e)
	}
	return v.Truth(), nil
}

// Conjuncts splits e into its top-level AND factors. A nil expression
// yields nil (no restriction).
func Conjuncts(e Expr) []Expr {
	switch t := e.(type) {
	case nil:
		return nil
	case *And:
		var out []Expr
		for _, k := range t.Kids {
			out = append(out, Conjuncts(k)...)
		}
		return out
	default:
		return []Expr{e}
	}
}

// Columns returns the sorted set of column indexes referenced by e.
func Columns(e Expr) []int {
	set := map[int]bool{}
	collectColumns(e, set)
	out := make([]int, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

func collectColumns(e Expr, set map[int]bool) {
	switch t := e.(type) {
	case nil:
	case *ColRef:
		set[t.Index] = true
	case *Const, *Param:
	case *Cmp:
		collectColumns(t.L, set)
		collectColumns(t.R, set)
	case *And:
		for _, k := range t.Kids {
			collectColumns(k, set)
		}
	case *Or:
		for _, k := range t.Kids {
			collectColumns(k, set)
		}
	case *Not:
		collectColumns(t.Kid, set)
	}
}

// Params returns the sorted set of parameter names referenced by e.
func Params(e Expr) []string {
	set := map[string]bool{}
	collectParams(e, set)
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

func collectParams(e Expr, set map[string]bool) {
	switch t := e.(type) {
	case nil:
	case *Param:
		set[t.Name] = true
	case *Cmp:
		collectParams(t.L, set)
		collectParams(t.R, set)
	case *And:
		for _, k := range t.Kids {
			collectParams(k, set)
		}
	case *Or:
		for _, k := range t.Kids {
			collectParams(k, set)
		}
	case *Not:
		collectParams(t.Kid, set)
	}
}
