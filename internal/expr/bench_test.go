package expr

import (
	"math/rand"
	"testing"
)

func BenchmarkEncodeRow(b *testing.B) {
	row := Row{Int(42), Str("hello world"), Float(3.14), Bool(true)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EncodeRow(row)
	}
}

func BenchmarkDecodeRow(b *testing.B) {
	enc := EncodeRow(Row{Int(42), Str("hello world"), Float(3.14), Bool(true)})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeRow(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeKey(b *testing.B) {
	var dst []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = EncodeKey(dst[:0], Int(int64(i)), Str("abc"))
	}
}

func BenchmarkEvalPredicate(b *testing.B) {
	row := Row{Int(30), Str("smith"), Float(1500.5)}
	e := NewAnd(
		NewCmp(GE, Col(0, "AGE"), Lit(Int(10))),
		NewOr(
			NewCmp(EQ, Col(1, "NAME"), Lit(Str("smith"))),
			NewCmp(LT, Col(2, "SALARY"), Lit(Float(100))),
		),
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EvalPred(e, row, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompareValues(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]Value, 1024)
	for i := range vals {
		vals[i] = randValue(rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compare(vals[i%1024], vals[(i+1)%1024])
	}
}
