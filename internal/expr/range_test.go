package expr

import (
	"math/rand"
	"testing"
)

func TestRangeBasics(t *testing.T) {
	full := FullRange()
	if !full.IsFull() || full.Empty() || full.IsPoint() {
		t.Fatal("full range misclassified")
	}
	p := PointRange(Int(5))
	if !p.IsPoint() || p.Empty() {
		t.Fatal("point range misclassified")
	}
	if !p.Contains(Int(5)) || p.Contains(Int(6)) {
		t.Fatal("point containment wrong")
	}
}

func TestRangeEmpty(t *testing.T) {
	lo := Bound{Value: Int(10), Inclusive: true, Present: true}
	hi := Bound{Value: Int(5), Inclusive: true, Present: true}
	if !(Range{Lo: lo, Hi: hi}).Empty() {
		t.Fatal("inverted range must be empty")
	}
	// [5,5) is empty, [5,5] is not.
	he := Bound{Value: Int(5), Present: true}
	hi5 := Bound{Value: Int(5), Inclusive: true, Present: true}
	lo5 := Bound{Value: Int(5), Inclusive: true, Present: true}
	if !(Range{Lo: lo5, Hi: he}).Empty() {
		t.Fatal("[5,5) must be empty")
	}
	if (Range{Lo: lo5, Hi: hi5}).Empty() {
		t.Fatal("[5,5] must not be empty")
	}
}

func TestRangeIntersect(t *testing.T) {
	a := Range{Lo: Bound{Value: Int(0), Inclusive: true, Present: true}}
	b := Range{Hi: Bound{Value: Int(10), Present: true}}
	c := a.Intersect(b)
	if !c.Contains(Int(0)) || !c.Contains(Int(9)) || c.Contains(Int(10)) || c.Contains(Int(-1)) {
		t.Fatalf("intersection wrong: %v", c)
	}
	// Tighter bound wins; exclusive beats inclusive at the same value.
	d := a.Intersect(Range{Lo: Bound{Value: Int(0), Present: true}})
	if d.Contains(Int(0)) {
		t.Fatal("exclusive lower bound must win at equal value")
	}
}

func TestRangeIntersectRandomizedAgainstContains(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	randBound := func() Bound {
		if rng.Intn(4) == 0 {
			return Bound{}
		}
		return Bound{Value: Int(int64(rng.Intn(20))), Inclusive: rng.Intn(2) == 0, Present: true}
	}
	for i := 0; i < 5000; i++ {
		a := Range{Lo: randBound(), Hi: randBound()}
		b := Range{Lo: randBound(), Hi: randBound()}
		c := a.Intersect(b)
		for v := int64(-1); v <= 21; v++ {
			got := c.Contains(Int(v))
			want := a.Contains(Int(v)) && b.Contains(Int(v))
			if got != want {
				t.Fatalf("Contains(%d) on %v ∩ %v = %v: got %v, want %v", v, a, b, c, got, want)
			}
		}
	}
}

func TestRangeFromCmpBothOperandOrders(t *testing.T) {
	// AGE >= 10
	r1, ok := RangeFromCmp(NewCmp(GE, Col(0, "AGE"), Lit(Int(10))), 0, nil)
	if !ok {
		t.Fatal("sargable conjunct rejected")
	}
	// 10 <= AGE: same range.
	r2, ok := RangeFromCmp(NewCmp(LE, Lit(Int(10)), Col(0, "AGE")), 0, nil)
	if !ok {
		t.Fatal("flipped conjunct rejected")
	}
	for v := int64(8); v <= 12; v++ {
		if r1.Contains(Int(v)) != r2.Contains(Int(v)) {
			t.Fatalf("flip mismatch at %d: %v vs %v", v, r1, r2)
		}
	}
	if r1.Contains(Int(9)) || !r1.Contains(Int(10)) {
		t.Fatalf("GE range wrong: %v", r1)
	}
}

func TestRangeFromCmpRejectsNonSargable(t *testing.T) {
	// Different column.
	if _, ok := RangeFromCmp(NewCmp(EQ, Col(1, "B"), Lit(Int(1))), 0, nil); ok {
		t.Fatal("other-column conjunct accepted")
	}
	// Column-to-column comparison.
	if _, ok := RangeFromCmp(NewCmp(LT, Col(0, "A"), Col(1, "B")), 0, nil); ok {
		t.Fatal("col-col conjunct accepted")
	}
	// NE is not sargable.
	if _, ok := RangeFromCmp(NewCmp(NE, Col(0, "A"), Lit(Int(1))), 0, nil); ok {
		t.Fatal("NE accepted")
	}
	// Unbound parameter.
	if _, ok := RangeFromCmp(NewCmp(EQ, Col(0, "A"), Var("p")), 0, nil); ok {
		t.Fatal("unbound param accepted")
	}
}

func TestRangeFromCmpWithParam(t *testing.T) {
	c := NewCmp(GE, Col(0, "AGE"), Var("A1"))
	r, ok := RangeFromCmp(c, 0, Bindings{"A1": Int(200)})
	if !ok {
		t.Fatal("bound param rejected")
	}
	if r.Contains(Int(199)) || !r.Contains(Int(200)) {
		t.Fatalf("param range wrong: %v", r)
	}
}

func TestRangeFromCmpNullConstantIsEmpty(t *testing.T) {
	r, ok := RangeFromCmp(NewCmp(EQ, Col(0, "A"), Lit(Null())), 0, nil)
	if !ok || !r.Empty() {
		t.Fatalf("NULL comparison: ok=%v range=%v", ok, r)
	}
}

func TestExtractRangeIntersectsConjuncts(t *testing.T) {
	e := NewAnd(
		NewCmp(GE, Col(0, "AGE"), Lit(Int(30))),
		NewCmp(LT, Col(0, "AGE"), Lit(Int(40))),
		NewCmp(EQ, Col(1, "NAME"), Lit(Str("x"))), // other column: ignored
	)
	r, n := ExtractRange(e, 0, nil)
	if n != 2 {
		t.Fatalf("contributing conjuncts = %d, want 2", n)
	}
	if !r.Contains(Int(30)) || !r.Contains(Int(39)) || r.Contains(Int(40)) || r.Contains(Int(29)) {
		t.Fatalf("range wrong: %v", r)
	}
	// Column 1 gets a point range from its EQ.
	r1, n1 := ExtractRange(e, 1, nil)
	if n1 != 1 || !r1.IsPoint() {
		t.Fatalf("col 1: n=%d range=%v", n1, r1)
	}
	// Column 2 gets the full range.
	r2, n2 := ExtractRange(e, 2, nil)
	if n2 != 0 || !r2.IsFull() {
		t.Fatalf("col 2: n=%d range=%v", n2, r2)
	}
}

func TestExtractRangeContradictionIsEmpty(t *testing.T) {
	e := NewAnd(
		NewCmp(GT, Col(0, "A"), Lit(Int(10))),
		NewCmp(LT, Col(0, "A"), Lit(Int(5))),
	)
	r, _ := ExtractRange(e, 0, nil)
	if !r.Empty() {
		t.Fatalf("contradictory range not empty: %v", r)
	}
}

func TestEncodedBoundsMatchContains(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 3000; i++ {
		var r Range
		if rng.Intn(3) > 0 {
			r.Lo = Bound{Value: Int(int64(rng.Intn(100))), Inclusive: rng.Intn(2) == 0, Present: true}
		}
		if rng.Intn(3) > 0 {
			r.Hi = Bound{Value: Int(int64(rng.Intn(100))), Inclusive: rng.Intn(2) == 0, Present: true}
		}
		lo, hi := r.EncodedBounds()
		for v := int64(0); v < 100; v += 7 {
			k := EncodeKey(nil, Int(v))
			inKeys := (lo == nil || CompareKeys(k, lo) >= 0) && (hi == nil || CompareKeys(k, hi) < 0)
			if inKeys != r.Contains(Int(v)) {
				t.Fatalf("bounds mismatch for %d in %v", v, r)
			}
		}
	}
}

func TestRangeString(t *testing.T) {
	r := Range{
		Lo: Bound{Value: Int(1), Inclusive: true, Present: true},
		Hi: Bound{Value: Int(5), Present: true},
	}
	if got := r.String(); got != "[1, 5)" {
		t.Fatalf("String = %q", got)
	}
	if got := FullRange().String(); got != "(-inf, +inf)" {
		t.Fatalf("full String = %q", got)
	}
}
