// Package expr provides typed values, row encoding, order-preserving key
// encoding, and Boolean predicate trees over rows.
//
// Predicates are the restrictions of the paper: AND/OR/NOT combinations
// of comparisons between columns, constants, and host-language parameters
// (the ":A1" of Section 4). The package also extracts per-column ranges
// from a restriction, which is what the initial estimation stage of the
// dynamic optimizer feeds to the B-tree descent estimator.
package expr

import (
	"fmt"
	"strconv"
)

// Type enumerates the value types of the mini data model.
type Type uint8

// Supported types. Null sorts below every other value.
const (
	TypeNull Type = iota
	TypeBool
	TypeInt
	TypeFloat
	TypeString
)

func (t Type) String() string {
	switch t {
	case TypeNull:
		return "NULL"
	case TypeBool:
		return "BOOL"
	case TypeInt:
		return "INT"
	case TypeFloat:
		return "FLOAT"
	case TypeString:
		return "STRING"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Value is a dynamically typed scalar. The zero value is NULL.
type Value struct {
	T Type
	I int64   // TypeInt, and TypeBool (0/1)
	F float64 // TypeFloat
	S string  // TypeString
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Int returns an integer value.
func Int(i int64) Value { return Value{T: TypeInt, I: i} }

// Float returns a floating-point value.
func Float(f float64) Value { return Value{T: TypeFloat, F: f} }

// Str returns a string value.
func Str(s string) Value { return Value{T: TypeString, S: s} }

// Bool returns a boolean value.
func Bool(b bool) Value {
	v := Value{T: TypeBool}
	if b {
		v.I = 1
	}
	return v
}

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.T == TypeNull }

// Truth reports whether v is the boolean TRUE.
func (v Value) Truth() bool { return v.T == TypeBool && v.I != 0 }

// AsFloat converts numeric values to float64. It returns false for
// non-numeric values.
func (v Value) AsFloat() (float64, bool) {
	switch v.T {
	case TypeInt:
		return float64(v.I), true
	case TypeFloat:
		return v.F, true
	default:
		return 0, false
	}
}

func (v Value) String() string {
	switch v.T {
	case TypeNull:
		return "NULL"
	case TypeBool:
		if v.I != 0 {
			return "TRUE"
		}
		return "FALSE"
	case TypeInt:
		return strconv.FormatInt(v.I, 10)
	case TypeFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case TypeString:
		return strconv.Quote(v.S)
	default:
		return "?"
	}
}

// Compare orders two values: -1, 0, +1. Ints and floats compare
// numerically with each other. Values of incomparable types order by
// type tag (NULL < BOOL < numbers < STRING), which gives a total order
// usable for sorting; predicate evaluation rejects such comparisons
// separately.
func Compare(a, b Value) int {
	an, aok := a.AsFloat()
	bn, bok := b.AsFloat()
	if aok && bok {
		// Exact integer comparison when both sides are ints, to avoid
		// float rounding at the extremes of int64.
		if a.T == TypeInt && b.T == TypeInt {
			switch {
			case a.I < b.I:
				return -1
			case a.I > b.I:
				return 1
			default:
				return 0
			}
		}
		switch {
		case an < bn:
			return -1
		case an > bn:
			return 1
		default:
			return 0
		}
	}
	if a.T != b.T {
		ta, tb := rankType(a.T), rankType(b.T)
		switch {
		case ta < tb:
			return -1
		case ta > tb:
			return 1
		}
	}
	switch a.T {
	case TypeNull:
		return 0
	case TypeBool:
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		default:
			return 0
		}
	case TypeString:
		switch {
		case a.S < b.S:
			return -1
		case a.S > b.S:
			return 1
		default:
			return 0
		}
	default:
		return 0
	}
}

// rankType collapses INT and FLOAT to one rank so the type order used
// for incomparable values is consistent with numeric cross-comparison.
func rankType(t Type) int {
	switch t {
	case TypeNull:
		return 0
	case TypeBool:
		return 1
	case TypeInt, TypeFloat:
		return 2
	case TypeString:
		return 3
	default:
		return 4
	}
}

// Comparable reports whether values of types a and b can be compared by
// a predicate without a type error.
func Comparable(a, b Type) bool {
	if a == TypeNull || b == TypeNull {
		return true // NULL comparisons evaluate to false, not an error
	}
	return rankType(a) == rankType(b)
}

// Row is a sequence of column values.
type Row []Value

// Clone returns a copy of the row.
func (r Row) Clone() Row {
	c := make(Row, len(r))
	copy(c, r)
	return c
}
