package expr

import (
	"math/rand"
	"testing"
)

func TestDecodeKeyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 20000; i++ {
		n := 1 + rng.Intn(3)
		row := make(Row, n)
		types := make([]Type, n)
		for j := range row {
			row[j] = randValue(rng)
			types[j] = row[j].T
		}
		k := EncodeKey(nil, row...)
		got, err := DecodeKey(k, types)
		if err != nil {
			t.Fatalf("DecodeKey(%v): %v", row, err)
		}
		for j := range row {
			if got[j].T != row[j].T || Compare(got[j], row[j]) != 0 {
				t.Fatalf("column %d: decoded %v, want %v", j, got[j], row[j])
			}
		}
	}
}

func TestDecodeKeyIntExactness(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 1<<52 - 1, -(1<<52 - 1), 123456789} {
		k := EncodeKey(nil, Int(v))
		row, err := DecodeKey(k, []Type{TypeInt})
		if err != nil {
			t.Fatal(err)
		}
		if row[0].T != TypeInt || row[0].I != v {
			t.Fatalf("decoded %v, want %d", row[0], v)
		}
	}
}

func TestDecodeKeyRejectsMalformed(t *testing.T) {
	k := EncodeKey(nil, Str("abc"), Int(5))
	// Truncations must error (except cuts that still parse as fewer
	// columns than requested types -> also error since types demand 2).
	for cut := 0; cut < len(k); cut++ {
		if _, err := DecodeKey(k[:cut], []Type{TypeString, TypeInt}); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := DecodeKey(append(k, 7), []Type{TypeString, TypeInt}); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	if _, err := DecodeKey([]byte{0x77}, []Type{TypeInt}); err == nil {
		t.Fatal("bad rank byte accepted")
	}
}
