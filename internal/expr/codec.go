package expr

import (
	"encoding/binary"
	"errors"
	"math"
)

// ErrCorruptRecord is returned when a stored record cannot be decoded.
var ErrCorruptRecord = errors.New("expr: corrupt record")

// EncodeRow serializes a row into a compact binary record for heap-file
// storage. The format is: uvarint column count, then per column a type
// byte followed by a type-specific payload (varint for ints and bools,
// 8-byte IEEE for floats, uvarint length + bytes for strings).
func EncodeRow(r Row) []byte {
	buf := make([]byte, 0, 8+8*len(r))
	buf = binary.AppendUvarint(buf, uint64(len(r)))
	for _, v := range r {
		buf = append(buf, byte(v.T))
		switch v.T {
		case TypeNull:
		case TypeBool, TypeInt:
			buf = binary.AppendVarint(buf, v.I)
		case TypeFloat:
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.F))
		case TypeString:
			buf = binary.AppendUvarint(buf, uint64(len(v.S)))
			buf = append(buf, v.S...)
		}
	}
	return buf
}

// DecodeRow parses a record produced by EncodeRow.
func DecodeRow(b []byte) (Row, error) { return DecodeRowInto(b, nil) }

// DecodeRowInto is DecodeRow appending into dst[:0], reusing dst's
// backing array when it has the capacity. Row-at-a-time pipelines pass
// a scratch row to decode without allocating; a caller that keeps the
// result past the next decode must copy it first. String values still
// allocate (they copy out of the record).
func DecodeRowInto(b []byte, dst Row) (Row, error) {
	n, k := binary.Uvarint(b)
	if k <= 0 {
		return nil, ErrCorruptRecord
	}
	b = b[k:]
	r := dst[:0]
	if uint64(cap(r)) < n {
		r = make(Row, 0, n)
	}
	for i := uint64(0); i < n; i++ {
		if len(b) == 0 {
			return nil, ErrCorruptRecord
		}
		t := Type(b[0])
		b = b[1:]
		var v Value
		switch t {
		case TypeNull:
			v = Null()
		case TypeBool, TypeInt:
			x, k := binary.Varint(b)
			if k <= 0 {
				return nil, ErrCorruptRecord
			}
			b = b[k:]
			v = Value{T: t, I: x}
		case TypeFloat:
			if len(b) < 8 {
				return nil, ErrCorruptRecord
			}
			v = Float(math.Float64frombits(binary.LittleEndian.Uint64(b)))
			b = b[8:]
		case TypeString:
			l, k := binary.Uvarint(b)
			if k <= 0 || uint64(len(b)-k) < l {
				return nil, ErrCorruptRecord
			}
			b = b[k:]
			v = Str(string(b[:l]))
			b = b[l:]
		default:
			return nil, ErrCorruptRecord
		}
		r = append(r, v)
	}
	if len(b) != 0 {
		return nil, ErrCorruptRecord
	}
	return r, nil
}
