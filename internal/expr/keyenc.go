package expr

import (
	"encoding/binary"
	"errors"
	"math"
)

// Key encoding: order-preserving ("memcomparable") byte strings, so that
// bytes-wise comparison of encoded keys matches Compare on the values.
// B-tree nodes store encoded keys; range scans and the descent-to-split
// estimator work purely on encoded bytes.
//
// Layout per value: one type-rank byte, then a payload whose bytewise
// order matches value order within the rank:
//
//	NULL   -> rank 0x01, no payload
//	BOOL   -> rank 0x02, one byte 0/1
//	number -> rank 0x03, 8 bytes (int64 and float64 share one numeric
//	          code so cross-type comparisons order correctly)
//	STRING -> rank 0x04, escaped bytes terminated by 0x00 0x01
//	          (0x00 in the data is escaped as 0x00 0xFF)
//
// Multi-column keys are simple concatenations; the terminator keeps
// string prefixes ordered before their extensions.

const (
	rankNull   = 0x01
	rankBool   = 0x02
	rankNumber = 0x03
	rankString = 0x04
)

// EncodeKey appends the order-preserving encoding of vals to dst and
// returns the extended slice.
func EncodeKey(dst []byte, vals ...Value) []byte {
	for _, v := range vals {
		switch v.T {
		case TypeNull:
			dst = append(dst, rankNull)
		case TypeBool:
			dst = append(dst, rankBool, byte(v.I))
		case TypeInt:
			dst = append(dst, rankNumber)
			dst = appendNumeric(dst, float64(v.I), v.I, true)
		case TypeFloat:
			dst = append(dst, rankNumber)
			dst = appendNumeric(dst, v.F, 0, false)
		case TypeString:
			dst = append(dst, rankString)
			for i := 0; i < len(v.S); i++ {
				c := v.S[i]
				if c == 0x00 {
					dst = append(dst, 0x00, 0xFF)
				} else {
					dst = append(dst, c)
				}
			}
			dst = append(dst, 0x00, 0x01)
		}
	}
	return dst
}

// appendNumeric encodes a number into 8 bytes whose bytewise order
// matches numeric order, via the IEEE-754 sign-flip trick on the float64
// value. Ints and floats share this single numeric code so cross-type
// comparisons order correctly. Integer columns are assumed to stay within
// +/-2^52, where float64 is exact; the workload generators honor that
// bound.
func appendNumeric(dst []byte, f float64, i int64, isInt bool) []byte {
	if isInt {
		f = float64(i)
	}
	bits := math.Float64bits(f)
	if f >= 0 && !math.Signbit(f) {
		bits |= 1 << 63
	} else {
		bits = ^bits
	}
	return binary.BigEndian.AppendUint64(dst, bits)
}

// CompareKeys compares two encoded keys bytewise.
func CompareKeys(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

// KeySuccessor returns the smallest key strictly greater than every key
// having k as a prefix. It is used to turn inclusive upper bounds on key
// prefixes into exclusive B-tree bounds.
func KeySuccessor(k []byte) []byte {
	s := make([]byte, len(k), len(k)+1)
	copy(s, k)
	return append(s, 0xFF)
}

// ErrBadKey is returned by DecodeKey for malformed encoded keys.
var ErrBadKey = errors.New("expr: malformed encoded key")

// DecodeKey parses the order-preserving encoding back into values. The
// caller supplies the expected column types so the shared numeric code
// can be mapped back to INT or FLOAT; a TypeNull expectation accepts any
// type. Self-sufficient index scans use this to evaluate restrictions on
// index keys without fetching data records.
func DecodeKey(k []byte, types []Type) (Row, error) {
	row := make(Row, 0, len(types))
	for _, want := range types {
		if len(k) == 0 {
			return nil, ErrBadKey
		}
		rank := k[0]
		k = k[1:]
		switch rank {
		case rankNull:
			row = append(row, Null())
		case rankBool:
			if len(k) < 1 {
				return nil, ErrBadKey
			}
			row = append(row, Bool(k[0] != 0))
			k = k[1:]
		case rankNumber:
			if len(k) < 8 {
				return nil, ErrBadKey
			}
			bits := binary.BigEndian.Uint64(k)
			k = k[8:]
			if bits&(1<<63) != 0 {
				bits &^= 1 << 63
			} else {
				bits = ^bits
			}
			f := math.Float64frombits(bits)
			if want == TypeInt {
				row = append(row, Int(int64(f)))
			} else {
				row = append(row, Float(f))
			}
		case rankString:
			var sb []byte
			for {
				if len(k) < 1 {
					return nil, ErrBadKey
				}
				c := k[0]
				k = k[1:]
				if c != 0x00 {
					sb = append(sb, c)
					continue
				}
				if len(k) < 1 {
					return nil, ErrBadKey
				}
				esc := k[0]
				k = k[1:]
				if esc == 0xFF {
					sb = append(sb, 0x00)
					continue
				}
				if esc == 0x01 {
					break // terminator
				}
				return nil, ErrBadKey
			}
			row = append(row, Str(string(sb)))
		default:
			return nil, ErrBadKey
		}
	}
	if len(k) != 0 {
		return nil, ErrBadKey
	}
	return row, nil
}
