package expr

import "fmt"

// Bound is one end of a key range.
type Bound struct {
	Value     Value
	Inclusive bool
	Present   bool // false = unbounded on this side
}

// Range is an interval of values for a single column, derived from the
// sargable conjuncts of a restriction. The zero value is the full range.
//
// The initial stage of the dynamic optimizer (paper Section 5) turns each
// index's restriction portion into a Range, estimates its RID count by
// B-tree descent, and orders the indexes by ascending estimate. An Empty
// range triggers the paper's shortcut: all retrieval stages are canceled
// and "end of data" is delivered at once.
type Range struct {
	Lo, Hi Bound
}

// FullRange returns the unbounded range.
func FullRange() Range { return Range{} }

// PointRange returns the range containing exactly v.
func PointRange(v Value) Range {
	b := Bound{Value: v, Inclusive: true, Present: true}
	return Range{Lo: b, Hi: b}
}

// IsFull reports whether the range is unbounded on both sides.
func (r Range) IsFull() bool { return !r.Lo.Present && !r.Hi.Present }

// IsPoint reports whether the range contains at most one value.
func (r Range) IsPoint() bool {
	return r.Lo.Present && r.Hi.Present && r.Lo.Inclusive && r.Hi.Inclusive &&
		Compare(r.Lo.Value, r.Hi.Value) == 0
}

// Empty reports whether the range provably contains no values.
func (r Range) Empty() bool {
	if !r.Lo.Present || !r.Hi.Present {
		return false
	}
	d := Compare(r.Lo.Value, r.Hi.Value)
	if d > 0 {
		return true
	}
	if d == 0 {
		return !(r.Lo.Inclusive && r.Hi.Inclusive)
	}
	return false
}

// Contains reports whether v lies within the range.
func (r Range) Contains(v Value) bool {
	if r.Lo.Present {
		d := Compare(v, r.Lo.Value)
		if d < 0 || (d == 0 && !r.Lo.Inclusive) {
			return false
		}
	}
	if r.Hi.Present {
		d := Compare(v, r.Hi.Value)
		if d > 0 || (d == 0 && !r.Hi.Inclusive) {
			return false
		}
	}
	return true
}

// Intersect tightens r by o and returns the result.
func (r Range) Intersect(o Range) Range {
	out := r
	if o.Lo.Present {
		if !out.Lo.Present {
			out.Lo = o.Lo
		} else {
			d := Compare(o.Lo.Value, out.Lo.Value)
			if d > 0 || (d == 0 && !o.Lo.Inclusive) {
				out.Lo = o.Lo
			}
		}
	}
	if o.Hi.Present {
		if !out.Hi.Present {
			out.Hi = o.Hi
		} else {
			d := Compare(o.Hi.Value, out.Hi.Value)
			if d < 0 || (d == 0 && !o.Hi.Inclusive) {
				out.Hi = o.Hi
			}
		}
	}
	return out
}

func (r Range) String() string {
	lo, hi := "(-inf", "+inf)"
	if r.Lo.Present {
		br := "("
		if r.Lo.Inclusive {
			br = "["
		}
		lo = br + r.Lo.Value.String()
	}
	if r.Hi.Present {
		br := ")"
		if r.Hi.Inclusive {
			br = "]"
		}
		hi = r.Hi.Value.String() + br
	}
	return lo + ", " + hi
}

// EncodedBounds converts the range into encoded-key bounds usable for a
// B-tree scan: lo inclusive, hi exclusive, either possibly nil meaning
// unbounded. The conversion relies on EncodeKey order preservation and
// KeySuccessor for inclusive upper / exclusive lower bounds.
func (r Range) EncodedBounds() (lo, hi []byte) {
	if r.Lo.Present {
		lo = EncodeKey(nil, r.Lo.Value)
		if !r.Lo.Inclusive {
			lo = KeySuccessor(lo)
		}
	}
	if r.Hi.Present {
		hi = EncodeKey(nil, r.Hi.Value)
		if r.Hi.Inclusive {
			hi = KeySuccessor(hi)
		}
	}
	return lo, hi
}

// RangeFromCmp derives the range a single comparison imposes on column
// col. It handles both operand orders (col op const and const op col).
// The second return is false when the conjunct is not sargable for col:
// not a comparison, references a different or more than one column, uses
// NE, or its constant side cannot be resolved under binds.
func RangeFromCmp(c *Cmp, col int, binds Bindings) (Range, bool) {
	constSide, op := c.R, c.Op
	if cref, ok := c.L.(*ColRef); !ok || cref.Index != col {
		cref, ok = c.R.(*ColRef)
		if !ok || cref.Index != col {
			return Range{}, false
		}
		constSide, op = c.L, c.Op.Flip()
	}
	var v Value
	switch t := constSide.(type) {
	case *Const:
		v = t.V
	case *Param:
		pv, okb := binds[t.Name]
		if !okb {
			return Range{}, false
		}
		v = pv
	default:
		return Range{}, false
	}
	if v.IsNull() {
		// col op NULL is always false: provably empty range.
		return Range{
			Lo: Bound{Value: Int(1), Inclusive: false, Present: true},
			Hi: Bound{Value: Int(0), Inclusive: false, Present: true},
		}, true
	}
	switch op {
	case EQ:
		return PointRange(v), true
	case LT:
		return Range{Hi: Bound{Value: v, Present: true}}, true
	case LE:
		return Range{Hi: Bound{Value: v, Inclusive: true, Present: true}}, true
	case GT:
		return Range{Lo: Bound{Value: v, Present: true}}, true
	case GE:
		return Range{Lo: Bound{Value: v, Inclusive: true, Present: true}}, true
	default:
		return Range{}, false // NE is not sargable
	}
}

// ExtractRange scans the top-level conjuncts of e and intersects every
// sargable restriction on column col into a single Range. It returns the
// range and the number of conjuncts that contributed (0 means the index
// on col gets no restriction from e).
func ExtractRange(e Expr, col int, binds Bindings) (Range, int) {
	r := FullRange()
	n := 0
	for _, cj := range Conjuncts(e) {
		c, ok := cj.(*Cmp)
		if !ok {
			continue
		}
		cr, ok := RangeFromCmp(c, col, binds)
		if !ok {
			continue
		}
		r = r.Intersect(cr)
		n++
	}
	return r, n
}

// Validate walks the tree and reports structural errors (nil children,
// unknown node types) without needing a row.
func Validate(e Expr) error {
	switch t := e.(type) {
	case nil:
		return nil
	case *ColRef, *Const, *Param:
		return nil
	case *Cmp:
		if t.L == nil || t.R == nil {
			return fmt.Errorf("expr: comparison with nil operand")
		}
		if err := Validate(t.L); err != nil {
			return err
		}
		return Validate(t.R)
	case *And:
		for _, k := range t.Kids {
			if k == nil {
				return fmt.Errorf("expr: AND with nil child")
			}
			if err := Validate(k); err != nil {
				return err
			}
		}
		return nil
	case *Or:
		for _, k := range t.Kids {
			if k == nil {
				return fmt.Errorf("expr: OR with nil child")
			}
			if err := Validate(k); err != nil {
				return err
			}
		}
		return nil
	case *Not:
		if t.Kid == nil {
			return fmt.Errorf("expr: NOT with nil child")
		}
		return Validate(t.Kid)
	default:
		return fmt.Errorf("expr: unknown node type %T", e)
	}
}
