// Package feedback closes the loop the telemetry opened: every
// completed dynamic retrieval reports its estimated-vs-actual
// cardinality and I/O back into a registry of per-(table, index)
// exponential-moving-average correction factors, and the estimator
// multiplies its next projection for the same index by the learned
// factor. Repeated query shapes therefore start the competition with
// priors the optimizer has already paid to learn.
//
// The registry lives entirely outside the simulated-I/O counters: it
// reads nothing from disk and charges nothing to any tracker, so
// enabling it never moves a counter on the paper's experiment paths.
// It is nil by default everywhere — a nil *Registry is a valid no-op
// receiver for every method.
package feedback

import (
	"sort"
	"sync"
)

// DefaultAlpha is the EMA smoothing weight applied to each new
// observation when New is given a non-positive alpha.
const DefaultAlpha = 0.25

// Correction factors are clamped to [1/maxFactor, maxFactor] so one
// pathological query cannot poison an index's prior beyond recovery.
const maxFactor = 16.0

// Key identifies one correction slot: an index of a table. Table-level
// observations (Tscan) use an empty Index.
type Key struct {
	Table string
	Index string
}

// entry holds the EMA state of one key. Factors are multiplicative
// corrections: estimate × factor ≈ actual.
type entry struct {
	card        float64 // actual/estimated cardinality EMA
	cardSamples int64
	io          float64 // actual/predicted I/O EMA
	ioSamples   int64
}

// Registry accumulates correction factors. Safe for concurrent use; a
// nil Registry ignores observations and returns neutral corrections.
type Registry struct {
	alpha float64

	mu sync.RWMutex
	m  map[Key]*entry
}

// New creates an empty registry with the given EMA weight (alpha <= 0
// or >= 1 selects DefaultAlpha).
func New(alpha float64) *Registry {
	if alpha <= 0 || alpha >= 1 {
		alpha = DefaultAlpha
	}
	return &Registry{alpha: alpha, m: make(map[Key]*entry)}
}

func clampRatio(r float64) float64 {
	if r < 1/maxFactor {
		return 1 / maxFactor
	}
	if r > maxFactor {
		return maxFactor
	}
	return r
}

// fold moves an EMA toward a new clamped ratio. First sample adopts
// the ratio outright so a single observation already corrects.
func (r *Registry) fold(ema float64, samples int64, ratio float64) float64 {
	ratio = clampRatio(ratio)
	if samples == 0 {
		return ratio
	}
	return clampRatio(ema + r.alpha*(ratio-ema))
}

// ObserveCardinality folds one estimated-vs-actual RID-count sample
// for (table, index) into the registry. Non-positive inputs are
// ignored: a zero estimate carries no ratio, and a zero actual is the
// empty-range case the estimator already handles exactly.
func (r *Registry) ObserveCardinality(table, index string, estimated, actual float64) {
	if r == nil || estimated <= 0 || actual <= 0 {
		return
	}
	k := Key{Table: table, Index: index}
	r.mu.Lock()
	e := r.m[k]
	if e == nil {
		e = &entry{card: 1, io: 1}
		r.m[k] = e
	}
	e.card = r.fold(e.card, e.cardSamples, actual/estimated)
	e.cardSamples++
	r.mu.Unlock()
}

// ObserveIO folds one predicted-vs-actual attributed-I/O sample for
// (table, index) into the registry.
func (r *Registry) ObserveIO(table, index string, predicted, actual float64) {
	if r == nil || predicted <= 0 || actual <= 0 {
		return
	}
	k := Key{Table: table, Index: index}
	r.mu.Lock()
	e := r.m[k]
	if e == nil {
		e = &entry{card: 1, io: 1}
		r.m[k] = e
	}
	e.io = r.fold(e.io, e.ioSamples, actual/predicted)
	e.ioSamples++
	r.mu.Unlock()
}

// CardCorrection returns the multiplicative cardinality correction for
// (table, index): 1 when the registry is nil or the key unseen.
func (r *Registry) CardCorrection(table, index string) float64 {
	if r == nil {
		return 1
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if e := r.m[Key{Table: table, Index: index}]; e != nil && e.cardSamples > 0 {
		return e.card
	}
	return 1
}

// IOCorrection returns the multiplicative I/O correction for
// (table, index): 1 when the registry is nil or the key unseen.
func (r *Registry) IOCorrection(table, index string) float64 {
	if r == nil {
		return 1
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if e := r.m[Key{Table: table, Index: index}]; e != nil && e.ioSamples > 0 {
		return e.io
	}
	return 1
}

// CorrectionFor curries CardCorrection over one table, in the shape
// estimate.Options wants. A nil registry returns nil (feature off).
func (r *Registry) CorrectionFor(table string) func(index string) float64 {
	if r == nil {
		return nil
	}
	return func(index string) float64 { return r.CardCorrection(table, index) }
}

// Len returns the number of keys with at least one observation.
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.m)
}

// Correction is one row of a Snapshot.
type Correction struct {
	Table       string  `json:"table"`
	Index       string  `json:"index,omitempty"`
	Card        float64 `json:"card_factor"`
	CardSamples int64   `json:"card_samples"`
	IO          float64 `json:"io_factor"`
	IOSamples   int64   `json:"io_samples"`
}

// Snapshot copies the registry, sorted by (table, index) so output is
// deterministic. A nil registry snapshots empty.
func (r *Registry) Snapshot() []Correction {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	out := make([]Correction, 0, len(r.m))
	for k, e := range r.m {
		out = append(out, Correction{
			Table: k.Table, Index: k.Index,
			Card: e.card, CardSamples: e.cardSamples,
			IO: e.io, IOSamples: e.ioSamples,
		})
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Table != out[j].Table {
			return out[i].Table < out[j].Table
		}
		return out[i].Index < out[j].Index
	})
	return out
}
