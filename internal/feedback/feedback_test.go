package feedback

import (
	"math"
	"sync"
	"testing"
)

func TestNilRegistryIsNeutral(t *testing.T) {
	var r *Registry
	r.ObserveCardinality("T", "IX", 10, 100) // must not panic
	r.ObserveIO("T", "IX", 10, 100)
	if got := r.CardCorrection("T", "IX"); got != 1 {
		t.Fatalf("nil CardCorrection = %v", got)
	}
	if got := r.IOCorrection("T", "IX"); got != 1 {
		t.Fatalf("nil IOCorrection = %v", got)
	}
	if r.CorrectionFor("T") != nil {
		t.Fatal("nil registry must curry to nil")
	}
	if r.Len() != 0 || r.Snapshot() != nil {
		t.Fatal("nil registry must be empty")
	}
}

func TestFirstSampleAdoptsRatio(t *testing.T) {
	r := New(0)
	r.ObserveCardinality("T", "IX", 100, 400)
	if got := r.CardCorrection("T", "IX"); got != 4 {
		t.Fatalf("first sample correction = %v, want 4", got)
	}
	// Unseen keys stay neutral.
	if got := r.CardCorrection("T", "OTHER"); got != 1 {
		t.Fatalf("unseen key = %v", got)
	}
	if got := r.CardCorrection("U", "IX"); got != 1 {
		t.Fatalf("unseen table = %v", got)
	}
}

func TestEMAConvergesTowardObservedRatio(t *testing.T) {
	r := New(0.5)
	for i := 0; i < 20; i++ {
		r.ObserveCardinality("T", "IX", 100, 200)
	}
	if got := r.CardCorrection("T", "IX"); math.Abs(got-2) > 1e-9 {
		t.Fatalf("converged correction = %v, want 2", got)
	}
	// A drifted workload pulls the factor over.
	for i := 0; i < 30; i++ {
		r.ObserveCardinality("T", "IX", 100, 50)
	}
	if got := r.CardCorrection("T", "IX"); math.Abs(got-0.5) > 1e-3 {
		t.Fatalf("drifted correction = %v, want ~0.5", got)
	}
}

func TestClamping(t *testing.T) {
	r := New(0)
	r.ObserveCardinality("T", "IX", 1, 1e9)
	if got := r.CardCorrection("T", "IX"); got != 16 {
		t.Fatalf("over-clamp = %v, want 16", got)
	}
	r.ObserveIO("T", "IX", 1e9, 1)
	if got := r.IOCorrection("T", "IX"); got != 1.0/16 {
		t.Fatalf("under-clamp = %v, want 1/16", got)
	}
}

func TestBadSamplesIgnored(t *testing.T) {
	r := New(0)
	r.ObserveCardinality("T", "IX", 0, 100)
	r.ObserveCardinality("T", "IX", 100, 0)
	r.ObserveIO("T", "IX", -1, 5)
	if r.Len() != 0 {
		t.Fatalf("bad samples recorded, Len = %d", r.Len())
	}
}

func TestCardAndIOAreIndependent(t *testing.T) {
	r := New(0)
	r.ObserveCardinality("T", "IX", 100, 200)
	if got := r.IOCorrection("T", "IX"); got != 1 {
		t.Fatalf("IO correction moved by card sample: %v", got)
	}
	r.ObserveIO("T", "IX", 100, 300)
	if got := r.CardCorrection("T", "IX"); got != 2 {
		t.Fatalf("card correction moved by IO sample: %v", got)
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	r := New(0)
	r.ObserveCardinality("B", "Z", 1, 2)
	r.ObserveCardinality("A", "Y", 1, 2)
	r.ObserveCardinality("A", "X", 1, 2)
	s := r.Snapshot()
	if len(s) != 3 {
		t.Fatalf("snapshot len = %d", len(s))
	}
	want := []Key{{"A", "X"}, {"A", "Y"}, {"B", "Z"}}
	for i, w := range want {
		if s[i].Table != w.Table || s[i].Index != w.Index {
			t.Fatalf("snapshot[%d] = %s.%s, want %s.%s", i, s[i].Table, s[i].Index, w.Table, w.Index)
		}
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := New(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.ObserveCardinality("T", "IX", 100, 200)
				r.ObserveIO("T", "IX", 100, 50)
				_ = r.CardCorrection("T", "IX")
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.CardCorrection("T", "IX"); math.Abs(got-2) > 1e-9 {
		t.Fatalf("card correction = %v, want 2", got)
	}
	if got := r.IOCorrection("T", "IX"); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("io correction = %v, want 0.5", got)
	}
}
