package planner

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"rdbdyn/internal/catalog"
	"rdbdyn/internal/core"
	"rdbdyn/internal/expr"
	"rdbdyn/internal/storage"
)

func buildTable(t testing.TB, n int) (*catalog.Table, *storage.BufferPool) {
	t.Helper()
	pool := storage.NewBufferPool(storage.NewDisk(4096), 0)
	cat := catalog.New(pool)
	tab, err := cat.CreateTable("T", []catalog.Column{
		{Name: "ID", Type: expr.TypeInt},
		{Name: "AGE", Type: expr.TypeInt},
		{Name: "PAD", Type: expr.TypeString},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tab.CreateIndex("ID_IX", "ID"); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.CreateIndex("AGE_IX", "AGE"); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < n; i++ {
		row := expr.Row{
			expr.Int(int64(i)),
			expr.Int(rng.Int63n(100)),
			expr.Str(strings.Repeat("x", 60)),
		}
		if _, err := tab.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	return tab, pool
}

func drainRows(t testing.TB, rows core.Rows) []expr.Row {
	t.Helper()
	var out []expr.Row
	for {
		row, ok, err := rows.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		out = append(out, row)
	}
	rows.Close()
	return out
}

func TestPrepareDefaultsPickTscanForRangeOnParam(t *testing.T) {
	tab, _ := buildTable(t, 20000)
	id, _ := tab.ColumnIndex("ID")
	q := &core.Query{
		Table:       tab,
		Restriction: expr.NewCmp(expr.GE, expr.Col(id, "ID"), expr.Var("A1")),
	}
	p, err := Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	// 1/3 of 20000 rows via unclustered fetches dwarfs a Tscan.
	if p.Strategy.Kind != core.StrategyTscan {
		t.Fatalf("plan = %s, want Tscan", p)
	}
}

func TestPrepareDefaultsPickIndexForEquality(t *testing.T) {
	tab, _ := buildTable(t, 20000)
	id, _ := tab.ColumnIndex("ID")
	q := &core.Query{
		Table:       tab,
		Restriction: expr.NewCmp(expr.EQ, expr.Col(id, "ID"), expr.Var("A1")),
		Projection:  []int{id},
	}
	p, err := Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	if p.Strategy.Index == nil || p.Strategy.Index.Name != "ID_IX" {
		t.Fatalf("plan = %s, want ID_IX", p)
	}
	// Covering projection: Sscan.
	if p.Strategy.Kind != core.StrategySscan {
		t.Fatalf("plan kind = %s, want Sscan", p.Strategy.Kind)
	}
}

func TestPrepareSniffingFreezesFromFirstBinding(t *testing.T) {
	tab, _ := buildTable(t, 20000)
	id, _ := tab.ColumnIndex("ID")
	q := &core.Query{
		Table:       tab,
		Restriction: expr.NewCmp(expr.GE, expr.Col(id, "ID"), expr.Var("A1")),
	}
	// Sniffed with a highly selective binding: picks the index.
	p, err := PrepareSniffing(q, expr.Bindings{"A1": expr.Int(19990)})
	if err != nil {
		t.Fatal(err)
	}
	if p.Strategy.Kind != core.StrategyFscan {
		t.Fatalf("sniffed plan = %s, want Fscan", p)
	}
	// Sniffed with a non-selective binding: picks Tscan.
	p2, err := PrepareSniffing(q, expr.Bindings{"A1": expr.Int(0)})
	if err != nil {
		t.Fatal(err)
	}
	if p2.Strategy.Kind != core.StrategyTscan {
		t.Fatalf("sniffed plan = %s, want Tscan", p2)
	}
}

func TestFrozenPlanExecutesCorrectlyButExpensively(t *testing.T) {
	// The paper's instability story needs an unclustered index (AGE:
	// key order is unrelated to physical order) and a bounded cache, so
	// random fetches genuinely cost I/O.
	tab2, pool2 := buildBoundedTable(t, 20000, 128)
	age, _ := tab2.ColumnIndex("AGE")
	q := &core.Query{
		Table:       tab2,
		Restriction: expr.NewCmp(expr.GE, expr.Col(age, "AGE"), expr.Var("A1")),
	}
	// Sniffed with a selective binding: the planner freezes Fscan(AGE).
	p, err := PrepareSniffing(q, expr.Bindings{"A1": expr.Int(99)})
	if err != nil {
		t.Fatal(err)
	}
	if p.Strategy.Kind != core.StrategyFscan {
		t.Fatalf("sniffed plan = %s, want Fscan(AGE_IX)", p)
	}
	// Run the frozen plan with the adversarial binding A1=0.
	q.Binds = expr.Bindings{"A1": expr.Int(0)}
	pool2.EvictAll()
	pool2.ResetStats()
	got := drainRows(t, p.Execute(q))
	if len(got) != 20000 {
		t.Fatalf("frozen plan returned %d rows, want 20000", len(got))
	}
	frozenCost := pool2.Stats().IOCost()
	// Must be dramatically worse than a Tscan: random fetch per row.
	if frozenCost < 3*int64(tab2.Pages()) {
		t.Fatalf("frozen Fscan on adversarial binding cost %d, expected >> Tscan %d",
			frozenCost, tab2.Pages())
	}
}

// buildBoundedTable is buildTable with a bounded buffer pool, so random
// fetches have real cost.
func buildBoundedTable(t testing.TB, n, frames int) (*catalog.Table, *storage.BufferPool) {
	t.Helper()
	pool := storage.NewBufferPool(storage.NewDisk(4096), frames)
	cat := catalog.New(pool)
	tab, err := cat.CreateTable("T", []catalog.Column{
		{Name: "ID", Type: expr.TypeInt},
		{Name: "AGE", Type: expr.TypeInt},
		{Name: "PAD", Type: expr.TypeString},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tab.CreateIndex("AGE_IX", "AGE"); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < n; i++ {
		row := expr.Row{
			expr.Int(int64(i)),
			expr.Int(rng.Int63n(100)),
			expr.Str(strings.Repeat("x", 60)),
		}
		if _, err := tab.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	return tab, pool
}

func TestRunFixedSscanAndSorted(t *testing.T) {
	tab, _ := buildTable(t, 5000)
	id, _ := tab.ColumnIndex("ID")
	age, _ := tab.ColumnIndex("AGE")
	q := &core.Query{
		Table:       tab,
		Restriction: expr.NewCmp(expr.LT, expr.Col(id, "ID"), expr.Lit(expr.Int(100))),
		Projection:  []int{id},
	}
	ixID := tab.Indexes[0]
	got := drainRows(t, core.RunFixed(q, core.FixedStrategy{Kind: core.StrategySscan, Index: ixID}, core.DefaultConfig()))
	if len(got) != 100 {
		t.Fatalf("Sscan returned %d rows", len(got))
	}
	// ORDER BY AGE with an ID index: RunFixed must sort.
	q2 := &core.Query{
		Table:       tab,
		Restriction: expr.NewCmp(expr.LT, expr.Col(id, "ID"), expr.Lit(expr.Int(500))),
		OrderBy:     []int{age},
	}
	rows := drainRows(t, core.RunFixed(q2, core.FixedStrategy{Kind: core.StrategyFscan, Index: ixID}, core.DefaultConfig()))
	if len(rows) != 500 {
		t.Fatalf("sorted Fscan returned %d rows", len(rows))
	}
	if !sort.SliceIsSorted(rows, func(i, j int) bool { return rows[i][age].I < rows[j][age].I }) {
		t.Fatal("RunFixed did not sort")
	}
}

func TestRunFixedEmptyRangeAndErrors(t *testing.T) {
	tab, _ := buildTable(t, 100)
	id, _ := tab.ColumnIndex("ID")
	q := &core.Query{
		Table:       tab,
		Restriction: expr.NewCmp(expr.EQ, expr.Col(id, "ID"), expr.Lit(expr.Int(-5))),
	}
	ixID := tab.Indexes[0]
	got := drainRows(t, core.RunFixed(q, core.FixedStrategy{Kind: core.StrategyFscan, Index: ixID}, core.DefaultConfig()))
	if len(got) != 0 {
		t.Fatalf("empty range returned %d rows", len(got))
	}
	if _, _, err := core.RunFixed(q, core.FixedStrategy{Kind: core.StrategySscan}, core.DefaultConfig()).Next(); err == nil {
		t.Fatal("Sscan without index accepted")
	}
	if _, _, err := core.RunFixed(&core.Query{}, core.FixedStrategy{}, core.DefaultConfig()).Next(); err == nil {
		t.Fatal("nil table accepted")
	}
}

func TestPrepareValidation(t *testing.T) {
	if _, err := Prepare(&core.Query{}); err == nil {
		t.Fatal("nil table accepted")
	}
	tab, _ := buildTable(t, 10)
	bad := &expr.Cmp{Op: expr.EQ, L: expr.Col(0, "ID"), R: nil}
	if _, err := Prepare(&core.Query{Table: tab, Restriction: bad}); err == nil {
		t.Fatal("invalid restriction accepted")
	}
}
