// Package planner implements the traditional static optimizer baseline:
// mean-point cost estimation in the style of System R [SACL79], a single
// frozen plan, and no run-time strategy changes.
//
// Two preparation modes reproduce the two classic failure stories the
// paper's dynamic optimizer resolves:
//
//   - Prepare uses compile-time "magic number" default selectivities
//     (1/10 for equality, 1/3 for ranges) because host-variable values
//     are unknown at compile time;
//   - PrepareSniffing estimates with the first execution's bindings and
//     freezes the resulting plan, which is catastrophic when later runs
//     bind very different values (the paper's AGE >= :A1 example).
//
// Either way the frozen plan is executed via core.RunFixed for every
// subsequent run.
package planner

import (
	"fmt"
	"math"

	"rdbdyn/internal/catalog"
	"rdbdyn/internal/core"
	"rdbdyn/internal/estimate"
	"rdbdyn/internal/expr"
)

// System R default selectivities, used when a predicate's constant is
// unknown at compile time.
const (
	DefaultEqSelectivity    = 0.10
	DefaultRangeSelectivity = 1.0 / 3.0
)

// Plan is a frozen execution plan with its compile-time cost estimate.
type Plan struct {
	Strategy core.FixedStrategy
	// Cost is the mean-point I/O estimate that won plan selection.
	Cost float64
	// Selectivity is the estimated restriction selectivity used.
	Selectivity float64
}

func (p *Plan) String() string {
	return fmt.Sprintf("%s (est cost %.0f, sel %.3f)", p.Strategy, p.Cost, p.Selectivity)
}

// Execute runs the frozen plan for one set of bindings.
func (p *Plan) Execute(q *core.Query) core.Rows {
	return core.RunFixed(q, p.Strategy, core.DefaultConfig())
}

// ExecuteExec runs the frozen plan under an execution context:
// cancellation, deadline, and I/O budget unwind the retrieval exactly
// as they do a dynamic one (nil ec = free).
func (p *Plan) ExecuteExec(ec *core.ExecCtx, q *core.Query) core.Rows {
	return core.RunFixedExec(ec, q, p.Strategy, core.DefaultConfig())
}

// JoinPlan is a frozen multi-table plan: the greedy join order and
// per-stage operator choices made once before execution, System R
// style, and never revised mid-flight. The dynamic join path starts
// from the same plan but keeps re-optimizing; this is the baseline it
// competes against.
type JoinPlan struct {
	jq  *core.JoinQuery
	opt *core.Optimizer
	// Plan is the frozen order and operator sequence.
	Plan *core.JoinPlan
}

// PrepareJoin freezes a static plan for a multi-table retrieval using
// uncorrected estimates (no feedback — the traditional optimizer
// learns nothing between runs). The estimation I/O it spends descends
// live B-trees, so call it with the same care as Prepare.
func PrepareJoin(ec *core.ExecCtx, jq *core.JoinQuery) (*JoinPlan, error) {
	opt := core.NewOptimizer(core.Config{})
	plan, err := opt.PlanJoin(ec, jq)
	if err != nil {
		return nil, err
	}
	return &JoinPlan{jq: jq, opt: opt, Plan: plan}, nil
}

func (p *JoinPlan) String() string {
	return fmt.Sprintf("%s (est I/O %.0f)", p.Plan.Describe(p.jq), p.Plan.EstIO)
}

// ExecuteExec replays the frozen join plan for one set of bindings,
// with mid-flight re-optimization disabled.
func (p *JoinPlan) ExecuteExec(ec *core.ExecCtx, jq *core.JoinQuery) core.Rows {
	return p.opt.RunJoinPlan(ec, jq, p.Plan)
}

// Prepare chooses a plan with compile-time default selectivities (host
// variables unknown).
func Prepare(q *core.Query) (*Plan, error) {
	return prepare(q, nil, false)
}

// PrepareSniffing chooses a plan using the given first-run bindings for
// range estimation, then freezes it.
func PrepareSniffing(q *core.Query, binds expr.Bindings) (*Plan, error) {
	return prepare(q, binds, true)
}

func prepare(q *core.Query, binds expr.Bindings, sniff bool) (*Plan, error) {
	if q.Table == nil {
		return nil, fmt.Errorf("planner: query without table")
	}
	if err := expr.Validate(q.Restriction); err != nil {
		return nil, err
	}
	model := estimate.CostModel{
		TablePages: q.Table.Pages(),
		TableRows:  q.Table.Cardinality(),
	}
	rows := float64(q.Table.Cardinality())
	needed := queryColumns(q)

	best := &Plan{
		Strategy:    core.FixedStrategy{Kind: core.StrategyTscan},
		Cost:        model.TscanCost(),
		Selectivity: 1,
	}
	// Unlike the dynamic optimizer, the static planner classifies
	// indexes syntactically: at compile time host-variable values are
	// unknown, so any comparison shape on the leading column counts as
	// a restriction.
	for _, ix := range q.Table.Indexes {
		sel, err := indexSelectivity(q, ix, binds, sniff)
		if err != nil {
			return nil, err
		}
		covering := ix.Covers(needed)
		ordered := len(q.OrderBy) > 0 && ix.DeliversOrder(q.OrderBy)
		if sel >= 1 && !ordered {
			continue // unrestricted non-order index: useless
		}
		est := sel * rows
		var cost float64
		kind := core.StrategyFscan
		if covering {
			kind = core.StrategySscan
			cost = model.SscanCost(est, ix.Tree.AvgLeafEntries(), ix.Tree.Height())
		} else {
			cost = model.FscanCost(est, ix.Tree.AvgLeafEntries(), ix.Tree.Height())
		}
		if cost < best.Cost {
			best = &Plan{
				Strategy:    core.FixedStrategy{Kind: kind, Index: ix},
				Cost:        cost,
				Selectivity: sel,
			}
		}
	}
	return best, nil
}

// queryColumns returns every column the query touches.
func queryColumns(q *core.Query) []int {
	set := map[int]bool{}
	for _, c := range expr.Columns(q.Restriction) {
		set[c] = true
	}
	if q.Projection == nil {
		for i := range q.Table.Columns {
			set[i] = true
		}
	}
	for _, c := range append(append([]int(nil), q.Projection...), q.OrderBy...) {
		set[c] = true
	}
	out := make([]int, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	return out
}

// indexSelectivity estimates the selectivity of the restriction portion
// an index scan on ix would enforce (its leading-column conjuncts),
// with mean-point semantics.
func indexSelectivity(q *core.Query, ix *catalog.Index, binds expr.Bindings, sniff bool) (float64, error) {
	if sniff {
		lo, hi, n, empty := ix.RestrictionBounds(q.Restriction, binds)
		if n == 0 {
			return 1, nil
		}
		if empty {
			return 0, nil
		}
		rids, _, err := ix.Tree.EstimateRangeRefined(lo, hi)
		if err != nil {
			return 0, err
		}
		rows := float64(q.Table.Cardinality())
		if rows == 0 {
			return 0, nil
		}
		return math.Min(1, rids/rows), nil
	}
	// Compile-time magic numbers, one factor per sargable conjunct.
	sel := 1.0
	found := false
	for _, cj := range expr.Conjuncts(q.Restriction) {
		c, ok := cj.(*expr.Cmp)
		if !ok {
			continue
		}
		if !referencesOnly(c, ix.LeadingCol()) {
			continue
		}
		found = true
		if c.Op == expr.EQ {
			sel *= DefaultEqSelectivity
		} else {
			sel *= DefaultRangeSelectivity
		}
	}
	if !found {
		return 1, nil
	}
	return sel, nil
}

// referencesOnly reports whether cmp is a sargable-shaped comparison on
// the given column (column vs constant or parameter).
func referencesOnly(c *expr.Cmp, col int) bool {
	cols := expr.Columns(c)
	if len(cols) != 1 || cols[0] != col {
		return false
	}
	if c.Op == expr.NE {
		return false
	}
	return true
}
