package core

import (
	"fmt"

	"rdbdyn/internal/btree"
	"rdbdyn/internal/catalog"
	"rdbdyn/internal/estimate"
	"rdbdyn/internal/expr"
	"rdbdyn/internal/rid"
	"rdbdyn/internal/storage"
)

// jscan is the joint scan of fetch-needed indexes (Section 6).
//
// Indexes are scanned in the pre-arranged ascending-selectivity order.
// Each scan produces a RID list (a hybrid container) intersected against
// the filter of the previously completed list. Scans run under a
// two-stage competition: at every step the final-stage retrieval cost is
// projected from the current list and the scan is abandoned when the
// projection approaches the guaranteed best retrieval cost (initially
// Tscan, then retrieval by the best complete RID list so far). A direct
// competition leg also abandons a scan whose own cost starts to
// dominate the guaranteed best.
//
// When the estimates of two adjacent indexes are too close to trust,
// they are scanned simultaneously within the memory buffer; the first
// to complete becomes the new list and the loser's partial list is
// refiltered and continued (Section 6's limited dynamic reordering).
type jscan struct {
	q     *Query
	cfg   Config
	model estimate.CostModel
	ests  []estimate.IndexEstimate
	trc   *tracer
	ec    *ExecCtx
	m     meter

	idx int // next index position to scan

	// Current sequential scan: a streaming operator over the index's
	// key range. Freshly opened scans are *btree.Cursor; a continued
	// race loser arrives as whatever operator the leg ran on.
	cur      Operator
	curIx    *catalog.Index
	curLo    []byte // the open scan's key range, kept for partitioning
	curHi    []byte
	local    expr.Expr
	list     *rid.Container
	seen     int
	rangeEst float64
	scan0    int64 // meter total at scan start
	// partitionable marks a scan eligible for the partitioned parallel
	// path: freshly opened (not a continued race loser), forward, with
	// its range bounds on hand.
	partitionable bool

	// Racing pair, when active.
	race *raceState

	// Filter and best-so-far state.
	filter         rid.Filter
	complete       *rid.Container
	completeNames  []string
	guaranteedBest float64
	tscanCost      float64

	// Borrowing (fast-first foreground).
	borrow       *ridQueue
	borrowActive bool
	// borrowComplete is true when the scan feeding the borrow queue ran
	// to completion, so the queue carries every candidate RID.
	borrowComplete bool

	done           bool
	recommendTscan bool

	// onDone, when set, receives the winning index-order names at
	// completion (the optimizer reuses them to pre-arrange the next
	// run's initial stage).
	onDone func(names []string)

	// Batch scratch for the single-goroutine paths (steps are strictly
	// sequential within one jscan; goroutine race legs and partition
	// workers allocate their own). Sized to StepEntries on first use.
	batch []btree.Entry
	sc    *acceptScratch
}

type raceState struct {
	a, b raceLeg
}

type raceLeg struct {
	ix       *catalog.Index
	cur      *btree.Cursor
	local    expr.Expr
	rids     []storage.RID
	seen     int
	rangeEst float64
	cost0    int64
	done     bool
	dead     bool // abandoned by competition
	// tr is the leg's own tracker when the race runs on goroutines
	// (nil on the sequential interleaved path, where legs share the
	// jscan meter). It is merged into the jscan meter at the race
	// barrier, keeping per-query attribution exact.
	tr *storage.Tracker
}

func newJscan(ec *ExecCtx, q *Query, cfg Config, model estimate.CostModel, ests []estimate.IndexEstimate, borrow *ridQueue, trc *tracer) *jscan {
	j := &jscan{
		q:              q,
		cfg:            cfg,
		model:          model,
		ests:           ests,
		trc:            trc,
		ec:             ec,
		m:              newMeter(ec),
		filter:         rid.TrueFilter{},
		guaranteedBest: model.TscanCost(),
		tscanCost:      model.TscanCost(),
		borrow:         borrow,
		borrowActive:   borrow != nil,
	}
	return j
}

func (j *jscan) name() string  { return "Jscan" }
func (j *jscan) cost() float64 { return j.m.cost() }

// backgroundScan implementation.

func (j *jscan) bgComplete() *rid.Container { return j.complete }
func (j *jscan) bgNames() []string          { return j.completeNames }
func (j *jscan) bgRecommendTscan() bool     { return j.recommendTscan }

// bgKill abandons the background: open cursors are closed (releasing
// their leaf pins), containers are discarded, and the scan is marked
// done. It doubles as the stepper release hook, so it must be
// idempotent and safe mid-race.
func (j *jscan) bgKill() {
	if j.cur != nil {
		j.cur.Close()
		j.cur = nil
	}
	if j.race != nil {
		// A dead leg's cursor was already closed when competition killed
		// it; Close is idempotent, but skipping keeps the release path
		// honest about who owns which pin.
		if !j.race.a.dead {
			j.race.a.cur.Close()
		}
		if !j.race.b.dead {
			j.race.b.cur.Close()
		}
		j.race = nil
	}
	if j.complete != nil {
		j.complete.Discard()
		j.complete = nil
	}
	if j.list != nil {
		j.list.Discard()
		j.list = nil
	}
	j.closeBorrow()
	j.done = true
}

// release implements stepper cleanup; cancellation unwinds through it.
func (j *jscan) release() { j.bgKill() }

// borrowStreamComplete reports whether the borrow queue received every
// candidate RID (its feeding scan was not abandoned).
func (j *jscan) borrowStreamComplete() bool { return j.borrowComplete }

func (j *jscan) closeBorrow() {
	if j.borrowActive {
		j.borrow.closed = true
		j.borrowActive = false
	}
}

// currentGuaranteedBest returns the cost the competition compares
// against. In the [MoHa90] static-threshold baseline, it is frozen at
// the initial Tscan cost and never readjusted to fresher complete-list
// costs — exactly the limitation the paper calls out.
func (j *jscan) currentGuaranteedBest() float64 {
	if j.cfg.StaticThresholds {
		return j.tscanCost
	}
	return j.guaranteedBest
}

func (j *jscan) step() (bool, error) {
	if j.done {
		return true, nil
	}
	if j.race != nil {
		return j.done, j.stepAnyRace()
	}
	if j.cur == nil {
		if !j.startNextScan() {
			j.finish()
			return j.done, nil
		}
	}
	if j.race != nil {
		return j.done, j.stepAnyRace()
	}
	return j.done, j.stepSequential()
}

// stepAnyRace dispatches an active race to the interleaved half-step
// scheduler (paper default) or, under Parallelism > 1, to the
// goroutine race that runs both legs concurrently to resolution.
func (j *jscan) stepAnyRace() error {
	if j.cfg.effectiveWorkers() > 1 {
		return j.runRaceParallel()
	}
	return j.stepRace()
}

// finish concludes the joint scan: the last complete RID list is the
// outcome, or Tscan optimality is reported when no list survived.
func (j *jscan) finish() {
	j.done = true
	j.closeBorrow()
	if j.complete == nil {
		j.recommendTscan = true
		j.trc.emit(TraceEvent{
			Kind: EvScanComplete, Scan: j.name(), ActualIO: j.m.cost(),
			Detail: "no complete RID list, recommending Tscan",
		})
	} else {
		j.trc.emit(TraceEvent{
			Kind: EvScanComplete, Scan: j.name(), Indexes: j.completeNames, ActualIO: j.m.cost(),
			Detail: fmt.Sprintf("final RID list %d rids", j.complete.Len()),
		})
	}
	if j.onDone != nil {
		j.onDone(j.completeNames)
	}
}

// startNextScan advances to the next worthwhile index and opens its
// cursor; it returns false when no indexes remain. It may instead start
// a race when the next two estimates are too close to call.
func (j *jscan) startNextScan() bool {
	for j.idx < len(j.ests) {
		e := j.ests[j.idx]
		// Pre-check: an index whose scan alone is projected to exceed
		// the direct-competition limit is skipped outright.
		scanEst := j.model.LeafPages(e.RIDs, e.Index.Tree.AvgLeafEntries()) + float64(e.Index.Tree.Height())
		if !j.cfg.DisableCompetition && scanEst >= j.cfg.Criterion.ScanCostFrac*j.currentGuaranteedBest() {
			j.trc.emit(TraceEvent{
				Kind: EvScanAbandoned, Scan: j.name(), Indexes: []string{e.Index.Name},
				EstimatedIO: scanEst, ActualIO: j.m.cost(),
				Detail: fmt.Sprintf("skipped before scan (scan est %.0f vs best %.0f)", scanEst, j.currentGuaranteedBest()),
			})
			j.idx++
			continue
		}
		// Race the next two when their order is uncertain.
		if j.cfg.RaceFactor > 0 && j.idx+1 < len(j.ests) {
			n := j.ests[j.idx+1]
			if n.RIDs <= j.cfg.RaceFactor*e.RIDs && !e.Exact {
				if j.startRace(e, n) {
					j.idx += 2
					return true
				}
			}
		}
		if !j.openSequential(e) {
			j.idx++
			continue
		}
		j.idx++
		return true
	}
	return false
}

func (j *jscan) openSequential(e estimate.IndexEstimate) bool {
	cur, err := e.Index.Tree.SeekTracked(e.Lo, e.Hi, j.m.tr)
	if err != nil {
		return false
	}
	j.cur = cur
	j.curIx = e.Index
	j.curLo, j.curHi = e.Lo, e.Hi
	j.partitionable = true
	j.local = localRestriction(j.q.Restriction, e.Index)
	j.list = rid.NewContainerTracked(j.q.Table.Pool(), j.cfg.RID, j.m.tr)
	j.seen = 0
	j.rangeEst = e.RIDs
	if j.rangeEst < 1 {
		j.rangeEst = 1
	}
	j.scan0 = j.m.total()
	j.trc.emit(TraceEvent{
		Kind: EvScanStarted, Scan: j.name(), Indexes: []string{e.Index.Name},
		EstimatedIO: j.model.LeafPages(e.RIDs, e.Index.Tree.AvgLeafEntries()) + float64(e.Index.Tree.Height()),
		ActualIO:    j.m.cost(),
		Detail:      fmt.Sprintf("est %.0f rids", e.RIDs),
	})
	return true
}

// ensureBuffers sizes the shared batch scratch to one step.
func (j *jscan) ensureBuffers() {
	if j.batch != nil {
		return
	}
	n := j.cfg.StepEntries
	if n < 1 {
		n = 1
	}
	j.batch = make([]btree.Entry, n)
	j.sc = newAcceptScratch(n)
}

// stepSequential advances the current single-index scan by one step of
// StepEntries entries, consumed in leaf-sized batches. Batches are
// sliced to the step budget, never across it, so the competition check
// below fires at exactly the same entry counts as per-entry iteration.
func (j *jscan) stepSequential() error {
	j.ensureBuffers()
	if handled, err := j.maybePartitionedScan(); handled || err != nil {
		return err
	}
	budget := j.cfg.StepEntries
	for budget > 0 {
		lim := budget
		if lim > len(j.batch) {
			lim = len(j.batch)
		}
		n, err := j.cur.NextBatch(j.batch[:lim])
		if err != nil {
			return err
		}
		if n == 0 {
			return j.completeScan()
		}
		j.seen += n
		budget -= n
		kept, err := j.acceptBatch(j.batch[:n], j.curIx, j.local, j.filter)
		if err != nil {
			return err
		}
		if len(kept) > 0 {
			if err := j.list.AppendBatch(kept); err != nil {
				return err
			}
			// Borrowing stays open only until the first list completes
			// or is abandoned, so these RIDs always come from the first
			// scan.
			if j.borrowActive {
				for _, r := range kept {
					j.borrow.push(r)
				}
			}
		}
	}
	// Two-stage competition check.
	if !j.cfg.DisableCompetition && j.seen >= j.cfg.StepEntries {
		frac := float64(j.seen) / j.rangeEst
		if frac > 1 {
			frac = 1
		}
		proj := float64(j.list.Len()) / frac
		projFinal := j.model.JscanFinalCost(proj)
		scanCost := float64(j.m.total() - j.scan0)
		if j.cfg.Criterion.Abandon(projFinal, scanCost, j.currentGuaranteedBest()) {
			j.trc.emit(TraceEvent{
				Kind: EvScanAbandoned, Scan: j.name(), Indexes: []string{j.curIx.Name},
				EstimatedIO: projFinal, ActualIO: j.m.cost(),
				Detail: fmt.Sprintf("proj final %.0f, scan cost %.0f, best %.0f", projFinal, scanCost, j.currentGuaranteedBest()),
			})
			j.abandonCurrent()
		}
	}
	return nil
}

// acceptBatch is acceptEntries over the jscan's own scratch, used by
// the single-goroutine paths.
func (j *jscan) acceptBatch(entries []btree.Entry, ix *catalog.Index, local expr.Expr, filter rid.Filter) ([]storage.RID, error) {
	return acceptEntries(entries, ix, local, j.q.Binds, filter, j.sc)
}

// completeScan adopts or rejects the finished RID list.
func (j *jscan) completeScan() error {
	n := j.list.Len()
	newFinal := j.model.JscanFinalCost(float64(n))
	if j.curIx != nil {
		if j.borrowActive {
			j.borrowComplete = true
			j.closeBorrow()
		}
		if newFinal < j.guaranteedBest {
			if j.complete != nil {
				j.complete.Discard()
			}
			j.complete = j.list
			j.completeNames = append(j.completeNames, j.curIx.Name)
			j.filter = j.list.Filter()
			j.guaranteedBest = newFinal
			j.trc.emit(TraceEvent{
				Kind: EvScanComplete, Scan: j.name(), Indexes: []string{j.curIx.Name},
				EstimatedIO: newFinal, ActualIO: j.m.cost(),
				Detail: fmt.Sprintf("%d rids, final cost %.0f", n, newFinal),
			})
		} else {
			j.trc.emit(TraceEvent{
				Kind: EvScanComplete, Scan: j.name(), Indexes: []string{j.curIx.Name},
				EstimatedIO: newFinal, ActualIO: j.m.cost(),
				Detail: fmt.Sprintf("complete but useless (%d rids, final %.0f >= best %.0f)", n, newFinal, j.guaranteedBest),
			})
			j.list.Discard()
		}
	}
	j.cur = nil
	j.list = nil
	if !j.startNextScan() {
		j.finish()
	}
	return nil
}

// abandonCurrent discards the in-flight scan and moves on.
func (j *jscan) abandonCurrent() {
	j.closeBorrow()
	if j.list != nil {
		j.list.Discard()
	}
	if j.cur != nil {
		j.cur.Close()
	}
	j.cur = nil
	j.list = nil
	if !j.startNextScan() {
		j.finish()
	}
}

// startRace opens simultaneous cursors on two adjacent indexes. It
// returns false when either cursor fails to open (falls back to
// sequential scanning).
func (j *jscan) startRace(a, b estimate.IndexEstimate) bool {
	legA, ok := j.openLeg(a)
	if !ok {
		return false
	}
	legB, ok := j.openLeg(b)
	if !ok {
		return false
	}
	j.race = &raceState{a: legA, b: legB}
	// Racing steals the borrow stream's stability; close it.
	j.closeBorrow()
	j.trc.emit(TraceEvent{
		Kind: EvRaceStarted, Scan: j.name(), Indexes: []string{a.Index.Name, b.Index.Name},
		Detail: fmt.Sprintf("est %.0f vs %.0f rids", a.RIDs, b.RIDs),
	})
	return true
}

func (j *jscan) openLeg(e estimate.IndexEstimate) (raceLeg, bool) {
	// On the goroutine race path each leg charges its own tracker
	// (merged at the race barrier); the interleaved path keeps the
	// shared meter, whose half-split approximates per-leg cost.
	tr := j.m.tr
	var legTr *storage.Tracker
	if j.cfg.effectiveWorkers() > 1 {
		legTr = storage.NewTracker(j.m.tr.Governor())
		tr = legTr
	}
	cur, err := e.Index.Tree.SeekTracked(e.Lo, e.Hi, tr)
	if err != nil {
		return raceLeg{}, false
	}
	re := e.RIDs
	if re < 1 {
		re = 1
	}
	return raceLeg{
		ix:       e.Index,
		cur:      cur,
		local:    localRestriction(j.q.Restriction, e.Index),
		rangeEst: re,
		cost0:    j.m.total(),
		tr:       legTr,
	}, true
}

// stepRace advances both racing legs half a step each. The race ends
// when a leg completes its range (it wins and becomes the list; the
// loser's partial list is refiltered and continued), when a leg
// overflows the in-memory budget (the race is called for the other
// leg), or when competition kills a leg.
func (j *jscan) stepRace() error {
	j.ensureBuffers()
	r := j.race
	half := j.cfg.StepEntries / 2
	if half < 1 {
		half = 1
	}
	for _, leg := range []*raceLeg{&r.a, &r.b} {
		if leg.done || leg.dead {
			continue
		}
		budget := half
		for budget > 0 {
			lim := budget
			if lim > len(j.batch) {
				lim = len(j.batch)
			}
			n, err := leg.cur.NextBatch(j.batch[:lim])
			if err != nil {
				return err
			}
			if n == 0 {
				leg.done = true
				break
			}
			leg.seen += n
			budget -= n
			kept, err := j.acceptBatch(j.batch[:n], leg.ix, leg.local, j.filter)
			if err != nil {
				return err
			}
			leg.rids = append(leg.rids, kept...)
		}
		// Competition can kill a leg mid-race.
		if !j.cfg.DisableCompetition && !leg.done && leg.seen >= j.cfg.StepEntries {
			frac := float64(leg.seen) / leg.rangeEst
			if frac > 1 {
				frac = 1
			}
			projFinal := j.model.JscanFinalCost(float64(len(leg.rids)) / frac)
			if j.cfg.Criterion.Abandon(projFinal, float64(j.m.total()-leg.cost0)/2, j.currentGuaranteedBest()) {
				leg.dead = true
				leg.cur.Close()
				j.trc.emit(TraceEvent{
					Kind: EvScanAbandoned, Scan: j.name(), Indexes: []string{leg.ix.Name},
					EstimatedIO: projFinal, ActualIO: j.m.cost(),
					Detail: fmt.Sprintf("race leg abandoned (proj final %.0f)", projFinal),
				})
			}
		}
	}
	switch {
	case r.a.done || r.b.done:
		winner, loser := &r.a, &r.b
		if r.b.done && !r.a.done {
			winner, loser = &r.b, &r.a
		}
		j.race = nil
		if err := j.adoptRaceWinner(winner); err != nil {
			// The loser will not be continued; release its pin before
			// surfacing the error (Close is idempotent for dead legs).
			loser.cur.Close()
			return err
		}
		if !loser.dead {
			j.continueLoser(loser)
		} else if j.cur == nil {
			if !j.startNextScan() {
				j.finish()
			}
		}
	case r.a.dead && r.b.dead:
		j.race = nil
		j.trc.emit(TraceEvent{
			Kind: EvRaceResolved, Scan: j.name(), Indexes: []string{r.a.ix.Name, r.b.ix.Name},
			ActualIO: j.m.cost(), Detail: "both race legs abandoned",
		})
		if !j.startNextScan() {
			j.finish()
		}
	case len(r.a.rids) >= j.cfg.RID.MemBudget || len(r.b.rids) >= j.cfg.RID.MemBudget:
		// The race must not continue beyond the memory buffer
		// (Section 6); call it for the shorter list and continue that
		// leg sequentially, dropping the other (it will not be
		// rescanned: its projection was clearly unpromising).
		keep, drop := &r.a, &r.b
		if len(r.b.rids) < len(r.a.rids) {
			keep, drop = &r.b, &r.a
		}
		drop.cur.Close()
		j.race = nil
		j.trc.emit(TraceEvent{
			Kind: EvRaceResolved, Scan: j.name(), Indexes: []string{keep.ix.Name, drop.ix.Name},
			ActualIO: j.m.cost(),
			Detail:   fmt.Sprintf("race hit memory budget, continuing %s, dropping %s", keep.ix.Name, drop.ix.Name),
		})
		j.continueLoser(keep)
	}
	return nil
}

// adoptRaceWinner turns the winning leg's RIDs into a completed list.
func (j *jscan) adoptRaceWinner(w *raceLeg) error {
	n := len(w.rids)
	newFinal := j.model.JscanFinalCost(float64(n))
	if w.dead || newFinal >= j.guaranteedBest {
		j.trc.emit(TraceEvent{
			Kind: EvRaceResolved, Scan: j.name(), Indexes: []string{w.ix.Name},
			EstimatedIO: newFinal, ActualIO: j.m.cost(),
			Detail: fmt.Sprintf("race winner %s useless (%d rids)", w.ix.Name, n),
		})
		return nil
	}
	c := rid.NewContainerTracked(j.q.Table.Pool(), j.cfg.RID, j.m.tr)
	if err := c.AppendBatch(w.rids); err != nil {
		// The half-built list (and any temp table it spilled) must not
		// leak when the copy fails.
		c.Discard()
		return err
	}
	if j.complete != nil {
		j.complete.Discard()
	}
	j.complete = c
	j.completeNames = append(j.completeNames, w.ix.Name)
	j.filter = c.Filter()
	j.guaranteedBest = newFinal
	j.trc.emit(TraceEvent{
		Kind: EvRaceResolved, Scan: j.name(), Indexes: []string{w.ix.Name},
		EstimatedIO: newFinal, ActualIO: j.m.cost(),
		Detail: fmt.Sprintf("race winner %s, %d rids, final cost %.0f", w.ix.Name, n, newFinal),
	})
	return nil
}

// continueLoser refilters the losing leg's partial list against the
// (possibly new) filter — one bulk probe per step-sized chunk — and
// resumes it as the current sequential scan. The filter is exact, so
// nothing that cannot intersect survives into the continued list.
func (j *jscan) continueLoser(l *raceLeg) {
	j.ensureBuffers()
	if l.tr != nil {
		// The leg ran on its own tracker (goroutine race); its charges
		// were merged at the barrier, so re-point the cursor at the
		// shared meter and re-base scan0 so the continued scan's
		// competition cost picks up where the leg left off.
		l.cur.SetTracker(j.m.tr)
		l.cost0 = j.m.total() - l.tr.IOCost()
	}
	j.cur = l.cur
	j.curIx = l.ix
	j.partitionable = false
	j.local = l.local
	j.list = rid.NewContainerTracked(j.q.Table.Pool(), j.cfg.RID, j.m.tr)
	rest := l.rids
	for len(rest) > 0 {
		n := len(j.sc.keep)
		if n > len(rest) {
			n = len(rest)
		}
		keep := j.sc.keep[:n]
		rid.ApplyFilter(j.filter, rest[:n], keep)
		out := j.sc.obuf[:0]
		for i, r := range rest[:n] {
			if keep[i] {
				out = append(out, r)
			}
		}
		if err := j.list.AppendBatch(out); err != nil {
			break
		}
		rest = rest[n:]
	}
	j.seen = l.seen
	j.rangeEst = l.rangeEst
	j.scan0 = l.cost0
	j.trc.emit(TraceEvent{
		Kind: EvScanStarted, Scan: j.name(), Indexes: []string{l.ix.Name}, ActualIO: j.m.cost(),
		Detail: fmt.Sprintf("continuing %s with %d prefiltered rids", l.ix.Name, j.list.Len()),
	})
}
