package core

import "fmt"

// Adaptive parallelism policy: worker width as a per-scan optimizer
// decision.
//
// PR 5 made partitioned scans possible but left the width a global
// knob (Config.Parallelism): every eligible scan fans out to the full
// budget, however small the scan or however busy the engine. This file
// applies the paper's run-time-decision discipline to that choice. At
// the moment a scan is about to partition, the policy knows three
// things the compile-time knob cannot: the scan's appraised I/O
// (feedback-corrected, per Section 5), the fixed per-worker
// startup/merge overhead, and the engine's live load. From those it
// picks the width minimizing the expected critical path:
//
//	cost(k) = estIO/k + startup·(k-1)
//
// — the first term is the partitioned scan's longest leg under an even
// split, the second the coordinator's cost to launch and barrier-merge
// k-1 extra workers. The minimizer is k* ≈ sqrt(estIO/startup), so
// small scans (estIO <= 2·startup) never leave width 1 and huge scans
// grow as the square root of their size up to the ceiling. Live load
// shrinks the ceiling proportionally: a saturated engine keeps every
// query sequential rather than multiplying goroutines under contention.
//
// The policy only runs under Config.AdaptiveParallelism; otherwise
// every scan keeps the static effectiveWorkers() width and behaves
// bit-for-bit as before.

// DefaultParallelStartupCost is the per-worker startup/merge overhead,
// in simulated page accesses, charged against a candidate width when
// Config.ParallelStartupCost is 0. Two pages per worker matches the
// observed fixed cost of a partitioned leg: one charged leaf-seek to
// open the partition plus roughly one access of barrier/merge slack.
// Exported alongside PlanParallelWidth so benches replay the policy
// with the same constant the executor uses.
const DefaultParallelStartupCost = 2.0

// PlanParallelWidth picks the worker width in [1, max] minimizing the
// expected critical-path cost estIO/k + startup·(k-1), after shrinking
// the ceiling by the live load fraction (0 = idle, 1 = saturated).
// Ties resolve to the smaller width, so a zero or unknown estimate
// stays sequential. Exported so benches and tools can replay the
// policy's arithmetic without running a retrieval.
func PlanParallelWidth(estIO float64, max int, load, startup float64) int {
	if max > maxParallelism {
		max = maxParallelism
	}
	// A saturated engine cedes its extra workers: the ceiling drops
	// proportionally to the load, to 1 at full saturation.
	if load > 0 {
		if load > 1 {
			load = 1
		}
		max = int(float64(max) * (1 - load))
	}
	if max < 1 {
		max = 1
	}
	if startup < 0 {
		startup = 0
	}
	best, bestCost := 1, estIO
	for k := 2; k <= max; k++ {
		c := estIO/float64(k) + startup*float64(k-1)
		if c < bestCost {
			best, bestCost = k, c
		}
	}
	return best
}

// tscanWidth resolves a sequential-retrieval (Tscan) width. A
// Limit-capped retrieval's Tscan never partitions — rows must stop at
// the cap — so the policy is consulted only for the partitionable
// shape; otherwise the static knob passes through untouched.
func tscanWidth(cfg Config, ec *ExecCtx, trc *tracer, q *Query, estIO float64) int {
	if q.Limit != 0 {
		return cfg.effectiveWorkers()
	}
	return decideWidth(cfg, ec, trc, "Tscan", estIO)
}

// decideWidth resolves a scan's worker width. Without adaptive mode it
// is exactly the static knob (effectiveWorkers); with it, the policy
// picks a width from the scan's appraised I/O and the engine's live
// load, and emits one EvParallelWidthChosen per decision so EXPLAIN
// ANALYZE shows the width and why. The event fires only when the
// ceiling allows fan-out (>= 2): a width-1 budget has no decision to
// record.
func decideWidth(cfg Config, ec *ExecCtx, trc *tracer, scan string, estIO float64) int {
	max := cfg.effectiveWorkers()
	if !cfg.AdaptiveParallelism || max < 2 {
		return max
	}
	startup := cfg.ParallelStartupCost
	if startup == 0 {
		startup = DefaultParallelStartupCost
	} else if startup < 0 {
		startup = 0
	}
	load := ec.Load()
	w := PlanParallelWidth(estIO, max, load, startup)
	trc.emit(TraceEvent{
		Kind:        EvParallelWidthChosen,
		Scan:        scan,
		Width:       w,
		EstimatedIO: estIO,
		Detail:      fmt.Sprintf("ceiling %d, load %.2f, startup %.1f/worker", max, load, startup),
	})
	return w
}
