package core

import (
	"fmt"

	"rdbdyn/internal/catalog"
	"rdbdyn/internal/expr"
)

// JoinPred is one equi-join predicate Tables[LT].LC = Tables[RT].RC
// between two FROM tables, in table-local column positions.
type JoinPred struct {
	LT, LC int
	RT, RC int
}

// JoinQuery is a multi-table retrieval request. Rows flow through the
// join as flat rows: the concatenation of every FROM table's columns in
// declaration order, so Projection, OrderBy, and Residual address flat
// positions (table offset + table-local column).
type JoinQuery struct {
	Tables []*catalog.Table
	// Names are the display names of the FROM tables — the alias when
	// one was declared, else the table name. Self-joins bind the same
	// *catalog.Table at two positions and tell them apart here. Empty
	// or missing entries fall back to the catalog name; a nil slice is
	// valid (no aliases anywhere).
	Names []string
	// Local holds each table's single-table restriction (conjuncts of
	// WHERE referencing only that table, in table-local positions); nil
	// entries mean unrestricted. len(Local) == len(Tables).
	Local []expr.Expr
	// Preds are the equi-join predicates connecting the tables.
	Preds []JoinPred
	// Residual is the remainder of WHERE — conjuncts spanning tables
	// without being equi-joins — over flat positions; nil when none. It
	// is evaluated once every table is bound.
	Residual expr.Expr
	Binds    expr.Bindings
	// Projection lists flat positions to deliver; nil = all.
	Projection []int
	OrderBy    []int
	OrderDesc  bool
	Limit      int // deliver at most this many rows; 0 = all
	Goal       Goal
	Control    ControlNode
}

// nameOf returns table i's display name: its alias when declared, else
// the catalog name.
func (jq *JoinQuery) nameOf(i int) string {
	if i < len(jq.Names) && jq.Names[i] != "" {
		return jq.Names[i]
	}
	return jq.Tables[i].Name
}

// Offsets returns each table's starting position in the flat row.
func (jq *JoinQuery) Offsets() []int {
	out := make([]int, len(jq.Tables))
	off := 0
	for i, t := range jq.Tables {
		out[i] = off
		off += len(t.Columns)
	}
	return out
}

// Width is the flat row width: the total column count of all tables.
func (jq *JoinQuery) Width() int {
	w := 0
	for _, t := range jq.Tables {
		w += len(t.Columns)
	}
	return w
}

// validate checks structural consistency before any I/O is spent.
func (jq *JoinQuery) validate() error {
	if len(jq.Tables) < 2 {
		return fmt.Errorf("core: join query needs at least two tables, got %d", len(jq.Tables))
	}
	if len(jq.Local) != len(jq.Tables) {
		return fmt.Errorf("core: join query has %d local restrictions for %d tables", len(jq.Local), len(jq.Tables))
	}
	if len(jq.Names) != 0 && len(jq.Names) != len(jq.Tables) {
		return fmt.Errorf("core: join query has %d names for %d tables", len(jq.Names), len(jq.Tables))
	}
	for i, t := range jq.Tables {
		if t == nil {
			return fmt.Errorf("core: join query table %d is nil", i)
		}
		if err := expr.Validate(jq.Local[i]); err != nil {
			return err
		}
	}
	if err := expr.Validate(jq.Residual); err != nil {
		return err
	}
	for _, p := range jq.Preds {
		for _, tc := range [2][2]int{{p.LT, p.LC}, {p.RT, p.RC}} {
			t, c := tc[0], tc[1]
			if t < 0 || t >= len(jq.Tables) {
				return fmt.Errorf("core: join predicate table %d out of range", t)
			}
			if c < 0 || c >= len(jq.Tables[t].Columns) {
				return fmt.Errorf("core: join predicate column %d out of range for %s", c, jq.Tables[t].Name)
			}
		}
	}
	w := jq.Width()
	for _, c := range append(append([]int(nil), jq.Projection...), jq.OrderBy...) {
		if c < 0 || c >= w {
			return fmt.Errorf("core: flat column position %d out of range", c)
		}
	}
	return nil
}

// project narrows a flat row to the query's projection.
func (jq *JoinQuery) project(row expr.Row) expr.Row {
	if jq.Projection == nil {
		return row
	}
	out := make(expr.Row, len(jq.Projection))
	for i, c := range jq.Projection {
		out[i] = row[c]
	}
	return out
}

// Join operator kinds: the four inner-stage execution strategies. The
// constants size the Metrics per-operator win counters.
const (
	joinOpNL = iota
	joinOpINL
	joinOpRIDX
	joinOpHJ
	joinOpCount
)

// Join operator names as they appear in JoinStageStats.Operator,
// Strategy strings, and metrics snapshots.
const (
	JoinOpNL   = "nl"   // nested loop over a once-scanned materialized inner
	JoinOpINL  = "inl"  // index nested loop: B-tree probe per outer row
	JoinOpRIDX = "ridx" // INL probing filtered through a restriction-index RID bitmap
	JoinOpHJ   = "hj"   // build/probe hash join: in-memory table over the inner, probed per outer row
)

func joinOpName(k int) string {
	switch k {
	case joinOpNL:
		return JoinOpNL
	case joinOpINL:
		return JoinOpINL
	case joinOpRIDX:
		return JoinOpRIDX
	case joinOpHJ:
		return JoinOpHJ
	default:
		return "?"
	}
}

func joinOpIndex(name string) (int, bool) {
	switch name {
	case JoinOpNL:
		return joinOpNL, true
	case JoinOpINL:
		return joinOpINL, true
	case JoinOpRIDX:
		return joinOpRIDX, true
	case JoinOpHJ:
		return joinOpHJ, true
	default:
		return 0, false
	}
}
