package core

import (
	"strings"
	"testing"

	"rdbdyn/internal/expr"
	"rdbdyn/internal/storage"
)

// orRestriction builds (AGE < a) OR (CITY = c).
func orRestriction(t *testing.T, f *fixture, a, c int64) expr.Expr {
	t.Helper()
	age, city := f.col(t, "AGE"), f.col(t, "CITY")
	return expr.NewOr(
		expr.NewCmp(expr.LT, expr.Col(age, "AGE"), expr.Lit(expr.Int(a))),
		expr.NewCmp(expr.EQ, expr.Col(city, "CITY"), expr.Lit(expr.Int(c))),
	)
}

func TestUnionScanCorrectness(t *testing.T) {
	f := newFixture(t, 8000, "AGE", "CITY")
	q := &Query{Table: f.tab, Restriction: orRestriction(t, f, 5, 17), Goal: GoalTotalTime}
	o := NewOptimizer(DefaultConfig())
	rows := o.Run(q)
	got := drain(t, rows)
	sameMultiset(t, got, f.naive(t, q), "union scan")
	st := rows.Stats()
	if !strings.Contains(st.Strategy, "Uscan") {
		t.Fatalf("expected a union scan, got %q (trace %v)", st.Strategy, st.Trace)
	}
}

func TestUnionScanNoDuplicatesOnOverlap(t *testing.T) {
	f := newFixture(t, 5000, "AGE", "CITY")
	age := f.col(t, "AGE")
	// Heavily overlapping disjuncts on the same column.
	q := &Query{
		Table: f.tab,
		Restriction: expr.NewOr(
			expr.NewCmp(expr.LT, expr.Col(age, "AGE"), expr.Lit(expr.Int(10))),
			expr.NewCmp(expr.LT, expr.Col(age, "AGE"), expr.Lit(expr.Int(8))),
		),
		Goal: GoalTotalTime,
	}
	o := NewOptimizer(DefaultConfig())
	rows := o.Run(q)
	got := drain(t, rows)
	sameMultiset(t, got, f.naive(t, q), "overlapping union")
}

func TestUnionScanCheaperThanTscanWhenSelective(t *testing.T) {
	f := newFixture(t, 20000, "ID")
	id := f.col(t, "ID")
	// Two thin slices at opposite ends of the clustered unique key:
	// the union touches a handful of heap pages.
	q := &Query{
		Table: f.tab,
		Restriction: expr.NewOr(
			expr.NewCmp(expr.LT, expr.Col(id, "ID"), expr.Lit(expr.Int(100))),
			expr.NewCmp(expr.GE, expr.Col(id, "ID"), expr.Lit(expr.Int(19900))),
		),
		Goal: GoalTotalTime,
	}
	o := NewOptimizer(DefaultConfig())
	f.pool.EvictAll()
	f.pool.ResetStats()
	rows := o.Run(q)
	got := drain(t, rows)
	sameMultiset(t, got, f.naive(t, q), "selective union")
	cost := f.pool.Stats().IOCost()
	if cost > int64(f.tab.Pages())/3 {
		t.Fatalf("selective union cost %d vs Tscan %d", cost, f.tab.Pages())
	}
}

func TestUnionScanAbandonsToTscanWhenWide(t *testing.T) {
	f := newFixture(t, 20000, "AGE", "CITY")
	// Both disjuncts together match nearly everything.
	q := &Query{Table: f.tab, Restriction: orRestriction(t, f, 95, 0), Goal: GoalTotalTime}
	o := NewOptimizer(DefaultConfig())
	f.pool.EvictAll()
	f.pool.ResetStats()
	rows := o.Run(q)
	got := drain(t, rows)
	sameMultiset(t, got, f.naive(t, q), "wide union")
	cost := f.pool.Stats().IOCost()
	if cost > 3*int64(f.tab.Pages()) {
		t.Fatalf("abandoned union should cost ~Tscan: %d vs %d", cost, f.tab.Pages())
	}
	st := rows.Stats()
	found := false
	for _, ev := range st.Events {
		if ev.Kind == EvScanAbandoned && ev.Scan == "Uscan" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected union abandonment in trace: %v", st.Trace)
	}
}

func TestUnionScanUncoveredDisjunctFallsBackToTscan(t *testing.T) {
	f := newFixture(t, 3000, "AGE")
	age, salary := f.col(t, "AGE"), f.col(t, "SALARY")
	// SALARY has no index: the OR is not fully coverable.
	q := &Query{
		Table: f.tab,
		Restriction: expr.NewOr(
			expr.NewCmp(expr.LT, expr.Col(age, "AGE"), expr.Lit(expr.Int(5))),
			expr.NewCmp(expr.LT, expr.Col(salary, "SALARY"), expr.Lit(expr.Float(10))),
		),
	}
	o := NewOptimizer(DefaultConfig())
	rows := o.Run(q)
	got := drain(t, rows)
	sameMultiset(t, got, f.naive(t, q), "uncovered OR")
	if st := rows.Stats(); st.Tactic != "tscan" {
		t.Fatalf("tactic = %s", st.Tactic)
	}
}

func TestUnionScanFastFirst(t *testing.T) {
	f := newFixture(t, 20000, "AGE", "CITY")
	q := &Query{
		Table:       f.tab,
		Restriction: orRestriction(t, f, 3, 29),
		Goal:        GoalFastFirst,
		Limit:       5,
	}
	o := NewOptimizer(DefaultConfig())
	f.pool.EvictAll()
	f.pool.ResetStats()
	rows := o.Run(q)
	got := drain(t, rows)
	if len(got) != 5 {
		t.Fatalf("limit 5 delivered %d", len(got))
	}
	for _, r := range got {
		keep, err := expr.EvalPred(q.Restriction, r, nil)
		if err != nil || !keep {
			t.Fatalf("delivered row %v fails restriction", r)
		}
	}
	if cost := f.pool.Stats().IOCost(); cost > int64(f.tab.Pages())/4 {
		t.Fatalf("fast-first union early termination cost %d", cost)
	}
}

func TestUnionScanFastFirstFullDrain(t *testing.T) {
	f := newFixture(t, 8000, "AGE", "CITY")
	q := &Query{Table: f.tab, Restriction: orRestriction(t, f, 4, 31), Goal: GoalFastFirst}
	o := NewOptimizer(DefaultConfig())
	rows := o.Run(q)
	got := drain(t, rows)
	sameMultiset(t, got, f.naive(t, q), "fast-first union drain")
}

func TestUnionScanEmptyDisjunct(t *testing.T) {
	f := newFixture(t, 3000, "AGE", "CITY")
	age, city := f.col(t, "AGE"), f.col(t, "CITY")
	q := &Query{
		Table: f.tab,
		Restriction: expr.NewOr(
			expr.NewCmp(expr.EQ, expr.Col(age, "AGE"), expr.Lit(expr.Int(500))), // matches nothing
			expr.NewCmp(expr.EQ, expr.Col(city, "CITY"), expr.Lit(expr.Int(7))),
		),
		Goal: GoalTotalTime,
	}
	o := NewOptimizer(DefaultConfig())
	rows := o.Run(q)
	got := drain(t, rows)
	sameMultiset(t, got, f.naive(t, q), "empty disjunct")
}

func TestUnionWithConjunctionAroundIt(t *testing.T) {
	f := newFixture(t, 8000, "AGE", "CITY")
	age, city, id := f.col(t, "AGE"), f.col(t, "CITY"), f.col(t, "ID")
	// (AGE<4 OR CITY=11) AND ID >= 4000: the OR drives the union, the
	// extra conjunct is re-evaluated at the final stage.
	// ID is unindexed here, so the conjunct-level path finds nothing
	// and the union path applies.
	q := &Query{
		Table: f.tab,
		Restriction: expr.NewAnd(
			expr.NewOr(
				expr.NewCmp(expr.LT, expr.Col(age, "AGE"), expr.Lit(expr.Int(4))),
				expr.NewCmp(expr.EQ, expr.Col(city, "CITY"), expr.Lit(expr.Int(11))),
			),
			expr.NewCmp(expr.GE, expr.Col(id, "ID"), expr.Lit(expr.Int(4000))),
		),
		Goal: GoalTotalTime,
	}
	o := NewOptimizer(DefaultConfig())
	rows := o.Run(q)
	got := drain(t, rows)
	sameMultiset(t, got, f.naive(t, q), "union under conjunction")
	if !strings.Contains(rows.Stats().Strategy, "Uscan") {
		t.Fatalf("expected Uscan, got %q", rows.Stats().Strategy)
	}
}

// TestFastFirstMultiIndexDrainWhileBackgroundRuns reproduces the
// scenario where the foreground exhausts its borrow stream while the
// background is still scanning later indexes: the background must be
// stopped cleanly without a final stage (the foreground delivered
// everything).
func TestFastFirstMultiIndexDrainWhileBackgroundRuns(t *testing.T) {
	f := newFixture(t, 20000, "CITY", "AGE", "ID")
	age, city, id := f.col(t, "AGE"), f.col(t, "CITY"), f.col(t, "ID")
	// CITY=31 is tiny (first, completes fast and closes the borrow
	// stream); AGE and ID ranges are broad, keeping the background busy.
	q := &Query{
		Table: f.tab,
		Restriction: expr.NewAnd(
			expr.NewCmp(expr.EQ, expr.Col(city, "CITY"), expr.Lit(expr.Int(31))),
			expr.NewCmp(expr.LT, expr.Col(age, "AGE"), expr.Lit(expr.Int(90))),
			expr.NewCmp(expr.LT, expr.Col(id, "ID"), expr.Lit(expr.Int(18000))),
		),
		Goal: GoalFastFirst,
	}
	cfg := DefaultConfig()
	cfg.DisableCompetition = true // keep the background grinding through all indexes
	o := NewOptimizer(cfg)
	rows := o.Run(q)
	got := drain(t, rows)
	sameMultiset(t, got, f.naive(t, q), "multi-index fast-first")
}

func TestDedupSorted(t *testing.T) {
	mk := func(vals ...int) []storage.RID {
		out := make([]storage.RID, len(vals))
		for i, v := range vals {
			out[i] = storage.RID{Page: storage.PageID{No: storage.PageNo(v)}}
		}
		return out
	}
	got := dedupSorted(mk(1, 1, 2, 3, 3, 3, 4))
	if len(got) != 4 {
		t.Fatalf("dedup kept %d, want 4", len(got))
	}
	if len(dedupSorted(nil)) != 0 {
		t.Fatal("nil input")
	}
	if len(dedupSorted(mk(7))) != 1 {
		t.Fatal("single input")
	}
}
