// Package core implements the paper's contribution: the dynamic
// single-table retrieval optimizer of Rdb/VMS V4.0 (Sections 4–7).
//
// A retrieval is organized as a foreground process (Fgr), which delivers
// records immediately and can complete the whole retrieval by itself,
// and a background process (Bgr), which runs Jscan — the joint scan of
// fetch-needed indexes — to produce the shortest possible RID list or to
// recommend Tscan. A final stage (Fin) runs only upon Bgr completion, as
// the alternative to Fgr's record delivery. Fgr and Bgr run
// simultaneously at proportional speeds under a cooperative step
// scheduler, compete under the criterion of Section 6, and cooperate by
// exchanging data (Fgr borrows RIDs from Bgr; Fin filters out records
// Fgr already delivered).
//
// Four tactics from Section 7 are implemented:
//
//	background-only — total time, fetch-needed indexes only: Jscan + Fin
//	fast-first      — Fgr borrows RIDs from Jscan and fetches immediately
//	sorted          — order-needed Fscan in Fgr + filter-producing Jscan in Bgr
//	index-only      — best Sscan in Fgr racing Jscan in Bgr
//
// plus the statically clear cases (no index -> Tscan; a lone
// self-sufficient index -> Sscan) and the static-threshold Jscan variant
// of [MoHa90] as an experimental baseline.
package core

import (
	"runtime"
	"sync/atomic"

	"rdbdyn/internal/catalog"
	"rdbdyn/internal/competition"
	"rdbdyn/internal/expr"
	"rdbdyn/internal/feedback"
	"rdbdyn/internal/rid"
	"rdbdyn/internal/storage"
)

// Goal is the retrieval optimization goal of Section 4.
type Goal uint8

// Optimization goals. GoalDefault resolves to total-time unless the
// query plan context dictates otherwise.
const (
	GoalDefault Goal = iota
	GoalFastFirst
	GoalTotalTime
)

func (g Goal) String() string {
	switch g {
	case GoalFastFirst:
		return "FAST FIRST"
	case GoalTotalTime:
		return "TOTAL TIME"
	default:
		return "DEFAULT"
	}
}

// ControlNode is the plan node that immediately controls a retrieval
// node; Section 4 derives the optimization goal from it.
type ControlNode uint8

// Control node kinds.
const (
	ControlNone ControlNode = iota
	ControlExists
	ControlLimit
	ControlSort
	ControlAggregate
)

// InferGoal applies Section 4's rule: EXISTS or LIMIT TO control sets
// fast-first; SORT or aggregate control sets total-time; otherwise the
// user-specified or default goal applies.
func InferGoal(control ControlNode, user Goal) Goal {
	switch control {
	case ControlExists, ControlLimit:
		return GoalFastFirst
	case ControlSort, ControlAggregate:
		return GoalTotalTime
	default:
		if user == GoalDefault {
			return GoalTotalTime
		}
		return user
	}
}

// Query is a single-table retrieval request.
type Query struct {
	Table       *catalog.Table
	Restriction expr.Expr     // nil = no restriction
	Binds       expr.Bindings // host-variable values for this run
	Projection  []int         // column positions to deliver; nil = all
	OrderBy     []int         // requested order columns; nil = no order
	// OrderDesc inverts the requested order to descending (one
	// direction for the whole ORDER BY).
	OrderDesc bool
	Limit     int // deliver at most this many rows; 0 = all
	Goal      Goal
	// Control is the controlling plan node, used when Goal is
	// GoalDefault.
	Control ControlNode
}

// EffectiveGoal resolves the query's goal per Section 4.
func (q *Query) EffectiveGoal() Goal { return InferGoal(q.Control, q.Goal) }

// neededColumns returns the set of columns the query touches: the
// restriction's columns plus the projection (all columns when the
// projection is open) plus the order columns.
func (q *Query) neededColumns() []int {
	set := map[int]bool{}
	for _, c := range expr.Columns(q.Restriction) {
		set[c] = true
	}
	if q.Projection == nil {
		for i := range q.Table.Columns {
			set[i] = true
		}
	} else {
		for _, c := range q.Projection {
			set[c] = true
		}
	}
	for _, c := range q.OrderBy {
		set[c] = true
	}
	out := make([]int, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	return out
}

// Classification sorts a table's indexes into the paper's three roles
// for one query (Section 4): self-sufficient, order-needed, and
// fetch-needed. An index can be both order-needed and self-sufficient.
type Classification struct {
	SelfSufficient []*catalog.Index
	OrderNeeded    []*catalog.Index
	// FetchNeeded are indexes whose leading column carries a sargable
	// restriction but which cannot deliver the result alone.
	FetchNeeded []*catalog.Index
	// EmptyRange reports that some index's sargable conjuncts
	// contradict each other under the current bindings. Since the
	// restriction is a conjunction, the whole query matches nothing and
	// the retrieval can deliver end-of-data at once.
	EmptyRange bool
}

// Classify computes the classification under the query's bindings. Only
// indexes restricted by at least one sargable conjunct on their leading
// column are useful for Jscan; order-needed indexes are useful even
// unrestricted.
func Classify(q *Query) Classification {
	var cl Classification
	needed := q.neededColumns()
	for _, ix := range q.Table.Indexes {
		lo, hi, n, empty := ix.RestrictionBounds(q.Restriction, q.Binds)
		if empty && n > 0 {
			cl.EmptyRange = true
		}
		restricted := n > 0 && (lo != nil || hi != nil)
		covers := ix.Covers(needed)
		ordered := len(q.OrderBy) > 0 && ix.DeliversOrder(q.OrderBy)
		if covers && (restricted || ordered || q.Restriction == nil) {
			cl.SelfSufficient = append(cl.SelfSufficient, ix)
		}
		if ordered {
			cl.OrderNeeded = append(cl.OrderNeeded, ix)
		}
		if restricted && !covers {
			cl.FetchNeeded = append(cl.FetchNeeded, ix)
		}
	}
	return cl
}

// Config tunes the dynamic optimizer.
type Config struct {
	// Criterion is the Section 6 strategy-switch rule.
	Criterion competition.SwitchCriterion
	// RID sizes the hybrid RID containers.
	RID rid.Config
	// FgBufferCap bounds the foreground delivered-RID buffer; overflow
	// terminates the foreground in favor of the background (Section 7).
	// 0 means the default; a negative value means unbounded.
	FgBufferCap int
	// StepEntries is how many index entries one Jscan/Sscan step
	// processes; Tscan and Fscan steps are one page / a few fetches.
	StepEntries int
	// RaceFactor: two adjacent Jscan indexes whose estimates are
	// within this factor are scanned simultaneously to resolve their
	// true order (Section 6's limited reordering). 0 means the
	// default; a negative value disables racing.
	RaceFactor float64
	// StaticThresholds switches Jscan to the [MoHa90] baseline: the
	// abandonment thresholds are frozen from the initial estimates and
	// never readjusted to fresher guaranteed-best costs.
	StaticThresholds bool
	// DisableCompetition turns off scan abandonment entirely (for
	// ablation experiments).
	DisableCompetition bool
	// ShortRange is the initial-stage shortcut threshold.
	ShortRange int
	// PreviousOrder carries the index order the previous run of the
	// same query found optimal.
	PreviousOrder []string
	// Trace, when set, receives every retrieval's TraceEvents as they
	// are emitted. The sink must be safe for concurrent use (see
	// TraceSink) and adds no simulated I/O.
	Trace TraceSink
	// Feedback, when non-nil, closes the estimation loop: each
	// completed dynamic retrieval folds its estimated-vs-actual
	// cardinality and I/O into the registry, and the initial stage
	// multiplies inexact estimates by the learned per-index correction.
	// Nil (the default) keeps estimation purely structural — the
	// paper's behavior, and the setting every experiment runs under.
	Feedback *feedback.Registry
	// JoinReoptFactor is the mid-flight re-optimization trigger for
	// multi-table retrievals: when a join stage's actual cardinality
	// diverges from its estimate by more than this factor (either
	// direction), the executor re-plans the remaining stages. 0 means
	// the default (4); a negative value disables re-optimization, so a
	// chosen join plan runs statically to completion.
	JoinReoptFactor float64
	// DisableJoinSortAvoidance turns off sort-order-aware join
	// planning: ORDER BY joins always pay the final materialized sort,
	// and no order-preserving alternative plan competes. For ablation
	// and sorted-baseline comparisons; off (avoidance active) by
	// default.
	DisableJoinSortAvoidance bool
	// Parallelism is the intra-query worker budget for partitioned
	// scans and goroutine race legs. 0 or 1 keeps the paper-faithful
	// single-goroutine cooperative scheduler (the default — all
	// experiments run there); a negative value resolves to
	// runtime.GOMAXPROCS(0); values above 1 are honored as given (the
	// simulated cost model is deterministic regardless of the physical
	// core count). Parallel execution preserves result rows, attributed
	// I/O totals, and Metrics exactly; see DESIGN.md for the invariants.
	Parallelism int
	// AdaptiveParallelism lets the optimizer pick each scan's worker
	// width itself — from the scan's appraised I/O estimate, the
	// per-worker startup cost, and the engine's live load
	// (ExecCtx.Load) — instead of always fanning out to the full
	// Parallelism budget. Parallelism keeps its meaning as the ceiling;
	// small or contended scans stay sequential, huge cold scans fan out
	// up to the cap. Adaptive mode also unlocks the scan shapes that
	// static widths leave sequential: Limit-capped partitioned Jscans
	// with first-to-fill early cancellation, and partitioned join probe
	// stages. Off by default — the paper's experiments and the static
	// knob behave exactly as before.
	AdaptiveParallelism bool
	// ParallelStartupCost is the per-worker startup/merge overhead, in
	// simulated page accesses, the adaptive policy charges against a
	// candidate width (fan-out to k workers must save more than
	// (k-1)·cost off the critical path to win). 0 = default
	// (defaultParallelStartupCost); negative = free workers.
	ParallelStartupCost float64
}

// maxParallelism caps the worker fan-out per scan; a backstop against
// absurd knob values, far above any useful width.
const maxParallelism = 64

// effectiveWorkers resolves the Parallelism knob to a concrete worker
// count (>= 1).
func (c Config) effectiveWorkers() int {
	p := c.Parallelism
	if p < 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p < 1 {
		p = 1
	}
	if p > maxParallelism {
		p = maxParallelism
	}
	return p
}

// DefaultConfig returns the paper's settings.
func DefaultConfig() Config {
	return Config{
		Criterion:       competition.DefaultSwitchCriterion(),
		RID:             rid.DefaultConfig(),
		FgBufferCap:     1024,
		StepEntries:     128,
		RaceFactor:      2,
		ShortRange:      20,
		JoinReoptFactor: 4,
	}
}

// WithDefaults returns the config with every zero-valued field replaced
// by its DefaultConfig value, field by field, so a caller setting a
// single knob keeps the paper's defaults for everything else.
//
// Numeric fields where "off" is a sensible request use negative values
// for it (RaceFactor < 0 disables racing, FgBufferCap < 0 is
// unbounded); 0 always means "use the default". Boolean fields
// (StaticThresholds, DisableCompetition) need no sentinel: false is the
// paper's behaviour, so the zero value is already the default.
func (c Config) WithDefaults() Config {
	d := DefaultConfig()
	if c.Criterion == (competition.SwitchCriterion{}) {
		c.Criterion = d.Criterion
	}
	if c.RID.SmallCap == 0 {
		c.RID.SmallCap = d.RID.SmallCap
	}
	if c.RID.MemBudget == 0 {
		c.RID.MemBudget = d.RID.MemBudget
	}
	if c.FgBufferCap == 0 {
		c.FgBufferCap = d.FgBufferCap
	}
	if c.StepEntries <= 0 {
		c.StepEntries = d.StepEntries
	}
	if c.RaceFactor == 0 {
		c.RaceFactor = d.RaceFactor
	}
	if c.ShortRange == 0 {
		c.ShortRange = d.ShortRange
	}
	if c.JoinReoptFactor == 0 {
		c.JoinReoptFactor = d.JoinReoptFactor
	}
	return c
}

// RetrievalStats describes what a retrieval did.
type RetrievalStats struct {
	// QueryID identifies this retrieval process-wide; every TraceEvent
	// of the retrieval carries it.
	QueryID uint64
	// Tactic names the arrangement chosen at start-retrieval time.
	Tactic string
	// Strategy describes the scans actually used, e.g.
	// "Jscan(CITY_IX,AGE_IX)+Fin" or "Tscan".
	Strategy string
	// IO is the I/O attributable to this retrieval (productive stages).
	IO storage.IOStats
	// EstimateIO is the I/O spent by the initial estimation stage.
	EstimateIO int64
	// RowsDelivered counts rows handed to the caller.
	RowsDelivered int
	// FgRows counts rows delivered by the foreground process.
	FgRows int
	// FinalListLen is the length of the background's final RID list
	// (-1 when the background did not complete).
	FinalListLen int
	// Events records the competition decisions in order, typed.
	Events []TraceEvent
	// Trace holds the human-readable renderings of Events, in the same
	// order.
	Trace []string
	// WinningOrder is the index order that won, for reuse as
	// PreviousOrder on the next run.
	WinningOrder []string
	// Estimates summarizes the initial stage's per-index appraisals,
	// in the order the stage settled on. Consumers: the feedback
	// registry (estimated-vs-actual cardinality) and plan capture
	// (seeding a frozen replay's Jscan thresholds).
	Estimates []EstimateSummary
	// JoinStages describes each executed stage of a multi-table
	// retrieval in execution order (empty for single-table retrievals).
	// The Tactic of a join retrieval is "join".
	JoinStages []JoinStageStats
	// SortAvoided marks an ORDER BY join delivered in plan order: the
	// surviving stage order satisfied the requested order, so the final
	// materialized sort was skipped.
	SortAvoided bool
}

// JoinStageStats is the est-vs-actual record of one executed join
// stage (the driver scan is stage 0 with an empty Operator-specific
// fields where they do not apply).
type JoinStageStats struct {
	// Table is the display name of the table this stage brought into
	// the join: its FROM alias when one was declared, else the catalog
	// name.
	Table string
	// TableIdx is the table's position in JoinQuery.Tables. Feedback
	// observations key on the catalog name through it, so self-joined
	// aliases of one table share one learned correction.
	TableIdx int
	// Operator names the stage's execution strategy: the driver's
	// single-table tactic for stage 0, else "nl", "inl", or "ridx".
	Operator string
	// Index is the inner probe index for inl/ridx, the build-side
	// restriction index for an index-assisted hj build, or the driver's
	// scan index ("" for nl, heap-build hj, and tscan drivers).
	Index string
	// EstRows is the stage's estimated output cardinality at the time
	// it started; ActualRows is what it produced.
	EstRows    float64
	ActualRows int
	// IO is the simulated I/O attributed to this stage.
	IO int64
	// Reoptimized is true when this stage's operator or position was
	// revised mid-flight.
	Reoptimized bool
}

// EstimateSummary is the slim record of one initial-stage appraisal
// kept on RetrievalStats.
type EstimateSummary struct {
	Index string
	RIDs  float64
	Exact bool
}

// Rows is the pull-based result iterator every retrieval returns.
type Rows interface {
	// Next returns the next result row; ok=false at end of data.
	Next() (row expr.Row, ok bool, err error)
	// Close releases resources; safe to call early (the paper's
	// forceful "close retrieval").
	Close() error
	// Stats reports retrieval statistics (valid any time; final after
	// exhaustion or Close).
	Stats() RetrievalStats
}

// errRows is a Rows that fails immediately (used for setup errors that
// must surface through the iterator contract).
type errRows struct{ err error }

func (e errRows) Next() (expr.Row, bool, error) { return nil, false, e.err }
func (e errRows) Close() error                  { return nil }
func (e errRows) Stats() RetrievalStats         { return RetrievalStats{Tactic: "error"} }

// emptyRows delivers end-of-data at once — the paper's empty-range
// shortcut ("an empty range detection cancels all retrieval stages and
// delivers the 'end of data' condition at once").
type emptyRows struct{ stats RetrievalStats }

func (e *emptyRows) Next() (expr.Row, bool, error) { return nil, false, nil }
func (e *emptyRows) Close() error                  { return nil }
func (e *emptyRows) Stats() RetrievalStats         { return e.stats }

// project narrows a row to the query's projection.
func (q *Query) project(row expr.Row) expr.Row {
	if q.Projection == nil {
		return row
	}
	out := make(expr.Row, len(q.Projection))
	for i, c := range q.Projection {
		out[i] = row[c]
	}
	return out
}

// queryIDs hands out process-wide retrieval identifiers.
var queryIDs atomic.Uint64

func nextQueryID() uint64 { return queryIDs.Add(1) }
