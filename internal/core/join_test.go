package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"rdbdyn/internal/catalog"
	"rdbdyn/internal/expr"
	"rdbdyn/internal/feedback"
	"rdbdyn/internal/storage"
)

// joinFixture builds a three-table star: CUST (ID, SEG, NAME),
// ORD (ID, CUST, ITEM, QTY, PAD), ITEM (ID, KIND). ORD.CUST references
// CUST.ID, ORD.ITEM references ITEM.ID. The PAD column fattens order
// rows so the orders heap spans many pages and random fetches hurt.
type joinFixture struct {
	cat              *catalog.Catalog
	pool             *storage.BufferPool
	cust, ord, item  *catalog.Table
	custRows         []expr.Row
	ordRows          []expr.Row
	itemRows         []expr.Row
	nCust, nOrd, nIt int
}

// newJoinFixture builds the star with a bounded pool of `frames`
// frames (0 = unbounded). Same seed -> byte-identical twin databases.
func newJoinFixture(t testing.TB, nCust, nOrd, nItem, frames int, nullCusts bool) *joinFixture {
	t.Helper()
	pool := storage.NewBufferPool(storage.NewDisk(4096), frames)
	cat := catalog.New(pool)
	f := &joinFixture{cat: cat, pool: pool, nCust: nCust, nOrd: nOrd, nIt: nItem}
	var err error
	f.cust, err = cat.CreateTable("CUST", []catalog.Column{
		{Name: "ID", Type: expr.TypeInt},
		{Name: "SEG", Type: expr.TypeInt},
		{Name: "NAME", Type: expr.TypeString},
	})
	if err != nil {
		t.Fatal(err)
	}
	f.ord, err = cat.CreateTable("ORD", []catalog.Column{
		{Name: "ID", Type: expr.TypeInt},
		{Name: "CUST", Type: expr.TypeInt},
		{Name: "ITEM", Type: expr.TypeInt},
		{Name: "QTY", Type: expr.TypeInt},
		{Name: "PAD", Type: expr.TypeString},
	})
	if err != nil {
		t.Fatal(err)
	}
	f.item, err = cat.CreateTable("ITEM", []catalog.Column{
		{Name: "ID", Type: expr.TypeInt},
		{Name: "KIND", Type: expr.TypeInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, ix := range [][3]string{
		{"CUST", "CUST_ID_IX", "ID"},
		{"ORD", "ORD_CUST_IX", "CUST"},
		{"ORD", "ORD_QTY_IX", "QTY"},
		{"ITEM", "ITEM_ID_IX", "ID"},
	} {
		tab, err := cat.Table(ix[0])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tab.CreateIndex(ix[1], ix[2]); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(7))
	pad := strings.Repeat("x", 400)
	for i := 0; i < nCust; i++ {
		// SEG skew: 60% of customers are segment 0.
		seg := int64(rng.Intn(5))
		if rng.Intn(10) < 6 {
			seg = 0
		}
		row := expr.Row{expr.Int(int64(i)), expr.Int(seg), expr.Str(fmt.Sprintf("c-%04d", i))}
		if _, err := f.cust.Insert(row); err != nil {
			t.Fatal(err)
		}
		f.custRows = append(f.custRows, row)
	}
	for i := 0; i < nOrd; i++ {
		cust := expr.Int(rng.Int63n(int64(nCust)))
		if nullCusts && rng.Intn(20) == 0 {
			cust = expr.Null()
		}
		row := expr.Row{
			expr.Int(int64(i)), cust,
			expr.Int(rng.Int63n(int64(nItem))),
			expr.Int(1 + rng.Int63n(9)),
			expr.Str(pad),
		}
		if _, err := f.ord.Insert(row); err != nil {
			t.Fatal(err)
		}
		f.ordRows = append(f.ordRows, row)
	}
	for i := 0; i < nItem; i++ {
		row := expr.Row{expr.Int(int64(i)), expr.Int(rng.Int63n(4))}
		if _, err := f.item.Insert(row); err != nil {
			t.Fatal(err)
		}
		f.itemRows = append(f.itemRows, row)
	}
	return f
}

// custOrdQuery joins CUST and ORD on CUST.ID = ORD.CUST with an
// optional local restriction on CUST.
func (f *joinFixture) custOrdQuery(custLocal expr.Expr) *JoinQuery {
	return &JoinQuery{
		Tables: []*catalog.Table{f.cust, f.ord},
		Local:  []expr.Expr{custLocal, nil},
		Preds:  []JoinPred{{LT: 0, LC: 0, RT: 1, RC: 1}},
	}
}

// starQuery joins all three tables: CUST.ID = ORD.CUST and
// ORD.ITEM = ITEM.ID, with optional local restrictions.
func (f *joinFixture) starQuery(custLocal, ordLocal expr.Expr) *JoinQuery {
	return &JoinQuery{
		Tables: []*catalog.Table{f.cust, f.ord, f.item},
		Local:  []expr.Expr{custLocal, ordLocal, nil},
		Preds: []JoinPred{
			{LT: 0, LC: 0, RT: 1, RC: 1},
			{LT: 1, LC: 2, RT: 2, RC: 0},
		},
	}
}

// oracleJoin computes the expected join result with an independent
// hash-join implementation over the in-memory row copies: tables fold
// in declaration order, each step probing a hash table on the first
// applicable equi-join column pair (remaining predicates and the
// residual check afterwards).
func oracleJoin(t testing.TB, jq *JoinQuery, tabRows [][]expr.Row) []expr.Row {
	t.Helper()
	offs := jq.Offsets()
	width := jq.Width()
	// Filter each table by its local restriction.
	filtered := make([][]expr.Row, len(tabRows))
	for i, rows := range tabRows {
		for _, row := range rows {
			ok, err := expr.EvalPred(jq.Local[i], row, jq.Binds)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				filtered[i] = append(filtered[i], row)
			}
		}
	}
	acc := []expr.Row{make(expr.Row, width)}
	bound := make([]bool, len(tabRows))
	first := true
	for ti, rows := range filtered {
		// Predicates connecting table ti to the already-bound tables,
		// as (flat outer position, local inner column) pairs.
		var pairs [][2]int
		for _, p := range jq.Preds {
			if p.LT == ti && bound[p.RT] {
				pairs = append(pairs, [2]int{offs[p.RT] + p.RC, p.LC})
			} else if p.RT == ti && bound[p.LT] {
				pairs = append(pairs, [2]int{offs[p.LT] + p.LC, p.RC})
			}
		}
		var next []expr.Row
		if len(pairs) > 0 && !first {
			// Hash on the first pair's inner column.
			ht := map[string][]expr.Row{}
			for _, row := range rows {
				v := row[pairs[0][1]]
				if v.IsNull() {
					continue
				}
				ht[v.String()] = append(ht[v.String()], row)
			}
			for _, a := range acc {
				ov := a[pairs[0][0]]
				if ov.IsNull() {
					continue
				}
				for _, row := range ht[ov.String()] {
					match := true
					for _, pr := range pairs[1:] {
						x, y := a[pr[0]], row[pr[1]]
						if x.IsNull() || y.IsNull() || expr.Compare(x, y) != 0 {
							match = false
							break
						}
					}
					if match {
						fr := make(expr.Row, width)
						copy(fr, a)
						copy(fr[offs[ti]:], row)
						next = append(next, fr)
					}
				}
			}
		} else {
			// First table, or a cross step.
			for _, a := range acc {
				for _, row := range rows {
					fr := make(expr.Row, width)
					copy(fr, a)
					copy(fr[offs[ti]:], row)
					next = append(next, fr)
				}
			}
		}
		acc = next
		bound[ti] = true
		first = false
	}
	var out []expr.Row
	for _, a := range acc {
		ok, err := expr.EvalPred(jq.Residual, a, jq.Binds)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			out = append(out, jq.project(a))
		}
	}
	return out
}

// multiset canonicalizes rows for order-insensitive comparison.
func multiset(rows []expr.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = rowKey(r)
	}
	sort.Strings(out)
	return out
}

func drainJoin(t testing.TB, rows Rows) ([]expr.Row, RetrievalStats) {
	t.Helper()
	var out []expr.Row
	for {
		row, ok, err := rows.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		out = append(out, row.Clone())
	}
	st := rows.Stats()
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	return out, st
}

func assertSameRows(t *testing.T, label string, got, want []expr.Row) {
	t.Helper()
	g, w := multiset(got), multiset(want)
	if len(g) != len(w) {
		t.Fatalf("%s: got %d rows, want %d", label, len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: row %d mismatch:\n got  %s\n want %s", label, i, g[i], w[i])
		}
	}
}

// TestJoinOperatorEquivalence forces each stage operator in turn on the
// same CUST-ORD join and checks every one against the hash-join oracle.
// Duplicate keys (several orders per customer) and NULL join keys are
// both present in the fixture.
func TestJoinOperatorEquivalence(t *testing.T) {
	// Bounded pool so fetches actually miss and the I/O assertion bites.
	f := newJoinFixture(t, 100, 600, 20, 64, true)
	// Local restriction on ORD (QTY >= 8, sargable via ORD_QTY_IX) so
	// ridx has a restriction bitmap to intersect.
	ordLocal := expr.NewCmp(expr.GE, expr.Col(3, "QTY"), expr.Lit(expr.Int(8)))
	jq := f.custOrdQuery(nil)
	jq.Local[1] = ordLocal
	want := oracleJoin(t, jq, [][]expr.Row{f.custRows, f.ordRows})

	for _, op := range []struct {
		name  string
		index string
	}{
		{JoinOpNL, ""},
		{JoinOpINL, "ORD_CUST_IX"},
		{JoinOpRIDX, "ORD_CUST_IX"},
		{JoinOpHJ, ""},           // heap build
		{JoinOpHJ, "ORD_QTY_IX"}, // index-assisted build via the QTY restriction
	} {
		t.Run(op.name+"/"+op.index, func(t *testing.T) {
			o := NewOptimizer(Config{})
			plan := &JoinPlan{Stages: []JoinStagePlan{
				{Table: 0, Operator: "tscan", EstRows: float64(f.nCust)},
				{Table: 1, Operator: op.name, Index: op.index, EstRows: 1},
			}}
			q := f.custOrdQuery(nil)
			q.Local[1] = ordLocal
			got, st := drainJoin(t, o.RunJoinPlan(nil, q, plan))
			assertSameRows(t, op.name, got, want)
			if len(st.JoinStages) != 2 {
				t.Fatalf("want 2 join stages, got %d", len(st.JoinStages))
			}
			if st.JoinStages[1].Operator != op.name {
				t.Fatalf("stage 1 ran %s, want %s", st.JoinStages[1].Operator, op.name)
			}
			if st.JoinStages[1].Reoptimized {
				t.Fatalf("fixed plan must not re-optimize")
			}
			if st.IO.IOCost() <= 0 {
				t.Fatalf("join attributed no I/O")
			}
		})
	}
}

// TestJoinDynamicEquivalence runs the fully dynamic path (planning,
// competition, possible re-optimization) against the oracle on the
// three-table star, with and without local restrictions.
func TestJoinDynamicEquivalence(t *testing.T) {
	f := newJoinFixture(t, 100, 600, 20, 0, true)
	cases := []struct {
		name     string
		jq       func() *JoinQuery
		tabs     [][]expr.Row
		binds    expr.Bindings
		residual bool
	}{
		{
			name: "two-table no restriction",
			jq:   func() *JoinQuery { return f.custOrdQuery(nil) },
			tabs: [][]expr.Row{f.custRows, f.ordRows},
		},
		{
			name: "star with local restrictions",
			jq: func() *JoinQuery {
				return f.starQuery(
					expr.NewCmp(expr.EQ, expr.Col(1, "SEG"), expr.Lit(expr.Int(0))),
					expr.NewCmp(expr.GE, expr.Col(3, "QTY"), expr.Lit(expr.Int(5))),
				)
			},
			tabs: [][]expr.Row{f.custRows, f.ordRows, f.itemRows},
		},
		{
			name: "star with residual and projection",
			jq: func() *JoinQuery {
				jq := f.starQuery(nil, nil)
				// CUST.SEG > ITEM.KIND spans tables without being an
				// equi-join: flat positions 1 (CUST.SEG) and 9 (ITEM.KIND).
				jq.Residual = expr.NewCmp(expr.GT, expr.Col(1, "SEG"), expr.Col(9, "KIND"))
				jq.Projection = []int{2, 6, 9} // CUST.NAME, ORD.QTY, ITEM.KIND
				return jq
			},
			tabs: [][]expr.Row{f.custRows, f.ordRows, f.itemRows},
		},
		{
			name: "empty range",
			jq: func() *JoinQuery {
				return f.custOrdQuery(
					expr.NewCmp(expr.EQ, expr.Col(0, "ID"), expr.Lit(expr.Int(-5))))
			},
			tabs: [][]expr.Row{f.custRows, f.ordRows},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := NewOptimizer(Config{})
			want := oracleJoin(t, tc.jq(), tc.tabs)
			got, _ := drainJoin(t, o.RunJoin(nil, tc.jq()))
			assertSameRows(t, tc.name, got, want)
		})
	}
}

// TestJoinOrderAndLimit checks ORDER BY and LIMIT over the join result.
func TestJoinOrderAndLimit(t *testing.T) {
	f := newJoinFixture(t, 50, 200, 10, 0, false)
	o := NewOptimizer(Config{})
	jq := f.custOrdQuery(nil)
	jq.OrderBy = []int{3} // ORD.ID (flat: 3 CUST cols... CUST has 3 cols, so ORD.ID = 3)
	jq.Limit = 7
	got, st := drainJoin(t, o.RunJoin(nil, jq))
	if len(got) != 7 {
		t.Fatalf("LIMIT 7 delivered %d rows", len(got))
	}
	for i := 1; i < len(got); i++ {
		if expr.Compare(got[i-1][3], got[i][3]) > 0 {
			t.Fatalf("rows not ordered by ORD.ID at %d", i)
		}
	}
	if st.RowsDelivered != 7 {
		t.Fatalf("stats say %d rows delivered, want 7", st.RowsDelivered)
	}
}

// TestJoinReoptimizedBeatsStatic is the acceptance scenario: feedback
// poisoned to grossly underestimate the driver's filtered cardinality
// makes the static plan choose index-nested-loop probing for the big
// orders table. The dynamic run sees the real driver cardinality at the
// first stage boundary, emits join-reoptimized, switches the orders
// stage to a nested-loop scan, and finishes with less attributed I/O
// than the static plan on a twin database.
func TestJoinReoptimizedBeatsStatic(t *testing.T) {
	const frames = 128
	poison := func() *feedback.Registry {
		fb := feedback.New(0)
		// One observation adopts the ratio outright; 10 vs 160 clamps
		// to the 1/16 floor. The driver's unsargable SEG restriction
		// estimates through corr("").
		fb.ObserveCardinality("CUST", "", 160, 10)
		return fb
	}
	seg0 := func() expr.Expr {
		return expr.NewCmp(expr.EQ, expr.Col(1, "SEG"), expr.Lit(expr.Int(0)))
	}

	// Static leg: plan with the poisoned estimates, then replay the
	// frozen plan with re-optimization off.
	fStatic := newJoinFixture(t, 1000, 4000, 50, frames, false)
	oStatic := NewOptimizer(Config{Feedback: poison()})
	jqS := fStatic.starQuery(seg0(), nil)
	plan, err := oStatic.PlanJoin(nil, jqS)
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.Stages[1].Operator; got != JoinOpINL {
		t.Fatalf("static plan chose %s for the orders stage, want %s (plan %s)",
			got, JoinOpINL, plan.Describe(jqS))
	}
	staticRows, stS := drainJoin(t, oStatic.RunJoinPlan(nil, fStatic.starQuery(seg0(), nil), plan))

	// Dynamic leg on a twin database: same data, same poisoned
	// estimates, re-optimization on.
	fDyn := newJoinFixture(t, 1000, 4000, 50, frames, false)
	oDyn := NewOptimizer(Config{Feedback: poison()})
	dynRows, stD := drainJoin(t, oDyn.RunJoin(nil, fDyn.starQuery(seg0(), nil)))

	assertSameRows(t, "static vs dynamic", dynRows, staticRows)

	var reopted bool
	for _, ev := range stD.Events {
		if ev.Kind == EvJoinReoptimized {
			reopted = true
		}
	}
	if !reopted {
		t.Fatalf("dynamic run did not emit %s; events: %v", EvJoinReoptimized, stD.Trace)
	}
	ioS, ioD := stS.IO.IOCost(), stD.IO.IOCost()
	if ioD >= ioS {
		t.Fatalf("dynamic I/O %d not below static %d (dynamic %s, static %s)",
			ioD, ioS, stD.Strategy, stS.Strategy)
	}
	t.Logf("static %s: %d I/O; dynamic %s: %d I/O", stS.Strategy, ioS, stD.Strategy, ioD)
}

// TestJoinDeterminism runs the same dynamic join on twin databases and
// expects identical strategies, stage stats, and attributed I/O —
// re-optimization is driven only by deterministic estimates and counts.
func TestJoinDeterminism(t *testing.T) {
	run := func() ([]expr.Row, RetrievalStats) {
		f := newJoinFixture(t, 400, 1500, 30, 128, true)
		o := NewOptimizer(Config{})
		jq := f.starQuery(
			expr.NewCmp(expr.EQ, expr.Col(1, "SEG"), expr.Lit(expr.Int(0))), nil)
		return drainJoin(t, o.RunJoin(nil, jq))
	}
	rows1, st1 := run()
	rows2, st2 := run()
	assertSameRows(t, "twin rows", rows1, rows2)
	if st1.Strategy != st2.Strategy {
		t.Fatalf("strategies differ: %q vs %q", st1.Strategy, st2.Strategy)
	}
	if st1.IO != st2.IO {
		t.Fatalf("attributed I/O differs: %+v vs %+v", st1.IO, st2.IO)
	}
	if len(st1.JoinStages) != len(st2.JoinStages) {
		t.Fatalf("stage counts differ: %d vs %d", len(st1.JoinStages), len(st2.JoinStages))
	}
	for i := range st1.JoinStages {
		if st1.JoinStages[i] != st2.JoinStages[i] {
			t.Fatalf("stage %d differs: %+v vs %+v", i, st1.JoinStages[i], st2.JoinStages[i])
		}
	}
}

// TestJoinFeedsCardinalityFeedback checks the per-stage actuals flow
// into the feedback registry after a dynamic join.
func TestJoinFeedsCardinalityFeedback(t *testing.T) {
	f := newJoinFixture(t, 100, 400, 20, 0, false)
	fb := feedback.New(0)
	o := NewOptimizer(Config{Feedback: fb})
	jq := f.starQuery(
		expr.NewCmp(expr.EQ, expr.Col(1, "SEG"), expr.Lit(expr.Int(0))), nil)
	_, st := drainJoin(t, o.RunJoin(nil, jq))
	if len(st.JoinStages) != 3 {
		t.Fatalf("want 3 stages, got %d", len(st.JoinStages))
	}
	if len(fb.Snapshot()) == 0 {
		t.Fatalf("dynamic join recorded no feedback corrections")
	}
}

// TestCapturePlanRejectsJoin is the regression guard: multi-table
// retrievals must never freeze into the plan cache, and every dynamic
// join announces that with a plan-capture-rejected event.
func TestCapturePlanRejectsJoin(t *testing.T) {
	f := newJoinFixture(t, 60, 200, 10, 0, false)
	o := NewOptimizer(Config{})
	_, st := drainJoin(t, o.RunJoin(nil, f.custOrdQuery(nil)))
	if plan, ok := CapturePlan(&st); ok {
		t.Fatalf("CapturePlan froze a join retrieval as %s", plan)
	}
	var rejected bool
	for _, ev := range st.Events {
		if ev.Kind == EvPlanCaptureRejected {
			rejected = true
		}
	}
	if !rejected {
		t.Fatalf("join run did not emit %s", EvPlanCaptureRejected)
	}
	if got := o.Metrics().Snapshot(); got.PlanCaptureRejected == 0 || got.JoinQueries == 0 {
		t.Fatalf("metrics missed the join: %+v", got)
	}
}

// TestHashJoinEquivalence quickchecks the forced hash-join operator
// against the independent oracle across the hostile corners: NULL join
// keys on both sides, duplicate keys, an empty build side, a restricted
// driver, and a bounded buffer pool.
func TestHashJoinEquivalence(t *testing.T) {
	f := newJoinFixture(t, 80, 500, 20, 48, true)
	cases := []struct {
		name      string
		custLocal expr.Expr
		ordLocal  expr.Expr
		index     string
	}{
		{"plain", nil, nil, ""},
		{"restricted-driver", expr.NewCmp(expr.EQ, expr.Col(1, "SEG"), expr.Lit(expr.Int(0))), nil, ""},
		{"index-build", nil, expr.NewCmp(expr.GE, expr.Col(3, "QTY"), expr.Lit(expr.Int(8))), "ORD_QTY_IX"},
		{"empty-build", nil, expr.NewCmp(expr.GE, expr.Col(3, "QTY"), expr.Lit(expr.Int(100))), ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			jq := f.custOrdQuery(tc.custLocal)
			jq.Local[1] = tc.ordLocal
			want := oracleJoin(t, jq, [][]expr.Row{f.custRows, f.ordRows})
			o := NewOptimizer(Config{})
			plan := &JoinPlan{Stages: []JoinStagePlan{
				{Table: 0, Operator: "tscan", EstRows: float64(f.nCust)},
				{Table: 1, Operator: JoinOpHJ, Index: tc.index, EstRows: 1},
			}}
			got, st := drainJoin(t, o.RunJoinPlan(nil, jq, plan))
			assertSameRows(t, tc.name, got, want)
			if len(want) > 0 && st.JoinStages[1].Operator != JoinOpHJ {
				t.Fatalf("stage 1 ran %s, want hj", st.JoinStages[1].Operator)
			}
		})
	}
}

// TestHashJoinParallelProbe forces hj under adaptive parallelism and
// checks the chunked parallel probe returns the same multiset as the
// sequential run.
func TestHashJoinParallelProbe(t *testing.T) {
	f := newJoinFixture(t, 100, 600, 20, 0, true)
	jq := f.custOrdQuery(nil)
	want := oracleJoin(t, jq, [][]expr.Row{f.custRows, f.ordRows})
	o := NewOptimizer(Config{AdaptiveParallelism: true, Parallelism: 8})
	plan := &JoinPlan{Stages: []JoinStagePlan{
		{Table: 0, Operator: "tscan", EstRows: float64(f.nCust)},
		{Table: 1, Operator: JoinOpHJ, EstRows: 1},
	}}
	got, _ := drainJoin(t, o.RunJoinPlan(nil, f.custOrdQuery(nil), plan))
	assertSameRows(t, "parallel-probe", got, want)
}

// TestHashJoinDynamicPick joins on a column with no probe index
// (ORD.ITEM): the per-stage competition must pick hj over the quadratic
// nested loop, deliver the oracle's rows, and count the win.
func TestHashJoinDynamicPick(t *testing.T) {
	f := newJoinFixture(t, 100, 600, 20, 64, false)
	jq := &JoinQuery{
		Tables: []*catalog.Table{f.cust, f.ord},
		Local:  []expr.Expr{nil, nil},
		Preds:  []JoinPred{{LT: 0, LC: 0, RT: 1, RC: 2}}, // CUST.ID = ORD.ITEM, unindexed
	}
	want := oracleJoin(t, jq, [][]expr.Row{f.custRows, f.ordRows})
	o := NewOptimizer(Config{})
	got, st := drainJoin(t, o.RunJoin(nil, jq))
	assertSameRows(t, "dynamic", got, want)
	var ranHJ bool
	for _, sg := range st.JoinStages {
		if sg.Operator == JoinOpHJ {
			ranHJ = true
		}
	}
	if !ranHJ {
		t.Fatalf("competition did not pick hj: %s", st.Strategy)
	}
	if wins := o.Metrics().Snapshot().JoinOperatorWins[JoinOpHJ]; wins == 0 {
		t.Fatalf("hj win not counted: %+v", o.Metrics().Snapshot().JoinOperatorWins)
	}
}

// isSortedBy reports whether rows are ordered by the given projected
// column (NULLs first, mirroring sortRows).
func isSortedBy(rows []expr.Row, col int, desc bool) bool {
	for i := 1; i < len(rows); i++ {
		a, b := rows[i-1][col], rows[i][col]
		c := 0
		switch {
		case a.IsNull() && b.IsNull():
		case a.IsNull():
			c = -1
		case b.IsNull():
			c = 1
		default:
			c = expr.Compare(a, b)
		}
		if desc {
			c = -c
		}
		if c > 0 {
			return false
		}
	}
	return true
}

// sortAvoidFixture builds a two-table schema tuned so the cheapest plan
// is naturally order-preserving: both tables are page-fat (the driver's
// restriction-index scan genuinely beats its sequential scan, and the
// probe side's heap is expensive enough that hj loses to inl for a
// small driver range). CUST (ID, SEG, PAD) with CUST_ID_IX; ORD (ID,
// CUST, PAD) with ORD_CUST_IX.
func sortAvoidFixture(t testing.TB) (cust, ord *catalog.Table) {
	t.Helper()
	cat := catalog.New(storage.NewBufferPool(storage.NewDisk(4096), 64))
	var err error
	cust, err = cat.CreateTable("CUST", []catalog.Column{
		{Name: "ID", Type: expr.TypeInt},
		{Name: "SEG", Type: expr.TypeInt},
		{Name: "PAD", Type: expr.TypeString},
	})
	if err != nil {
		t.Fatal(err)
	}
	ord, err = cat.CreateTable("ORD", []catalog.Column{
		{Name: "ID", Type: expr.TypeInt},
		{Name: "CUST", Type: expr.TypeInt},
		{Name: "PAD", Type: expr.TypeString},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cust.CreateIndex("CUST_ID_IX", "ID"); err != nil {
		t.Fatal(err)
	}
	if _, err := ord.CreateIndex("ORD_CUST_IX", "CUST"); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	pad := strings.Repeat("p", 400)
	for i := 0; i < 300; i++ {
		if _, err := cust.Insert(expr.Row{expr.Int(int64(i)), expr.Int(int64(i % 5)), expr.Str(pad)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 900; i++ {
		if _, err := ord.Insert(expr.Row{expr.Int(int64(i)), expr.Int(rng.Int63n(300)), expr.Str(pad)}); err != nil {
			t.Fatal(err)
		}
	}
	return cust, ord
}

// TestSortAvoidedOrderEquivalence runs an ORDER BY join whose cheapest
// plan is order-preserving (restricted driver on the ordering index,
// inl probe) against a baseline with sort avoidance disabled. The aware
// run must skip the materialized sort and still deliver the baseline's
// rows byte-for-byte, ascending and descending.
func TestSortAvoidedOrderEquivalence(t *testing.T) {
	cust, ord := sortAvoidFixture(t)
	mk := func() *JoinQuery {
		return &JoinQuery{
			Tables:  []*catalog.Table{cust, ord},
			Local:   []expr.Expr{expr.NewCmp(expr.LT, expr.Col(0, "ID"), expr.Lit(expr.Int(12))), nil},
			Preds:   []JoinPred{{LT: 0, LC: 0, RT: 1, RC: 1}},
			OrderBy: []int{0}, // CUST.ID, delivered by CUST_ID_IX
		}
	}
	for _, desc := range []bool{false, true} {
		name := "asc"
		if desc {
			name = "desc"
		}
		t.Run(name, func(t *testing.T) {
			jqA := mk()
			jqA.OrderDesc = desc
			aware, stA := drainJoin(t, NewOptimizer(Config{}).RunJoin(nil, jqA))
			jqB := mk()
			jqB.OrderDesc = desc
			base, stB := drainJoin(t, NewOptimizer(Config{DisableJoinSortAvoidance: true}).RunJoin(nil, jqB))
			if !stA.SortAvoided {
				t.Fatalf("aware run sorted anyway: %s", stA.Strategy)
			}
			if stB.SortAvoided {
				t.Fatalf("baseline run avoided the sort with avoidance disabled")
			}
			if len(aware) == 0 || len(aware) != len(base) {
				t.Fatalf("aware %d rows, baseline %d", len(aware), len(base))
			}
			for i := range aware {
				if rowKey(aware[i]) != rowKey(base[i]) {
					t.Fatalf("row %d differs:\n aware    %v\n baseline %v", i, aware[i], base[i])
				}
			}
			if !isSortedBy(aware, 0, desc) {
				t.Fatalf("aware output not in %s order", name)
			}
			var avoided bool
			for _, ev := range stA.Events {
				if ev.Kind == EvJoinSortAvoided {
					avoided = true
				}
			}
			if !avoided {
				t.Fatalf("aware run did not emit %s", EvJoinSortAvoided)
			}
		})
	}
}

// TestSortNotAvoidedStillOrdered is the negative guard: when the
// cheapest plan routes through an order-destroying operator (hj) and
// the order-preserving alternative is too expensive, the final sort
// must still run and deliver correct order.
func TestSortNotAvoidedStillOrdered(t *testing.T) {
	f := newJoinFixture(t, 100, 600, 20, 64, false)
	jq := f.custOrdQuery(nil) // unrestricted: hj beats the 100-row inl probe chain
	jq.OrderBy = []int{0}
	got, st := drainJoin(t, NewOptimizer(Config{}).RunJoin(nil, jq))
	if st.SortAvoided {
		t.Fatalf("sort reported avoided on an order-destroying plan: %s", st.Strategy)
	}
	if !isSortedBy(got, 0, false) {
		t.Fatalf("output not sorted")
	}
	want := oracleJoin(t, jq, [][]expr.Row{f.custRows, f.ordRows})
	assertSameRows(t, "sorted", got, want)
}

// TestCapturePlanRejectsHashJoinStage pins the explicit hj guard in
// CapturePlan: a stats record carrying an hj stage must never freeze,
// independent of the blanket join rejection.
func TestCapturePlanRejectsHashJoinStage(t *testing.T) {
	st := &RetrievalStats{
		Tactic:     "sorted", // not the join tactic: only the hj stage guard can reject
		JoinStages: []JoinStageStats{{Table: "ORD", Operator: JoinOpHJ}},
	}
	if plan, ok := CapturePlan(st); ok {
		t.Fatalf("CapturePlan froze an hj retrieval as %s", plan)
	}
}

// TestJoinValidate exercises the structural checks.
func TestJoinValidate(t *testing.T) {
	f := newJoinFixture(t, 10, 20, 5, 0, false)
	o := NewOptimizer(Config{})
	bad := []*JoinQuery{
		{Tables: []*catalog.Table{f.cust}, Local: []expr.Expr{nil}},
		{Tables: []*catalog.Table{f.cust, f.ord}, Local: []expr.Expr{nil}},
		{Tables: []*catalog.Table{f.cust, f.ord}, Local: []expr.Expr{nil, nil},
			Preds: []JoinPred{{LT: 0, LC: 9, RT: 1, RC: 0}}},
	}
	for i, jq := range bad {
		rows := o.RunJoin(nil, jq)
		if _, _, err := rows.Next(); err == nil {
			t.Fatalf("case %d: invalid join query executed without error", i)
		}
		rows.Close()
	}
}
