package core

import (
	"context"
	"errors"
	"sync/atomic"

	"rdbdyn/internal/storage"
)

// ErrBudgetExceeded is returned from Rows.Next once a query has consumed
// its per-query simulated-I/O budget. It is the storage layer's sentinel
// re-exported at the optimizer boundary.
var ErrBudgetExceeded = storage.ErrBudgetExceeded

// ExecCtx is the per-query execution context: the caller's
// context.Context (carrying cancellation and deadline) plus an optional
// per-query simulated-I/O budget and an optional per-query trace sink.
// It is threaded from engine.DB.QueryContext through the optimizer into
// every scan strategy, the jscan two-stage competition, the final stage,
// B-tree descent and leaf iteration, RID list spill/read-back, and —
// via the storage.Governor it owns — into every BufferPool page fetch,
// which is the cooperative cancellation checkpoint: a cancelled query
// unwinds within one simulated page I/O.
//
// A nil *ExecCtx is the free, never-cancelling context; every method is
// nil-safe, so the legacy Run/Query entry points simply pass nil and
// keep their exact seed behaviour and cost accounting.
type ExecCtx struct {
	ctx   context.Context
	gov   *storage.Governor
	trace TraceSink
	load  LoadFunc
	// cancelRecorded dedupes the query-cancelled metric when an unwind
	// crosses layers (e.g. a sorted wrapper draining an inner retrieval
	// that already recorded it).
	cancelRecorded atomic.Bool
}

// ioBudgetKey carries a per-query simulated-I/O budget inside a
// context.Context, so callers of the plain ctx-based APIs can set a
// budget without reaching for core directly.
type ioBudgetKey struct{}

// WithIOBudget returns a context carrying a per-query simulated-I/O
// budget (<= 0 clears it). NewExecCtx picks it up.
func WithIOBudget(ctx context.Context, ios int64) context.Context {
	return context.WithValue(ctx, ioBudgetKey{}, ios)
}

// IOBudgetFromContext returns the budget set by WithIOBudget (0 = none).
func IOBudgetFromContext(ctx context.Context) int64 {
	if ctx == nil {
		return 0
	}
	if v, ok := ctx.Value(ioBudgetKey{}).(int64); ok && v > 0 {
		return v
	}
	return 0
}

// NewExecCtx builds an execution context for ctx with the given
// simulated-I/O budget; budget <= 0 falls back to any budget carried by
// the context (WithIOBudget). It returns nil — the free execution
// context — when ctx can never cancel and no budget applies, so
// wrapping context.Background costs nothing.
func NewExecCtx(ctx context.Context, budget int64) *ExecCtx {
	if ctx == nil {
		ctx = context.Background()
	}
	if budget <= 0 {
		budget = IOBudgetFromContext(ctx)
	}
	gov := storage.NewGovernor(ctx, budget)
	if gov == nil {
		return nil
	}
	return &ExecCtx{ctx: ctx, gov: gov}
}

// WithTrace attaches a per-query trace sink, fanning this one query's
// events out to it in addition to the optimizer-wide Config.Trace sink.
// It returns a non-nil ExecCtx even when e is nil.
func (e *ExecCtx) WithTrace(sink TraceSink) *ExecCtx {
	if e == nil {
		e = &ExecCtx{ctx: context.Background()}
	}
	e.trace = sink
	return e
}

// LoadFunc reports the engine's live load as a saturation fraction:
// 0 = idle, 1 = the admission governor is fully saturated by other
// queries. The adaptive parallelism policy shrinks its fan-out ceiling
// by this fraction so one query does not hog workers the scheduler
// needs for its siblings.
type LoadFunc func() float64

// WithLoad attaches the engine's live-load signal (e.g. admission
// saturation) for the adaptive parallelism policy to consult. It
// returns a non-nil ExecCtx even when e is nil.
func (e *ExecCtx) WithLoad(f LoadFunc) *ExecCtx {
	if e == nil {
		e = &ExecCtx{ctx: context.Background()}
	}
	e.load = f
	return e
}

// Load returns the engine's current load fraction, clamped to [0, 1];
// 0 for a nil ExecCtx or when no load signal is attached.
func (e *ExecCtx) Load() float64 {
	if e == nil || e.load == nil {
		return 0
	}
	l := e.load()
	switch {
	case l < 0:
		return 0
	case l > 1:
		return 1
	}
	return l
}

// Context returns the caller's context (context.Background for nil).
func (e *ExecCtx) Context() context.Context {
	if e == nil || e.ctx == nil {
		return context.Background()
	}
	return e.ctx
}

// Governor returns the storage-layer governor scans hand to their
// trackers (nil for a free execution context).
func (e *ExecCtx) Governor() *storage.Governor {
	if e == nil {
		return nil
	}
	return e.gov
}

// Err reports why the query must stop — context.Canceled,
// context.DeadlineExceeded, or ErrBudgetExceeded — or nil to continue.
func (e *ExecCtx) Err() error {
	if e == nil {
		return nil
	}
	if e.gov != nil {
		return e.gov.Err()
	}
	return e.ctx.Err()
}

// IOSpent returns the simulated I/Os charged against the budget so far.
func (e *ExecCtx) IOSpent() int64 { return e.Governor().Spent() }

// IOBudget returns the configured budget (0 = unlimited).
func (e *ExecCtx) IOBudget() int64 { return e.Governor().Budget() }

func (e *ExecCtx) traceSink() TraceSink {
	if e == nil {
		return nil
	}
	return e.trace
}

// markCancelRecorded returns true exactly once per ExecCtx; the metrics
// registry uses it so one unwind counts as one cancellation.
func (e *ExecCtx) markCancelRecorded() bool {
	if e == nil {
		return false
	}
	return e.cancelRecorded.CompareAndSwap(false, true)
}

// isCancellation reports whether err is an execution-context unwind
// (caller cancel, deadline, or budget) as opposed to a storage fault.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, storage.ErrBudgetExceeded)
}
