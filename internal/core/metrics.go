package core

import (
	"context"
	"errors"
	"math"
	"math/bits"
	"sync/atomic"

	"rdbdyn/internal/storage"
)

// estErrBuckets is the size of the estimate-error histogram: log2 of
// predicted/actual I/O, clamped to [-3, +3] around the "~1x" center.
const estErrBuckets = 7

var estErrLabels = [estErrBuckets]string{
	"<=1/8x", "1/4x", "1/2x", "~1x", "2x", "4x", ">=8x",
}

// estErrZeroLabel is the explicit zero/exact bucket: retrievals whose
// projected and actual I/O are both 0 (empty ranges, fully-cached point
// lookups). The log2 ratio is undefined there, so they get their own
// bucket instead of being dropped.
const estErrZeroLabel = "0-I/O"

// Metrics is a cumulative telemetry registry over every retrieval an
// optimizer runs: per-tactic win counts, competition-decision counters,
// and a histogram of how far the start-retrieval I/O projection missed
// the final attributed I/O. All counters are atomics, so concurrent
// Stmt.Query traffic records without locks and Snapshot can be read at
// any time.
type Metrics struct {
	queries          atomic.Int64
	emptyRanges      atomic.Int64
	scanAbandonments atomic.Int64
	strategySwitches atomic.Int64
	racesResolved    atomic.Int64
	borrowOverflows  atomic.Int64
	cancelled        atomic.Int64
	deadlineExceeded atomic.Int64
	budgetExceeded   atomic.Int64
	admissionReject  atomic.Int64
	tacticWins       [tacticKindCount]atomic.Int64
	estErr           [estErrBuckets]atomic.Int64
	estErrZero       atomic.Int64

	// Multi-table retrieval counters.
	joinQueries      atomic.Int64
	joinOrders       atomic.Int64
	joinReopts       atomic.Int64
	joinOpWins       [joinOpCount]atomic.Int64
	joinSortsAvoided atomic.Int64
	planCaptureRejs  atomic.Int64

	// Adaptive-parallelism counters (only moved under
	// Config.AdaptiveParallelism).
	parWidths       [parWidthBuckets]atomic.Int64
	parEarlyCancels atomic.Int64
	parSeqDowngrade atomic.Int64
}

// parWidthBuckets is the size of the chosen-width histogram: widths
// rounded up to the next power of two, 1 .. maxParallelism (64).
const parWidthBuckets = 7

var parWidthLabels = [parWidthBuckets]string{"1", "2", "4", "8", "16", "32", "64"}

// parWidthBucket maps a chosen width to its power-of-two histogram
// bucket (1 → 0, 2 → 1, 3..4 → 2, ..., 33..64 → 6).
func parWidthBucket(w int) int {
	if w < 1 {
		w = 1
	}
	b := bits.Len(uint(w - 1))
	if b >= parWidthBuckets {
		b = parWidthBuckets - 1
	}
	return b
}

// onEvent folds one emitted event into the decision counters.
func (m *Metrics) onEvent(ev TraceEvent) {
	switch ev.Kind {
	case EvEmptyRange:
		m.emptyRanges.Add(1)
	case EvScanAbandoned:
		m.scanAbandonments.Add(1)
	case EvStrategySwitch:
		m.strategySwitches.Add(1)
	case EvRaceResolved:
		m.racesResolved.Add(1)
	case EvBorrowOverflow:
		m.borrowOverflows.Add(1)
	case EvJoinOrderChosen:
		m.joinOrders.Add(1)
	case EvJoinReoptimized:
		m.joinReopts.Add(1)
	case EvJoinSortAvoided:
		m.joinSortsAvoided.Add(1)
	case EvPlanCaptureRejected:
		m.planCaptureRejs.Add(1)
	case EvParallelWidthChosen:
		m.parWidths[parWidthBucket(ev.Width)].Add(1)
		if ev.Width <= 1 {
			// The policy was allowed to fan out (the event only fires
			// with a ceiling >= 2) and chose sequential anyway.
			m.parSeqDowngrade.Add(1)
		}
	case EvParallelEarlyCancel:
		m.parEarlyCancels.Add(1)
	}
}

// recordJoin folds one finished multi-table retrieval into the
// registry: one join-query count plus a win for each stage's operator.
func (m *Metrics) recordJoin(st *RetrievalStats) {
	if m == nil {
		return
	}
	m.joinQueries.Add(1)
	for _, sg := range st.JoinStages {
		if k, ok := joinOpIndex(sg.Operator); ok {
			m.joinOpWins[k].Add(1)
		}
	}
}

// recordQuery counts one Run call.
func (m *Metrics) recordQuery() { m.queries.Add(1) }

// recordCancellation classifies an execution-context unwind into one of
// the three cancellation counters. Deadline is checked before Canceled:
// an expired WithTimeout context reports DeadlineExceeded from Err even
// after its CancelFunc runs.
func (m *Metrics) recordCancellation(err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		m.deadlineExceeded.Add(1)
	case errors.Is(err, storage.ErrBudgetExceeded):
		m.budgetExceeded.Add(1)
	case errors.Is(err, context.Canceled):
		m.cancelled.Add(1)
	}
}

// RecordAdmissionRejected counts one query turned away by engine
// admission control (queue full or admission-wait timeout).
func (m *Metrics) RecordAdmissionRejected() { m.admissionReject.Add(1) }

// recordRetrieval folds one finished retrieval into the registry: a win
// for its tactic, and (when estErr is set — plan-cache replays carry no
// estimate of their own) one estimate-error sample comparing the
// projected I/O at decision time (estimation stage + the chosen plan's
// estimate) against the final attributed I/O.
//
// Edge buckets: both sides zero is the exact/zero bucket; a positive
// projection against zero actual I/O is an overestimate off the top of
// the scale (">=8x"); zero projected against positive actual is an
// underestimate off the bottom ("<=1/8x").
func (m *Metrics) recordRetrieval(t tacticKind, st *RetrievalStats, estErr bool) {
	if int(t) < len(m.tacticWins) {
		m.tacticWins[t].Add(1)
	}
	if !estErr {
		return
	}
	predicted := float64(st.EstimateIO)
	for _, ev := range st.Events {
		if ev.Kind == EvTacticChosen {
			predicted += ev.EstimatedIO
			break
		}
	}
	actual := float64(st.IO.IOCost())
	switch {
	case predicted <= 0 && actual <= 0:
		m.estErrZero.Add(1)
	case actual <= 0:
		m.estErr[estErrBuckets-1].Add(1)
	case predicted <= 0:
		m.estErr[0].Add(1)
	default:
		m.estErr[estErrBucket(predicted/actual)].Add(1)
	}
}

func estErrBucket(ratio float64) int {
	b := estErrBuckets/2 + int(math.Round(math.Log2(ratio)))
	if b < 0 {
		b = 0
	}
	if b >= estErrBuckets {
		b = estErrBuckets - 1
	}
	return b
}

// MetricsSnapshot is a point-in-time copy of a Metrics registry, shaped
// for JSON (rdbbench's BENCH_metrics.json, rdbsh's \metrics).
type MetricsSnapshot struct {
	Queries          int64            `json:"queries"`
	EmptyRanges      int64            `json:"empty_ranges"`
	ScanAbandonments int64            `json:"scan_abandonments"`
	StrategySwitches int64            `json:"strategy_switches"`
	RacesResolved    int64            `json:"races_resolved"`
	BorrowOverflows  int64            `json:"borrow_overflows"`
	TacticWins       map[string]int64 `json:"tactic_wins"`
	EstimateErrorLog map[string]int64 `json:"estimate_error_log2"`

	// Execution-context and admission outcomes.
	QueriesCancelled        int64 `json:"queries_cancelled"`
	QueriesDeadlineExceeded int64 `json:"queries_deadline_exceeded"`
	QueriesBudgetExceeded   int64 `json:"queries_budget_exceeded"`
	AdmissionRejected       int64 `json:"admission_rejected"`

	// Multi-table retrieval outcomes. All omitempty: single-table
	// workloads (every paper experiment) serialize exactly as before.
	JoinQueries         int64            `json:"join_queries,omitempty"`
	JoinOrdersChosen    int64            `json:"join_orders_chosen,omitempty"`
	JoinReoptimizations int64            `json:"join_reoptimizations,omitempty"`
	JoinOperatorWins    map[string]int64 `json:"join_operator_wins,omitempty"`
	JoinSortsAvoided    int64            `json:"join_sorts_avoided,omitempty"`
	PlanCaptureRejected int64            `json:"plan_capture_rejected,omitempty"`

	// Adaptive-parallelism outcomes. All omitempty: workloads that never
	// enable Config.AdaptiveParallelism serialize exactly as before.
	ParallelWidths        map[string]int64 `json:"parallel_widths,omitempty"`
	ParallelEarlyCancels  int64            `json:"parallel_early_cancels,omitempty"`
	ParallelSeqDowngrades int64            `json:"parallel_seq_downgrades,omitempty"`
}

// Snapshot copies the counters. Under concurrent load the copy is not a
// consistent cut across counters, but each counter is exact.
func (m *Metrics) Snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		Queries:          m.queries.Load(),
		EmptyRanges:      m.emptyRanges.Load(),
		ScanAbandonments: m.scanAbandonments.Load(),
		StrategySwitches: m.strategySwitches.Load(),
		RacesResolved:    m.racesResolved.Load(),
		BorrowOverflows:  m.borrowOverflows.Load(),
		TacticWins:       map[string]int64{},
		EstimateErrorLog: map[string]int64{},

		QueriesCancelled:        m.cancelled.Load(),
		QueriesDeadlineExceeded: m.deadlineExceeded.Load(),
		QueriesBudgetExceeded:   m.budgetExceeded.Load(),
		AdmissionRejected:       m.admissionReject.Load(),
	}
	s.JoinQueries = m.joinQueries.Load()
	s.JoinOrdersChosen = m.joinOrders.Load()
	s.JoinReoptimizations = m.joinReopts.Load()
	s.JoinSortsAvoided = m.joinSortsAvoided.Load()
	s.PlanCaptureRejected = m.planCaptureRejs.Load()
	for k := range m.joinOpWins {
		if n := m.joinOpWins[k].Load(); n > 0 {
			if s.JoinOperatorWins == nil {
				s.JoinOperatorWins = map[string]int64{}
			}
			s.JoinOperatorWins[joinOpName(k)] = n
		}
	}
	s.ParallelEarlyCancels = m.parEarlyCancels.Load()
	s.ParallelSeqDowngrades = m.parSeqDowngrade.Load()
	for b := range m.parWidths {
		if n := m.parWidths[b].Load(); n > 0 {
			if s.ParallelWidths == nil {
				s.ParallelWidths = map[string]int64{}
			}
			s.ParallelWidths[parWidthLabels[b]] = n
		}
	}
	for k := range m.tacticWins {
		if n := m.tacticWins[k].Load(); n > 0 {
			s.TacticWins[tacticKind(k).String()] = n
		}
	}
	for b := range m.estErr {
		if n := m.estErr[b].Load(); n > 0 {
			s.EstimateErrorLog[estErrLabels[b]] = n
		}
	}
	if n := m.estErrZero.Load(); n > 0 {
		s.EstimateErrorLog[estErrZeroLabel] = n
	}
	return s
}
