package core

import (
	"fmt"

	"rdbdyn/internal/catalog"
	"rdbdyn/internal/expr"
)

// StrategyKind enumerates the fixed (frozen) retrieval strategies a
// static optimizer can choose among.
type StrategyKind uint8

// Fixed strategies.
const (
	StrategyTscan StrategyKind = iota
	StrategySscan
	StrategyFscan
)

func (k StrategyKind) String() string {
	switch k {
	case StrategyTscan:
		return "Tscan"
	case StrategySscan:
		return "Sscan"
	case StrategyFscan:
		return "Fscan"
	default:
		return "?"
	}
}

// FixedStrategy is a frozen plan: one strategy, one index, no
// competition, no run-time switching. It is the execution vehicle of
// the static-optimizer baseline the paper argues against.
type FixedStrategy struct {
	Kind  StrategyKind
	Index *catalog.Index // nil for Tscan
}

func (s FixedStrategy) String() string {
	if s.Index != nil {
		return fmt.Sprintf("%s(%s)", s.Kind, s.Index.Name)
	}
	return s.Kind.String()
}

// RunFixed executes q with the frozen strategy, bypassing all dynamic
// machinery. The restriction range for index strategies is derived from
// the current bindings (a frozen plan still sees run-time values — what
// it cannot do is change strategy).
//
// If the query requests an order the strategy does not deliver, the
// result is materialized and sorted, as a static plan's SORT node
// would.
func RunFixed(q *Query, s FixedStrategy, cfg Config) Rows {
	return RunFixedExec(nil, q, s, cfg)
}

// RunFixedExec is RunFixed under an execution context: cancellation,
// deadline, and I/O budget unwind the frozen retrieval exactly as they
// do the dynamic one (nil ec = free).
func RunFixedExec(ec *ExecCtx, q *Query, s FixedStrategy, cfg Config) Rows {
	rows, err := runFixed(ec, q, s, cfg)
	if err != nil {
		return errRows{err: err}
	}
	return rows
}

func runFixed(ec *ExecCtx, q *Query, s FixedStrategy, cfg Config) (Rows, error) {
	if err := ec.Err(); err != nil {
		return nil, err
	}
	if q.Table == nil {
		return nil, fmt.Errorf("core: query without table")
	}
	if err := expr.Validate(q.Restriction); err != nil {
		return nil, err
	}
	// An index delivers the requested order forward; a descending
	// request is satisfied by scanning the same index in reverse.
	ordered := len(q.OrderBy) == 0 ||
		(s.Index != nil && s.Kind != StrategyTscan && s.Index.DeliversOrder(q.OrderBy))
	run := q
	if !ordered {
		inner := *q
		inner.OrderBy = nil
		inner.Projection = nil
		inner.Limit = 0
		run = &inner
	}
	r := &retrieval{q: run, cfg: cfg, ec: ec, out: &rowQueue{}, st: RetrievalStats{QueryID: nextQueryID()}}
	r.trc = &tracer{st: &r.st, sink: cfg.Trace, extra: ec.traceSink()}
	switch s.Kind {
	case StrategyTscan:
		r.tactic = tacticTscan
		r.fg = newTscan(ec, run, r.out, cfg.effectiveWorkers())
	case StrategySscan:
		if s.Index == nil {
			return nil, fmt.Errorf("core: Sscan strategy without index")
		}
		lo, hi, _, empty := s.Index.RestrictionBounds(run.Restriction, run.Binds)
		if empty {
			return fixedEmpty(r, s, "sscan"), nil
		}
		fg, err := newSscan(ec, run, s.Index, lo, hi, r.out, cfg.StepEntries, ordered && q.OrderDesc)
		if err != nil {
			return nil, err
		}
		r.tactic = tacticSscan
		r.fg = fg
	case StrategyFscan:
		if s.Index == nil {
			return nil, fmt.Errorf("core: Fscan strategy without index")
		}
		lo, hi, _, empty := s.Index.RestrictionBounds(run.Restriction, run.Binds)
		if empty {
			return fixedEmpty(r, s, "fscan"), nil
		}
		fg, err := newFscan(ec, run, s.Index, lo, hi, r.out, cfg.StepEntries, ordered && q.OrderDesc)
		if err != nil {
			return nil, err
		}
		r.tactic = tacticFscan
		r.fg = fg
	default:
		return nil, fmt.Errorf("core: unknown strategy %v", s.Kind)
	}
	r.trc.emit(TraceEvent{
		Kind: EvFixedPlan, Tactic: r.tactic.String(), Scan: s.String(),
		Detail: "frozen plan, no run-time switching",
	})
	if ordered {
		return r, nil
	}
	// Materialize and sort.
	var all []expr.Row
	for {
		row, ok, err := r.Next()
		if err != nil {
			r.Close()
			return nil, err
		}
		if !ok {
			break
		}
		all = append(all, row)
	}
	sortRows(all, q.OrderBy, q.OrderDesc)
	st := r.Stats()
	st.Tactic = "sort(" + st.Tactic + ")"
	return &sliceRows{q: q, rows: all, st: st}, nil
}

// fixedEmpty delivers the empty-range shortcut for a frozen plan.
func fixedEmpty(r *retrieval, s FixedStrategy, tactic string) Rows {
	r.trc.emit(TraceEvent{Kind: EvEmptyRange, Scan: s.String(), Detail: "frozen plan range empty, end of data at once"})
	st := r.st
	st.Tactic = tactic
	st.Strategy = s.String()
	return &emptyRows{stats: st}
}
