package core

import (
	"fmt"
	"strings"

	"rdbdyn/internal/estimate"
	"rdbdyn/internal/expr"
	"rdbdyn/internal/feedback"
	"rdbdyn/internal/rid"
	"rdbdyn/internal/storage"
)

// tacticKind names the arrangement chosen at start-retrieval time.
type tacticKind uint8

const (
	tacticTscan tacticKind = iota
	tacticSscan
	tacticFscan
	tacticBackgroundOnly
	tacticFastFirst
	tacticSorted
	tacticIndexOnly

	// tacticKindCount sizes per-tactic metric arrays.
	tacticKindCount
)

// backgroundScan is the contract between the retrieval and its
// background process: Jscan for AND restrictions, Uscan for OR-covered
// restrictions. The background produces either a complete RID list for
// the final stage or a Tscan recommendation, optionally feeding a
// borrow queue for the fast-first foreground.
type backgroundScan interface {
	stepper
	// bgComplete returns the completed RID list (nil when none).
	bgComplete() *rid.Container
	// bgNames lists the indexes that produced the list.
	bgNames() []string
	// bgRecommendTscan reports that sequential retrieval is optimal.
	bgRecommendTscan() bool
	// bgKill abandons the background, releasing its containers.
	bgKill()
	// closeBorrow stops feeding the borrow queue.
	closeBorrow()
	// borrowStreamComplete reports whether the borrow queue received
	// every candidate RID.
	borrowStreamComplete() bool
}

func (t tacticKind) String() string {
	switch t {
	case tacticTscan:
		return "tscan"
	case tacticSscan:
		return "sscan"
	case tacticFscan:
		return "fscan"
	case tacticBackgroundOnly:
		return "background-only"
	case tacticFastFirst:
		return "fast-first"
	case tacticSorted:
		return "sorted"
	case tacticIndexOnly:
		return "index-only"
	default:
		return "?"
	}
}

// retrieval is the single-table retrieval subsystem of Figure 4: a
// foreground process delivering records immediately, a background
// process running Jscan, and a final stage executed upon background
// completion as the alternative to foreground delivery. It implements
// Rows; each Next() advances the processes cooperatively (one
// foreground and one background step per round — the paper's equal
// proportional speeds) until a row is available.
type retrieval struct {
	q      *Query
	cfg    Config
	tactic tacticKind
	model  estimate.CostModel
	st     RetrievalStats
	// ec is the per-query execution context (nil = free). Its governor
	// rides inside every scan's tracker, so cancellation surfaces as
	// errors from the buffer pool; Next additionally checks it between
	// rounds so a cancelled query stops even while popping queued rows.
	ec *ExecCtx
	// trc stamps and fans out this retrieval's trace events; metrics is
	// the optimizer's shared registry (nil for fixed plans).
	trc     *tracer
	metrics *Metrics
	// fb, when non-nil, receives this retrieval's estimated-vs-actual
	// observations on completion (the feedback loop).
	fb *feedback.Registry
	// frozenReplay marks a plan-cache replay: it wins its tactic's
	// metric but feeds neither the estimate-error histogram nor the
	// feedback registry — a replay's "estimate" is the cached plan
	// itself, and folding it back in would only reinforce the cache.
	frozenReplay bool

	out *rowQueue

	fg  stepper        // may be nil
	bg  backgroundScan // may be nil
	fin *finalStage

	// fgEstTotal is the projected total cost of the foreground scan,
	// used by the index-only competition decision.
	fgEstTotal float64

	// retired holds replaced foreground steppers so their I/O stays in
	// the accounting.
	retired []stepper

	fgDone       bool
	fgTerminated bool
	bgDone       bool
	// bgStopped marks a background that was abandoned by the tactic
	// (as opposed to completing); a stopped background has no result.
	bgStopped  bool
	finDone    bool
	closed     bool
	released   bool
	statsFinal bool
	err        error
}

// release frees every stage's held resources (cursor pins, spilled
// containers), live and retired. Idempotent.
func (r *retrieval) release() {
	if r.released {
		return
	}
	r.released = true
	for _, s := range r.steppers() {
		s.release()
	}
}

// fail latches err as the retrieval's terminal error and unwinds: for an
// execution-context cancellation it emits the scan-abandoned events for
// still-live stages plus one query-cancelled event and records the
// cancellation metric (once per ExecCtx); for any error it releases all
// held resources and finalizes the stats. Returns err for convenience.
func (r *retrieval) fail(err error) error {
	if r.err == nil {
		r.err = err
	}
	if isCancellation(err) {
		if r.fg != nil && !r.fgDone && !r.fgTerminated {
			r.trc.emit(TraceEvent{
				Kind: EvScanAbandoned, Tactic: r.tactic.String(), Scan: r.fg.name(),
				ActualIO: r.fg.cost(), Detail: "unwound by execution context",
			})
		}
		if r.bg != nil && !r.bgDone {
			r.trc.emit(TraceEvent{
				Kind: EvScanAbandoned, Tactic: r.tactic.String(), Scan: r.bg.name(),
				Indexes: r.bg.bgNames(), ActualIO: r.bg.cost(), Detail: "unwound by execution context",
			})
		}
		if r.fin != nil && !r.finDone {
			r.trc.emit(TraceEvent{
				Kind: EvScanAbandoned, Tactic: r.tactic.String(), Scan: r.fin.name(),
				ActualIO: r.fin.cost(), Detail: "unwound by execution context",
			})
		}
		var io float64
		for _, s := range r.steppers() {
			io += s.cost()
		}
		r.trc.emit(TraceEvent{
			Kind: EvQueryCancelled, Tactic: r.tactic.String(), ActualIO: io,
			Detail: err.Error(),
		})
		if r.metrics != nil && r.ec.markCancelRecorded() {
			r.metrics.recordCancellation(err)
		}
	}
	r.closed = true
	r.release()
	r.finalizeStats()
	return err
}

// replaceFg swaps the foreground stepper, retiring the old one.
func (r *retrieval) replaceFg(s stepper) {
	if r.fg != nil {
		r.retired = append(r.retired, r.fg)
	}
	r.fg = s
	r.fgDone = false
	r.fgTerminated = false
}

func (r *retrieval) Stats() RetrievalStats {
	st := r.st
	st.Tactic = r.tactic.String()
	return st
}

func (r *retrieval) Close() error {
	r.closed = true
	r.release()
	r.finalizeStats()
	return nil
}

func (r *retrieval) Next() (expr.Row, bool, error) {
	if r.err != nil {
		return nil, false, r.err
	}
	if err := r.ec.Err(); err != nil {
		// The context tripped between calls (or before the first):
		// unwind before doing any work.
		return nil, false, r.fail(err)
	}
	for {
		if r.closed {
			r.release()
			r.finalizeStats()
			return nil, false, nil
		}
		if !r.out.empty() {
			row := r.out.pop()
			r.st.RowsDelivered++
			if r.fin == nil && !r.fgTerminated {
				r.st.FgRows++
			}
			if r.q.Limit > 0 && r.st.RowsDelivered >= r.q.Limit {
				// Forceful early termination: the fast-first payoff.
				r.closed = true
			}
			return row, true, nil
		}
		done, err := r.advance()
		if err != nil {
			return nil, false, r.fail(err)
		}
		if done && r.out.empty() {
			r.closed = true
			r.release()
			r.finalizeStats()
			return nil, false, nil
		}
	}
}

// advance runs one cooperative round. It returns true when every stage
// has finished.
func (r *retrieval) advance() (bool, error) {
	// Final stage, once entered, runs alone.
	if r.fin != nil {
		if r.finDone {
			return true, nil
		}
		done, err := r.fin.step()
		if err != nil {
			return false, err
		}
		r.finDone = done
		return done, nil
	}
	// Foreground slice.
	if r.fg != nil && !r.fgDone && !r.fgTerminated {
		done, err := r.fg.step()
		if err != nil {
			return false, err
		}
		if done {
			r.fgDone = true
			if err := r.onFgDone(); err != nil {
				return false, err
			}
		}
	}
	// Background slice.
	if r.bg != nil && !r.bgDone {
		done, err := r.bg.step()
		if err != nil {
			return false, err
		}
		if done {
			r.bgDone = true
			if err := r.onBgDone(); err != nil {
				return false, err
			}
		}
	}
	// Tactic-specific competition control between rounds.
	if err := r.control(); err != nil {
		return false, err
	}
	if r.fin != nil {
		return r.finDone, nil
	}
	fgOver := r.fg == nil || r.fgDone || r.fgTerminated
	bgOver := r.bg == nil || r.bgDone
	return fgOver && bgOver, nil
}

// onFgDone handles foreground completion.
func (r *retrieval) onFgDone() error {
	r.trc.emit(TraceEvent{
		Kind: EvScanComplete, Tactic: r.tactic.String(), Scan: r.fg.name(),
		ActualIO: r.fg.cost(), Detail: "foreground complete",
	})
	switch r.tactic {
	case tacticFastFirst:
		// The borrow stream ended. If the background's first scan
		// completed (rather than being abandoned), the foreground saw
		// every candidate RID and the retrieval is complete; kill the
		// background. Otherwise the background must finish the job.
		if r.bg != nil && !r.bgDone && r.bg.borrowStreamComplete() {
			r.stopBackground("foreground delivered everything")
		}
	case tacticSorted, tacticIndexOnly:
		// Quick foreground completion eliminates the background
		// overhead entirely.
		if r.bg != nil && !r.bgDone {
			r.stopBackground("foreground finished first")
		}
	}
	return nil
}

// onBgDone handles background (Jscan) completion.
func (r *retrieval) onBgDone() error {
	r.st.WinningOrder = append([]string(nil), r.bg.bgNames()...)
	if c := r.bg.bgComplete(); c != nil {
		r.st.FinalListLen = c.Len()
	} else {
		r.st.FinalListLen = -1
	}
	switch r.tactic {
	case tacticBackgroundOnly:
		if r.bg.bgRecommendTscan() {
			// Strategy switch: Jscan proved sequential retrieval
			// optimal.
			r.trc.emit(TraceEvent{
				Kind: EvStrategySwitch, Tactic: r.tactic.String(), Scan: "Tscan",
				Indexes: r.bg.bgNames(), EstimatedIO: r.model.TscanCost(), ActualIO: r.bg.cost(),
				Detail: "background recommends Tscan, switching",
			})
			r.replaceFg(newTscan(r.ec, r.q, r.out, tscanWidth(r.cfg, r.ec, r.trc, r.q, r.model.TscanCost())))
			return nil
		}
		return r.enterFinal(nil)
	case tacticFastFirst:
		if r.fgDone || r.fgTerminated {
			return r.bgResolveFastFirst()
		}
		// Foreground still draining borrowed RIDs; resolve in control.
		return nil
	case tacticSorted:
		// Deliver the filter to the running Fscan.
		if c := r.bg.bgComplete(); c != nil {
			f := c.Filter()
			if fs, ok := r.fg.(*fscan); ok && !r.fgDone {
				fs.setFilter(f.MayContain)
				r.trc.emit(TraceEvent{
					Kind: EvFilterInstalled, Tactic: r.tactic.String(), Scan: r.fg.name(),
					Indexes: r.bg.bgNames(), Detail: fmt.Sprintf("Jscan filter (%d rids) installed", c.Len()),
				})
			}
		}
		return nil
	case tacticIndexOnly:
		return r.bgResolveIndexOnly()
	}
	return nil
}

// bgResolveFastFirst finishes a fast-first retrieval whose foreground
// has stopped: the final stage delivers the remainder, filtering out
// already-delivered records; if Jscan recommended Tscan, a Tscan with
// the same exclusion runs instead.
func (r *retrieval) bgResolveFastFirst() error {
	delivered := r.fgDeliveredRIDs()
	if r.bg.bgRecommendTscan() {
		r.trc.emit(TraceEvent{
			Kind: EvStrategySwitch, Tactic: r.tactic.String(), Scan: "Tscan",
			EstimatedIO: r.model.TscanCost(), ActualIO: r.bg.cost(),
			Detail: "background recommends Tscan for the remainder",
		})
		ts := newTscan(r.ec, r.q, r.out, tscanWidth(r.cfg, r.ec, r.trc, r.q, r.model.TscanCost()))
		if len(delivered) > 0 {
			ts.exclude = rid.FromRIDs(delivered)
		}
		r.replaceFg(ts)
		return nil
	}
	return r.enterFinal(delivered)
}

// bgResolveIndexOnly applies the index-only rule: a completed Jscan
// with a small enough RID list abandons the Sscan in favor of the
// "sure" final-stage retrieval; otherwise the Sscan continues alone.
func (r *retrieval) bgResolveIndexOnly() error {
	if r.fgDone {
		return nil
	}
	if r.bg.bgRecommendTscan() || r.bg.bgComplete() == nil {
		r.trc.emit(TraceEvent{
			Kind: EvRaceResolved, Tactic: r.tactic.String(), Scan: r.fg.name(),
			Detail: "background produced nothing, Sscan continues",
		})
		return nil
	}
	finCost := r.model.JscanFinalCost(float64(r.bg.bgComplete().Len()))
	remaining := r.fgEstTotal - r.fg.cost()
	if remaining < 0 {
		remaining = 0
	}
	if finCost < remaining {
		r.trc.emit(TraceEvent{
			Kind: EvRaceResolved, Tactic: r.tactic.String(), Scan: "Fin", Indexes: r.bg.bgNames(),
			EstimatedIO: finCost, ActualIO: r.fg.cost(),
			Detail: fmt.Sprintf("final stage (%.0f) beats remaining Sscan (%.0f)", finCost, remaining),
		})
		r.trc.emit(TraceEvent{
			Kind: EvScanAbandoned, Tactic: r.tactic.String(), Scan: r.fg.name(),
			ActualIO: r.fg.cost(), Detail: "abandoning Sscan in favor of the sure final stage",
		})
		r.fgTerminated = true
		return r.enterFinal(r.fgDeliveredRIDs())
	}
	r.trc.emit(TraceEvent{
		Kind: EvRaceResolved, Tactic: r.tactic.String(), Scan: r.fg.name(),
		EstimatedIO: finCost, ActualIO: r.fg.cost(),
		Detail: fmt.Sprintf("Sscan remainder (%.0f) beats final stage (%.0f); Sscan continues", remaining, finCost),
	})
	return nil
}

// control applies per-round competition rules that are not triggered by
// stage completion.
func (r *retrieval) control() error {
	switch r.tactic {
	case tacticFastFirst:
		bf, ok := r.fg.(*borrowFetcher)
		if !ok {
			return nil
		}
		if bf.overflow && !r.fgTerminated {
			// Section 7: upon buffer overflow the foreground run is
			// terminated and the buffer passes to the final stage.
			r.trc.emit(TraceEvent{
				Kind: EvBorrowOverflow, Tactic: r.tactic.String(), Scan: bf.name(),
				ActualIO: bf.cost(),
				Detail:   fmt.Sprintf("foreground buffer overflow (%d delivered), switching to background tactic", len(bf.delivered)),
			})
			r.fgTerminated = true
			r.fgDone = true
			if r.bg != nil {
				r.bg.closeBorrow()
			}
			if r.bgDone {
				return r.bgResolveFastFirst()
			}
			return nil
		}
		if r.fgDone && r.bgDone && !r.bgStopped && r.fin == nil {
			return r.bgResolveFastFirst()
		}
	case tacticIndexOnly:
		// Section 7: upon foreground buffer overflow, Jscan terminates
		// and Sscan continues (the safer strategy).
		if ss, ok := r.fg.(*sscan); ok && r.bg != nil && !r.bgDone &&
			r.cfg.FgBufferCap > 0 && len(ss.delivered) >= r.cfg.FgBufferCap {
			r.trc.emit(TraceEvent{
				Kind: EvBorrowOverflow, Tactic: r.tactic.String(), Scan: r.fg.name(),
				ActualIO: r.fg.cost(),
				Detail:   fmt.Sprintf("delivered-RID buffer overflow (%d rids); Sscan is safer", len(ss.delivered)),
			})
			r.stopBackground("foreground buffer overflow; Sscan is safer")
		}
	}
	return nil
}

// enterFinal switches the retrieval into its final stage.
func (r *retrieval) enterFinal(delivered []storage.RID) error {
	width := r.cfg.effectiveWorkers()
	if r.q.Limit == 0 {
		// Only the uncapped final stage partitions; its appraised cost
		// is the fetch of the completed RID list.
		var finEst float64
		if c := r.bg.bgComplete(); c != nil {
			finEst = r.model.JscanFinalCost(float64(c.Len()))
		}
		width = decideWidth(r.cfg, r.ec, r.trc, "Fin", finEst)
	}
	fin, err := newFinalStage(r.ec, r.q, r.bg.bgComplete(), delivered, r.out, width)
	if err != nil {
		return err
	}
	r.fin = fin
	r.trc.emit(TraceEvent{
		Kind: EvFinalStage, Tactic: r.tactic.String(), Scan: "Fin", Indexes: r.bg.bgNames(),
		Detail: fmt.Sprintf("final stage over %d rids (excluding %d delivered)", len(fin.rids), len(delivered)),
	})
	return nil
}

// stopBackground abandons the background process.
func (r *retrieval) stopBackground(why string) {
	r.trc.emit(TraceEvent{
		Kind: EvScanAbandoned, Tactic: r.tactic.String(), Scan: r.bg.name(),
		Indexes: r.bg.bgNames(), ActualIO: r.bg.cost(), Detail: "stopping background: " + why,
	})
	r.bg.bgKill()
	r.bgDone = true
	r.bgStopped = true
}

// fgDeliveredRIDs returns the foreground's delivered-RID buffer.
func (r *retrieval) fgDeliveredRIDs() []storage.RID {
	switch fg := r.fg.(type) {
	case *borrowFetcher:
		return fg.delivered
	case *sscan:
		return fg.delivered
	default:
		return nil
	}
}

// steppers returns every stage, live or retired, for cost accounting.
func (r *retrieval) steppers() []stepper {
	out := append([]stepper(nil), r.retired...)
	if r.fg != nil {
		out = append(out, r.fg)
	}
	if r.bg != nil {
		out = append(out, r.bg)
	}
	if r.fin != nil {
		out = append(out, r.fin)
	}
	return out
}

// finalizeStats assembles the strategy description and I/O totals.
func (r *retrieval) finalizeStats() {
	if r.statsFinal {
		return
	}
	r.statsFinal = true
	var parts []string
	var io storage.IOStats
	for _, s := range r.retired {
		parts = append(parts, s.name())
	}
	if r.fg != nil {
		parts = append(parts, r.fg.name())
	}
	if r.bg != nil {
		parts = append(parts, r.bg.name()+"["+strings.Join(r.bg.bgNames(), ",")+"]")
	}
	if r.fin != nil {
		parts = append(parts, "Fin")
	}
	for _, s := range r.steppers() {
		io = io.Add(stepperIO(s))
	}
	r.st.IO = io
	r.st.Strategy = strings.Join(parts, "+")
	// A cancelled retrieval is not a tactic win, and its truncated I/O
	// would pollute the estimate-error histogram; it is counted by the
	// cancellation counters instead.
	if r.metrics != nil && !(r.err != nil && isCancellation(r.err)) {
		r.metrics.recordRetrieval(r.tactic, &r.st, !r.frozenReplay)
	}
	if r.fb != nil && r.err == nil && !r.frozenReplay {
		r.observeFeedback()
	}
}

// observeFeedback folds this retrieval's estimated-vs-actual numbers
// into the feedback registry. Pure arithmetic over already-recorded
// stats — no I/O, no locks beyond the registry's own.
func (r *retrieval) observeFeedback() {
	table := r.q.Table.Name
	// I/O: the projection made at decision time against the final
	// attributed I/O, keyed to the plan's driving index.
	predicted := float64(r.st.EstimateIO)
	var driving string
	for _, ev := range r.st.Events {
		if ev.Kind == EvTacticChosen {
			predicted += ev.EstimatedIO
			if len(ev.Indexes) > 0 {
				driving = ev.Indexes[0]
			}
			break
		}
	}
	if driving != "" {
		r.fb.ObserveIO(table, driving, predicted, float64(r.st.IO.IOCost()))
	}
	// Cardinality: a completed single-index background list is an exact
	// ground truth for that index's estimate. Multi-index lists measure
	// the intersection, not any one index, so they are not attributed.
	if r.st.FinalListLen >= 0 && len(r.st.WinningOrder) == 1 {
		win := r.st.WinningOrder[0]
		for _, es := range r.st.Estimates {
			if es.Index == win {
				if !es.Exact {
					r.fb.ObserveCardinality(table, win, es.RIDs, float64(r.st.FinalListLen))
				}
				break
			}
		}
	}
}

// stepperIO extracts the IOStats a stepper's meter accumulated.
func stepperIO(s stepper) storage.IOStats {
	switch t := s.(type) {
	case *tscan:
		return t.m.io()
	case *sscan:
		return t.m.io()
	case *fscan:
		return t.m.io()
	case *borrowFetcher:
		return t.m.io()
	case *jscan:
		return t.m.io()
	case *uscan:
		return t.m.io()
	case *finalStage:
		return t.m.io()
	default:
		return storage.IOStats{}
	}
}
