package core

import (
	"context"
	"testing"

	"rdbdyn/internal/estimate"
)

// TestBgKillHalfDeadRace kills a jscan mid-race after competition has
// already abandoned one leg (dead leg: cursor closed, pin released).
// bgKill must close only the live leg — releasing every remaining pin
// without double-closing the dead one — and stay idempotent.
func TestBgKillHalfDeadRace(t *testing.T) {
	f := newFixture(t, 2000, "AGE", "CITY")
	q := &Query{Table: f.tab, Goal: GoalTotalTime}

	ec := NewExecCtx(context.Background(), 0)
	cfg := DefaultConfig()
	model := estimate.CostModel{TablePages: f.tab.Pages(), TableRows: f.tab.Cardinality()}
	j := newJscan(ec, q, cfg, model, nil, nil, &tracer{st: &RetrievalStats{}})

	var legs []raceLeg
	for _, ix := range f.tab.Indexes {
		leg, ok := j.openLeg(estimate.IndexEstimate{Index: ix, RIDs: 1000})
		if !ok {
			t.Fatalf("openLeg(%s) failed", ix.Name)
		}
		legs = append(legs, leg)
	}
	if len(legs) != 2 {
		t.Fatalf("want 2 legs, got %d", len(legs))
	}
	j.race = &raceState{a: legs[0], b: legs[1]}
	if f.pool.PinnedPages() == 0 {
		t.Fatal("race legs should hold leaf pins")
	}

	// Competition kills leg A: it closes its own cursor immediately.
	j.race.a.dead = true
	j.race.a.cur.Close()

	j.bgKill()
	if n := f.pool.PinnedPages(); n != 0 {
		t.Fatalf("%d pages still pinned after bgKill of half-dead race", n)
	}
	if j.race != nil || !j.done {
		t.Fatal("bgKill must clear the race and mark the scan done")
	}
	// Idempotent: release() funnels into bgKill and may run again during
	// unwind.
	j.bgKill()
	j.release()
	if n := f.pool.PinnedPages(); n != 0 {
		t.Fatalf("%d pages pinned after repeated bgKill", n)
	}
}

// TestBgKillBothLegsDead: the both-dead shape (each cursor already
// closed by competition) must also release cleanly.
func TestBgKillBothLegsDead(t *testing.T) {
	f := newFixture(t, 1000, "AGE", "CITY")
	q := &Query{Table: f.tab, Goal: GoalTotalTime}
	ec := NewExecCtx(context.Background(), 0)
	model := estimate.CostModel{TablePages: f.tab.Pages(), TableRows: f.tab.Cardinality()}
	j := newJscan(ec, q, DefaultConfig(), model, nil, nil, &tracer{st: &RetrievalStats{}})

	a, ok := j.openLeg(estimate.IndexEstimate{Index: f.tab.Indexes[0], RIDs: 500})
	if !ok {
		t.Fatal("openLeg A")
	}
	b, ok := j.openLeg(estimate.IndexEstimate{Index: f.tab.Indexes[1], RIDs: 500})
	if !ok {
		t.Fatal("openLeg B")
	}
	j.race = &raceState{a: a, b: b}
	j.race.a.dead = true
	j.race.a.cur.Close()
	j.race.b.dead = true
	j.race.b.cur.Close()

	j.bgKill()
	if n := f.pool.PinnedPages(); n != 0 {
		t.Fatalf("%d pages pinned after bgKill of dead race", n)
	}
}
