package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"rdbdyn/internal/catalog"
	"rdbdyn/internal/expr"
	"rdbdyn/internal/storage"
)

// fixture builds a PEOPLE table: ID sequential, AGE uniform [0,100),
// CITY Zipf-ish skewed over [0,100), SALARY float, NAME string.
type fixture struct {
	cat  *catalog.Catalog
	tab  *catalog.Table
	pool *storage.BufferPool
	rows []expr.Row
}

func newFixture(t testing.TB, n int, indexes ...string) *fixture {
	t.Helper()
	pool := storage.NewBufferPool(storage.NewDisk(4096), 0)
	cat := catalog.New(pool)
	tab, err := cat.CreateTable("PEOPLE", []catalog.Column{
		{Name: "ID", Type: expr.TypeInt},
		{Name: "AGE", Type: expr.TypeInt},
		{Name: "CITY", Type: expr.TypeInt},
		{Name: "SALARY", Type: expr.TypeFloat},
		{Name: "NAME", Type: expr.TypeString},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, ix := range indexes {
		cols := strings.Split(ix, "+")
		if _, err := tab.CreateIndex("IX_"+ix, cols...); err != nil {
			t.Fatal(err)
		}
	}
	f := &fixture{cat: cat, tab: tab, pool: pool}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < n; i++ {
		city := int64(0)
		// Skewed: 60% city 0, the rest spread.
		if rng.Intn(10) >= 6 {
			city = 1 + rng.Int63n(99)
		}
		row := expr.Row{
			expr.Int(int64(i)),
			expr.Int(rng.Int63n(100)),
			expr.Int(city),
			expr.Float(float64(rng.Intn(100000)) / 10),
			expr.Str(fmt.Sprintf("name-%04d", rng.Intn(500))),
		}
		if _, err := tab.Insert(row); err != nil {
			t.Fatal(err)
		}
		f.rows = append(f.rows, row)
	}
	return f
}

func (f *fixture) col(t testing.TB, name string) int {
	t.Helper()
	i, err := f.tab.ColumnIndex(name)
	if err != nil {
		t.Fatal(err)
	}
	return i
}

// naive computes the expected result set by in-memory evaluation.
func (f *fixture) naive(t testing.TB, q *Query) []expr.Row {
	t.Helper()
	var out []expr.Row
	for _, row := range f.rows {
		keep, err := expr.EvalPred(q.Restriction, row, q.Binds)
		if err != nil {
			t.Fatal(err)
		}
		if keep {
			out = append(out, q.project(row))
		}
	}
	return out
}

// rowKey canonicalizes a row for multiset comparison.
func rowKey(r expr.Row) string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.String()
	}
	return strings.Join(parts, "|")
}

func drain(t testing.TB, rows Rows) []expr.Row {
	t.Helper()
	var out []expr.Row
	for {
		row, ok, err := rows.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if !ok {
			break
		}
		out = append(out, row)
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	return out
}

// sameMultiset fails the test unless got and want contain the same rows
// (any order).
func sameMultiset(t testing.TB, got, want []expr.Row, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d rows, want %d", label, len(got), len(want))
	}
	g := make([]string, len(got))
	w := make([]string, len(want))
	for i := range got {
		g[i] = rowKey(got[i])
		w[i] = rowKey(want[i])
	}
	sort.Strings(g)
	sort.Strings(w)
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: multiset mismatch at %d:\n got %s\nwant %s", label, i, g[i], w[i])
		}
	}
}

func TestInferGoal(t *testing.T) {
	cases := []struct {
		ctl  ControlNode
		user Goal
		want Goal
	}{
		{ControlExists, GoalDefault, GoalFastFirst},
		{ControlLimit, GoalTotalTime, GoalFastFirst},
		{ControlSort, GoalFastFirst, GoalTotalTime},
		{ControlAggregate, GoalDefault, GoalTotalTime},
		{ControlNone, GoalFastFirst, GoalFastFirst},
		{ControlNone, GoalDefault, GoalTotalTime},
	}
	for _, c := range cases {
		if got := InferGoal(c.ctl, c.user); got != c.want {
			t.Errorf("InferGoal(%v, %v) = %v, want %v", c.ctl, c.user, got, c.want)
		}
	}
}

func TestClassify(t *testing.T) {
	f := newFixture(t, 500, "AGE", "CITY+AGE")
	age, city := f.col(t, "AGE"), f.col(t, "CITY")
	q := &Query{
		Table: f.tab,
		Restriction: expr.NewAnd(
			expr.NewCmp(expr.GT, expr.Col(age, "AGE"), expr.Lit(expr.Int(30))),
			expr.NewCmp(expr.EQ, expr.Col(city, "CITY"), expr.Lit(expr.Int(5))),
		),
		Projection: []int{age, city},
	}
	cl := Classify(q)
	// IX_CITY+AGE covers AGE and CITY: self-sufficient; IX_AGE is
	// fetch-needed only if it doesn't cover (it doesn't: CITY needed).
	if len(cl.SelfSufficient) != 1 || cl.SelfSufficient[0].Name != "IX_CITY+AGE" {
		t.Fatalf("self-sufficient: %+v", cl.SelfSufficient)
	}
	if len(cl.FetchNeeded) != 1 || cl.FetchNeeded[0].Name != "IX_AGE" {
		t.Fatalf("fetch-needed: %+v", cl.FetchNeeded)
	}
	// Order on CITY,AGE: delivered by IX_CITY+AGE.
	q.OrderBy = []int{city, age}
	cl = Classify(q)
	if len(cl.OrderNeeded) != 1 {
		t.Fatalf("order-needed: %+v", cl.OrderNeeded)
	}
	// With full projection, no index is self-sufficient.
	q.Projection = nil
	cl = Classify(q)
	if len(cl.SelfSufficient) != 0 {
		t.Fatalf("full projection should defeat self-sufficiency: %+v", cl.SelfSufficient)
	}
}

func TestTscanWhenNoIndexes(t *testing.T) {
	f := newFixture(t, 2000)
	age := f.col(t, "AGE")
	q := &Query{
		Table:       f.tab,
		Restriction: expr.NewCmp(expr.LT, expr.Col(age, "AGE"), expr.Lit(expr.Int(10))),
	}
	o := NewOptimizer(DefaultConfig())
	rows := o.Run(q)
	got := drain(t, rows)
	sameMultiset(t, got, f.naive(t, q), "tscan")
	st := rows.Stats()
	if st.Tactic != "tscan" {
		t.Fatalf("tactic = %s", st.Tactic)
	}
}

func TestEmptyRangeShortcut(t *testing.T) {
	f := newFixture(t, 2000, "AGE")
	age := f.col(t, "AGE")
	q := &Query{
		Table:       f.tab,
		Restriction: expr.NewCmp(expr.GE, expr.Col(age, "AGE"), expr.Lit(expr.Int(200))),
	}
	o := NewOptimizer(DefaultConfig())
	f.pool.ResetStats()
	rows := o.Run(q)
	got := drain(t, rows)
	if len(got) != 0 {
		t.Fatalf("got %d rows", len(got))
	}
	if rows.Stats().Tactic != "empty-range" {
		t.Fatalf("tactic = %s", rows.Stats().Tactic)
	}
	// The shortcut must not have scanned anything: only estimation I/O.
	if c := f.pool.Stats().IOCost(); c > 10 {
		t.Fatalf("empty-range shortcut cost %d I/Os", c)
	}
}

func TestHostVariableChangesStrategy(t *testing.T) {
	// The paper's Section 4 example: the same prepared query with a
	// host variable must resolve to index retrieval on one run and
	// sequential retrieval on another. ID is unique, so the selective
	// binding touches only a handful of pages.
	f := newFixture(t, 20000, "ID")
	id := f.col(t, "ID")
	mk := func(a1 int64) *Query {
		return &Query{
			Table:       f.tab,
			Restriction: expr.NewCmp(expr.GE, expr.Col(id, "ID"), expr.Var("A1")),
			Binds:       expr.Bindings{"A1": expr.Int(a1)},
		}
	}
	o := NewOptimizer(DefaultConfig())

	// A1 = 19990: ten rows; the dynamic optimizer should resolve it
	// via the RID list, far cheaper than Tscan.
	f.pool.EvictAll()
	f.pool.ResetStats()
	qSmall := mk(19990)
	got := drain(t, o.Run(qSmall))
	sameMultiset(t, got, f.naive(t, qSmall), "A1=19990")
	smallCost := f.pool.Stats().IOCost()

	// A1 = 0: everything matches; Jscan must abandon and fall back to
	// Tscan-equivalent cost, not pay index scan + random fetches.
	f.pool.EvictAll()
	f.pool.ResetStats()
	qAll := mk(0)
	got = drain(t, o.Run(qAll))
	sameMultiset(t, got, f.naive(t, qAll), "A1=0")
	allCost := f.pool.Stats().IOCost()

	tscanCost := int64(f.tab.Pages())
	if smallCost > tscanCost/4 {
		t.Fatalf("selective run cost %d should be far below Tscan %d", smallCost, tscanCost)
	}
	// Dynamic all-rows run should stay within a small factor of Tscan
	// (estimation + abandoned scan overhead only).
	if allCost > 3*tscanCost {
		t.Fatalf("non-selective run cost %d should stay near Tscan %d", allCost, tscanCost)
	}
}

func TestBackgroundOnlyIntersectsIndexes(t *testing.T) {
	f := newFixture(t, 10000, "AGE", "CITY")
	age, city := f.col(t, "AGE"), f.col(t, "CITY")
	q := &Query{
		Table: f.tab,
		Restriction: expr.NewAnd(
			expr.NewCmp(expr.LT, expr.Col(age, "AGE"), expr.Lit(expr.Int(20))),
			expr.NewCmp(expr.EQ, expr.Col(city, "CITY"), expr.Lit(expr.Int(7))),
		),
		Goal: GoalTotalTime,
	}
	o := NewOptimizer(DefaultConfig())
	rows := o.Run(q)
	got := drain(t, rows)
	sameMultiset(t, got, f.naive(t, q), "background-only")
	st := rows.Stats()
	if st.Tactic != "background-only" {
		t.Fatalf("tactic = %s (trace: %v)", st.Tactic, st.Trace)
	}
	if st.FinalListLen < 0 {
		t.Fatalf("expected a final RID list; trace: %v", st.Trace)
	}
}

func TestJscanRecommendsTscanOnHugeRanges(t *testing.T) {
	f := newFixture(t, 10000, "AGE")
	age := f.col(t, "AGE")
	q := &Query{
		Table:       f.tab,
		Restriction: expr.NewCmp(expr.GE, expr.Col(age, "AGE"), expr.Lit(expr.Int(1))),
		Goal:        GoalTotalTime,
	}
	o := NewOptimizer(DefaultConfig())
	rows := o.Run(q)
	got := drain(t, rows)
	sameMultiset(t, got, f.naive(t, q), "tscan-recommend")
	st := rows.Stats()
	if !strings.Contains(st.Strategy, "Tscan") {
		t.Fatalf("expected Tscan in strategy %q; trace: %v", st.Strategy, st.Trace)
	}
}

func TestFastFirstDeliversEarlyAndCheap(t *testing.T) {
	f := newFixture(t, 20000, "CITY")
	city := f.col(t, "CITY")
	q := &Query{
		Table:       f.tab,
		Restriction: expr.NewCmp(expr.EQ, expr.Col(city, "CITY"), expr.Lit(expr.Int(13))),
		Limit:       3,
		Control:     ControlLimit, // infers fast-first
	}
	o := NewOptimizer(DefaultConfig())
	f.pool.EvictAll()
	f.pool.ResetStats()
	rows := o.Run(q)
	got := drain(t, rows)
	if len(got) != 3 {
		t.Fatalf("limit 3 delivered %d", len(got))
	}
	st := rows.Stats()
	if st.Tactic != "fast-first" {
		t.Fatalf("tactic = %s", st.Tactic)
	}
	cost := f.pool.Stats().IOCost()
	if cost > int64(f.tab.Pages())/5 {
		t.Fatalf("fast-first early termination cost %d too close to Tscan %d", cost, f.tab.Pages())
	}
	// Every delivered row satisfies the restriction.
	for _, r := range got {
		if r[city].I != 13 {
			t.Fatalf("row %v fails restriction", r)
		}
	}
}

func TestFastFirstCompletesFullyWithoutDuplicates(t *testing.T) {
	f := newFixture(t, 10000, "CITY")
	city := f.col(t, "CITY")
	q := &Query{
		Table:       f.tab,
		Restriction: expr.NewCmp(expr.EQ, expr.Col(city, "CITY"), expr.Lit(expr.Int(22))),
		Goal:        GoalFastFirst,
	}
	o := NewOptimizer(DefaultConfig())
	rows := o.Run(q)
	got := drain(t, rows)
	sameMultiset(t, got, f.naive(t, q), "fast-first full drain")
}

func TestFastFirstOverflowSwitchesToFinal(t *testing.T) {
	f := newFixture(t, 10000, "CITY")
	city := f.col(t, "CITY")
	q := &Query{
		Table:       f.tab,
		Restriction: expr.NewCmp(expr.GE, expr.Col(city, "CITY"), expr.Lit(expr.Int(50))),
		Goal:        GoalFastFirst,
	}
	cfg := DefaultConfig()
	cfg.FgBufferCap = 16 // force overflow quickly
	o := NewOptimizer(cfg)
	rows := o.Run(q)
	got := drain(t, rows)
	sameMultiset(t, got, f.naive(t, q), "fast-first overflow")
	st := rows.Stats()
	if !hasEvent(st, EvBorrowOverflow, "") {
		t.Fatalf("expected a borrow-overflow event in trace: %v", st.Trace)
	}
}

func TestSortedTacticOrderAndFilter(t *testing.T) {
	f := newFixture(t, 10000, "AGE", "CITY")
	age, city := f.col(t, "AGE"), f.col(t, "CITY")
	q := &Query{
		Table: f.tab,
		Restriction: expr.NewAnd(
			expr.NewCmp(expr.GE, expr.Col(age, "AGE"), expr.Lit(expr.Int(10))),
			expr.NewCmp(expr.EQ, expr.Col(city, "CITY"), expr.Lit(expr.Int(3))),
		),
		OrderBy: []int{age},
		// The sorted tactic is the paper's fast-first + order
		// arrangement; total-time ordered queries may choose
		// materialize-and-sort instead.
		Goal: GoalFastFirst,
	}
	o := NewOptimizer(DefaultConfig())
	rows := o.Run(q)
	got := drain(t, rows)
	sameMultiset(t, got, f.naive(t, q), "sorted tactic")
	// Order check.
	for i := 1; i < len(got); i++ {
		if got[i][age].I < got[i-1][age].I {
			t.Fatalf("order violated at %d", i)
		}
	}
	st := rows.Stats()
	if st.Tactic != "sorted" && st.Tactic != "fscan" {
		t.Fatalf("tactic = %s; trace: %v", st.Tactic, st.Trace)
	}
	// A total-time ordered query over a huge range should instead fall
	// back to materialize-and-sort when the ordered Fscan is projected
	// to lose.
	q2 := &Query{
		Table:       f.tab,
		Restriction: expr.NewCmp(expr.GE, expr.Col(age, "AGE"), expr.Lit(expr.Int(0))),
		OrderBy:     []int{age},
		Goal:        GoalTotalTime,
	}
	rows2 := o.Run(q2)
	got2 := drain(t, rows2)
	sameMultiset(t, got2, f.naive(t, q2), "ordered total-time fallback")
	if !strings.HasPrefix(rows2.Stats().Tactic, "sort(") {
		t.Fatalf("expected sort fallback, got %s", rows2.Stats().Tactic)
	}
}

func TestSortFallbackWithoutOrderIndex(t *testing.T) {
	f := newFixture(t, 3000, "CITY")
	age, city := f.col(t, "AGE"), f.col(t, "CITY")
	q := &Query{
		Table:       f.tab,
		Restriction: expr.NewCmp(expr.EQ, expr.Col(city, "CITY"), expr.Lit(expr.Int(2))),
		OrderBy:     []int{age},
		Projection:  []int{age, city},
	}
	o := NewOptimizer(DefaultConfig())
	rows := o.Run(q)
	got := drain(t, rows)
	sameMultiset(t, got, f.naive(t, q), "sort fallback")
	for i := 1; i < len(got); i++ {
		if got[i][0].I < got[i-1][0].I {
			t.Fatalf("sort fallback order violated")
		}
	}
	if !strings.HasPrefix(rows.Stats().Tactic, "sort(") {
		t.Fatalf("tactic = %s", rows.Stats().Tactic)
	}
}

func TestIndexOnlyTactic(t *testing.T) {
	f := newFixture(t, 10000, "AGE+ID", "CITY")
	age, city, id := f.col(t, "AGE"), f.col(t, "CITY"), f.col(t, "ID")
	q := &Query{
		Table: f.tab,
		Restriction: expr.NewAnd(
			expr.NewCmp(expr.LT, expr.Col(age, "AGE"), expr.Lit(expr.Int(30))),
			expr.NewCmp(expr.GE, expr.Col(city, "CITY"), expr.Lit(expr.Int(0))),
		),
		Projection: []int{age, id},
		Goal:       GoalTotalTime,
	}
	// IX_AGE+ID covers AGE and ID (restriction uses CITY though, so it
	// is NOT self-sufficient). Rework: restriction only on AGE.
	q.Restriction = expr.NewCmp(expr.LT, expr.Col(age, "AGE"), expr.Lit(expr.Int(30)))
	o := NewOptimizer(DefaultConfig())
	rows := o.Run(q)
	got := drain(t, rows)
	sameMultiset(t, got, f.naive(t, q), "sscan static")
	if st := rows.Stats(); st.Tactic != "sscan" {
		t.Fatalf("tactic = %s; trace: %v", st.Tactic, st.Trace)
	}
	// Now add a CITY conjunct that IX_CITY can prefilter: index-only
	// competition (self-sufficient candidate is gone, so rebuild with a
	// covered restriction plus a fetch-needed index).
	q2 := &Query{
		Table: f.tab,
		Restriction: expr.NewAnd(
			expr.NewCmp(expr.LT, expr.Col(age, "AGE"), expr.Lit(expr.Int(30))),
			expr.NewCmp(expr.LT, expr.Col(id, "ID"), expr.Lit(expr.Int(5000))),
		),
		Projection: []int{age, id},
		Goal:       GoalTotalTime,
	}
	rows = o.Run(q2)
	got = drain(t, rows)
	sameMultiset(t, got, f.naive(t, q2), "index-only")
}

func TestSscanEmptyRange(t *testing.T) {
	f := newFixture(t, 1000, "AGE+ID")
	age, id := f.col(t, "AGE"), f.col(t, "ID")
	q := &Query{
		Table:       f.tab,
		Restriction: expr.NewCmp(expr.EQ, expr.Col(age, "AGE"), expr.Lit(expr.Int(500))),
		Projection:  []int{age, id},
	}
	o := NewOptimizer(DefaultConfig())
	got := drain(t, o.Run(q))
	if len(got) != 0 {
		t.Fatalf("got %d rows", len(got))
	}
}

func TestPreviousOrderReused(t *testing.T) {
	f := newFixture(t, 10000, "AGE", "CITY")
	age, city := f.col(t, "AGE"), f.col(t, "CITY")
	q := &Query{
		Table: f.tab,
		Restriction: expr.NewAnd(
			expr.NewCmp(expr.LT, expr.Col(age, "AGE"), expr.Lit(expr.Int(50))),
			expr.NewCmp(expr.EQ, expr.Col(city, "CITY"), expr.Lit(expr.Int(9))),
		),
		Goal: GoalTotalTime,
	}
	o := NewOptimizer(DefaultConfig())
	rows := o.Run(q)
	drain(t, rows)
	st := rows.Stats()
	if len(st.WinningOrder) == 0 {
		t.Skipf("no winning order recorded (trace: %v)", st.Trace)
	}
	if got := o.prevOrder[f.tab.Name]; len(got) == 0 {
		t.Fatal("optimizer did not record the winning order")
	}
}

func TestErrorsSurfaceThroughRows(t *testing.T) {
	f := newFixture(t, 100, "AGE")
	q := &Query{
		Table:       f.tab,
		Restriction: expr.NewCmp(expr.GE, expr.Col(f.col(t, "AGE"), "AGE"), expr.Var("UNBOUND_TYPED")),
	}
	// Unbound parameter: not sargable, so Tscan runs and hits the
	// evaluation error on the first row.
	o := NewOptimizer(DefaultConfig())
	rows := o.Run(q)
	_, _, err := rows.Next()
	if err == nil {
		t.Fatal("expected unbound-parameter error")
	}
	// The error is sticky.
	if _, _, err2 := rows.Next(); err2 == nil {
		t.Fatal("error must be sticky")
	}
}

func TestInvalidQueryRejected(t *testing.T) {
	f := newFixture(t, 10)
	o := NewOptimizer(DefaultConfig())
	if _, _, err := o.Run(&Query{Table: nil}).Next(); err == nil {
		t.Fatal("nil table accepted")
	}
	if _, _, err := o.Run(&Query{Table: f.tab, Projection: []int{99}}).Next(); err == nil {
		t.Fatal("bad projection accepted")
	}
	bad := &expr.Cmp{Op: expr.EQ, L: expr.Col(0, "ID"), R: nil}
	if _, _, err := o.Run(&Query{Table: f.tab, Restriction: bad}).Next(); err == nil {
		t.Fatal("invalid expression accepted")
	}
}

// TestRandomizedAgainstNaive is the main correctness property: random
// queries over random data through the full dynamic optimizer must
// return exactly the naive evaluation's multiset, for every tactic the
// planner happens to pick.
func TestRandomizedAgainstNaive(t *testing.T) {
	f := newFixture(t, 8000, "AGE", "CITY", "ID", "AGE+CITY")
	age, city, id := f.col(t, "AGE"), f.col(t, "CITY"), f.col(t, "ID")
	rng := rand.New(rand.NewSource(99))
	o := NewOptimizer(DefaultConfig())
	tactics := map[string]int{}
	randCmp := func() expr.Expr {
		col, lim := age, int64(100)
		switch rng.Intn(3) {
		case 1:
			col, lim = city, 100
		case 2:
			col, lim = id, 8000
		}
		ops := []expr.CmpOp{expr.EQ, expr.LT, expr.LE, expr.GT, expr.GE}
		return expr.NewCmp(ops[rng.Intn(len(ops))], expr.Col(col, f.tab.Columns[col].Name), expr.Lit(expr.Int(rng.Int63n(lim))))
	}
	for trial := 0; trial < 60; trial++ {
		var restriction expr.Expr
		switch rng.Intn(4) {
		case 0:
			restriction = randCmp()
		case 1:
			restriction = expr.NewAnd(randCmp(), randCmp())
		case 2:
			restriction = expr.NewAnd(randCmp(), randCmp(), randCmp())
		case 3:
			restriction = expr.NewOr(randCmp(), randCmp())
		}
		q := &Query{Table: f.tab, Restriction: restriction}
		if rng.Intn(2) == 0 {
			q.Goal = GoalFastFirst
		}
		if rng.Intn(4) == 0 {
			q.OrderBy = []int{age}
		}
		rows := o.Run(q)
		got := drain(t, rows)
		want := f.naive(t, q)
		tactics[rows.Stats().Tactic]++
		if len(got) != len(want) {
			t.Fatalf("trial %d (%s, tactic %s): got %d rows, want %d\ntrace: %v",
				trial, restriction, rows.Stats().Tactic, len(got), len(want), rows.Stats().Trace)
		}
		sameMultiset(t, got, want, fmt.Sprintf("trial %d (%s)", trial, restriction))
	}
	t.Logf("tactics exercised: %v", tactics)
	if len(tactics) < 3 {
		t.Fatalf("randomized test exercised too few tactics: %v", tactics)
	}
}

func TestStaticThresholdBaselineStillCorrect(t *testing.T) {
	f := newFixture(t, 8000, "AGE", "CITY")
	age, city := f.col(t, "AGE"), f.col(t, "CITY")
	q := &Query{
		Table: f.tab,
		Restriction: expr.NewAnd(
			expr.NewCmp(expr.LT, expr.Col(age, "AGE"), expr.Lit(expr.Int(40))),
			expr.NewCmp(expr.EQ, expr.Col(city, "CITY"), expr.Lit(expr.Int(4))),
		),
		Goal: GoalTotalTime,
	}
	cfg := DefaultConfig()
	cfg.StaticThresholds = true
	o := NewOptimizer(cfg)
	got := drain(t, o.Run(q))
	sameMultiset(t, got, f.naive(t, q), "static thresholds")
}

func TestDisableCompetitionStillCorrect(t *testing.T) {
	f := newFixture(t, 8000, "AGE", "CITY")
	age := f.col(t, "AGE")
	q := &Query{
		Table:       f.tab,
		Restriction: expr.NewCmp(expr.GE, expr.Col(age, "AGE"), expr.Lit(expr.Int(5))),
		Goal:        GoalTotalTime,
	}
	cfg := DefaultConfig()
	cfg.DisableCompetition = true
	o := NewOptimizer(cfg)
	got := drain(t, o.Run(q))
	sameMultiset(t, got, f.naive(t, q), "no competition")
}

func TestCloseEarlyIsSafe(t *testing.T) {
	f := newFixture(t, 5000, "CITY")
	city := f.col(t, "CITY")
	q := &Query{
		Table:       f.tab,
		Restriction: expr.NewCmp(expr.GE, expr.Col(city, "CITY"), expr.Lit(expr.Int(0))),
		Goal:        GoalFastFirst,
	}
	o := NewOptimizer(DefaultConfig())
	rows := o.Run(q)
	// Pull two rows then close (the paper's forceful termination).
	for i := 0; i < 2; i++ {
		if _, ok, err := rows.Next(); err != nil || !ok {
			t.Fatalf("pull %d: %v %v", i, ok, err)
		}
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := rows.Next(); ok || err != nil {
		t.Fatalf("Next after Close: %v %v", ok, err)
	}
}
