package core

import (
	"math/rand"
	"strings"
	"testing"

	"rdbdyn/internal/catalog"
	"rdbdyn/internal/expr"
	"rdbdyn/internal/storage"
)

// wideFixture builds a table with wide rows (few rows per page) so
// selectivities in the percent range behave like the paper's: random
// fetches genuinely cost pages. Columns: ID (sequential), A, B
// (uniform [0,10000)), PAD.
func wideFixture(t testing.TB, n int, indexes ...string) *fixture {
	t.Helper()
	pool := storage.NewBufferPool(storage.NewDisk(4096), 256)
	cat := catalog.New(pool)
	tab, err := cat.CreateTable("W", []catalog.Column{
		{Name: "ID", Type: expr.TypeInt},
		{Name: "A", Type: expr.TypeInt},
		{Name: "B", Type: expr.TypeInt},
		{Name: "PAD", Type: expr.TypeString},
	})
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{cat: cat, tab: tab, pool: pool}
	for _, ix := range indexes {
		if _, err := tab.CreateIndex("IX_"+ix, strings.Split(ix, "+")...); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < n; i++ {
		row := expr.Row{
			expr.Int(int64(i)),
			expr.Int(rng.Int63n(10000)),
			expr.Int(rng.Int63n(10000)),
			expr.Str(strings.Repeat("p", 60)),
		}
		if _, err := tab.Insert(row); err != nil {
			t.Fatal(err)
		}
		f.rows = append(f.rows, row)
	}
	return f
}

// TestIndexOnlyJscanWinsAndSscanIsAbandoned forces the index-only
// competition to resolve in Jscan's favor: a wide covering-index range
// against a very selective fetch-needed index.
func TestIndexOnlyJscanWinsAndSscanIsAbandoned(t *testing.T) {
	f := wideFixture(t, 30000, "A+B", "B")
	aCol, _ := f.tab.ColumnIndex("A")
	bCol, _ := f.tab.ColumnIndex("B")
	q := &Query{
		Table: f.tab,
		Restriction: expr.NewAnd(
			expr.NewCmp(expr.LT, expr.Col(aCol, "A"), expr.Lit(expr.Int(9000))),
			expr.NewCmp(expr.LT, expr.Col(bCol, "B"), expr.Lit(expr.Int(40))),
		),
		Projection: []int{aCol, bCol},
		Goal:       GoalTotalTime,
	}
	o := NewOptimizer(DefaultConfig())
	rows := o.Run(q)
	got := drain(t, rows)
	sameMultiset(t, got, f.naive(t, q), "index-only jscan wins")
	st := rows.Stats()
	if st.Tactic != "index-only" {
		t.Fatalf("tactic = %s (trace %v)", st.Tactic, st.Trace)
	}
	if !hasEvent(st, EvRaceResolved, "") {
		t.Fatalf("expected a race-resolved event; trace: %v", st.Trace)
	}
	abandoned := false
	for _, ev := range st.Events {
		if ev.Kind == EvScanAbandoned && strings.Contains(ev.Scan, "Sscan") {
			abandoned = true
		}
	}
	if !abandoned {
		t.Fatalf("expected the Sscan to be abandoned for the final stage; trace: %v", st.Trace)
	}
	if !strings.Contains(st.Strategy, "Fin") {
		t.Fatalf("strategy %q should include the final stage", st.Strategy)
	}
}

// TestJscanMidScanAbandonment forces a sequential Jscan scan to be
// abandoned by the projection criterion mid-run (not by the pre-check):
// the first index's estimate is fine but the candidate acceptance rate
// projects a final cost near the Tscan guarantee.
func TestJscanMidScanAbandonment(t *testing.T) {
	f := wideFixture(t, 30000, "A")
	aCol, _ := f.tab.ColumnIndex("A")
	// ~28% of rows: the projected final fetch cost saturates the
	// Cardenas bound and crosses 95% of the Tscan guarantee mid-scan.
	q := &Query{
		Table:       f.tab,
		Restriction: expr.NewCmp(expr.LT, expr.Col(aCol, "A"), expr.Lit(expr.Int(2800))),
		Goal:        GoalTotalTime,
	}
	o := NewOptimizer(DefaultConfig())
	rows := o.Run(q)
	got := drain(t, rows)
	sameMultiset(t, got, f.naive(t, q), "mid-scan abandonment")
	st := rows.Stats()
	if !hasEvent(st, EvScanAbandoned, "IX_A") {
		t.Fatalf("expected mid-scan abandonment of IX_A; trace: %v", st.Trace)
	}
	if !strings.Contains(st.Strategy, "Tscan") {
		t.Fatalf("strategy %q should have switched to Tscan", st.Strategy)
	}
}

// TestUnionFastFirstEarlyCloseKillsBackground exercises the uscan
// bgKill path: the caller closes the retrieval while the union is still
// scanning.
func TestUnionFastFirstEarlyCloseKillsBackground(t *testing.T) {
	f := wideFixture(t, 20000, "A", "B")
	aCol, _ := f.tab.ColumnIndex("A")
	bCol, _ := f.tab.ColumnIndex("B")
	q := &Query{
		Table: f.tab,
		Restriction: expr.NewOr(
			expr.NewCmp(expr.LT, expr.Col(aCol, "A"), expr.Lit(expr.Int(1000))),
			expr.NewCmp(expr.LT, expr.Col(bCol, "B"), expr.Lit(expr.Int(1000))),
		),
		Goal: GoalFastFirst,
	}
	o := NewOptimizer(DefaultConfig())
	rows := o.Run(q)
	for i := 0; i < 3; i++ {
		if _, ok, err := rows.Next(); err != nil || !ok {
			t.Fatalf("pull %d: %v %v", i, ok, err)
		}
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := rows.Next(); ok {
		t.Fatal("rows after Close")
	}
	// The stats must still assemble cleanly.
	st := rows.Stats()
	if st.Tactic != "fast-first" {
		t.Fatalf("tactic = %s", st.Tactic)
	}
}

// TestRunFixedThroughCorePackage exercises RunFixed within the core
// package (frozen strategies are otherwise only tested from planner).
func TestRunFixedThroughCorePackage(t *testing.T) {
	f := wideFixture(t, 2000, "A")
	aCol, _ := f.tab.ColumnIndex("A")
	q := &Query{
		Table:       f.tab,
		Restriction: expr.NewCmp(expr.LT, expr.Col(aCol, "A"), expr.Lit(expr.Int(500))),
	}
	for _, s := range []FixedStrategy{
		{Kind: StrategyTscan},
		{Kind: StrategyFscan, Index: f.tab.Indexes[0]},
	} {
		rows := RunFixed(q, s, DefaultConfig())
		got := drain(t, rows)
		sameMultiset(t, got, f.naive(t, q), "fixed "+s.String())
	}
	// Goal strings render.
	for _, g := range []Goal{GoalDefault, GoalFastFirst, GoalTotalTime} {
		if g.String() == "" {
			t.Fatal("empty goal string")
		}
	}
}
