package core

import (
	"fmt"
	"strings"
)

// EventKind classifies a competition decision. Every run-time choice the
// dynamic optimizer makes — tactic selection, scan starts, abandonments,
// strategy switches, race outcomes — is recorded as exactly one kind, so
// behavioural assertions match on structure instead of grepping strings.
type EventKind uint8

// Event kinds, in rough lifecycle order of a retrieval.
const (
	// EvTacticChosen records the arrangement picked at start-retrieval
	// time (Section 7); its EstimatedIO is the projected cost of the
	// chosen plan at decision time.
	EvTacticChosen EventKind = iota
	// EvScanStarted marks a scan (or one continued race leg) opening.
	EvScanStarted
	// EvScanComplete marks a scan running to the end of its range.
	EvScanComplete
	// EvScanAbandoned marks the two-stage competition (Section 6)
	// killing a scan: skipped outright, abandoned mid-flight, a dead
	// race leg, or a stopped background.
	EvScanAbandoned
	// EvStrategySwitch marks the retrieval replacing its strategy
	// mid-run, e.g. Jscan proving sequential retrieval optimal.
	EvStrategySwitch
	// EvRaceStarted marks two adjacent indexes scanning simultaneously
	// (Section 6's limited dynamic reordering).
	EvRaceStarted
	// EvRaceResolved marks a race decided: a winner adopted, both legs
	// dead, the memory budget hit, or the index-only Sscan-vs-Jscan
	// competition settled.
	EvRaceResolved
	// EvBorrowOverflow marks the foreground delivered-RID buffer
	// overflowing, terminating the foreground run (Section 7).
	EvBorrowOverflow
	// EvEmptyRange marks the empty-range shortcut: all retrieval stages
	// cancelled, end of data delivered at once.
	EvEmptyRange
	// EvFilterInstalled marks the sorted tactic handing the completed
	// Jscan filter to the running Fscan.
	EvFilterInstalled
	// EvFinalStage marks the retrieval entering its final stage.
	EvFinalStage
	// EvFixedPlan marks a frozen (static-baseline) plan executing.
	EvFixedPlan
	// EvQueryCancelled marks a retrieval unwound by its execution
	// context: caller cancellation, deadline expiry, or I/O-budget
	// exhaustion. Its ActualIO is the I/O invested before the unwind and
	// its Detail names the cause.
	EvQueryCancelled
	// EvJoinOrderChosen records the join order the greedy planner picked
	// at start time (Indexes carries the table order); EstimatedIO is the
	// projected cost of the full plan.
	EvJoinOrderChosen
	// EvJoinStageStarted marks one join stage opening: Scan names the
	// operator, Indexes the [table, probe index] pair, EstimatedIO the
	// stage's estimated output cardinality.
	EvJoinStageStarted
	// EvJoinReoptimized marks the join executor revising its plan
	// mid-flight — operator fallback within a stage or re-ordering of the
	// remaining tables — after actual cardinality diverged from the
	// estimate past the configured factor.
	EvJoinReoptimized
	// EvPlanCaptureRejected marks a retrieval whose outcome the plan
	// cache refused to freeze (join plans are never frozen).
	EvPlanCaptureRejected
	// EvParallelWidthChosen records the adaptive parallelism policy
	// picking a scan's worker width (only emitted under
	// Config.AdaptiveParallelism): Width carries the decision,
	// EstimatedIO the scan's appraised cost, and Detail the inputs —
	// the ceiling, the live load, and the per-worker startup cost.
	EvParallelWidthChosen
	// EvParallelEarlyCancel marks a Limit-capped partitioned scan
	// cancelling its sibling workers because the first workers to fill
	// already collected enough candidates; ActualIO is the scan's
	// attributed I/O at the barrier.
	EvParallelEarlyCancel
	// EvJoinSortAvoided marks an ORDER BY join skipping its final
	// materialized sort because the surviving stage order already
	// satisfied the requested order.
	EvJoinSortAvoided
)

func (k EventKind) String() string {
	switch k {
	case EvTacticChosen:
		return "tactic-chosen"
	case EvScanStarted:
		return "scan-started"
	case EvScanComplete:
		return "scan-complete"
	case EvScanAbandoned:
		return "scan-abandoned"
	case EvStrategySwitch:
		return "strategy-switch"
	case EvRaceStarted:
		return "race-started"
	case EvRaceResolved:
		return "race-resolved"
	case EvBorrowOverflow:
		return "borrow-overflow"
	case EvEmptyRange:
		return "empty-range"
	case EvFilterInstalled:
		return "filter-installed"
	case EvFinalStage:
		return "final-stage"
	case EvFixedPlan:
		return "fixed-plan"
	case EvQueryCancelled:
		return "query-cancelled"
	case EvJoinOrderChosen:
		return "join-order-chosen"
	case EvJoinStageStarted:
		return "join-stage-started"
	case EvJoinReoptimized:
		return "join-reoptimized"
	case EvPlanCaptureRejected:
		return "plan-capture-rejected"
	case EvParallelWidthChosen:
		return "parallel-width-chosen"
	case EvParallelEarlyCancel:
		return "parallel-early-cancel"
	case EvJoinSortAvoided:
		return "join-sort-avoided"
	default:
		return "?"
	}
}

// TraceEvent is one competition decision. The human-readable lines in
// RetrievalStats.Trace are renderings of these events (String).
type TraceEvent struct {
	// QueryID identifies the retrieval the event belongs to (unique per
	// process), so a shared sink can partition interleaved streams.
	QueryID uint64
	// Seq is the event's position within its retrieval's stream,
	// starting at 0.
	Seq  int
	Kind EventKind
	// Tactic is the tactic in effect ("" before one is chosen).
	Tactic string
	// Scan names the scan or stage concerned, e.g. "Jscan" or
	// "Sscan(AGE_IX)".
	Scan string
	// Indexes lists the indexes involved in the decision.
	Indexes []string
	// EstimatedIO is the projected I/O relevant to the decision (0 when
	// no projection was available).
	EstimatedIO float64
	// ActualIO is the I/O already invested in the concerned scan (or
	// stage) at decision time.
	ActualIO float64
	// Width is the worker width chosen for the scan (set only on
	// EvParallelWidthChosen).
	Width int
	// Detail is free-form human context; never assert on it.
	Detail string
}

// String renders the event as one human-readable trace line.
func (e TraceEvent) String() string {
	var b strings.Builder
	b.WriteString(e.Kind.String())
	if e.Tactic != "" {
		fmt.Fprintf(&b, " [%s]", e.Tactic)
	}
	if e.Scan != "" {
		b.WriteString(" ")
		b.WriteString(e.Scan)
	}
	if len(e.Indexes) > 0 {
		fmt.Fprintf(&b, " %v", e.Indexes)
	}
	if e.Width > 0 {
		fmt.Fprintf(&b, " width=%d", e.Width)
	}
	if e.Detail != "" {
		b.WriteString(": ")
		b.WriteString(e.Detail)
	}
	if e.EstimatedIO != 0 || e.ActualIO != 0 {
		fmt.Fprintf(&b, " (est I/O %.0f, actual I/O %.0f)", e.EstimatedIO, e.ActualIO)
	}
	return b.String()
}

// TraceSink receives every event of every retrieval as it is emitted.
// Run may be called from many goroutines at once, so a sink must be
// safe for concurrent Event calls; events of one retrieval arrive in
// Seq order, but events of different retrievals interleave. The sink
// must not block: it runs inside the retrieval's step loop.
type TraceSink interface {
	Event(TraceEvent)
}

// tracer stamps and fans out one retrieval's events: into the
// retrieval's own stats (Events + rendered Trace), the cumulative
// metrics registry, and the user's sink. It is confined to the
// retrieval's goroutine; only the metrics and sink are shared.
type tracer struct {
	st      *RetrievalStats
	sink    TraceSink
	extra   TraceSink // optional per-query sink carried by the ExecCtx
	metrics *Metrics
}

func (t *tracer) emit(ev TraceEvent) {
	if t == nil || t.st == nil {
		return
	}
	ev.QueryID = t.st.QueryID
	ev.Seq = len(t.st.Events)
	t.st.Events = append(t.st.Events, ev)
	t.st.Trace = append(t.st.Trace, ev.String())
	if t.metrics != nil {
		t.metrics.onEvent(ev)
	}
	if t.sink != nil {
		t.sink.Event(ev)
	}
	if t.extra != nil {
		t.extra.Event(ev)
	}
}
