package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"rdbdyn/internal/catalog"
	"rdbdyn/internal/estimate"
	"rdbdyn/internal/expr"
	"rdbdyn/internal/storage"
)

// Optimizer is the dynamic optimizer. It keeps cross-run state: the
// winning index order of previous retrievals on each table (used to
// pre-arrange the next initial stage) and cached cluster-ratio samples
// per index.
//
// Run may be called from many goroutines at once; mu guards the shared
// cross-run state (rng, prevOrder, cluster). Each retrieval's own state
// lives in the returned Rows and is confined to its caller.
type Optimizer struct {
	cfg       Config
	metrics   *Metrics
	mu        sync.Mutex
	rng       *rand.Rand
	prevOrder map[string][]string
	cluster   map[*catalog.Index]float64
}

// NewOptimizer creates a dynamic optimizer with the given
// configuration. Zero-valued Config fields are merged with the paper's
// defaults field by field (Config.WithDefaults), so a partial Config
// keeps its explicit settings.
func NewOptimizer(cfg Config) *Optimizer {
	return &Optimizer{
		cfg:       cfg.WithDefaults(),
		metrics:   &Metrics{},
		rng:       rand.New(rand.NewSource(1)),
		prevOrder: make(map[string][]string),
		cluster:   make(map[*catalog.Index]float64),
	}
}

// Config returns the optimizer's configuration.
func (o *Optimizer) Config() Config { return o.cfg }

// Metrics returns the optimizer's cumulative telemetry registry.
func (o *Optimizer) Metrics() *Metrics { return o.metrics }

// Run plans and starts a retrieval for q, choosing the tactic
// dynamically at start-retrieval time (Sections 4–7). The returned Rows
// is lazy: scans advance as the caller pulls. Run is the free-context
// entry point (no cancellation, no deadline, no budget); RunCtx and
// RunExec are the governed ones.
func (o *Optimizer) Run(q *Query) Rows { return o.RunExec(nil, q) }

// RunCtx is Run honoring ctx: cancellation and deadline stop the
// retrieval within one simulated page I/O, and a WithIOBudget budget
// carried by ctx bounds its attributed I/O.
func (o *Optimizer) RunCtx(ctx context.Context, q *Query) Rows {
	return o.RunExec(NewExecCtx(ctx, 0), q)
}

// RunExec runs q under the given execution context (nil = free).
func (o *Optimizer) RunExec(ec *ExecCtx, q *Query) Rows {
	o.metrics.recordQuery()
	rows, err := o.run(ec, q)
	if err != nil {
		if isCancellation(err) && ec.markCancelRecorded() {
			o.metrics.recordCancellation(err)
		}
		return errRows{err: err}
	}
	return rows
}

func (o *Optimizer) run(ec *ExecCtx, q *Query) (Rows, error) {
	if err := ec.Err(); err != nil {
		return nil, err
	}
	if q.Table == nil {
		return nil, fmt.Errorf("core: query without table")
	}
	if err := expr.Validate(q.Restriction); err != nil {
		return nil, err
	}
	for _, c := range append(append([]int(nil), q.Projection...), q.OrderBy...) {
		if c < 0 || c >= len(q.Table.Columns) {
			return nil, fmt.Errorf("core: column position %d out of range", c)
		}
	}
	goal := q.EffectiveGoal()
	cl := Classify(q)

	// A contradictory sargable range makes the whole conjunction
	// unsatisfiable: cancel all retrieval stages and deliver the "end
	// of data" condition at once, before any estimation I/O is spent.
	if cl.EmptyRange {
		st := RetrievalStats{FinalListLen: -1, QueryID: nextQueryID(), Tactic: "empty-range"}
		trc := &tracer{st: &st, sink: o.cfg.Trace, extra: ec.traceSink(), metrics: o.metrics}
		trc.emit(TraceEvent{Kind: EvEmptyRange, Detail: "contradictory sargable range, end of data at once"})
		return &emptyRows{stats: st}, nil
	}

	// Order requested but no index delivers it: classic SORT node over
	// a total-time retrieval.
	if len(q.OrderBy) > 0 && len(cl.OrderNeeded) == 0 {
		return o.runSorted(ec, q)
	}

	// Initial stage over the fetch-needed indexes. The prevOrder slice
	// is replaced wholesale by the observer, never mutated, so reading
	// its elements outside the lock is safe.
	o.mu.Lock()
	prev := o.prevOrder[q.Table.Name]
	o.mu.Unlock()
	opts := estimate.Options{
		ShortRange:    o.cfg.ShortRange,
		PreviousOrder: prev,
		Governor:      ec.Governor(),
		Correction:    o.cfg.Feedback.CorrectionFor(q.Table.Name),
	}
	res, err := estimate.Appraise(cl.FetchNeeded, q.Restriction, q.Binds, opts)
	if err != nil {
		return nil, err
	}
	st := RetrievalStats{EstimateIO: res.TotalCost, FinalListLen: -1, QueryID: nextQueryID()}
	for _, e := range res.Estimates {
		st.Estimates = append(st.Estimates, EstimateSummary{Index: e.Index.Name, RIDs: e.RIDs, Exact: e.Exact})
	}
	if res.EmptyRange {
		st.Tactic = "empty-range"
		trc := &tracer{st: &st, sink: o.cfg.Trace, extra: ec.traceSink(), metrics: o.metrics}
		trc.emit(TraceEvent{Kind: EvEmptyRange, Detail: "initial stage: empty range, end of data at once"})
		return &emptyRows{stats: st}, nil
	}

	model := o.costModel(q, cl)
	r := &retrieval{q: q, cfg: o.cfg, model: model, st: st, ec: ec, out: &rowQueue{}, metrics: o.metrics, fb: o.cfg.Feedback}
	r.trc = &tracer{st: &r.st, sink: o.cfg.Trace, extra: ec.traceSink(), metrics: o.metrics}

	switch {
	case len(q.OrderBy) > 0:
		alt, err := o.planOrdered(ec, q, cl, res, r)
		if err != nil {
			return nil, err
		}
		if alt != nil {
			return alt, nil
		}
	case len(cl.SelfSufficient) > 0:
		if err := o.planWithSelfSufficient(ec, q, cl, res, r); err != nil {
			return nil, err
		}
	case len(res.Estimates) > 0:
		if goal == GoalFastFirst {
			o.planFastFirst(ec, q, res, r, model)
		} else {
			o.planBackgroundOnly(ec, q, res, r, model)
		}
	default:
		// No conjunct-level index use. A top-level OR whose disjuncts
		// are all index-coverable can still be resolved by a union
		// scan; otherwise the classical sequential retrieval remains.
		ptr := storage.NewTracker(ec.Governor())
		legs := unionLegs(q, ptr)
		r.st.EstimateIO += ptr.IOCost()
		if legs != nil {
			o.planUnion(ec, q, legs, r, model, goal)
		} else {
			r.tactic = tacticTscan
			r.fg = newTscan(ec, q, r.out, tscanWidth(o.cfg, ec, r.trc, q, model.TscanCost()))
			r.trc.emit(TraceEvent{
				Kind: EvTacticChosen, Tactic: r.tactic.String(), Scan: "Tscan",
				EstimatedIO: model.TscanCost(), Detail: "no useful index",
			})
		}
	}
	return r, nil
}

// planUnion arranges a union scan as the background process, under the
// same background-only / fast-first choreography as Jscan.
func (o *Optimizer) planUnion(ec *ExecCtx, q *Query, legs []unionLeg, r *retrieval, model estimate.CostModel, goal Goal) {
	var (
		names    []string
		totalEst float64
	)
	for _, l := range legs {
		names = append(names, l.Index.Name)
		totalEst += l.Est
	}
	unionEst := model.JscanFinalCost(totalEst)
	if goal == GoalFastFirst {
		r.tactic = tacticFastFirst
		borrow := &ridQueue{}
		r.bg = newUscan(ec, q, o.cfg, model, legs, borrow, r.trc)
		r.fg = newBorrowFetcher(ec, q, borrow, r.out, o.cfg.FgBufferCap)
		r.trc.emit(TraceEvent{
			Kind: EvTacticChosen, Tactic: r.tactic.String(), Scan: "Uscan", Indexes: names,
			EstimatedIO: unionEst, Detail: fmt.Sprintf("fast-first over a %d-leg union", len(legs)),
		})
		return
	}
	r.tactic = tacticBackgroundOnly
	r.bg = newUscan(ec, q, o.cfg, model, legs, nil, r.trc)
	r.trc.emit(TraceEvent{
		Kind: EvTacticChosen, Tactic: r.tactic.String(), Scan: "Uscan", Indexes: names,
		EstimatedIO: unionEst, Detail: fmt.Sprintf("background-only union over %d disjunct legs", len(legs)),
	})
}

// runSorted wraps a total-time retrieval in a SORT (the paper's goal
// inference treats SORT as a total-time controller).
func (o *Optimizer) runSorted(ec *ExecCtx, q *Query) (Rows, error) {
	inner := *q
	inner.OrderBy = nil
	inner.Projection = nil
	inner.Limit = 0
	inner.Control = ControlSort
	src, err := o.run(ec, &inner)
	if err != nil {
		return nil, err
	}
	var all []expr.Row
	for {
		row, ok, err := src.Next()
		if err != nil {
			src.Close()
			return nil, err
		}
		if !ok {
			break
		}
		all = append(all, row)
	}
	if err := src.Close(); err != nil {
		return nil, err
	}
	sortRows(all, q.OrderBy, q.OrderDesc)
	st := src.Stats()
	st.Tactic = "sort(" + st.Tactic + ")"
	return &sliceRows{q: q, rows: all, st: st}, nil
}

// sliceRows delivers pre-materialized rows with projection and limit.
type sliceRows struct {
	q    *Query
	rows []expr.Row
	i    int
	st   RetrievalStats
}

func (s *sliceRows) Next() (expr.Row, bool, error) {
	if s.i >= len(s.rows) || (s.q.Limit > 0 && s.st.RowsDelivered >= s.q.Limit) {
		return nil, false, nil
	}
	row := s.q.project(s.rows[s.i])
	s.i++
	s.st.RowsDelivered++
	return row, true, nil
}

func (s *sliceRows) Close() error          { return nil }
func (s *sliceRows) Stats() RetrievalStats { return s.st }

// costModel builds the I/O cost model for q, sampling the cluster ratio
// of the most relevant index once and caching it.
func (o *Optimizer) costModel(q *Query, cl Classification) estimate.CostModel {
	m := estimate.CostModel{
		TablePages: q.Table.Pages(),
		TableRows:  q.Table.Cardinality(),
	}
	// Cluster ratio of the first fetch-needed index dominates fetch
	// costs; sample it lazily. Sampling is cheap (a few ranked
	// descents) but not free, which mirrors the paper's point that
	// clustering "may be hard to detect".
	if len(cl.FetchNeeded) > 0 {
		ix := cl.FetchNeeded[0]
		o.mu.Lock()
		r, ok := o.cluster[ix]
		if !ok {
			var err error
			r, err = ix.EstimateClusterRatio(o.rng, 16)
			if err != nil {
				r = 0
			}
			o.cluster[ix] = r
		}
		o.mu.Unlock()
		m.ClusterRatio = r
	}
	return m
}

// observer returns the jscan completion hook that records the winning
// index order for the next run's pre-arrangement.
func (o *Optimizer) observer(q *Query) func([]string) {
	return func(names []string) {
		if len(names) > 0 {
			o.mu.Lock()
			o.prevOrder[q.Table.Name] = names
			o.mu.Unlock()
		}
	}
}

// planBackgroundOnly: total-time, fetch-needed indexes only.
func (o *Optimizer) planBackgroundOnly(ec *ExecCtx, q *Query, res estimate.Result, r *retrieval, model estimate.CostModel) {
	r.tactic = tacticBackgroundOnly
	j := newJscan(ec, q, o.cfg, model, res.Estimates, nil, r.trc)
	j.onDone = o.observer(q)
	r.bg = j
	r.trc.emit(TraceEvent{
		Kind: EvTacticChosen, Tactic: r.tactic.String(), Scan: "Jscan", Indexes: estNames(res.Estimates),
		EstimatedIO: bgPlanEst(model, res.Estimates[0]),
		Detail:      fmt.Sprintf("background-only over %d indexes", len(res.Estimates)),
	})
}

// planFastFirst: fast-first, fetch-needed indexes only. The background
// Jscan feeds the foreground borrow fetcher; racing is disabled so the
// borrow stream comes from a single stable first scan.
func (o *Optimizer) planFastFirst(ec *ExecCtx, q *Query, res estimate.Result, r *retrieval, model estimate.CostModel) {
	r.tactic = tacticFastFirst
	cfg := o.cfg
	cfg.RaceFactor = -1
	borrow := &ridQueue{}
	j := newJscan(ec, q, cfg, model, res.Estimates, borrow, r.trc)
	j.onDone = o.observer(q)
	r.bg = j
	r.fg = newBorrowFetcher(ec, q, borrow, r.out, cfg.FgBufferCap)
	r.trc.emit(TraceEvent{
		Kind: EvTacticChosen, Tactic: r.tactic.String(), Scan: "Jscan", Indexes: estNames(res.Estimates),
		EstimatedIO: bgPlanEst(model, res.Estimates[0]),
		Detail:      "fast-first, foreground borrows from " + res.Estimates[0].Index.Name,
	})
}

// planWithSelfSufficient: a self-sufficient index is available. With no
// fetch-needed competition it is the statically clear Sscan; otherwise
// the index-only tactic races the best Sscan against Jscan.
func (o *Optimizer) planWithSelfSufficient(ec *ExecCtx, q *Query, cl Classification, res estimate.Result, r *retrieval) error {
	best, bestCost, bestLo, bestHi, bestEmpty, err := o.bestSscan(ec, q, cl.SelfSufficient)
	if err != nil {
		return err
	}
	if bestEmpty {
		r.tactic = tacticSscan
		r.trc.emit(TraceEvent{Kind: EvEmptyRange, Scan: "Sscan", Indexes: []string{best.Name}, Detail: "sscan range empty, end of data at once"})
		r.closed = true
		return nil
	}
	fg, err := newSscan(ec, q, best, bestLo, bestHi, r.out, o.cfg.StepEntries, false)
	if err != nil {
		return err
	}
	r.fg = fg
	r.fgEstTotal = bestCost
	if len(res.Estimates) == 0 {
		r.tactic = tacticSscan
		r.trc.emit(TraceEvent{
			Kind: EvTacticChosen, Tactic: r.tactic.String(), Scan: fg.name(), Indexes: []string{best.Name},
			EstimatedIO: bestCost, Detail: "lone self-sufficient index",
		})
		return nil
	}
	r.tactic = tacticIndexOnly
	j := newJscan(ec, q, o.cfg, r.model, res.Estimates, nil, r.trc)
	j.onDone = o.observer(q)
	r.bg = j
	r.trc.emit(TraceEvent{
		Kind: EvTacticChosen, Tactic: r.tactic.String(), Scan: fg.name(),
		Indexes:     append([]string{best.Name}, estNames(res.Estimates)...),
		EstimatedIO: bestCost,
		Detail:      fmt.Sprintf("Sscan(%s) races Jscan over %d indexes", best.Name, len(res.Estimates)),
	})
	return nil
}

// estNames lists the index names of an estimate slice.
func estNames(ests []estimate.IndexEstimate) []string {
	out := make([]string, len(ests))
	for i, e := range ests {
		out[i] = e.Index.Name
	}
	return out
}

// bgPlanEst is the optimistic projected I/O of a background plan: scan
// the most selective index, then fetch its RID list in the final stage.
// Pure arithmetic over already-computed estimates — no I/O.
func bgPlanEst(model estimate.CostModel, e estimate.IndexEstimate) float64 {
	return model.LeafPages(e.RIDs, e.Index.Tree.AvgLeafEntries()) +
		float64(e.Index.Tree.Height()) + model.JscanFinalCost(e.RIDs)
}

// bestSscan picks the cheapest self-sufficient index by estimated scan
// cost over its restriction bounds.
func (o *Optimizer) bestSscan(ec *ExecCtx, q *Query, cands []*catalog.Index) (best *catalog.Index, bestCost float64, bestLo, bestHi []byte, empty bool, err error) {
	bestCost = math.Inf(1)
	tr := storage.NewTracker(ec.Governor())
	for _, ix := range cands {
		lo, hi, _, emptyRg := ix.RestrictionBounds(q.Restriction, q.Binds)
		if emptyRg {
			return ix, 0, nil, nil, true, nil
		}
		rids, _, err := ix.Tree.EstimateRangeRefinedTracked(lo, hi, tr)
		if err != nil {
			return nil, 0, nil, nil, false, err
		}
		m := estimate.CostModel{TablePages: q.Table.Pages(), TableRows: q.Table.Cardinality()}
		cost := m.SscanCost(rids, ix.Tree.AvgLeafEntries(), ix.Tree.Height())
		if cost < bestCost {
			best, bestCost, bestLo, bestHi = ix, cost, lo, hi
		}
	}
	return best, bestCost, bestLo, bestHi, false, nil
}

// planOrdered: an order-needed index exists. If one is also
// self-sufficient, an ordered Sscan answers everything; otherwise the
// sorted tactic runs an order-delivering Fscan cooperating with a
// filter-producing Jscan over the remaining fetch-needed indexes.
//
// The sorted tactic is a fast-first arrangement (the paper presents it
// for "fast-first optimization [where] at least one [index] delivers
// the requested order"). Under a total-time goal the optimizer first
// compares the order-index Fscan against materialize-and-sort over a
// sequential scan and takes the cheaper estimate — an ordered Fscan
// over a wide range costs one random fetch per row, which loses badly
// to sort(Tscan).
func (o *Optimizer) planOrdered(ec *ExecCtx, q *Query, cl Classification, res estimate.Result, r *retrieval) (Rows, error) {
	// Prefer an order-needed index that is also self-sufficient.
	for _, ix := range cl.OrderNeeded {
		if ix.Covers(q.neededColumns()) {
			lo, hi, _, empty := ix.RestrictionBounds(q.Restriction, q.Binds)
			if empty {
				// Contradictory range: cancel all stages, end of data
				// at once, zero scan I/O.
				r.tactic = tacticSscan
				r.trc.emit(TraceEvent{Kind: EvEmptyRange, Scan: "Sscan", Indexes: []string{ix.Name}, Detail: "ordered range empty, end of data at once"})
				r.closed = true
				return nil, nil
			}
			fg, err := newSscan(ec, q, ix, lo, hi, r.out, o.cfg.StepEntries, q.OrderDesc)
			if err != nil {
				return nil, err
			}
			r.tactic = tacticSscan
			r.fg = fg
			r.trc.emit(TraceEvent{
				Kind: EvTacticChosen, Tactic: r.tactic.String(), Scan: fg.name(), Indexes: []string{ix.Name},
				Detail: "self-sufficient order-needed index",
			})
			return nil, nil
		}
	}
	ordIx := cl.OrderNeeded[0]
	ordLo, ordHi, _, ordEmpty := ordIx.RestrictionBounds(q.Restriction, q.Binds)
	if ordEmpty {
		r.tactic = tacticFscan
		r.trc.emit(TraceEvent{Kind: EvEmptyRange, Scan: "Fscan", Indexes: []string{ordIx.Name}, Detail: "ordered range empty, end of data at once"})
		r.closed = true
		return nil, nil
	}
	var fscanEst float64
	if q.EffectiveGoal() != GoalFastFirst {
		rids, _, err := ordIx.Tree.EstimateRangeRefinedTracked(ordLo, ordHi, storage.NewTracker(ec.Governor()))
		if err != nil {
			return nil, err
		}
		fscanEst = r.model.FscanCost(rids, ordIx.Tree.AvgLeafEntries(), ordIx.Tree.Height())
		if fscanEst > r.model.TscanCost() {
			// Ordered Fscan loses to materialize-and-sort: delegate.
			return o.runSorted(ec, q)
		}
	}
	fg, err := newFscan(ec, q, ordIx, ordLo, ordHi, r.out, o.cfg.StepEntries, q.OrderDesc)
	if err != nil {
		return nil, err
	}
	r.fg = fg
	// Jscan over the other fetch-needed indexes produces the pre-fetch
	// filter.
	var others []estimate.IndexEstimate
	for _, e := range res.Estimates {
		if e.Index != ordIx {
			others = append(others, e)
		}
	}
	if len(others) == 0 {
		r.tactic = tacticFscan
		r.trc.emit(TraceEvent{
			Kind: EvTacticChosen, Tactic: r.tactic.String(), Scan: fg.name(), Indexes: []string{ordIx.Name},
			EstimatedIO: fscanEst, Detail: "ordered plain Fscan",
		})
		return nil, nil
	}
	r.tactic = tacticSorted
	// The filter is the only useful Jscan outcome here: no temp-table
	// spill, the bitmap absorbs overflow (Section 7, sorted tactic).
	cfg := o.cfg
	cfg.RID.FilterOnly = true
	j := newJscan(ec, q, cfg, r.model, others, nil, r.trc)
	j.onDone = o.observer(q)
	r.bg = j
	r.trc.emit(TraceEvent{
		Kind: EvTacticChosen, Tactic: r.tactic.String(), Scan: fg.name(),
		Indexes:     append([]string{ordIx.Name}, estNames(others)...),
		EstimatedIO: fscanEst,
		Detail:      fmt.Sprintf("Fscan(%s) + filter Jscan(%d indexes)", ordIx.Name, len(others)),
	})
	return nil, nil
}
