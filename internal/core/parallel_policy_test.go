package core

import (
	"reflect"
	"testing"

	"rdbdyn/internal/estimate"
	"rdbdyn/internal/expr"
	"rdbdyn/internal/rid"
	"rdbdyn/internal/storage"
)

// TestAdaptiveWidthPolicy pins PlanParallelWidth's choices over an
// estimate × load grid. The formula cost(k) = estIO/k + startup·(k-1)
// has a closed-form minimizer k* ≈ sqrt(estIO/startup); these cases pin
// the discrete scan's behaviour at the boundaries: the width-1 floor
// for small scans (estIO <= 2·startup ties to sequential), the
// square-root growth region, the load-shrunk ceiling, and the hard
// maxParallelism clamp.
func TestAdaptiveWidthPolicy(t *testing.T) {
	cases := []struct {
		name    string
		estIO   float64
		max     int
		load    float64
		startup float64
		want    int
	}{
		{"zero estimate stays sequential", 0, 64, 0, 2, 1},
		{"tie resolves to smaller width", 4, 64, 0, 2, 1}, // cost(2) == cost(1)
		{"just past the tie fans to 2", 5, 64, 0, 2, 2},
		{"sqrt region: estIO 32 -> 4", 32, 64, 0, 2, 4},
		{"sqrt region: estIO 128 -> 8", 128, 64, 0, 2, 8},
		{"sqrt region: estIO 2048 -> 32", 2048, 64, 0, 2, 32},
		{"huge scan hits the ceiling", 1e9, 64, 0, 2, 64},
		{"ceiling clamps to maxParallelism", 1e9, 1000, 0, 2, maxParallelism},
		{"half load halves the ceiling", 1e9, 64, 0.5, 2, 32},
		{"three-quarter load", 1e9, 64, 0.75, 2, 16},
		{"saturated engine stays sequential", 1e9, 64, 1, 2, 1},
		{"load over 1 clamps", 1e9, 64, 2.5, 2, 1},
		{"free workers take the whole budget", 10, 4, 0, 0, 4},
		{"negative startup means free", 10, 4, 0, -3, 4},
		{"small scan under load", 5, 64, 0.9, 2, 2}, // ceiling 6, k*=~1.6 -> 2
		{"max 1 has no decision", 1e9, 1, 0, 2, 1},
	}
	for _, c := range cases {
		if got := PlanParallelWidth(c.estIO, c.max, c.load, c.startup); got != c.want {
			t.Errorf("%s: PlanParallelWidth(%g, %d, %g, %g) = %d, want %d",
				c.name, c.estIO, c.max, c.load, c.startup, got, c.want)
		}
	}
}

// notTrueFilter is an installed (post-first-scan) filter stand-in: any
// concrete type other than rid.TrueFilter defeats the exact-count cap.
type notTrueFilter struct{}

func (notTrueFilter) MayContain(storage.RID) bool { return true }
func (notTrueFilter) Exact() bool                 { return true }

// TestJscanPartitionGate asserts exactly which scan shapes the
// partitioned Jscan accepts, exercising every partitionDisqualifier
// reason individually (the gate's code comments reference this test by
// name). Each case perturbs one field of an otherwise-eligible scan
// state and checks both the reported reason and the exact-count cap.
func TestJscanPartitionGate(t *testing.T) {
	f := newFixture(t, 500, "AGE", "CITY")
	age, city := f.col(t, "AGE"), f.col(t, "CITY")
	ixAge := f.tab.Indexes[0]
	onAge := expr.NewCmp(expr.LT, expr.Col(age, "AGE"), expr.Lit(expr.Int(30)))
	onCity := expr.NewCmp(expr.EQ, expr.Col(city, "CITY"), expr.Lit(expr.Int(7)))

	// eligible builds the baseline partition-eligible scan state: a
	// fresh (partitionable, nothing seen) scan of the last index under
	// disabled competition with no borrow stream and no limit.
	eligible := func() *jscan {
		cfg := DefaultConfig()
		cfg.Parallelism = 4
		cfg.DisableCompetition = true
		return &jscan{
			q:             &Query{Table: f.tab, Restriction: onAge},
			cfg:           cfg,
			curIx:         ixAge,
			filter:        rid.TrueFilter{},
			partitionable: true,
		}
	}

	cases := []struct {
		name    string
		mutate  func(j *jscan)
		want    string // "" = eligible
		wantCap int
	}{
		{"fresh full-range scan", func(j *jscan) {}, "", 0},
		{"continued race loser", func(j *jscan) { j.partitionable = false }, "continued scan", 0},
		{"mid-scan entry", func(j *jscan) { j.seen = 7 }, "rows already seen", 0},
		{"competition enabled", func(j *jscan) { j.cfg.DisableCompetition = false }, "competition enabled", 0},
		{"borrow queue attached", func(j *jscan) { j.borrow = &ridQueue{} }, "borrow queue attached", 0},
		{"limit without adaptive mode", func(j *jscan) { j.q.Limit = 5 }, "limit without exact-count cap", 0},
		{"limit with exact-count cap", func(j *jscan) {
			j.q.Limit = 5
			j.cfg.AdaptiveParallelism = true
		}, "", 5},
		{"limit with order by", func(j *jscan) {
			j.q.Limit = 5
			j.cfg.AdaptiveParallelism = true
			j.q.OrderBy = []int{age}
		}, "limit without exact-count cap", 0},
		{"limit before the last index", func(j *jscan) {
			j.q.Limit = 5
			j.cfg.AdaptiveParallelism = true
			j.ests = make([]estimate.IndexEstimate, 1) // idx 0 < len 1: a later scan would intersect below the cap
		}, "limit without exact-count cap", 0},
		{"limit with installed filter", func(j *jscan) {
			j.q.Limit = 5
			j.cfg.AdaptiveParallelism = true
			j.filter = notTrueFilter{}
		}, "limit without exact-count cap", 0},
		{"limit with non-covering index", func(j *jscan) {
			j.q.Limit = 5
			j.cfg.AdaptiveParallelism = true
			j.q.Restriction = expr.NewAnd(onAge, onCity) // IX_AGE cannot prove CITY
		}, "limit without exact-count cap", 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			j := eligible()
			c.mutate(j)
			if got := j.partitionDisqualifier(); got != c.want {
				t.Fatalf("partitionDisqualifier() = %q, want %q", got, c.want)
			}
			if got := j.partitionLimitCap(); got != c.wantCap {
				t.Fatalf("partitionLimitCap() = %d, want %d", got, c.wantCap)
			}
		})
	}
}

// TestAdaptiveEquivalenceAllTactics extends the deterministic-
// equivalence sweep to the adaptive policy: for every tactic shape,
// widths {1, 2, 4} and adaptive mode must deliver identical rows in
// identical order with identical attributed I/O and identical
// pre-existing metrics. Adaptive runs additionally populate the width
// histogram (its decisions are observable), so those counters are
// compared separately rather than zero-asserted away.
func TestAdaptiveEquivalenceAllTactics(t *testing.T) {
	f := newFixture(t, 10000, "AGE", "CITY")
	age, city, salary := f.col(t, "AGE"), f.col(t, "CITY"), f.col(t, "SALARY")

	queries := []struct {
		name string
		q    *Query
	}{
		{"tscan", &Query{
			Table:       f.tab,
			Restriction: expr.NewCmp(expr.GE, expr.Col(salary, "SALARY"), expr.Lit(expr.Float(5000))),
		}},
		{"background-only", bgQuery(f, t, GoalTotalTime)},
		{"fast-first", bgQuery(f, t, GoalFastFirst)},
		{"union", &Query{
			Table: f.tab,
			Restriction: expr.NewOr(
				expr.NewCmp(expr.LT, expr.Col(age, "AGE"), expr.Lit(expr.Int(5))),
				expr.NewCmp(expr.EQ, expr.Col(city, "CITY"), expr.Lit(expr.Int(7))),
			),
		}},
		{"ordered-index", &Query{
			Table:       f.tab,
			Restriction: expr.NewCmp(expr.LT, expr.Col(age, "AGE"), expr.Lit(expr.Int(25))),
			OrderBy:     []int{age},
		}},
	}

	for _, tc := range queries {
		t.Run(tc.name, func(t *testing.T) {
			base := runEquiv(t, f, tc.q, 0, false)
			if len(base.rows) == 0 {
				t.Fatalf("degenerate fixture: %s query delivered no rows", tc.name)
			}
			for _, w := range []int{1, 2, 4} {
				par := runEquiv(t, f, tc.q, w, false)
				requireEquiv(t, "static width", w, par, base)
			}
			ad := runEquiv(t, f, tc.q, 4, true)
			requireEquiv(t, "adaptive", 4, ad, base)
		})
	}
}

// requireEquiv asserts the deterministic-equivalence contract between a
// parallel run and the sequential baseline. Adaptive width decisions
// feed counters that have no sequential counterpart, so those fields
// are compared against the run's own event stream instead of the
// baseline before the snapshots are diffed.
func requireEquiv(t *testing.T, label string, w int, par, base equivRun) {
	t.Helper()
	if par.tactic != base.tactic || par.strategy != base.strategy {
		t.Fatalf("%s w=%d: tactic/strategy %s/%s, sequential %s/%s",
			label, w, par.tactic, par.strategy, base.tactic, base.strategy)
	}
	if len(par.rows) != len(base.rows) {
		t.Fatalf("%s w=%d: %d rows vs %d", label, w, len(par.rows), len(base.rows))
	}
	for i := range par.rows {
		if par.rows[i] != base.rows[i] {
			t.Fatalf("%s w=%d: row order diverged at %d", label, w, i)
		}
	}
	if par.io != base.io {
		t.Fatalf("%s w=%d: attributed I/O %+v, sequential %+v", label, w, par.io, base.io)
	}
	if par.estimate != base.estimate {
		t.Fatalf("%s w=%d: estimation I/O %d, sequential %d", label, w, par.estimate, base.estimate)
	}
	if par.fgRows != base.fgRows || par.finalLen != base.finalLen {
		t.Fatalf("%s w=%d: fg=%d final=%d, sequential fg=%d final=%d",
			label, w, par.fgRows, par.finalLen, base.fgRows, base.finalLen)
	}
	// Width decisions are the only permitted metrics delta: the
	// histogram must account for exactly the width-chosen events the run
	// emitted, and nothing else may move.
	var chosen int64
	for _, n := range par.snap.ParallelWidths {
		chosen += n
	}
	if want := int64(par.widthEvents); chosen != want {
		t.Fatalf("%s w=%d: width histogram counts %d decisions, trace has %d", label, w, chosen, want)
	}
	scrub := func(s MetricsSnapshot) MetricsSnapshot {
		s.ParallelWidths = nil
		s.ParallelSeqDowngrades = 0
		s.ParallelEarlyCancels = 0
		return s
	}
	ps, bs := scrub(par.snap), scrub(base.snap)
	if !reflect.DeepEqual(ps, bs) {
		t.Fatalf("%s w=%d: metrics delta diverged:\n par %+v\n seq %+v", label, w, ps, bs)
	}
}

// TestAdaptiveDowngradesSmallScan pins the policy's sequential-downgrade
// half: a scan far smaller than the per-worker startup cost must choose
// width 1 — recorded in the histogram and the downgrade counter — and
// spawn no partition workers.
func TestAdaptiveDowngradesSmallScan(t *testing.T) {
	f := newFixture(t, 300) // a few pages: estIO ~ startup
	age := f.col(t, "AGE")
	q := &Query{
		Table:       f.tab,
		Restriction: expr.NewCmp(expr.GE, expr.Col(age, "AGE"), expr.Lit(expr.Int(0))),
	}
	cfg := DefaultConfig()
	cfg.Parallelism = 8
	cfg.AdaptiveParallelism = true
	cfg.ParallelStartupCost = 1e6 // dwarf any scan: every decision downgrades
	o := NewOptimizer(cfg)
	rows := o.Run(q)
	got := drain(t, rows)
	sameMultiset(t, got, f.naive(t, q), "downgraded tscan")
	st := rows.Stats()
	ev := firstEvent(st, EvParallelWidthChosen, "")
	if ev == nil {
		t.Fatalf("no width decision in trace: %v", st.Trace)
	}
	if ev.Width != 1 {
		t.Fatalf("width = %d, want 1 (startup dominates)", ev.Width)
	}
	snap := o.Metrics().Snapshot()
	if snap.ParallelSeqDowngrades == 0 {
		t.Fatal("sequential downgrade not counted")
	}
	if snap.ParallelWidths["1"] == 0 {
		t.Fatalf("width histogram missing bucket 1: %v", snap.ParallelWidths)
	}
}

// TestJscanLimitEarlyCancel drives the adaptive exact-count cap end to
// end: a bare-LIMIT query over a covering index partitions anyway, the
// first workers to fill the cap cancel their siblings (one
// parallel-early-cancel event), every delivered row satisfies the
// restriction, and the capped parallel scan charges no more than the
// sequential full-range scan plus one in-flight access per worker.
func TestJscanLimitEarlyCancel(t *testing.T) {
	f := newFixture(t, 10000, "ID")
	id := f.col(t, "ID")
	// Half the unique IDs match: a clustered RID list cheap enough that
	// the planner keeps the Jscan, spread over enough leaves that the
	// range partitions and the uncapped scan does real extra work.
	mk := func() *Query {
		return &Query{
			Table:       f.tab,
			Restriction: expr.NewCmp(expr.GE, expr.Col(id, "ID"), expr.Lit(expr.Int(5000))),
			Limit:       10,
			Goal:        GoalTotalTime,
		}
	}
	const workers = 4
	run := func(adaptive bool) (int, []expr.Row, RetrievalStats) {
		cfg := DefaultConfig()
		cfg.Parallelism = workers
		cfg.DisableCompetition = true
		if adaptive {
			cfg.AdaptiveParallelism = true
			cfg.ParallelStartupCost = -1 // free workers: the cap, not the policy, is under test
		}
		o := NewOptimizer(cfg)
		f.pool.EvictAll()
		f.pool.ResetStats()
		rows := o.Run(mk())
		got := drain(t, rows)
		return int(f.pool.Stats().IOCost()), got, rows.Stats()
	}

	seqIO, seqRows, seqSt := run(false)
	parIO, parRows, parSt := run(true)

	if parSt.Tactic != seqSt.Tactic {
		t.Fatalf("tactic diverged: %s vs %s", parSt.Tactic, seqSt.Tactic)
	}
	if len(parRows) != 10 || len(seqRows) != 10 {
		t.Fatalf("limit 10 delivered %d adaptive, %d sequential", len(parRows), len(seqRows))
	}
	// Under a bare LIMIT any 10 matching rows are a correct answer; each
	// delivered row must still satisfy the restriction.
	for _, r := range parRows {
		if r[id].I < 5000 {
			t.Fatalf("row %v fails restriction", r)
		}
	}
	if !hasEvent(parSt, EvParallelEarlyCancel, "") {
		t.Fatalf("no parallel-early-cancel event; trace: %v", parSt.Trace)
	}
	if hasEvent(seqSt, EvParallelEarlyCancel, "") {
		t.Fatal("sequential run must not early-cancel")
	}
	// The capped scan stops at ~LIMIT candidates while the sequential
	// background scans its whole range; overshoot past the sequential
	// cost is bounded by the workers' in-flight accesses.
	if parIO >= seqIO+workers {
		t.Fatalf("adaptive capped scan cost %d, sequential %d: cap saved nothing", parIO, seqIO)
	}
}
