package core

import (
	"rdbdyn/internal/btree"
	"rdbdyn/internal/catalog"
	"rdbdyn/internal/expr"
	"rdbdyn/internal/rid"
	"rdbdyn/internal/storage"
)

// Operator is the composable streaming face of the scan machinery: a
// pull-based producer of index-entry batches. B-tree cursors (forward
// and reverse) are operators directly; wrappers add a consumption bound
// (partition workers) without changing the charge profile, and
// acceptEntries turns an entry batch into the surviving RIDs through
// the bitmap filter and index-local restriction. Jscan's sequential
// path, both race legs, and every partition worker all drive the same
// operator + acceptEntries pipeline, differing only in which scratch
// buffers they own — which is what lets race legs and partition workers
// run on their own goroutines.
type Operator interface {
	// NextBatch fills dst with up to len(dst) entries and returns how
	// many it produced; 0 means the operator is exhausted. Charges are
	// identical to per-entry iteration.
	NextBatch(dst []btree.Entry) (int, error)
	// Close releases held resources (leaf pins). Idempotent and
	// required when abandoning the operator before exhaustion.
	Close()
}

var (
	_ Operator = (*btree.Cursor)(nil)
	_ Operator = (*btree.ReverseCursor)(nil)
)

// boundedOp caps an operator at a fixed number of entries — the shape
// of an interior partition worker, which owns whole leaves and must
// stop exactly at its boundary without touching the next worker's first
// leaf. Each NextBatch clamps the destination to the remaining budget,
// and NextBatch never hops past the leaf that satisfies the clamp, so
// the bound adds no page charges.
type boundedOp struct {
	src       Operator
	remaining int64
}

func (b *boundedOp) NextBatch(dst []btree.Entry) (int, error) {
	if b.remaining <= 0 {
		return 0, nil
	}
	if int64(len(dst)) > b.remaining {
		dst = dst[:b.remaining]
	}
	n, err := b.src.NextBatch(dst)
	b.remaining -= int64(n)
	return n, err
}

func (b *boundedOp) Close() { b.src.Close() }

// acceptScratch is the per-consumer buffer set of acceptEntries. Every
// concurrent consumer (the sequential scan, each race leg, each
// partition worker) owns one, so batch acceptance never shares state.
type acceptScratch struct {
	keep []bool
	rbuf []storage.RID // filter-probe input
	obuf []storage.RID // accepted-RID output
}

func newAcceptScratch(n int) *acceptScratch {
	if n < 1 {
		n = 1
	}
	return &acceptScratch{
		keep: make([]bool, n),
		rbuf: make([]storage.RID, n),
		obuf: make([]storage.RID, 0, n),
	}
}

// acceptEntries applies the previous list's filter and the index-local
// restriction to a batch of entries, returning the surviving RIDs in
// scan order. The returned slice aliases sc.obuf and stays valid until
// the next call with the same scratch. The filter runs first as one
// bulk probe (both predicates are pure, so the order does not change
// the kept set), and — because the filter is exact — every entry it
// rejects skips the key decode entirely. filter may be probed from
// several goroutines at once: completed filters are read-only.
func acceptEntries(entries []btree.Entry, ix *catalog.Index, local expr.Expr, binds expr.Bindings, filter rid.Filter, sc *acceptScratch) ([]storage.RID, error) {
	rids := sc.rbuf[:len(entries)]
	keep := sc.keep[:len(entries)]
	for i, e := range entries {
		rids[i] = e.RID
	}
	rid.ApplyFilter(filter, rids, keep)
	out := sc.obuf[:0]
	for i, e := range entries {
		if !keep[i] {
			continue
		}
		if local != nil {
			row, err := ix.DecodeEntry(e.Key)
			if err != nil {
				return nil, err
			}
			ok, err := expr.EvalPred(local, row, binds)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		out = append(out, e.RID)
	}
	sc.obuf = out[:0]
	return out, nil
}
