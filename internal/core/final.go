package core

import (
	"errors"
	"sort"

	"rdbdyn/internal/expr"
	"rdbdyn/internal/rid"
	"rdbdyn/internal/storage"
)

// finalStage is Fin: retrieval by a complete RID list, executed only
// upon background completion as the alternative to foreground delivery.
// RIDs are fetched in sorted order so "several records on a single page
// [are accessed] only once, not multiple times as in the case of random
// fetches", the full restriction is re-evaluated (this absorbs bitmap
// false positives and non-indexed conjuncts), and records already
// delivered by the foreground are filtered out via its RID buffer.
type finalStage struct {
	q       *Query
	rids    []storage.RID
	pos     int
	exclude *rid.SortedList // foreground-delivered RIDs; may be nil
	out     *rowQueue
	m       meter
	done    bool
}

func newFinalStage(ec *ExecCtx, q *Query, c *rid.Container, delivered []storage.RID, out *rowQueue) (*finalStage, error) {
	if c == nil {
		return nil, errors.New("core: final stage without a RID list")
	}
	rids, err := c.SortedAll()
	if err != nil {
		return nil, err
	}
	// Union scans may deliver the same RID through several legs; the
	// sorted order makes duplicates adjacent.
	rids = dedupSorted(rids)
	f := &finalStage{
		q:    q,
		rids: rids,
		out:  out,
		m:    newMeter(ec),
	}
	if len(delivered) > 0 {
		f.exclude = rid.NewSortedList(delivered)
	}
	return f, nil
}

func (f *finalStage) name() string  { return "Fin" }
func (f *finalStage) cost() float64 { return f.m.cost() }
func (f *finalStage) release()      {} // materialized RID slice; no cursor held

func (f *finalStage) step() (bool, error) {
	if f.done {
		return true, nil
	}
	for fetches := 0; fetches < 4; {
		if f.pos >= len(f.rids) {
			f.done = true
			return true, nil
		}
		r := f.rids[f.pos]
		f.pos++
		if f.exclude != nil && f.exclude.MayContain(r) {
			continue
		}
		row, err := f.q.Table.FetchTracked(r, f.m.tr)
		if err != nil {
			return f.done, err
		}
		fetches++
		keep, err := expr.EvalPred(f.q.Restriction, row, f.q.Binds)
		if err != nil {
			return f.done, err
		}
		if keep {
			f.out.push(f.q.project(row))
		}
	}
	return f.done, nil
}

// sortRows orders rows by the given column positions ascending (the
// SORT node the paper's goal-inference rules refer to; used when an
// order is requested but no order-needed index carries the retrieval).
func sortRows(rows []expr.Row, by []int, desc bool) {
	sort.SliceStable(rows, func(i, j int) bool {
		for _, c := range by {
			if d := expr.Compare(rows[i][c], rows[j][c]); d != 0 {
				if desc {
					return d > 0
				}
				return d < 0
			}
		}
		return false
	})
}
