package core

import (
	"errors"
	"sort"

	"rdbdyn/internal/expr"
	"rdbdyn/internal/rid"
	"rdbdyn/internal/storage"
)

// finalFetchBudget is the per-step record-access budget of the final
// stage, matching the other fetching steppers ("roughly one page worth
// of work" per step).
const finalFetchBudget = 4

// finalPrefetchWindow is how many upcoming data pages the final stage
// stages ahead of its fetch position (accounting-free readahead; see
// BufferPool.Prefetch).
const finalPrefetchWindow = 8

// finalStage is Fin: retrieval by a complete RID list, executed only
// upon background completion as the alternative to foreground delivery.
// RIDs are fetched in sorted order and grouped by page, so "several
// records on a single page [are accessed] only once, not multiple times
// as in the case of random fetches" — each same-page run costs one
// buffer-pool round trip charged as len(run) record accesses, leaving
// the simulated counters identical to per-record fetching. The full
// restriction is re-evaluated (this absorbs non-indexed conjuncts), and
// records already delivered by the foreground are filtered out through
// an exact compressed bitmap of its RID buffer.
type finalStage struct {
	q       *Query
	rids    []storage.RID
	pos     int
	exclude *rid.CompressedBitmap // foreground-delivered RIDs; may be nil
	out     *rowQueue
	m       meter

	run     []storage.RID // same-page run scratch
	pfbuf   []storage.PageID
	pfPos   int      // rids index the prefetcher has examined (monotonic)
	scratch expr.Row // decode scratch; delivered rows are copied out

	workers int // intra-query worker budget (see parallel.go)
	parDone bool
	done    bool
}

func newFinalStage(ec *ExecCtx, q *Query, c *rid.Container, delivered []storage.RID, out *rowQueue, workers int) (*finalStage, error) {
	if c == nil {
		return nil, errors.New("core: final stage without a RID list")
	}
	rids, err := c.SortedAll()
	if err != nil {
		return nil, err
	}
	// Union scans may deliver the same RID through several legs; the
	// sorted order makes duplicates adjacent.
	rids = dedupSorted(rids)
	f := &finalStage{
		q:       q,
		rids:    rids,
		out:     out,
		m:       newMeter(ec),
		run:     make([]storage.RID, 0, finalFetchBudget),
		pfbuf:   make([]storage.PageID, 0, finalPrefetchWindow),
		workers: workers,
	}
	if len(delivered) > 0 {
		f.exclude = rid.FromRIDs(delivered)
	}
	return f, nil
}

func (f *finalStage) name() string  { return "Fin" }
func (f *finalStage) cost() float64 { return f.m.cost() }
func (f *finalStage) release()      {} // materialized RID slice; no cursor held

func (f *finalStage) step() (bool, error) {
	if f.done {
		return true, nil
	}
	// Eager partitioned fetch: only without a row limit (an eager fetch
	// cannot stop early) and only from a fresh position.
	if f.workers > 1 && f.q.Limit == 0 && f.pos == 0 && !f.parDone {
		f.parDone = true
		if handled, err := f.runParallelFetch(); handled || err != nil {
			return f.done, err
		}
	}
	f.prefetchAhead()
	for fetches := 0; fetches < finalFetchBudget; {
		// Collect the next same-page run of non-excluded RIDs, capped by
		// the remaining fetch budget (a run split across steps costs the
		// same: the page is resident, so the re-fetch is a hit — exactly
		// the hit per-record fetching would charge).
		run := f.run[:0]
		var page storage.PageID
		for f.pos < len(f.rids) && len(run) < finalFetchBudget-fetches {
			r := f.rids[f.pos]
			if f.exclude != nil && f.exclude.MayContain(r) {
				f.pos++
				continue
			}
			if len(run) > 0 && r.Page != page {
				break
			}
			page = r.Page
			run = append(run, r)
			f.pos++
		}
		if len(run) == 0 {
			f.done = true
			return true, nil
		}
		p, err := f.q.Table.Heap.GetSpanTracked(page, len(run), f.m.tr)
		if err != nil {
			return f.done, err
		}
		for _, r := range run {
			rec, err := p.Get(r.Slot)
			if err != nil {
				return f.done, err
			}
			row, err := expr.DecodeRowInto(rec, f.scratch)
			if err != nil {
				return f.done, err
			}
			f.scratch = row
			keep, err := expr.EvalPred(f.q.Restriction, row, f.q.Binds)
			if err != nil {
				return f.done, err
			}
			if keep {
				f.deliver(row)
			}
		}
		fetches += len(run)
	}
	return f.done, nil
}

// deliver pushes a kept row. The row aliases the decode scratch, so a
// nil projection (which would hand the row out as-is) forces a copy;
// a real projection already copies the values it selects.
func (f *finalStage) deliver(row expr.Row) {
	if f.q.Projection == nil {
		row = append(expr.Row(nil), row...)
	}
	f.out.push(f.q.project(row))
}

// prefetchAhead stages the pages of upcoming RID runs, up to
// finalPrefetchWindow pages per step. The watermark advances
// monotonically, so across the stage's whole life every RID is examined
// once and every distinct page is offered to the prefetcher once.
func (f *finalStage) prefetchAhead() {
	if f.pfPos < f.pos {
		f.pfPos = f.pos
	}
	if f.pfPos >= len(f.rids) {
		return
	}
	buf := f.pfbuf[:0]
	var last storage.PageID
	for f.pfPos < len(f.rids) && len(buf) < finalPrefetchWindow {
		pg := f.rids[f.pfPos].Page
		if len(buf) == 0 || pg != last {
			buf = append(buf, pg)
			last = pg
		}
		f.pfPos++
	}
	f.q.Table.Pool().Prefetch(buf)
}

// sortRows orders rows by the given column positions ascending (the
// SORT node the paper's goal-inference rules refer to; used when an
// order is requested but no order-needed index carries the retrieval).
func sortRows(rows []expr.Row, by []int, desc bool) {
	sort.SliceStable(rows, func(i, j int) bool {
		for _, c := range by {
			if d := expr.Compare(rows[i][c], rows[j][c]); d != 0 {
				if desc {
					return d > 0
				}
				return d < 0
			}
		}
		return false
	})
}
