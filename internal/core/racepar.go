package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"rdbdyn/internal/btree"
)

// Goroutine race legs (Config.Parallelism > 1).
//
// The paper's race — two adjacent indexes whose estimates are too close
// to call, scanned "simultaneously" — runs by default as interleaved
// half-steps on the cooperative scheduler. With a worker budget the two
// legs instead run on real goroutines to resolution inside a single
// step() call: each leg owns its cursor, batch scratch, and tracker
// (created in openLeg), the first leg to exhaust its range claims the
// win with a compare-and-swap, and the loser observes the win at its
// next batch boundary and parks with its cursor open so the standard
// continueLoser path can refilter and resume it. Leg trackers merge
// into the jscan meter at the barrier, so per-query attributed I/O is
// exact; only the point at which the losing leg stops — and hence the
// race's total cost — depends on scheduling, which is the paper's own
// characterization of a race (the winner is a runtime outcome, not a
// plan property).
//
// Competition can still kill a leg mid-race: each leg re-projects its
// final-stage cost every StepEntries entries against the guaranteed
// best (frozen for the duration of the race; the shared filter and
// model are read-only) using its own tracker's exact charges — the
// interleaved path has to approximate per-leg cost as half the shared
// meter's delta, so the goroutine race is *more* faithful to the
// paper's per-scan accounting, not less. A killed leg closes its own
// cursor, buffers its abandonment event, and lets the sibling race on.
// Events are emitted by the coordinator after the barrier in leg order,
// keeping TraceEvent sequence numbers single-writer.
func (j *jscan) runRaceParallel() error {
	r := j.race
	batchN := j.cfg.StepEntries
	if batchN < 1 {
		batchN = 1
	}
	memBudget := j.cfg.RID.MemBudget

	var (
		stopWin atomic.Int32 // 1+legIndex of the first leg to finish
		stopMem atomic.Bool  // a leg hit the in-memory RID budget
		stopErr atomic.Bool
		errs    [2]error
		events  [2][]TraceEvent
		wg      sync.WaitGroup
	)
	stopped := func() bool {
		return stopErr.Load() || stopMem.Load() || stopWin.Load() != 0
	}

	legs := [2]*raceLeg{&r.a, &r.b}
	for li, leg := range legs {
		if leg.done || leg.dead {
			continue
		}
		wg.Add(1)
		go func(li int, leg *raceLeg) {
			defer wg.Done()
			batch := make([]btree.Entry, batchN)
			sc := newAcceptScratch(batchN)
			lastCheck := 0
			for !stopped() {
				n, err := leg.cur.NextBatch(batch)
				if err != nil {
					errs[li] = err
					stopErr.Store(true)
					return
				}
				if n == 0 {
					leg.done = true
					stopWin.CompareAndSwap(0, int32(li+1))
					return
				}
				leg.seen += n
				kept, err := acceptEntries(batch[:n], leg.ix, leg.local, j.q.Binds, j.filter, sc)
				if err != nil {
					errs[li] = err
					stopErr.Store(true)
					return
				}
				leg.rids = append(leg.rids, kept...)
				if memBudget > 0 && len(leg.rids) >= memBudget {
					stopMem.Store(true)
					return
				}
				if !j.cfg.DisableCompetition && leg.seen >= j.cfg.StepEntries &&
					leg.seen-lastCheck >= j.cfg.StepEntries {
					lastCheck = leg.seen
					frac := float64(leg.seen) / leg.rangeEst
					if frac > 1 {
						frac = 1
					}
					projFinal := j.model.JscanFinalCost(float64(len(leg.rids)) / frac)
					// The leg's own tracker gives its exact scan cost —
					// no half-split approximation needed.
					if j.cfg.Criterion.Abandon(projFinal, float64(leg.tr.IOCost()), j.currentGuaranteedBest()) {
						leg.dead = true
						leg.cur.Close()
						events[li] = append(events[li], TraceEvent{
							Kind: EvScanAbandoned, Scan: j.name(), Indexes: []string{leg.ix.Name},
							EstimatedIO: projFinal,
							Detail:      fmt.Sprintf("race leg abandoned (proj final %.0f)", projFinal),
						})
						return
					}
				}
			}
		}(li, leg)
	}
	wg.Wait()

	// Merge both legs' charges before anything can error out: attributed
	// I/O stays exact even for a query unwound mid-race.
	for _, leg := range legs {
		if leg.tr != nil {
			j.m.tr.Merge(leg.tr)
		}
	}
	for li := range events {
		for _, ev := range events[li] {
			ev.ActualIO = j.m.cost()
			j.trc.emit(ev)
		}
	}
	if stopErr.Load() {
		// j.race stays set: bgKill owns the cursor cleanup for legs that
		// were not killed by competition.
		if errs[0] != nil {
			return errs[0]
		}
		return errs[1]
	}

	// Resolution mirrors the interleaved scheduler's endgame.
	switch {
	case stopWin.Load() != 0:
		wi := int(stopWin.Load()) - 1
		winner, loser := legs[wi], legs[1-wi]
		j.race = nil
		if err := j.adoptRaceWinner(winner); err != nil {
			loser.cur.Close()
			return err
		}
		if !loser.dead {
			j.continueLoser(loser)
		} else if j.cur == nil {
			if !j.startNextScan() {
				j.finish()
			}
		}
	case stopMem.Load():
		keep, drop := &r.a, &r.b
		if len(r.b.rids) < len(r.a.rids) {
			keep, drop = &r.b, &r.a
		}
		if keep.dead {
			// The shorter leg was killed by competition before the other
			// overflowed; the surviving leg is the only continuation.
			keep, drop = drop, keep
		}
		if !drop.dead {
			drop.cur.Close()
		}
		j.race = nil
		j.trc.emit(TraceEvent{
			Kind: EvRaceResolved, Scan: j.name(), Indexes: []string{keep.ix.Name, drop.ix.Name},
			ActualIO: j.m.cost(),
			Detail:   fmt.Sprintf("race hit memory budget, continuing %s, dropping %s", keep.ix.Name, drop.ix.Name),
		})
		j.continueLoser(keep)
	default: // both legs dead
		j.race = nil
		j.trc.emit(TraceEvent{
			Kind: EvRaceResolved, Scan: j.name(), Indexes: []string{r.a.ix.Name, r.b.ix.Name},
			ActualIO: j.m.cost(), Detail: "both race legs abandoned",
		})
		if !j.startNextScan() {
			j.finish()
		}
	}
	return nil
}
