package core

import (
	"fmt"

	"rdbdyn/internal/btree"
	"rdbdyn/internal/catalog"
	"rdbdyn/internal/estimate"
	"rdbdyn/internal/expr"
	"rdbdyn/internal/rid"
	"rdbdyn/internal/storage"
)

// uscan is the union scan: the OR counterpart of Jscan and an
// implementation of the extension direction the paper's Section 7
// names ("Covering ORs ... is a rich source for extending the tactics
// and the architecture").
//
// When the restriction contains a top-level OR whose every disjunct is
// sargable on some index, the union of the per-disjunct index ranges is
// a complete candidate RID list: scanning the legs in sequence and
// concatenating their RIDs (duplicates removed by the final stage's
// sort) produces the same "shortest possible RID list or Tscan
// recommendation" contract Jscan has, so a uscan slots into every
// tactic as the background process — including fast-first borrowing.
//
// The union runs the same two-stage competition as Jscan, but the
// abandonment is all-or-nothing: a union with a leg missing is not a
// complete candidate list, so when the projected final cost approaches
// the Tscan guarantee the whole union is abandoned.
type uscan struct {
	q     *Query
	cfg   Config
	model estimate.CostModel
	legs  []unionLeg
	trc   *tracer
	ec    *ExecCtx
	m     meter

	idx      int // current leg
	cur      *btree.Cursor
	list     *rid.Container
	seen     int
	totalEst float64

	borrow       *ridQueue
	borrowActive bool

	done           bool
	recommendTscan bool
	names          []string

	// Batch scratch, sized to StepEntries on first use.
	batch []btree.Entry
	obuf  []storage.RID
}

// unionLeg is one disjunct's index scan.
type unionLeg struct {
	Index *catalog.Index
	Lo    []byte
	Hi    []byte
	// Local is the disjunct's restriction portion evaluable on the
	// index's key columns (rejects non-matching entries before they
	// enter the list).
	Local expr.Expr
	// Est is the estimated RID count of the leg's range.
	Est float64
}

// unionLegs maps the disjuncts of the first index-coverable top-level
// OR conjunct onto index scans. It returns nil when no such conjunct
// exists (some disjunct is unsargable on every index). Estimation I/O
// is charged to tr (nil = untracked).
func unionLegs(q *Query, tr *storage.Tracker) []unionLeg {
	for _, cj := range expr.Conjuncts(q.Restriction) {
		or, ok := cj.(*expr.Or)
		if !ok || len(or.Kids) == 0 {
			continue
		}
		legs := make([]unionLeg, 0, len(or.Kids))
		covered := true
		for _, d := range or.Kids {
			leg, ok := legForDisjunct(q, d, tr)
			if !ok {
				covered = false
				break
			}
			legs = append(legs, leg)
		}
		if covered {
			return legs
		}
	}
	return nil
}

// legForDisjunct finds the most selective index whose bounds cover the
// disjunct.
func legForDisjunct(q *Query, d expr.Expr, tr *storage.Tracker) (unionLeg, bool) {
	var (
		best    unionLeg
		bestEst = -1.0
	)
	for _, ix := range q.Table.Indexes {
		lo, hi, n, empty := ix.RestrictionBounds(d, q.Binds)
		if n == 0 {
			continue
		}
		if empty {
			// This disjunct matches nothing: a zero-entry leg.
			return unionLeg{Index: ix, Lo: []byte{0xFF, 0xFF}, Hi: []byte{0xFF, 0xFF}, Est: 0}, true
		}
		if lo == nil && hi == nil {
			continue
		}
		rids, _, err := ix.Tree.EstimateRangeRefinedTracked(lo, hi, tr)
		if err != nil {
			continue
		}
		if bestEst < 0 || rids < bestEst {
			best = unionLeg{
				Index: ix,
				Lo:    lo,
				Hi:    hi,
				Local: localDisjunct(d, ix),
				Est:   rids,
			}
			bestEst = rids
		}
	}
	return best, bestEst >= 0
}

// localDisjunct returns the disjunct if the index can evaluate it
// fully on key columns, so leg entries outside the disjunct (but inside
// its bounding range) are rejected before entering the list.
func localDisjunct(d expr.Expr, ix *catalog.Index) expr.Expr {
	if ix.Covers(expr.Columns(d)) {
		return d
	}
	return nil
}

func newUscan(ec *ExecCtx, q *Query, cfg Config, model estimate.CostModel, legs []unionLeg, borrow *ridQueue, trc *tracer) *uscan {
	m := newMeter(ec)
	u := &uscan{
		q:            q,
		cfg:          cfg,
		model:        model,
		legs:         legs,
		trc:          trc,
		ec:           ec,
		m:            m,
		list:         rid.NewContainerTracked(q.Table.Pool(), cfg.RID, m.tr),
		borrow:       borrow,
		borrowActive: borrow != nil,
	}
	for _, l := range legs {
		u.totalEst += l.Est
	}
	if u.totalEst < 1 {
		u.totalEst = 1
	}
	return u
}

func (u *uscan) name() string  { return "Uscan" }
func (u *uscan) cost() float64 { return u.m.cost() }

// backgroundScan implementation.

func (u *uscan) bgComplete() *rid.Container { return u.list }
func (u *uscan) bgNames() []string          { return u.names }
func (u *uscan) bgRecommendTscan() bool     { return u.recommendTscan }

func (u *uscan) bgKill() {
	if u.cur != nil {
		u.cur.Close()
		u.cur = nil
	}
	if u.list != nil {
		u.list.Discard()
		u.list = nil
	}
	u.closeBorrow()
	u.done = true
}

// release implements stepper cleanup; cancellation unwinds through it.
func (u *uscan) release() { u.bgKill() }

func (u *uscan) closeBorrow() {
	if u.borrowActive {
		u.borrow.closed = true
		u.borrowActive = false
	}
}

// borrowStreamComplete: the union's borrow stream covers every
// candidate only when all legs finished, i.e. the union was not
// abandoned.
func (u *uscan) borrowStreamComplete() bool {
	return u.done && !u.recommendTscan
}

func (u *uscan) step() (bool, error) {
	if u.done {
		return true, nil
	}
	if handled, err := u.maybeParallelLegs(); handled || err != nil {
		return u.done, err
	}
	if u.cur == nil {
		if u.idx >= len(u.legs) {
			u.finish()
			return u.done, nil
		}
		leg := u.legs[u.idx]
		cur, err := leg.Index.Tree.SeekTracked(leg.Lo, leg.Hi, u.m.tr)
		if err != nil {
			return u.done, err
		}
		u.cur = cur
		u.names = append(u.names, leg.Index.Name)
		u.trc.emit(TraceEvent{
			Kind: EvScanStarted, Scan: u.name(), Indexes: []string{leg.Index.Name}, ActualIO: u.m.cost(),
			Detail: fmt.Sprintf("leg %d/%d, est %.0f rids", u.idx+1, len(u.legs), leg.Est),
		})
	}
	leg := u.legs[u.idx]
	if u.batch == nil {
		n := u.cfg.StepEntries
		if n < 1 {
			n = 1
		}
		u.batch = make([]btree.Entry, n)
		u.obuf = make([]storage.RID, 0, n)
	}
	// Consume the step budget in leaf-sized batches; batches are sliced
	// to the budget, never across it, so the competition check below
	// fires at the same entry counts as per-entry iteration did.
	budget := u.cfg.StepEntries
	for budget > 0 {
		lim := budget
		if lim > len(u.batch) {
			lim = len(u.batch)
		}
		n, err := u.cur.NextBatch(u.batch[:lim])
		if err != nil {
			return u.done, err
		}
		if n == 0 {
			u.cur = nil
			u.idx++
			if u.idx >= len(u.legs) {
				u.finish()
			}
			return u.done, nil
		}
		u.seen += n
		budget -= n
		out := u.obuf[:0]
		for _, e := range u.batch[:n] {
			if leg.Local != nil {
				row, err := leg.Index.DecodeEntry(e.Key)
				if err != nil {
					return u.done, err
				}
				keep, err := expr.EvalPred(leg.Local, row, u.q.Binds)
				if err != nil {
					return u.done, err
				}
				if !keep {
					continue
				}
			}
			out = append(out, e.RID)
		}
		if err := u.list.AppendBatch(out); err != nil {
			return u.done, err
		}
		if u.borrowActive {
			for _, r := range out {
				u.borrow.push(r)
			}
		}
	}
	// Two-stage competition: project the final union size; the
	// guaranteed best is always Tscan (no intersection can improve
	// a union mid-flight).
	if !u.cfg.DisableCompetition && u.seen >= u.cfg.StepEntries {
		frac := float64(u.seen) / u.totalEst
		if frac > 1 {
			frac = 1
		}
		proj := float64(u.list.Len()) / frac
		projFinal := u.model.JscanFinalCost(proj)
		scanCost := float64(u.m.total())
		if u.cfg.Criterion.Abandon(projFinal, scanCost, u.model.TscanCost()) {
			u.trc.emit(TraceEvent{
				Kind: EvScanAbandoned, Scan: u.name(), Indexes: u.names,
				EstimatedIO: projFinal, ActualIO: u.m.cost(),
				Detail: fmt.Sprintf("union abandoned (proj final %.0f, scan cost %.0f, Tscan %.0f)", projFinal, scanCost, u.model.TscanCost()),
			})
			u.abandon()
		}
	}
	return u.done, nil
}

func (u *uscan) finish() {
	u.done = true
	u.closeBorrow()
	u.trc.emit(TraceEvent{
		Kind: EvScanComplete, Scan: u.name(), Indexes: u.names, ActualIO: u.m.cost(),
		Detail: fmt.Sprintf("union complete, %d rids", u.list.Len()),
	})
}

func (u *uscan) abandon() {
	if u.cur != nil {
		u.cur.Close()
		u.cur = nil
	}
	u.list.Discard()
	u.list = nil
	u.recommendTscan = true
	u.done = true
	u.closeBorrow()
}

// dedupSorted removes duplicate RIDs from a sorted slice in place
// (union legs may overlap).
func dedupSorted(rids []storage.RID) []storage.RID {
	if len(rids) < 2 {
		return rids
	}
	out := rids[:1]
	for _, r := range rids[1:] {
		if r != out[len(out)-1] {
			out = append(out, r)
		}
	}
	return out
}
