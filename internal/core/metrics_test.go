package core

import (
	"testing"

	"rdbdyn/internal/storage"
)

// statsWith fabricates a RetrievalStats with the given projected and
// actual I/O.
func statsWith(predicted float64, actual int64) *RetrievalStats {
	return &RetrievalStats{
		Events: []TraceEvent{{Kind: EvTacticChosen, EstimatedIO: predicted}},
		IO:     storage.IOStats{Reads: actual},
	}
}

// Regression: retrievals with zero projected or actual I/O used to be
// silently dropped from the estimate-error histogram; every sample now
// lands in a defined bucket.
func TestEstimateErrorEdgeBuckets(t *testing.T) {
	m := &Metrics{}
	m.recordRetrieval(tacticTscan, statsWith(0, 0), true)   // exact-zero bucket
	m.recordRetrieval(tacticTscan, statsWith(50, 0), true)  // overestimate off the top
	m.recordRetrieval(tacticTscan, statsWith(0, 50), true)  // underestimate off the bottom
	m.recordRetrieval(tacticTscan, statsWith(50, 50), true) // ~1x
	s := m.Snapshot()
	if got := s.EstimateErrorLog[estErrZeroLabel]; got != 1 {
		t.Fatalf("%s bucket = %d, want 1", estErrZeroLabel, got)
	}
	if got := s.EstimateErrorLog[">=8x"]; got != 1 {
		t.Fatalf(">=8x bucket = %d, want 1", got)
	}
	if got := s.EstimateErrorLog["<=1/8x"]; got != 1 {
		t.Fatalf("<=1/8x bucket = %d, want 1", got)
	}
	if got := s.EstimateErrorLog["~1x"]; got != 1 {
		t.Fatalf("~1x bucket = %d, want 1", got)
	}
	var total int64
	for _, n := range s.EstimateErrorLog {
		total += n
	}
	if total != 4 {
		t.Fatalf("histogram holds %d samples, want all 4", total)
	}
	if got := s.TacticWins["tscan"]; got != 4 {
		t.Fatalf("tactic wins = %d, want 4", got)
	}
}

// A frozen-plan replay wins its tactic but carries no estimate of its
// own: the histogram must not move.
func TestReplaySkipsEstimateErrorHistogram(t *testing.T) {
	m := &Metrics{}
	m.recordRetrieval(tacticSscan, statsWith(50, 50), false)
	s := m.Snapshot()
	if len(s.EstimateErrorLog) != 0 {
		t.Fatalf("replay recorded estimate error: %v", s.EstimateErrorLog)
	}
	if got := s.TacticWins["sscan"]; got != 1 {
		t.Fatalf("tactic wins = %d, want 1", got)
	}
}

func TestCapturePlanRules(t *testing.T) {
	base := func(tactic, scan string, indexes []string) *RetrievalStats {
		return &RetrievalStats{
			Tactic: tactic,
			Events: []TraceEvent{{Kind: EvTacticChosen, Tactic: tactic, Scan: scan, Indexes: indexes}},
		}
	}
	// tscan is always replayable.
	if p, ok := CapturePlan(base("tscan", "Tscan", nil)); !ok || p.Tactic != "tscan" {
		t.Fatalf("tscan capture = %v, %v", p, ok)
	}
	// sscan captures its single index.
	if p, ok := CapturePlan(base("sscan", "Sscan(AGE_IX)", []string{"AGE_IX"})); !ok || len(p.Indexes) != 1 || p.Indexes[0] != "AGE_IX" {
		t.Fatalf("sscan capture = %v, %v", p, ok)
	}
	// A strategy switch poisons capture...
	st := base("background-only", "Jscan", []string{"AGE_IX"})
	st.FinalListLen = -1
	st.Events = append(st.Events, TraceEvent{Kind: EvStrategySwitch})
	if _, ok := CapturePlan(st); ok {
		t.Fatal("strategy-switched run captured")
	}
	// ...except the skip-everything-recommend-Tscan switch, which cost
	// zero scan I/O and replays exactly as a sequential scan.
	st = base("background-only", "Jscan", []string{"AGE_IX"})
	st.FinalListLen = -1
	st.Events = append(st.Events,
		TraceEvent{Kind: EvScanAbandoned, Scan: "Jscan", Indexes: []string{"AGE_IX"}},
		TraceEvent{Kind: EvStrategySwitch, Scan: "Tscan"},
	)
	if p, ok := CapturePlan(st); !ok || p.Tactic != "tscan" || len(p.Indexes) != 0 {
		t.Fatalf("switch-to-tscan capture = %v, %v", p, ok)
	}
	// But not when a scan had already started before the switch.
	st.Events = append(st.Events, TraceEvent{Kind: EvScanStarted, Scan: "Jscan", Indexes: []string{"AGE_IX"}})
	if _, ok := CapturePlan(st); ok {
		t.Fatal("mid-scan switch captured")
	}
	// Clean background-only: every started scan adopted, in order.
	st = base("background-only", "Jscan", []string{"CITY_IX", "AGE_IX"})
	st.WinningOrder = []string{"CITY_IX"}
	st.FinalListLen = 10
	st.Estimates = []EstimateSummary{{Index: "CITY_IX", RIDs: 12}, {Index: "AGE_IX", RIDs: 9000}}
	st.Events = append(st.Events,
		TraceEvent{Kind: EvScanStarted, Scan: "Jscan", Indexes: []string{"CITY_IX"}},
		TraceEvent{Kind: EvScanComplete, Scan: "Jscan", Indexes: []string{"CITY_IX"}},
		// AGE_IX skipped before scanning: harmless for replay.
		TraceEvent{Kind: EvScanAbandoned, Scan: "Jscan", Indexes: []string{"AGE_IX"}},
	)
	p, ok := CapturePlan(st)
	if !ok || p.Tactic != "background-only" || len(p.Indexes) != 1 || p.Indexes[0] != "CITY_IX" {
		t.Fatalf("background-only capture = %v, %v", p, ok)
	}
	if len(p.RIDs) != 1 || p.RIDs[0] != 12 {
		t.Fatalf("captured RIDs = %v", p.RIDs)
	}
	// A started-but-unadopted scan (mid-flight abandonment) blocks
	// capture: its I/O would not be reproduced.
	st.Events = append(st.Events, TraceEvent{Kind: EvScanStarted, Scan: "Jscan", Indexes: []string{"AGE_IX"}})
	if _, ok := CapturePlan(st); ok {
		t.Fatal("mid-abandoned run captured")
	}
	// index-only has no frozen form.
	if _, ok := CapturePlan(base("index-only", "Sscan(AGE_IX)", []string{"AGE_IX"})); ok {
		t.Fatal("index-only captured")
	}
	// Union-scan plans are not replayable as Jscan.
	st = base("background-only", "Uscan", []string{"A", "B"})
	st.WinningOrder = []string{"A"}
	if _, ok := CapturePlan(st); ok {
		t.Fatal("uscan plan captured")
	}
}
