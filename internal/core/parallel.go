package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"rdbdyn/internal/btree"
	"rdbdyn/internal/catalog"
	"rdbdyn/internal/expr"
	"rdbdyn/internal/rid"
	"rdbdyn/internal/storage"
)

// Partitioned intra-query execution (Config.Parallelism > 1).
//
// Three scan shapes fan out across workers, all with the same contract:
// the fan-out happens entirely inside one step() call (the coordinator
// waits on every worker before returning, so no goroutine ever outlives
// a step), every worker charges its own storage.Tracker sharing the
// query's Governor (live budget enforcement), the worker trackers merge
// into the stage's meter at the barrier (Tracker.Merge is associative,
// so attributed totals equal the sequential scan exactly), and worker
// results merge in partition order (partitions are contiguous, so the
// concatenation is the sequential output order).
//
// Eligibility is deliberately conservative. Tscan and the final fetch
// partition only when Limit is 0 (early termination is worth more than
// parallelism and an eager scan would overpay); the partitioned Jscan's
// gate is partitionDisqualifier, which documents and reports each
// disqualifier — continued scan, rows already seen, competition
// enabled, borrow queue attached, and Limit without an exact-count
// cap — individually. Under Config.AdaptiveParallelism a bare-LIMIT
// Jscan whose index covers the whole restriction partitions anyway,
// with a cross-worker exact-count cap and first-to-fill early
// cancellation of sibling workers (partitionLimitCap).
//
// Worker errors resolve deterministically to the lowest partition
// index; a failing worker flips a shared stop flag so siblings unwind
// at their next batch boundary (the buffer pool's governor checkpoint
// bounds this to about one page access), and partial worker charges are
// still merged so cancelled queries report exact attributed I/O.

// execProbeParallel is the partitioned join probe stage (inl/ridx over
// partitioned outer batches), enabled only under adaptive mode — the
// static knob never touched joins, and keeps not touching them. Outer
// rows are processed in rounds of width·joinReoptCheckEvery: within a
// round each worker probes a contiguous chunk on its own tracker,
// trackers barrier-merge into the stage meter in chunk order, and
// worker outputs concatenate in chunk order (matching the sequential
// probe order exactly). The sequential mid-stage fallback checkpoint
// runs between rounds over the merged global cost — the same
// extrapolation at a coarser cadence — so mid-flight re-optimization
// stays intact. Returns handled=false to fall through to the
// sequential probe loop.
func (je *joinExec) execProbeParallel(sg *JoinStagePlan, preds []stagePred, probe int, ix *catalog.Index, outer []expr.Row, filter *rid.CompressedBitmap, m *meter) (handled bool, _ []expr.Row, fellBack bool, _ error) {
	if !je.o.cfg.AdaptiveParallelism || je.o.cfg.effectiveWorkers() < 2 || len(outer) < 2 {
		return false, nil, false, nil
	}
	t := sg.Table
	tab := je.jq.Tables[t]
	// Appraised probe work: one descent plus roughly one fetch per
	// outer row.
	estIO := float64(len(outer)) * (float64(ix.Tree.Height()) + 1)
	width := decideWidth(je.o.cfg, je.ec, je.trc, "JoinProbe", estIO)
	if width < 2 {
		return false, nil, false, nil
	}
	local := je.jq.Local[t]
	off := je.offs[t]
	gov := m.tr.Governor()
	round := width * joinReoptCheckEvery
	var out []expr.Row
	for start := 0; start < len(outer); start += round {
		// Between-round checkpoint: same formula as the sequential
		// per-probe one, over the merged cost so far.
		if je.dynamic && start >= joinReoptMinProbes {
			avg := m.cost() / float64(start)
			remaining := float64(len(outer) - start)
			if avg*remaining > je.reoptF*je.jts[t].Pages {
				return true, nil, true, nil
			}
		}
		end := start + round
		if end > len(outer) {
			end = len(outer)
		}
		chunk := outer[start:end]
		k := width
		if k > len(chunk) {
			k = len(chunk)
		}
		outs := make([][]expr.Row, k)
		errs := make([]error, k)
		trs := make([]*storage.Tracker, k)
		var stop atomic.Bool
		var wg sync.WaitGroup
		for i := 0; i < k; i++ {
			trs[i] = storage.NewTracker(gov)
			wg.Add(1)
			go func(i int, rows []expr.Row, tr *storage.Tracker) {
				defer wg.Done()
				var o []expr.Row
				var err error
				for _, orow := range rows {
					if stop.Load() {
						break
					}
					o, err = je.probeOne(o, orow, preds, probe, tab, ix, local, off, filter, tr)
					if err != nil {
						stop.Store(true)
						break
					}
				}
				outs[i], errs[i] = o, err
			}(i, chunk[i*len(chunk)/k:(i+1)*len(chunk)/k], trs[i])
		}
		wg.Wait()
		for _, tr := range trs {
			m.tr.Merge(tr)
		}
		if err := parallelWorkerErr(errs); err != nil {
			return true, nil, false, err
		}
		for i := range outs {
			out = append(out, outs[i]...)
		}
	}
	return true, out, false, nil
}

// parallelWorkerErr picks the terminal error: the lowest-index worker's.
func parallelWorkerErr(errs []error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// runParallelScan is the eager partitioned Tscan: the heap's page range
// splits into contiguous chunks, one bounded range cursor per worker.
// Every heap page is read exactly once by exactly one worker — the same
// multiset of page accesses as the sequential cursor — and each
// worker's readahead window stays inside its own partition. Returns
// false when the heap is too small to split.
func (t *tscan) runParallelScan() (bool, error) {
	npages := t.q.Table.Heap.NumPages()
	k := t.workers
	if k > npages {
		k = npages
	}
	if k < 2 {
		return false, nil
	}
	heap := t.q.Table.Heap
	rows := make([][]expr.Row, k)
	errs := make([]error, k)
	trs := make([]*storage.Tracker, k)
	gov := t.m.tr.Governor()
	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		start := storage.PageNo(i * npages / k)
		end := storage.PageNo((i + 1) * npages / k)
		tr := storage.NewTracker(gov)
		trs[i] = tr
		wg.Add(1)
		go func(i int, start, end storage.PageNo, tr *storage.Tracker) {
			defer wg.Done()
			cur := heap.RangeCursorTracked(start, end, tr)
			defer cur.Close()
			for !stop.Load() {
				rec, rrid, ok, err := cur.Next()
				if err != nil {
					errs[i] = err
					stop.Store(true)
					return
				}
				if !ok {
					return
				}
				if t.exclude != nil && t.exclude.MayContain(rrid) {
					continue
				}
				row, err := expr.DecodeRow(rec)
				if err != nil {
					errs[i] = err
					stop.Store(true)
					return
				}
				keep, err := expr.EvalPred(t.q.Restriction, row, t.q.Binds)
				if err != nil {
					errs[i] = err
					stop.Store(true)
					return
				}
				if keep {
					rows[i] = append(rows[i], t.q.project(row))
				}
			}
		}(i, start, end, tr)
	}
	wg.Wait()
	// Merge charges before surfacing any error: attribution stays exact
	// even for a query unwound mid-scan.
	for _, tr := range trs {
		t.m.tr.Merge(tr)
	}
	if err := parallelWorkerErr(errs); err != nil {
		return false, err
	}
	for i := range rows {
		for _, r := range rows[i] {
			t.out.push(r)
		}
	}
	t.done = true
	return true, nil
}

// runParallelFetch is the eager partitioned final fetch: the sorted RID
// list splits into contiguous chunks aligned to page boundaries (a
// same-page run is never split across workers, so each data page is
// span-fetched by exactly one worker and the hit/miss profile matches
// the sequential clustered fetch). Returns false when the list does not
// split.
func (f *finalStage) runParallelFetch() (bool, error) {
	k := f.workers
	if k > len(f.rids)/(2*finalFetchBudget) {
		k = len(f.rids) / (2 * finalFetchBudget)
	}
	if k < 2 {
		return false, nil
	}
	// Chunk boundaries: the nominal even split, advanced to the next
	// page transition.
	starts := make([]int, 0, k+1)
	starts = append(starts, 0)
	for i := 1; i < k; i++ {
		b := i * len(f.rids) / k
		if b <= starts[len(starts)-1] {
			continue
		}
		for b < len(f.rids) && f.rids[b].Page == f.rids[b-1].Page {
			b++
		}
		if b >= len(f.rids) || b <= starts[len(starts)-1] {
			continue
		}
		starts = append(starts, b)
	}
	if len(starts) < 2 {
		return false, nil
	}
	starts = append(starts, len(f.rids))
	n := len(starts) - 1
	rows := make([][]expr.Row, n)
	errs := make([]error, n)
	trs := make([]*storage.Tracker, n)
	gov := f.m.tr.Governor()
	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		tr := storage.NewTracker(gov)
		trs[i] = tr
		wg.Add(1)
		go func(i int, chunk []storage.RID, tr *storage.Tracker) {
			defer wg.Done()
			rows[i], errs[i] = f.fetchChunk(chunk, tr, &stop)
		}(i, f.rids[starts[i]:starts[i+1]], tr)
	}
	wg.Wait()
	for _, tr := range trs {
		f.m.tr.Merge(tr)
	}
	if err := parallelWorkerErr(errs); err != nil {
		return false, err
	}
	for i := range rows {
		for _, r := range rows[i] {
			f.out.push(r)
		}
	}
	f.done = true
	return true, nil
}

// fetchChunk runs one worker's share of the final fetch: same-page runs
// of non-excluded RIDs, each span-fetched once, with a private prefetch
// window staged ahead inside the chunk. Kept rows are returned in RID
// order; they are copies (or projections), never aliases of the decode
// scratch.
func (f *finalStage) fetchChunk(chunk []storage.RID, tr *storage.Tracker, stop *atomic.Bool) ([]expr.Row, error) {
	var out []expr.Row
	var scratch expr.Row
	pfbuf := make([]storage.PageID, 0, finalPrefetchWindow)
	pfPos := 0
	run := make([]storage.RID, 0, 16)
	pos := 0
	for pos < len(chunk) {
		if stop.Load() {
			return out, nil
		}
		// Stage upcoming pages of this chunk (accounting-free).
		if pfPos < pos {
			pfPos = pos
		}
		if pfPos < len(chunk) {
			buf := pfbuf[:0]
			var last storage.PageID
			for pfPos < len(chunk) && len(buf) < finalPrefetchWindow {
				pg := chunk[pfPos].Page
				if len(buf) == 0 || pg != last {
					buf = append(buf, pg)
					last = pg
				}
				pfPos++
			}
			f.q.Table.Pool().Prefetch(buf)
		}
		// Collect the next same-page run of non-excluded RIDs.
		run = run[:0]
		var page storage.PageID
		for pos < len(chunk) {
			r := chunk[pos]
			if f.exclude != nil && f.exclude.MayContain(r) {
				pos++
				continue
			}
			if len(run) > 0 && r.Page != page {
				break
			}
			page = r.Page
			run = append(run, r)
			pos++
		}
		if len(run) == 0 {
			break
		}
		p, err := f.q.Table.Heap.GetSpanTracked(page, len(run), tr)
		if err != nil {
			stop.Store(true)
			return out, err
		}
		for _, r := range run {
			rec, err := p.Get(r.Slot)
			if err != nil {
				stop.Store(true)
				return out, err
			}
			row, err := expr.DecodeRowInto(rec, scratch)
			if err != nil {
				stop.Store(true)
				return out, err
			}
			scratch = row
			keep, err := expr.EvalPred(f.q.Restriction, row, f.q.Binds)
			if err != nil {
				stop.Store(true)
				return out, err
			}
			if keep {
				if f.q.Projection == nil {
					row = append(expr.Row(nil), row...)
				}
				out = append(out, f.q.project(row))
			}
		}
	}
	return out, nil
}

// maybeParallelLegs fans the union scan out across its OR legs: each
// leg is an independent index range on its own index, so legs are the
// natural partitions. Every leg runs on its own goroutine with its own
// tracker (merged at the barrier in leg order), bounded by a
// width-sized semaphore; RIDs append to the union list in leg order, so
// the list content and order equal the sequential leg-by-leg scan
// exactly. Leg scan-started events are emitted at the barrier, also in
// leg order (events feed no counters, so Metrics stay identical).
//
// The gate mirrors the Jscan discipline: competition must be disabled
// (union abandonment is all-or-nothing and interleaved with stepping;
// eager legs could never be abandoned mid-flight) and no borrow queue
// may be attached (the fast-first stream must progress at step
// cadence). Fresh scans only — any consumed leg falls back to the
// sequential path.
func (u *uscan) maybeParallelLegs() (bool, error) {
	if u.idx != 0 || u.seen != 0 || u.cur != nil || len(u.legs) < 2 ||
		!u.cfg.DisableCompetition || u.borrow != nil {
		return false, nil
	}
	if u.cfg.effectiveWorkers() < 2 {
		return false, nil
	}
	// The union's appraised work is the sum of its legs' scans.
	var estIO float64
	for _, l := range u.legs {
		estIO += u.model.LeafPages(l.Est, l.Index.Tree.AvgLeafEntries()) +
			float64(l.Index.Tree.Height())
	}
	workers := decideWidth(u.cfg, u.ec, u.trc, "Uscan", estIO)
	if workers < 2 {
		return false, nil
	}
	if workers > len(u.legs) {
		workers = len(u.legs)
	}
	n := len(u.legs)
	rids := make([][]storage.RID, n)
	seen := make([]int, n)
	errs := make([]error, n)
	trs := make([]*storage.Tracker, n)
	gov := u.m.tr.Governor()
	batchN := u.cfg.StepEntries
	if batchN < 1 {
		batchN = 1
	}
	sem := make(chan struct{}, workers)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := range u.legs {
		trs[i] = storage.NewTracker(gov)
		wg.Add(1)
		go func(i int, leg unionLeg, tr *storage.Tracker) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if stop.Load() {
				return
			}
			rids[i], seen[i], errs[i] = u.scanLeg(leg, tr, &stop, batchN)
		}(i, u.legs[i], trs[i])
	}
	wg.Wait()
	// Merge charges before surfacing any error, in leg order.
	for _, tr := range trs {
		u.m.tr.Merge(tr)
	}
	if err := parallelWorkerErr(errs); err != nil {
		return true, err
	}
	for i, leg := range u.legs {
		u.names = append(u.names, leg.Index.Name)
		u.trc.emit(TraceEvent{
			Kind: EvScanStarted, Scan: u.name(), Indexes: []string{leg.Index.Name}, ActualIO: u.m.cost(),
			Detail: fmt.Sprintf("leg %d/%d, est %.0f rids (parallel worker)", i+1, n, leg.Est),
		})
		u.seen += seen[i]
		if err := u.list.AppendBatch(rids[i]); err != nil {
			return true, err
		}
	}
	u.finish()
	return true, nil
}

// scanLeg runs one union leg to completion on a worker goroutine:
// seek (one charged descent on the leg's own tracker), then leaf-sized
// batches filtered through the leg's local disjunct. Aborts at the next
// batch boundary when a sibling flips the stop flag.
func (u *uscan) scanLeg(leg unionLeg, tr *storage.Tracker, stop *atomic.Bool, batchN int) ([]storage.RID, int, error) {
	cur, err := leg.Index.Tree.SeekTracked(leg.Lo, leg.Hi, tr)
	if err != nil {
		stop.Store(true)
		return nil, 0, err
	}
	defer cur.Close()
	batch := make([]btree.Entry, batchN)
	var out []storage.RID
	seen := 0
	for !stop.Load() {
		n, err := cur.NextBatch(batch)
		if err != nil {
			stop.Store(true)
			return out, seen, err
		}
		if n == 0 {
			return out, seen, nil
		}
		seen += n
		for _, e := range batch[:n] {
			if leg.Local != nil {
				row, err := leg.Index.DecodeEntry(e.Key)
				if err != nil {
					stop.Store(true)
					return out, seen, err
				}
				keep, err := expr.EvalPred(leg.Local, row, u.q.Binds)
				if err != nil {
					stop.Store(true)
					return out, seen, err
				}
				if !keep {
					continue
				}
			}
			out = append(out, e.RID)
		}
	}
	return out, seen, nil
}

// partitionLimitCap returns the exact-count cap a partitioned Jscan may
// stop at, or 0 when the scan must run its full range. A capped scan
// collects candidate RIDs until the cross-worker fill counter reaches
// the query's Limit, then cancels its siblings — valid only when every
// collected RID is guaranteed to survive the final stage's
// full-restriction re-evaluation and reach the caller:
//
//   - adaptive mode only: static widths keep the exact sequential
//     full-range behaviour the equivalence tests pin;
//   - no ORDER BY: under a bare LIMIT any N matching rows are a
//     correct answer, so stopping at the first N collected is valid;
//   - this is the last index (j.idx past the estimates): a later scan
//     would intersect the list below the cap;
//   - the filter is still TrueFilter: an installed filter is a
//     may-contain structure, so survivors are not guaranteed matches;
//   - the index covers the whole restriction: acceptEntries then
//     evaluates the full predicate on the decoded entry, so every kept
//     RID is a definite match.
func (j *jscan) partitionLimitCap() int {
	if !j.cfg.AdaptiveParallelism || j.q.Limit <= 0 || len(j.q.OrderBy) != 0 {
		return 0
	}
	if j.idx < len(j.ests) {
		return 0
	}
	if _, exact := j.filter.(rid.TrueFilter); !exact {
		return 0
	}
	if !j.curIx.Covers(expr.Columns(j.q.Restriction)) {
		return 0
	}
	return j.q.Limit
}

// partitionDisqualifier returns why the current scan must stay on the
// sequential path ("" = eligible to partition). Exactly one reason is
// reported — the first that applies — and each is asserted individually
// by TestJscanPartitionGate.
func (j *jscan) partitionDisqualifier() string {
	switch {
	case !j.partitionable:
		// A continued race loser resumes mid-range on an arbitrary
		// operator; there are no fresh range bounds to partition.
		return "continued scan"
	case j.seen != 0:
		// Entries were already consumed sequentially; an eager
		// partition pass over the full range would double-charge them.
		return "rows already seen"
	case !j.cfg.DisableCompetition:
		// Abandonment decisions are interleaved with scanning; a scan
		// that ran eagerly to completion could never be abandoned
		// mid-flight, changing the competition's observable outcomes.
		return "competition enabled"
	case j.borrow != nil:
		// A fast-first borrow stream must progress at the sequential
		// step cadence: the foreground can kill the background the
		// moment it finishes delivering, and how far the background got
		// by then is observable in the query's attributed I/O.
		return "borrow queue attached"
	case j.q.Limit != 0 && j.partitionLimitCap() == 0:
		// Early termination at the Limit is worth more than
		// parallelism — unless the adaptive exact-count cap applies, in
		// which case the partitioned scan stops at the cap itself.
		return "limit without exact-count cap"
	}
	return ""
}

// maybePartitionedScan is the eager partitioned Jscan: when the gate
// (partitionDisqualifier) clears, the current index scan's key range
// splits into leaf-aligned partitions and every worker filters its own
// slice through the shared (read-only) bitmap filter and a private
// accept scratch. Worker 0 continues on the already-opened cursor —
// whose tracked Seek charged the shared descent exactly as a sequential
// scan would — while later workers open directly on their first leaf
// for one charge apiece. Under an exact-count cap (partitionLimitCap)
// workers share a fill counter and the first to reach the cap cancels
// its siblings at their next batch boundary. Returns handled when the
// scan completed (or failed) under the parallel path.
func (j *jscan) maybePartitionedScan() (bool, error) {
	if j.cfg.effectiveWorkers() < 2 || j.partitionDisqualifier() != "" {
		return false, nil
	}
	cur, ok := j.cur.(*btree.Cursor)
	if !ok {
		return false, nil
	}
	limitCap := j.partitionLimitCap()
	// The adaptive policy sees the work the scan will actually do: the
	// full range, or only the leaves needed to fill the cap.
	est := j.rangeEst
	if limitCap > 0 && float64(limitCap) < est {
		est = float64(limitCap)
	}
	estIO := j.model.LeafPages(est, j.curIx.Tree.AvgLeafEntries()) + float64(j.curIx.Tree.Height())
	workers := decideWidth(j.cfg, j.ec, j.trc, "Jscan", estIO)
	if workers < 2 {
		return false, nil
	}
	parts, err := j.curIx.Tree.PartitionRange(j.curLo, j.curHi, workers)
	if err != nil || len(parts) < 2 {
		// Planning trouble or a range too small to split: scan
		// sequentially. Planning is accounting-free, so falling back
		// costs nothing.
		return false, nil
	}
	tree := j.curIx.Tree
	n := len(parts)
	rids := make([][]storage.RID, n)
	seen := make([]int, n)
	errs := make([]error, n)
	trs := make([]*storage.Tracker, n)
	gov := j.m.tr.Governor()
	batchN := j.cfg.StepEntries
	if batchN < 1 {
		batchN = 1
	}
	var stop atomic.Bool
	// fill counts collected RIDs across all workers when an exact-count
	// cap applies; the worker whose batch reaches the cap flips the stop
	// flag, so siblings overshoot by at most one batch (about one leaf
	// access) before unwinding at their next NextBatch check.
	var fill atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		tr := storage.NewTracker(gov)
		trs[i] = tr
		wg.Add(1)
		go func(i int, part btree.RangePartition, tr *storage.Tracker) {
			defer wg.Done()
			var src Operator
			if i == 0 {
				src = cur // descent already charged to the shared meter
			} else {
				c, err := tree.SeekPartitionLeaf(part.Leaf, j.curHi, tr)
				if err != nil {
					errs[i] = err
					stop.Store(true)
					return
				}
				src = c
			}
			defer src.Close()
			if i < n-1 {
				// Interior partitions own whole leaves; the exact count
				// stops them at their boundary without touching the next
				// worker's first leaf. The last partition terminates on
				// the range bound like a sequential scan.
				src = &boundedOp{src: src, remaining: part.Count}
			}
			batch := make([]btree.Entry, batchN)
			sc := newAcceptScratch(batchN)
			for !stop.Load() {
				cnt, err := src.NextBatch(batch)
				if err != nil {
					errs[i] = err
					stop.Store(true)
					return
				}
				if cnt == 0 {
					return
				}
				seen[i] += cnt
				kept, err := acceptEntries(batch[:cnt], j.curIx, j.local, j.q.Binds, j.filter, sc)
				if err != nil {
					errs[i] = err
					stop.Store(true)
					return
				}
				rids[i] = append(rids[i], kept...)
				if limitCap > 0 && len(kept) > 0 &&
					fill.Add(int64(len(kept))) >= int64(limitCap) {
					stop.Store(true)
					return
				}
			}
		}(i, parts[i], tr)
	}
	wg.Wait()
	for _, tr := range trs {
		j.m.tr.Merge(tr)
	}
	if err := parallelWorkerErr(errs); err != nil {
		return true, err
	}
	if limitCap > 0 && fill.Load() >= int64(limitCap) {
		j.trc.emit(TraceEvent{
			Kind: EvParallelEarlyCancel, Scan: j.name(), Indexes: []string{j.curIx.Name},
			ActualIO: j.m.cost(),
			Detail:   fmt.Sprintf("%d candidates >= LIMIT %d, sibling workers cancelled", fill.Load(), limitCap),
		})
	}
	for i := range parts {
		j.seen += seen[i]
		if len(rids[i]) == 0 {
			continue
		}
		if err := j.list.AppendBatch(rids[i]); err != nil {
			return true, err
		}
		if j.borrowActive {
			for _, r := range rids[i] {
				j.borrow.push(r)
			}
		}
	}
	// Worker cursors are closed (worker 0's is the scan cursor, whose
	// pin the bounded stop left behind); completeScan adopts the list
	// exactly as it would after sequential exhaustion.
	return true, j.completeScan()
}
