package core

import (
	"sync"
	"sync/atomic"

	"rdbdyn/internal/btree"
	"rdbdyn/internal/expr"
	"rdbdyn/internal/storage"
)

// Partitioned intra-query execution (Config.Parallelism > 1).
//
// Three scan shapes fan out across workers, all with the same contract:
// the fan-out happens entirely inside one step() call (the coordinator
// waits on every worker before returning, so no goroutine ever outlives
// a step), every worker charges its own storage.Tracker sharing the
// query's Governor (live budget enforcement), the worker trackers merge
// into the stage's meter at the barrier (Tracker.Merge is associative,
// so attributed totals equal the sequential scan exactly), and worker
// results merge in partition order (partitions are contiguous, so the
// concatenation is the sequential output order).
//
// Eligibility is deliberately conservative: Limit must be 0 (early
// termination is worth more than parallelism and an eager scan would
// overpay), and the partitioned Jscan additionally requires
// DisableCompetition (abandonment decisions are interleaved with
// scanning; a scan that cannot be abandoned can run eagerly).
//
// Worker errors resolve deterministically to the lowest partition
// index; a failing worker flips a shared stop flag so siblings unwind
// at their next batch boundary (the buffer pool's governor checkpoint
// bounds this to about one page access), and partial worker charges are
// still merged so cancelled queries report exact attributed I/O.

// parallelWorkerErr picks the terminal error: the lowest-index worker's.
func parallelWorkerErr(errs []error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// runParallelScan is the eager partitioned Tscan: the heap's page range
// splits into contiguous chunks, one bounded range cursor per worker.
// Every heap page is read exactly once by exactly one worker — the same
// multiset of page accesses as the sequential cursor — and each
// worker's readahead window stays inside its own partition. Returns
// false when the heap is too small to split.
func (t *tscan) runParallelScan() (bool, error) {
	npages := t.q.Table.Heap.NumPages()
	k := t.workers
	if k > npages {
		k = npages
	}
	if k < 2 {
		return false, nil
	}
	heap := t.q.Table.Heap
	rows := make([][]expr.Row, k)
	errs := make([]error, k)
	trs := make([]*storage.Tracker, k)
	gov := t.m.tr.Governor()
	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		start := storage.PageNo(i * npages / k)
		end := storage.PageNo((i + 1) * npages / k)
		tr := storage.NewTracker(gov)
		trs[i] = tr
		wg.Add(1)
		go func(i int, start, end storage.PageNo, tr *storage.Tracker) {
			defer wg.Done()
			cur := heap.RangeCursorTracked(start, end, tr)
			defer cur.Close()
			for !stop.Load() {
				rec, rrid, ok, err := cur.Next()
				if err != nil {
					errs[i] = err
					stop.Store(true)
					return
				}
				if !ok {
					return
				}
				if t.exclude != nil && t.exclude.MayContain(rrid) {
					continue
				}
				row, err := expr.DecodeRow(rec)
				if err != nil {
					errs[i] = err
					stop.Store(true)
					return
				}
				keep, err := expr.EvalPred(t.q.Restriction, row, t.q.Binds)
				if err != nil {
					errs[i] = err
					stop.Store(true)
					return
				}
				if keep {
					rows[i] = append(rows[i], t.q.project(row))
				}
			}
		}(i, start, end, tr)
	}
	wg.Wait()
	// Merge charges before surfacing any error: attribution stays exact
	// even for a query unwound mid-scan.
	for _, tr := range trs {
		t.m.tr.Merge(tr)
	}
	if err := parallelWorkerErr(errs); err != nil {
		return false, err
	}
	for i := range rows {
		for _, r := range rows[i] {
			t.out.push(r)
		}
	}
	t.done = true
	return true, nil
}

// runParallelFetch is the eager partitioned final fetch: the sorted RID
// list splits into contiguous chunks aligned to page boundaries (a
// same-page run is never split across workers, so each data page is
// span-fetched by exactly one worker and the hit/miss profile matches
// the sequential clustered fetch). Returns false when the list does not
// split.
func (f *finalStage) runParallelFetch() (bool, error) {
	k := f.workers
	if k > len(f.rids)/(2*finalFetchBudget) {
		k = len(f.rids) / (2 * finalFetchBudget)
	}
	if k < 2 {
		return false, nil
	}
	// Chunk boundaries: the nominal even split, advanced to the next
	// page transition.
	starts := make([]int, 0, k+1)
	starts = append(starts, 0)
	for i := 1; i < k; i++ {
		b := i * len(f.rids) / k
		if b <= starts[len(starts)-1] {
			continue
		}
		for b < len(f.rids) && f.rids[b].Page == f.rids[b-1].Page {
			b++
		}
		if b >= len(f.rids) || b <= starts[len(starts)-1] {
			continue
		}
		starts = append(starts, b)
	}
	if len(starts) < 2 {
		return false, nil
	}
	starts = append(starts, len(f.rids))
	n := len(starts) - 1
	rows := make([][]expr.Row, n)
	errs := make([]error, n)
	trs := make([]*storage.Tracker, n)
	gov := f.m.tr.Governor()
	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		tr := storage.NewTracker(gov)
		trs[i] = tr
		wg.Add(1)
		go func(i int, chunk []storage.RID, tr *storage.Tracker) {
			defer wg.Done()
			rows[i], errs[i] = f.fetchChunk(chunk, tr, &stop)
		}(i, f.rids[starts[i]:starts[i+1]], tr)
	}
	wg.Wait()
	for _, tr := range trs {
		f.m.tr.Merge(tr)
	}
	if err := parallelWorkerErr(errs); err != nil {
		return false, err
	}
	for i := range rows {
		for _, r := range rows[i] {
			f.out.push(r)
		}
	}
	f.done = true
	return true, nil
}

// fetchChunk runs one worker's share of the final fetch: same-page runs
// of non-excluded RIDs, each span-fetched once, with a private prefetch
// window staged ahead inside the chunk. Kept rows are returned in RID
// order; they are copies (or projections), never aliases of the decode
// scratch.
func (f *finalStage) fetchChunk(chunk []storage.RID, tr *storage.Tracker, stop *atomic.Bool) ([]expr.Row, error) {
	var out []expr.Row
	var scratch expr.Row
	pfbuf := make([]storage.PageID, 0, finalPrefetchWindow)
	pfPos := 0
	run := make([]storage.RID, 0, 16)
	pos := 0
	for pos < len(chunk) {
		if stop.Load() {
			return out, nil
		}
		// Stage upcoming pages of this chunk (accounting-free).
		if pfPos < pos {
			pfPos = pos
		}
		if pfPos < len(chunk) {
			buf := pfbuf[:0]
			var last storage.PageID
			for pfPos < len(chunk) && len(buf) < finalPrefetchWindow {
				pg := chunk[pfPos].Page
				if len(buf) == 0 || pg != last {
					buf = append(buf, pg)
					last = pg
				}
				pfPos++
			}
			f.q.Table.Pool().Prefetch(buf)
		}
		// Collect the next same-page run of non-excluded RIDs.
		run = run[:0]
		var page storage.PageID
		for pos < len(chunk) {
			r := chunk[pos]
			if f.exclude != nil && f.exclude.MayContain(r) {
				pos++
				continue
			}
			if len(run) > 0 && r.Page != page {
				break
			}
			page = r.Page
			run = append(run, r)
			pos++
		}
		if len(run) == 0 {
			break
		}
		p, err := f.q.Table.Heap.GetSpanTracked(page, len(run), tr)
		if err != nil {
			stop.Store(true)
			return out, err
		}
		for _, r := range run {
			rec, err := p.Get(r.Slot)
			if err != nil {
				stop.Store(true)
				return out, err
			}
			row, err := expr.DecodeRowInto(rec, scratch)
			if err != nil {
				stop.Store(true)
				return out, err
			}
			scratch = row
			keep, err := expr.EvalPred(f.q.Restriction, row, f.q.Binds)
			if err != nil {
				stop.Store(true)
				return out, err
			}
			if keep {
				if f.q.Projection == nil {
					row = append(expr.Row(nil), row...)
				}
				out = append(out, f.q.project(row))
			}
		}
	}
	return out, nil
}

// maybePartitionedScan is the eager partitioned Jscan: when competition
// is disabled (the scan cannot be abandoned mid-flight) the current
// index scan's key range splits into leaf-aligned partitions and every
// worker filters its own slice through the shared (read-only) bitmap
// filter and a private accept scratch. Worker 0 continues on the
// already-opened cursor — whose tracked Seek charged the shared descent
// exactly as a sequential scan would — while later workers open
// directly on their first leaf for one charge apiece. Returns handled
// when the scan completed (or failed) under the parallel path.
func (j *jscan) maybePartitionedScan() (bool, error) {
	workers := j.cfg.effectiveWorkers()
	if workers < 2 || !j.partitionable || j.seen != 0 ||
		!j.cfg.DisableCompetition || j.q.Limit != 0 || j.borrow != nil {
		// A jscan created with a borrow queue (fast-first) can be killed
		// the moment the foreground finishes delivering; how far it got by
		// then is observable in the query's attributed I/O, so it must
		// progress at the sequential step cadence, never eagerly.
		return false, nil
	}
	cur, ok := j.cur.(*btree.Cursor)
	if !ok {
		return false, nil
	}
	parts, err := j.curIx.Tree.PartitionRange(j.curLo, j.curHi, workers)
	if err != nil || len(parts) < 2 {
		// Planning trouble or a range too small to split: scan
		// sequentially. Planning is accounting-free, so falling back
		// costs nothing.
		return false, nil
	}
	tree := j.curIx.Tree
	n := len(parts)
	rids := make([][]storage.RID, n)
	seen := make([]int, n)
	errs := make([]error, n)
	trs := make([]*storage.Tracker, n)
	gov := j.m.tr.Governor()
	batchN := j.cfg.StepEntries
	if batchN < 1 {
		batchN = 1
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		tr := storage.NewTracker(gov)
		trs[i] = tr
		wg.Add(1)
		go func(i int, part btree.RangePartition, tr *storage.Tracker) {
			defer wg.Done()
			var src Operator
			if i == 0 {
				src = cur // descent already charged to the shared meter
			} else {
				c, err := tree.SeekPartitionLeaf(part.Leaf, j.curHi, tr)
				if err != nil {
					errs[i] = err
					stop.Store(true)
					return
				}
				src = c
			}
			defer src.Close()
			if i < n-1 {
				// Interior partitions own whole leaves; the exact count
				// stops them at their boundary without touching the next
				// worker's first leaf. The last partition terminates on
				// the range bound like a sequential scan.
				src = &boundedOp{src: src, remaining: part.Count}
			}
			batch := make([]btree.Entry, batchN)
			sc := newAcceptScratch(batchN)
			for !stop.Load() {
				cnt, err := src.NextBatch(batch)
				if err != nil {
					errs[i] = err
					stop.Store(true)
					return
				}
				if cnt == 0 {
					return
				}
				seen[i] += cnt
				kept, err := acceptEntries(batch[:cnt], j.curIx, j.local, j.q.Binds, j.filter, sc)
				if err != nil {
					errs[i] = err
					stop.Store(true)
					return
				}
				rids[i] = append(rids[i], kept...)
			}
		}(i, parts[i], tr)
	}
	wg.Wait()
	for _, tr := range trs {
		j.m.tr.Merge(tr)
	}
	if err := parallelWorkerErr(errs); err != nil {
		return true, err
	}
	for i := range parts {
		j.seen += seen[i]
		if len(rids[i]) == 0 {
			continue
		}
		if err := j.list.AppendBatch(rids[i]); err != nil {
			return true, err
		}
		if j.borrowActive {
			for _, r := range rids[i] {
				j.borrow.push(r)
			}
		}
	}
	// Worker cursors are closed (worker 0's is the scan cursor, whose
	// pin the bounded stop left behind); completeScan adopts the list
	// exactly as it would after sequential exhaustion.
	return true, j.completeScan()
}
