package core

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"rdbdyn/internal/expr"
	"rdbdyn/internal/storage"
)

// equivRun captures everything the deterministic-equivalence suite
// compares between a sequential and a parallel execution of one query.
type equivRun struct {
	rows     []string
	tactic   string
	strategy string
	io       storage.IOStats
	estimate int64
	fgRows   int
	finalLen int
	snap     MetricsSnapshot
	// widthEvents counts the run's parallel-width-chosen trace events
	// (adaptive runs only; always 0 under a static width).
	widthEvents int
}

// runEquiv executes q on a fresh optimizer (own metrics) at the given
// parallelism — statically, or through the adaptive width policy —
// against a cold pool, with racing off (race outcomes are
// scheduling-dependent by design) and competition off (the partitioned
// Jscan path requires it, and abandonment timing is step-cadence
// shaped). Determinism everywhere else is the claim under test.
func runEquiv(t *testing.T, f *fixture, q *Query, parallelism int, adaptive bool) equivRun {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Parallelism = parallelism
	cfg.AdaptiveParallelism = adaptive
	cfg.RaceFactor = -1
	cfg.DisableCompetition = true
	o := NewOptimizer(cfg)
	f.pool.EvictAll()
	rows := o.Run(q)
	got := drain(t, rows)
	if n := f.pool.PinnedPages(); n != 0 {
		t.Fatalf("parallelism=%d leaked %d pins", parallelism, n)
	}
	st := rows.Stats()
	keys := make([]string, len(got))
	for i, r := range got {
		keys[i] = rowKey(r)
	}
	widths := 0
	for _, ev := range st.Events {
		if ev.Kind == EvParallelWidthChosen {
			widths++
		}
	}
	return equivRun{
		rows:        keys,
		tactic:      st.Tactic,
		strategy:    st.Strategy,
		io:          st.IO,
		estimate:    st.EstimateIO,
		fgRows:      st.FgRows,
		finalLen:    st.FinalListLen,
		snap:        o.Metrics().Snapshot(),
		widthEvents: widths,
	}
}

// TestParallelEquivalenceAllTactics is the deterministic-equivalence
// suite: for every tactic shape, a run at Parallelism in {2, 4, NumCPU}
// must deliver the identical rows in the identical order, charge the
// identical attributed I/O (reads, writes, and hits separately — not
// just the cost sum), and move the cumulative metrics identically to
// the paper-faithful sequential run. Parallelism=0 is the baseline, so
// this is also the proof that the knob's default changes nothing.
func TestParallelEquivalenceAllTactics(t *testing.T) {
	f := newFixture(t, 10000, "AGE", "CITY")
	age, city, salary := f.col(t, "AGE"), f.col(t, "CITY"), f.col(t, "SALARY")

	queries := []struct {
		name string
		q    *Query
	}{
		{"tscan", &Query{
			Table:       f.tab,
			Restriction: expr.NewCmp(expr.GE, expr.Col(salary, "SALARY"), expr.Lit(expr.Float(5000))),
		}},
		{"background-only", bgQuery(f, t, GoalTotalTime)},
		{"fast-first", bgQuery(f, t, GoalFastFirst)},
		{"index-only", &Query{
			Table:       f.tab,
			Restriction: expr.NewCmp(expr.LT, expr.Col(age, "AGE"), expr.Lit(expr.Int(30))),
			Projection:  []int{age},
		}},
		{"sorted", &Query{
			Table:       f.tab,
			Restriction: expr.NewCmp(expr.LT, expr.Col(city, "CITY"), expr.Lit(expr.Int(40))),
			OrderBy:     []int{salary},
		}},
		{"ordered-index", &Query{
			Table:       f.tab,
			Restriction: expr.NewCmp(expr.LT, expr.Col(age, "AGE"), expr.Lit(expr.Int(25))),
			OrderBy:     []int{age},
		}},
		{"union", &Query{
			Table: f.tab,
			Restriction: expr.NewOr(
				expr.NewCmp(expr.LT, expr.Col(age, "AGE"), expr.Lit(expr.Int(5))),
				expr.NewCmp(expr.EQ, expr.Col(city, "CITY"), expr.Lit(expr.Int(7))),
			),
		}},
	}
	widths := []int{2, 4, runtime.NumCPU()}

	for _, tc := range queries {
		t.Run(tc.name, func(t *testing.T) {
			base := runEquiv(t, f, tc.q, 0, false)
			if len(base.rows) == 0 {
				t.Fatalf("degenerate fixture: %s query delivered no rows", tc.name)
			}
			for _, w := range widths {
				par := runEquiv(t, f, tc.q, w, false)
				if par.tactic != base.tactic || par.strategy != base.strategy {
					t.Fatalf("w=%d: tactic/strategy %s/%s, sequential %s/%s",
						w, par.tactic, par.strategy, base.tactic, base.strategy)
				}
				if !reflect.DeepEqual(par.rows, base.rows) {
					t.Fatalf("w=%d: %d rows vs %d, or order diverged", w, len(par.rows), len(base.rows))
				}
				if par.io != base.io {
					t.Fatalf("w=%d: attributed I/O %+v, sequential %+v", w, par.io, base.io)
				}
				if par.estimate != base.estimate {
					t.Fatalf("w=%d: estimation I/O %d, sequential %d", w, par.estimate, base.estimate)
				}
				if par.fgRows != base.fgRows || par.finalLen != base.finalLen {
					t.Fatalf("w=%d: fg=%d final=%d, sequential fg=%d final=%d",
						w, par.fgRows, par.finalLen, base.fgRows, base.finalLen)
				}
				if !reflect.DeepEqual(par.snap, base.snap) {
					t.Fatalf("w=%d: metrics delta diverged:\n par %+v\n seq %+v", w, par.snap, base.snap)
				}
			}
		})
	}
}

// raceQuery builds a restriction whose two index estimates are both
// inexact ranges, so a positive RaceFactor always starts a race.
func raceQuery(f *fixture, t *testing.T) *Query {
	age, city := f.col(t, "AGE"), f.col(t, "CITY")
	return &Query{
		Table: f.tab,
		Restriction: expr.NewAnd(
			expr.NewCmp(expr.LT, expr.Col(age, "AGE"), expr.Lit(expr.Int(20))),
			expr.NewCmp(expr.LT, expr.Col(city, "CITY"), expr.Lit(expr.Int(50))),
		),
		Goal: GoalTotalTime,
	}
}

// waitGoroutines fails the test if the process goroutine count does not
// return to the pre-run baseline: a worker or race leg outlived its
// barrier. Parallel fan-outs are barrier-synchronous inside one step,
// so nothing should linger beyond Close.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d goroutines alive, baseline %d: orphaned parallel workers", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestParallelRaceAuditWinnerAdoption runs goroutine race legs to
// natural resolution (winner adoption + loser continuation) and audits
// the aftermath: correct rows, a race actually having started, zero
// leaked pins, zero orphaned goroutines. Run under -race in CI.
func TestParallelRaceAuditWinnerAdoption(t *testing.T) {
	f := newFixture(t, 10000, "AGE", "CITY")
	q := raceQuery(f, t)
	cfg := DefaultConfig()
	cfg.Parallelism = 2
	cfg.RaceFactor = 1000 // adjacent estimates always race

	baseline := runtime.NumGoroutine()
	o := NewOptimizer(cfg)
	rows := o.Run(q)
	got := drain(t, rows)
	sameMultiset(t, got, f.naive(t, q), "goroutine race")
	st := rows.Stats()
	if !hasEvent(st, EvRaceStarted, "") {
		t.Fatalf("no race started; trace: %v", st.Trace)
	}
	if n := f.pool.PinnedPages(); n != 0 {
		t.Fatalf("%d pins leaked after goroutine race", n)
	}
	waitGoroutines(t, baseline)
}

// TestParallelRaceAuditCancellation cancels the query the moment its
// race starts, so the goroutine legs are unwound by the governor
// checkpoint instead of finishing. Both legs must come back through the
// barrier, the cancellation must surface exactly once, and neither pins
// nor goroutines may leak.
func TestParallelRaceAuditCancellation(t *testing.T) {
	f := newFixture(t, 10000, "AGE", "CITY")
	q := raceQuery(f, t)
	cfg := DefaultConfig()
	cfg.Parallelism = 2
	cfg.RaceFactor = 1000

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	baseline := runtime.NumGoroutine()
	ec := NewExecCtx(ctx, 0).WithTrace(&eventTrigger{kind: EvRaceStarted, fire: cancel})
	o := NewOptimizer(cfg)
	rows := o.RunExec(ec, q)
	if _, err := drainToErr(rows); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	checkCancelled(t, f, rows, o, false, false)
	waitGoroutines(t, baseline)
}

// TestParallelCancellationSweep is the cancellation/deadline/budget
// sweep over the partitioned parallel paths (satellite of the
// parallelism work): each mode must surface its error exactly once per
// query — counted by the cumulative metrics — with every worker unwound
// through the barrier, no pins held, and no goroutines orphaned.
func TestParallelCancellationSweep(t *testing.T) {
	f := newFixture(t, 10000, "AGE", "CITY")
	salary := f.col(t, "SALARY")
	tscanQ := &Query{
		Table:       f.tab,
		Restriction: expr.NewCmp(expr.GE, expr.Col(salary, "SALARY"), expr.Lit(expr.Float(0))),
	}
	// Budgets are sized to trip inside each query's partitioned fan-out:
	// the tscan charges hundreds of heap reads, the jscan's partitioned
	// IX_AGE scan spans roughly I/Os 5..12 of its query.
	queries := map[string]struct {
		q      *Query
		budget int64
	}{
		"partitioned-tscan": {tscanQ, 25},
		"partitioned-jscan": {bgQuery(f, t, GoalTotalTime), 8},
	}
	const workers = 4

	for qname, tc := range queries {
		q, budget := tc.q, tc.budget
		t.Run(qname+"/canceled", func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Parallelism = workers
			cfg.DisableCompetition = true
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			baseline := runtime.NumGoroutine()
			// Fire on the tactic choice: the first parallel fan-out after
			// it hits the governor checkpoint already cancelled.
			ec := NewExecCtx(ctx, 0).WithTrace(&eventTrigger{kind: EvTacticChosen, fire: cancel})
			o := NewOptimizer(cfg)
			f.pool.EvictAll()
			rows := o.RunExec(ec, q)
			if _, err := drainToErr(rows); !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			checkCancelled(t, f, rows, o, false, false)
			waitGoroutines(t, baseline)
		})

		t.Run(qname+"/budget", func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Parallelism = workers
			cfg.DisableCompetition = true
			baseline := runtime.NumGoroutine()
			ec := NewExecCtx(context.Background(), budget)
			o := NewOptimizer(cfg)
			f.pool.EvictAll()
			rows := o.RunExec(ec, q)
			if _, err := drainToErr(rows); !errors.Is(err, ErrBudgetExceeded) {
				t.Fatalf("err = %v, want ErrBudgetExceeded", err)
			}
			// Workers check the governor before each page access, so the
			// overshoot past the budget is bounded by the in-flight
			// accesses: strictly fewer than one per worker.
			if spent := ec.IOSpent(); spent < budget || spent >= budget+workers {
				t.Fatalf("spent %d simulated I/Os, want within [%d, %d)", spent, budget, budget+workers)
			}
			checkCancelled(t, f, rows, o, false, true)
			waitGoroutines(t, baseline)
		})

		t.Run(qname+"/deadline", func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Parallelism = workers
			cfg.DisableCompetition = true
			ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
			defer cancel()
			baseline := runtime.NumGoroutine()
			// Sleeping past the deadline inside the trace sink guarantees
			// the expiry lands mid-retrieval without timing flakiness.
			ec := NewExecCtx(ctx, 0).WithTrace(&eventTrigger{
				kind: EvTacticChosen,
				fire: func() { time.Sleep(60 * time.Millisecond) },
			})
			o := NewOptimizer(cfg)
			f.pool.EvictAll()
			rows := o.RunExec(ec, q)
			if _, err := drainToErr(rows); !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("err = %v, want context.DeadlineExceeded", err)
			}
			checkCancelled(t, f, rows, o, true, false)
			waitGoroutines(t, baseline)
		})
	}
}

// TestParallelismKnobResolution pins the knob's contract: 0 and 1 stay
// sequential, negatives resolve to GOMAXPROCS, large values clamp, and
// WithDefaults leaves 0 alone (the fidelity guarantee EXPERIMENTS
// depends on).
func TestParallelismKnobResolution(t *testing.T) {
	cases := []struct {
		in   int
		want int
	}{
		{0, 1},
		{1, 1},
		{2, 2},
		{-1, runtime.GOMAXPROCS(0)},
		{maxParallelism + 50, maxParallelism},
	}
	for _, c := range cases {
		if got := (Config{Parallelism: c.in}).effectiveWorkers(); got != c.want {
			t.Fatalf("effectiveWorkers(%d) = %d, want %d", c.in, got, c.want)
		}
	}
	if got := (Config{}).WithDefaults().Parallelism; got != 0 {
		t.Fatalf("WithDefaults set Parallelism = %d, want 0 (sequential default)", got)
	}
	if got := NewOptimizer(Config{Parallelism: 4}).Config().Parallelism; got != 4 {
		t.Fatalf("optimizer dropped Parallelism: %d", got)
	}
}
