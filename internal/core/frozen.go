package core

import (
	"errors"
	"fmt"

	"rdbdyn/internal/catalog"
	"rdbdyn/internal/estimate"
	"rdbdyn/internal/expr"
)

// ErrPlanStale reports that a cached plan references an index that no
// longer exists; the caller must drop the plan and re-enter dynamic
// competition.
var ErrPlanStale = errors.New("core: cached plan references a missing index")

// CachedPlan is the engine plan cache's distillation of one completed
// dynamic retrieval: the tactic and the index order that won, plus the
// estimated entry counts that seeded the winning arrangement. It names
// indexes rather than holding pointers, so a dropped-and-recreated
// index is re-resolved (or detected missing) at replay time, and holds
// no bind values — the replay recomputes its scan bounds from the
// current bindings, exactly as a frozen plan in the paper "still sees
// run-time values".
type CachedPlan struct {
	// Tactic is the tacticKind string of the winning arrangement.
	Tactic string
	// Indexes is the index order to replay: for sscan/fscan the single
	// chosen index; for background-only the adopted Jscan order; for
	// fast-first the borrow source; for sorted the order-delivering
	// index followed by the filter Jscan's order. Empty for tscan.
	Indexes []string
	// RIDs carries the initial-stage entry estimates parallel to
	// Indexes (0 when unknown), seeding the replay Jscan's bookkeeping.
	RIDs []float64
}

func (p *CachedPlan) String() string {
	if p == nil {
		return "<none>"
	}
	if len(p.Indexes) == 0 {
		return p.Tactic
	}
	s := p.Tactic + "("
	for i, n := range p.Indexes {
		if i > 0 {
			s += ","
		}
		s += n
	}
	return s + ")"
}

// Fingerprint canonically identifies the plan for win-streak counting.
func (p *CachedPlan) Fingerprint() string { return p.String() }

// CapturePlan distills a completed retrieval's stats into a replayable
// CachedPlan. It returns ok=false when the run is not worth caching:
// the competition intervened mid-flight (strategy switch, race, borrow
// overflow, mid-scan abandonment, a completed-but-useless list), the
// arrangement is not replayable deterministically, or the tactic has
// no frozen form. The test is structural: a capturable run's replay
// performs exactly the original's productive work — scans that were
// merely *skipped* before starting cost nothing and do not block
// capture.
func CapturePlan(st *RetrievalStats) (*CachedPlan, bool) {
	// hj stages are refused on their own grounds, ahead of the blanket
	// join rejection: a hash build's contents are run-time inner state
	// no replay can re-derive, so even a future per-operator
	// join-freezing scheme must keep refusing these stages.
	for i := range st.JoinStages {
		if st.JoinStages[i].Operator == JoinOpHJ {
			return nil, false
		}
	}
	// Multi-table retrievals are never frozen: a join's operator and
	// order choices hinge on intermediate cardinalities the replay
	// machinery cannot re-derive, and mid-flight re-optimization is the
	// whole point of running them dynamically.
	if st.Tactic == "join" || len(st.JoinStages) > 0 {
		return nil, false
	}
	var chosen *TraceEvent
	var started []string
	var switches []*TraceEvent
	for i := range st.Events {
		ev := &st.Events[i]
		switch ev.Kind {
		case EvTacticChosen:
			if chosen == nil {
				chosen = ev
			}
		case EvScanStarted:
			// Per-index background scan openings (Jscan emits one per
			// index it actually reads; skips never start).
			if ev.Scan == "Jscan" && len(ev.Indexes) == 1 {
				started = append(started, ev.Indexes[0])
			}
		case EvStrategySwitch:
			switches = append(switches, ev)
		case EvBorrowOverflow, EvRaceStarted, EvRaceResolved, EvFixedPlan:
			return nil, false
		}
	}
	if chosen == nil {
		return nil, false
	}
	if len(switches) > 0 {
		// One exactly-replayable switch exists: a background-only Jscan
		// that skipped every index up front (zero scan I/O, no RID list
		// materialized) and recommended Tscan before anything ran. The
		// whole retrieval was one sequential scan; freeze it as tscan.
		if st.Tactic == "background-only" && len(switches) == 1 &&
			switches[0].Scan == "Tscan" && len(started) == 0 &&
			len(st.WinningOrder) == 0 && st.FinalListLen < 0 {
			return &CachedPlan{Tactic: "tscan"}, true
		}
		return nil, false
	}
	// Every background scan that opened must be in the adopted order,
	// in the same positions: a started-but-unadopted scan (mid-flight
	// abandonment or a complete-but-useless list) burned I/O the replay
	// would not reproduce.
	jscanClean := func() bool {
		if len(st.WinningOrder) != len(started) {
			return false
		}
		for i, n := range started {
			if st.WinningOrder[i] != n {
				return false
			}
		}
		return len(started) > 0
	}
	ridsFor := func(names []string) []float64 {
		out := make([]float64, len(names))
		for i, n := range names {
			for _, es := range st.Estimates {
				if es.Index == n {
					out[i] = es.RIDs
					break
				}
			}
		}
		return out
	}
	switch st.Tactic {
	case "tscan":
		if chosen.Scan != "Tscan" {
			return nil, false
		}
		return &CachedPlan{Tactic: "tscan"}, true
	case "sscan", "fscan":
		if len(chosen.Indexes) == 0 || len(started) > 0 {
			return nil, false
		}
		ix := chosen.Indexes[:1]
		return &CachedPlan{Tactic: st.Tactic, Indexes: ix, RIDs: ridsFor(ix)}, true
	case "background-only":
		if chosen.Scan != "Jscan" || !jscanClean() {
			return nil, false
		}
		order := append([]string(nil), st.WinningOrder...)
		return &CachedPlan{Tactic: st.Tactic, Indexes: order, RIDs: ridsFor(order)}, true
	case "fast-first":
		// Only the single-source borrow arrangement replays exactly: a
		// multi-index run's later scans overlap the foreground drain.
		if chosen.Scan != "Jscan" || !jscanClean() || len(st.WinningOrder) != 1 {
			return nil, false
		}
		order := append([]string(nil), st.WinningOrder...)
		return &CachedPlan{Tactic: st.Tactic, Indexes: order, RIDs: ridsFor(order)}, true
	case "sorted":
		// chosen.Indexes = [order-delivering index, filter candidates...];
		// the replay pairs the Fscan with the adopted filter order.
		if len(chosen.Indexes) < 2 || !jscanClean() {
			return nil, false
		}
		order := append([]string{chosen.Indexes[0]}, st.WinningOrder...)
		return &CachedPlan{Tactic: st.Tactic, Indexes: order, RIDs: ridsFor(order)}, true
	default:
		// index-only (always race-resolved), sort(...), empty-range,
		// error: no frozen form.
		return nil, false
	}
}

// RunFrozen replays a cached plan for q, skipping estimation and
// competition: scan bounds are recomputed from the current bindings
// (zero I/O), the captured arrangement executes with competition
// disabled, and an empty recomputed range still short-circuits to end
// of data. Row content, order, and productive I/O match the dynamic
// run the plan was captured from, as long as the data hasn't drifted;
// the saving is the estimation stage and the competition bookkeeping.
//
// A replay counts a query and a tactic win but feeds neither the
// estimate-error histogram nor the feedback registry. ErrPlanStale
// surfaces (through the Rows) when a referenced index is gone.
func (o *Optimizer) RunFrozen(ec *ExecCtx, q *Query, p *CachedPlan) Rows {
	o.metrics.recordQuery()
	rows, err := o.runFrozen(ec, q, p)
	if err != nil {
		if isCancellation(err) && ec.markCancelRecorded() {
			o.metrics.recordCancellation(err)
		}
		return errRows{err: err}
	}
	return rows
}

func (o *Optimizer) runFrozen(ec *ExecCtx, q *Query, p *CachedPlan) (Rows, error) {
	if err := ec.Err(); err != nil {
		return nil, err
	}
	if q.Table == nil {
		return nil, fmt.Errorf("core: query without table")
	}
	if p == nil {
		return nil, fmt.Errorf("core: nil cached plan")
	}
	if err := exprValidateQuery(q); err != nil {
		return nil, err
	}
	ixs := make([]*catalog.Index, len(p.Indexes))
	for i, name := range p.Indexes {
		ix := q.Table.IndexByName(name)
		if ix == nil {
			return nil, fmt.Errorf("%w: %s.%s", ErrPlanStale, q.Table.Name, name)
		}
		ixs[i] = ix
	}
	cl := Classify(q)
	if cl.EmptyRange {
		st := RetrievalStats{FinalListLen: -1, QueryID: nextQueryID(), Tactic: "empty-range"}
		trc := &tracer{st: &st, sink: o.cfg.Trace, extra: ec.traceSink(), metrics: o.metrics}
		trc.emit(TraceEvent{Kind: EvEmptyRange, Detail: "frozen replay: contradictory sargable range, end of data at once"})
		return &emptyRows{stats: st}, nil
	}
	// Competition off: the replay scans exactly the captured order —
	// no skips, no races, no abandonment.
	cfg := o.cfg
	cfg.DisableCompetition = true
	cfg.RaceFactor = -1
	st := RetrievalStats{FinalListLen: -1, QueryID: nextQueryID()}
	r := &retrieval{q: q, cfg: cfg, st: st, ec: ec, out: &rowQueue{}, metrics: o.metrics, frozenReplay: true}
	r.trc = &tracer{st: &r.st, sink: o.cfg.Trace, extra: ec.traceSink(), metrics: o.metrics}
	r.model = o.costModel(q, cl)

	emptyReplay := func(scan string) (Rows, error) {
		r.trc.emit(TraceEvent{
			Kind: EvEmptyRange, Tactic: r.tactic.String(), Scan: scan,
			Detail: "frozen replay range empty, end of data at once",
		})
		s := r.st
		s.Tactic = r.tactic.String()
		return &emptyRows{stats: s}, nil
	}
	switch p.Tactic {
	case "tscan":
		r.tactic = tacticTscan
		r.fg = newTscan(ec, q, r.out, cfg.effectiveWorkers())
		r.trc.emit(TraceEvent{
			Kind: EvTacticChosen, Tactic: r.tactic.String(), Scan: "Tscan",
			EstimatedIO: r.model.TscanCost(), Detail: "frozen plan cache replay",
		})
	case "sscan", "fscan":
		ix := ixs[0]
		lo, hi, _, empty := ix.RestrictionBounds(q.Restriction, q.Binds)
		if p.Tactic == "sscan" {
			r.tactic = tacticSscan
		} else {
			r.tactic = tacticFscan
		}
		if empty {
			return emptyReplay(p.String())
		}
		desc := len(q.OrderBy) > 0 && q.OrderDesc && ix.DeliversOrder(q.OrderBy)
		var fg stepper
		var err error
		if p.Tactic == "sscan" {
			fg, err = newSscan(ec, q, ix, lo, hi, r.out, cfg.StepEntries, desc)
		} else {
			fg, err = newFscan(ec, q, ix, lo, hi, r.out, cfg.StepEntries, desc)
		}
		if err != nil {
			return nil, err
		}
		r.fg = fg
		r.trc.emit(TraceEvent{
			Kind: EvTacticChosen, Tactic: r.tactic.String(), Scan: fg.name(),
			Indexes: []string{ix.Name}, Detail: "frozen plan cache replay",
		})
	case "background-only":
		r.tactic = tacticBackgroundOnly
		ests, empty := frozenEstimates(q, ixs, p.RIDs)
		if empty {
			return emptyReplay("Jscan")
		}
		j := newJscan(ec, q, cfg, r.model, ests, nil, r.trc)
		j.onDone = o.observer(q)
		r.bg = j
		r.trc.emit(TraceEvent{
			Kind: EvTacticChosen, Tactic: r.tactic.String(), Scan: "Jscan", Indexes: p.Indexes,
			EstimatedIO: bgPlanEst(r.model, ests[0]), Detail: "frozen plan cache replay",
		})
	case "fast-first":
		r.tactic = tacticFastFirst
		ests, empty := frozenEstimates(q, ixs, p.RIDs)
		if empty {
			return emptyReplay("Jscan")
		}
		borrow := &ridQueue{}
		j := newJscan(ec, q, cfg, r.model, ests, borrow, r.trc)
		j.onDone = o.observer(q)
		r.bg = j
		r.fg = newBorrowFetcher(ec, q, borrow, r.out, cfg.FgBufferCap)
		r.trc.emit(TraceEvent{
			Kind: EvTacticChosen, Tactic: r.tactic.String(), Scan: "Jscan", Indexes: p.Indexes,
			EstimatedIO: bgPlanEst(r.model, ests[0]),
			Detail:      "frozen plan cache replay, foreground borrows from " + ixs[0].Name,
		})
	case "sorted":
		r.tactic = tacticSorted
		ordIx := ixs[0]
		lo, hi, _, empty := ordIx.RestrictionBounds(q.Restriction, q.Binds)
		if empty {
			return emptyReplay("Fscan(" + ordIx.Name + ")")
		}
		fg, err := newFscan(ec, q, ordIx, lo, hi, r.out, cfg.StepEntries, q.OrderDesc)
		if err != nil {
			return nil, err
		}
		var restRIDs []float64
		if len(p.RIDs) > 1 {
			restRIDs = p.RIDs[1:]
		}
		others, oEmpty := frozenEstimates(q, ixs[1:], restRIDs)
		if oEmpty {
			return emptyReplay("Jscan")
		}
		fcfg := cfg
		fcfg.RID.FilterOnly = true
		j := newJscan(ec, q, fcfg, r.model, others, nil, r.trc)
		j.onDone = o.observer(q)
		r.fg = fg
		r.bg = j
		r.trc.emit(TraceEvent{
			Kind: EvTacticChosen, Tactic: r.tactic.String(), Scan: fg.name(), Indexes: p.Indexes,
			Detail: "frozen plan cache replay",
		})
	default:
		return nil, fmt.Errorf("core: cached plan has no frozen form for tactic %q", p.Tactic)
	}
	return r, nil
}

// frozenEstimates rebuilds the IndexEstimate slice a replay Jscan
// needs: bounds recomputed from the current bindings (pure key
// arithmetic, zero I/O) and the captured entry estimates. empty=true
// when some index's recomputed range is provably empty — the whole
// conjunction is unsatisfiable.
func frozenEstimates(q *Query, ixs []*catalog.Index, rids []float64) (ests []estimate.IndexEstimate, empty bool) {
	ests = make([]estimate.IndexEstimate, len(ixs))
	for i, ix := range ixs {
		lo, hi, sarg, emptyRg := ix.RestrictionBounds(q.Restriction, q.Binds)
		if emptyRg {
			return nil, true
		}
		var est float64
		if i < len(rids) {
			est = rids[i]
		}
		ests[i] = estimate.IndexEstimate{Index: ix, Lo: lo, Hi: hi, Sargable: sarg, RIDs: est}
	}
	return ests, false
}

// exprValidateQuery shares run()'s query validation with the replay
// path.
func exprValidateQuery(q *Query) error {
	if err := expr.Validate(q.Restriction); err != nil {
		return err
	}
	for _, c := range append(append([]int(nil), q.Projection...), q.OrderBy...) {
		if c < 0 || c >= len(q.Table.Columns) {
			return fmt.Errorf("core: column position %d out of range", c)
		}
	}
	return nil
}
