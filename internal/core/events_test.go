package core

import (
	"sync"
	"testing"

	"rdbdyn/internal/expr"
	"rdbdyn/internal/storage"
)

// hasEvent reports whether the stats' event stream carries an event of
// the given kind; with index != "", the event must also mention that
// index.
func hasEvent(st RetrievalStats, kind EventKind, index string) bool {
	return firstEvent(st, kind, index) != nil
}

func firstEvent(st RetrievalStats, kind EventKind, index string) *TraceEvent {
	for i, ev := range st.Events {
		if ev.Kind != kind {
			continue
		}
		if index == "" {
			return &st.Events[i]
		}
		for _, ix := range ev.Indexes {
			if ix == index {
				return &st.Events[i]
			}
		}
	}
	return nil
}

// checkStream asserts the structural invariants of one retrieval's
// event stream: consecutive Seq from 0, a consistent QueryID matching
// the stats, and one rendered Trace line per event.
func checkStream(t *testing.T, st RetrievalStats) {
	t.Helper()
	if len(st.Events) != len(st.Trace) {
		t.Fatalf("events (%d) and trace (%d) out of sync", len(st.Events), len(st.Trace))
	}
	if st.QueryID == 0 && len(st.Events) > 0 {
		t.Fatalf("retrieval with events but no QueryID")
	}
	for i, ev := range st.Events {
		if ev.Seq != i {
			t.Fatalf("event %d has Seq %d", i, ev.Seq)
		}
		if ev.QueryID != st.QueryID {
			t.Fatalf("event %d has QueryID %d, stats say %d", i, ev.QueryID, st.QueryID)
		}
		if st.Trace[i] != ev.String() {
			t.Fatalf("trace line %d is not the event rendering:\n%q\nvs\n%q", i, st.Trace[i], ev.String())
		}
	}
}

// TestEventStreamPerTactic runs one query per tactic and asserts the
// typed stream: a tactic-chosen event naming the tactic, plus the
// structural invariants.
func TestEventStreamPerTactic(t *testing.T) {
	f := newFixture(t, 10000, "AGE", "CITY", "AGE+ID")
	age, city, id := f.col(t, "AGE"), f.col(t, "CITY"), f.col(t, "ID")

	cases := []struct {
		name   string
		q      *Query
		tactic string
	}{
		{
			name: "background-only",
			q: &Query{
				Table: f.tab,
				Restriction: expr.NewAnd(
					expr.NewCmp(expr.LT, expr.Col(age, "AGE"), expr.Lit(expr.Int(20))),
					expr.NewCmp(expr.EQ, expr.Col(city, "CITY"), expr.Lit(expr.Int(7))),
				),
				Goal: GoalTotalTime,
			},
			tactic: "background-only",
		},
		{
			name: "fast-first",
			q: &Query{
				Table: f.tab,
				Restriction: expr.NewAnd(
					expr.NewCmp(expr.LT, expr.Col(age, "AGE"), expr.Lit(expr.Int(20))),
					expr.NewCmp(expr.EQ, expr.Col(city, "CITY"), expr.Lit(expr.Int(7))),
				),
				Goal: GoalFastFirst,
			},
			tactic: "fast-first",
		},
		{
			name: "sorted",
			q: &Query{
				Table: f.tab,
				Restriction: expr.NewAnd(
					expr.NewCmp(expr.GE, expr.Col(age, "AGE"), expr.Lit(expr.Int(10))),
					expr.NewCmp(expr.EQ, expr.Col(city, "CITY"), expr.Lit(expr.Int(3))),
				),
				OrderBy: []int{age},
				Goal:    GoalFastFirst,
			},
			tactic: "sorted",
		},
		{
			name: "index-only",
			q: &Query{
				Table: f.tab,
				Restriction: expr.NewAnd(
					expr.NewCmp(expr.LT, expr.Col(age, "AGE"), expr.Lit(expr.Int(30))),
					expr.NewCmp(expr.LT, expr.Col(id, "ID"), expr.Lit(expr.Int(5000))),
				),
				Projection: []int{age, id},
				Goal:       GoalTotalTime,
			},
			tactic: "index-only",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := NewOptimizer(DefaultConfig())
			rows := o.Run(tc.q)
			got := drain(t, rows)
			sameMultiset(t, got, f.naive(t, tc.q), tc.name)
			st := rows.Stats()
			checkStream(t, st)
			chosen := firstEvent(st, EvTacticChosen, "")
			if chosen == nil {
				t.Fatalf("no tactic-chosen event; trace: %v", st.Trace)
			}
			if chosen.Tactic != tc.tactic {
				t.Fatalf("tactic-chosen says %q, want %q (trace: %v)", chosen.Tactic, tc.tactic, st.Trace)
			}
			if chosen.Seq != 0 {
				t.Fatalf("tactic-chosen should be the first event, got Seq %d", chosen.Seq)
			}
			if len(chosen.Indexes) == 0 {
				t.Fatalf("tactic-chosen should name its indexes")
			}
			if snap := o.Metrics().Snapshot(); snap.TacticWins[tc.tactic] < 1 {
				t.Fatalf("metrics recorded no %s win: %+v", tc.tactic, snap)
			}
		})
	}
}

// TestEventStreamTscanRecommendation covers the strategy-switch path:
// Jscan over a huge range recommends Tscan and the retrieval switches.
func TestEventStreamTscanRecommendation(t *testing.T) {
	f := newFixture(t, 10000, "AGE")
	age := f.col(t, "AGE")
	q := &Query{
		Table:       f.tab,
		Restriction: expr.NewCmp(expr.GE, expr.Col(age, "AGE"), expr.Lit(expr.Int(1))),
		Goal:        GoalTotalTime,
	}
	o := NewOptimizer(DefaultConfig())
	rows := o.Run(q)
	got := drain(t, rows)
	sameMultiset(t, got, f.naive(t, q), "tscan-recommend")
	st := rows.Stats()
	checkStream(t, st)
	sw := firstEvent(st, EvStrategySwitch, "")
	if sw == nil {
		t.Fatalf("expected a strategy-switch event; trace: %v", st.Trace)
	}
	if sw.Scan != "Tscan" {
		t.Fatalf("strategy-switch targets %q, want Tscan", sw.Scan)
	}
	if snap := o.Metrics().Snapshot(); snap.StrategySwitches < 1 {
		t.Fatalf("metrics missed the strategy switch: %+v", snap)
	}
}

// TestEventStreamEmptyRange covers the expression-level empty range: a
// contradictory conjunction cancels every stage before estimation.
func TestEventStreamEmptyRange(t *testing.T) {
	f := newFixture(t, 2000, "AGE")
	age := f.col(t, "AGE")
	q := &Query{
		Table: f.tab,
		Restriction: expr.NewAnd(
			expr.NewCmp(expr.GT, expr.Col(age, "AGE"), expr.Lit(expr.Int(50))),
			expr.NewCmp(expr.LT, expr.Col(age, "AGE"), expr.Lit(expr.Int(10))),
		),
	}
	o := NewOptimizer(DefaultConfig())
	rows := o.Run(q)
	got := drain(t, rows)
	if len(got) != 0 {
		t.Fatalf("contradictory range delivered %d rows", len(got))
	}
	st := rows.Stats()
	checkStream(t, st)
	if st.Tactic != "empty-range" {
		t.Fatalf("tactic = %s; trace: %v", st.Tactic, st.Trace)
	}
	if !hasEvent(st, EvEmptyRange, "") {
		t.Fatalf("expected an empty-range event; trace: %v", st.Trace)
	}
	if c := st.IO.IOCost(); c != 0 {
		t.Fatalf("empty range cost %d I/O, want 0", c)
	}
	if st.EstimateIO != 0 {
		t.Fatalf("empty range spent %d estimation I/O, want 0", st.EstimateIO)
	}
	if snap := o.Metrics().Snapshot(); snap.EmptyRanges < 1 {
		t.Fatalf("metrics missed the empty range: %+v", snap)
	}
}

// TestOrderedEmptyRangeShortcut is the regression test for planOrdered
// discarding the empty flag from RestrictionBounds: an ordered query
// with a contradictory range must deliver end-of-data at once with zero
// scan I/O instead of opening a real (full-range) scan.
func TestOrderedEmptyRangeShortcut(t *testing.T) {
	f := newFixture(t, 5000, "AGE")
	age := f.col(t, "AGE")
	for _, desc := range []bool{false, true} {
		q := &Query{
			Table: f.tab,
			Restriction: expr.NewAnd(
				expr.NewCmp(expr.GT, expr.Col(age, "AGE"), expr.Lit(expr.Int(50))),
				expr.NewCmp(expr.LT, expr.Col(age, "AGE"), expr.Lit(expr.Int(10))),
			),
			OrderBy:   []int{age},
			OrderDesc: desc,
		}
		o := NewOptimizer(DefaultConfig())
		rows := o.Run(q)
		got := drain(t, rows)
		if len(got) != 0 {
			t.Fatalf("ordered contradictory range delivered %d rows", len(got))
		}
		st := rows.Stats()
		checkStream(t, st)
		if !hasEvent(st, EvEmptyRange, "") {
			t.Fatalf("expected an empty-range event; tactic %s, trace: %v", st.Tactic, st.Trace)
		}
		if c := st.IO.IOCost(); c != 0 {
			t.Fatalf("ordered empty range attributed %d I/O, want 0 (tactic %s, trace: %v)", c, st.Tactic, st.Trace)
		}
	}
}

// TestConfigMergeFieldWise asserts a one-field Config survives the
// defaults merge in NewOptimizer, and that the negative "off" sentinels
// pass through.
func TestConfigMergeFieldWise(t *testing.T) {
	d := DefaultConfig()

	o := NewOptimizer(Config{StaticThresholds: true})
	cfg := o.Config()
	if !cfg.StaticThresholds {
		t.Fatalf("StaticThresholds lost in merge")
	}
	if cfg.StepEntries != d.StepEntries || cfg.FgBufferCap != d.FgBufferCap ||
		cfg.RaceFactor != d.RaceFactor || cfg.ShortRange != d.ShortRange ||
		cfg.Criterion != d.Criterion || cfg.RID != d.RID {
		t.Fatalf("zero fields not defaulted: %+v", cfg)
	}

	o = NewOptimizer(Config{RaceFactor: 7})
	if got := o.Config().RaceFactor; got != 7 {
		t.Fatalf("RaceFactor = %v, want 7", got)
	}
	if got := o.Config().StepEntries; got != d.StepEntries {
		t.Fatalf("StepEntries = %v, want default", got)
	}

	// Negative sentinels mean "off" and survive untouched.
	o = NewOptimizer(Config{RaceFactor: -1, FgBufferCap: -1})
	if got := o.Config().RaceFactor; got != -1 {
		t.Fatalf("RaceFactor = %v, want -1 (racing off)", got)
	}
	if got := o.Config().FgBufferCap; got != -1 {
		t.Fatalf("FgBufferCap = %v, want -1 (unbounded)", got)
	}

	// Booleans: false is the paper default, so the zero value needs no
	// sentinel and an explicit true survives any merge.
	o = NewOptimizer(Config{DisableCompetition: true})
	if !o.Config().DisableCompetition {
		t.Fatalf("DisableCompetition lost in merge")
	}
}

// TestBorrowFetcherCapNormalization covers the capRIDs == 0 bug: zero
// must mean the documented default, negative unbounded — never
// "overflow after the first delivered row".
func TestBorrowFetcherCapNormalization(t *testing.T) {
	f := newFixture(t, 10)
	var rids []storage.RID
	cur := f.tab.Heap.Cursor()
	for {
		_, r, ok, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		rids = append(rids, r)
	}
	q := &Query{Table: f.tab}

	run := func(capRIDs int) *borrowFetcher {
		in := &ridQueue{}
		for _, r := range rids {
			in.push(r)
		}
		in.closed = true
		bf := newBorrowFetcher(nil, q, in, &rowQueue{}, capRIDs)
		for {
			done, err := bf.step()
			if err != nil {
				t.Fatal(err)
			}
			if done {
				return bf
			}
		}
	}

	if bf := newBorrowFetcher(nil, q, &ridQueue{}, &rowQueue{}, 0); bf.capRIDs != DefaultConfig().FgBufferCap {
		t.Fatalf("capRIDs 0 normalized to %d, want the default %d", bf.capRIDs, DefaultConfig().FgBufferCap)
	}
	if bf := run(0); bf.overflow || len(bf.delivered) != len(rids) {
		t.Fatalf("cap 0 (default): overflow=%v delivered=%d, want all %d rows", bf.overflow, len(bf.delivered), len(rids))
	}
	if bf := run(-1); bf.overflow || len(bf.delivered) != len(rids) {
		t.Fatalf("cap -1 (unbounded): overflow=%v delivered=%d, want all %d rows", bf.overflow, len(bf.delivered), len(rids))
	}
	if bf := run(3); !bf.overflow || len(bf.delivered) != 3 {
		t.Fatalf("cap 3: overflow=%v delivered=%d, want overflow at 3", bf.overflow, len(bf.delivered))
	}
}

// collectSink gathers every event from every retrieval; safe for
// concurrent use as TraceSink requires.
type collectSink struct {
	mu     sync.Mutex
	events []TraceEvent
}

func (s *collectSink) Event(ev TraceEvent) {
	s.mu.Lock()
	s.events = append(s.events, ev)
	s.mu.Unlock()
}

// TestConcurrentQueriesDoNotInterleaveStreams runs two goroutines
// querying one optimizer through a shared sink and asserts each
// query's stream stays internally ordered: partitioned by QueryID,
// every stream is Seq 0..n-1 with no foreign events inside.
func TestConcurrentQueriesDoNotInterleaveStreams(t *testing.T) {
	f := newFixture(t, 8000, "AGE", "CITY")
	age, city := f.col(t, "AGE"), f.col(t, "CITY")
	sink := &collectSink{}
	cfg := DefaultConfig()
	cfg.Trace = sink
	o := NewOptimizer(cfg)

	const perWorker = 20
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				q := &Query{
					Table: f.tab,
					Restriction: expr.NewAnd(
						expr.NewCmp(expr.LT, expr.Col(age, "AGE"), expr.Lit(expr.Int(int64(10+i)))),
						expr.NewCmp(expr.EQ, expr.Col(city, "CITY"), expr.Lit(expr.Int(int64(w)))),
					),
					Goal: GoalTotalTime,
				}
				rows := o.Run(q)
				for {
					_, ok, err := rows.Next()
					if err != nil {
						errs[w] = err
						return
					}
					if !ok {
						break
					}
				}
				if err := rows.Close(); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	streams := map[uint64][]TraceEvent{}
	sink.mu.Lock()
	for _, ev := range sink.events {
		streams[ev.QueryID] = append(streams[ev.QueryID], ev)
	}
	sink.mu.Unlock()
	if len(streams) != 2*perWorker {
		t.Fatalf("saw %d query streams, want %d", len(streams), 2*perWorker)
	}
	for qid, evs := range streams {
		for i, ev := range evs {
			if ev.Seq != i {
				t.Fatalf("query %d: event %d has Seq %d — streams interleaved", qid, i, ev.Seq)
			}
		}
	}
	snap := o.Metrics().Snapshot()
	if snap.Queries != 2*perWorker {
		t.Fatalf("metrics counted %d queries, want %d", snap.Queries, 2*perWorker)
	}
}
