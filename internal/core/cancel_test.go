package core

import (
	"context"
	"errors"
	"testing"

	"rdbdyn/internal/expr"
)

// eventTrigger is a TraceSink that fires a callback when the n-th
// event of a given kind is emitted. Retrieval event emission is
// confined to the pulling goroutine, so no locking is needed here.
type eventTrigger struct {
	kind  EventKind
	after int // skip this many matching events first
	seen  int
	fire  func()
	fired bool
}

func (e *eventTrigger) Event(ev TraceEvent) {
	if e.fired || ev.Kind != e.kind {
		return
	}
	if e.seen < e.after {
		e.seen++
		return
	}
	e.fired = true
	e.fire()
}

// drainToErr pulls rows until an error or end of data, returning the
// delivered count and the terminal error (nil at a clean end).
func drainToErr(rows Rows) (int, error) {
	n := 0
	for {
		_, ok, err := rows.Next()
		if err != nil {
			return n, err
		}
		if !ok {
			return n, nil
		}
		n++
	}
}

// bgQuery builds the two-fetch-needed-index restriction that plans as
// background-only (Jscan over IX_AGE and IX_CITY) on the 10k fixture.
func bgQuery(f *fixture, t *testing.T, goal Goal) *Query {
	age, city := f.col(t, "AGE"), f.col(t, "CITY")
	return &Query{
		Table: f.tab,
		Restriction: expr.NewAnd(
			expr.NewCmp(expr.LT, expr.Col(age, "AGE"), expr.Lit(expr.Int(20))),
			expr.NewCmp(expr.EQ, expr.Col(city, "CITY"), expr.Lit(expr.Int(7))),
		),
		Goal: goal,
	}
}

// checkCancelled asserts the common post-cancellation contract: the
// typed query-cancelled event is present, every buffer-pool pin has
// been released, and the cumulative metrics counted the query exactly
// once under the right counter.
func checkCancelled(t *testing.T, f *fixture, rows Rows, o *Optimizer, wantDeadline, wantBudget bool) {
	t.Helper()
	st := rows.Stats()
	if !hasEvent(st, EvQueryCancelled, "") {
		t.Fatalf("no query-cancelled event; trace: %v", st.Trace)
	}
	if err := rows.Close(); err != nil {
		t.Fatalf("Close after cancellation: %v", err)
	}
	if n := f.pool.PinnedPages(); n != 0 {
		t.Fatalf("%d buffer-pool pins leaked after cancellation", n)
	}
	snap := o.Metrics().Snapshot()
	total := snap.QueriesCancelled + snap.QueriesDeadlineExceeded + snap.QueriesBudgetExceeded
	if total != 1 {
		t.Fatalf("cancellation recorded %d times, want exactly 1 (%+v)", total, snap)
	}
	switch {
	case wantDeadline && snap.QueriesDeadlineExceeded != 1:
		t.Fatalf("deadline cancellation miscounted: %+v", snap)
	case wantBudget && snap.QueriesBudgetExceeded != 1:
		t.Fatalf("budget cancellation miscounted: %+v", snap)
	case !wantDeadline && !wantBudget && snap.QueriesCancelled != 1:
		t.Fatalf("plain cancellation miscounted: %+v", snap)
	}
}

// TestCancelDuringJscanRIDCollection cancels while the background
// Jscan is still collecting RIDs (its first scan-started event) and
// expects context.Canceled from Next within the cooperative unwind,
// scan-abandoned events for the live stages, and zero leaked pins.
func TestCancelDuringJscanRIDCollection(t *testing.T) {
	f := newFixture(t, 10000, "AGE", "CITY")
	q := bgQuery(f, t, GoalTotalTime)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ec := NewExecCtx(ctx, 0).WithTrace(&eventTrigger{kind: EvScanStarted, fire: cancel})
	o := NewOptimizer(DefaultConfig())
	rows := o.RunExec(ec, q)
	if _, err := drainToErr(rows); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	st := rows.Stats()
	if !hasEvent(st, EvScanAbandoned, "") {
		t.Fatalf("no scan-abandoned for the live Jscan; trace: %v", st.Trace)
	}
	checkCancelled(t, f, rows, o, false, false)
}

// TestCancelDuringFinalFetchStage cancels after the background stage
// completed and the retrieval entered its final (fetch) stage.
func TestCancelDuringFinalFetchStage(t *testing.T) {
	f := newFixture(t, 10000, "AGE", "CITY")
	q := bgQuery(f, t, GoalTotalTime)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ec := NewExecCtx(ctx, 0).WithTrace(&eventTrigger{kind: EvFinalStage, fire: cancel})
	o := NewOptimizer(DefaultConfig())
	rows := o.RunExec(ec, q)
	if _, err := drainToErr(rows); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	checkCancelled(t, f, rows, o, false, false)
}

// TestBudgetExhaustionMidSequentialScan runs an unindexed restriction
// (plain Tscan) under a tiny I/O budget and expects ErrBudgetExceeded
// exactly at the budget boundary: not one simulated page I/O more.
func TestBudgetExhaustionMidSequentialScan(t *testing.T) {
	f := newFixture(t, 10000)
	salary := f.col(t, "SALARY")
	q := &Query{
		Table:       f.tab,
		Restriction: expr.NewCmp(expr.GE, expr.Col(salary, "SALARY"), expr.Lit(expr.Float(0))),
	}
	// Budgets meter genuine simulated I/O (buffer-pool misses), the
	// paper's cost unit; start cold so the sequential scan pays them.
	f.pool.EvictAll()
	const budget = 25
	ec := NewExecCtx(context.Background(), budget)
	o := NewOptimizer(DefaultConfig())
	rows := o.RunExec(ec, q)
	if _, err := drainToErr(rows); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if spent := ec.IOSpent(); spent != budget {
		t.Fatalf("spent %d simulated I/Os, want exactly the budget %d", spent, budget)
	}
	checkCancelled(t, f, rows, o, false, true)
}

// TestDeadlineExpiredBeforeRun covers the pre-flight checkpoint: a
// context already past its deadline fails before planning spends any
// I/O, and the metrics count it as a deadline expiry.
func TestDeadlineExpiredBeforeRun(t *testing.T) {
	f := newFixture(t, 1000, "AGE")
	age := f.col(t, "AGE")
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	<-ctx.Done()
	o := NewOptimizer(DefaultConfig())
	rows := o.RunExec(NewExecCtx(ctx, 0), &Query{
		Table:       f.tab,
		Restriction: expr.NewCmp(expr.GE, expr.Col(age, "AGE"), expr.Lit(expr.Int(10))),
	})
	if _, _, err := rows.Next(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if n := f.pool.PinnedPages(); n != 0 {
		t.Fatalf("%d pins leaked", n)
	}
	if snap := o.Metrics().Snapshot(); snap.QueriesDeadlineExceeded != 1 {
		t.Fatalf("deadline expiry not counted: %+v", snap)
	}
}

// TestCancelSweepNoPinsLeaked cancels at every interesting event kind
// across the tactic spectrum and asserts that no run — whether it was
// cut down mid-competition, mid-race, or mid-fetch, or happened to
// finish before the trigger fired — leaks a buffer-pool pin or loses
// the cancellation accounting.
func TestCancelSweepNoPinsLeaked(t *testing.T) {
	kinds := []EventKind{EvTacticChosen, EvScanStarted, EvRaceStarted, EvScanComplete, EvFinalStage, EvStrategySwitch}
	f := newFixture(t, 10000, "AGE", "CITY", "AGE+ID")
	age, city, id := f.col(t, "AGE"), f.col(t, "CITY"), f.col(t, "ID")
	queries := map[string]*Query{
		"background-only": bgQuery(f, t, GoalTotalTime),
		"fast-first":      bgQuery(f, t, GoalFastFirst),
		"index-only": {
			Table: f.tab,
			Restriction: expr.NewAnd(
				expr.NewCmp(expr.LT, expr.Col(age, "AGE"), expr.Lit(expr.Int(30))),
				expr.NewCmp(expr.LT, expr.Col(id, "ID"), expr.Lit(expr.Int(5000))),
			),
			Projection: []int{age, id},
			Goal:       GoalTotalTime,
		},
		"sorted": {
			Table: f.tab,
			Restriction: expr.NewAnd(
				expr.NewCmp(expr.GE, expr.Col(age, "AGE"), expr.Lit(expr.Int(10))),
				expr.NewCmp(expr.EQ, expr.Col(city, "CITY"), expr.Lit(expr.Int(3))),
			),
			OrderBy: []int{age},
			Goal:    GoalFastFirst,
		},
		"tscan-recommend": {
			Table:       f.tab,
			Restriction: expr.NewCmp(expr.GE, expr.Col(age, "AGE"), expr.Lit(expr.Int(1))),
			Goal:        GoalTotalTime,
		},
	}
	for name, q := range queries {
		for _, kind := range kinds {
			ctx, cancel := context.WithCancel(context.Background())
			trig := &eventTrigger{kind: kind, fire: cancel}
			ec := NewExecCtx(ctx, 0).WithTrace(trig)
			o := NewOptimizer(DefaultConfig())
			rows := o.RunExec(ec, q)
			_, err := drainToErr(rows)
			st := rows.Stats()
			rows.Close()
			cancel()
			if n := f.pool.PinnedPages(); n != 0 {
				t.Fatalf("%s/%v: %d pins leaked", name, kind, n)
			}
			snap := o.Metrics().Snapshot()
			switch {
			case err == nil:
				// The trigger never fired (or fired after the last
				// I/O): a clean completion must record nothing.
				if snap.QueriesCancelled != 0 {
					t.Fatalf("%s/%v: clean run counted as cancelled", name, kind)
				}
			case errors.Is(err, context.Canceled):
				if !hasEvent(st, EvQueryCancelled, "") {
					t.Fatalf("%s/%v: no query-cancelled event; trace: %v", name, kind, st.Trace)
				}
				if snap.QueriesCancelled != 1 {
					t.Fatalf("%s/%v: cancellation counted %d times", name, kind, snap.QueriesCancelled)
				}
			default:
				t.Fatalf("%s/%v: unexpected error %v", name, kind, err)
			}
		}
	}
}

// TestCancelledRunFixed covers the frozen-plan path: RunFixedExec
// unwinds under a budget like the dynamic retrieval does.
func TestCancelledRunFixed(t *testing.T) {
	f := newFixture(t, 10000, "AGE")
	age := f.col(t, "AGE")
	q := &Query{
		Table:       f.tab,
		Restriction: expr.NewCmp(expr.GE, expr.Col(age, "AGE"), expr.Lit(expr.Int(0))),
	}
	f.pool.EvictAll()
	ec := NewExecCtx(context.Background(), 10)
	rows := RunFixedExec(ec, q, FixedStrategy{Kind: StrategyTscan}, DefaultConfig())
	if _, err := drainToErr(rows); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	st := rows.Stats()
	if !hasEvent(st, EvQueryCancelled, "") {
		t.Fatalf("no query-cancelled event; trace: %v", st.Trace)
	}
	rows.Close()
	if n := f.pool.PinnedPages(); n != 0 {
		t.Fatalf("%d pins leaked", n)
	}
}
