package core

import (
	"fmt"
	"strings"

	"rdbdyn/internal/catalog"
	"rdbdyn/internal/estimate"
	"rdbdyn/internal/expr"
	"rdbdyn/internal/rid"
	"rdbdyn/internal/storage"
)

// Mid-stage re-optimization cadence: probe operators (inl/ridx) check
// their measured per-probe cost against the nested-loop alternative
// after this many outer rows, and every this-many thereafter.
const (
	joinReoptMinProbes  = 64
	joinReoptCheckEvery = 64
)

// RunJoin plans and executes a multi-table retrieval dynamically: a
// greedy join order from corrected estimates, per-stage operator
// competition, and mid-flight re-optimization when a stage's actual
// cardinality diverges from its estimate past Config.JoinReoptFactor.
func (o *Optimizer) RunJoin(ec *ExecCtx, jq *JoinQuery) Rows {
	o.metrics.recordQuery()
	rows, err := o.runJoin(ec, jq, nil)
	if err != nil {
		if isCancellation(err) && ec.markCancelRecorded() {
			o.metrics.recordCancellation(err)
		}
		return errRows{err: err}
	}
	return rows
}

// PlanJoin returns the static greedy plan for jq without executing it —
// the baseline a dynamic run competes against (planner.PrepareJoin
// wraps this for the System R-style comparison).
func (o *Optimizer) PlanJoin(ec *ExecCtx, jq *JoinQuery) (*JoinPlan, error) {
	if err := jq.validate(); err != nil {
		return nil, err
	}
	infos, jts, err := o.gatherJoinInfo(ec, jq)
	if err != nil {
		return nil, err
	}
	return o.planJoin(jq, infos, jts), nil
}

// RunJoinPlan executes a previously chosen plan as-is: no mid-flight
// re-optimization and no feedback observation, mirroring a frozen
// single-table replay.
func (o *Optimizer) RunJoinPlan(ec *ExecCtx, jq *JoinQuery, plan *JoinPlan) Rows {
	o.metrics.recordQuery()
	rows, err := o.runJoin(ec, jq, plan)
	if err != nil {
		if isCancellation(err) && ec.markCancelRecorded() {
			o.metrics.recordCancellation(err)
		}
		return errRows{err: err}
	}
	return rows
}

// joinExec is the per-run state of one join execution.
type joinExec struct {
	o       *Optimizer
	ec      *ExecCtx
	jq      *JoinQuery
	infos   []joinTableInfo
	jts     []estimate.JoinTable
	offs    []int
	width   int
	st      *RetrievalStats
	trc     *tracer
	dynamic bool
	reoptF  float64
	// ordered is the plan's order-preserving claim; the driver scans
	// descending when the query wants descending order.
	ordered bool
}

func (o *Optimizer) runJoin(ec *ExecCtx, jq *JoinQuery, fixed *JoinPlan) (Rows, error) {
	if err := ec.Err(); err != nil {
		return nil, err
	}
	if err := jq.validate(); err != nil {
		return nil, err
	}
	infos, jts, err := o.gatherJoinInfo(ec, jq)
	if err != nil {
		return nil, err
	}
	st := RetrievalStats{Tactic: "join", QueryID: nextQueryID(), FinalListLen: -1}
	for i := range infos {
		st.EstimateIO += infos[i].estIO
	}
	trc := &tracer{st: &st, sink: o.cfg.Trace, extra: ec.traceSink(), metrics: o.metrics}
	for i, tab := range jq.Tables {
		if infos[i].empty {
			trc.emit(TraceEvent{Kind: EvEmptyRange, Tactic: "join", Scan: tab.Name,
				Detail: "local restriction empty, end of data at once"})
			return &emptyRows{stats: st}, nil
		}
	}
	plan := fixed
	dynamic := fixed == nil && o.cfg.JoinReoptFactor > 0
	if plan == nil {
		plan = o.planJoin(jq, infos, jts)
	}
	je := &joinExec{
		o: o, ec: ec, jq: jq, infos: infos, jts: jts,
		offs: jq.Offsets(), width: jq.Width(), st: &st, trc: trc,
		dynamic: dynamic, reoptF: o.cfg.JoinReoptFactor,
		ordered: plan.Ordered,
	}
	stages := append([]JoinStagePlan(nil), plan.Stages...)
	trc.emit(TraceEvent{
		Kind: EvJoinOrderChosen, Tactic: "join",
		Indexes:     stageTableNames(jq, stages),
		EstimatedIO: plan.EstIO,
		Detail:      plan.Describe(jq),
	})
	// Join retrievals are structurally ineligible for plan capture
	// (CapturePlan refuses them); announce that up front so cache-aware
	// callers and the metrics see the rejection. hj stages are called
	// out on their own grounds — their build tables hold run-time inner
	// state no replay could re-derive — so a future per-operator
	// join-freezing scheme keeps a reason to refuse them.
	captureDetail := "multi-table retrievals are never frozen"
	for _, sg := range stages {
		if sg.Operator == JoinOpHJ {
			captureDetail = "hj build side is re-derived at run time; multi-table retrievals are never frozen"
			break
		}
	}
	trc.emit(TraceEvent{
		Kind: EvPlanCaptureRejected, Tactic: "join",
		Detail: captureDetail,
	})

	in := make([]bool, len(jq.Tables))
	chosen := []int{stages[0].Table}
	in[stages[0].Table] = true
	cur, err := je.execDriver(&stages[0])
	if err != nil {
		return nil, err
	}

	// orderLive tracks whether the rows still arrive in the query's
	// ORDER BY order: true only for a plan whose driver delivers it, and
	// cleared the moment any executed stage runs an order-destroying
	// operator (hj/nl — whether planned, re-planned mid-flight, or a
	// probe fallback).
	orderLive := plan.Ordered
	replanned := false
	for si := 1; si < len(stages); si++ {
		// Stage boundary: if the intermediate cardinality has diverged
		// from the estimate past the factor, re-plan the remaining
		// tables (order and operators) from the observed count.
		prevEst := stages[si-1].EstRows
		actual := float64(len(cur))
		if je.dynamic && diverged(prevEst, actual, je.reoptF) {
			rest := o.planJoinRest(jq, infos, jts, chosen, actual)
			if !sameStages(stages[si:], rest) {
				trc.emit(TraceEvent{
					Kind: EvJoinReoptimized, Tactic: "join",
					Indexes:     stageTableNames(jq, rest),
					EstimatedIO: prevEst, ActualIO: actual,
					Detail: fmt.Sprintf("intermediate %d rows vs %.0f estimated: replanned remaining stages", len(cur), prevEst),
				})
				stages = append(stages[:si:si], rest...)
				replanned = true
			}
		}
		sg := &stages[si]
		out, err := je.execStage(sg, cur, in)
		if err != nil {
			return nil, err
		}
		if replanned {
			// The stage just executed was (re)chosen mid-flight.
			st.JoinStages[len(st.JoinStages)-1].Reoptimized = true
			replanned = false
		}
		if op := st.JoinStages[len(st.JoinStages)-1].Operator; op != JoinOpINL && op != JoinOpRIDX {
			orderLive = false
		}
		in[sg.Table] = true
		chosen = append(chosen, sg.Table)
		cur = out
	}

	// Residual conjuncts — cross-table predicates that are not
	// equi-joins — apply once every table is bound.
	if jq.Residual != nil {
		kept := make([]expr.Row, 0, len(cur))
		for _, row := range cur {
			ok, err := expr.EvalPred(jq.Residual, row, jq.Binds)
			if err != nil {
				return nil, err
			}
			if ok {
				kept = append(kept, row)
			}
		}
		cur = kept
	}
	if len(jq.OrderBy) > 0 {
		if orderLive {
			// The surviving stage order satisfies the ORDER BY: the
			// final materialized sort is skipped.
			st.SortAvoided = true
			trc.emit(TraceEvent{
				Kind: EvJoinSortAvoided, Tactic: "join",
				Detail: fmt.Sprintf("plan order satisfies ORDER BY: materialized sort of %d rows skipped", len(cur)),
			})
		} else {
			sortRows(cur, jq.OrderBy, jq.OrderDesc)
		}
	}
	st.Strategy = joinStrategy(jq, st.JoinStages)
	if o.cfg.Feedback != nil && dynamic {
		for _, sg := range st.JoinStages {
			// Observations key on the catalog table name (via TableIdx;
			// Table may show an alias). hj stages observe under a
			// synthetic slot: their actual is join-output rows, which
			// must not skew the build index's restriction corrections.
			ixKey := sg.Index
			if sg.Operator == JoinOpHJ {
				ixKey = joinFeedbackHJ
			}
			o.cfg.Feedback.ObserveCardinality(jq.Tables[sg.TableIdx].Name, ixKey, sg.EstRows, float64(sg.ActualRows))
		}
		// Whole-join output feedback: the final output cardinality
		// (after the residual, which per-stage estimates never see)
		// against the last stage's estimate, under a synthetic key for
		// the table set. planJoin folds the learned correction back
		// into the next run's stage estimates.
		last := stages[len(stages)-1]
		o.cfg.Feedback.ObserveCardinality(joinFeedbackTable(jq), joinFeedbackIndex, last.EstRows, float64(len(cur)))
	}
	o.metrics.recordJoin(&st)
	return &joinRows{jq: jq, rows: cur, st: st}, nil
}

// diverged reports whether actual is off the estimate by more than
// factor f in either direction (both sides clamped to >= 1 row so empty
// intermediates compare sanely).
func diverged(est, actual, f float64) bool {
	if f <= 0 {
		return false
	}
	if est < 1 {
		est = 1
	}
	if actual < 1 {
		actual = 1
	}
	return actual > est*f || est > actual*f
}

// sameStages reports whether two stage sequences name the same tables,
// operators, and probe indexes.
func sameStages(a, b []JoinStagePlan) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Table != b[i].Table || a[i].Operator != b[i].Operator || a[i].Index != b[i].Index {
			return false
		}
	}
	return true
}

func stageTableNames(jq *JoinQuery, stages []JoinStagePlan) []string {
	out := make([]string, len(stages))
	for i, sg := range stages {
		out[i] = jq.nameOf(sg.Table)
	}
	return out
}

// joinStrategy renders the executed stages, e.g.
// "A:iscan(A_IX) -> B:inl(B_IX) -> C:nl".
func joinStrategy(jq *JoinQuery, stages []JoinStageStats) string {
	var b strings.Builder
	for i, sg := range stages {
		if i > 0 {
			b.WriteString(" -> ")
		}
		b.WriteString(sg.Table)
		b.WriteString(":")
		b.WriteString(sg.Operator)
		if sg.Index != "" {
			fmt.Fprintf(&b, "(%s)", sg.Index)
		}
	}
	return b.String()
}

// recordStage appends one executed stage to the run's stats.
func (je *joinExec) recordStage(sg *JoinStagePlan, actualRows int, io storage.IOStats, reopt bool) {
	je.st.IO = je.st.IO.Add(io)
	je.st.JoinStages = append(je.st.JoinStages, JoinStageStats{
		Table:       je.jq.nameOf(sg.Table),
		TableIdx:    sg.Table,
		Operator:    sg.Operator,
		Index:       sg.Index,
		EstRows:     sg.EstRows,
		ActualRows:  actualRows,
		IO:          io.IOCost(),
		Reoptimized: reopt,
	})
}

// execDriver runs stage 0: a single-table scan of the driver table
// under its local restriction, emitting full-width flat rows.
func (je *joinExec) execDriver(sg *JoinStagePlan) ([]expr.Row, error) {
	t := sg.Table
	tab := je.jq.Tables[t]
	local := je.jq.Local[t]
	off := je.offs[t]
	m := newMeter(je.ec)
	je.trc.emit(TraceEvent{
		Kind: EvJoinStageStarted, Tactic: "join", Scan: sg.Operator,
		Indexes: []string{tab.Name, sg.Index}, EstimatedIO: sg.EstRows,
		Detail: "driver scan",
	})
	var out []expr.Row
	emit := func(row expr.Row) {
		fr := make(expr.Row, je.width)
		copy(fr[off:], row)
		out = append(out, fr)
	}
	if sg.Operator == "iscan" {
		info := je.infos[t]
		ix := tab.IndexByName(sg.Index)
		if ix == nil {
			return nil, fmt.Errorf("core: join driver index %s.%s not found", tab.Name, sg.Index)
		}
		// The restriction bounds apply only when this index derived
		// them; an order-delivering driver on a different index scans
		// the full key range and filters per fetched row. A descending
		// ORDER BY turns an order-delivering driver scan around.
		var lo, hi []byte
		if info.restrIx != nil && info.restrIx.Name == sg.Index {
			lo, hi = info.restrLo, info.restrHi
		}
		cur, err := newEntryCursor(ix.Tree, lo, hi, je.ordered && je.jq.OrderDesc, m.tr)
		if err != nil {
			return nil, err
		}
		defer cur.Close()
		for {
			_, r, ok, err := cur.Next()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			row, err := tab.FetchTracked(r, m.tr)
			if err != nil {
				return nil, err
			}
			pass, err := expr.EvalPred(local, row, je.jq.Binds)
			if err != nil {
				return nil, err
			}
			if pass {
				emit(row)
			}
		}
	} else {
		hc := tab.Heap.CursorTracked(m.tr)
		defer hc.Close()
		for {
			rec, _, ok, err := hc.Next()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			row, err := expr.DecodeRow(rec)
			if err != nil {
				return nil, err
			}
			pass, err := expr.EvalPred(local, row, je.jq.Binds)
			if err != nil {
				return nil, err
			}
			if pass {
				emit(row)
			}
		}
	}
	je.recordStage(sg, len(out), m.io(), false)
	return out, nil
}

// stagePred is one join predicate applicable at a stage: the flat
// position of the already-bound side and the inner table's local
// column.
type stagePred struct {
	outerPos int
	innerCol int
}

// stagePreds collects the predicates connecting table t to the
// already-joined set.
func (je *joinExec) stagePreds(t int, in []bool) []stagePred {
	var out []stagePred
	for _, p := range je.jq.Preds {
		if p.LT == t && p.RT != t && in[p.RT] {
			out = append(out, stagePred{outerPos: je.offs[p.RT] + p.RC, innerCol: p.LC})
		} else if p.RT == t && p.LT != t && in[p.LT] {
			out = append(out, stagePred{outerPos: je.offs[p.LT] + p.LC, innerCol: p.RC})
		}
	}
	return out
}

// predsMatch evaluates every connecting predicate; NULL on either side
// never matches (SQL two-valued semantics, same as expr.Cmp).
func predsMatch(preds []stagePred, outer, inner expr.Row) bool {
	for _, sp := range preds {
		a, b := outer[sp.outerPos], inner[sp.innerCol]
		if a.IsNull() || b.IsNull() || expr.Compare(a, b) != 0 {
			return false
		}
	}
	return true
}

// execStage runs one inner join stage with its planned operator,
// falling back from a probe operator to nested-loop mid-stage when the
// measured per-probe cost projects past the factor.
func (je *joinExec) execStage(sg *JoinStagePlan, outer []expr.Row, in []bool) ([]expr.Row, error) {
	t := sg.Table
	tab := je.jq.Tables[t]
	preds := je.stagePreds(t, in)
	je.trc.emit(TraceEvent{
		Kind: EvJoinStageStarted, Tactic: "join", Scan: sg.Operator,
		Indexes: []string{tab.Name, sg.Index}, EstimatedIO: sg.EstRows,
		Detail: fmt.Sprintf("%d outer rows", len(outer)),
	})
	switch sg.Operator {
	case JoinOpNL:
		out, io, err := je.execNL(t, preds, outer)
		if err != nil {
			return nil, err
		}
		je.recordStage(sg, len(out), io, false)
		return out, nil
	case JoinOpHJ:
		out, io, err := je.execHJ(sg, preds, outer)
		if err != nil {
			return nil, err
		}
		je.recordStage(sg, len(out), io, false)
		return out, nil
	case JoinOpINL, JoinOpRIDX:
		m := newMeter(je.ec)
		var filter *rid.CompressedBitmap
		if sg.Operator == JoinOpRIDX {
			var err error
			filter, err = je.buildBitmap(t, &m)
			if err != nil {
				return nil, err
			}
		}
		out, fellBack, err := je.execProbe(sg, preds, outer, filter, &m)
		if err != nil {
			return nil, err
		}
		if !fellBack {
			je.recordStage(sg, len(out), m.io(), false)
			return out, nil
		}
		// Probing is costing more than a single scan of the inner:
		// abandon it (the spent I/O stays attributed) and redo the
		// stage with a scan-based operator — a hash join over the same
		// connecting predicates (probe stages always have at least one),
		// whose build scan costs what the nested loop's would while its
		// probe phase is linear instead of quadratic.
		je.trc.emit(TraceEvent{
			Kind: EvJoinReoptimized, Tactic: "join", Scan: sg.Operator,
			Indexes:  []string{tab.Name, sg.Index},
			ActualIO: m.cost(),
			Detail:   fmt.Sprintf("probe cost projects past %.0fx a one-scan alternative: falling back to hj", je.reoptF),
		})
		spent := m.io()
		sg.Operator, sg.Index = JoinOpHJ, ""
		out, io, err := je.execHJ(sg, preds, outer)
		if err != nil {
			return nil, err
		}
		je.recordStage(sg, len(out), spent.Add(io), true)
		return out, nil
	default:
		return nil, fmt.Errorf("core: unknown join operator %q", sg.Operator)
	}
}

// execNL joins by scanning the inner heap once, keeping rows that pass
// the local restriction in memory, and looping over outer × inner.
func (je *joinExec) execNL(t int, preds []stagePred, outer []expr.Row) ([]expr.Row, storage.IOStats, error) {
	m := newMeter(je.ec)
	tab := je.jq.Tables[t]
	local := je.jq.Local[t]
	off := je.offs[t]
	hc := tab.Heap.CursorTracked(m.tr)
	defer hc.Close()
	var inner []expr.Row
	for {
		rec, _, ok, err := hc.Next()
		if err != nil {
			return nil, m.io(), err
		}
		if !ok {
			break
		}
		row, err := expr.DecodeRow(rec)
		if err != nil {
			return nil, m.io(), err
		}
		pass, err := expr.EvalPred(local, row, je.jq.Binds)
		if err != nil {
			return nil, m.io(), err
		}
		if pass {
			inner = append(inner, row)
		}
	}
	var out []expr.Row
	for _, orow := range outer {
		for _, irow := range inner {
			if predsMatch(preds, orow, irow) {
				out = append(out, combineRows(orow, irow, off))
			}
		}
	}
	return out, m.io(), nil
}

// buildBitmap scans the inner table's restriction-index range and
// packs the qualifying RIDs into an exact compressed bitmap — the
// RID-intersect half of the ridx operator.
func (je *joinExec) buildBitmap(t int, m *meter) (*rid.CompressedBitmap, error) {
	info := je.infos[t]
	if info.restrIx == nil {
		return nil, fmt.Errorf("core: ridx stage on %s without a restriction index", je.jq.Tables[t].Name)
	}
	cur, err := info.restrIx.Tree.SeekTracked(info.restrLo, info.restrHi, m.tr)
	if err != nil {
		return nil, err
	}
	defer cur.Close()
	var rids []storage.RID
	for {
		_, r, ok, err := cur.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		rids = append(rids, r)
	}
	return rid.FromRIDs(rids), nil
}

// execProbe joins by probing the inner index once per outer row,
// optionally filtering candidate RIDs through a restriction bitmap
// before fetching. Returns fellBack=true when the mid-stage checkpoint
// decides a nested loop would be cheaper (partial output discarded).
func (je *joinExec) execProbe(sg *JoinStagePlan, preds []stagePred, outer []expr.Row, filter *rid.CompressedBitmap, m *meter) (_ []expr.Row, fellBack bool, _ error) {
	t := sg.Table
	tab := je.jq.Tables[t]
	ix := tab.IndexByName(sg.Index)
	if ix == nil {
		return nil, false, fmt.Errorf("core: join probe index %s.%s not found", tab.Name, sg.Index)
	}
	probeCol := ix.LeadingCol()
	probe := -1
	for i, sp := range preds {
		if sp.innerCol == probeCol {
			probe = i
			break
		}
	}
	if probe == -1 {
		return nil, false, fmt.Errorf("core: no join predicate drives probe index %s.%s", tab.Name, sg.Index)
	}
	if handled, pout, fellBack, err := je.execProbeParallel(sg, preds, probe, ix, outer, filter, m); handled {
		return pout, fellBack, err
	}
	local := je.jq.Local[t]
	off := je.offs[t]
	var out []expr.Row
	var err error
	for oi, orow := range outer {
		// Mid-stage checkpoint: extrapolate the remaining probe cost
		// from what probing has actually charged so far and compare to
		// scanning the inner once.
		if je.dynamic && oi >= joinReoptMinProbes && oi%joinReoptCheckEvery == 0 {
			avg := m.cost() / float64(oi)
			remaining := float64(len(outer) - oi)
			if avg*remaining > je.reoptF*je.jts[t].Pages {
				return nil, true, nil
			}
		}
		out, err = je.probeOne(out, orow, preds, probe, tab, ix, local, off, filter, m.tr)
		if err != nil {
			return nil, false, err
		}
	}
	return out, false, nil
}

// probeOne probes the inner index for one outer row, appending matches
// to out. All charged I/O goes to tr, so the partitioned probe path can
// run probeOne on per-worker trackers while the sequential path passes
// the stage meter's.
func (je *joinExec) probeOne(out []expr.Row, orow expr.Row, preds []stagePred, probe int, tab *catalog.Table, ix *catalog.Index, local expr.Expr, off int, filter *rid.CompressedBitmap, tr *storage.Tracker) ([]expr.Row, error) {
	v := orow[preds[probe].outerPos]
	if v.IsNull() {
		return out, nil
	}
	lo := expr.EncodeKey(nil, v)
	hi := expr.KeySuccessor(lo)
	cur, err := ix.Tree.SeekTracked(lo, hi, tr)
	if err != nil {
		return out, err
	}
	defer cur.Close()
	for {
		_, r, ok, err := cur.Next()
		if err != nil {
			return out, err
		}
		if !ok {
			return out, nil
		}
		if filter != nil && !filter.MayContain(r) {
			continue
		}
		row, err := tab.FetchTracked(r, tr)
		if err != nil {
			return out, err
		}
		pass, err := expr.EvalPred(local, row, je.jq.Binds)
		if err != nil {
			return out, err
		}
		if pass && predsMatch(preds, orow, row) {
			out = append(out, combineRows(orow, row, off))
		}
	}
}

// combineRows binds an inner row into a copy of the outer flat row at
// the inner table's offset.
func combineRows(outer, inner expr.Row, off int) expr.Row {
	fr := make(expr.Row, len(outer))
	copy(fr, outer)
	copy(fr[off:off+len(inner)], inner)
	return fr
}

// joinRows delivers the materialized join result with projection and
// limit, mirroring sliceRows for the single-table sort path.
type joinRows struct {
	jq   *JoinQuery
	rows []expr.Row
	i    int
	st   RetrievalStats
}

func (s *joinRows) Next() (expr.Row, bool, error) {
	if s.i >= len(s.rows) || (s.jq.Limit > 0 && s.st.RowsDelivered >= s.jq.Limit) {
		return nil, false, nil
	}
	row := s.jq.project(s.rows[s.i])
	s.i++
	s.st.RowsDelivered++
	return row, true, nil
}

func (s *joinRows) Close() error          { return nil }
func (s *joinRows) Stats() RetrievalStats { return s.st }
