package core

import (
	"rdbdyn/internal/btree"
	"rdbdyn/internal/catalog"
	"rdbdyn/internal/expr"
	"rdbdyn/internal/rid"
	"rdbdyn/internal/storage"
)

// stepper is a resumable scan. The cooperative scheduler in the tactics
// advances foreground and background steppers in proportional slices,
// which is how the paper's "simultaneous runs with proportional speeds"
// are realized deterministically.
type stepper interface {
	// step advances by roughly one page worth of work.
	step() (done bool, err error)
	// cost returns the I/O invested in this scan so far.
	cost() float64
	// name identifies the scan for traces.
	name() string
	// release frees resources held across steps — open cursors and
	// their buffer-pool pins, spilled RID containers. It must be
	// idempotent and safe at any point of the scan's life; cancellation
	// unwinds through it.
	release()
}

// meter attributes buffer-pool I/O to one scan through a per-scan
// Tracker. The tracked storage accessors charge the tracker directly,
// so attribution stays exact even while concurrent queries drive the
// same pool (global-snapshot differencing would not).
//
// The tracker carries the query's governor (from the ExecCtx), which is
// how the execution context reaches the buffer pool's cancellation
// checkpoint through every scan of the query.
type meter struct {
	tr *storage.Tracker
}

func newMeter(ec *ExecCtx) meter { return meter{tr: storage.NewTracker(ec.Governor())} }

func (m *meter) cost() float64       { return float64(m.tr.IOCost()) }
func (m *meter) total() int64        { return m.tr.IOCost() }
func (m *meter) io() storage.IOStats { return m.tr.Stats() }

// entryCursor is the common face of forward and reverse index cursors.
type entryCursor interface {
	Next() (key []byte, rid storage.RID, ok bool, err error)
	// NextBatch drains up to a leaf's worth of entries per call with
	// identical tracker charges to per-entry Next; n == 0 means
	// exhaustion.
	NextBatch(dst []btree.Entry) (n int, err error)
	// Close releases the cursor's leaf pin; required when abandoning
	// the cursor before exhaustion.
	Close()
}

// newEntryCursor opens a cursor over [lo, hi) in the requested
// direction, charging its page accesses to tr.
func newEntryCursor(tree *btree.BTree, lo, hi []byte, desc bool, tr *storage.Tracker) (entryCursor, error) {
	if desc {
		return tree.SeekReverseTracked(lo, hi, tr)
	}
	return tree.SeekTracked(lo, hi, tr)
}

// rowQueue is the delivery buffer between a producing scan and the
// Rows iterator.
type rowQueue struct {
	rows []expr.Row
}

func (q *rowQueue) push(r expr.Row) { q.rows = append(q.rows, r) }
func (q *rowQueue) empty() bool     { return len(q.rows) == 0 }
func (q *rowQueue) pop() expr.Row {
	r := q.rows[0]
	q.rows = q.rows[1:]
	return r
}

// ridQueue carries borrowed RIDs from the background's first index scan
// to the fast-first foreground.
type ridQueue struct {
	rids   []storage.RID
	closed bool // producer finished
}

func (q *ridQueue) push(r storage.RID) { q.rids = append(q.rids, r) }
func (q *ridQueue) empty() bool        { return len(q.rids) == 0 }
func (q *ridQueue) pop() storage.RID {
	r := q.rids[0]
	q.rids = q.rids[1:]
	return r
}

// tscan is the classical sequential retrieval: one heap page per step.
// An optional exclusion list skips rows a terminated foreground already
// delivered (fast-first fallback).
type tscan struct {
	q       *Query
	cur     *storage.HeapCursor
	out     *rowQueue
	m       meter
	exclude *rid.CompressedBitmap
	rpp     int // rows per page, the per-step record budget
	workers int // intra-query worker budget (see parallel.go)
	parDone bool
	done    bool
}

func newTscan(ec *ExecCtx, q *Query, out *rowQueue, workers int) *tscan {
	pages := q.Table.Pages()
	rpp := 1
	if pages > 0 {
		rpp = int(q.Table.Cardinality())/pages + 1
	}
	m := newMeter(ec)
	return &tscan{
		q:       q,
		cur:     q.Table.Heap.CursorTracked(m.tr),
		out:     out,
		m:       m,
		rpp:     rpp,
		workers: workers,
	}
}

func (t *tscan) name() string  { return "Tscan" }
func (t *tscan) cost() float64 { return t.m.cost() }
func (t *tscan) release()      { t.cur.Close() }

func (t *tscan) step() (bool, error) {
	if t.done {
		return true, nil
	}
	// Eager partitioned scan: only without a row limit (an eager scan
	// cannot stop early) and only as the very first step (a scan that
	// already made sequential progress keeps its cursor position).
	if t.workers > 1 && t.q.Limit == 0 && !t.parDone {
		t.parDone = true
		if handled, err := t.runParallelScan(); handled || err != nil {
			return t.done, err
		}
	}
	for i := 0; i < t.rpp; i++ {
		rec, rrid, ok, err := t.cur.Next()
		if err != nil {
			return t.done, err
		}
		if !ok {
			t.done = true
			return true, nil
		}
		if t.exclude != nil && t.exclude.MayContain(rrid) {
			continue
		}
		row, err := expr.DecodeRow(rec)
		if err != nil {
			return t.done, err
		}
		keep, err := expr.EvalPred(t.q.Restriction, row, t.q.Binds)
		if err != nil {
			return t.done, err
		}
		if keep {
			t.out.push(t.q.project(row))
		}
	}
	return t.done, nil
}

// pagesRemaining projects the scan's remaining cost.
func (t *tscan) pagesRemaining() int { return t.cur.PagesRemaining() }

// sscan is the self-sufficient index scan: the whole query is answered
// from index entries, never touching data records.
type sscan struct {
	q   *Query
	ix  *catalog.Index
	cur entryCursor
	out *rowQueue
	m   meter
	// delivered records RIDs of rows already handed out, so a winning
	// background final stage can skip them (index-only tactic).
	delivered []storage.RID
	perStep   int
	done      bool
}

func newSscan(ec *ExecCtx, q *Query, ix *catalog.Index, lo, hi []byte, out *rowQueue, perStep int, desc bool) (*sscan, error) {
	m := newMeter(ec)
	cur, err := newEntryCursor(ix.Tree, lo, hi, desc, m.tr)
	if err != nil {
		return nil, err
	}
	return &sscan{
		q:       q,
		ix:      ix,
		cur:     cur,
		out:     out,
		m:       m,
		perStep: perStep,
	}, nil
}

func (s *sscan) name() string  { return "Sscan(" + s.ix.Name + ")" }
func (s *sscan) cost() float64 { return s.m.cost() }
func (s *sscan) release()      { s.cur.Close() }

func (s *sscan) step() (bool, error) {
	if s.done {
		return true, nil
	}
	for i := 0; i < s.perStep; i++ {
		key, rid, ok, err := s.cur.Next()
		if err != nil {
			return s.done, err
		}
		if !ok {
			s.done = true
			return true, nil
		}
		row, err := s.ix.DecodeEntry(key)
		if err != nil {
			return s.done, err
		}
		keep, err := expr.EvalPred(s.q.Restriction, row, s.q.Binds)
		if err != nil {
			return s.done, err
		}
		if keep {
			s.out.push(s.q.project(row))
			s.delivered = append(s.delivered, rid)
		}
	}
	return s.done, nil
}

// fscan is the classical indexed retrieval: scan a fetch-needed index
// and fetch each candidate data record immediately. An optional filter
// (produced by a cooperating Jscan in the sorted tactic) rejects RIDs
// before the fetch, "eliminating a large number of record fetches that
// usually comprise the biggest cost portion of retrieval".
type fscan struct {
	q       *Query
	ix      *catalog.Index
	cur     entryCursor
	local   expr.Expr              // restriction conjuncts evaluable on key columns
	filter  func(storage.RID) bool // nil = no pre-fetch filter
	out     *rowQueue
	m       meter
	perStep int
	scanned int // entries consumed
	fetched int // records fetched
	done    bool
}

// localRestriction extracts the conjuncts of e whose columns all lie in
// the index key, so they can be checked on the entry before fetching.
func localRestriction(e expr.Expr, ix *catalog.Index) expr.Expr {
	var local []expr.Expr
	for _, cj := range expr.Conjuncts(e) {
		if ix.Covers(expr.Columns(cj)) {
			local = append(local, cj)
		}
	}
	if len(local) == 0 {
		return nil
	}
	return expr.NewAnd(local...)
}

func newFscan(ec *ExecCtx, q *Query, ix *catalog.Index, lo, hi []byte, out *rowQueue, perStep int, desc bool) (*fscan, error) {
	m := newMeter(ec)
	cur, err := newEntryCursor(ix.Tree, lo, hi, desc, m.tr)
	if err != nil {
		return nil, err
	}
	return &fscan{
		q:       q,
		ix:      ix,
		cur:     cur,
		local:   localRestriction(q.Restriction, ix),
		out:     out,
		m:       m,
		perStep: perStep,
	}, nil
}

func (f *fscan) name() string  { return "Fscan(" + f.ix.Name + ")" }
func (f *fscan) cost() float64 { return f.m.cost() }
func (f *fscan) release()      { f.cur.Close() }

// setFilter installs a pre-fetch RID filter (sorted tactic: the Jscan
// filter arrives while the Fscan is already running).
func (f *fscan) setFilter(fn func(storage.RID) bool) { f.filter = fn }

func (f *fscan) step() (bool, error) {
	if f.done {
		return true, nil
	}
	fetches := 0
	for i := 0; i < f.perStep && fetches < 4; i++ {
		key, rid, ok, err := f.cur.Next()
		if err != nil {
			return f.done, err
		}
		if !ok {
			f.done = true
			return true, nil
		}
		f.scanned++
		if f.local != nil {
			row, err := f.ix.DecodeEntry(key)
			if err != nil {
				return f.done, err
			}
			keep, err := expr.EvalPred(f.local, row, f.q.Binds)
			if err != nil {
				return f.done, err
			}
			if !keep {
				continue
			}
		}
		if f.filter != nil && !f.filter(rid) {
			continue
		}
		row, err := f.q.Table.FetchTracked(rid, f.m.tr)
		if err != nil {
			return f.done, err
		}
		fetches++
		f.fetched++
		keep, err := expr.EvalPred(f.q.Restriction, row, f.q.Binds)
		if err != nil {
			return f.done, err
		}
		if keep {
			f.out.push(f.q.project(row))
		}
	}
	return f.done, nil
}

// borrowFetcher is the fast-first foreground: it consumes RIDs borrowed
// from the background Jscan's first index scan, fetches and delivers
// the records, and remembers what it delivered so the final stage can
// filter those out (Section 7, fast-first tactic).
type borrowFetcher struct {
	q   *Query
	in  *ridQueue
	out *rowQueue
	m   meter
	// delivered RIDs, bounded by cap; overflow signals the tactic to
	// terminate the foreground.
	delivered []storage.RID
	capRIDs   int
	overflow  bool
	done      bool
}

func newBorrowFetcher(ec *ExecCtx, q *Query, in *ridQueue, out *rowQueue, capRIDs int) *borrowFetcher {
	// capRIDs == 0 means "the documented default", never "overflow
	// after the first delivered row"; a negative cap means unbounded.
	if capRIDs == 0 {
		capRIDs = DefaultConfig().FgBufferCap
	}
	return &borrowFetcher{
		q:       q,
		in:      in,
		out:     out,
		m:       newMeter(ec),
		capRIDs: capRIDs,
	}
}

func (b *borrowFetcher) name() string  { return "Fgr(borrow)" }
func (b *borrowFetcher) cost() float64 { return b.m.cost() }
func (b *borrowFetcher) release()      {} // fetches page-at-a-time; nothing held

func (b *borrowFetcher) step() (bool, error) {
	if b.done {
		return true, nil
	}
	for fetches := 0; fetches < 4; fetches++ {
		if b.in.empty() {
			if b.in.closed {
				b.done = true
			}
			return b.done, nil
		}
		rid := b.in.pop()
		row, err := b.q.Table.FetchTracked(rid, b.m.tr)
		if err != nil {
			return b.done, err
		}
		keep, err := expr.EvalPred(b.q.Restriction, row, b.q.Binds)
		if err != nil {
			return b.done, err
		}
		// Only delivered rows need bookkeeping: rows rejected here
		// will be rejected again by Fin's restriction re-check.
		if keep {
			b.out.push(b.q.project(row))
			b.delivered = append(b.delivered, rid)
			if b.capRIDs > 0 && len(b.delivered) >= b.capRIDs {
				b.overflow = true
				b.done = true
				return true, nil
			}
		}
	}
	return b.done, nil
}
