package core

import (
	"fmt"
	"sync"

	"rdbdyn/internal/estimate"
	"rdbdyn/internal/expr"
	"rdbdyn/internal/storage"
)

// The build/probe hash-join operator (hj): the fourth per-stage
// competitor next to nl/inl/ridx. One tracked scan of the inner table
// builds an in-memory hash table over its qualifying rows — via the
// restriction-index range when planning found that cheaper than the
// heap — keyed by the concatenated order-preserving encodings of every
// connecting equi-join column. The probe phase is pure CPU: each outer
// row looks up its key bucket and re-verifies the predicates against
// the candidates (hash buckets may alias; predsMatch is the truth).
// All charged I/O is the build scan's, attributed through the stage
// meter like every other operator.

// hashJoinKey appends the encoded join-key values of row at the given
// positions. ok=false when any value is NULL: a NULL key never matches
// anything (SQL two-valued semantics), so NULL rows neither enter the
// build table nor probe it.
func hashJoinKey(buf []byte, row expr.Row, cols []int) (_ []byte, ok bool) {
	for _, c := range cols {
		v := row[c]
		if v.IsNull() {
			return buf, false
		}
		buf = expr.EncodeKey(buf, v)
	}
	return buf, true
}

// execHJ runs one hj stage: build over the inner table's qualifying
// rows, probe from the outer (driver) side.
func (je *joinExec) execHJ(sg *JoinStagePlan, preds []stagePred, outer []expr.Row) ([]expr.Row, storage.IOStats, error) {
	if len(preds) == 0 {
		return nil, storage.IOStats{}, fmt.Errorf("core: hj stage on %s without an equi-join predicate", je.jq.nameOf(sg.Table))
	}
	m := newMeter(je.ec)
	t := sg.Table
	tab := je.jq.Tables[t]
	local := je.jq.Local[t]
	off := je.offs[t]
	innerCols := make([]int, len(preds))
	outerCols := make([]int, len(preds))
	for i, sp := range preds {
		innerCols[i] = sp.innerCol
		outerCols[i] = sp.outerPos
	}

	ht := make(map[string][]expr.Row)
	var kbuf []byte
	insert := func(row expr.Row) {
		key, ok := hashJoinKey(kbuf[:0], row, innerCols)
		kbuf = key
		if !ok {
			return
		}
		ht[string(key)] = append(ht[string(key)], row)
	}
	if sg.Index != "" {
		// Index-assisted build: the restriction index bounds the
		// qualifying rows, so only they are fetched. The range may
		// over-approximate the restriction; the full local predicate
		// re-filters every fetched row, exactly like the driver's iscan.
		info := je.infos[t]
		if info.restrIx == nil || info.restrIx.Name != sg.Index {
			return nil, m.io(), fmt.Errorf("core: hj build index %s.%s is not the restriction index", tab.Name, sg.Index)
		}
		cur, err := info.restrIx.Tree.SeekTracked(info.restrLo, info.restrHi, m.tr)
		if err != nil {
			return nil, m.io(), err
		}
		defer cur.Close()
		for {
			_, r, ok, err := cur.Next()
			if err != nil {
				return nil, m.io(), err
			}
			if !ok {
				break
			}
			row, err := tab.FetchTracked(r, m.tr)
			if err != nil {
				return nil, m.io(), err
			}
			pass, err := expr.EvalPred(local, row, je.jq.Binds)
			if err != nil {
				return nil, m.io(), err
			}
			if pass {
				insert(row)
			}
		}
	} else {
		hc := tab.Heap.CursorTracked(m.tr)
		defer hc.Close()
		for {
			rec, _, ok, err := hc.Next()
			if err != nil {
				return nil, m.io(), err
			}
			if !ok {
				break
			}
			row, err := expr.DecodeRow(rec)
			if err != nil {
				return nil, m.io(), err
			}
			pass, err := expr.EvalPred(local, row, je.jq.Binds)
			if err != nil {
				return nil, m.io(), err
			}
			if pass {
				insert(row)
			}
		}
	}

	if handled, out := je.hjProbeParallel(ht, preds, outerCols, outer, off); handled {
		return out, m.io(), nil
	}
	out := hjProbeChunk(ht, preds, outerCols, outer, off)
	return out, m.io(), nil
}

// hjProbeChunk probes the (read-only) hash table for a contiguous run
// of outer rows, preserving outer order in the output.
func hjProbeChunk(ht map[string][]expr.Row, preds []stagePred, outerCols []int, outer []expr.Row, off int) []expr.Row {
	var out []expr.Row
	var kbuf []byte
	for _, orow := range outer {
		key, ok := hashJoinKey(kbuf[:0], orow, outerCols)
		kbuf = key
		if !ok {
			continue
		}
		for _, irow := range ht[string(key)] {
			if predsMatch(preds, orow, irow) {
				out = append(out, combineRows(orow, irow, off))
			}
		}
	}
	return out
}

// hjProbeParallel fans the CPU-only probe phase across workers under
// adaptive parallelism: contiguous outer chunks probe the shared
// read-only hash table concurrently and the per-chunk outputs
// concatenate in chunk order, matching the sequential probe exactly.
// The probe charges no I/O, so the width policy prices it through the
// CPU-in-I/O currency — small probe sides stay sequential.
func (je *joinExec) hjProbeParallel(ht map[string][]expr.Row, preds []stagePred, outerCols []int, outer []expr.Row, off int) (handled bool, _ []expr.Row) {
	if !je.o.cfg.AdaptiveParallelism || je.o.cfg.effectiveWorkers() < 2 || len(outer) < 2 {
		return false, nil
	}
	estIO := estimate.JoinCPUCost(float64(len(outer)))
	width := decideWidth(je.o.cfg, je.ec, je.trc, "HashProbe", estIO)
	if width < 2 {
		return false, nil
	}
	k := width
	if k > len(outer) {
		k = len(outer)
	}
	outs := make([][]expr.Row, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int, rows []expr.Row) {
			defer wg.Done()
			outs[i] = hjProbeChunk(ht, preds, outerCols, rows, off)
		}(i, outer[i*len(outer)/k:(i+1)*len(outer)/k])
	}
	wg.Wait()
	var out []expr.Row
	for i := range outs {
		out = append(out, outs[i]...)
	}
	return true, out
}
