package core

import (
	"fmt"
	"math"
	"strings"

	"rdbdyn/internal/catalog"
	"rdbdyn/internal/estimate"
)

// joinTableInfo is the gathered planning state of one FROM table: its
// (corrected) filtered cardinality, the best restriction index, and
// distinct estimates for its join columns.
type joinTableInfo struct {
	card  float64 // estimated rows after the local restriction
	exact bool
	empty bool // local restriction provably matches nothing
	// restrIx is the most selective restriction index (nil when the
	// local restriction is unsargable or absent); restrLo/restrHi its
	// scan bounds, restrRIDs its estimated entry count.
	restrIx          *catalog.Index
	restrLo, restrHi []byte
	restrRIDs        float64
	estIO            int64
}

// JoinStagePlan is one planned stage: the table it joins in, the
// operator, the probe index (inl/ridx; the driver's scan index for
// stage 0), and the estimated output cardinality and I/O.
type JoinStagePlan struct {
	Table    int
	Operator string
	Index    string
	EstRows  float64
	EstIO    float64
}

// JoinPlan is a complete join execution plan: greedy table order plus a
// per-stage operator choice. Stage 0 is the driver scan.
type JoinPlan struct {
	Stages []JoinStagePlan
	EstIO  float64
}

// String renders the plan as "T0:tscan -> T1:inl(IX) -> T2:nl".
func (p *JoinPlan) Describe(jq *JoinQuery) string {
	var b strings.Builder
	for i, sg := range p.Stages {
		if i > 0 {
			b.WriteString(" -> ")
		}
		b.WriteString(jq.Tables[sg.Table].Name)
		b.WriteString(":")
		b.WriteString(sg.Operator)
		if sg.Index != "" {
			fmt.Fprintf(&b, "(%s)", sg.Index)
		}
	}
	return b.String()
}

// joinEdges converts the query's predicates to estimator edges.
func joinEdges(jq *JoinQuery) []estimate.JoinEdge {
	out := make([]estimate.JoinEdge, len(jq.Preds))
	for i, p := range jq.Preds {
		out[i] = estimate.JoinEdge{T1: p.LT, C1: p.LC, T2: p.RT, C2: p.RC}
	}
	return out
}

// gatherJoinInfo appraises every FROM table: filtered cardinality via
// the initial-stage estimator (feedback-corrected, charging estimation
// I/O), plus deterministic distinct-value samples for each join column.
func (o *Optimizer) gatherJoinInfo(ec *ExecCtx, jq *JoinQuery) ([]joinTableInfo, []estimate.JoinTable, error) {
	infos := make([]joinTableInfo, len(jq.Tables))
	jts := make([]estimate.JoinTable, len(jq.Tables))
	for i, tab := range jq.Tables {
		info := joinTableInfo{card: float64(tab.Cardinality()), exact: true}
		if local := jq.Local[i]; local != nil {
			// Only indexes the restriction actually bounds are useful;
			// an unrestricted index would just count the whole table.
			var useful []*catalog.Index
			for _, ix := range tab.Indexes {
				lo, hi, n, empty := ix.RestrictionBounds(local, jq.Binds)
				if empty && n > 0 {
					info.empty = true
				}
				if n > 0 && (lo != nil || hi != nil) {
					useful = append(useful, ix)
				}
			}
			if !info.empty && len(useful) > 0 {
				res, err := estimate.Appraise(useful, local, jq.Binds, estimate.Options{
					ShortRange: o.cfg.ShortRange,
					Governor:   ec.Governor(),
					Correction: o.cfg.Feedback.CorrectionFor(tab.Name),
				})
				if err != nil {
					return nil, nil, err
				}
				info.estIO = res.TotalCost
				if res.EmptyRange {
					info.empty = true
				} else if len(res.Estimates) > 0 {
					best := res.Estimates[0]
					info.card = best.RIDs
					info.exact = best.Exact
					info.restrIx = best.Index
					info.restrLo, info.restrHi = best.Lo, best.Hi
					info.restrRIDs = best.RIDs
				}
			} else if !info.empty {
				// Unsargable restriction: the classic 10% guess, scaled
				// by any learned whole-table correction (join stage
				// actuals observe under the stage's index name, the
				// driver's tscan under "").
				info.card = float64(tab.Cardinality()) / 10
				info.exact = false
				if corr := o.cfg.Feedback.CorrectionFor(tab.Name); corr != nil {
					info.card *= corr("")
				}
			}
		}
		infos[i] = info
		jt := estimate.JoinTable{
			Name:  tab.Name,
			Card:  info.card,
			Rows:  float64(tab.Cardinality()),
			Pages: float64(tab.Pages()),
		}
		for _, p := range jq.Preds {
			for _, tc := range [2][2]int{{p.LT, p.LC}, {p.RT, p.RC}} {
				if tc[0] != i {
					continue
				}
				if jt.Distinct == nil {
					jt.Distinct = map[int]float64{}
				}
				if _, done := jt.Distinct[tc[1]]; done {
					continue
				}
				if ix := indexOnCol(tab, tc[1]); ix != nil {
					jt.Distinct[tc[1]] = estimate.DistinctEstimate(ix)
				}
			}
		}
		jts[i] = jt
	}
	return infos, jts, nil
}

// indexOnCol returns the first index whose leading column is col.
func indexOnCol(tab *catalog.Table, col int) *catalog.Index {
	for _, ix := range tab.Indexes {
		if ix.LeadingCol() == col {
			return ix
		}
	}
	return nil
}

// probeIndex finds an index usable for index-nested-loop probing of
// table t: one whose leading column is the inner column of a predicate
// connecting t to the already-joined set.
func probeIndex(jq *JoinQuery, t int, in func(int) bool) (*catalog.Index, int) {
	for _, p := range jq.Preds {
		if p.LT == t && in(p.RT) {
			if ix := indexOnCol(jq.Tables[t], p.LC); ix != nil {
				return ix, p.LC
			}
		}
		if p.RT == t && in(p.LT) {
			if ix := indexOnCol(jq.Tables[t], p.RC); ix != nil {
				return ix, p.RC
			}
		}
	}
	return nil, -1
}

// chooseJoinOp costs the three stage operators for joining table t into
// an intermediate of inRows rows and returns the cheapest.
//
//	nl   — one tracked heap scan of t (materialized in memory):  Pages(t)
//	inl  — a B-tree descent plus one fetch per key match, per outer row:
//	       inRows · (height + Rows/d)
//	ridx — inl probing filtered through a restriction-range RID bitmap:
//	       leafPages(range) + inRows · (height + (Rows/d)·sel)
func chooseJoinOp(jq *JoinQuery, infos []joinTableInfo, jts []estimate.JoinTable, t int, in func(int) bool, inRows, outRows float64) JoinStagePlan {
	sg := JoinStagePlan{Table: t, Operator: JoinOpNL, EstRows: outRows}
	jt := jts[t]
	sg.EstIO = jt.Pages
	ix, col := probeIndex(jq, t, in)
	if ix == nil {
		return sg
	}
	d := jt.Rows * estimate.DefaultJoinDistinctFraction
	if dd, ok := jt.Distinct[col]; ok && dd >= 1 {
		d = dd
	}
	if d < 1 {
		d = 1
	}
	matches := jt.Rows / d
	height := float64(ix.Tree.Height())
	if inlCost := inRows * (height + matches); inlCost < sg.EstIO {
		sg.Operator, sg.Index, sg.EstIO = JoinOpINL, ix.Name, inlCost
	}
	info := infos[t]
	if info.restrIx != nil && jt.Rows > 0 {
		sel := jt.Card / jt.Rows
		model := estimate.CostModel{TablePages: int(jt.Pages), TableRows: int64(jt.Rows)}
		bitmapCost := model.LeafPages(info.restrRIDs, info.restrIx.Tree.AvgLeafEntries()) +
			float64(info.restrIx.Tree.Height())
		if ridxCost := bitmapCost + inRows*(height+matches*sel); ridxCost < sg.EstIO {
			sg.Operator, sg.Index, sg.EstIO = JoinOpRIDX, ix.Name, ridxCost
		}
	}
	return sg
}

// planJoinRest orders and costs the stages for the tables not yet
// joined — the shared engine of initial planning and mid-flight
// re-optimization.
func (o *Optimizer) planJoinRest(jq *JoinQuery, infos []joinTableInfo, jts []estimate.JoinTable, chosen []int, curRows float64) []JoinStagePlan {
	rest := estimate.GreedyJoinRest(jts, joinEdges(jq), chosen, curRows)
	in := make([]bool, len(jq.Tables))
	for _, t := range chosen {
		in[t] = true
	}
	inSet := func(t int) bool { return in[t] }
	out := make([]JoinStagePlan, 0, len(rest))
	cur := curRows
	for _, r := range rest {
		sg := chooseJoinOp(jq, infos, jts, r.Table, inSet, cur, r.OutRows)
		out = append(out, sg)
		in[r.Table] = true
		cur = r.OutRows
	}
	return out
}

// planJoin builds the full static plan: greedy driver choice, then
// planJoinRest for the remaining tables. The driver scans its table via
// the best restriction index when that beats a sequential scan.
func (o *Optimizer) planJoin(jq *JoinQuery, infos []joinTableInfo, jts []estimate.JoinTable) *JoinPlan {
	driver := 0
	for i := 1; i < len(jts); i++ {
		if jts[i].Card < jts[driver].Card {
			driver = i
		}
	}
	dsg := JoinStagePlan{Table: driver, Operator: "tscan", EstRows: jts[driver].Card, EstIO: jts[driver].Pages}
	if info := infos[driver]; info.restrIx != nil {
		model := estimate.CostModel{TablePages: int(jts[driver].Pages), TableRows: int64(jts[driver].Rows)}
		ixCost := model.FscanCost(info.restrRIDs, info.restrIx.Tree.AvgLeafEntries(), info.restrIx.Tree.Height())
		if ixCost < dsg.EstIO {
			dsg.Operator, dsg.Index, dsg.EstIO = "iscan", info.restrIx.Name, ixCost
		}
	}
	plan := &JoinPlan{Stages: append([]JoinStagePlan{dsg},
		o.planJoinRest(jq, infos, jts, []int{driver}, dsg.EstRows)...)}
	// Whole-join output feedback: past runs over the same table set
	// measured how far the final output cardinality missed the last
	// stage's estimate. Interpolate the learned correction
	// geometrically across the inner stages (full correction at the
	// last stage, none at the driver) so intermediate estimates drift
	// toward observed reality and the mid-flight divergence checks and
	// re-plans start from better numbers. Neutral (factor 1) when no
	// feedback registry is attached or nothing was learned.
	if n := len(plan.Stages); n > 1 {
		if corr := o.cfg.Feedback.CardCorrection(joinFeedbackTable(jq), joinFeedbackIndex); corr != 1 {
			for i := 1; i < n; i++ {
				plan.Stages[i].EstRows *= math.Pow(corr, float64(i)/float64(n-1))
			}
		}
	}
	for _, sg := range plan.Stages {
		plan.EstIO += sg.EstIO
	}
	return plan
}

// joinFeedbackIndex is the synthetic index slot the whole-join output
// observation lives under, distinguishing it from per-stage slots.
const joinFeedbackIndex = "(output)"

// joinFeedbackTable is the synthetic feedback key for a join's table
// set: the declaration-order table names, so repeated joins of the
// same FROM list share one correction regardless of chosen order.
func joinFeedbackTable(jq *JoinQuery) string {
	names := make([]string, len(jq.Tables))
	for i, t := range jq.Tables {
		names[i] = t.Name
	}
	return "join(" + strings.Join(names, ",") + ")"
}
