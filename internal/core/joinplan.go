package core

import (
	"fmt"
	"math"
	"strings"

	"rdbdyn/internal/catalog"
	"rdbdyn/internal/estimate"
)

// joinTableInfo is the gathered planning state of one FROM table: its
// (corrected) filtered cardinality, the best restriction index, and
// distinct estimates for its join columns.
type joinTableInfo struct {
	card  float64 // estimated rows after the local restriction
	exact bool
	empty bool // local restriction provably matches nothing
	// restrIx is the most selective restriction index (nil when the
	// local restriction is unsargable or absent); restrLo/restrHi its
	// scan bounds, restrRIDs its estimated entry count.
	restrIx          *catalog.Index
	restrLo, restrHi []byte
	restrRIDs        float64
	estIO            int64
}

// JoinStagePlan is one planned stage: the table it joins in, the
// operator, the probe index (inl/ridx; the driver's scan index for
// stage 0), and the estimated output cardinality and I/O.
type JoinStagePlan struct {
	Table    int
	Operator string
	Index    string
	EstRows  float64
	EstIO    float64
}

// JoinPlan is a complete join execution plan: greedy table order plus a
// per-stage operator choice. Stage 0 is the driver scan.
type JoinPlan struct {
	Stages []JoinStagePlan
	EstIO  float64
	// Ordered marks a plan whose execution already delivers the query's
	// ORDER BY order — an order-delivering driver index scan followed
	// only by order-preserving probe stages (inl/ridx) — so the
	// executor can skip the final materialized sort. hj and nl stages
	// destroy the surviving order; a mid-flight re-plan into one of
	// them reinstates the sort at execution time.
	Ordered bool
}

// String renders the plan as "T0:tscan -> T1:inl(IX) -> T2:nl".
func (p *JoinPlan) Describe(jq *JoinQuery) string {
	var b strings.Builder
	for i, sg := range p.Stages {
		if i > 0 {
			b.WriteString(" -> ")
		}
		b.WriteString(jq.nameOf(sg.Table))
		b.WriteString(":")
		b.WriteString(sg.Operator)
		if sg.Index != "" {
			fmt.Fprintf(&b, "(%s)", sg.Index)
		}
	}
	if p.Ordered {
		b.WriteString(" [order-preserving]")
	}
	return b.String()
}

// joinEdges converts the query's predicates to estimator edges.
func joinEdges(jq *JoinQuery) []estimate.JoinEdge {
	out := make([]estimate.JoinEdge, len(jq.Preds))
	for i, p := range jq.Preds {
		out[i] = estimate.JoinEdge{T1: p.LT, C1: p.LC, T2: p.RT, C2: p.RC}
	}
	return out
}

// gatherJoinInfo appraises every FROM table: filtered cardinality via
// the initial-stage estimator (feedback-corrected, charging estimation
// I/O), plus deterministic distinct-value samples for each join column.
func (o *Optimizer) gatherJoinInfo(ec *ExecCtx, jq *JoinQuery) ([]joinTableInfo, []estimate.JoinTable, error) {
	infos := make([]joinTableInfo, len(jq.Tables))
	jts := make([]estimate.JoinTable, len(jq.Tables))
	for i, tab := range jq.Tables {
		info := joinTableInfo{card: float64(tab.Cardinality()), exact: true}
		if local := jq.Local[i]; local != nil {
			// Only indexes the restriction actually bounds are useful;
			// an unrestricted index would just count the whole table.
			var useful []*catalog.Index
			for _, ix := range tab.Indexes {
				lo, hi, n, empty := ix.RestrictionBounds(local, jq.Binds)
				if empty && n > 0 {
					info.empty = true
				}
				if n > 0 && (lo != nil || hi != nil) {
					useful = append(useful, ix)
				}
			}
			if !info.empty && len(useful) > 0 {
				res, err := estimate.Appraise(useful, local, jq.Binds, estimate.Options{
					ShortRange: o.cfg.ShortRange,
					Governor:   ec.Governor(),
					Correction: o.cfg.Feedback.CorrectionFor(tab.Name),
				})
				if err != nil {
					return nil, nil, err
				}
				info.estIO = res.TotalCost
				if res.EmptyRange {
					info.empty = true
				} else if len(res.Estimates) > 0 {
					best := res.Estimates[0]
					info.card = best.RIDs
					info.exact = best.Exact
					info.restrIx = best.Index
					info.restrLo, info.restrHi = best.Lo, best.Hi
					info.restrRIDs = best.RIDs
				}
			} else if !info.empty {
				// Unsargable restriction: the classic 10% guess, scaled
				// by any learned whole-table correction (join stage
				// actuals observe under the stage's index name, the
				// driver's tscan under "").
				info.card = float64(tab.Cardinality()) / 10
				info.exact = false
				if corr := o.cfg.Feedback.CorrectionFor(tab.Name); corr != nil {
					info.card *= corr("")
				}
			}
		}
		infos[i] = info
		jt := estimate.JoinTable{
			Name:  tab.Name,
			Card:  info.card,
			Rows:  float64(tab.Cardinality()),
			Pages: float64(tab.Pages()),
		}
		for _, p := range jq.Preds {
			for _, tc := range [2][2]int{{p.LT, p.LC}, {p.RT, p.RC}} {
				if tc[0] != i {
					continue
				}
				if jt.Distinct == nil {
					jt.Distinct = map[int]float64{}
				}
				if _, done := jt.Distinct[tc[1]]; done {
					continue
				}
				if ix := indexOnCol(tab, tc[1]); ix != nil {
					jt.Distinct[tc[1]] = estimate.DistinctEstimate(ix)
				}
			}
		}
		jts[i] = jt
	}
	return infos, jts, nil
}

// indexOnCol returns the first index whose leading column is col.
func indexOnCol(tab *catalog.Table, col int) *catalog.Index {
	for _, ix := range tab.Indexes {
		if ix.LeadingCol() == col {
			return ix
		}
	}
	return nil
}

// probeIndex finds an index usable for index-nested-loop probing of
// table t: one whose leading column is the inner column of a predicate
// connecting t to the already-joined set.
func probeIndex(jq *JoinQuery, t int, in func(int) bool) (*catalog.Index, int) {
	for _, p := range jq.Preds {
		if p.LT == t && in(p.RT) {
			if ix := indexOnCol(jq.Tables[t], p.LC); ix != nil {
				return ix, p.LC
			}
		}
		if p.RT == t && in(p.LT) {
			if ix := indexOnCol(jq.Tables[t], p.RC); ix != nil {
				return ix, p.RC
			}
		}
	}
	return nil, -1
}

// hasEquiPred reports whether an equi-join predicate connects table t
// to the already-joined set — the hashability condition for hj.
func hasEquiPred(jq *JoinQuery, t int, in func(int) bool) bool {
	for _, p := range jq.Preds {
		if p.LT == t && p.RT != t && in(p.RT) {
			return true
		}
		if p.RT == t && p.LT != t && in(p.LT) {
			return true
		}
	}
	return false
}

// hjBuildCost is the cheapest qualifying-row scan of the build side:
// the heap, or the restriction-index range (scan + fetches) when the
// local restriction bounds one and that costs less. Returns the build
// index name ("" for a heap build).
func hjBuildCost(info joinTableInfo, jt estimate.JoinTable) (float64, string) {
	buildIO, buildIx := jt.Pages, ""
	if info.restrIx != nil {
		model := estimate.CostModel{TablePages: int(jt.Pages), TableRows: int64(jt.Rows)}
		if c := model.FscanCost(info.restrRIDs, info.restrIx.Tree.AvgLeafEntries(), info.restrIx.Tree.Height()); c < buildIO {
			buildIO, buildIx = c, info.restrIx.Name
		}
	}
	return buildIO, buildIx
}

// chooseJoinOp costs the four stage operators for joining table t into
// an intermediate of inRows rows and returns the cheapest. Scan-based
// operators carry their comparison work in the shared CPU-in-I/O
// currency (estimate.JoinCPUCost), which is what separates hj's linear
// build+probe from nl's quadratic loop when their scan I/O ties.
//
//	nl   — one tracked heap scan of t (materialized in memory), then the
//	       outer×inner loop:  Pages(t) + cpu(inRows · Card(t))
//	hj   — the cheapest qualifying-row scan (heap or restriction-index
//	       range) hashed once, probed once per outer row:
//	       build + cpu(Card(t) + inRows); needs an equi-join predicate
//	inl  — a B-tree descent plus one fetch per key match, per outer row:
//	       inRows · (height + Rows/d)
//	ridx — inl probing filtered through a restriction-range RID bitmap:
//	       leafPages(range) + inRows · (height + (Rows/d)·sel)
func chooseJoinOp(jq *JoinQuery, infos []joinTableInfo, jts []estimate.JoinTable, t int, in func(int) bool, inRows, outRows float64) JoinStagePlan {
	sg := JoinStagePlan{Table: t, Operator: JoinOpNL, EstRows: outRows}
	jt := jts[t]
	sg.EstIO = jt.Pages + estimate.JoinCPUCost(inRows*jt.Card)
	if hasEquiPred(jq, t, in) {
		buildIO, buildIx := hjBuildCost(infos[t], jt)
		if hjCost := buildIO + estimate.JoinCPUCost(jt.Card+inRows); hjCost < sg.EstIO {
			sg.Operator, sg.Index, sg.EstIO = JoinOpHJ, buildIx, hjCost
		}
	}
	if psg, ok := chooseProbeOp(jq, infos, jts, t, in, inRows, outRows); ok && psg.EstIO < sg.EstIO {
		sg = psg
	}
	return sg
}

// chooseProbeOp costs the two order-preserving probe operators (inl,
// ridx) for joining table t. ok=false when no index can drive a probe —
// the stage then belongs to the scan-based operators, and an
// order-preserving plan through t is infeasible.
func chooseProbeOp(jq *JoinQuery, infos []joinTableInfo, jts []estimate.JoinTable, t int, in func(int) bool, inRows, outRows float64) (JoinStagePlan, bool) {
	ix, col := probeIndex(jq, t, in)
	if ix == nil {
		return JoinStagePlan{}, false
	}
	jt := jts[t]
	d := jt.Rows * estimate.DefaultJoinDistinctFraction
	if dd, ok := jt.Distinct[col]; ok && dd >= 1 {
		d = dd
	}
	if d < 1 {
		d = 1
	}
	matches := jt.Rows / d
	height := float64(ix.Tree.Height())
	sg := JoinStagePlan{Table: t, Operator: JoinOpINL, Index: ix.Name, EstRows: outRows,
		EstIO: inRows * (height + matches)}
	info := infos[t]
	if info.restrIx != nil && jt.Rows > 0 {
		sel := jt.Card / jt.Rows
		model := estimate.CostModel{TablePages: int(jt.Pages), TableRows: int64(jt.Rows)}
		bitmapCost := model.LeafPages(info.restrRIDs, info.restrIx.Tree.AvgLeafEntries()) +
			float64(info.restrIx.Tree.Height())
		if ridxCost := bitmapCost + inRows*(height+matches*sel); ridxCost < sg.EstIO {
			sg.Operator, sg.EstIO = JoinOpRIDX, ridxCost
		}
	}
	return sg, true
}

// planJoinRest orders and costs the stages for the tables not yet
// joined — the shared engine of initial planning and mid-flight
// re-optimization.
func (o *Optimizer) planJoinRest(jq *JoinQuery, infos []joinTableInfo, jts []estimate.JoinTable, chosen []int, curRows float64) []JoinStagePlan {
	rest := estimate.GreedyJoinRest(jts, joinEdges(jq), chosen, curRows)
	in := make([]bool, len(jq.Tables))
	for _, t := range chosen {
		in[t] = true
	}
	inSet := func(t int) bool { return in[t] }
	out := make([]JoinStagePlan, 0, len(rest))
	cur := curRows
	for _, r := range rest {
		sg := chooseJoinOp(jq, infos, jts, r.Table, inSet, cur, r.OutRows)
		out = append(out, sg)
		in[r.Table] = true
		cur = r.OutRows
	}
	return out
}

// planJoin builds the full static plan: the cheapest greedy plan, made
// sort-order-aware when the query carries an ORDER BY. When the cheap
// plan happens to deliver the requested order already, it is just
// marked Ordered (the sort is skipped for free); otherwise an
// order-preserving alternative — order-delivering driver index, probe
// stages only — competes with the avoided sort's cost as a tie-breaker:
// it wins whenever its extra I/O stays within estimate.JoinSortCost of
// the cheap plan's output.
func (o *Optimizer) planJoin(jq *JoinQuery, infos []joinTableInfo, jts []estimate.JoinTable) *JoinPlan {
	plan := o.planJoinBase(jq, infos, jts)
	if len(jq.OrderBy) == 0 || o.cfg.DisableJoinSortAvoidance {
		return plan
	}
	ot, localOrder, ok := joinOrderTable(jq)
	if !ok {
		return plan
	}
	if planDeliversOrder(jq, plan, ot, localOrder) {
		plan.Ordered = true
		return plan
	}
	oix := orderIndex(jq.Tables[ot], localOrder)
	if oix == nil {
		return plan
	}
	if alt := o.planJoinOrdered(jq, infos, jts, ot, oix); alt != nil {
		sortCost := estimate.JoinSortCost(plan.Stages[len(plan.Stages)-1].EstRows)
		if alt.EstIO <= plan.EstIO+sortCost {
			alt.Ordered = true
			return alt
		}
	}
	return plan
}

// planJoinBase builds the cheapest greedy plan: greedy driver choice,
// then planJoinRest for the remaining tables. The driver scans its
// table via the best restriction index when that beats a sequential
// scan.
func (o *Optimizer) planJoinBase(jq *JoinQuery, infos []joinTableInfo, jts []estimate.JoinTable) *JoinPlan {
	driver := 0
	for i := 1; i < len(jts); i++ {
		if jts[i].Card < jts[driver].Card {
			driver = i
		}
	}
	dsg := JoinStagePlan{Table: driver, Operator: "tscan", EstRows: jts[driver].Card, EstIO: jts[driver].Pages}
	if info := infos[driver]; info.restrIx != nil {
		model := estimate.CostModel{TablePages: int(jts[driver].Pages), TableRows: int64(jts[driver].Rows)}
		ixCost := model.FscanCost(info.restrRIDs, info.restrIx.Tree.AvgLeafEntries(), info.restrIx.Tree.Height())
		if ixCost < dsg.EstIO {
			dsg.Operator, dsg.Index, dsg.EstIO = "iscan", info.restrIx.Name, ixCost
		}
	}
	return o.finishJoinPlan(jq, &JoinPlan{Stages: append([]JoinStagePlan{dsg},
		o.planJoinRest(jq, infos, jts, []int{driver}, dsg.EstRows)...)})
}

// finishJoinPlan folds the whole-join output feedback into the stage
// estimates and totals the plan's cost. Past runs over the same table
// set measured how far the final output cardinality missed the last
// stage's estimate; the learned correction interpolates geometrically
// across the inner stages (full correction at the last stage, none at
// the driver) so intermediate estimates drift toward observed reality
// and the mid-flight divergence checks and re-plans start from better
// numbers. Neutral (factor 1) when no feedback registry is attached or
// nothing was learned.
func (o *Optimizer) finishJoinPlan(jq *JoinQuery, plan *JoinPlan) *JoinPlan {
	if n := len(plan.Stages); n > 1 {
		if corr := o.cfg.Feedback.CardCorrection(joinFeedbackTable(jq), joinFeedbackIndex); corr != 1 {
			for i := 1; i < n; i++ {
				plan.Stages[i].EstRows *= math.Pow(corr, float64(i)/float64(n-1))
			}
		}
	}
	for _, sg := range plan.Stages {
		plan.EstIO += sg.EstIO
	}
	return plan
}

// joinOrderTable resolves the query's ORDER BY to a single FROM table
// and that table's local column positions. ok=false when the order
// spans tables (no single index scan can deliver it) or there is no
// ORDER BY.
func joinOrderTable(jq *JoinQuery) (table int, local []int, ok bool) {
	if len(jq.OrderBy) == 0 {
		return 0, nil, false
	}
	offs := jq.Offsets()
	table = -1
	for _, p := range jq.OrderBy {
		ti := len(offs) - 1
		for ti > 0 && p < offs[ti] {
			ti--
		}
		if table == -1 {
			table = ti
		} else if ti != table {
			return 0, nil, false
		}
		local = append(local, p-offs[ti])
	}
	return table, local, true
}

// orderIndex finds an index of tab whose scan order delivers the local
// column order (ascending scan for ASC, reverse scan for DESC).
func orderIndex(tab *catalog.Table, local []int) *catalog.Index {
	for _, ix := range tab.Indexes {
		if ix.DeliversOrder(local) {
			return ix
		}
	}
	return nil
}

// planDeliversOrder reports whether a plan's execution already yields
// rows in the query's ORDER BY order: the driver is an index scan of
// the order table on an order-delivering index, and every later stage
// is an order-preserving probe (inl/ridx append matches per outer row,
// keeping the driver's row order; hj and nl rebuild the intermediate in
// inner-scan order and destroy it).
func planDeliversOrder(jq *JoinQuery, plan *JoinPlan, ot int, localOrder []int) bool {
	d := plan.Stages[0]
	if d.Table != ot || d.Operator != "iscan" {
		return false
	}
	ix := jq.Tables[ot].IndexByName(d.Index)
	if ix == nil || !ix.DeliversOrder(localOrder) {
		return false
	}
	for _, sg := range plan.Stages[1:] {
		if sg.Operator != JoinOpINL && sg.Operator != JoinOpRIDX {
			return false
		}
	}
	return true
}

// planJoinOrdered builds the order-preserving alternative: the order
// table drives via the order-delivering index (its restriction range
// when that index also bounds the local restriction, else a full
// index-order scan with the restriction applied per fetched row), and
// every remaining table joins by an order-preserving probe. Returns nil
// when some table has no probe index — the order cannot survive.
func (o *Optimizer) planJoinOrdered(jq *JoinQuery, infos []joinTableInfo, jts []estimate.JoinTable, ot int, oix *catalog.Index) *JoinPlan {
	info := infos[ot]
	jt := jts[ot]
	model := estimate.CostModel{TablePages: int(jt.Pages), TableRows: int64(jt.Rows)}
	dsg := JoinStagePlan{Table: ot, Operator: "iscan", Index: oix.Name, EstRows: jt.Card}
	if info.restrIx != nil && info.restrIx.Name == oix.Name {
		dsg.EstIO = model.FscanCost(info.restrRIDs, oix.Tree.AvgLeafEntries(), oix.Tree.Height())
	} else {
		dsg.EstIO = model.FscanCost(jt.Rows, oix.Tree.AvgLeafEntries(), oix.Tree.Height())
	}
	rest := estimate.GreedyJoinRest(jts, joinEdges(jq), []int{ot}, dsg.EstRows)
	in := make([]bool, len(jq.Tables))
	in[ot] = true
	inSet := func(t int) bool { return in[t] }
	stages := make([]JoinStagePlan, 0, len(rest)+1)
	stages = append(stages, dsg)
	cur := dsg.EstRows
	for _, r := range rest {
		sg, ok := chooseProbeOp(jq, infos, jts, r.Table, inSet, cur, r.OutRows)
		if !ok {
			return nil
		}
		stages = append(stages, sg)
		in[r.Table] = true
		cur = r.OutRows
	}
	return o.finishJoinPlan(jq, &JoinPlan{Stages: stages})
}

// joinFeedbackIndex is the synthetic index slot the whole-join output
// observation lives under, distinguishing it from per-stage slots.
const joinFeedbackIndex = "(output)"

// joinFeedbackHJ is the synthetic index slot hj stage observations live
// under. An hj stage's actual is join-output rows; recording it under
// the build index's real name would skew that index's restriction
// corrections with numbers from a different population.
const joinFeedbackHJ = "(hj)"

// joinFeedbackTable is the synthetic feedback key for a join's table
// set: the declaration-order table names, so repeated joins of the
// same FROM list share one correction regardless of chosen order.
func joinFeedbackTable(jq *JoinQuery) string {
	names := make([]string, len(jq.Tables))
	for i, t := range jq.Tables {
		names[i] = t.Name
	}
	return "join(" + strings.Join(names, ",") + ")"
}
