// Package workload generates the synthetic tables and query streams the
// experiments run on: uniform and Zipf-skewed column distributions,
// sequential (clustered) keys, correlated column pairs, and padding to
// control rows-per-page. The paper's phenomena — data skew, unknown
// correlation, clustering uncertainty — are all induced here under
// deterministic seeds.
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"rdbdyn/internal/catalog"
	"rdbdyn/internal/expr"
)

// Generator produces one column value per row. It may inspect the
// values generated so far for the same row (earlier columns), which is
// how correlated columns are built.
type Generator interface {
	Next(rng *rand.Rand, row expr.Row) expr.Value
	// Type returns the value type the generator produces.
	Type() expr.Type
}

// Seq yields 0, 1, 2, ... — a clustered unique key when rows are
// inserted in generation order.
type Seq struct{ n int64 }

// Next implements Generator.
func (s *Seq) Next(*rand.Rand, expr.Row) expr.Value {
	v := expr.Int(s.n)
	s.n++
	return v
}

// Type implements Generator.
func (s *Seq) Type() expr.Type { return expr.TypeInt }

// Uniform yields integers uniform in [Lo, Hi).
type Uniform struct{ Lo, Hi int64 }

// Next implements Generator.
func (u Uniform) Next(rng *rand.Rand, _ expr.Row) expr.Value {
	return expr.Int(u.Lo + rng.Int63n(u.Hi-u.Lo))
}

// Type implements Generator.
func (u Uniform) Type() expr.Type { return expr.TypeInt }

// Zipf yields integers in [0, N) with Zipf(S, V) skew: value 0 is the
// hottest. The paper cites [Zipf49] as the shape intermediate
// selectivity distributions converge to.
type Zipf struct {
	S, V float64
	N    uint64
	z    *rand.Zipf
	rng  *rand.Rand
}

// Next implements Generator.
func (z *Zipf) Next(rng *rand.Rand, _ expr.Row) expr.Value {
	if z.z == nil || z.rng != rng {
		s, v := z.S, z.V
		if s <= 1 {
			s = 1.2
		}
		if v < 1 {
			v = 1
		}
		z.z = rand.NewZipf(rng, s, v, z.N-1)
		z.rng = rng
	}
	return expr.Int(int64(z.z.Uint64()))
}

// Type implements Generator.
func (z *Zipf) Type() expr.Type { return expr.TypeInt }

// UniformFloat yields floats uniform in [Lo, Hi).
type UniformFloat struct{ Lo, Hi float64 }

// Next implements Generator.
func (u UniformFloat) Next(rng *rand.Rand, _ expr.Row) expr.Value {
	return expr.Float(u.Lo + rng.Float64()*(u.Hi-u.Lo))
}

// Type implements Generator.
func (u UniformFloat) Type() expr.Type { return expr.TypeFloat }

// Pad yields a fixed-length string, controlling record width (and thus
// rows per page / table pages).
type Pad struct{ Len int }

// Next implements Generator.
func (p Pad) Next(*rand.Rand, expr.Row) expr.Value {
	return expr.Str(strings.Repeat("x", p.Len))
}

// Type implements Generator.
func (p Pad) Type() expr.Type { return expr.TypeString }

// StringPool yields strings drawn uniformly from a pool of N distinct
// values ("name-0007").
type StringPool struct {
	Prefix string
	N      int
}

// Next implements Generator.
func (s StringPool) Next(rng *rand.Rand, _ expr.Row) expr.Value {
	return expr.Str(fmt.Sprintf("%s%04d", s.Prefix, rng.Intn(s.N)))
}

// Type implements Generator.
func (s StringPool) Type() expr.Type { return expr.TypeString }

// Correlated yields Source-column value plus uniform noise in
// [-Noise, +Noise] — a knob for the between-column correlation that
// defeats independence assumptions (Section 2).
type Correlated struct {
	Source int
	Noise  int64
}

// Next implements Generator.
func (c Correlated) Next(rng *rand.Rand, row expr.Row) expr.Value {
	base := row[c.Source].I
	if c.Noise == 0 {
		return expr.Int(base)
	}
	return expr.Int(base + rng.Int63n(2*c.Noise+1) - c.Noise)
}

// Type implements Generator.
func (c Correlated) Type() expr.Type { return expr.TypeInt }

// ColumnSpec names one generated column.
type ColumnSpec struct {
	Name string
	Gen  Generator
}

// TableSpec describes a synthetic table.
type TableSpec struct {
	Name    string
	Rows    int
	Columns []ColumnSpec
	// Indexes lists indexes to create after loading, each a list of
	// column names.
	Indexes [][]string
	// Shuffle randomizes insertion order, destroying the clustering of
	// Seq columns.
	Shuffle bool
	Seed    int64
}

// Build creates and loads the table described by spec.
func Build(cat *catalog.Catalog, spec TableSpec) (*catalog.Table, error) {
	if spec.Rows < 0 {
		return nil, fmt.Errorf("workload: negative row count")
	}
	cols := make([]catalog.Column, len(spec.Columns))
	for i, c := range spec.Columns {
		cols[i] = catalog.Column{Name: c.Name, Type: c.Gen.Type()}
	}
	tab, err := cat.CreateTable(spec.Name, cols)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed + 1))
	rows := make([]expr.Row, spec.Rows)
	for i := range rows {
		row := make(expr.Row, len(spec.Columns))
		for j, c := range spec.Columns {
			row[j] = c.Gen.Next(rng, row)
		}
		rows[i] = row
	}
	if spec.Shuffle {
		rng.Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })
	}
	for _, row := range rows {
		if _, err := tab.Insert(row); err != nil {
			return nil, err
		}
	}
	for i, ixCols := range spec.Indexes {
		name := fmt.Sprintf("%s_IX%d_%s", spec.Name, i, strings.Join(ixCols, "_"))
		if _, err := tab.CreateIndex(name, ixCols...); err != nil {
			return nil, err
		}
	}
	return tab, nil
}

// ParamStream draws host-variable values for repeated executions of a
// prepared query: each call returns the next binding set.
type ParamStream struct {
	rng  *rand.Rand
	name string
	gen  Generator
}

// NewParamStream creates a stream binding the named parameter from gen.
func NewParamStream(seed int64, name string, gen Generator) *ParamStream {
	return &ParamStream{rng: rand.New(rand.NewSource(seed)), name: name, gen: gen}
}

// Next returns the next binding set.
func (p *ParamStream) Next() expr.Bindings {
	return expr.Bindings{p.name: p.gen.Next(p.rng, nil)}
}
