package workload

import (
	"math/rand"
	"testing"

	"rdbdyn/internal/catalog"
	"rdbdyn/internal/expr"
	"rdbdyn/internal/storage"
)

func newCat() *catalog.Catalog {
	return catalog.New(storage.NewBufferPool(storage.NewDisk(4096), 0))
}

func TestBuildCreatesTableAndIndexes(t *testing.T) {
	spec := TableSpec{
		Name: "T",
		Rows: 1000,
		Columns: []ColumnSpec{
			{Name: "ID", Gen: &Seq{}},
			{Name: "A", Gen: Uniform{Lo: 0, Hi: 50}},
			{Name: "Z", Gen: &Zipf{S: 1.5, V: 1, N: 100}},
			{Name: "F", Gen: UniformFloat{Lo: 0, Hi: 1}},
			{Name: "S", Gen: StringPool{Prefix: "v", N: 10}},
			{Name: "P", Gen: Pad{Len: 30}},
		},
		Indexes: [][]string{{"ID"}, {"A"}, {"Z", "A"}},
		Seed:    7,
	}
	tab, err := Build(newCat(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Cardinality() != 1000 {
		t.Fatalf("rows = %d", tab.Cardinality())
	}
	if len(tab.Indexes) != 3 {
		t.Fatalf("indexes = %d", len(tab.Indexes))
	}
	for _, ix := range tab.Indexes {
		if ix.Tree.Len() != 1000 {
			t.Fatalf("index %s has %d entries", ix.Name, ix.Tree.Len())
		}
	}
	// Column value sanity.
	row, err := tab.Fetch(mustFirstRID(t, tab))
	if err != nil {
		t.Fatal(err)
	}
	if row[0].T != expr.TypeInt || row[3].T != expr.TypeFloat || row[5].T != expr.TypeString {
		t.Fatalf("types wrong: %v", row)
	}
}

func mustFirstRID(t *testing.T, tab *catalog.Table) storage.RID {
	t.Helper()
	c := tab.Heap.Cursor()
	_, rid, ok, err := c.Next()
	if err != nil || !ok {
		t.Fatal("no rows")
	}
	return rid
}

func TestZipfIsSkewed(t *testing.T) {
	z := &Zipf{S: 1.5, V: 1, N: 1000}
	rng := rand.New(rand.NewSource(5))
	counts := map[int64]int{}
	for i := 0; i < 20000; i++ {
		counts[z.Next(rng, nil).I]++
	}
	if counts[0] < counts[100]*5 {
		t.Fatalf("Zipf not skewed: hot=%d cold=%d", counts[0], counts[100])
	}
}

func TestSeqAndShuffleControlClustering(t *testing.T) {
	mk := func(shuffle bool) float64 {
		spec := TableSpec{
			Name:    "T",
			Rows:    3000,
			Columns: []ColumnSpec{{Name: "ID", Gen: &Seq{}}, {Name: "P", Gen: Pad{Len: 40}}},
			Indexes: [][]string{{"ID"}},
			Shuffle: shuffle,
			Seed:    9,
		}
		tab, err := Build(newCat(), spec)
		if err != nil {
			t.Fatal(err)
		}
		r, err := tab.Indexes[0].EstimateClusterRatio(rand.New(rand.NewSource(1)), 200)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	if c := mk(false); c < 0.9 {
		t.Fatalf("sequential load cluster ratio %v, want ~1", c)
	}
	if c := mk(true); c > 0.5 {
		t.Fatalf("shuffled load cluster ratio %v, want low", c)
	}
}

func TestCorrelatedColumns(t *testing.T) {
	spec := TableSpec{
		Name: "T",
		Rows: 2000,
		Columns: []ColumnSpec{
			{Name: "A", Gen: Uniform{Lo: 0, Hi: 1000}},
			{Name: "B", Gen: Correlated{Source: 0, Noise: 5}},
			{Name: "C", Gen: Correlated{Source: 0, Noise: 0}},
		},
		Seed: 11,
	}
	tab, err := Build(newCat(), spec)
	if err != nil {
		t.Fatal(err)
	}
	cur := tab.Heap.Cursor()
	for {
		rec, _, ok, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		row, err := expr.DecodeRow(rec)
		if err != nil {
			t.Fatal(err)
		}
		if d := row[1].I - row[0].I; d < -5 || d > 5 {
			t.Fatalf("noise out of range: %d", d)
		}
		if row[2].I != row[0].I {
			t.Fatal("exact correlation broken")
		}
	}
}

func TestParamStream(t *testing.T) {
	ps := NewParamStream(3, "A1", Uniform{Lo: 0, Hi: 10})
	seen := map[int64]bool{}
	for i := 0; i < 100; i++ {
		b := ps.Next()
		v, ok := b["A1"]
		if !ok || v.T != expr.TypeInt {
			t.Fatalf("binding wrong: %v", b)
		}
		if v.I < 0 || v.I >= 10 {
			t.Fatalf("value out of range: %d", v.I)
		}
		seen[v.I] = true
	}
	if len(seen) < 5 {
		t.Fatalf("stream not varied: %v", seen)
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(newCat(), TableSpec{Name: "T", Rows: -1}); err == nil {
		t.Fatal("negative rows accepted")
	}
	cat := newCat()
	spec := TableSpec{Name: "T", Rows: 1, Columns: []ColumnSpec{{Name: "A", Gen: &Seq{}}}}
	if _, err := Build(cat, spec); err != nil {
		t.Fatal(err)
	}
	if _, err := Build(cat, spec); err == nil {
		t.Fatal("duplicate table accepted")
	}
}
