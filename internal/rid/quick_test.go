package rid

import (
	"testing"
	"testing/quick"

	"rdbdyn/internal/storage"
)

// ridMix turns raw fuzz words into RIDs spanning several files and
// pages, with slot distributions that exercise both sparse (array) and
// dense (bitset) chunk representations: a low bit selects between a
// narrow slot range (clusters many RIDs on one page, crossing the
// array→bitset threshold) and a wide spread.
func ridMix(words []uint32) []storage.RID {
	rids := make([]storage.RID, len(words))
	for i, w := range words {
		file := storage.FileID(w>>28) % 3
		var page, slot uint32
		if w&1 == 0 {
			// Dense mix: few pages, full 16-bit slot range.
			page = (w >> 1) % 4
			slot = (w >> 3) & 0xFFFF
		} else {
			// Sparse mix: many pages, few slots each.
			page = (w >> 1) % 4096
			slot = (w >> 13) % 8
		}
		rids[i] = storage.RID{
			Page: storage.PageID{File: file, No: storage.PageNo(page)},
			Slot: uint16(slot),
		}
	}
	return rids
}

func fromOracle(o map[storage.RID]bool) *CompressedBitmap {
	b := NewCompressedBitmap()
	for r := range o {
		b.Add(r)
	}
	return b
}

// Property: Add/MayContain/Len agree with a map-of-RIDs oracle, and
// FilterBatch matches per-RID probes, across sparse/dense slot mixes.
func TestQuickBitmapVsOracle(t *testing.T) {
	f := func(words []uint32, probeWords []uint32) bool {
		rids := ridMix(words)
		oracle := map[storage.RID]bool{}
		b := NewCompressedBitmap()
		for _, r := range rids {
			b.Add(r)
			oracle[r] = true
		}
		if b.Len() != len(oracle) {
			return false
		}
		probes := append(ridMix(probeWords), rids...)
		keep := make([]bool, len(probes))
		b.FilterBatch(probes, keep)
		for i, r := range probes {
			if b.MayContain(r) != oracle[r] || keep[i] != oracle[r] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: And/Or/AndNot match set intersection/union/difference of
// the oracles, and the results stay internally consistent (Len agrees
// with membership).
func TestQuickBitmapSetOps(t *testing.T) {
	f := func(aw, bw []uint32) bool {
		ra, rb := ridMix(aw), ridMix(bw)
		oa, ob := map[storage.RID]bool{}, map[storage.RID]bool{}
		for _, r := range ra {
			oa[r] = true
		}
		for _, r := range rb {
			ob[r] = true
		}
		ba, bb := fromOracle(oa), fromOracle(ob)

		universe := map[storage.RID]bool{}
		for r := range oa {
			universe[r] = true
		}
		for r := range ob {
			universe[r] = true
		}

		and, or, not := ba.And(bb), ba.Or(bb), ba.AndNot(bb)
		nAnd, nOr, nNot := 0, 0, 0
		for r := range universe {
			inA, inB := oa[r], ob[r]
			if and.MayContain(r) != (inA && inB) {
				return false
			}
			if or.MayContain(r) != (inA || inB) {
				return false
			}
			if not.MayContain(r) != (inA && !inB) {
				return false
			}
			if inA && inB {
				nAnd++
			}
			if inA || inB {
				nOr++
			}
			if inA && !inB {
				nNot++
			}
		}
		if and.Len() != nAnd || or.Len() != nOr || not.Len() != nNot {
			return false
		}
		// Inputs must be untouched (ops return new sets).
		if ba.Len() != len(oa) || bb.Len() != len(ob) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: FromRIDs equals incremental Add, and SortedList (the scalar
// baseline) agrees with the compressed bitmap on membership.
func TestQuickBitmapVsSortedList(t *testing.T) {
	f := func(words []uint32, probeWords []uint32) bool {
		rids := ridMix(words)
		b := FromRIDs(rids)
		inc := NewCompressedBitmap()
		for _, r := range rids {
			inc.Add(r)
		}
		if b.Len() != inc.Len() {
			return false
		}
		s := NewSortedList(rids)
		for _, r := range append(ridMix(probeWords), rids...) {
			want := s.MayContain(r)
			if b.MayContain(r) != want || inc.MayContain(r) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Container.AppendBatch is equivalent to per-RID Append — same
// Len, same All() sequence, same (now exact) filter verdicts — across
// configurations that keep the list static, graduated, or spilled.
func TestQuickContainerAppendBatch(t *testing.T) {
	f := func(words []uint32, smallCap, memBudget uint8) bool {
		rids := ridMix(words)
		cfg := Config{SmallCap: int(smallCap%30) + 1, MemBudget: int(memBudget) + 2}

		one := NewContainer(newPool(), cfg)
		for _, r := range rids {
			if err := one.Append(r); err != nil {
				return false
			}
		}
		batch := NewContainer(newPool(), cfg)
		// Split into irregular sub-batches to hit region boundaries at
		// varying offsets.
		for i := 0; i < len(rids); {
			n := 1 + (i*7)%13
			if i+n > len(rids) {
				n = len(rids) - i
			}
			if err := batch.AppendBatch(rids[i : i+n]); err != nil {
				return false
			}
			i += n
		}

		if one.Len() != batch.Len() || one.Spilled() != batch.Spilled() {
			return false
		}
		a1, err1 := one.All()
		a2, err2 := batch.All()
		if err1 != nil || err2 != nil || len(a1) != len(a2) {
			return false
		}
		for i := range a1 {
			if a1[i] != a2[i] {
				return false
			}
		}
		f1, f2 := one.Filter(), batch.Filter()
		if !f1.Exact() || !f2.Exact() {
			return false
		}
		for _, r := range rids {
			if !f1.MayContain(r) || !f2.MayContain(r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
