package rid

import (
	"math/bits"

	"rdbdyn/internal/storage"
)

// CompressedBitmap is an exact, compressed RID set: a roaring-style
// bitmap over the 64-bit RID key space (see storage.RID.Key). Keys are
// chunked by their high 48 bits — one chunk per (file, page) — and each
// chunk stores its 16-bit slot values either as a sorted array (sparse
// chunks) or a packed 8 KiB bitset (dense chunks). Unlike the hashed
// bitmap it replaces, membership answers are exact, so downstream
// consumers (loser refilter, borrow stream, final stage) never fetch a
// record that cannot match.
//
// The zero value is an empty set. Methods are not safe for concurrent
// mutation; concurrent MayContain/FilterBatch probes are safe once
// mutation has stopped.
type CompressedBitmap struct {
	keys   []uint64 // sorted chunk keys (RID.Key() >> 16)
	chunks []chunk  // parallel to keys
	n      int      // total distinct RIDs
}

const (
	// chunkSlots is the slot space of one chunk (the low 16 bits of a
	// RID key).
	chunkSlots = 1 << 16
	// bitsetWords is the length of a dense chunk's word array.
	bitsetWords = chunkSlots / 64
	// arrayMax is the array→bitset conversion threshold: past this many
	// slots the sorted array (2 bytes/slot) would outgrow a quarter of
	// the fixed 8 KiB bitset, and binary-search probes lose to O(1) bit
	// tests anyway.
	arrayMax = 4096
)

// chunk holds the slots of one (file, page). Exactly one of arr/bits is
// in use: arr while sparse, bits once the chunk holds > arrayMax slots.
type chunk struct {
	arr  []uint16 // sorted, distinct; nil when dense
	bits []uint64 // bitsetWords words; nil while sparse
	card int      // set bits when dense (arr carries its own length)
}

// NewCompressedBitmap returns an empty set.
func NewCompressedBitmap() *CompressedBitmap { return &CompressedBitmap{} }

// FromRIDs builds a compressed bitmap over rids (duplicates collapse).
// Sorted or page-clustered input — cursor output, sorted RID lists, a
// container's in-memory region — takes a bulk path that allocates each
// chunk's array exactly once; anything else falls back to Add.
func FromRIDs(rids []storage.RID) *CompressedBitmap {
	b := NewCompressedBitmap()
	i := 0
	for i < len(rids) {
		key := rids[i].Key() >> 16
		j := i + 1
		for j < len(rids) && rids[j].Key()>>16 == key {
			j++
		}
		// Bulk path: a run on a page beyond every chunk so far becomes a
		// fresh chunk with an exactly-sized array, as long as the run
		// itself stays ascending.
		if n := len(b.keys); (n == 0 || b.keys[n-1] < key) && j-i <= arrayMax {
			arr := make([]uint16, 0, j-i)
			for ; i < j; i++ {
				s := uint16(rids[i].Key())
				if m := len(arr); m > 0 && arr[m-1] >= s {
					if arr[m-1] == s {
						continue // duplicate
					}
					break // run went backwards: finish through Add
				}
				arr = append(arr, s)
			}
			b.keys = append(b.keys, key)
			b.chunks = append(b.chunks, chunk{arr: arr})
			b.n += len(arr)
		}
		for ; i < j; i++ {
			b.Add(rids[i])
		}
	}
	return b
}

// search finds the chunk index for key. ok is false when absent, in
// which case the index is the insertion point.
func (b *CompressedBitmap) search(key uint64) (int, bool) {
	// Fast path: bulk builds from (file, page)-clustered input hit the
	// last chunk repeatedly.
	if n := len(b.keys); n > 0 && b.keys[n-1] == key {
		return n - 1, true
	}
	lo, hi := 0, len(b.keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if b.keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(b.keys) && b.keys[lo] == key
}

// Add inserts r; duplicates are no-ops.
func (b *CompressedBitmap) Add(r storage.RID) {
	k := r.Key()
	key, slot := k>>16, uint16(k)
	i, ok := b.search(key)
	if !ok {
		b.keys = append(b.keys, 0)
		copy(b.keys[i+1:], b.keys[i:])
		b.keys[i] = key
		b.chunks = append(b.chunks, chunk{})
		copy(b.chunks[i+1:], b.chunks[i:])
		b.chunks[i] = chunk{}
	}
	if b.chunks[i].add(slot) {
		b.n++
	}
}

// MayContain implements Filter. It is exact: no false positives.
func (b *CompressedBitmap) MayContain(r storage.RID) bool {
	k := r.Key()
	i, ok := b.search(k >> 16)
	return ok && b.chunks[i].contains(uint16(k))
}

// Exact implements Filter.
func (b *CompressedBitmap) Exact() bool { return true }

// FilterBatch implements BatchFilter: keep[i] reports membership of
// rids[i]. Consecutive probes of the same (file, page) — the common case
// for index-scan batches and sorted final-stage lists — resolve the
// chunk once, and ascending slot probes within a sparse chunk advance a
// merge position by galloping instead of binary-searching from scratch,
// making a full sorted sweep O(card + probes) per chunk.
func (b *CompressedBitmap) FilterBatch(rids []storage.RID, keep []bool) {
	j := -1 // chunk index of the previous probe's page, -1 = unknown/absent
	var jkey uint64
	pos := 0 // merge position within the current sparse chunk
	var lastSlot uint16
	for i, r := range rids {
		k := r.Key()
		key, slot := k>>16, uint16(k)
		if j < 0 || jkey != key {
			jkey = key
			pos = 0
			lastSlot = 0
			if idx, ok := b.search(key); ok {
				j = idx
			} else {
				j = -1
			}
		}
		if j < 0 {
			keep[i] = false
			continue
		}
		c := &b.chunks[j]
		if c.bits != nil {
			keep[i] = c.bits[slot>>6]&(1<<(slot&63)) != 0
			continue
		}
		if slot < lastSlot {
			pos = 0 // probes went backwards: restart the merge
		}
		pos = searchU16From(c.arr, slot, pos)
		keep[i] = pos < len(c.arr) && c.arr[pos] == slot
		lastSlot = slot
	}
}

// Len returns the number of distinct RIDs in the set.
func (b *CompressedBitmap) Len() int { return b.n }

// SizeBytes returns the approximate memory footprint of the payload.
func (b *CompressedBitmap) SizeBytes() int {
	sz := len(b.keys) * 8
	for i := range b.chunks {
		c := &b.chunks[i]
		if c.bits != nil {
			sz += bitsetWords * 8
		} else {
			sz += len(c.arr) * 2
		}
	}
	return sz
}

// And returns the intersection of b and o as a new set.
func (b *CompressedBitmap) And(o *CompressedBitmap) *CompressedBitmap {
	out := NewCompressedBitmap()
	i, j := 0, 0
	for i < len(b.keys) && j < len(o.keys) {
		switch {
		case b.keys[i] < o.keys[j]:
			i++
		case b.keys[i] > o.keys[j]:
			j++
		default:
			out.push(b.keys[i], chunkAnd(&b.chunks[i], &o.chunks[j]))
			i++
			j++
		}
	}
	return out
}

// Or returns the union of b and o as a new set.
func (b *CompressedBitmap) Or(o *CompressedBitmap) *CompressedBitmap {
	out := NewCompressedBitmap()
	i, j := 0, 0
	for i < len(b.keys) || j < len(o.keys) {
		switch {
		case j >= len(o.keys) || (i < len(b.keys) && b.keys[i] < o.keys[j]):
			out.push(b.keys[i], b.chunks[i].clone())
			i++
		case i >= len(b.keys) || o.keys[j] < b.keys[i]:
			out.push(o.keys[j], o.chunks[j].clone())
			j++
		default:
			out.push(b.keys[i], chunkOr(&b.chunks[i], &o.chunks[j]))
			i++
			j++
		}
	}
	return out
}

// AndNot returns the difference b minus o as a new set.
func (b *CompressedBitmap) AndNot(o *CompressedBitmap) *CompressedBitmap {
	out := NewCompressedBitmap()
	j := 0
	for i := range b.keys {
		for j < len(o.keys) && o.keys[j] < b.keys[i] {
			j++
		}
		if j < len(o.keys) && o.keys[j] == b.keys[i] {
			out.push(b.keys[i], chunkAndNot(&b.chunks[i], &o.chunks[j]))
		} else {
			out.push(b.keys[i], b.chunks[i].clone())
		}
	}
	return out
}

// push appends a chunk produced in key order, dropping empty results.
func (b *CompressedBitmap) push(key uint64, c chunk) {
	n := c.len()
	if n == 0 {
		return
	}
	b.keys = append(b.keys, key)
	b.chunks = append(b.chunks, c)
	b.n += n
}

// chunk operations

func (c *chunk) len() int {
	if c.bits != nil {
		return c.card
	}
	return len(c.arr)
}

// add inserts slot, reporting whether it was new.
func (c *chunk) add(s uint16) bool {
	if c.bits != nil {
		w, m := int(s>>6), uint64(1)<<(s&63)
		if c.bits[w]&m != 0 {
			return false
		}
		c.bits[w] |= m
		c.card++
		return true
	}
	// Append fast path: ascending builds (cursor-order scans, sorted
	// spills) grow the tail without a search or a shift.
	if n := len(c.arr); n == 0 || c.arr[n-1] < s {
		if n >= arrayMax {
			c.toBits()
			return c.add(s)
		}
		if c.arr == nil {
			c.arr = make([]uint16, 0, 16)
		}
		c.arr = append(c.arr, s)
		return true
	}
	i := searchU16(c.arr, s)
	if i < len(c.arr) && c.arr[i] == s {
		return false
	}
	if len(c.arr) >= arrayMax {
		c.toBits()
		return c.add(s)
	}
	c.arr = append(c.arr, 0)
	copy(c.arr[i+1:], c.arr[i:])
	c.arr[i] = s
	return true
}

func (c *chunk) contains(s uint16) bool {
	if c.bits != nil {
		return c.bits[s>>6]&(1<<(s&63)) != 0
	}
	i := searchU16(c.arr, s)
	return i < len(c.arr) && c.arr[i] == s
}

// toBits converts a sparse chunk to the dense form.
func (c *chunk) toBits() {
	w := make([]uint64, bitsetWords)
	for _, s := range c.arr {
		w[s>>6] |= 1 << (s & 63)
	}
	c.bits, c.card, c.arr = w, len(c.arr), nil
}

// toArr converts a dense chunk back to the sparse form. Caller
// guarantees card <= arrayMax.
func (c *chunk) toArr() {
	arr := make([]uint16, 0, c.card)
	for w, word := range c.bits {
		for word != 0 {
			arr = append(arr, uint16(w<<6+bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	c.arr, c.bits, c.card = arr, nil, 0
}

// clone deep-copies the chunk so set-operation results never alias
// their operands.
func (c *chunk) clone() chunk {
	out := chunk{card: c.card}
	if c.bits != nil {
		out.bits = append([]uint64(nil), c.bits...)
	} else {
		out.arr = append([]uint16(nil), c.arr...)
	}
	return out
}

// normalize converts a dense result back to sparse when it shrank below
// the threshold, keeping probe cost and footprint proportional to
// cardinality.
func (c *chunk) normalize() chunk {
	if c.bits != nil && c.card <= arrayMax {
		c.toArr()
	}
	return *c
}

func chunkAnd(a, b *chunk) chunk {
	switch {
	case a.bits != nil && b.bits != nil:
		out := chunk{bits: make([]uint64, bitsetWords)}
		for i := range out.bits {
			w := a.bits[i] & b.bits[i]
			out.bits[i] = w
			out.card += bits.OnesCount64(w)
		}
		return out.normalize()
	case a.bits != nil: // b sparse
		return chunkAnd(b, a)
	case b.bits != nil: // a sparse, b dense: keep a's slots present in b
		out := chunk{arr: make([]uint16, 0, len(a.arr))}
		for _, s := range a.arr {
			if b.contains(s) {
				out.arr = append(out.arr, s)
			}
		}
		return out
	default: // both sparse: merge-intersect
		out := chunk{}
		i, j := 0, 0
		for i < len(a.arr) && j < len(b.arr) {
			switch {
			case a.arr[i] < b.arr[j]:
				i++
			case a.arr[i] > b.arr[j]:
				j++
			default:
				out.arr = append(out.arr, a.arr[i])
				i++
				j++
			}
		}
		return out
	}
}

func chunkOr(a, b *chunk) chunk {
	switch {
	case a.bits != nil && b.bits != nil:
		out := chunk{bits: make([]uint64, bitsetWords)}
		for i := range out.bits {
			w := a.bits[i] | b.bits[i]
			out.bits[i] = w
			out.card += bits.OnesCount64(w)
		}
		return out
	case a.bits == nil && b.bits != nil:
		return chunkOr(b, a)
	case a.bits != nil: // a dense, b sparse: copy a, set b's slots
		out := a.clone()
		for _, s := range b.arr {
			w, m := int(s>>6), uint64(1)<<(s&63)
			if out.bits[w]&m == 0 {
				out.bits[w] |= m
				out.card++
			}
		}
		return out
	default: // both sparse: merge-union
		out := chunk{arr: make([]uint16, 0, len(a.arr)+len(b.arr))}
		i, j := 0, 0
		for i < len(a.arr) || j < len(b.arr) {
			switch {
			case j >= len(b.arr) || (i < len(a.arr) && a.arr[i] < b.arr[j]):
				out.arr = append(out.arr, a.arr[i])
				i++
			case i >= len(a.arr) || b.arr[j] < a.arr[i]:
				out.arr = append(out.arr, b.arr[j])
				j++
			default:
				out.arr = append(out.arr, a.arr[i])
				i++
				j++
			}
		}
		if len(out.arr) > arrayMax {
			out.toBits()
		}
		return out
	}
}

func chunkAndNot(a, b *chunk) chunk {
	switch {
	case a.bits == nil: // sparse minus anything: filter
		out := chunk{arr: make([]uint16, 0, len(a.arr))}
		for _, s := range a.arr {
			if !b.contains(s) {
				out.arr = append(out.arr, s)
			}
		}
		return out
	case b.bits != nil: // dense minus dense
		out := chunk{bits: make([]uint64, bitsetWords)}
		for i := range out.bits {
			w := a.bits[i] &^ b.bits[i]
			out.bits[i] = w
			out.card += bits.OnesCount64(w)
		}
		return out.normalize()
	default: // dense minus sparse: copy a, clear b's slots
		out := a.clone()
		for _, s := range b.arr {
			w, m := int(s>>6), uint64(1)<<(s&63)
			if out.bits[w]&m != 0 {
				out.bits[w] &^= m
				out.card--
			}
		}
		return out.normalize()
	}
}

// searchU16 returns the first index with arr[i] >= s.
func searchU16(arr []uint16, s uint16) int {
	lo, hi := 0, len(arr)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if arr[mid] < s {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// searchU16From is searchU16 restricted to arr[from:], galloping forward
// before the binary search so an ascending probe sequence pays amortized
// O(1) per probe while an isolated far probe stays O(log n).
func searchU16From(arr []uint16, s uint16, from int) int {
	n := len(arr)
	if from >= n || arr[from] >= s {
		return from
	}
	lo, step := from, 1
	hi := from + step
	for hi < n && arr[hi] < s {
		lo = hi
		step <<= 1
		hi = from + step
	}
	if hi > n {
		hi = n
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if arr[mid] < s {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
