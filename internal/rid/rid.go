// Package rid implements the RID-list machinery of the paper's joint
// scan (Section 6): sorted in-memory RID lists, hashed bitmaps [Babb79],
// temporary-table spill, and the "hybrid" container that exploits the
// L-shaped distribution of RID-list sizes:
//
//	zero RIDs          -> immediate shortcut (caller observes Len()==0)
//	up to SmallCap     -> statically-sized buffer, no allocation
//	up to MemBudget    -> allocated in-memory buffer
//	beyond             -> temporary table on disk + in-memory bitmap
//
// The paper: "Despite its simplicity, this 'hybrid' scan arrangement is
// quite advantageous due to the underlying L-shaped distribution."
package rid

import (
	"encoding/binary"
	"errors"
	"sort"

	"rdbdyn/internal/storage"
)

// ErrDiscarded is returned when a discarded container is used.
var ErrDiscarded = errors.New("rid: container discarded")

// ErrFilterOnly is returned by All on a filter-only container that
// overflowed its memory budget: only the bitmap remains.
var ErrFilterOnly = errors.New("rid: container is filter-only")

// Filter answers approximate membership questions during RID-list
// intersection. Exact filters (sorted lists) never err; hashed bitmaps
// may report false positives, which the final restriction re-evaluation
// absorbs.
type Filter interface {
	// MayContain reports whether r may be in the underlying set.
	MayContain(r storage.RID) bool
	// Exact reports whether MayContain is free of false positives.
	Exact() bool
}

// TrueFilter passes everything; it stands for "no previous filter" in
// the first Jscan stage.
type TrueFilter struct{}

// MayContain implements Filter.
func (TrueFilter) MayContain(storage.RID) bool { return true }

// Exact implements Filter.
func (TrueFilter) Exact() bool { return false }

// SortedList is an exact filter over a sorted RID slice.
type SortedList struct {
	rids []storage.RID
}

// NewSortedList copies and sorts rids.
func NewSortedList(rids []storage.RID) *SortedList {
	s := &SortedList{rids: append([]storage.RID(nil), rids...)}
	sort.Slice(s.rids, func(i, j int) bool { return s.rids[i].Less(s.rids[j]) })
	return s
}

// Len returns the number of RIDs.
func (s *SortedList) Len() int { return len(s.rids) }

// MayContain implements Filter by binary search.
func (s *SortedList) MayContain(r storage.RID) bool {
	i := sort.Search(len(s.rids), func(i int) bool { return !s.rids[i].Less(r) })
	return i < len(s.rids) && s.rids[i] == r
}

// Exact implements Filter.
func (s *SortedList) Exact() bool { return true }

// Bitmap is a single-hash bitmap over RID keys, the hashed in-memory
// bitmap of [Babb79]. It may report false positives but never false
// negatives.
type Bitmap struct {
	bits []uint64
	m    uint64
	n    int
}

// NewBitmap sizes a bitmap for roughly expected entries, using about 8
// bits per expected entry (keeps the false-positive rate near 12% for a
// single hash, cheap enough for a pre-fetch filter).
func NewBitmap(expected int) *Bitmap {
	m := uint64(expected) * 8
	if m < 1024 {
		m = 1024
	}
	return &Bitmap{bits: make([]uint64, (m+63)/64), m: m}
}

// hash mixes the RID key (fibonacci hashing).
func (b *Bitmap) hash(r storage.RID) uint64 {
	return (r.Key() * 0x9E3779B97F4A7C15) % b.m
}

// Add inserts r.
func (b *Bitmap) Add(r storage.RID) {
	h := b.hash(r)
	b.bits[h/64] |= 1 << (h % 64)
	b.n++
}

// MayContain implements Filter.
func (b *Bitmap) MayContain(r storage.RID) bool {
	h := b.hash(r)
	return b.bits[h/64]&(1<<(h%64)) != 0
}

// Exact implements Filter.
func (b *Bitmap) Exact() bool { return false }

// SizeBytes returns the bitmap's memory footprint.
func (b *Bitmap) SizeBytes() int { return len(b.bits) * 8 }

// tempTable spills RIDs to disk pages through the buffer pool, so the
// spill and the read-back are charged as I/O like any other page
// traffic.
type tempTable struct {
	heap *storage.HeapFile
	pool *storage.BufferPool
	tr   *storage.Tracker // charged for spill writes and read-back
}

const ridRecBytes = 10 // file(4) + page(4) + slot(2)

func newTempTable(pool *storage.BufferPool, tr *storage.Tracker) *tempTable {
	return &tempTable{heap: storage.NewHeapFile(pool), pool: pool, tr: tr}
}

func (t *tempTable) append(r storage.RID) error {
	var rec [ridRecBytes]byte
	binary.BigEndian.PutUint32(rec[0:4], uint32(r.Page.File))
	binary.BigEndian.PutUint32(rec[4:8], uint32(r.Page.No))
	binary.BigEndian.PutUint16(rec[8:10], r.Slot)
	_, err := t.heap.InsertTracked(rec[:], t.tr)
	return err
}

// readAll streams every spilled RID back, charging page reads as the
// pages are revisited.
func (t *tempTable) readAll(visit func(storage.RID) error) error {
	c := t.heap.CursorTracked(t.tr)
	for {
		rec, _, ok, err := c.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if len(rec) != ridRecBytes {
			return errors.New("rid: corrupt temp-table record")
		}
		r := storage.RID{
			Page: storage.PageID{
				File: storage.FileID(binary.BigEndian.Uint32(rec[0:4])),
				No:   storage.PageNo(binary.BigEndian.Uint32(rec[4:8])),
			},
			Slot: binary.BigEndian.Uint16(rec[8:10]),
		}
		if err := visit(r); err != nil {
			return err
		}
	}
}

func (t *tempTable) drop() {
	t.pool.Disk().DropFile(t.heap.File())
}
