// Package rid implements the RID-list machinery of the paper's joint
// scan (Section 6): sorted in-memory RID lists, compressed exact bitmaps
// (a modern replacement for the hashed bitmap of [Babb79]),
// temporary-table spill, and the "hybrid" container that exploits the
// L-shaped distribution of RID-list sizes:
//
//	zero RIDs          -> immediate shortcut (caller observes Len()==0)
//	up to SmallCap     -> statically-sized buffer, no allocation
//	up to MemBudget    -> allocated in-memory buffer
//	beyond             -> temporary table on disk + in-memory bitmap
//
// The paper: "Despite its simplicity, this 'hybrid' scan arrangement is
// quite advantageous due to the underlying L-shaped distribution."
package rid

import (
	"encoding/binary"
	"errors"
	"sort"

	"rdbdyn/internal/storage"
)

// ErrDiscarded is returned when a discarded container is used.
var ErrDiscarded = errors.New("rid: container discarded")

// ErrFilterOnly is returned by All on a filter-only container that
// overflowed its memory budget: only the bitmap remains.
var ErrFilterOnly = errors.New("rid: container is filter-only")

// Filter answers membership questions during RID-list intersection.
// Every concrete filter here is exact (sorted lists and compressed
// bitmaps have no false positives); the interface still allows
// approximate implementations, which the final restriction re-evaluation
// would absorb.
type Filter interface {
	// MayContain reports whether r may be in the underlying set.
	MayContain(r storage.RID) bool
	// Exact reports whether MayContain is free of false positives.
	Exact() bool
}

// BatchFilter is a Filter with a bulk probe. Batched scans prefer it:
// one call amortizes the per-probe dispatch and lets the filter exploit
// page-clustered probe order.
type BatchFilter interface {
	Filter
	// FilterBatch sets keep[i] to MayContain(rids[i]). len(keep) must
	// be >= len(rids).
	FilterBatch(rids []storage.RID, keep []bool)
}

// ApplyFilter bulk-evaluates f over rids into keep, using the filter's
// batch path when it has one.
func ApplyFilter(f Filter, rids []storage.RID, keep []bool) {
	if bf, ok := f.(BatchFilter); ok {
		bf.FilterBatch(rids, keep)
		return
	}
	for i, r := range rids {
		keep[i] = f.MayContain(r)
	}
}

// TrueFilter passes everything; it stands for "no previous filter" in
// the first Jscan stage.
type TrueFilter struct{}

// MayContain implements Filter.
func (TrueFilter) MayContain(storage.RID) bool { return true }

// Exact implements Filter.
func (TrueFilter) Exact() bool { return false }

// FilterBatch implements BatchFilter.
func (TrueFilter) FilterBatch(rids []storage.RID, keep []bool) {
	for i := range rids {
		keep[i] = true
	}
}

// SortedList is an exact filter over a sorted RID slice. It survives as
// the scalar baseline the compressed bitmap is benchmarked against (and
// as a simple oracle in tests); the engine's hot paths use
// CompressedBitmap.
type SortedList struct {
	rids []storage.RID
}

// NewSortedList copies and sorts rids.
func NewSortedList(rids []storage.RID) *SortedList {
	s := &SortedList{rids: append([]storage.RID(nil), rids...)}
	sort.Slice(s.rids, func(i, j int) bool { return s.rids[i].Less(s.rids[j]) })
	return s
}

// Len returns the number of RIDs.
func (s *SortedList) Len() int { return len(s.rids) }

// MayContain implements Filter by binary search.
func (s *SortedList) MayContain(r storage.RID) bool {
	i := sort.Search(len(s.rids), func(i int) bool { return !s.rids[i].Less(r) })
	return i < len(s.rids) && s.rids[i] == r
}

// Exact implements Filter.
func (s *SortedList) Exact() bool { return true }

// tempTable spills RIDs to disk pages through the buffer pool, so the
// spill and the read-back are charged as I/O like any other page
// traffic.
type tempTable struct {
	heap *storage.HeapFile
	pool *storage.BufferPool
	tr   *storage.Tracker // charged for spill writes and read-back

	// Reusable appendBatch scratch: an encode arena, the record-slice
	// view over it, and the RID output buffer.
	enc    []byte
	recs   [][]byte
	ridBuf []storage.RID
}

const ridRecBytes = 10 // file(4) + page(4) + slot(2)

func newTempTable(pool *storage.BufferPool, tr *storage.Tracker) *tempTable {
	return &tempTable{heap: storage.NewHeapFile(pool), pool: pool, tr: tr}
}

func encodeRID(rec []byte, r storage.RID) {
	binary.BigEndian.PutUint32(rec[0:4], uint32(r.Page.File))
	binary.BigEndian.PutUint32(rec[4:8], uint32(r.Page.No))
	binary.BigEndian.PutUint16(rec[8:10], r.Slot)
}

func (t *tempTable) append(r storage.RID) error {
	var rec [ridRecBytes]byte
	encodeRID(rec[:], r)
	_, err := t.heap.InsertTracked(rec[:], t.tr)
	return err
}

// appendBatch spills a run of RIDs, coalescing the per-record probes of
// the active heap page into one (the I/O charges stay identical to a
// per-record append loop — see HeapFile.InsertBatchTracked). It returns
// how many RIDs were written, which on error is fewer than len(rids).
func (t *tempTable) appendBatch(rids []storage.RID) (int, error) {
	need := len(rids) * ridRecBytes
	if cap(t.enc) < need {
		t.enc = make([]byte, need)
	}
	enc := t.enc[:need]
	if cap(t.recs) < len(rids) {
		t.recs = make([][]byte, len(rids))
	}
	recs := t.recs[:len(rids)]
	for i, r := range rids {
		rec := enc[i*ridRecBytes : (i+1)*ridRecBytes]
		encodeRID(rec, r)
		recs[i] = rec
	}
	out, err := t.heap.InsertBatchTracked(recs, t.tr, t.ridBuf[:0])
	t.ridBuf = out[:0]
	return len(out), err
}

// readAll streams every spilled RID back, charging page reads as the
// pages are revisited.
func (t *tempTable) readAll(visit func(storage.RID) error) error {
	c := t.heap.CursorTracked(t.tr)
	for {
		rec, _, ok, err := c.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if len(rec) != ridRecBytes {
			return errors.New("rid: corrupt temp-table record")
		}
		r := storage.RID{
			Page: storage.PageID{
				File: storage.FileID(binary.BigEndian.Uint32(rec[0:4])),
				No:   storage.PageNo(binary.BigEndian.Uint32(rec[4:8])),
			},
			Slot: binary.BigEndian.Uint16(rec[8:10]),
		}
		if err := visit(r); err != nil {
			return err
		}
	}
}

func (t *tempTable) drop() {
	t.pool.Disk().DropFile(t.heap.File())
}
