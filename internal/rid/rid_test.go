package rid

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rdbdyn/internal/storage"
)

func ridN(i int) storage.RID {
	return storage.RID{Page: storage.PageID{File: 1, No: storage.PageNo(i / 100)}, Slot: uint16(i % 100)}
}

func newPool() *storage.BufferPool {
	return storage.NewBufferPool(storage.NewDisk(1024), 0)
}

func TestSortedListMembership(t *testing.T) {
	var rids []storage.RID
	for i := 0; i < 100; i += 2 {
		rids = append(rids, ridN(i))
	}
	// Shuffle to prove NewSortedList sorts.
	rand.New(rand.NewSource(1)).Shuffle(len(rids), func(i, j int) { rids[i], rids[j] = rids[j], rids[i] })
	s := NewSortedList(rids)
	if !s.Exact() {
		t.Fatal("sorted list must be exact")
	}
	for i := 0; i < 100; i++ {
		want := i%2 == 0
		if got := s.MayContain(ridN(i)); got != want {
			t.Fatalf("MayContain(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestCompressedBitmapExactMembership(t *testing.T) {
	b := NewCompressedBitmap()
	if !b.Exact() {
		t.Fatal("compressed bitmap must be exact")
	}
	for i := 0; i < 1000; i++ {
		b.Add(ridN(i * 3))
	}
	if b.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", b.Len())
	}
	for i := 0; i < 3000; i++ {
		want := i%3 == 0
		if got := b.MayContain(ridN(i)); got != want {
			t.Fatalf("MayContain(%d) = %v, want %v", i, got, want)
		}
	}
	// Far-away probes: no false positives, ever.
	for i := 0; i < 10000; i++ {
		if b.MayContain(ridN(100000 + i)) {
			t.Fatalf("false positive at %d", 100000+i)
		}
	}
}

func TestCompressedBitmapFilterBatch(t *testing.T) {
	b := NewCompressedBitmap()
	for i := 0; i < 500; i++ {
		b.Add(ridN(i * 2))
	}
	rids := make([]storage.RID, 1000)
	for i := range rids {
		rids[i] = ridN(i)
	}
	keep := make([]bool, len(rids))
	b.FilterBatch(rids, keep)
	for i, k := range keep {
		if want := i%2 == 0; k != want {
			t.Fatalf("FilterBatch[%d] = %v, want %v", i, k, want)
		}
	}
}

func TestCompressedBitmapDenseChunk(t *testing.T) {
	// Fill one page's chunk past the array threshold so it converts to
	// a packed bitset, then delete nothing and probe everything.
	b := NewCompressedBitmap()
	pg := storage.PageID{File: 2, No: 7}
	for s := 0; s < 5000; s++ {
		b.Add(storage.RID{Page: pg, Slot: uint16(s)})
	}
	if b.Len() != 5000 {
		t.Fatalf("Len = %d, want 5000", b.Len())
	}
	for s := 0; s < 6000; s++ {
		want := s < 5000
		if got := b.MayContain(storage.RID{Page: pg, Slot: uint16(s)}); got != want {
			t.Fatalf("dense MayContain(%d) = %v, want %v", s, got, want)
		}
	}
	// Duplicate adds must not inflate cardinality.
	b.Add(storage.RID{Page: pg, Slot: 42})
	if b.Len() != 5000 {
		t.Fatalf("Len after dup add = %d, want 5000", b.Len())
	}
}

func TestTrueFilter(t *testing.T) {
	var f Filter = TrueFilter{}
	if !f.MayContain(ridN(5)) || f.Exact() {
		t.Fatal("TrueFilter misbehaves")
	}
}

func TestContainerStaticRegion(t *testing.T) {
	c := NewContainer(newPool(), DefaultConfig())
	for i := 0; i < 20; i++ {
		if err := c.Append(ridN(i)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Allocated() || c.Spilled() {
		t.Fatal("20 RIDs must stay in the static region")
	}
	all, err := c.All()
	if err != nil || len(all) != 20 {
		t.Fatalf("All: %d, %v", len(all), err)
	}
	for i, r := range all {
		if r != ridN(i) {
			t.Fatalf("order broken at %d", i)
		}
	}
}

func TestContainerGraduatesToAllocated(t *testing.T) {
	c := NewContainer(newPool(), Config{SmallCap: 20, MemBudget: 100})
	for i := 0; i < 50; i++ {
		if err := c.Append(ridN(i)); err != nil {
			t.Fatal(err)
		}
	}
	if !c.Allocated() || c.Spilled() {
		t.Fatalf("50 RIDs: allocated=%v spilled=%v", c.Allocated(), c.Spilled())
	}
	f := c.Filter()
	if !f.Exact() {
		t.Fatal("in-memory filter must be exact")
	}
	if !f.MayContain(ridN(7)) || f.MayContain(ridN(99)) {
		t.Fatal("filter membership wrong")
	}
}

func TestContainerSpillsAndReadsBack(t *testing.T) {
	pool := newPool()
	c := NewContainer(pool, Config{SmallCap: 20, MemBudget: 100})
	const total = 1000
	for i := 0; i < total; i++ {
		if err := c.Append(ridN(i)); err != nil {
			t.Fatal(err)
		}
	}
	if !c.Spilled() {
		t.Fatal("1000 RIDs over budget 100 must spill")
	}
	if c.MemRIDs() != 100 {
		t.Fatalf("in-memory RIDs = %d, want 100", c.MemRIDs())
	}
	f := c.Filter()
	if !f.Exact() {
		t.Fatal("spilled filter must stay exact (compressed bitmap)")
	}
	for i := 0; i < total; i++ {
		if !f.MayContain(ridN(i)) {
			t.Fatalf("bitmap false negative at %d", i)
		}
	}
	for i := total; i < 2*total; i++ {
		if f.MayContain(ridN(i)) {
			t.Fatalf("bitmap false positive at %d", i)
		}
	}
	all, err := c.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != total {
		t.Fatalf("All returned %d, want %d", len(all), total)
	}
	seen := map[storage.RID]bool{}
	for _, r := range all {
		seen[r] = true
	}
	if len(seen) != total {
		t.Fatalf("distinct RIDs = %d, want %d", len(seen), total)
	}
}

func TestContainerSortedAll(t *testing.T) {
	c := NewContainer(newPool(), Config{SmallCap: 4, MemBudget: 8})
	idx := []int{50, 3, 99, 1, 77, 20, 65, 4, 88, 2, 31, 9}
	for _, i := range idx {
		if err := c.Append(ridN(i)); err != nil {
			t.Fatal(err)
		}
	}
	sorted, err := c.SortedAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(sorted) != len(idx) {
		t.Fatalf("len = %d", len(sorted))
	}
	for i := 1; i < len(sorted); i++ {
		if !sorted[i-1].Less(sorted[i]) {
			t.Fatalf("not sorted at %d", i)
		}
	}
}

func TestContainerDiscard(t *testing.T) {
	pool := newPool()
	c := NewContainer(pool, Config{SmallCap: 2, MemBudget: 4})
	for i := 0; i < 100; i++ {
		c.Append(ridN(i))
	}
	if !c.Spilled() {
		t.Fatal("expected spill")
	}
	c.Discard()
	if err := c.Append(ridN(0)); err != ErrDiscarded {
		t.Fatalf("append after discard: %v", err)
	}
	if _, err := c.All(); err != ErrDiscarded {
		t.Fatalf("All after discard: %v", err)
	}
}

func TestContainerSpillChargesIO(t *testing.T) {
	pool := storage.NewBufferPool(storage.NewDisk(1024), 4)
	c := NewContainer(pool, Config{SmallCap: 20, MemBudget: 50})
	pool.ResetStats()
	for i := 0; i < 5000; i++ {
		if err := c.Append(ridN(i)); err != nil {
			t.Fatal(err)
		}
	}
	// With a 4-frame pool, spilled pages get evicted dirty: writes > 0.
	if w := pool.Stats().Writes; w == 0 {
		t.Fatal("spill should cost write I/O under memory pressure")
	}
	before := pool.Stats().Reads
	if _, err := c.All(); err != nil {
		t.Fatal(err)
	}
	if r := pool.Stats().Reads; r == before {
		t.Fatal("read-back of spilled RIDs should cost read I/O")
	}
}

func TestContainerZeroRIDShortcut(t *testing.T) {
	c := NewContainer(newPool(), DefaultConfig())
	if c.Len() != 0 {
		t.Fatal("fresh container must be empty")
	}
	all, err := c.All()
	if err != nil || len(all) != 0 {
		t.Fatalf("All on empty: %v, %v", all, err)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.SmallCap != 20 || c.MemBudget < c.SmallCap {
		t.Fatalf("defaults wrong: %+v", c)
	}
	// SmallCap above the static array is clamped by NewContainer.
	cont := NewContainer(newPool(), Config{SmallCap: 1000, MemBudget: 2000})
	for i := 0; i < 30; i++ {
		if err := cont.Append(ridN(i)); err != nil {
			t.Fatal(err)
		}
	}
	if !cont.Allocated() {
		t.Fatal("must have graduated past the clamped static region")
	}
}

// Property: for any append sequence and configuration, All() returns
// exactly the appended sequence and the filter accepts every member.
func TestQuickContainerModel(t *testing.T) {
	f := func(idx []uint16, smallCap, memBudget uint8) bool {
		if len(idx) > 500 {
			idx = idx[:500]
		}
		cfg := Config{SmallCap: int(smallCap%30) + 1, MemBudget: int(memBudget) + 2}
		c := NewContainer(newPool(), cfg)
		want := make([]storage.RID, len(idx))
		for i, v := range idx {
			want[i] = ridN(int(v))
			if err := c.Append(want[i]); err != nil {
				return false
			}
		}
		if c.Len() != len(want) {
			return false
		}
		got, err := c.All()
		if err != nil || len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		filter := c.Filter()
		for _, r := range want {
			if !filter.MayContain(r) {
				return false
			}
		}
		// SortedAll is sorted and a permutation of want.
		sorted, err := c.SortedAll()
		if err != nil || len(sorted) != len(want) {
			return false
		}
		for i := 1; i < len(sorted); i++ {
			if sorted[i].Less(sorted[i-1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
