package rid

import (
	"testing"

	"rdbdyn/internal/storage"
)

func BenchmarkContainerAppendSmall(b *testing.B) {
	// The L-shape head: lists that never leave the static buffer.
	b.ReportAllocs()
	pool := newPool()
	for i := 0; i < b.N; i++ {
		c := NewContainer(pool, DefaultConfig())
		for j := 0; j < 10; j++ {
			if err := c.Append(ridN(j)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkContainerAppendLarge(b *testing.B) {
	pool := newPool()
	c := NewContainer(pool, DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Append(ridN(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBitmapAddAndProbe(b *testing.B) {
	bm := NewCompressedBitmap()
	for i := 0; i < 1<<16; i++ {
		bm.Add(ridN(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bm.MayContain(ridN(i))
	}
}

func BenchmarkBitmapFilterBatch(b *testing.B) {
	bm := NewCompressedBitmap()
	for i := 0; i < 1<<16; i += 2 {
		bm.Add(ridN(i))
	}
	rids := make([]storage.RID, 4096)
	for i := range rids {
		rids[i] = ridN(i)
	}
	keep := make([]bool, len(rids))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bm.FilterBatch(rids, keep)
	}
}

func BenchmarkSortedListProbe(b *testing.B) {
	rids := make([]storage.RID, 4096)
	for i := range rids {
		rids[i] = ridN(i * 2)
	}
	s := NewSortedList(rids)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.MayContain(ridN(i % 8192))
	}
}
