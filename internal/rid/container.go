package rid

import (
	"sort"

	"rdbdyn/internal/storage"
)

// Config sizes the hybrid container's regions. The zero value selects
// the paper's defaults.
type Config struct {
	// SmallCap is the statically-allocated region ("lists up to 20
	// RIDs are stored in a small statically-allocated buffer").
	SmallCap int
	// MemBudget is the maximum number of RIDs held in the allocated
	// in-memory buffer before spilling to a temporary table.
	MemBudget int
	// FilterOnly marks containers whose only useful outcome is a
	// membership filter (the sorted tactic's Jscan): instead of
	// spilling overflow RIDs to a temporary table, the container keeps
	// just the bitmap. All() is then unavailable.
	FilterOnly bool
}

// DefaultConfig mirrors the constants from the paper's Section 6.
func DefaultConfig() Config { return Config{SmallCap: 20, MemBudget: 4096} }

func (c Config) withDefaults() Config {
	if c.SmallCap <= 0 {
		c.SmallCap = 20
	}
	if c.MemBudget < c.SmallCap {
		c.MemBudget = c.SmallCap * 200
	}
	return c
}

// Container is the hybrid RID list of Section 6. RIDs are appended in
// scan order; the container transparently graduates from a static
// buffer to an allocated buffer to a temporary table with a bitmap.
type Container struct {
	cfg  Config
	pool *storage.BufferPool
	tr   *storage.Tracker // charged for spill and read-back I/O

	small     [20]storage.RID   // static region (cfg.SmallCap <= 20 uses a prefix)
	mem       []storage.RID     // allocated region; nil while in static region
	n         int               // total appended
	allocated bool              // entered the allocated region
	spill     *tempTable        // non-nil once spilled
	bitmap    *CompressedBitmap // maintained once overflowed; exact
	discarded bool
}

// NewContainer creates an empty hybrid container drawing temp-table
// pages from pool.
func NewContainer(pool *storage.BufferPool, cfg Config) *Container {
	return NewContainerTracked(pool, cfg, nil)
}

// NewContainerTracked is NewContainer charging spill writes and
// read-back page I/O to tr, so a scan's temp-table traffic is
// attributed to the scan that owns the container.
func NewContainerTracked(pool *storage.BufferPool, cfg Config, tr *storage.Tracker) *Container {
	cfg = cfg.withDefaults()
	if cfg.SmallCap > len((&Container{}).small) {
		cfg.SmallCap = len((&Container{}).small)
	}
	return &Container{cfg: cfg, pool: pool, tr: tr}
}

// Len returns the number of RIDs appended.
func (c *Container) Len() int { return c.n }

// Allocated reports whether the container outgrew the static region.
func (c *Container) Allocated() bool { return c.allocated }

// Spilled reports whether the container overflowed to a temp table.
func (c *Container) Spilled() bool { return c.spill != nil }

// Append adds a RID.
func (c *Container) Append(r storage.RID) error {
	if c.discarded {
		return ErrDiscarded
	}
	switch {
	case c.spill != nil:
		c.bitmap.Add(r)
		if err := c.spill.append(r); err != nil {
			return err
		}
	case !c.allocated && c.n < c.cfg.SmallCap:
		c.small[c.n] = r
	case c.n < c.cfg.MemBudget:
		if !c.allocated {
			c.graduate()
		}
		c.mem = append(c.mem, r)
	case c.bitmap != nil:
		// Filter-only overflow mode: the bitmap is the only record.
		c.bitmap.Add(r)
	default:
		if err := c.overflow(r); err != nil {
			return err
		}
	}
	c.n++
	return nil
}

// AppendBatch adds a run of RIDs in order. It is equivalent to calling
// Append for each — including mid-batch region graduations and the I/O
// charged for spill pages — but batches the region copies, the bitmap
// feeds, and the temp-table page probes.
func (c *Container) AppendBatch(rids []storage.RID) error {
	if c.discarded {
		return ErrDiscarded
	}
	for len(rids) > 0 {
		switch {
		case c.spill != nil:
			for _, r := range rids {
				c.bitmap.Add(r)
			}
			k, err := c.spill.appendBatch(rids)
			c.n += k
			return err
		case c.bitmap != nil:
			for _, r := range rids {
				c.bitmap.Add(r)
			}
			c.n += len(rids)
			return nil
		case !c.allocated && c.n < c.cfg.SmallCap:
			k := c.cfg.SmallCap - c.n
			if k > len(rids) {
				k = len(rids)
			}
			copy(c.small[c.n:], rids[:k])
			c.n += k
			rids = rids[k:]
		case c.n < c.cfg.MemBudget:
			if !c.allocated {
				c.graduate()
			}
			k := c.cfg.MemBudget - c.n
			if k > len(rids) {
				k = len(rids)
			}
			c.mem = append(c.mem, rids[:k]...)
			c.n += k
			rids = rids[k:]
		default:
			// Cross the overflow boundary one RID at a time; the next
			// loop iteration lands in the spill or bitmap fast path.
			if err := c.Append(rids[0]); err != nil {
				return err
			}
			rids = rids[1:]
		}
	}
	return nil
}

// graduate moves the container from the static to the allocated region.
func (c *Container) graduate() {
	capHint := c.cfg.MemBudget
	if capHint > 4*c.cfg.SmallCap {
		capHint = 4 * c.cfg.SmallCap // grow geometrically from here
	}
	c.mem = make([]storage.RID, 0, capHint)
	c.mem = append(c.mem, c.small[:c.n]...)
	c.allocated = true
}

// overflow graduates past the memory budget: existing in-memory RIDs
// feed the bitmap and stay in memory. In filter-only mode the bitmap
// alone absorbs the overflow; otherwise the overflow also goes to a
// temporary table so the list can be read back. The bitmap is exact, so
// even a filter-only container's answers carry no false positives.
func (c *Container) overflow(r storage.RID) error {
	c.bitmap = NewCompressedBitmap()
	for _, x := range c.inMemory() {
		c.bitmap.Add(x)
	}
	c.bitmap.Add(r)
	if !c.cfg.FilterOnly {
		c.spill = newTempTable(c.pool, c.tr)
		if err := c.spill.append(r); err != nil {
			return err
		}
	}
	return nil
}

// inMemory returns the in-memory portion of the list. Once the
// container overflows (to a temp table or a filter-only bitmap), n
// keeps counting while the in-memory region stays frozen, so the count
// is capped at the static region's fill.
func (c *Container) inMemory() []storage.RID {
	if c.allocated {
		return c.mem
	}
	k := c.n
	if k > c.cfg.SmallCap {
		k = c.cfg.SmallCap
	}
	return c.small[:k]
}

// Filter returns the membership filter for this container: a compressed
// bitmap built from the in-memory list, or the maintained overflow
// bitmap once the container outgrew its budget. Either way the filter
// is exact — the modern replacement for the paper's "hashed in-memory
// bitmap for temporary tables", which traded false positives for space.
func (c *Container) Filter() Filter {
	if c.bitmap != nil {
		return c.bitmap
	}
	return FromRIDs(c.inMemory())
}

// All returns every RID in append order. Reading back a spilled
// container charges page I/O for the temp-table pages.
func (c *Container) All() ([]storage.RID, error) {
	if c.discarded {
		return nil, ErrDiscarded
	}
	if c.bitmap != nil && c.spill == nil && c.n > len(c.inMemory()) {
		return nil, ErrFilterOnly
	}
	out := make([]storage.RID, 0, c.n)
	out = append(out, c.inMemory()...)
	if c.spill != nil {
		err := c.spill.readAll(func(r storage.RID) error {
			out = append(out, r)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SortedAll returns every RID in (file, page, slot) order, the order
// the final retrieval stage fetches in so that each data page is read
// once.
func (c *Container) SortedAll() ([]storage.RID, error) {
	out, err := c.All()
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out, nil
}

// Discard abandons the container, dropping any temp table. The paper's
// two-stage competition discards incomplete RID lists of non-competitive
// indexes.
func (c *Container) Discard() {
	if c.spill != nil {
		c.spill.drop()
		c.spill = nil
	}
	c.mem = nil
	c.bitmap = nil
	c.n = 0
	c.discarded = true
}

// MemRIDs returns how many RIDs are held in memory (static + allocated
// regions). Spilled RIDs are excluded.
func (c *Container) MemRIDs() int { return len(c.inMemory()) }
