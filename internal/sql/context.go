package sql

import (
	"context"

	"rdbdyn/internal/catalog"
)

// ParseContext is Parse honoring ctx: a cancelled or expired context
// fails before any lexing work. Parsing itself is pure CPU over a
// short string, so no further checkpoints are needed.
func ParseContext(ctx context.Context, src string) (*SelectStmt, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return Parse(src)
}

// CompileContext is Compile honoring ctx the same way.
func CompileContext(ctx context.Context, cat *catalog.Catalog, stmt *SelectStmt) (*Compiled, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return Compile(cat, stmt)
}
