package sql

import (
	"testing"

	"rdbdyn/internal/expr"
)

func TestParseStatementDispatch(t *testing.T) {
	if s, err := ParseStatement("SELECT * FROM T"); err != nil {
		t.Fatal(err)
	} else if _, ok := s.(*SelectStmt); !ok {
		t.Fatalf("got %T", s)
	}
	if s, err := ParseStatement("INSERT INTO T VALUES (1)"); err != nil {
		t.Fatal(err)
	} else if _, ok := s.(*InsertStmt); !ok {
		t.Fatalf("got %T", s)
	}
	if s, err := ParseStatement("DELETE FROM T"); err != nil {
		t.Fatal(err)
	} else if _, ok := s.(*DeleteStmt); !ok {
		t.Fatalf("got %T", s)
	}
	if s, err := ParseStatement("UPDATE T SET A = 1"); err != nil {
		t.Fatal(err)
	} else if _, ok := s.(*UpdateStmt); !ok {
		t.Fatalf("got %T", s)
	}
}

func TestParseInsertShapes(t *testing.T) {
	s, err := ParseStatement("INSERT INTO T VALUES (1, 'x', :p), (2, 'y', 3.5)")
	if err != nil {
		t.Fatal(err)
	}
	ins := s.(*InsertStmt)
	if ins.Table != "T" || len(ins.Rows) != 2 || len(ins.Rows[0]) != 3 {
		t.Fatalf("insert = %+v", ins)
	}
	if lit, ok := ins.Rows[0][0].(LitNode); !ok || lit.V.I != 1 {
		t.Fatalf("first value = %+v", ins.Rows[0][0])
	}
	if p, ok := ins.Rows[0][2].(ParamNode); !ok || p.Name != "p" {
		t.Fatalf("param value = %+v", ins.Rows[0][2])
	}
	if lit, ok := ins.Rows[1][2].(LitNode); !ok || lit.V.F != 3.5 {
		t.Fatalf("float value = %+v", ins.Rows[1][2])
	}
}

func TestParseDeleteShapes(t *testing.T) {
	s, err := ParseStatement("DELETE FROM T WHERE A < 5 AND B = 'z'")
	if err != nil {
		t.Fatal(err)
	}
	del := s.(*DeleteStmt)
	if del.Table != "T" {
		t.Fatalf("table = %s", del.Table)
	}
	and, ok := del.Where.(AndNode)
	if !ok || len(and.Kids) != 2 {
		t.Fatalf("where = %+v", del.Where)
	}
	// WHERE-less delete.
	s2, err := ParseStatement("DELETE FROM T")
	if err != nil {
		t.Fatal(err)
	}
	if s2.(*DeleteStmt).Where != nil {
		t.Fatal("where should be nil")
	}
}

func TestParseUpdateShapes(t *testing.T) {
	s, err := ParseStatement("UPDATE T SET A = 1, B = :b WHERE C > 2")
	if err != nil {
		t.Fatal(err)
	}
	up := s.(*UpdateStmt)
	if len(up.Sets) != 2 || up.Sets[0].Col != "A" || up.Sets[1].Col != "B" {
		t.Fatalf("sets = %+v", up.Sets)
	}
	if _, ok := up.Sets[1].Value.(ParamNode); !ok {
		t.Fatalf("param set value = %+v", up.Sets[1].Value)
	}
	if up.Where == nil {
		t.Fatal("where missing")
	}
}

func TestParseInSuffix(t *testing.T) {
	stmt, err := Parse("SELECT * FROM T WHERE A IN (1, 2, :p)")
	if err != nil {
		t.Fatal(err)
	}
	or, ok := stmt.Where.(OrNode)
	if !ok || len(or.Kids) != 3 {
		t.Fatalf("IN compiled to %+v", stmt.Where)
	}
	for _, k := range or.Kids {
		cmp, ok := k.(CmpNode)
		if !ok || cmp.Op != expr.EQ {
			t.Fatalf("IN disjunct = %+v", k)
		}
	}
	// Single-element IN collapses to one comparison.
	stmt2, _ := Parse("SELECT * FROM T WHERE A IN (7)")
	if _, ok := stmt2.Where.(CmpNode); !ok {
		t.Fatalf("single IN = %+v", stmt2.Where)
	}
}

func TestParseBetweenSuffix(t *testing.T) {
	stmt, err := Parse("SELECT * FROM T WHERE A BETWEEN 3 AND 9 AND B = 1")
	if err != nil {
		t.Fatal(err)
	}
	// Top level: (A>=3 AND A<=9) AND B=1 — flattening happens at
	// compile time, the parser keeps the nesting.
	and, ok := stmt.Where.(AndNode)
	if !ok || len(and.Kids) != 2 {
		t.Fatalf("where = %+v", stmt.Where)
	}
	inner, ok := and.Kids[0].(AndNode)
	if !ok || len(inner.Kids) != 2 {
		t.Fatalf("between = %+v", and.Kids[0])
	}
	lo := inner.Kids[0].(CmpNode)
	hi := inner.Kids[1].(CmpNode)
	if lo.Op != expr.GE || hi.Op != expr.LE {
		t.Fatalf("between ops = %v %v", lo.Op, hi.Op)
	}
}

func TestParseNotSuffixes(t *testing.T) {
	stmt, err := Parse("SELECT * FROM T WHERE A NOT IN (1, 2)")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := stmt.Where.(NotNode); !ok {
		t.Fatalf("NOT IN = %+v", stmt.Where)
	}
	stmt2, err := Parse("SELECT * FROM T WHERE A NOT BETWEEN 1 AND 2")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := stmt2.Where.(NotNode); !ok {
		t.Fatalf("NOT BETWEEN = %+v", stmt2.Where)
	}
}

func TestParseExistsAndExplain(t *testing.T) {
	stmt, err := Parse("EXISTS(SELECT * FROM T WHERE A = 1)")
	if err != nil {
		t.Fatal(err)
	}
	if !stmt.Exists || stmt.Explain {
		t.Fatalf("stmt = %+v", stmt)
	}
	stmt2, err := Parse("EXPLAIN SELECT * FROM T")
	if err != nil {
		t.Fatal(err)
	}
	if !stmt2.Explain || stmt2.Exists {
		t.Fatalf("stmt = %+v", stmt2)
	}
	stmt3, err := Parse("EXPLAIN EXISTS(SELECT * FROM T)")
	if err != nil {
		t.Fatal(err)
	}
	if !stmt3.Explain || !stmt3.Exists {
		t.Fatalf("stmt = %+v", stmt3)
	}
}

func TestParseAggregates(t *testing.T) {
	for _, kind := range []string{"SUM", "AVG", "MIN", "MAX"} {
		stmt, err := Parse("SELECT " + kind + "(V) FROM T")
		if err != nil {
			t.Fatal(err)
		}
		if stmt.Agg == nil || stmt.Agg.Kind != kind || stmt.Agg.Col != "V" {
			t.Fatalf("%s parsed as %+v", kind, stmt.Agg)
		}
	}
}

func TestParseOrderDesc(t *testing.T) {
	stmt, err := Parse("SELECT * FROM T ORDER BY A DESC, B DESC")
	if err != nil {
		t.Fatal(err)
	}
	if !stmt.OrderDesc || len(stmt.OrderBy) != 2 {
		t.Fatalf("stmt = %+v", stmt)
	}
	if _, err := Parse("SELECT * FROM T ORDER BY A ASC, B DESC"); err == nil {
		t.Fatal("mixed directions accepted")
	}
}

func TestSyntaxErrorReportsPosition(t *testing.T) {
	_, err := Parse("SELECT * FROM T WHERE !")
	if err == nil {
		t.Fatal("bad input accepted")
	}
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if se.Pos != 22 || se.Error() == "" {
		t.Fatalf("error = %+v", se)
	}
}

func TestCompileExprStandalone(t *testing.T) {
	cat := newTable(t)
	s, err := ParseStatement("DELETE FROM T WHERE AGE > 5")
	if err != nil {
		t.Fatal(err)
	}
	e, err := CompileExpr(cat, "T", s.(*DeleteStmt).Where)
	if err != nil {
		t.Fatal(err)
	}
	if e.String() != "AGE > 5" {
		t.Fatalf("expr = %s", e)
	}
	if _, err := CompileExpr(cat, "MISSING", s.(*DeleteStmt).Where); err == nil {
		t.Fatal("missing table accepted")
	}
	if e, err := CompileExpr(cat, "T", nil); err != nil || e != nil {
		t.Fatal("nil where must compile to nil")
	}
}

func TestParseStatementErrors(t *testing.T) {
	for _, src := range []string{
		"INSERT INTO T VALUES",
		"UPDATE SET A = 1",
		"UPDATE T SET = 1",
		"DELETE",
		"INSERT INTO T VALUES (1) extra",
		"UPDATE T SET A = 1 extra",
	} {
		if _, err := ParseStatement(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}
