package sql

// DML statements: INSERT INTO t VALUES (...), (...) and
// DELETE FROM t [WHERE ...]. Both are parsed by ParseStatement; SELECT
// statements continue to go through Parse/Compile.

// Statement is any parsed statement.
type Statement interface{ stmt() }

func (*SelectStmt) stmt() {}
func (*InsertStmt) stmt() {}
func (*DeleteStmt) stmt() {}
func (*UpdateStmt) stmt() {}

// InsertStmt is INSERT INTO table VALUES (v, ...), (...). Values are
// literals or :parameters.
type InsertStmt struct {
	Table string
	Rows  [][]Node
}

// DeleteStmt is DELETE FROM table [WHERE ...].
type DeleteStmt struct {
	Table string
	Where Node // nil = delete everything
}

// UpdateStmt is UPDATE table SET col = value [, ...] [WHERE ...].
// Values are literals or :parameters.
type UpdateStmt struct {
	Table string
	Sets  []SetClause
	Where Node
}

// SetClause is one col = value assignment.
type SetClause struct {
	Col   string
	Value Node // LitNode or ParamNode
}

// ParseStatement parses any supported statement: SELECT (with the
// EXISTS/EXPLAIN forms), INSERT, or DELETE.
func ParseStatement(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	switch t := p.peek(); {
	case t.kind == tokKeyword && t.text == "INSERT":
		return p.parseInsert()
	case t.kind == tokKeyword && t.text == "DELETE":
		return p.parseDelete()
	case t.kind == tokKeyword && t.text == "UPDATE":
		return p.parseUpdate()
	default:
		return Parse(src)
	}
}

func (p *parser) parseInsert() (Statement, error) {
	if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	tt := p.next()
	if tt.kind != tokIdent {
		return nil, errf(tt.pos, "expected table name, got %s", tt)
	}
	stmt := &InsertStmt{Table: tt.text}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if p.peek().kind != tokLParen {
			return nil, errf(p.peek().pos, "expected ( starting a VALUES row")
		}
		p.next()
		var row []Node
		for {
			v, err := p.parseOperand()
			if err != nil {
				return nil, err
			}
			switch v.(type) {
			case LitNode, ParamNode:
			default:
				return nil, errf(p.peek().pos, "VALUES entries must be literals or parameters")
			}
			row = append(row, v)
			if p.peek().kind == tokComma {
				p.next()
				continue
			}
			break
		}
		if p.peek().kind != tokRParen {
			return nil, errf(p.peek().pos, "expected ) closing a VALUES row")
		}
		p.next()
		stmt.Rows = append(stmt.Rows, row)
		if p.peek().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if p.peek().kind != tokEOF {
		return nil, errf(p.peek().pos, "unexpected %s after statement", p.peek())
	}
	return stmt, nil
}

func (p *parser) parseDelete() (Statement, error) {
	if err := p.expectKeyword("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	tt := p.next()
	if tt.kind != tokIdent {
		return nil, errf(tt.pos, "expected table name, got %s", tt)
	}
	stmt := &DeleteStmt{Table: tt.text}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	if p.peek().kind != tokEOF {
		return nil, errf(p.peek().pos, "unexpected %s after statement", p.peek())
	}
	return stmt, nil
}

func (p *parser) parseUpdate() (Statement, error) {
	if err := p.expectKeyword("UPDATE"); err != nil {
		return nil, err
	}
	tt := p.next()
	if tt.kind != tokIdent {
		return nil, errf(tt.pos, "expected table name, got %s", tt)
	}
	stmt := &UpdateStmt{Table: tt.text}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	for {
		col := p.next()
		if col.kind != tokIdent {
			return nil, errf(col.pos, "expected column name in SET, got %s", col)
		}
		op := p.next()
		if op.kind != tokOp || op.text != "=" {
			return nil, errf(op.pos, "expected = in SET, got %s", op)
		}
		v, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		switch v.(type) {
		case LitNode, ParamNode:
		default:
			return nil, errf(op.pos, "SET values must be literals or parameters")
		}
		stmt.Sets = append(stmt.Sets, SetClause{Col: col.text, Value: v})
		if p.peek().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	if p.peek().kind != tokEOF {
		return nil, errf(p.peek().pos, "unexpected %s after statement", p.peek())
	}
	return stmt, nil
}
