package sql

import (
	"strings"
	"testing"

	"rdbdyn/internal/catalog"
	"rdbdyn/internal/core"
	"rdbdyn/internal/expr"
	"rdbdyn/internal/storage"
)

func joinCatalog(t testing.TB) *catalog.Catalog {
	t.Helper()
	cat := catalog.New(storage.NewBufferPool(storage.NewDisk(4096), 0))
	if _, err := cat.CreateTable("CUST", []catalog.Column{
		{Name: "ID", Type: expr.TypeInt},
		{Name: "SEG", Type: expr.TypeInt},
		{Name: "NAME", Type: expr.TypeString},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.CreateTable("ORD", []catalog.Column{
		{Name: "ID", Type: expr.TypeInt},
		{Name: "CUST", Type: expr.TypeInt},
		{Name: "QTY", Type: expr.TypeInt},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.CreateTable("ITEM", []catalog.Column{
		{Name: "ID", Type: expr.TypeInt},
		{Name: "KIND", Type: expr.TypeInt},
	}); err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestParseJoinGrammar(t *testing.T) {
	stmt, err := Parse("SELECT CUST.NAME, ORD.QTY FROM CUST JOIN ORD ON CUST.ID = ORD.CUST WHERE CUST.SEG = 0 ORDER BY ORD.QTY")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Table != "CUST" {
		t.Fatalf("Table = %q, want CUST (back-compat first table)", stmt.Table)
	}
	if len(stmt.Tables) != 2 || stmt.Tables[1] != "ORD" {
		t.Fatalf("Tables = %v", stmt.Tables)
	}
	// ON and WHERE conjuncts merge into one AND.
	and, ok := stmt.Where.(AndNode)
	if !ok || len(and.Kids) != 2 {
		t.Fatalf("Where = %+v", stmt.Where)
	}
	if len(stmt.OrderBy) != 1 || stmt.OrderBy[0] != "ORD.QTY" {
		t.Fatalf("OrderBy = %v", stmt.OrderBy)
	}
}

func TestParseCommaJoinAndInner(t *testing.T) {
	for _, src := range []string{
		"SELECT * FROM CUST, ORD WHERE CUST.ID = ORD.CUST",
		"SELECT * FROM CUST INNER JOIN ORD ON CUST.ID = ORD.CUST",
		"SELECT * FROM CUST JOIN ORD ON CUST.ID = ORD.CUST",
	} {
		stmt, err := Parse(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if len(stmt.Tables) != 2 {
			t.Fatalf("%q: Tables = %v", src, stmt.Tables)
		}
	}
	// Three tables, chained JOINs.
	stmt, err := Parse("SELECT * FROM CUST JOIN ORD ON CUST.ID = ORD.CUST JOIN ITEM ON ORD.ID = ITEM.ID")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Tables) != 3 || stmt.Tables[2] != "ITEM" {
		t.Fatalf("Tables = %v", stmt.Tables)
	}
}

func TestParseJoinErrors(t *testing.T) {
	for _, src := range []string{
		"SELECT * FROM CUST JOIN",
		"SELECT * FROM CUST JOIN ORD",
		"SELECT * FROM CUST JOIN ORD ON",
		"SELECT * FROM CUST INNER ORD ON CUST.ID = ORD.CUST",
	} {
		if _, err := Parse(src); err == nil {
			t.Fatalf("%q parsed without error", src)
		}
	}
}

func TestCompileJoinDecomposition(t *testing.T) {
	cat := joinCatalog(t)
	stmt, err := Parse("SELECT CUST.NAME, ORD.QTY FROM CUST JOIN ORD ON CUST.ID = ORD.CUST JOIN ITEM ON ORD.ID = ITEM.ID WHERE SEG = 0 AND QTY >= 5 AND CUST.SEG < ITEM.KIND")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(cat, stmt)
	if err != nil {
		t.Fatal(err)
	}
	if c.Query != nil || c.Join == nil {
		t.Fatalf("join statement compiled to Query=%v Join=%v", c.Query, c.Join)
	}
	jq := c.Join
	if len(jq.Tables) != 3 {
		t.Fatalf("tables = %d", len(jq.Tables))
	}
	if len(jq.Preds) != 2 {
		t.Fatalf("equi-join preds = %+v", jq.Preds)
	}
	if jq.Preds[0] != (core.JoinPred{LT: 0, LC: 0, RT: 1, RC: 1}) {
		t.Fatalf("pred 0 = %+v", jq.Preds[0])
	}
	// SEG = 0 is local to CUST (unqualified but unique), QTY >= 5 local
	// to ORD; CUST.SEG < ITEM.KIND is residual (cross-table non-equi).
	if jq.Local[0] == nil || jq.Local[1] == nil || jq.Local[2] != nil {
		t.Fatalf("locals = %v", jq.Local)
	}
	if jq.Residual == nil {
		t.Fatalf("residual missing")
	}
	// Projection: CUST.NAME flat 2, ORD.QTY flat 3+2=5.
	if len(jq.Projection) != 2 || jq.Projection[0] != 2 || jq.Projection[1] != 5 {
		t.Fatalf("projection = %v", jq.Projection)
	}
}

func TestCompileJoinErrors(t *testing.T) {
	cat := joinCatalog(t)
	for _, src := range []string{
		// ID is ambiguous across CUST, ORD, and ITEM.
		"SELECT ID FROM CUST JOIN ORD ON CUST.ID = ORD.CUST",
		// No connecting predicate: cross product.
		"SELECT * FROM CUST, ITEM WHERE CUST.SEG = 0",
		// Unknown qualified table.
		"SELECT * FROM CUST JOIN ORD ON NOPE.ID = ORD.CUST",
		// Self-join unsupported.
		"SELECT * FROM CUST, CUST WHERE SEG = 0",
	} {
		stmt, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := Compile(cat, stmt); err == nil {
			t.Fatalf("%q compiled without error", src)
		}
	}
}

func TestShapeKeyJoinForm(t *testing.T) {
	cat := joinCatalog(t)
	k1 := keyOfCat(t, cat, "SELECT * FROM CUST JOIN ORD ON CUST.ID = ORD.CUST WHERE SEG = :S")
	if !strings.HasPrefix(k1, "CUST,ORD|") {
		t.Fatalf("join shape key %q does not lead with the table list", k1)
	}
	// Same shape through comma syntax and different whitespace.
	k2 := keyOfCat(t, cat, "SELECT  *  FROM CUST, ORD WHERE CUST.ID = ORD.CUST AND SEG = :S")
	if k1 != k2 {
		t.Fatalf("equivalent join shapes differ:\n %q\n %q", k1, k2)
	}
	// Single-table keys are unchanged by the join work (no table list).
	k3 := keyOfCat(t, cat, "SELECT * FROM CUST WHERE SEG = :S")
	if !strings.HasPrefix(k3, "CUST|") {
		t.Fatalf("single-table key %q", k3)
	}
}

func TestParseTableAliases(t *testing.T) {
	// AS and bare aliases, mixed with an unaliased table.
	stmt, err := Parse("SELECT a.NAME FROM CUST AS a JOIN ORD o ON a.ID = o.CUST JOIN ITEM ON o.ID = ITEM.ID")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"CUST", "ORD", "ITEM"}; len(stmt.Tables) != 3 ||
		stmt.Tables[0] != want[0] || stmt.Tables[1] != want[1] || stmt.Tables[2] != want[2] {
		t.Fatalf("Tables = %v", stmt.Tables)
	}
	if want := []string{"a", "o", ""}; len(stmt.Aliases) != 3 ||
		stmt.Aliases[0] != want[0] || stmt.Aliases[1] != want[1] || stmt.Aliases[2] != want[2] {
		t.Fatalf("Aliases = %v", stmt.Aliases)
	}
	// No alias anywhere: Aliases stays nil (back-compat shape).
	stmt, err = Parse("SELECT * FROM CUST JOIN ORD ON CUST.ID = ORD.CUST")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Aliases != nil {
		t.Fatalf("Aliases = %v, want nil", stmt.Aliases)
	}
	// A late first alias backfills "" for the earlier tables.
	stmt, err = Parse("SELECT * FROM CUST, ORD o WHERE CUST.ID = o.CUST")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Aliases) != 2 || stmt.Aliases[0] != "" || stmt.Aliases[1] != "o" {
		t.Fatalf("Aliases = %v", stmt.Aliases)
	}
}

func TestCompileSelfJoinAliases(t *testing.T) {
	cat := joinCatalog(t)
	stmt, err := Parse("SELECT a.NAME, b.NAME FROM CUST a JOIN CUST b ON a.ID = b.SEG WHERE a.SEG = 0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(cat, stmt)
	if err != nil {
		t.Fatal(err)
	}
	jq := c.Join
	if len(jq.Tables) != 2 || jq.Tables[0] != jq.Tables[1] {
		t.Fatalf("self-join tables = %v", jq.Tables)
	}
	if len(jq.Names) != 2 || jq.Names[0] != "a" || jq.Names[1] != "b" {
		t.Fatalf("Names = %v", jq.Names)
	}
	// a.ID = b.SEG: table 0 col 0 vs table 1 col 1.
	if len(jq.Preds) != 1 || jq.Preds[0] != (core.JoinPred{LT: 0, LC: 0, RT: 1, RC: 1}) {
		t.Fatalf("preds = %+v", jq.Preds)
	}
	// a.SEG = 0 restricts occurrence 0 only.
	if jq.Local[0] == nil || jq.Local[1] != nil {
		t.Fatalf("locals = %v", jq.Local)
	}
	// Projection: a.NAME flat 2, b.NAME flat 3+2=5.
	if len(jq.Projection) != 2 || jq.Projection[0] != 2 || jq.Projection[1] != 5 {
		t.Fatalf("projection = %v", jq.Projection)
	}
}

func TestCompileAliasErrors(t *testing.T) {
	cat := joinCatalog(t)
	for _, src := range []string{
		// Same alias twice.
		"SELECT * FROM CUST a JOIN ORD a ON a.ID = a.CUST",
		// An alias hides the underlying table name.
		"SELECT CUST.NAME FROM CUST a JOIN ORD o ON a.ID = o.CUST",
		// Unqualified column of a self-join is ambiguous.
		"SELECT * FROM CUST a JOIN CUST b ON a.ID = b.SEG WHERE NAME = 'x'",
	} {
		stmt, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := Compile(cat, stmt); err == nil {
			t.Fatalf("%q compiled without error", src)
		}
	}
	// The unaliased self-join error suggests aliasing.
	stmt, err := Parse("SELECT * FROM CUST, CUST WHERE SEG = 0")
	if err != nil {
		t.Fatal(err)
	}
	_, err = Compile(cat, stmt)
	if err == nil || !strings.Contains(err.Error(), "alias") {
		t.Fatalf("unaliased self-join error = %v, want alias hint", err)
	}
}

func TestShapeKeyAliases(t *testing.T) {
	cat := joinCatalog(t)
	k1 := keyOfCat(t, cat, "SELECT * FROM CUST a JOIN CUST b ON a.ID = b.SEG WHERE a.SEG = :S")
	if !strings.HasPrefix(k1, "CUST a,CUST b|") {
		t.Fatalf("aliased shape key %q does not carry the alias structure", k1)
	}
	// Aliased and unaliased spellings of the same join are distinct
	// shapes: the predicate text differs too, but the table list alone
	// must already separate them.
	k2 := keyOfCat(t, cat, "SELECT * FROM CUST JOIN ORD ON CUST.ID = ORD.CUST WHERE SEG = :S")
	k3 := keyOfCat(t, cat, "SELECT * FROM CUST c JOIN ORD o ON c.ID = o.CUST WHERE SEG = :S")
	if !strings.HasPrefix(k2, "CUST,ORD|") || !strings.HasPrefix(k3, "CUST c,ORD o|") {
		t.Fatalf("keys %q / %q", k2, k3)
	}
}

func TestJoinColumnNamesAliases(t *testing.T) {
	cat := joinCatalog(t)
	stmt, err := Parse("SELECT * FROM CUST a JOIN CUST b ON a.ID = b.SEG")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(cat, stmt)
	if err != nil {
		t.Fatal(err)
	}
	names := c.JoinColumnNames()
	if len(names) != 6 || names[0] != "a.ID" || names[3] != "b.ID" {
		t.Fatalf("JoinColumnNames = %v", names)
	}
}

func keyOfCat(t *testing.T, cat *catalog.Catalog, src string) string {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	c, err := Compile(cat, stmt)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	return c.ShapeKey()
}

// TestShapeKeyMemoized checks the text-keyed memo returns the same key
// for a re-parsed statement and never caches through string literals.
func TestShapeKeyMemoized(t *testing.T) {
	cat := joinCatalog(t)
	src := "SELECT * FROM CUST WHERE SEG = :S ORDER BY ID"
	k1 := keyOfCat(t, cat, src)
	k2 := keyOfCat(t, cat, "SELECT *  FROM CUST WHERE SEG = :S ORDER BY ID")
	if k1 != k2 {
		t.Fatalf("memoized keys differ: %q vs %q", k1, k2)
	}
	// Statements with string literals bypass the memo: whitespace
	// inside quotes is significant.
	a := keyOfCat(t, cat, "SELECT * FROM CUST WHERE NAME = 'a  b'")
	b := keyOfCat(t, cat, "SELECT * FROM CUST WHERE NAME = 'a b'")
	if a == b {
		t.Fatalf("distinct literals share a shape key: %q", a)
	}
}

func BenchmarkShapeKeyMemo(b *testing.B) {
	cat := joinCatalog(b)
	stmt, err := Parse("SELECT CUST.NAME, ORD.QTY FROM CUST JOIN ORD ON CUST.ID = ORD.CUST WHERE SEG = :S AND QTY >= :Q ORDER BY ORD.QTY LIMIT TO 10 ROWS")
	if err != nil {
		b.Fatal(err)
	}
	c, err := Compile(cat, stmt)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("memoized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.ShapeKey()
		}
	})
	b.Run("render", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.renderShapeKey()
		}
	})
}
