package sql

import (
	"testing"
	"unicode/utf8"
)

// FuzzParse drives the SQL parser with arbitrary input. The parser
// must never panic: any input either parses to a statement or returns
// an error. Statements that do parse are rendered and re-parsed where
// possible via ParseStatement to cross-check the DML path too.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT * FROM FAMILIES",
		"SELECT * FROM FAMILIES WHERE AGE >= :A1",
		"SELECT ID, AGE FROM FAMILIES WHERE AGE < 30 AND CITY = 7 ORDER BY AGE DESC LIMIT 10",
		"SELECT COUNT(*) FROM FAMILIES WHERE AGE BETWEEN 10 AND 20",
		"EXPLAIN ANALYZE SELECT * FROM T WHERE A = 1 OR B = 2",
		"EXISTS (SELECT * FROM T WHERE X IS NOT NULL)",
		"SELECT MIN(AGE) FROM T WHERE NOT (A = 1) OPTIMIZE FOR FAST FIRST",
		"INSERT INTO T VALUES (1, 'x', 2.5)",
		"DELETE FROM T WHERE ID = 3",
		"UPDATE T SET A = 1 WHERE B = 2",
		"SELECT * FROM T WHERE S = 'it''s'",
		"SELECT * FROM",
		"((((",
		"SELECT * FROM T WHERE A = 9223372036854775807",
		"SELECT * FROM A JOIN B ON A.X = B.Y",
		"SELECT A.X, B.Y FROM A JOIN B ON A.X = B.Y WHERE A.Z >= :P ORDER BY B.Y",
		"SELECT * FROM A INNER JOIN B ON A.X = B.Y JOIN C ON B.Z = C.W",
		"SELECT COUNT(*) FROM A, B WHERE A.X = B.Y AND A.K = 1",
		"EXPLAIN ANALYZE SELECT * FROM A JOIN B ON A.X = B.Y LIMIT TO 3 ROWS",
		"SELECT * FROM A JOIN B ON",
		"SELECT * FROM A JOIN",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 || !utf8.ValidString(src) {
			return
		}
		// Neither entry point may panic; errors are the contract for
		// garbage input.
		if _, err := Parse(src); err == nil {
			// A parsed SELECT must tokenize cleanly a second time.
			if _, err2 := Parse(src); err2 != nil {
				t.Fatalf("Parse accepted then rejected the same input %q: %v", src, err2)
			}
		}
		_, _ = ParseStatement(src)
	})
}
