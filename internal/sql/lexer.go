// Package sql implements the mini SQL dialect of the reproduction:
// SELECT over one table or an inner-join of several (comma list or
// [INNER] JOIN ... ON ...), WHERE (AND/OR/NOT over comparisons, host
// parameters as :name), ORDER BY, LIMIT [TO n ROWS], COUNT(*), and the
// paper's OPTIMIZE FOR FAST FIRST / TOTAL TIME clause.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokInt
	tokFloat
	tokString
	tokParam // :name
	tokOp    // = <> != < <= > >=
	tokLParen
	tokRParen
	tokComma
	tokStar
)

type token struct {
	kind tokenKind
	text string // keywords upper-cased; idents verbatim
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "OR": true,
	"NOT": true, "ORDER": true, "BY": true, "LIMIT": true, "TO": true,
	"ROWS": true, "ROW": true, "OPTIMIZE": true, "FOR": true, "FAST": true,
	"FIRST": true, "TOTAL": true, "TIME": true, "COUNT": true, "ASC": true,
	"EXISTS": true, "EXPLAIN": true, "ANALYZE": true, "INSERT": true, "INTO": true,
	"VALUES": true, "DELETE": true, "IN": true, "BETWEEN": true,
	"UPDATE": true, "SET": true,
	"SUM": true, "AVG": true, "MIN": true, "MAX": true, "DESC": true,
	"JOIN": true, "ON": true, "INNER": true, "AS": true,
}

// SyntaxError reports a parse failure with its input position.
type SyntaxError struct {
	Pos int
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("sql: syntax error at position %d: %s", e.Pos, e.Msg)
}

func errf(pos int, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// lex tokenizes the input.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == '*':
			toks = append(toks, token{tokStar, "*", i})
			i++
		case c == '=':
			toks = append(toks, token{tokOp, "=", i})
			i++
		case c == '<':
			switch {
			case i+1 < len(src) && src[i+1] == '=':
				toks = append(toks, token{tokOp, "<=", i})
				i += 2
			case i+1 < len(src) && src[i+1] == '>':
				toks = append(toks, token{tokOp, "<>", i})
				i += 2
			default:
				toks = append(toks, token{tokOp, "<", i})
				i++
			}
		case c == '>':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{tokOp, ">=", i})
				i += 2
			} else {
				toks = append(toks, token{tokOp, ">", i})
				i++
			}
		case c == '!':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{tokOp, "<>", i})
				i += 2
			} else {
				return nil, errf(i, "unexpected '!'")
			}
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			for {
				if j >= len(src) {
					return nil, errf(i, "unterminated string")
				}
				if src[j] == '\'' {
					if j+1 < len(src) && src[j+1] == '\'' {
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(src[j])
				j++
			}
			toks = append(toks, token{tokString, sb.String(), i})
			i = j + 1
		case c == ':':
			j := i + 1
			for j < len(src) && isIdentChar(src[j]) {
				j++
			}
			if j == i+1 {
				return nil, errf(i, "':' without parameter name")
			}
			toks = append(toks, token{tokParam, src[i+1 : j], i})
			i = j
		case c >= '0' && c <= '9' || c == '-' && i+1 < len(src) && src[i+1] >= '0' && src[i+1] <= '9':
			j := i + 1
			isFloat := false
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '.') {
				if src[j] == '.' {
					if isFloat {
						return nil, errf(i, "malformed number")
					}
					isFloat = true
				}
				j++
			}
			kind := tokInt
			if isFloat {
				kind = tokFloat
			}
			toks = append(toks, token{kind, src[i:j], i})
			i = j
		case isIdentStart(c):
			j := i + 1
			for j < len(src) && isIdentChar(src[j]) {
				j++
			}
			word := src[i:j]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, token{tokKeyword, up, i})
				i = j
				break
			}
			// Qualified column reference: TABLE.COLUMN lexes as one
			// identifier token; the compiler splits on the dot.
			if j+1 < len(src) && src[j] == '.' && isIdentStart(src[j+1]) {
				k := j + 1
				for k < len(src) && isIdentChar(src[k]) {
					k++
				}
				word = src[i:k]
				j = k
			}
			toks = append(toks, token{tokIdent, word, i})
			i = j
		default:
			return nil, errf(i, "unexpected character %q", rune(c))
		}
	}
	toks = append(toks, token{tokEOF, "", len(src)})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentChar(c byte) bool {
	return c == '_' || c >= '0' && c <= '9' || unicode.IsLetter(rune(c))
}
