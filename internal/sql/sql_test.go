package sql

import (
	"strings"
	"testing"

	"rdbdyn/internal/catalog"
	"rdbdyn/internal/core"
	"rdbdyn/internal/expr"
	"rdbdyn/internal/storage"
)

func TestParseBasicSelect(t *testing.T) {
	stmt, err := Parse("SELECT * FROM families WHERE age >= :A1")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Table != "families" || stmt.Columns != nil || stmt.CountStar {
		t.Fatalf("stmt = %+v", stmt)
	}
	cmp, ok := stmt.Where.(CmpNode)
	if !ok || cmp.Op != expr.GE {
		t.Fatalf("where = %+v", stmt.Where)
	}
	if _, ok := cmp.L.(ColNode); !ok {
		t.Fatalf("left operand = %T", cmp.L)
	}
	if p, ok := cmp.R.(ParamNode); !ok || p.Name != "A1" {
		t.Fatalf("right operand = %+v", cmp.R)
	}
}

func TestParseColumnListAndOrderLimit(t *testing.T) {
	stmt, err := Parse("SELECT a, b FROM t WHERE a = 1 ORDER BY b, a LIMIT TO 5 ROWS OPTIMIZE FOR FAST FIRST")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Columns) != 2 || stmt.Columns[1] != "b" {
		t.Fatalf("columns = %v", stmt.Columns)
	}
	if len(stmt.OrderBy) != 2 || stmt.Limit != 5 {
		t.Fatalf("order/limit = %v %d", stmt.OrderBy, stmt.Limit)
	}
	if stmt.Optimize != OptimizeFastFirst {
		t.Fatalf("optimize = %v", stmt.Optimize)
	}
}

func TestParseCountStar(t *testing.T) {
	stmt, err := Parse("SELECT COUNT(*) FROM t WHERE x < 3 OPTIMIZE FOR TOTAL TIME")
	if err != nil {
		t.Fatal(err)
	}
	if !stmt.CountStar || stmt.Optimize != OptimizeTotalTime {
		t.Fatalf("stmt = %+v", stmt)
	}
}

func TestParseBooleanStructure(t *testing.T) {
	stmt, err := Parse("SELECT * FROM t WHERE a = 1 AND (b < 2 OR NOT c >= 3) AND d <> 'x''y'")
	if err != nil {
		t.Fatal(err)
	}
	and, ok := stmt.Where.(AndNode)
	if !ok || len(and.Kids) != 3 {
		t.Fatalf("where = %+v", stmt.Where)
	}
	or, ok := and.Kids[1].(OrNode)
	if !ok || len(or.Kids) != 2 {
		t.Fatalf("middle = %+v", and.Kids[1])
	}
	if _, ok := or.Kids[1].(NotNode); !ok {
		t.Fatalf("NOT missing: %+v", or.Kids[1])
	}
	cmp := and.Kids[2].(CmpNode)
	if lit, ok := cmp.R.(LitNode); !ok || lit.V.S != "x'y" {
		t.Fatalf("escaped string = %+v", cmp.R)
	}
}

func TestParseNumbers(t *testing.T) {
	stmt, err := Parse("SELECT * FROM t WHERE a = -5 AND b < 2.75")
	if err != nil {
		t.Fatal(err)
	}
	and := stmt.Where.(AndNode)
	if lit := and.Kids[0].(CmpNode).R.(LitNode); lit.V.I != -5 {
		t.Fatalf("int literal = %v", lit.V)
	}
	if lit := and.Kids[1].(CmpNode).R.(LitNode); lit.V.F != 2.75 {
		t.Fatalf("float literal = %v", lit.V)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"SELECT",
		"SELECT * FORM t",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t WHERE a",
		"SELECT * FROM t WHERE a = ",
		"SELECT * FROM t WHERE (a = 1",
		"SELECT * FROM t LIMIT x",
		"SELECT * FROM t LIMIT 0",
		"SELECT * FROM t OPTIMIZE FOR SPEED",
		"SELECT * FROM t WHERE a = 'unterminated",
		"SELECT COUNT(x) FROM t",
		"SELECT * FROM t alias extra", // one alias is legal, two idents are not
		"SELECT * FROM t AS",
		"SELECT * FROM t WHERE a = 1.2.3",
		"SELECT * FROM t WHERE a = :",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	stmt, err := Parse("select id from t where id = 1 order by id limit 2")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Limit != 2 || len(stmt.OrderBy) != 1 {
		t.Fatalf("stmt = %+v", stmt)
	}
}

func newTable(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New(storage.NewBufferPool(storage.NewDisk(4096), 0))
	tab, err := cat.CreateTable("T", []catalog.Column{
		{Name: "ID", Type: expr.TypeInt},
		{Name: "AGE", Type: expr.TypeInt},
		{Name: "NAME", Type: expr.TypeString},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		if _, err := tab.Insert(expr.Row{expr.Int(i), expr.Int(i * 10), expr.Str("n")}); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

func TestCompileResolvesColumns(t *testing.T) {
	cat := newTable(t)
	stmt, err := Parse("SELECT AGE, ID FROM T WHERE AGE > 30 AND NAME = 'n' ORDER BY ID LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(cat, stmt)
	if err != nil {
		t.Fatal(err)
	}
	q := c.Query
	if len(q.Projection) != 2 || q.Projection[0] != 1 || q.Projection[1] != 0 {
		t.Fatalf("projection = %v", q.Projection)
	}
	if len(q.OrderBy) != 1 || q.OrderBy[0] != 0 {
		t.Fatalf("order = %v", q.OrderBy)
	}
	if q.Limit != 3 || q.Control != core.ControlLimit {
		t.Fatalf("limit/control = %d %v", q.Limit, q.Control)
	}
	if !strings.Contains(q.Restriction.String(), "AGE > 30") {
		t.Fatalf("restriction = %s", q.Restriction)
	}
}

func TestCompileGoalInference(t *testing.T) {
	cat := newTable(t)
	cases := []struct {
		src  string
		want core.Goal
	}{
		{"SELECT * FROM T LIMIT 2", core.GoalFastFirst},
		{"SELECT COUNT(*) FROM T", core.GoalTotalTime},
		{"SELECT * FROM T ORDER BY ID", core.GoalTotalTime},
		{"SELECT * FROM T", core.GoalTotalTime},
		{"SELECT * FROM T OPTIMIZE FOR FAST FIRST", core.GoalFastFirst},
		// A controlling LIMIT overrides the user request, per Section 4.
		{"SELECT * FROM T LIMIT 2 OPTIMIZE FOR TOTAL TIME", core.GoalFastFirst},
	}
	for _, tc := range cases {
		stmt, err := Parse(tc.src)
		if err != nil {
			t.Fatalf("%s: %v", tc.src, err)
		}
		c, err := Compile(cat, stmt)
		if err != nil {
			t.Fatalf("%s: %v", tc.src, err)
		}
		if got := c.Query.EffectiveGoal(); got != tc.want {
			t.Errorf("%s: goal %v, want %v", tc.src, got, tc.want)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	cat := newTable(t)
	for _, src := range []string{
		"SELECT * FROM MISSING",
		"SELECT nope FROM T",
		"SELECT * FROM T WHERE nope = 1",
		"SELECT * FROM T ORDER BY nope",
	} {
		stmt, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := Compile(cat, stmt); err == nil {
			t.Errorf("compiled %q", src)
		}
	}
}
