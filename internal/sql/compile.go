package sql

import (
	"fmt"
	"strings"

	"rdbdyn/internal/catalog"
	"rdbdyn/internal/core"
	"rdbdyn/internal/expr"
)

// Compiled is a statement bound to a table, ready for execution with
// per-run bindings.
type Compiled struct {
	Stmt  *SelectStmt
	Query *core.Query
	// Join is set instead of Query when the statement names more than
	// one table: the engine routes it through the dynamic join path.
	Join *core.JoinQuery
	// CountStar marks aggregate execution (engine counts rows).
	CountStar bool
	// Exists marks boolean existence execution.
	Exists bool
	// Agg is the single-column aggregate, if any.
	Agg *Aggregate
	// Explain marks plan description instead of full execution.
	Explain bool
	// Analyze marks EXPLAIN ANALYZE: execute fully, then describe what
	// actually happened.
	Analyze bool
}

// Compile resolves the statement's names against the catalog and builds
// the core query. Section 4's goal-inference rules are applied: a LIMIT
// controller sets fast-first, a COUNT or SORT controller sets
// total-time, otherwise the user's OPTIMIZE FOR request (or the
// default) decides.
func Compile(cat *catalog.Catalog, stmt *SelectStmt) (*Compiled, error) {
	if len(stmt.Tables) > 1 {
		return compileJoin(cat, stmt)
	}
	tab, err := cat.Table(stmt.Table)
	if err != nil {
		return nil, err
	}
	q := &core.Query{Table: tab, Limit: stmt.Limit}

	switch stmt.Optimize {
	case OptimizeFastFirst:
		q.Goal = core.GoalFastFirst
	case OptimizeTotalTime:
		q.Goal = core.GoalTotalTime
	}
	// The controlling node, in the paper's priority: LIMIT -> fast
	// first; COUNT -> total time. ORDER BY does not set a SORT
	// controller here: a SORT node only exists when no order-needed
	// index delivers the order, which the optimizer decides at
	// start-retrieval time (its sort fallback applies ControlSort to
	// the inner retrieval).
	switch {
	case stmt.Exists:
		q.Control = core.ControlExists
		q.Limit = 1
	case stmt.Limit > 0:
		q.Control = core.ControlLimit
	case stmt.CountStar || stmt.Agg != nil:
		q.Control = core.ControlAggregate
	}

	if stmt.Where != nil {
		e, err := compileNode(tab, stmt.Where)
		if err != nil {
			return nil, err
		}
		q.Restriction = e
	}
	if stmt.Columns != nil {
		q.Projection = make([]int, len(stmt.Columns))
		for i, name := range stmt.Columns {
			ci, err := tab.ColumnIndex(name)
			if err != nil {
				return nil, err
			}
			q.Projection[i] = ci
		}
	}
	if stmt.CountStar || stmt.Exists {
		// Counting and existence need no column values; project the
		// narrowest thing.
		q.Projection = []int{0}
	}
	if stmt.Agg != nil {
		ci, err := tab.ColumnIndex(stmt.Agg.Col)
		if err != nil {
			return nil, err
		}
		switch tab.Columns[ci].Type {
		case expr.TypeInt, expr.TypeFloat:
		default:
			return nil, fmt.Errorf("sql: %s over non-numeric column %s", stmt.Agg.Kind, stmt.Agg.Col)
		}
		q.Projection = []int{ci}
	}
	for _, name := range stmt.OrderBy {
		ci, err := tab.ColumnIndex(name)
		if err != nil {
			return nil, err
		}
		q.OrderBy = append(q.OrderBy, ci)
	}
	q.OrderDesc = stmt.OrderDesc
	return &Compiled{Stmt: stmt, Query: q, CountStar: stmt.CountStar, Exists: stmt.Exists, Explain: stmt.Explain, Analyze: stmt.Analyze, Agg: stmt.Agg}, nil
}

func compileNode(tab *catalog.Table, n Node) (expr.Expr, error) {
	switch t := n.(type) {
	case ColNode:
		ci, err := tab.ColumnIndex(t.Name)
		if err != nil {
			return nil, err
		}
		return expr.Col(ci, t.Name), nil
	case LitNode:
		return expr.Lit(t.V), nil
	case ParamNode:
		return expr.Var(t.Name), nil
	case CmpNode:
		l, err := compileNode(tab, t.L)
		if err != nil {
			return nil, err
		}
		r, err := compileNode(tab, t.R)
		if err != nil {
			return nil, err
		}
		return expr.NewCmp(t.Op, l, r), nil
	case AndNode:
		kids := make([]expr.Expr, len(t.Kids))
		for i, k := range t.Kids {
			var err error
			if kids[i], err = compileNode(tab, k); err != nil {
				return nil, err
			}
		}
		return expr.NewAnd(kids...), nil
	case OrNode:
		kids := make([]expr.Expr, len(t.Kids))
		for i, k := range t.Kids {
			var err error
			if kids[i], err = compileNode(tab, k); err != nil {
				return nil, err
			}
		}
		return expr.NewOr(kids...), nil
	case NotNode:
		kid, err := compileNode(tab, t.Kid)
		if err != nil {
			return nil, err
		}
		return expr.NewNot(kid), nil
	default:
		return nil, fmt.Errorf("sql: unknown node type %T", n)
	}
}

// colRef names one column of one FROM table.
type colRef struct{ t, c int }

// joinCompiler resolves names across every FROM table and assembles
// the core.JoinQuery.
type joinCompiler struct {
	tables []*catalog.Table
	names  []string // effective name per table: its alias, else its catalog name
	offs   []int
}

// resolve maps a (possibly qualified) column name to its table and
// table-local position. Qualified names match the table's effective name
// — its declared alias when one exists (an alias hides the underlying
// name, which is what makes self-joins resolvable). Unqualified names
// must be unique across the FROM tables.
func (jc *joinCompiler) resolve(name string) (colRef, error) {
	if i := strings.IndexByte(name, '.'); i >= 0 {
		tn, cn := name[:i], name[i+1:]
		for ti, tab := range jc.tables {
			if jc.names[ti] == tn {
				ci, err := tab.ColumnIndex(cn)
				if err != nil {
					return colRef{}, err
				}
				return colRef{ti, ci}, nil
			}
		}
		return colRef{}, fmt.Errorf("sql: table %s is not in the FROM clause", tn)
	}
	found := colRef{t: -1}
	for ti, tab := range jc.tables {
		ci, err := tab.ColumnIndex(name)
		if err != nil {
			continue
		}
		if found.t >= 0 {
			return colRef{}, fmt.Errorf("sql: column %s is ambiguous between %s and %s (qualify it)",
				name, jc.names[found.t], jc.names[ti])
		}
		found = colRef{ti, ci}
	}
	if found.t < 0 {
		return colRef{}, fmt.Errorf("sql: unknown column %s", name)
	}
	return found, nil
}

// flat converts a reference to its flat-row position.
func (jc *joinCompiler) flat(r colRef) int { return jc.offs[r.t] + r.c }

// compileNode builds the expression for one WHERE node, mapping each
// column reference through pos (flat or table-local).
func (jc *joinCompiler) compileNode(n Node, pos func(colRef) int) (expr.Expr, error) {
	switch t := n.(type) {
	case ColNode:
		r, err := jc.resolve(t.Name)
		if err != nil {
			return nil, err
		}
		return expr.Col(pos(r), t.Name), nil
	case LitNode:
		return expr.Lit(t.V), nil
	case ParamNode:
		return expr.Var(t.Name), nil
	case CmpNode:
		l, err := jc.compileNode(t.L, pos)
		if err != nil {
			return nil, err
		}
		r, err := jc.compileNode(t.R, pos)
		if err != nil {
			return nil, err
		}
		return expr.NewCmp(t.Op, l, r), nil
	case AndNode:
		kids := make([]expr.Expr, len(t.Kids))
		for i, k := range t.Kids {
			var err error
			if kids[i], err = jc.compileNode(k, pos); err != nil {
				return nil, err
			}
		}
		return expr.NewAnd(kids...), nil
	case OrNode:
		kids := make([]expr.Expr, len(t.Kids))
		for i, k := range t.Kids {
			var err error
			if kids[i], err = jc.compileNode(k, pos); err != nil {
				return nil, err
			}
		}
		return expr.NewOr(kids...), nil
	case NotNode:
		kid, err := jc.compileNode(t.Kid, pos)
		if err != nil {
			return nil, err
		}
		return expr.NewNot(kid), nil
	default:
		return nil, fmt.Errorf("sql: unknown node type %T", n)
	}
}

// nodeTables collects which FROM tables a node references.
func (jc *joinCompiler) nodeTables(n Node, set map[int]bool) error {
	switch t := n.(type) {
	case nil:
	case ColNode:
		r, err := jc.resolve(t.Name)
		if err != nil {
			return err
		}
		set[r.t] = true
	case LitNode, ParamNode:
	case CmpNode:
		if err := jc.nodeTables(t.L, set); err != nil {
			return err
		}
		return jc.nodeTables(t.R, set)
	case AndNode:
		for _, k := range t.Kids {
			if err := jc.nodeTables(k, set); err != nil {
				return err
			}
		}
	case OrNode:
		for _, k := range t.Kids {
			if err := jc.nodeTables(k, set); err != nil {
				return err
			}
		}
	case NotNode:
		return jc.nodeTables(t.Kid, set)
	default:
		return fmt.Errorf("sql: unknown node type %T", n)
	}
	return nil
}

// conjuncts flattens nested ANDs into a list of top-level conjuncts.
func conjuncts(n Node, out []Node) []Node {
	if a, ok := n.(AndNode); ok {
		for _, k := range a.Kids {
			out = conjuncts(k, out)
		}
		return out
	}
	return append(out, n)
}

// compileJoin builds a core.JoinQuery from a multi-table SELECT: WHERE
// conjuncts are split into per-table local restrictions, cross-table
// equi-join predicates, and a flat-position residual.
func compileJoin(cat *catalog.Catalog, stmt *SelectStmt) (*Compiled, error) {
	jc := &joinCompiler{offs: []int{}}
	seen := map[string]bool{}
	off := 0
	aliased := false
	for i, name := range stmt.Tables {
		eff := name
		if i < len(stmt.Aliases) && stmt.Aliases[i] != "" {
			eff = stmt.Aliases[i]
			aliased = true
		}
		if seen[eff] {
			if eff == name {
				return nil, fmt.Errorf("sql: table %s appears twice in FROM; alias one occurrence (FROM %s a JOIN %s b ON ...)",
					name, name, name)
			}
			return nil, fmt.Errorf("sql: alias %s appears twice in FROM", eff)
		}
		seen[eff] = true
		tab, err := cat.Table(name)
		if err != nil {
			return nil, err
		}
		jc.tables = append(jc.tables, tab)
		jc.names = append(jc.names, eff)
		jc.offs = append(jc.offs, off)
		off += len(tab.Columns)
	}
	jq := &core.JoinQuery{
		Tables: jc.tables,
		Local:  make([]expr.Expr, len(jc.tables)),
		Limit:  stmt.Limit,
	}
	if aliased {
		jq.Names = append([]string(nil), jc.names...)
	}

	switch stmt.Optimize {
	case OptimizeFastFirst:
		jq.Goal = core.GoalFastFirst
	case OptimizeTotalTime:
		jq.Goal = core.GoalTotalTime
	}
	switch {
	case stmt.Exists:
		jq.Control = core.ControlExists
		jq.Limit = 1
	case stmt.Limit > 0:
		jq.Control = core.ControlLimit
	case stmt.CountStar || stmt.Agg != nil:
		jq.Control = core.ControlAggregate
	}

	// Split the WHERE conjunction. A top-level col = col comparison
	// across two tables is an equi-join edge; a conjunct touching one
	// table joins that table's local restriction; anything else spans
	// tables and becomes residual.
	var locals [][]expr.Expr
	locals = make([][]expr.Expr, len(jc.tables))
	var residual []expr.Expr
	if stmt.Where != nil {
		for _, cj := range conjuncts(stmt.Where, nil) {
			if cmp, ok := cj.(CmpNode); ok && cmp.Op == expr.EQ {
				lc, lok := cmp.L.(ColNode)
				rc, rok := cmp.R.(ColNode)
				if lok && rok {
					lr, err := jc.resolve(lc.Name)
					if err != nil {
						return nil, err
					}
					rr, err := jc.resolve(rc.Name)
					if err != nil {
						return nil, err
					}
					if lr.t != rr.t {
						jq.Preds = append(jq.Preds, core.JoinPred{LT: lr.t, LC: lr.c, RT: rr.t, RC: rr.c})
						continue
					}
				}
			}
			set := map[int]bool{}
			if err := jc.nodeTables(cj, set); err != nil {
				return nil, err
			}
			if len(set) == 1 {
				var t int
				for k := range set {
					t = k
				}
				local := func(r colRef) int { return r.c }
				e, err := jc.compileNode(cj, local)
				if err != nil {
					return nil, err
				}
				locals[t] = append(locals[t], e)
			} else {
				e, err := jc.compileNode(cj, jc.flat)
				if err != nil {
					return nil, err
				}
				residual = append(residual, e)
			}
		}
	}
	for t, es := range locals {
		if len(es) == 1 {
			jq.Local[t] = es[0]
		} else if len(es) > 1 {
			jq.Local[t] = expr.NewAnd(es...)
		}
	}
	if len(residual) == 1 {
		jq.Residual = residual[0]
	} else if len(residual) > 1 {
		jq.Residual = expr.NewAnd(residual...)
	}
	if len(jq.Preds) == 0 && jq.Residual == nil {
		return nil, fmt.Errorf("sql: join of %s has no connecting predicate (cross products are not supported)",
			strings.Join(stmt.Tables, ", "))
	}

	if stmt.Columns != nil {
		jq.Projection = make([]int, len(stmt.Columns))
		for i, name := range stmt.Columns {
			r, err := jc.resolve(name)
			if err != nil {
				return nil, err
			}
			jq.Projection[i] = jc.flat(r)
		}
	}
	if stmt.CountStar || stmt.Exists {
		jq.Projection = []int{0}
	}
	if stmt.Agg != nil {
		r, err := jc.resolve(stmt.Agg.Col)
		if err != nil {
			return nil, err
		}
		switch jc.tables[r.t].Columns[r.c].Type {
		case expr.TypeInt, expr.TypeFloat:
		default:
			return nil, fmt.Errorf("sql: %s over non-numeric column %s", stmt.Agg.Kind, stmt.Agg.Col)
		}
		jq.Projection = []int{jc.flat(r)}
	}
	for _, name := range stmt.OrderBy {
		r, err := jc.resolve(name)
		if err != nil {
			return nil, err
		}
		jq.OrderBy = append(jq.OrderBy, jc.flat(r))
	}
	jq.OrderDesc = stmt.OrderDesc
	return &Compiled{Stmt: stmt, Join: jq, CountStar: stmt.CountStar, Exists: stmt.Exists, Explain: stmt.Explain, Analyze: stmt.Analyze, Agg: stmt.Agg}, nil
}

// JoinColumnNames returns the delivered column names of a join result:
// the projected names, or every table's qualified columns when the
// select list is *.
func (c *Compiled) JoinColumnNames() []string {
	st := c.Stmt
	if st.Columns != nil {
		return append([]string(nil), st.Columns...)
	}
	var out []string
	for ti, tab := range c.Join.Tables {
		qual := tab.Name
		if ti < len(c.Join.Names) && c.Join.Names[ti] != "" {
			qual = c.Join.Names[ti]
		}
		for _, col := range tab.Columns {
			out = append(out, qual+"."+col.Name)
		}
	}
	return out
}

// CompileExpr resolves a parsed WHERE-clause node against a table. DML
// execution uses it to build the deletion restriction.
func CompileExpr(cat *catalog.Catalog, table string, n Node) (expr.Expr, error) {
	if n == nil {
		return nil, nil
	}
	tab, err := cat.Table(table)
	if err != nil {
		return nil, err
	}
	return compileNode(tab, n)
}
