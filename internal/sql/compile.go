package sql

import (
	"fmt"

	"rdbdyn/internal/catalog"
	"rdbdyn/internal/core"
	"rdbdyn/internal/expr"
)

// Compiled is a statement bound to a table, ready for execution with
// per-run bindings.
type Compiled struct {
	Stmt  *SelectStmt
	Query *core.Query
	// CountStar marks aggregate execution (engine counts rows).
	CountStar bool
	// Exists marks boolean existence execution.
	Exists bool
	// Agg is the single-column aggregate, if any.
	Agg *Aggregate
	// Explain marks plan description instead of full execution.
	Explain bool
	// Analyze marks EXPLAIN ANALYZE: execute fully, then describe what
	// actually happened.
	Analyze bool
}

// Compile resolves the statement's names against the catalog and builds
// the core query. Section 4's goal-inference rules are applied: a LIMIT
// controller sets fast-first, a COUNT or SORT controller sets
// total-time, otherwise the user's OPTIMIZE FOR request (or the
// default) decides.
func Compile(cat *catalog.Catalog, stmt *SelectStmt) (*Compiled, error) {
	tab, err := cat.Table(stmt.Table)
	if err != nil {
		return nil, err
	}
	q := &core.Query{Table: tab, Limit: stmt.Limit}

	switch stmt.Optimize {
	case OptimizeFastFirst:
		q.Goal = core.GoalFastFirst
	case OptimizeTotalTime:
		q.Goal = core.GoalTotalTime
	}
	// The controlling node, in the paper's priority: LIMIT -> fast
	// first; COUNT -> total time. ORDER BY does not set a SORT
	// controller here: a SORT node only exists when no order-needed
	// index delivers the order, which the optimizer decides at
	// start-retrieval time (its sort fallback applies ControlSort to
	// the inner retrieval).
	switch {
	case stmt.Exists:
		q.Control = core.ControlExists
		q.Limit = 1
	case stmt.Limit > 0:
		q.Control = core.ControlLimit
	case stmt.CountStar || stmt.Agg != nil:
		q.Control = core.ControlAggregate
	}

	if stmt.Where != nil {
		e, err := compileNode(tab, stmt.Where)
		if err != nil {
			return nil, err
		}
		q.Restriction = e
	}
	if stmt.Columns != nil {
		q.Projection = make([]int, len(stmt.Columns))
		for i, name := range stmt.Columns {
			ci, err := tab.ColumnIndex(name)
			if err != nil {
				return nil, err
			}
			q.Projection[i] = ci
		}
	}
	if stmt.CountStar || stmt.Exists {
		// Counting and existence need no column values; project the
		// narrowest thing.
		q.Projection = []int{0}
	}
	if stmt.Agg != nil {
		ci, err := tab.ColumnIndex(stmt.Agg.Col)
		if err != nil {
			return nil, err
		}
		switch tab.Columns[ci].Type {
		case expr.TypeInt, expr.TypeFloat:
		default:
			return nil, fmt.Errorf("sql: %s over non-numeric column %s", stmt.Agg.Kind, stmt.Agg.Col)
		}
		q.Projection = []int{ci}
	}
	for _, name := range stmt.OrderBy {
		ci, err := tab.ColumnIndex(name)
		if err != nil {
			return nil, err
		}
		q.OrderBy = append(q.OrderBy, ci)
	}
	q.OrderDesc = stmt.OrderDesc
	return &Compiled{Stmt: stmt, Query: q, CountStar: stmt.CountStar, Exists: stmt.Exists, Explain: stmt.Explain, Analyze: stmt.Analyze, Agg: stmt.Agg}, nil
}

func compileNode(tab *catalog.Table, n Node) (expr.Expr, error) {
	switch t := n.(type) {
	case ColNode:
		ci, err := tab.ColumnIndex(t.Name)
		if err != nil {
			return nil, err
		}
		return expr.Col(ci, t.Name), nil
	case LitNode:
		return expr.Lit(t.V), nil
	case ParamNode:
		return expr.Var(t.Name), nil
	case CmpNode:
		l, err := compileNode(tab, t.L)
		if err != nil {
			return nil, err
		}
		r, err := compileNode(tab, t.R)
		if err != nil {
			return nil, err
		}
		return expr.NewCmp(t.Op, l, r), nil
	case AndNode:
		kids := make([]expr.Expr, len(t.Kids))
		for i, k := range t.Kids {
			var err error
			if kids[i], err = compileNode(tab, k); err != nil {
				return nil, err
			}
		}
		return expr.NewAnd(kids...), nil
	case OrNode:
		kids := make([]expr.Expr, len(t.Kids))
		for i, k := range t.Kids {
			var err error
			if kids[i], err = compileNode(tab, k); err != nil {
				return nil, err
			}
		}
		return expr.NewOr(kids...), nil
	case NotNode:
		kid, err := compileNode(tab, t.Kid)
		if err != nil {
			return nil, err
		}
		return expr.NewNot(kid), nil
	default:
		return nil, fmt.Errorf("sql: unknown node type %T", n)
	}
}

// CompileExpr resolves a parsed WHERE-clause node against a table. DML
// execution uses it to build the deletion restriction.
func CompileExpr(cat *catalog.Catalog, table string, n Node) (expr.Expr, error) {
	if n == nil {
		return nil, nil
	}
	tab, err := cat.Table(table)
	if err != nil {
		return nil, err
	}
	return compileNode(tab, n)
}
