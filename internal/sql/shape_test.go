package sql

import (
	"strings"
	"testing"

	"rdbdyn/internal/catalog"
	"rdbdyn/internal/expr"
	"rdbdyn/internal/storage"
)

func shapeTable(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New(storage.NewBufferPool(storage.NewDisk(4096), 0))
	tab, err := cat.CreateTable("FAMILIES", []catalog.Column{
		{Name: "ID", Type: expr.TypeInt},
		{Name: "AGE", Type: expr.TypeInt},
		{Name: "CITY", Type: expr.TypeString},
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = tab
	return cat
}

func keyOf(t *testing.T, cat *catalog.Catalog, src string) string {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	c, err := Compile(cat, stmt)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	return c.ShapeKey()
}

func TestShapeKeyIgnoresBindValuesAndOperandOrder(t *testing.T) {
	cat := shapeTable(t)
	a := keyOf(t, cat, "SELECT * FROM FAMILIES WHERE AGE >= :lo AND CITY = :c")
	b := keyOf(t, cat, "SELECT * FROM FAMILIES WHERE CITY = :c AND AGE >= :lo")
	if a != b {
		t.Fatalf("commuted conjunction changed key:\n%s\n%s", a, b)
	}
}

func TestShapeKeyDistinguishesStructure(t *testing.T) {
	cat := shapeTable(t)
	base := keyOf(t, cat, "SELECT * FROM FAMILIES WHERE AGE >= :lo")
	for _, src := range []string{
		"SELECT * FROM FAMILIES WHERE AGE > :lo",   // operator
		"SELECT * FROM FAMILIES WHERE AGE >= 30",   // literal vs param
		"SELECT * FROM FAMILIES WHERE CITY >= :lo", // column
		"SELECT ID FROM FAMILIES WHERE AGE >= :lo", // projection
		"SELECT * FROM FAMILIES WHERE AGE >= :lo ORDER BY ID",
		"SELECT * FROM FAMILIES WHERE AGE >= :lo LIMIT 5",
		"SELECT COUNT(*) FROM FAMILIES WHERE AGE >= :lo",
		"EXISTS(SELECT * FROM FAMILIES WHERE AGE >= :lo)",
		"SELECT * FROM FAMILIES WHERE AGE >= :lo OPTIMIZE FOR TOTAL TIME",
	} {
		if k := keyOf(t, cat, src); k == base {
			t.Errorf("%q collides with base shape key %q", src, base)
		}
	}
}

func TestShapeKeyOrderDirectionAndLimitValue(t *testing.T) {
	cat := shapeTable(t)
	asc := keyOf(t, cat, "SELECT * FROM FAMILIES ORDER BY AGE")
	desc := keyOf(t, cat, "SELECT * FROM FAMILIES ORDER BY AGE DESC")
	if asc == desc {
		t.Fatal("ASC and DESC share a shape key")
	}
	l5 := keyOf(t, cat, "SELECT * FROM FAMILIES LIMIT 5")
	l50 := keyOf(t, cat, "SELECT * FROM FAMILIES LIMIT 50")
	if l5 == l50 {
		t.Fatal("different LIMIT values share a shape key")
	}
}

func TestShapeKeyDeterministic(t *testing.T) {
	cat := shapeTable(t)
	src := "SELECT ID, AGE FROM FAMILIES WHERE (AGE >= :lo AND AGE <= :hi) OR CITY = 'Lund' ORDER BY AGE DESC LIMIT 3"
	k := keyOf(t, cat, src)
	for i := 0; i < 10; i++ {
		if got := keyOf(t, cat, src); got != k {
			t.Fatalf("key not stable: %s vs %s", got, k)
		}
	}
	if !strings.Contains(k, "FAMILIES|") {
		t.Fatalf("key missing table prefix: %s", k)
	}
}
