package sql

import (
	"strconv"

	"rdbdyn/internal/expr"
)

// SelectStmt is the AST of one SELECT statement.
type SelectStmt struct {
	// Columns selected; nil means '*'.
	Columns []string
	// CountStar is true for SELECT COUNT(*).
	CountStar bool
	// Agg holds a single-column aggregate (SUM/AVG/MIN/MAX) when the
	// select list is one aggregate expression.
	Agg *Aggregate
	// Exists is true for EXISTS(SELECT ...): the result is a single
	// boolean row and the retrieval is controlled by an EXISTS node.
	Exists bool
	// Explain is true for EXPLAIN <statement>: the plan is described
	// instead of executed to completion.
	Explain bool
	// Analyze is true for EXPLAIN ANALYZE <statement>: the retrieval is
	// executed to completion and the description includes what actually
	// happened (strategy, rows, attributed I/O) alongside the plan.
	Analyze bool
	// Table is the first (or only) FROM table, kept for the
	// single-table paths; Tables lists every FROM table in syntactic
	// order and always includes Table as its first element.
	Table  string
	Tables []string
	// Aliases holds each FROM table's declared alias ("" when none),
	// parallel to Tables; nil when no table is aliased. Aliases make
	// self-joins expressible: FROM T a JOIN T b ON a.X = b.Y.
	Aliases []string
	Where   Node // nil when absent
	OrderBy []string
	// OrderDesc requests descending order (applies to the whole ORDER
	// BY; mixed directions are rejected).
	OrderDesc bool
	Limit     int // 0 = none
	// Optimize is the user's OPTIMIZE FOR request.
	Optimize OptimizeGoal
	// Src is the raw statement text as handed to Parse ("" for
	// hand-constructed statements); ShapeKey memoizes through it.
	Src string
}

// Aggregate is a single-column aggregate function in the select list.
type Aggregate struct {
	Kind string // SUM, AVG, MIN, MAX
	Col  string
}

// OptimizeGoal mirrors the paper's extended SQL syntax.
type OptimizeGoal uint8

// Optimization requests.
const (
	OptimizeDefault OptimizeGoal = iota
	OptimizeFastFirst
	OptimizeTotalTime
)

// Node is a WHERE-clause AST node.
type Node interface{ node() }

// ColNode references a column by name.
type ColNode struct{ Name string }

// LitNode is a literal value.
type LitNode struct{ V expr.Value }

// ParamNode is a host parameter :name.
type ParamNode struct{ Name string }

// CmpNode compares two operands.
type CmpNode struct {
	Op   expr.CmpOp
	L, R Node
}

// AndNode conjunction, OrNode disjunction, NotNode negation.
type AndNode struct{ Kids []Node }

// OrNode is a disjunction.
type OrNode struct{ Kids []Node }

// NotNode negates its child.
type NotNode struct{ Kid Node }

func (ColNode) node()   {}
func (LitNode) node()   {}
func (ParamNode) node() {}
func (CmpNode) node()   {}
func (AndNode) node()   {}
func (OrNode) node()    {}
func (NotNode) node()   {}

// Parse parses one statement: SELECT ..., EXISTS(SELECT ...), either
// optionally prefixed by EXPLAIN or EXPLAIN ANALYZE.
func Parse(src string) (*SelectStmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	explain := p.acceptKeyword("EXPLAIN")
	analyze := explain && p.acceptKeyword("ANALYZE")
	var stmt *SelectStmt
	if p.acceptKeyword("EXISTS") {
		if p.peek().kind != tokLParen {
			return nil, errf(p.peek().pos, "expected ( after EXISTS")
		}
		p.next()
		stmt, err = p.parseSelect()
		if err != nil {
			return nil, err
		}
		if p.peek().kind != tokRParen {
			return nil, errf(p.peek().pos, "expected ) closing EXISTS")
		}
		p.next()
		if stmt.CountStar || stmt.Agg != nil {
			return nil, errf(0, "EXISTS over an aggregate is not supported")
		}
		stmt.Exists = true
	} else {
		stmt, err = p.parseSelect()
		if err != nil {
			return nil, err
		}
	}
	stmt.Explain = explain
	stmt.Analyze = analyze
	stmt.Src = src
	if p.peek().kind != tokEOF {
		return nil, errf(p.peek().pos, "unexpected %s after statement", p.peek())
	}
	return stmt, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) acceptKeyword(kw string) bool {
	if t := p.peek(); t.kind == tokKeyword && t.text == kw {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return errf(p.peek().pos, "expected %s, got %s", kw, p.peek())
	}
	return nil
}

// parseTableRef consumes one FROM table reference — a table name with an
// optional `[AS] alias` — appending to stmt.Tables (and stmt.Aliases once
// any table is aliased). A bare identifier is unambiguous as an alias:
// every token that can legally follow a table reference (WHERE, JOIN,
// INNER, ON, ORDER, LIMIT, OPTIMIZE, ',', EOF) is a keyword or
// punctuation, never an identifier.
func (p *parser) parseTableRef(stmt *SelectStmt, after string) error {
	tt := p.next()
	if tt.kind != tokIdent {
		return errf(tt.pos, "expected table name%s, got %s", after, tt)
	}
	stmt.Tables = append(stmt.Tables, tt.text)
	alias := ""
	if p.acceptKeyword("AS") {
		at := p.next()
		if at.kind != tokIdent {
			return errf(at.pos, "expected alias after AS, got %s", at)
		}
		alias = at.text
	} else if p.peek().kind == tokIdent {
		alias = p.next().text
	}
	if alias != "" && stmt.Aliases == nil {
		// First alias seen: backfill "" for the preceding tables so the
		// slice stays parallel to Tables.
		stmt.Aliases = make([]string, len(stmt.Tables)-1)
	}
	if stmt.Aliases != nil {
		stmt.Aliases = append(stmt.Aliases, alias)
	}
	return nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{}
	switch t := p.peek(); {
	case t.kind == tokStar:
		p.next()
	case t.kind == tokKeyword && t.text == "COUNT":
		p.next()
		if p.peek().kind != tokLParen {
			return nil, errf(p.peek().pos, "expected ( after COUNT")
		}
		p.next()
		if p.peek().kind != tokStar {
			return nil, errf(p.peek().pos, "only COUNT(*) is supported")
		}
		p.next()
		if p.peek().kind != tokRParen {
			return nil, errf(p.peek().pos, "expected ) after COUNT(*")
		}
		p.next()
		stmt.CountStar = true
	case t.kind == tokKeyword && (t.text == "SUM" || t.text == "AVG" || t.text == "MIN" || t.text == "MAX"):
		p.next()
		if p.peek().kind != tokLParen {
			return nil, errf(p.peek().pos, "expected ( after %s", t.text)
		}
		p.next()
		col := p.next()
		if col.kind != tokIdent {
			return nil, errf(col.pos, "expected column name in %s(), got %s", t.text, col)
		}
		if p.peek().kind != tokRParen {
			return nil, errf(p.peek().pos, "expected ) after %s(%s", t.text, col.text)
		}
		p.next()
		stmt.Agg = &Aggregate{Kind: t.text, Col: col.text}
	default:
		for {
			t := p.next()
			if t.kind != tokIdent {
				return nil, errf(t.pos, "expected column name, got %s", t)
			}
			stmt.Columns = append(stmt.Columns, t.text)
			if p.peek().kind != tokComma {
				break
			}
			p.next()
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	if err := p.parseTableRef(stmt, ""); err != nil {
		return nil, err
	}
	stmt.Table = stmt.Tables[0]
	// Additional FROM tables: a comma list and/or [INNER] JOIN ... ON
	// <pred>. ON predicates are ANDed into WHERE — the compiler pulls
	// equi-join conjuncts back out, so the two spellings are one shape.
	var onPreds []Node
	for {
		if p.peek().kind == tokComma {
			p.next()
			if err := p.parseTableRef(stmt, ""); err != nil {
				return nil, err
			}
			continue
		}
		if p.acceptKeyword("INNER") {
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
		} else if !p.acceptKeyword("JOIN") {
			break
		}
		if err := p.parseTableRef(stmt, " after JOIN"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		pred, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		onPreds = append(onPreds, pred)
	}

	if p.acceptKeyword("WHERE") {
		w, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	if len(onPreds) > 0 {
		kids := make([]Node, 0, len(onPreds)+1)
		kids = append(kids, onPreds...)
		if stmt.Where != nil {
			kids = append(kids, stmt.Where)
		}
		if len(kids) == 1 {
			stmt.Where = kids[0]
		} else {
			stmt.Where = AndNode{Kids: kids}
		}
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		sawAsc, sawDesc := false, false
		for {
			t := p.next()
			if t.kind != tokIdent {
				return nil, errf(t.pos, "expected column name in ORDER BY, got %s", t)
			}
			stmt.OrderBy = append(stmt.OrderBy, t.text)
			switch {
			case p.acceptKeyword("ASC"):
				sawAsc = true
			case p.acceptKeyword("DESC"):
				sawDesc = true
			default:
				sawAsc = true
			}
			if p.peek().kind != tokComma {
				break
			}
			p.next()
		}
		if sawAsc && sawDesc {
			return nil, errf(p.peek().pos, "mixed ASC/DESC directions are not supported")
		}
		stmt.OrderDesc = sawDesc
	}
	if p.acceptKeyword("LIMIT") {
		p.acceptKeyword("TO")
		t := p.next()
		if t.kind != tokInt {
			return nil, errf(t.pos, "expected row count after LIMIT, got %s", t)
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n <= 0 {
			return nil, errf(t.pos, "bad LIMIT count %q", t.text)
		}
		stmt.Limit = n
		if !p.acceptKeyword("ROWS") {
			p.acceptKeyword("ROW")
		}
	}
	if p.acceptKeyword("OPTIMIZE") {
		if err := p.expectKeyword("FOR"); err != nil {
			return nil, err
		}
		switch {
		case p.acceptKeyword("FAST"):
			if err := p.expectKeyword("FIRST"); err != nil {
				return nil, err
			}
			stmt.Optimize = OptimizeFastFirst
		case p.acceptKeyword("TOTAL"):
			if err := p.expectKeyword("TIME"); err != nil {
				return nil, err
			}
			stmt.Optimize = OptimizeTotalTime
		default:
			return nil, errf(p.peek().pos, "expected FAST FIRST or TOTAL TIME")
		}
	}
	return stmt, nil
}

func (p *parser) parseOr() (Node, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	kids := []Node{left}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		kids = append(kids, right)
	}
	if len(kids) == 1 {
		return left, nil
	}
	return OrNode{Kids: kids}, nil
}

func (p *parser) parseAnd() (Node, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	kids := []Node{left}
	for p.acceptKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		kids = append(kids, right)
	}
	if len(kids) == 1 {
		return left, nil
	}
	return AndNode{Kids: kids}, nil
}

func (p *parser) parseNot() (Node, error) {
	if p.acceptKeyword("NOT") {
		kid, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return NotNode{Kid: kid}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Node, error) {
	if p.peek().kind == tokLParen {
		p.next()
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.peek().kind != tokRParen {
			return nil, errf(p.peek().pos, "expected ), got %s", p.peek())
		}
		p.next()
		return inner, nil
	}
	l, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	// Operand-level NOT IN / NOT BETWEEN.
	if p.acceptKeyword("NOT") {
		inner, err := p.parseSuffix(l, true)
		if err != nil {
			return nil, err
		}
		if inner == nil {
			return nil, errf(p.peek().pos, "expected IN or BETWEEN after NOT")
		}
		return inner, nil
	}
	if sfx, err := p.parseSuffix(l, false); err != nil {
		return nil, err
	} else if sfx != nil {
		return sfx, nil
	}
	opTok := p.next()
	if opTok.kind != tokOp {
		return nil, errf(opTok.pos, "expected comparison operator, got %s", opTok)
	}
	var op expr.CmpOp
	switch opTok.text {
	case "=":
		op = expr.EQ
	case "<>":
		op = expr.NE
	case "<":
		op = expr.LT
	case "<=":
		op = expr.LE
	case ">":
		op = expr.GT
	case ">=":
		op = expr.GE
	}
	r, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	return CmpNode{Op: op, L: l, R: r}, nil
}

// parseSuffix handles the IN (...) and BETWEEN a AND b predicate
// suffixes on an operand (nil, nil = no suffix present). IN compiles to
// a disjunction of equalities — which the union scan can cover —
// and BETWEEN to a conjunction of range comparisons.
func (p *parser) parseSuffix(l Node, negate bool) (Node, error) {
	switch {
	case p.acceptKeyword("IN"):
		if p.peek().kind != tokLParen {
			return nil, errf(p.peek().pos, "expected ( after IN")
		}
		p.next()
		var kids []Node
		for {
			v, err := p.parseOperand()
			if err != nil {
				return nil, err
			}
			switch v.(type) {
			case LitNode, ParamNode:
			default:
				return nil, errf(p.peek().pos, "IN list entries must be literals or parameters")
			}
			kids = append(kids, CmpNode{Op: expr.EQ, L: l, R: v})
			if p.peek().kind == tokComma {
				p.next()
				continue
			}
			break
		}
		if p.peek().kind != tokRParen {
			return nil, errf(p.peek().pos, "expected ) closing IN list")
		}
		p.next()
		var out Node = OrNode{Kids: kids}
		if len(kids) == 1 {
			out = kids[0]
		}
		if negate {
			out = NotNode{Kid: out}
		}
		return out, nil
	case p.acceptKeyword("BETWEEN"):
		lo, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		var out Node = AndNode{Kids: []Node{
			CmpNode{Op: expr.GE, L: l, R: lo},
			CmpNode{Op: expr.LE, L: l, R: hi},
		}}
		if negate {
			out = NotNode{Kid: out}
		}
		return out, nil
	default:
		return nil, nil
	}
}

func (p *parser) parseOperand() (Node, error) {
	t := p.next()
	switch t.kind {
	case tokIdent:
		return ColNode{Name: t.text}, nil
	case tokParam:
		return ParamNode{Name: t.text}, nil
	case tokInt:
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, errf(t.pos, "bad integer %q", t.text)
		}
		return LitNode{V: expr.Int(v)}, nil
	case tokFloat:
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, errf(t.pos, "bad float %q", t.text)
		}
		return LitNode{V: expr.Float(v)}, nil
	case tokString:
		return LitNode{V: expr.Str(t.text)}, nil
	default:
		return nil, errf(t.pos, "expected operand, got %s", t)
	}
}
