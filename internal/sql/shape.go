package sql

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// shapeCache memoizes ShapeKey per whitespace-normalized statement
// text: rendering the key walks the whole WHERE tree and sorts
// commutative operands, which repeated identical statements (the plan
// cache's bread and butter) would otherwise pay on every execution.
// Bounded by wholesale eviction — the workloads that benefit cycle a
// small statement vocabulary, so a full reset is a non-event.
var shapeCache = struct {
	sync.Mutex
	m map[string]string
}{m: map[string]string{}}

const shapeCacheCap = 4096

// ShapeKey renders the compiled statement's plan-relevant shape as a
// canonical string. Two statements with the same key ask the optimizer
// the same question: same table, same restriction structure (bind
// parameters identified by name, not by the values later bound), same
// projection, order, limit, and execution control. The engine's plan
// cache uses the key to recognize repeated shapes; bind VALUES are
// deliberately excluded, which is exactly why a cached plan can go
// stale and must earn promotion through repeated consistent wins.
//
// The rendering normalizes commutative structure — AND/OR operands are
// sorted by their rendered form — so `A AND B` and `B AND A` share an
// entry. It does not attempt deeper equivalences (De Morgan, range
// merging): a miss there costs one extra cache entry, never a wrong
// plan.
func (c *Compiled) ShapeKey() string {
	norm := shapeCacheKey(c.Stmt.Src)
	if norm != "" {
		shapeCache.Lock()
		k, ok := shapeCache.m[norm]
		shapeCache.Unlock()
		if ok {
			return k
		}
	}
	key := c.renderShapeKey()
	if norm != "" {
		shapeCache.Lock()
		if len(shapeCache.m) >= shapeCacheCap {
			shapeCache.m = make(map[string]string, shapeCacheCap)
		}
		shapeCache.m[norm] = key
		shapeCache.Unlock()
	}
	return key
}

// shapeCacheKey normalizes statement text for memoization: runs of
// whitespace collapse to one space, so formatting differences share an
// entry. Statements containing quotes are not memoized ("" return) —
// whitespace inside a string literal is significant, and collapsing it
// could alias two distinct statements.
func shapeCacheKey(src string) string {
	if src == "" || strings.ContainsAny(src, `'"`) {
		return ""
	}
	return strings.Join(strings.Fields(src), " ")
}

// renderShapeKey does the actual canonical rendering.
func (c *Compiled) renderShapeKey() string {
	st := c.Stmt
	var b strings.Builder
	if len(st.Tables) > 1 || len(st.Aliases) > 0 {
		// Each table renders with its alias ("T a") so FROM T a JOIN T b
		// keys differently from FROM T x JOIN T b only through the
		// predicate text, while aliased and unaliased spellings of the
		// same catalog tables stay distinct shapes.
		refs := make([]string, len(st.Tables))
		for i, name := range st.Tables {
			refs[i] = name
			if i < len(st.Aliases) && st.Aliases[i] != "" {
				refs[i] = name + " " + st.Aliases[i]
			}
		}
		b.WriteString(strings.Join(refs, ","))
	} else {
		b.WriteString(st.Table)
	}
	b.WriteByte('|')
	switch {
	case c.Exists:
		b.WriteString("exists")
	case c.CountStar:
		b.WriteString("count(*)")
	case c.Agg != nil:
		fmt.Fprintf(&b, "%s(%s)", c.Agg.Kind, c.Agg.Col)
	case st.Columns == nil:
		b.WriteByte('*')
	default:
		b.WriteString(strings.Join(st.Columns, ","))
	}
	b.WriteByte('|')
	b.WriteString(shapeNode(st.Where))
	b.WriteByte('|')
	b.WriteString(strings.Join(st.OrderBy, ","))
	if st.OrderDesc {
		b.WriteString(" desc")
	}
	b.WriteByte('|')
	fmt.Fprintf(&b, "limit=%d|opt=%d", st.Limit, st.Optimize)
	return b.String()
}

// shapeNode renders one WHERE node canonically.
func shapeNode(n Node) string {
	switch t := n.(type) {
	case nil:
		return ""
	case ColNode:
		return t.Name
	case LitNode:
		return t.V.String()
	case ParamNode:
		return ":" + t.Name
	case CmpNode:
		return fmt.Sprintf("(%s %s %s)", shapeNode(t.L), t.Op, shapeNode(t.R))
	case AndNode:
		return shapeKids("and", t.Kids)
	case OrNode:
		return shapeKids("or", t.Kids)
	case NotNode:
		return fmt.Sprintf("not(%s)", shapeNode(t.Kid))
	default:
		return fmt.Sprintf("?%T", n)
	}
}

func shapeKids(op string, kids []Node) string {
	parts := make([]string, len(kids))
	for i, k := range kids {
		parts[i] = shapeNode(k)
	}
	sort.Strings(parts)
	return op + "(" + strings.Join(parts, ";") + ")"
}
