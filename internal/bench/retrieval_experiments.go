package bench

import (
	"fmt"
	"math/rand"

	"rdbdyn/internal/core"
	"rdbdyn/internal/engine"
	"rdbdyn/internal/expr"
	"rdbdyn/internal/workload"
)

// familiesSpec is the shared T4.A / T7.* fixture: the paper's FAMILIES
// table with a wide-domain AGE column (so sub-page selectivities exist)
// and padding that yields realistic rows-per-page.
func familiesSpec(rows int) workload.TableSpec {
	return workload.TableSpec{
		Name: "FAMILIES",
		Rows: rows,
		Columns: []workload.ColumnSpec{
			{Name: "ID", Gen: &workload.Seq{}},
			{Name: "AGE", Gen: workload.Uniform{Lo: 0, Hi: 10000}},
			{Name: "CITY", Gen: &workload.Zipf{S: 1.3, V: 1, N: 1000}},
			{Name: "PAD", Gen: workload.Pad{Len: 60}},
		},
		Indexes: [][]string{{"AGE"}},
		Seed:    101,
	}
}

// HostVariable regenerates the paper's Section 4 motivating example:
// "select * from FAMILIES where AGE >= :A1" with :A1 swinging between
// all-rows and no-rows. Contenders: the dynamic optimizer (re-plans per
// run), a static plan frozen by sniffing a selective first binding, a
// static plan frozen with compile-time defaults, and the pure fixed
// strategies.
func HostVariable(rows int) (*Report, error) {
	if rows <= 0 {
		rows = 50000
	}
	l, err := newLab(256, core.DefaultConfig(), familiesSpec(rows))
	if err != nil {
		return nil, err
	}
	stmt, err := l.db.Prepare("SELECT * FROM FAMILIES WHERE AGE >= :A1")
	if err != nil {
		return nil, err
	}
	frozenSniffed, err := stmt.Freeze(engine.Binds{"A1": 9998})
	if err != nil {
		return nil, err
	}
	frozenDefault, err := stmt.Freeze(nil)
	if err != nil {
		return nil, err
	}
	ageIx := l.tab.Indexes[0]
	r := &Report{
		ID:    "T4.A",
		Title: fmt.Sprintf("Host-variable sensitivity: AGE >= :A1 over %d rows, %d pages (paper Section 4)", rows, l.tab.Pages()),
		Header: []string{"A1", "sel", "rows", "dynamic I/O", "frozen-sniffed I/O",
			"frozen-default I/O", "fixed Fscan I/O", "fixed Tscan I/O", "dynamic strategy"},
	}
	r.Notef("frozen-sniffed plan: %s; frozen-default plan: %s", frozenSniffed.Plan, frozenDefault.Plan)
	for _, a1 := range []int64{9999, 9990, 9900, 9000, 5000, 0} {
		binds := engine.Binds{"A1": a1}
		nRows, dynIO, st, err := l.runStmt(stmt, binds, 0)
		if err != nil {
			return nil, err
		}
		_, snIO, err := l.runFrozen(frozenSniffed, binds, 0)
		if err != nil {
			return nil, err
		}
		_, dfIO, err := l.runFrozen(frozenDefault, binds, 0)
		if err != nil {
			return nil, err
		}
		q := &core.Query{
			Table:       l.tab,
			Restriction: mustRestriction(l, "AGE", expr.GE, a1),
			Binds:       nil,
		}
		_, fsIO, err := l.runFixed(q, core.FixedStrategy{Kind: core.StrategyFscan, Index: ageIx}, 0)
		if err != nil {
			return nil, err
		}
		_, tsIO, err := l.runFixed(q, core.FixedStrategy{Kind: core.StrategyTscan}, 0)
		if err != nil {
			return nil, err
		}
		sel := float64(nRows) / float64(rows)
		r.AddRow(n(a1), f(sel), n(int64(nRows)), n(dynIO.IOCost()), n(snIO.IOCost()),
			n(dfIO.IOCost()), n(fsIO.IOCost()), n(tsIO.IOCost()), st.Strategy)
	}
	r.Notef("shape to reproduce: dynamic tracks min(Fscan, Tscan) across the whole sweep;")
	r.Notef("each frozen plan is catastrophic at one end of it.")
	return r, nil
}

func mustRestriction(l *lab, col string, op expr.CmpOp, v int64) expr.Expr {
	ci, err := l.tab.ColumnIndex(col)
	if err != nil {
		panic(err)
	}
	return expr.NewCmp(op, expr.Col(ci, col), expr.Lit(expr.Int(v)))
}

// EstimationStudy regenerates the Section 5 estimation claims: the
// descent-to-split-node estimate is cheap, always current, and good for
// small ranges; the refined edge descent and ranked sampling trade a
// little more I/O for more precision.
func EstimationStudy(rows int) (*Report, error) {
	if rows <= 0 {
		rows = 100000
	}
	spec := workload.TableSpec{
		Name: "E",
		Rows: rows,
		Columns: []workload.ColumnSpec{
			{Name: "K", Gen: workload.Uniform{Lo: 0, Hi: int64(rows)}},
			{Name: "Z", Gen: &workload.Zipf{S: 1.4, V: 1, N: 10000}},
		},
		Indexes: [][]string{{"K"}, {"Z"}},
		Seed:    55,
	}
	l, err := newLab(0, core.DefaultConfig(), spec)
	if err != nil {
		return nil, err
	}
	kIx, err := l.mustIndex("E_IX0_K")
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:    "T5.E",
		Title: fmt.Sprintf("Range estimation quality and cost over %d uniform keys (paper Section 5)", rows),
		Header: []string{"range width", "truth", "descent k*f^(l-1)", "refined", "sample-64",
			"descent I/O", "Tscan I/O equivalent"},
	}
	rng := rand.New(rand.NewSource(5))
	for _, width := range []int64{1, 10, 100, 1000, 10000, int64(rows) / 2} {
		lo := rng.Int63n(int64(rows) - width)
		rgLo := expr.Bound{Value: expr.Int(lo), Inclusive: true, Present: true}
		rgHi := expr.Bound{Value: expr.Int(lo + width), Present: true}
		rg := expr.Range{Lo: rgLo, Hi: rgHi}
		kl, kh := rg.EncodedBounds()
		truth, err := kIx.Tree.CountRange(kl, kh)
		if err != nil {
			return nil, err
		}
		l.db.Pool().EvictAll()
		l.db.Pool().ResetStats()
		est, err := kIx.Tree.EstimateRange(kl, kh)
		if err != nil {
			return nil, err
		}
		descCost := l.db.Pool().Stats().IOCost()
		refined, _, err := kIx.Tree.EstimateRangeRefined(kl, kh)
		if err != nil {
			return nil, err
		}
		_, _, sampled, err := kIx.Tree.SampleRange(rng, kl, kh, 64)
		if err != nil {
			return nil, err
		}
		r.AddRow(n(width), n(truth), f(est.RIDs), f(refined), n(sampled),
			n(descCost), n(int64(l.tab.Pages())))
	}
	r.Notef("shape to reproduce: descent cost ~ tree height per probe, orders below a scan;")
	r.Notef("exact for leaf-resolved (small) ranges, coarser as ranges span more children.")
	return r, nil
}

// JscanStudy regenerates the Section 6 claims: the two-stage
// competition eliminates unproductive index scans (here a correlated
// second index whose intersection cannot shrink the list) and the
// dynamic criterion beats the statically-thresholded variant of
// [MoHa90] because it readjusts to the measured guaranteed best.
func JscanStudy(rows int) (*Report, error) {
	if rows <= 0 {
		rows = 40000
	}
	spec := workload.TableSpec{
		Name: "J",
		Rows: rows,
		Columns: []workload.ColumnSpec{
			{Name: "A", Gen: workload.Uniform{Lo: 0, Hi: 1000}},
			{Name: "B", Gen: workload.Correlated{Source: 0, Noise: 3}}, // ~= A
			{Name: "C", Gen: workload.Uniform{Lo: 0, Hi: 1000}},        // independent, wide
			{Name: "D", Gen: workload.Uniform{Lo: 0, Hi: 1000}},        // independent, wide
			{Name: "PAD", Gen: workload.Pad{Len: 50}},
		},
		Indexes: [][]string{{"A"}, {"B"}, {"C"}, {"D"}},
		Seed:    77,
	}
	r := &Report{
		ID:     "T6.J",
		Title:  "Jscan two-stage competition: correlated indexes and unproductive scans (paper Section 6)",
		Header: []string{"executor", "I/O", "rows", "final list", "strategy"},
	}
	// A < 5 is tiny (~0.5%); B < 8 is correlated with A so its scan
	// cannot shrink the list; C and D carry wide, nearly useless
	// restrictions whose scans only a readjusted guaranteed-best cost
	// can prove pointless.
	sqlText := "SELECT * FROM J WHERE A < 5 AND B < 8 AND C < 800 AND D < 900"
	type contender struct {
		name string
		cfg  core.Config
	}
	base := core.DefaultConfig()
	static := base
	static.StaticThresholds = true
	noComp := base
	noComp.DisableCompetition = true
	cons := []contender{
		{"dynamic (paper)", base},
		{"static thresholds [MoHa90]", static},
		{"no competition", noComp},
	}
	for _, c := range cons {
		l, err := newLab(256, c.cfg, spec)
		if err != nil {
			return nil, err
		}
		stmt, err := l.db.Prepare(sqlText)
		if err != nil {
			return nil, err
		}
		nRows, io, st, err := l.runStmt(stmt, nil, 0)
		if err != nil {
			return nil, err
		}
		fin := "-"
		if st.FinalListLen >= 0 {
			fin = n(int64(st.FinalListLen))
		}
		r.AddRow(c.name, n(io.IOCost()), n(int64(nRows)), fin, st.Strategy)
	}
	// Fixed baselines on a fresh lab.
	l, err := newLab(256, base, spec)
	if err != nil {
		return nil, err
	}
	aCol, _ := l.tab.ColumnIndex("A")
	bCol, _ := l.tab.ColumnIndex("B")
	cCol, _ := l.tab.ColumnIndex("C")
	dCol, _ := l.tab.ColumnIndex("D")
	restriction := expr.NewAnd(
		expr.NewCmp(expr.LT, expr.Col(aCol, "A"), expr.Lit(expr.Int(5))),
		expr.NewCmp(expr.LT, expr.Col(bCol, "B"), expr.Lit(expr.Int(8))),
		expr.NewCmp(expr.LT, expr.Col(cCol, "C"), expr.Lit(expr.Int(800))),
		expr.NewCmp(expr.LT, expr.Col(dCol, "D"), expr.Lit(expr.Int(900))),
	)
	q := &core.Query{Table: l.tab, Restriction: restriction}
	for _, fx := range []core.FixedStrategy{
		{Kind: core.StrategyFscan, Index: l.tab.Indexes[0]},
		{Kind: core.StrategyTscan},
	} {
		nRows, io, err := l.runFixed(q, fx, 0)
		if err != nil {
			return nil, err
		}
		r.AddRow("fixed "+fx.String(), n(io.IOCost()), n(int64(nRows)), "-", fx.String())
	}
	r.Notef("B is A plus tiny noise: its scan cannot shrink A's RID list, so the dynamic")
	r.Notef("competition abandons or skips it; C's huge range is skipped by the scan-cost pre-check.")
	return r, nil
}

// GoalInference regenerates the Section 4 goal-derivation rules on SQL
// statements, including the analog of the paper's three-level example.
func GoalInference() (*Report, error) {
	l, err := newLab(0, core.DefaultConfig(), familiesSpec(1000))
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:     "T4.G",
		Title:  "Optimization-goal inference (paper Section 4)",
		Header: []string{"statement", "controlling node", "goal"},
	}
	cases := []string{
		"SELECT * FROM FAMILIES WHERE AGE > 10 LIMIT TO 2 ROWS",
		"SELECT COUNT(*) FROM FAMILIES WHERE AGE > 10",
		"SELECT * FROM FAMILIES WHERE AGE > 10 ORDER BY AGE",
		"SELECT * FROM FAMILIES WHERE AGE > 10",
		"SELECT * FROM FAMILIES WHERE AGE > 10 OPTIMIZE FOR FAST FIRST",
		"SELECT * FROM FAMILIES WHERE AGE > 10 OPTIMIZE FOR TOTAL TIME",
		"SELECT * FROM FAMILIES WHERE AGE > 10 LIMIT 2 OPTIMIZE FOR TOTAL TIME",
	}
	ctlName := map[core.ControlNode]string{
		core.ControlNone: "none", core.ControlLimit: "LIMIT",
		core.ControlSort: "SORT", core.ControlAggregate: "aggregate",
		core.ControlExists: "EXISTS",
	}
	for _, src := range cases {
		stmt, err := l.db.Prepare(src)
		if err != nil {
			return nil, err
		}
		// Execute once to prove the statement runs.
		res, err := stmt.Query(nil)
		if err != nil {
			return nil, err
		}
		if _, err := drainResult(res, 1); err != nil {
			return nil, err
		}
		q := stmt.CoreQuery()
		r.AddRow(src, ctlName[q.Control], q.EffectiveGoal().String())
	}
	r.Notef("paper rule: EXISTS/LIMIT control -> fast-first; SORT/aggregate control -> total-time;")
	r.Notef("otherwise the user's OPTIMIZE FOR request or the default applies.")
	return r, nil
}
