package bench

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"rdbdyn/internal/catalog"
	"rdbdyn/internal/core"
	"rdbdyn/internal/engine"
	"rdbdyn/internal/estimate"
	"rdbdyn/internal/expr"
	"rdbdyn/internal/feedback"
)

// JoinScenarioResult is one row of BENCH_join.json: the same
// three-table join run statically (the plan chosen up front runs to
// completion, as a freezing optimizer would) and dynamically (staged
// execution with mid-flight re-optimization), on twin databases.
type JoinScenarioResult struct {
	Name string `json:"name"`
	SQL  string `json:"sql"`

	StaticPlan    string  `json:"static_plan"`
	StaticIO      int64   `json:"static_io"`
	StaticMicros  float64 `json:"static_micros"`
	DynamicPlan   string  `json:"dynamic_plan"`
	DynamicIO     int64   `json:"dynamic_io"`
	DynamicMicros float64 `json:"dynamic_micros"`

	Rows            int     `json:"rows"`
	Reoptimizations int     `json:"reoptimizations"`
	IOReductionX    float64 `json:"io_reduction_x"`
}

// HashJoinResult is the hash_join series of BENCH_join.json: the same
// unindexed equi-key join run with each forced scan-based competitor
// and then dynamically, where the per-stage competition should settle
// on the build/probe hash join.
type HashJoinResult struct {
	SQL string `json:"sql"`

	NLPlan   string  `json:"nl_plan"`
	NLIO     int64   `json:"nl_io"`
	NLMicros float64 `json:"nl_micros"`

	INLPlan   string  `json:"inl_plan"`
	INLIO     int64   `json:"inl_io"`
	INLMicros float64 `json:"inl_micros"`

	DynamicPlan   string  `json:"dynamic_plan"`
	DynamicIO     int64   `json:"dynamic_io"`
	DynamicMicros float64 `json:"dynamic_micros"`

	Rows int `json:"rows"`
	// IOReductionX is attributed I/O of the best forced competitor over
	// the dynamic (hash-join) run.
	IOReductionX float64 `json:"io_reduction_x"`
}

// SortAvoidanceResult is the sort_avoidance series of BENCH_join.json:
// an ORDER BY join run with sort-order-aware planning against a twin
// with avoidance disabled. Both legs run the same stages, so their
// attributed I/O should tie; the aware leg skips the final materialized
// sort (a CPU saving the cost model prices at SortCostModel pages).
type SortAvoidanceResult struct {
	SQL string `json:"sql"`

	BaselinePlan   string  `json:"baseline_plan"`
	BaselineIO     int64   `json:"baseline_io"`
	BaselineMicros float64 `json:"baseline_micros"`

	AwarePlan   string  `json:"aware_plan"`
	AwareIO     int64   `json:"aware_io"`
	AwareMicros float64 `json:"aware_micros"`

	Rows          int     `json:"rows"`
	SortAvoided   bool    `json:"sort_avoided"`
	SortCostModel float64 `json:"sort_cost_model"`
}

// JoinResult is the JSON shape of BENCH_join.json.
type JoinResult struct {
	Customers   int     `json:"customers"`
	Orders      int     `json:"orders"`
	Items       int     `json:"items"`
	PoolFrames  int     `json:"pool_frames"`
	ReoptFactor float64 `json:"reopt_factor"`

	Scenarios []JoinScenarioResult `json:"scenarios"`

	// SkewedIOReductionX is the headline number: attributed I/O of the
	// static plan over the dynamic run under skewed statistics.
	SkewedIOReductionX float64 `json:"skewed_io_reduction_x"`

	HashJoin      *HashJoinResult      `json:"hash_join"`
	SortAvoidance *SortAvoidanceResult `json:"sort_avoidance"`
}

const joinBenchSQL = "SELECT CUST.NAME, ORD.QTY, ITEM.KIND FROM CUST JOIN ORD ON CUST.ID = ORD.CUST JOIN ITEM ON ORD.ITEM = ITEM.ID WHERE SEG = 0"

// newJoinBenchDB builds one CUST/ORD/ITEM database under a bounded
// buffer pool. SEG=0 covers 60% of customers, so the unsargable 10%
// guess already undershoots; the skewed scenario compounds it with a
// poisoned feedback correction.
func newJoinBenchDB(nCust, nOrd, nItem, frames int) (*engine.DB, error) {
	db := engine.Open(engine.Options{
		PoolFrames: frames,
		Optimizer:  core.Config{RaceFactor: -1},
	})
	if _, err := db.CreateTable("CUST",
		catalog.Column{Name: "ID", Type: expr.TypeInt},
		catalog.Column{Name: "SEG", Type: expr.TypeInt},
		catalog.Column{Name: "NAME", Type: expr.TypeString},
	); err != nil {
		return nil, err
	}
	if _, err := db.CreateTable("ORD",
		catalog.Column{Name: "ID", Type: expr.TypeInt},
		catalog.Column{Name: "CUST", Type: expr.TypeInt},
		catalog.Column{Name: "ITEM", Type: expr.TypeInt},
		catalog.Column{Name: "QTY", Type: expr.TypeInt},
		catalog.Column{Name: "PAD", Type: expr.TypeString},
	); err != nil {
		return nil, err
	}
	if _, err := db.CreateTable("ITEM",
		catalog.Column{Name: "ID", Type: expr.TypeInt},
		catalog.Column{Name: "KIND", Type: expr.TypeInt},
	); err != nil {
		return nil, err
	}
	for _, ix := range [][3]string{
		{"CUST", "CUST_ID_IX", "ID"},
		{"ORD", "ORD_CUST_IX", "CUST"},
		{"ITEM", "ITEM_ID_IX", "ID"},
	} {
		if _, err := db.CreateIndex(ix[0], ix[1], ix[2]); err != nil {
			return nil, err
		}
	}
	pad := strings.Repeat("x", 400)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < nCust; i++ {
		seg := int(rng.Int63n(10))
		if seg < 6 {
			seg = 0
		}
		if err := db.Insert("CUST", i, seg, fmt.Sprintf("c%05d", i)); err != nil {
			return nil, err
		}
	}
	for i := 0; i < nOrd; i++ {
		if err := db.Insert("ORD", i, int(rng.Int63n(int64(nCust))),
			int(rng.Int63n(int64(nItem))), 1+int(rng.Int63n(9)), pad); err != nil {
			return nil, err
		}
	}
	for i := 0; i < nItem; i++ {
		if err := db.Insert("ITEM", i, int(rng.Int63n(5))); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// poisonedFeedback fabricates the skew: a learned correction claiming
// CUST whole-table guesses run 16x over, shrinking the driver estimate
// far below its true cardinality. The first sample adopts the ratio and
// the registry clamps it at the 1/16 floor.
func poisonedFeedback() *feedback.Registry {
	fb := feedback.New(0)
	fb.ObserveCardinality("CUST", "", 160, 10)
	return fb
}

// joinQueryFor compiles the bench SQL against db's catalog.
func joinQueryFor(db *engine.DB) (*core.JoinQuery, error) {
	stmt, err := db.Prepare(joinBenchSQL)
	if err != nil {
		return nil, err
	}
	jq := stmt.JoinQuery()
	if jq == nil {
		return nil, fmt.Errorf("join bench: %q did not compile to a join", joinBenchSQL)
	}
	return jq, nil
}

// runJoinLeg executes one leg on its own twin database with its own
// optimizer and (possibly poisoned) feedback registry. static=true
// plans once and replays that plan; static=false runs the full dynamic
// executor.
func runJoinLeg(nCust, nOrd, nItem, frames int, fb *feedback.Registry, static bool) (plan string, n int, io int64, micros float64, reopts int, err error) {
	db, err := newJoinBenchDB(nCust, nOrd, nItem, frames)
	if err != nil {
		return "", 0, 0, 0, 0, err
	}
	jq, err := joinQueryFor(db)
	if err != nil {
		return "", 0, 0, 0, 0, err
	}
	opt := core.NewOptimizer(core.Config{RaceFactor: -1, Feedback: fb})
	ec := core.NewExecCtx(context.Background(), 0)
	db.Pool().EvictAll()
	db.Pool().ResetStats()
	start := time.Now()
	var rows core.Rows
	if static {
		p, perr := opt.PlanJoin(ec, jq)
		if perr != nil {
			return "", 0, 0, 0, 0, perr
		}
		rows = opt.RunJoinPlan(ec, jq, p)
	} else {
		rows = opt.RunJoin(ec, jq)
	}
	for {
		_, ok, nerr := rows.Next()
		if nerr != nil {
			return "", 0, 0, 0, 0, nerr
		}
		if !ok {
			break
		}
		n++
	}
	micros = float64(time.Since(start).Microseconds())
	if cerr := rows.Close(); cerr != nil {
		return "", 0, 0, 0, 0, cerr
	}
	st := rows.Stats()
	for _, ev := range st.Events {
		if ev.Kind == core.EvJoinReoptimized {
			reopts++
		}
	}
	return st.Strategy, n, st.IO.IOCost(), micros, reopts, nil
}

// newHashJoinBenchDB builds the unindexed-equi-key schema: ORD's join
// key (CUST) deliberately has no index, so index-probe operators cannot
// serve the join, while the selective REGION restriction (1% of orders)
// gives the hash join a cheap index-assisted build. ORD rows are fat,
// so any plan that scans the whole orders heap pays for it.
func newHashJoinBenchDB(nCust, nOrd, frames int) (*engine.DB, error) {
	db := engine.Open(engine.Options{
		PoolFrames: frames,
		Optimizer:  core.Config{RaceFactor: -1},
	})
	if _, err := db.CreateTable("CUST",
		catalog.Column{Name: "ID", Type: expr.TypeInt},
		catalog.Column{Name: "SEG", Type: expr.TypeInt},
		catalog.Column{Name: "NAME", Type: expr.TypeString},
	); err != nil {
		return nil, err
	}
	if _, err := db.CreateTable("ORD",
		catalog.Column{Name: "ID", Type: expr.TypeInt},
		catalog.Column{Name: "CUST", Type: expr.TypeInt},
		catalog.Column{Name: "REGION", Type: expr.TypeInt},
		catalog.Column{Name: "QTY", Type: expr.TypeInt},
		catalog.Column{Name: "PAD", Type: expr.TypeString},
	); err != nil {
		return nil, err
	}
	for _, ix := range [][3]string{
		{"CUST", "CUST_ID_IX", "ID"},
		{"ORD", "ORD_REGION_IX", "REGION"},
	} {
		if _, err := db.CreateIndex(ix[0], ix[1], ix[2]); err != nil {
			return nil, err
		}
	}
	pad := strings.Repeat("x", 800)
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < nCust; i++ {
		if err := db.Insert("CUST", i, int(rng.Int63n(5)), fmt.Sprintf("c%05d", i)); err != nil {
			return nil, err
		}
	}
	for i := 0; i < nOrd; i++ {
		if err := db.Insert("ORD", i, int(rng.Int63n(int64(nCust))),
			i%100, 1+int(rng.Int63n(9)), pad); err != nil {
			return nil, err
		}
	}
	return db, nil
}

const hashJoinBenchSQL = "SELECT CUST.NAME, ORD.QTY FROM CUST JOIN ORD ON CUST.ID = ORD.CUST WHERE ORD.REGION = 3"

// runHashJoinLeg runs the hash_join series SQL on its own twin
// database. plan=nil runs the full dynamic competition; otherwise the
// forced plan replays without re-optimization.
func runHashJoinLeg(nCust, nOrd, frames int, plan *core.JoinPlan) (desc string, n int, io int64, micros float64, err error) {
	db, err := newHashJoinBenchDB(nCust, nOrd, frames)
	if err != nil {
		return "", 0, 0, 0, err
	}
	stmt, err := db.Prepare(hashJoinBenchSQL)
	if err != nil {
		return "", 0, 0, 0, err
	}
	jq := stmt.JoinQuery()
	if jq == nil {
		return "", 0, 0, 0, fmt.Errorf("hash-join bench: %q did not compile to a join", hashJoinBenchSQL)
	}
	opt := core.NewOptimizer(core.Config{RaceFactor: -1})
	ec := core.NewExecCtx(context.Background(), 0)
	db.Pool().EvictAll()
	db.Pool().ResetStats()
	start := time.Now()
	var rows core.Rows
	if plan != nil {
		rows = opt.RunJoinPlan(ec, jq, plan)
	} else {
		rows = opt.RunJoin(ec, jq)
	}
	for {
		_, ok, nerr := rows.Next()
		if nerr != nil {
			return "", 0, 0, 0, nerr
		}
		if !ok {
			break
		}
		n++
	}
	micros = float64(time.Since(start).Microseconds())
	if cerr := rows.Close(); cerr != nil {
		return "", 0, 0, 0, cerr
	}
	st := rows.Stats()
	return st.Strategy, n, st.IO.IOCost(), micros, nil
}

// runHashJoinSeries runs the forced nested-loop and index-probe
// competitors plus the dynamic leg and enforces the acceptance gate:
// the dynamic run must settle on hj and beat the best forced competitor
// by at least 3x attributed I/O.
func runHashJoinSeries(nCust, nOrd, frames int) (*HashJoinResult, error) {
	r := &HashJoinResult{SQL: hashJoinBenchSQL}
	// Forced nested loop: CUST drives, ORD rescanned as the inner.
	nlPlan := &core.JoinPlan{Stages: []core.JoinStagePlan{
		{Table: 0, Operator: "tscan", EstRows: float64(nCust)},
		{Table: 1, Operator: core.JoinOpNL, EstRows: 1},
	}}
	// Forced index probe: the restricted ORD side drives and probes CUST
	// through CUST_ID_IX — the best an index-nested-loop plan can do
	// when the join key itself is unindexed on ORD. (ridx degenerates to
	// inl here: the probe side carries no local restriction to bitmap.)
	inlPlan := &core.JoinPlan{Stages: []core.JoinStagePlan{
		{Table: 1, Operator: "tscan", EstRows: float64(nOrd) / 100},
		{Table: 0, Operator: core.JoinOpINL, Index: "CUST_ID_IX", EstRows: 1},
	}}
	var nNL, nINL, nDyn int
	var err error
	if r.NLPlan, nNL, r.NLIO, r.NLMicros, err = runHashJoinLeg(nCust, nOrd, frames, nlPlan); err != nil {
		return nil, fmt.Errorf("hash-join bench (nl): %w", err)
	}
	if r.INLPlan, nINL, r.INLIO, r.INLMicros, err = runHashJoinLeg(nCust, nOrd, frames, inlPlan); err != nil {
		return nil, fmt.Errorf("hash-join bench (inl): %w", err)
	}
	if r.DynamicPlan, nDyn, r.DynamicIO, r.DynamicMicros, err = runHashJoinLeg(nCust, nOrd, frames, nil); err != nil {
		return nil, fmt.Errorf("hash-join bench (dynamic): %w", err)
	}
	if nNL != nDyn || nINL != nDyn {
		return nil, fmt.Errorf("hash-join bench: row counts diverge (nl %d, inl %d, dynamic %d)", nNL, nINL, nDyn)
	}
	r.Rows = nDyn
	if !strings.Contains(r.DynamicPlan, ":"+core.JoinOpHJ) {
		return nil, fmt.Errorf("hash-join bench: dynamic plan %q did not pick hj", r.DynamicPlan)
	}
	best := r.NLIO
	if r.INLIO < best {
		best = r.INLIO
	}
	if r.DynamicIO > 0 {
		r.IOReductionX = float64(best) / float64(r.DynamicIO)
	}
	if r.IOReductionX < 3 {
		return nil, fmt.Errorf("hash-join bench: hj I/O %d is only %.2fx better than the best forced competitor %d (want >= 3x)",
			r.DynamicIO, r.IOReductionX, best)
	}
	return r, nil
}

// newSortAvoidBenchDB builds the fat two-table ORDER BY schema: both
// heaps span enough pages that the restricted driver genuinely prefers
// its ordering index and the probe side prefers inl over a heap-build
// hash join, so the cheapest plan is naturally order-preserving.
func newSortAvoidBenchDB(nCust, nOrd, frames int, disable bool) (*engine.DB, error) {
	db := engine.Open(engine.Options{
		PoolFrames: frames,
		Optimizer:  core.Config{RaceFactor: -1, DisableJoinSortAvoidance: disable},
	})
	if _, err := db.CreateTable("CUST",
		catalog.Column{Name: "ID", Type: expr.TypeInt},
		catalog.Column{Name: "SEG", Type: expr.TypeInt},
		catalog.Column{Name: "PAD", Type: expr.TypeString},
	); err != nil {
		return nil, err
	}
	if _, err := db.CreateTable("ORD",
		catalog.Column{Name: "ID", Type: expr.TypeInt},
		catalog.Column{Name: "CUST", Type: expr.TypeInt},
		catalog.Column{Name: "PAD", Type: expr.TypeString},
	); err != nil {
		return nil, err
	}
	for _, ix := range [][3]string{{"CUST", "CUST_ID_IX", "ID"}, {"ORD", "ORD_CUST_IX", "CUST"}} {
		if _, err := db.CreateIndex(ix[0], ix[1], ix[2]); err != nil {
			return nil, err
		}
	}
	pad := strings.Repeat("x", 400)
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < nCust; i++ {
		if err := db.Insert("CUST", i, i%5, pad); err != nil {
			return nil, err
		}
	}
	for i := 0; i < nOrd; i++ {
		if err := db.Insert("ORD", i, int(rng.Int63n(int64(nCust))), pad); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// runSortAvoidLeg runs the ORDER BY join on its own twin database and
// returns the delivered rows rendered for order-sensitive comparison.
func runSortAvoidLeg(nCust, nOrd, frames, lim int, disable bool) (desc string, rowsOut []string, io int64, micros float64, avoided bool, err error) {
	db, err := newSortAvoidBenchDB(nCust, nOrd, frames, disable)
	if err != nil {
		return "", nil, 0, 0, false, err
	}
	src := fmt.Sprintf("SELECT CUST.ID, ORD.ID FROM CUST JOIN ORD ON CUST.ID = ORD.CUST WHERE CUST.ID < %d ORDER BY CUST.ID", lim)
	db.Pool().EvictAll()
	db.Pool().ResetStats()
	start := time.Now()
	res, err := db.Query(src, nil)
	if err != nil {
		return "", nil, 0, 0, false, err
	}
	all, err := res.All()
	if err != nil {
		return "", nil, 0, 0, false, err
	}
	micros = float64(time.Since(start).Microseconds())
	for _, row := range all {
		var b strings.Builder
		for i, v := range row {
			if i > 0 {
				b.WriteByte('|')
			}
			b.WriteString(v.String())
		}
		rowsOut = append(rowsOut, b.String())
	}
	st := res.Stats()
	return st.Strategy, rowsOut, st.IO.IOCost(), micros, st.SortAvoided, nil
}

// runSortAvoidanceSeries runs the aware and disabled legs and enforces
// the gates: the aware plan must skip the sort, deliver the baseline's
// rows in identical order, and spend no more attributed I/O.
func runSortAvoidanceSeries(nCust, nOrd, frames, lim int) (*SortAvoidanceResult, error) {
	r := &SortAvoidanceResult{
		SQL: fmt.Sprintf("SELECT CUST.ID, ORD.ID FROM CUST JOIN ORD ON CUST.ID = ORD.CUST WHERE CUST.ID < %d ORDER BY CUST.ID", lim),
	}
	var baseRows, awareRows []string
	var err error
	var baseAvoided bool
	if r.BaselinePlan, baseRows, r.BaselineIO, r.BaselineMicros, baseAvoided, err = runSortAvoidLeg(nCust, nOrd, frames, lim, true); err != nil {
		return nil, fmt.Errorf("sort-avoidance bench (baseline): %w", err)
	}
	if r.AwarePlan, awareRows, r.AwareIO, r.AwareMicros, r.SortAvoided, err = runSortAvoidLeg(nCust, nOrd, frames, lim, false); err != nil {
		return nil, fmt.Errorf("sort-avoidance bench (aware): %w", err)
	}
	if baseAvoided {
		return nil, fmt.Errorf("sort-avoidance bench: baseline avoided the sort with avoidance disabled (%q)", r.BaselinePlan)
	}
	if !r.SortAvoided {
		return nil, fmt.Errorf("sort-avoidance bench: aware plan %q still sorted", r.AwarePlan)
	}
	if len(awareRows) == 0 || len(awareRows) != len(baseRows) {
		return nil, fmt.Errorf("sort-avoidance bench: aware %d rows, baseline %d", len(awareRows), len(baseRows))
	}
	for i := range awareRows {
		if awareRows[i] != baseRows[i] {
			return nil, fmt.Errorf("sort-avoidance bench: row %d differs (%q vs %q)", i, awareRows[i], baseRows[i])
		}
	}
	if r.AwareIO > r.BaselineIO {
		return nil, fmt.Errorf("sort-avoidance bench: aware I/O %d exceeds baseline %d", r.AwareIO, r.BaselineIO)
	}
	r.Rows = len(awareRows)
	r.SortCostModel = estimate.JoinSortCost(float64(len(awareRows)))
	return r, nil
}

// RunJoinBench measures dynamic join optimization against the static
// baseline on twin databases, under accurate and skewed statistics.
// Under accurate statistics both legs should land on the same plan and
// cost; under skewed statistics the static plan commits to an
// index-probe operator sized for the bogus estimate while the dynamic
// run notices the divergence at the first stage boundary, re-plans, and
// must finish with less attributed I/O.
func RunJoinBench(rows int) (*JoinResult, error) {
	nOrd := rows
	if nOrd <= 0 {
		nOrd = 4000
	}
	nCust := nOrd / 4
	if nCust < 16 {
		nCust = 16
	}
	const nItem = 50
	const frames = 128
	out := &JoinResult{
		Customers: nCust, Orders: nOrd, Items: nItem,
		PoolFrames:  frames,
		ReoptFactor: core.DefaultConfig().JoinReoptFactor,
	}

	scenarios := []struct {
		name string
		fb   func() *feedback.Registry
	}{
		{"accurate-stats", func() *feedback.Registry { return nil }},
		{"skewed-stats", poisonedFeedback},
	}
	for _, sc := range scenarios {
		r := JoinScenarioResult{Name: sc.name, SQL: joinBenchSQL}
		var err error
		var sn, dn int
		r.StaticPlan, sn, r.StaticIO, r.StaticMicros, _, err =
			runJoinLeg(nCust, nOrd, nItem, frames, sc.fb(), true)
		if err != nil {
			return nil, fmt.Errorf("join bench %s (static): %w", sc.name, err)
		}
		r.DynamicPlan, dn, r.DynamicIO, r.DynamicMicros, r.Reoptimizations, err =
			runJoinLeg(nCust, nOrd, nItem, frames, sc.fb(), false)
		if err != nil {
			return nil, fmt.Errorf("join bench %s (dynamic): %w", sc.name, err)
		}
		if sn != dn {
			return nil, fmt.Errorf("join bench %s: static delivered %d rows, dynamic %d", sc.name, sn, dn)
		}
		r.Rows = sn
		if r.DynamicIO > 0 {
			r.IOReductionX = float64(r.StaticIO) / float64(r.DynamicIO)
		}
		out.Scenarios = append(out.Scenarios, r)
		if sc.name == "skewed-stats" {
			if r.Reoptimizations == 0 {
				return nil, fmt.Errorf("join bench: skewed scenario never re-optimized (static %q, dynamic %q)", r.StaticPlan, r.DynamicPlan)
			}
			if r.DynamicIO >= r.StaticIO {
				return nil, fmt.Errorf("join bench: dynamic I/O %d did not beat static %d under skew", r.DynamicIO, r.StaticIO)
			}
			out.SkewedIOReductionX = r.IOReductionX
			if !strings.Contains(r.DynamicPlan, ":"+core.JoinOpHJ) {
				return nil, fmt.Errorf("join bench: skewed re-optimization did not switch into hj (dynamic %q)", r.DynamicPlan)
			}
		}
	}

	var err error
	if out.HashJoin, err = runHashJoinSeries(nCust, nOrd, frames); err != nil {
		return nil, err
	}
	sortCust := nOrd / 3
	if sortCust < 60 {
		sortCust = 60
	}
	lim := sortCust / 25
	if lim < 8 {
		lim = 8
	}
	if out.SortAvoidance, err = runSortAvoidanceSeries(sortCust, nOrd, frames, lim); err != nil {
		return nil, err
	}
	return out, nil
}
