package bench

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"rdbdyn/internal/catalog"
	"rdbdyn/internal/core"
	"rdbdyn/internal/engine"
	"rdbdyn/internal/expr"
	"rdbdyn/internal/feedback"
)

// JoinScenarioResult is one row of BENCH_join.json: the same
// three-table join run statically (the plan chosen up front runs to
// completion, as a freezing optimizer would) and dynamically (staged
// execution with mid-flight re-optimization), on twin databases.
type JoinScenarioResult struct {
	Name string `json:"name"`
	SQL  string `json:"sql"`

	StaticPlan    string  `json:"static_plan"`
	StaticIO      int64   `json:"static_io"`
	StaticMicros  float64 `json:"static_micros"`
	DynamicPlan   string  `json:"dynamic_plan"`
	DynamicIO     int64   `json:"dynamic_io"`
	DynamicMicros float64 `json:"dynamic_micros"`

	Rows            int     `json:"rows"`
	Reoptimizations int     `json:"reoptimizations"`
	IOReductionX    float64 `json:"io_reduction_x"`
}

// JoinResult is the JSON shape of BENCH_join.json.
type JoinResult struct {
	Customers   int     `json:"customers"`
	Orders      int     `json:"orders"`
	Items       int     `json:"items"`
	PoolFrames  int     `json:"pool_frames"`
	ReoptFactor float64 `json:"reopt_factor"`

	Scenarios []JoinScenarioResult `json:"scenarios"`

	// SkewedIOReductionX is the headline number: attributed I/O of the
	// static plan over the dynamic run under skewed statistics.
	SkewedIOReductionX float64 `json:"skewed_io_reduction_x"`
}

const joinBenchSQL = "SELECT CUST.NAME, ORD.QTY, ITEM.KIND FROM CUST JOIN ORD ON CUST.ID = ORD.CUST JOIN ITEM ON ORD.ITEM = ITEM.ID WHERE SEG = 0"

// newJoinBenchDB builds one CUST/ORD/ITEM database under a bounded
// buffer pool. SEG=0 covers 60% of customers, so the unsargable 10%
// guess already undershoots; the skewed scenario compounds it with a
// poisoned feedback correction.
func newJoinBenchDB(nCust, nOrd, nItem, frames int) (*engine.DB, error) {
	db := engine.Open(engine.Options{
		PoolFrames: frames,
		Optimizer:  core.Config{RaceFactor: -1},
	})
	if _, err := db.CreateTable("CUST",
		catalog.Column{Name: "ID", Type: expr.TypeInt},
		catalog.Column{Name: "SEG", Type: expr.TypeInt},
		catalog.Column{Name: "NAME", Type: expr.TypeString},
	); err != nil {
		return nil, err
	}
	if _, err := db.CreateTable("ORD",
		catalog.Column{Name: "ID", Type: expr.TypeInt},
		catalog.Column{Name: "CUST", Type: expr.TypeInt},
		catalog.Column{Name: "ITEM", Type: expr.TypeInt},
		catalog.Column{Name: "QTY", Type: expr.TypeInt},
		catalog.Column{Name: "PAD", Type: expr.TypeString},
	); err != nil {
		return nil, err
	}
	if _, err := db.CreateTable("ITEM",
		catalog.Column{Name: "ID", Type: expr.TypeInt},
		catalog.Column{Name: "KIND", Type: expr.TypeInt},
	); err != nil {
		return nil, err
	}
	for _, ix := range [][3]string{
		{"CUST", "CUST_ID_IX", "ID"},
		{"ORD", "ORD_CUST_IX", "CUST"},
		{"ITEM", "ITEM_ID_IX", "ID"},
	} {
		if _, err := db.CreateIndex(ix[0], ix[1], ix[2]); err != nil {
			return nil, err
		}
	}
	pad := strings.Repeat("x", 400)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < nCust; i++ {
		seg := int(rng.Int63n(10))
		if seg < 6 {
			seg = 0
		}
		if err := db.Insert("CUST", i, seg, fmt.Sprintf("c%05d", i)); err != nil {
			return nil, err
		}
	}
	for i := 0; i < nOrd; i++ {
		if err := db.Insert("ORD", i, int(rng.Int63n(int64(nCust))),
			int(rng.Int63n(int64(nItem))), 1+int(rng.Int63n(9)), pad); err != nil {
			return nil, err
		}
	}
	for i := 0; i < nItem; i++ {
		if err := db.Insert("ITEM", i, int(rng.Int63n(5))); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// poisonedFeedback fabricates the skew: a learned correction claiming
// CUST whole-table guesses run 16x over, shrinking the driver estimate
// far below its true cardinality. The first sample adopts the ratio and
// the registry clamps it at the 1/16 floor.
func poisonedFeedback() *feedback.Registry {
	fb := feedback.New(0)
	fb.ObserveCardinality("CUST", "", 160, 10)
	return fb
}

// joinQueryFor compiles the bench SQL against db's catalog.
func joinQueryFor(db *engine.DB) (*core.JoinQuery, error) {
	stmt, err := db.Prepare(joinBenchSQL)
	if err != nil {
		return nil, err
	}
	jq := stmt.JoinQuery()
	if jq == nil {
		return nil, fmt.Errorf("join bench: %q did not compile to a join", joinBenchSQL)
	}
	return jq, nil
}

// runJoinLeg executes one leg on its own twin database with its own
// optimizer and (possibly poisoned) feedback registry. static=true
// plans once and replays that plan; static=false runs the full dynamic
// executor.
func runJoinLeg(nCust, nOrd, nItem, frames int, fb *feedback.Registry, static bool) (plan string, n int, io int64, micros float64, reopts int, err error) {
	db, err := newJoinBenchDB(nCust, nOrd, nItem, frames)
	if err != nil {
		return "", 0, 0, 0, 0, err
	}
	jq, err := joinQueryFor(db)
	if err != nil {
		return "", 0, 0, 0, 0, err
	}
	opt := core.NewOptimizer(core.Config{RaceFactor: -1, Feedback: fb})
	ec := core.NewExecCtx(context.Background(), 0)
	db.Pool().EvictAll()
	db.Pool().ResetStats()
	start := time.Now()
	var rows core.Rows
	if static {
		p, perr := opt.PlanJoin(ec, jq)
		if perr != nil {
			return "", 0, 0, 0, 0, perr
		}
		rows = opt.RunJoinPlan(ec, jq, p)
	} else {
		rows = opt.RunJoin(ec, jq)
	}
	for {
		_, ok, nerr := rows.Next()
		if nerr != nil {
			return "", 0, 0, 0, 0, nerr
		}
		if !ok {
			break
		}
		n++
	}
	micros = float64(time.Since(start).Microseconds())
	if cerr := rows.Close(); cerr != nil {
		return "", 0, 0, 0, 0, cerr
	}
	st := rows.Stats()
	for _, ev := range st.Events {
		if ev.Kind == core.EvJoinReoptimized {
			reopts++
		}
	}
	return st.Strategy, n, st.IO.IOCost(), micros, reopts, nil
}

// RunJoinBench measures dynamic join optimization against the static
// baseline on twin databases, under accurate and skewed statistics.
// Under accurate statistics both legs should land on the same plan and
// cost; under skewed statistics the static plan commits to an
// index-probe operator sized for the bogus estimate while the dynamic
// run notices the divergence at the first stage boundary, re-plans, and
// must finish with less attributed I/O.
func RunJoinBench(rows int) (*JoinResult, error) {
	nOrd := rows
	if nOrd <= 0 {
		nOrd = 4000
	}
	nCust := nOrd / 4
	if nCust < 16 {
		nCust = 16
	}
	const nItem = 50
	const frames = 128
	out := &JoinResult{
		Customers: nCust, Orders: nOrd, Items: nItem,
		PoolFrames:  frames,
		ReoptFactor: core.DefaultConfig().JoinReoptFactor,
	}

	scenarios := []struct {
		name string
		fb   func() *feedback.Registry
	}{
		{"accurate-stats", func() *feedback.Registry { return nil }},
		{"skewed-stats", poisonedFeedback},
	}
	for _, sc := range scenarios {
		r := JoinScenarioResult{Name: sc.name, SQL: joinBenchSQL}
		var err error
		var sn, dn int
		r.StaticPlan, sn, r.StaticIO, r.StaticMicros, _, err =
			runJoinLeg(nCust, nOrd, nItem, frames, sc.fb(), true)
		if err != nil {
			return nil, fmt.Errorf("join bench %s (static): %w", sc.name, err)
		}
		r.DynamicPlan, dn, r.DynamicIO, r.DynamicMicros, r.Reoptimizations, err =
			runJoinLeg(nCust, nOrd, nItem, frames, sc.fb(), false)
		if err != nil {
			return nil, fmt.Errorf("join bench %s (dynamic): %w", sc.name, err)
		}
		if sn != dn {
			return nil, fmt.Errorf("join bench %s: static delivered %d rows, dynamic %d", sc.name, sn, dn)
		}
		r.Rows = sn
		if r.DynamicIO > 0 {
			r.IOReductionX = float64(r.StaticIO) / float64(r.DynamicIO)
		}
		out.Scenarios = append(out.Scenarios, r)
		if sc.name == "skewed-stats" {
			if r.Reoptimizations == 0 {
				return nil, fmt.Errorf("join bench: skewed scenario never re-optimized (static %q, dynamic %q)", r.StaticPlan, r.DynamicPlan)
			}
			if r.DynamicIO >= r.StaticIO {
				return nil, fmt.Errorf("join bench: dynamic I/O %d did not beat static %d under skew", r.DynamicIO, r.StaticIO)
			}
			out.SkewedIOReductionX = r.IOReductionX
		}
	}
	return out, nil
}
