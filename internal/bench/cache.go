package bench

import (
	"fmt"
	"math"
	"time"

	"rdbdyn/internal/catalog"
	"rdbdyn/internal/core"
	"rdbdyn/internal/engine"
	"rdbdyn/internal/expr"
)

// CacheShapeResult is one row of BENCH_cache.json: a query shape run
// cold (dynamic optimization: estimation descents plus competition)
// and warm (frozen replay from the plan cache), both measured from an
// evicted buffer pool so the only difference is the work the cache
// saves.
type CacheShapeResult struct {
	Name   string `json:"name"`
	SQL    string `json:"sql"`
	Tactic string `json:"tactic"`
	Rows   int    `json:"rows"`

	ColdSetupIO int64   `json:"cold_setup_io"`
	WarmSetupIO int64   `json:"warm_setup_io"`
	ColdTotalIO int64   `json:"cold_total_io"`
	WarmTotalIO int64   `json:"warm_total_io"`
	ColdMicros  float64 `json:"cold_micros"`
	WarmMicros  float64 `json:"warm_micros"`
}

// CacheResult is the JSON shape of BENCH_cache.json.
type CacheResult struct {
	Rows         int   `json:"rows"`
	PoolFrames   int   `json:"pool_frames"`
	PromoteAfter int   `json:"promote_after"`
	FrozenPlans  int   `json:"frozen_plans"`
	CacheHits    int64 `json:"cache_hits"`

	Shapes []CacheShapeResult `json:"shapes"`

	TotalColdSetupIO int64   `json:"total_cold_setup_io"`
	TotalWarmSetupIO int64   `json:"total_warm_setup_io"`
	SetupReductionX  float64 `json:"setup_reduction_x"`
	TotalColdMicros  float64 `json:"total_cold_micros"`
	TotalWarmMicros  float64 `json:"total_warm_micros"`
	// LatencyRatioX is the geometric mean of per-shape cold/warm
	// latency, so one large sweep does not swamp six point lookups.
	LatencyRatioX float64 `json:"latency_ratio_x"`
}

// cacheBenchShape pairs a SQL shape with its bindings.
type cacheBenchShape struct {
	name  string
	src   string
	binds engine.Binds
}

// cacheBenchShapes is the promotable-shape workload: one query per
// tactic the plan cache knows how to freeze.
func cacheBenchShapes(pad string) []cacheBenchShape {
	return []cacheBenchShape{
		{"seq-sweep", "SELECT * FROM FAMILIES WHERE PAD = :p", engine.Binds{"p": pad}},
		{"covered-range", "SELECT AGE FROM FAMILIES WHERE AGE >= :lo", engine.Binds{"lo": 9900}},
		{"ordered-range", "SELECT ID, AGE FROM FAMILIES WHERE AGE >= :lo ORDER BY AGE", engine.Binds{"lo": 9950}},
		{"intersection", "SELECT * FROM FAMILIES WHERE AGE >= :lo AND CITY = :c", engine.Binds{"lo": 9000, "c": "C042"}},
		{"limited", "SELECT * FROM FAMILIES WHERE CITY = :c LIMIT 5", engine.Binds{"c": "C042"}},
		{"sorted-filter", "SELECT * FROM FAMILIES WHERE AGE >= :lo AND CITY = :c ORDER BY AGE", engine.Binds{"lo": 9930, "c": "C042"}},
		{"count-range", "SELECT COUNT(*) FROM FAMILIES WHERE AGE >= :lo", engine.Binds{"lo": 9900}},
	}
}

// RunCacheBench measures the plan cache: each shape is run once cold
// (full dynamic optimization) and, after enough consistent wins to
// promote, once warm (frozen replay). Both measured runs start from an
// evicted buffer pool, so data-page I/O is identical and the deltas
// isolate what the cache eliminates: estimation descents (setup I/O)
// and per-query optimization latency.
func RunCacheBench(rows int) (*CacheResult, error) {
	if rows <= 0 {
		rows = 20000
	}
	const poolFrames = 1024
	const promoteAfter = 3
	// Races off so every round picks the same plan (promotion needs
	// consistent fingerprints) and cold timings measure dynamic
	// optimization itself rather than scheduler noise.
	db := engine.Open(engine.Options{
		PoolFrames: poolFrames,
		Optimizer:  core.Config{RaceFactor: -1},
		PlanCache:  engine.PlanCacheConfig{Enable: true, PromoteAfter: promoteAfter},
	})
	if _, err := db.CreateTable("FAMILIES",
		catalog.Column{Name: "ID", Type: expr.TypeInt},
		catalog.Column{Name: "AGE", Type: expr.TypeInt},
		catalog.Column{Name: "CITY", Type: expr.TypeString},
		catalog.Column{Name: "PAD", Type: expr.TypeString},
	); err != nil {
		return nil, err
	}
	pad := ""
	for i := 0; i < 40; i++ {
		pad += "x"
	}
	for i := 0; i < rows; i++ {
		if err := db.Insert("FAMILIES", i, (i*7919)%10000, fmt.Sprintf("C%03d", (i*31)%97), pad); err != nil {
			return nil, err
		}
	}
	for _, ix := range [][2]string{{"AGE_IX", "AGE"}, {"CITY_IX", "CITY"}, {"ID_IX", "ID"}} {
		if _, err := db.CreateIndex("FAMILIES", ix[0], ix[1]); err != nil {
			return nil, err
		}
	}

	shapes := cacheBenchShapes(pad)
	out := &CacheResult{Rows: rows, PoolFrames: poolFrames, PromoteAfter: promoteAfter}

	measure := func(sh cacheBenchShape) (n int, setupIO, totalIO int64, micros float64, tactic string, err error) {
		db.Pool().EvictAll()
		db.Pool().ResetStats()
		start := time.Now()
		res, err := db.Query(sh.src, sh.binds)
		if err != nil {
			return 0, 0, 0, 0, "", err
		}
		n, err = drainResult(res, 0)
		if err != nil {
			return 0, 0, 0, 0, "", err
		}
		elapsed := time.Since(start)
		st := res.Stats() // finalized at Close
		// Totals come from the pool, not the query tracker, so pages
		// faulted in outside the tracked retrieval (estimation,
		// preparation) count the same way cold and warm.
		return n, st.EstimateIO, db.Pool().Stats().IOCost(), float64(elapsed.Microseconds()), st.Tactic, nil
	}

	for _, sh := range shapes {
		r := CacheShapeResult{Name: sh.name, SQL: sh.src}
		// Cold leg: the promoteAfter dynamic runs that build the win
		// streak. Each starts evicted; I/O is deterministic, timing is
		// best-of-N.
		for i := 0; i < promoteAfter; i++ {
			n, setup, total, us, tactic, err := measure(sh)
			if err != nil {
				return nil, fmt.Errorf("cache bench %s (cold %d): %w", sh.name, i, err)
			}
			if i == 0 {
				r.Rows, r.ColdSetupIO, r.ColdTotalIO, r.ColdMicros, r.Tactic = n, setup, total, us, tactic
				continue
			}
			if n != r.Rows {
				return nil, fmt.Errorf("cache bench %s: cold run %d delivered %d rows, first run %d", sh.name, i, n, r.Rows)
			}
			if us < r.ColdMicros {
				r.ColdMicros = us
			}
		}
		// Warm leg: frozen replays. Setup I/O must be gone.
		for i := 0; i < promoteAfter; i++ {
			n, setup, total, us, _, err := measure(sh)
			if err != nil {
				return nil, fmt.Errorf("cache bench %s (warm %d): %w", sh.name, i, err)
			}
			if n != r.Rows {
				return nil, fmt.Errorf("cache bench %s: warm replay delivered %d rows, cold run %d", sh.name, n, r.Rows)
			}
			if i == 0 || us < r.WarmMicros {
				r.WarmSetupIO, r.WarmTotalIO, r.WarmMicros = setup, total, us
			} else {
				r.WarmSetupIO, r.WarmTotalIO = setup, total
			}
		}
		out.Shapes = append(out.Shapes, r)
		out.TotalColdSetupIO += r.ColdSetupIO
		out.TotalWarmSetupIO += r.WarmSetupIO
		out.TotalColdMicros += r.ColdMicros
		out.TotalWarmMicros += r.WarmMicros
	}

	snap := db.PlanCacheSnapshot()
	out.FrozenPlans = snap.Frozen
	out.CacheHits = snap.Hits
	if out.FrozenPlans < len(shapes) {
		return nil, fmt.Errorf("cache bench: only %d of %d shapes promoted to frozen plans", out.FrozenPlans, len(shapes))
	}
	denomIO := out.TotalWarmSetupIO
	if denomIO == 0 {
		denomIO = 1
	}
	out.SetupReductionX = float64(out.TotalColdSetupIO) / float64(denomIO)
	logSum, n := 0.0, 0
	for _, r := range out.Shapes {
		if r.ColdMicros > 0 && r.WarmMicros > 0 {
			logSum += math.Log(r.ColdMicros / r.WarmMicros)
			n++
		}
	}
	if n > 0 {
		out.LatencyRatioX = math.Exp(logSum / float64(n))
	}
	return out, nil
}
