package bench

import (
	"fmt"

	"rdbdyn/internal/core"
	"rdbdyn/internal/engine"
	"rdbdyn/internal/expr"
	"rdbdyn/internal/rid"
	"rdbdyn/internal/storage"
	"rdbdyn/internal/workload"
)

// TacticBackground regenerates the Section 7 background-only story: a
// total-time retrieval over fetch-needed indexes sweeps selectivity;
// the Jscan-based dynamic executor tracks the better of indexed and
// sequential retrieval, with the crossover falling where random fetch
// volume overtakes the sequential scan.
func TacticBackground(rows int) (*Report, error) {
	if rows <= 0 {
		rows = 50000
	}
	l, err := newLab(256, core.DefaultConfig(), familiesSpec(rows))
	if err != nil {
		return nil, err
	}
	stmt, err := l.db.Prepare("SELECT * FROM FAMILIES WHERE AGE < :HI OPTIMIZE FOR TOTAL TIME")
	if err != nil {
		return nil, err
	}
	ageIx := l.tab.Indexes[0]
	r := &Report{
		ID:     "T7.BG",
		Title:  fmt.Sprintf("Background-only tactic: selectivity sweep over %d rows, %d pages (paper Section 7)", rows, l.tab.Pages()),
		Header: []string{"sel", "rows", "dynamic I/O", "fixed Fscan I/O", "fixed Tscan I/O", "dynamic strategy"},
	}
	for _, hi := range []int64{3, 10, 30, 100, 300, 1000, 3000, 10000} {
		binds := engine.Binds{"HI": hi}
		nRows, dynIO, st, err := l.runStmt(stmt, binds, 0)
		if err != nil {
			return nil, err
		}
		q := &core.Query{Table: l.tab, Restriction: mustRestriction(l, "AGE", expr.LT, hi)}
		_, fsIO, err := l.runFixed(q, core.FixedStrategy{Kind: core.StrategyFscan, Index: ageIx}, 0)
		if err != nil {
			return nil, err
		}
		_, tsIO, err := l.runFixed(q, core.FixedStrategy{Kind: core.StrategyTscan}, 0)
		if err != nil {
			return nil, err
		}
		r.AddRow(f(float64(nRows)/float64(rows)), n(int64(nRows)),
			n(dynIO.IOCost()), n(fsIO.IOCost()), n(tsIO.IOCost()), st.Strategy)
	}
	r.Notef("shape to reproduce: dynamic follows the Fscan line at low selectivity and the Tscan")
	r.Notef("line at high selectivity, switching near their crossover without being told where it is.")
	return r, nil
}

// TacticFastFirst regenerates the fast-first story: under early
// termination (small LIMIT) the tactic matches the immediate-delivery
// Fscan; when the retrieval runs to the end it matches the
// background-only Jscan path, combining "the best of both worlds".
func TacticFastFirst(rows int) (*Report, error) {
	if rows <= 0 {
		rows = 50000
	}
	l, err := newLab(256, core.DefaultConfig(), familiesSpec(rows))
	if err != nil {
		return nil, err
	}
	ageIx := l.tab.Indexes[0]
	r := &Report{
		ID:    "T7.FF",
		Title: "Fast-first tactic: early-termination sweep (paper Section 7)",
		Header: []string{"limit", "delivered", "fast-first I/O", "fixed Fscan I/O",
			"total-time dynamic I/O", "fast-first strategy"},
	}
	const hi = 2000 // ~20% selectivity: plenty of matches to stop early in
	for _, limit := range []int{1, 10, 100, 1000, 0} {
		src := "SELECT * FROM FAMILIES WHERE AGE < 2000 OPTIMIZE FOR FAST FIRST"
		stmt, err := l.db.Prepare(src)
		if err != nil {
			return nil, err
		}
		nRows, ffIO, st, err := l.runStmt(stmt, nil, limit)
		if err != nil {
			return nil, err
		}
		q := &core.Query{Table: l.tab, Restriction: mustRestriction(l, "AGE", expr.LT, hi)}
		_, fsIO, err := l.runFixed(q, core.FixedStrategy{Kind: core.StrategyFscan, Index: ageIx}, limit)
		if err != nil {
			return nil, err
		}
		ttStmt, err := l.db.Prepare("SELECT * FROM FAMILIES WHERE AGE < 2000 OPTIMIZE FOR TOTAL TIME")
		if err != nil {
			return nil, err
		}
		_, ttIO, _, err := l.runStmt(ttStmt, nil, limit)
		if err != nil {
			return nil, err
		}
		lim := "all"
		if limit > 0 {
			lim = n(int64(limit))
		}
		r.AddRow(lim, n(int64(nRows)), n(ffIO.IOCost()), n(fsIO.IOCost()), n(ttIO.IOCost()), st.Strategy)
	}
	r.Notef("shape to reproduce: for tiny limits fast-first costs about what Fscan costs;")
	r.Notef("drained to the end it stays near the total-time (Jscan) cost instead of Fscan's random-fetch blowup.")
	return r, nil
}

// TacticSorted regenerates the sorted tactic: an order-delivering Fscan
// cooperating with a filter-producing Jscan eliminates most record
// fetches compared to the plain order-index Fscan.
func TacticSorted(rows int) (*Report, error) {
	if rows <= 0 {
		rows = 40000
	}
	spec := workload.TableSpec{
		Name: "S",
		Rows: rows,
		Columns: []workload.ColumnSpec{
			{Name: "A", Gen: workload.Uniform{Lo: 0, Hi: 10000}}, // order column
			{Name: "C", Gen: workload.Uniform{Lo: 0, Hi: 1000}},  // filter column
			{Name: "PAD", Gen: workload.Pad{Len: 50}},
		},
		Indexes: [][]string{{"A"}, {"C"}},
		Seed:    31,
	}
	r := &Report{
		ID:     "T7.SO",
		Title:  "Sorted tactic: order-needed Fscan + filter Jscan (paper Section 7)",
		Header: []string{"filter sel", "rows", "sorted tactic I/O", "plain Fscan I/O", "sort(Tscan) I/O", "strategy"},
	}
	for _, cHi := range []int64{5, 20, 100, 500} {
		l, err := newLab(256, core.DefaultConfig(), spec)
		if err != nil {
			return nil, err
		}
		aIx, err := l.mustIndex("S_IX0_A")
		if err != nil {
			return nil, err
		}
		// The sorted tactic is the paper's fast-first + order arrangement;
		// under total-time the optimizer would compare against
		// materialize-and-sort instead.
		src := fmt.Sprintf("SELECT * FROM S WHERE A >= 0 AND C < %d ORDER BY A OPTIMIZE FOR FAST FIRST", cHi)
		stmt, err := l.db.Prepare(src)
		if err != nil {
			return nil, err
		}
		nRows, soIO, st, err := l.runStmt(stmt, nil, 0)
		if err != nil {
			return nil, err
		}
		aCol, _ := l.tab.ColumnIndex("A")
		cCol, _ := l.tab.ColumnIndex("C")
		restriction := expr.NewAnd(
			expr.NewCmp(expr.GE, expr.Col(aCol, "A"), expr.Lit(expr.Int(0))),
			expr.NewCmp(expr.LT, expr.Col(cCol, "C"), expr.Lit(expr.Int(cHi))),
		)
		q := &core.Query{Table: l.tab, Restriction: restriction, OrderBy: []int{aCol}}
		_, fsIO, err := l.runFixed(q, core.FixedStrategy{Kind: core.StrategyFscan, Index: aIx}, 0)
		if err != nil {
			return nil, err
		}
		_, tsIO, err := l.runFixed(q, core.FixedStrategy{Kind: core.StrategyTscan}, 0)
		if err != nil {
			return nil, err
		}
		r.AddRow(f(float64(cHi)/1000), n(int64(nRows)), n(soIO.IOCost()), n(fsIO.IOCost()),
			n(tsIO.IOCost()), st.Strategy)
	}
	r.Notef("shape to reproduce: at selective filters the Jscan-built filter saves most of the plain")
	r.Notef("Fscan's fetches while preserving delivery order (no sort materialization).")
	return r, nil
}

// TacticIndexOnly regenerates the index-only tactic: the best
// self-sufficient Sscan runs in the foreground racing a Jscan; the
// winner depends on which side the data favors, resolved per run.
func TacticIndexOnly(rows int) (*Report, error) {
	if rows <= 0 {
		rows = 40000
	}
	spec := workload.TableSpec{
		Name: "IO",
		Rows: rows,
		Columns: []workload.ColumnSpec{
			{Name: "A", Gen: workload.Uniform{Lo: 0, Hi: 10000}},
			{Name: "B", Gen: workload.Uniform{Lo: 0, Hi: 10000}},
			{Name: "PAD", Gen: workload.Pad{Len: 50}},
		},
		// A+B is self-sufficient for SELECT A, B; B alone is
		// fetch-needed competition.
		Indexes: [][]string{{"A", "B"}, {"B"}},
		Seed:    13,
	}
	r := &Report{
		ID:     "T7.IO",
		Title:  "Index-only tactic: Sscan vs Jscan competition (paper Section 7)",
		Header: []string{"case", "rows", "dynamic I/O", "pure Sscan I/O", "Tscan I/O", "strategy"},
	}
	cases := []struct {
		name string
		aHi  int64 // Sscan range width on A
		bHi  int64 // Jscan range width on B
	}{
		{"Sscan favored (narrow A, wide B)", 100, 9000},
		{"balanced", 2000, 2000},
		{"Jscan favored (wide A, narrow B)", 9000, 40},
	}
	for _, c := range cases {
		l, err := newLab(256, core.DefaultConfig(), spec)
		if err != nil {
			return nil, err
		}
		src := fmt.Sprintf("SELECT A, B FROM IO WHERE A < %d AND B < %d OPTIMIZE FOR TOTAL TIME", c.aHi, c.bHi)
		stmt, err := l.db.Prepare(src)
		if err != nil {
			return nil, err
		}
		nRows, dynIO, st, err := l.runStmt(stmt, nil, 0)
		if err != nil {
			return nil, err
		}
		abIx, err := l.mustIndex("IO_IX0_A_B")
		if err != nil {
			return nil, err
		}
		q := stmt.CoreQuery()
		_, ssIO, err := l.runFixed(q, core.FixedStrategy{Kind: core.StrategySscan, Index: abIx}, 0)
		if err != nil {
			return nil, err
		}
		_, tsIO, err := l.runFixed(q, core.FixedStrategy{Kind: core.StrategyTscan}, 0)
		if err != nil {
			return nil, err
		}
		r.AddRow(c.name, n(int64(nRows)), n(dynIO.IOCost()), n(ssIO.IOCost()), n(tsIO.IOCost()), st.Strategy)
	}
	r.Notef("shape to reproduce: the competition resolves to whichever side the selectivities favor;")
	r.Notef("the dynamic cost stays near the per-case winner.")
	return r, nil
}

// HybridContainer regenerates the Section 6 "engineering around the
// L-shape" ablation: the hybrid RID container against always-allocate
// and always-spill configurations across L-shaped list sizes.
func HybridContainer() (*Report, error) {
	r := &Report{
		ID:     "TX.S",
		Title:  "Hybrid RID container ablation (paper Section 6)",
		Header: []string{"list size", "config", "spilled", "temp I/O", "mem RIDs"},
	}
	configs := []struct {
		name string
		cfg  rid.Config
	}{
		{"hybrid (paper)", rid.DefaultConfig()},
		{"always-allocate", rid.Config{SmallCap: 1, MemBudget: 1 << 30}},
		{"tiny memory (spill-happy)", rid.Config{SmallCap: 1, MemBudget: 32}},
	}
	for _, size := range []int{0, 5, 20, 500, 5000, 50000} {
		for _, c := range configs {
			pool := storage.NewBufferPool(storage.NewDisk(0), 64)
			cont := rid.NewContainer(pool, c.cfg)
			pool.ResetStats()
			for i := 0; i < size; i++ {
				if err := cont.Append(storage.RID{
					Page: storage.PageID{File: 9, No: storage.PageNo(i / 100)},
					Slot: uint16(i % 100),
				}); err != nil {
					return nil, err
				}
			}
			if _, err := cont.SortedAll(); err != nil {
				return nil, err
			}
			st := pool.Stats()
			r.AddRow(n(int64(size)), c.name, fmt.Sprintf("%v", cont.Spilled()),
				n(st.IOCost()), n(int64(cont.MemRIDs())))
		}
	}
	r.Notef("shape to reproduce: the hybrid pays nothing for the dominant tiny lists (L-shape head)")
	r.Notef("and degrades to bounded-memory spill for the rare huge ones (L-shape tail).")
	return r, nil
}

// All runs every experiment with default sizes, in DESIGN.md order.
func All() ([]*Report, error) {
	var out []*Report
	add := func(r *Report, err error) error {
		if err != nil {
			return err
		}
		out = append(out, r)
		return nil
	}
	if err := add(Fig21(0)); err != nil {
		return nil, err
	}
	if err := add(Fig22(0)); err != nil {
		return nil, err
	}
	if err := add(HyperbolaFits(0)); err != nil {
		return nil, err
	}
	if err := add(CompetitionCosts()); err != nil {
		return nil, err
	}
	if err := add(HostVariable(0)); err != nil {
		return nil, err
	}
	if err := add(EstimationStudy(0)); err != nil {
		return nil, err
	}
	if err := add(JscanStudy(0)); err != nil {
		return nil, err
	}
	if err := add(TacticBackground(0)); err != nil {
		return nil, err
	}
	if err := add(TacticFastFirst(0)); err != nil {
		return nil, err
	}
	if err := add(TacticSorted(0)); err != nil {
		return nil, err
	}
	if err := add(TacticIndexOnly(0)); err != nil {
		return nil, err
	}
	if err := add(GoalInference()); err != nil {
		return nil, err
	}
	if err := add(HybridContainer()); err != nil {
		return nil, err
	}
	if err := add(UnionScan(0)); err != nil {
		return nil, err
	}
	if err := add(Ablations(0)); err != nil {
		return nil, err
	}
	if err := add(Interference(0)); err != nil {
		return nil, err
	}
	if err := add(HistogramBaseline(0)); err != nil {
		return nil, err
	}
	if err := add(SamplerComparison(0)); err != nil {
		return nil, err
	}
	return out, nil
}
