package bench

import (
	"strings"
	"testing"

	"rdbdyn/internal/btree"
	"rdbdyn/internal/catalog"
	"rdbdyn/internal/expr"
	"rdbdyn/internal/rid"
	"rdbdyn/internal/storage"
)

// This file holds the vectorized-pipeline microbenchmarks as plain
// functions so they run both under `go test -bench` (see bench_test.go)
// and from rdbbench -benchout via testing.Benchmark. Each pair
// contrasts the pre-vectorization per-entry shape of a pipeline stage
// with its batched replacement on the same spilled workload; simulated
// I/O counters are identical between the legs by construction, so the
// difference is pure CPU and allocation.

const (
	// pipeEntries is sized so the surviving RID list (~2/3 of entries)
	// clearly exceeds the default in-memory budget of 4096 and the
	// container spills to a temp table in both legs.
	pipeEntries = 12288
	// pipeRows sizes the final-fetch table; candidates are half the rows.
	pipeRows = 20000
)

// pipeRID clusters ~100 RIDs per heap page, matching the fixture tables.
func pipeRID(i int) storage.RID {
	return storage.RID{Page: storage.PageID{File: 1, No: storage.PageNo(i / 100)}, Slot: uint16(i % 100)}
}

// indexScanFixture is the Jscan-shaped workload: a multi-leaf index and
// the RID list of a previously completed scan acting as the
// intersection filter (2 of 3 entries survive).
type indexScanFixture struct {
	pool  *storage.BufferPool
	tree  *btree.BTree
	prior []storage.RID
	cfg   rid.Config
}

func newIndexScanFixture() (*indexScanFixture, error) {
	d := storage.NewDisk(4096)
	// Bounded: spilled temp-table pages are evicted once cold, so the
	// pool's live set stays flat across benchmark iterations.
	pool := storage.NewBufferPool(d, 256)
	tree, err := btree.New(pool, d.CreateFile())
	if err != nil {
		return nil, err
	}
	f := &indexScanFixture{pool: pool, tree: tree, cfg: rid.DefaultConfig()}
	for i := 0; i < pipeEntries; i++ {
		r := pipeRID(i)
		if err := tree.Insert(expr.EncodeKey(nil, expr.Int(int64(i))), r); err != nil {
			return nil, err
		}
		if i%3 != 0 {
			f.prior = append(f.prior, r)
		}
	}
	return f, nil
}

// BenchJscanPerEntry is the pre-vectorization leg: per-entry cursor
// iteration, a scalar sorted-list probe per RID, per-RID container
// appends. Filter construction is part of the measured work, as it is
// inside a running Jscan.
func BenchJscanPerEntry(b *testing.B, f *indexScanFixture) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		filter := rid.NewSortedList(f.prior)
		c := rid.NewContainer(f.pool, f.cfg)
		cur, err := f.tree.Seek(nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for {
			_, r, ok, err := cur.Next()
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				break
			}
			if !filter.MayContain(r) {
				continue
			}
			if err := c.Append(r); err != nil {
				b.Fatal(err)
			}
			n++
		}
		if !c.Spilled() {
			b.Fatalf("workload must spill (%d rids, budget %d)", n, f.cfg.MemBudget)
		}
		c.Discard()
	}
}

// BenchJscanBatched is the vectorized leg: leaf-sized entry batches, one
// bulk compressed-bitmap probe per batch, batched container appends.
func BenchJscanBatched(b *testing.B, f *indexScanFixture) {
	b.ReportAllocs()
	const step = 256
	batch := make([]btree.Entry, step)
	rids := make([]storage.RID, step)
	keep := make([]bool, step)
	out := make([]storage.RID, 0, step)
	for i := 0; i < b.N; i++ {
		filter := rid.FromRIDs(f.prior)
		c := rid.NewContainer(f.pool, f.cfg)
		cur, err := f.tree.Seek(nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		for {
			n, err := cur.NextBatch(batch)
			if err != nil {
				b.Fatal(err)
			}
			if n == 0 {
				break
			}
			for j, e := range batch[:n] {
				rids[j] = e.RID
			}
			filter.FilterBatch(rids[:n], keep[:n])
			out = out[:0]
			for j := 0; j < n; j++ {
				if keep[j] {
					out = append(out, rids[j])
				}
			}
			if err := c.AppendBatch(out); err != nil {
				b.Fatal(err)
			}
		}
		if !c.Spilled() {
			b.Fatal("workload must spill")
		}
		c.Discard()
	}
}

// finalFetchFixture is the Fin-shaped workload: a heap table of int
// rows, a sorted candidate RID list covering half the table, a
// delivered-RID exclusion set, and a selective residual restriction
// (rejected rows must not allocate in the batched leg).
type finalFetchFixture struct {
	pool    *storage.BufferPool
	tab     *catalog.Table
	cand    []storage.RID
	exclude []storage.RID
	restr   expr.Expr
}

func newFinalFetchFixture() (*finalFetchFixture, error) {
	return newHeapFixtureN(pipeRows)
}

// newHeapFixtureN is newFinalFetchFixture at an arbitrary row count;
// the adaptive-width benchmarks use a few-page variant of the same
// table to show small scans staying sequential.
func newHeapFixtureN(n int) (*finalFetchFixture, error) {
	pool := storage.NewBufferPool(storage.NewDisk(4096), 0)
	cat := catalog.New(pool)
	tab, err := cat.CreateTable("PIPE", []catalog.Column{
		{Name: "ID", Type: expr.TypeInt},
		{Name: "A", Type: expr.TypeInt},
		{Name: "B", Type: expr.TypeInt},
		{Name: "C", Type: expr.TypeInt},
		{Name: "D", Type: expr.TypeInt},
		{Name: "E", Type: expr.TypeInt},
	})
	if err != nil {
		return nil, err
	}
	f := &finalFetchFixture{pool: pool, tab: tab}
	for i := 0; i < n; i++ {
		v := int64(i)
		r, err := tab.Insert(expr.Row{
			expr.Int(v), expr.Int(v * 3), expr.Int(v % 97), expr.Int(v % 7), expr.Int(-v), expr.Int(v * v),
		})
		if err != nil {
			return nil, err
		}
		if i%2 == 0 {
			f.cand = append(f.cand, r) // insertion order = sorted RID order
			if i%10 == 0 {
				f.exclude = append(f.exclude, r)
			}
		}
	}
	// ~1% of candidates survive: the cost is dominated by fetching and
	// decoding rejected rows.
	idCol := 0
	f.restr = expr.NewCmp(expr.LT, expr.Col(idCol, "ID"), expr.Lit(expr.Int(200)))
	return f, nil
}

// BenchFinalPerRID is the pre-vectorization leg: one FetchTracked
// (fresh row allocation) per candidate, scalar sorted-list exclusion.
func BenchFinalPerRID(b *testing.B, f *finalFetchFixture) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ex := rid.NewSortedList(f.exclude)
		tr := storage.NewTracker(nil)
		kept := 0
		for _, r := range f.cand {
			if ex.MayContain(r) {
				continue
			}
			row, err := f.tab.FetchTracked(r, tr)
			if err != nil {
				b.Fatal(err)
			}
			keep, err := expr.EvalPred(f.restr, row, nil)
			if err != nil {
				b.Fatal(err)
			}
			if keep {
				kept++
			}
		}
		if kept == 0 {
			b.Fatal("restriction kept nothing")
		}
	}
}

// BenchFinalGrouped is the vectorized leg: candidates grouped into
// same-page runs, one buffer-pool round trip per run, scratch-row
// decoding, compressed-bitmap exclusion.
func BenchFinalGrouped(b *testing.B, f *finalFetchFixture) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ex := rid.FromRIDs(f.exclude)
		tr := storage.NewTracker(nil)
		var scratch expr.Row
		run := make([]storage.RID, 0, 64)
		kept := 0
		pos := 0
		for pos < len(f.cand) {
			run = run[:0]
			var page storage.PageID
			for pos < len(f.cand) {
				r := f.cand[pos]
				if ex.MayContain(r) {
					pos++
					continue
				}
				if len(run) > 0 && r.Page != page {
					break
				}
				page = r.Page
				run = append(run, r)
				pos++
			}
			if len(run) == 0 {
				break
			}
			p, err := f.tab.Heap.GetSpanTracked(page, len(run), tr)
			if err != nil {
				b.Fatal(err)
			}
			for _, r := range run {
				rec, err := p.Get(r.Slot)
				if err != nil {
					b.Fatal(err)
				}
				row, err := expr.DecodeRowInto(rec, scratch)
				if err != nil {
					b.Fatal(err)
				}
				scratch = row
				keep, err := expr.EvalPred(f.restr, row, nil)
				if err != nil {
					b.Fatal(err)
				}
				if keep {
					kept++
				}
			}
		}
		if kept == 0 {
			b.Fatal("restriction kept nothing")
		}
	}
}

// PipelineResult is one benchmark leg's measurement.
type PipelineResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// PipelineReport pairs the raw measurements with the batched-over-
// per-entry speedup of each pipeline stage, the partitioned-scan
// speedup series across worker counts (see parallelscan.go), and the
// adaptive width policy's showing against the best static width on the
// same fixtures (see adaptivescan.go).
type PipelineReport struct {
	Results           []PipelineResult     `json:"results"`
	Speedup           map[string]float64   `json:"speedup"`
	ParallelScans     []ParallelScanSeries `json:"parallel_scans"`
	AdaptiveScans     []AdaptiveScanResult `json:"adaptive_scans"`
	AdaptiveSmallScan *AdaptiveSmallScan   `json:"adaptive_small_scan"`
}

// RunPipeline measures every pipeline leg through testing.Benchmark
// (used by rdbbench -benchout, outside `go test`).
func RunPipeline() (*PipelineReport, error) {
	benches, err := PipelineBenchmarks()
	if err != nil {
		return nil, err
	}
	rep := &PipelineReport{Speedup: map[string]float64{}}
	perStage := map[string][]float64{} // stage -> [baseline ns, vectorized ns]
	for _, pb := range benches {
		r := testing.Benchmark(pb.F)
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		rep.Results = append(rep.Results, PipelineResult{
			Name:        pb.Name,
			Iterations:  r.N,
			NsPerOp:     ns,
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
		stage := pb.Name
		if i := strings.IndexByte(stage, '/'); i >= 0 {
			stage = stage[:i]
		}
		perStage[stage] = append(perStage[stage], ns)
	}
	for stage, ns := range perStage {
		if len(ns) == 2 && ns[1] > 0 {
			rep.Speedup[stage] = ns[0] / ns[1]
		}
	}
	scans, err := ParallelScanBenchmarks()
	if err != nil {
		return nil, err
	}
	rep.ParallelScans = scans
	adaptive, small, err := AdaptiveScanBenchmarks(scans)
	if err != nil {
		return nil, err
	}
	rep.AdaptiveScans = adaptive
	rep.AdaptiveSmallScan = small
	return rep, nil
}

// PipelineBenchmark is one named microbenchmark runnable standalone.
type PipelineBenchmark struct {
	Name string
	F    func(b *testing.B)
}

// PipelineBenchmarks builds the fixtures once and returns the four
// pipeline legs; rdbbench -benchout runs them through
// testing.Benchmark.
func PipelineBenchmarks() ([]PipelineBenchmark, error) {
	isf, err := newIndexScanFixture()
	if err != nil {
		return nil, err
	}
	fff, err := newFinalFetchFixture()
	if err != nil {
		return nil, err
	}
	return []PipelineBenchmark{
		{"JscanPipeline/per-entry", func(b *testing.B) { BenchJscanPerEntry(b, isf) }},
		{"JscanPipeline/batched", func(b *testing.B) { BenchJscanBatched(b, isf) }},
		{"FinalFetch/per-rid", func(b *testing.B) { BenchFinalPerRID(b, fff) }},
		{"FinalFetch/grouped", func(b *testing.B) { BenchFinalGrouped(b, fff) }},
	}, nil
}
