// Package bench implements the experiment harness: one runner per paper
// figure, table, or quantified claim, each producing a printable Report
// with the same series the paper shows. The cmd/rdbbench and cmd/rdbfig
// binaries and the repository-root benchmarks all call into here, so a
// figure is regenerated identically everywhere.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Report is one experiment's output: a titled table plus free-form
// notes (the paper-vs-measured commentary).
type Report struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (r *Report) AddRow(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// Notef appends a formatted note.
func (r *Report) Notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the report as an aligned text table.
func (r *Report) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	printRow(r.Header)
	sep := make([]string, len(r.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range r.Rows {
		printRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, n int) string {
	if len(s) >= n {
		return s
	}
	return s + strings.Repeat(" ", n-len(s))
}

// f formats a float compactly.
func f(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// n formats an integer.
func n(v int64) string { return fmt.Sprintf("%d", v) }
