package bench

import (
	"math/rand"
	"sync"
	"time"

	"rdbdyn/internal/catalog"
	"rdbdyn/internal/core"
	"rdbdyn/internal/engine"
	"rdbdyn/internal/expr"
)

// ParallelResult is the JSON shape of BENCH_parallel.json: end-to-end
// query throughput of one shared engine under a fixed goroutine count,
// plus the optimizer's cumulative competition metrics for the run
// (written separately as BENCH_metrics.json).
type ParallelResult struct {
	Goroutines    int     `json:"goroutines"`
	Shards        int     `json:"shards"`
	Queries       int     `json:"queries"`
	Rows          int     `json:"rows"`
	Seconds       float64 `json:"seconds"`
	QueriesPerSec float64 `json:"queries_per_sec"`
	TotalIOs      int64   `json:"total_ios"`

	Metrics core.MetricsSnapshot `json:"-"`
}

// RunParallel loads a table and drives point queries from the given
// number of goroutines over one shared sharded-pool DB, reporting
// wall-clock throughput and total simulated I/O. queries is the total
// across all goroutines (0 = default).
func RunParallel(goroutines, queries, rows int) (*ParallelResult, error) {
	if goroutines <= 0 {
		goroutines = 1
	}
	if queries <= 0 {
		queries = 4000
	}
	if rows <= 0 {
		rows = 50000
	}
	db := engine.Open(engine.Options{PoolFrames: 8192, PoolShards: 16})
	if _, err := db.CreateTable("T",
		catalog.Column{Name: "ID", Type: expr.TypeInt},
		catalog.Column{Name: "AGE", Type: expr.TypeInt},
	); err != nil {
		return nil, err
	}
	if _, err := db.CreateIndex("T", "AGE_IX", "AGE"); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < rows; i++ {
		if err := db.Insert("T", i, int(rng.Int63n(10000))); err != nil {
			return nil, err
		}
	}
	stmt, err := db.Prepare("SELECT * FROM T WHERE AGE = :A")
	if err != nil {
		return nil, err
	}

	// Start cold so the run's simulated I/O is visible in the report.
	db.Pool().EvictAll()
	before := db.Pool().Stats()
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < goroutines; w++ {
		n := queries / goroutines
		if w < queries%goroutines {
			n++
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < n; i++ {
				res, err := stmt.Query(engine.Binds{"A": int(rng.Int63n(10000))})
				if err != nil {
					errs[w] = err
					return
				}
				if _, err := res.All(); err != nil {
					errs[w] = err
					return
				}
			}
		}(w, n)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	delta := db.Pool().Stats().Sub(before)
	return &ParallelResult{
		Goroutines:    goroutines,
		Shards:        db.Pool().Shards(),
		Queries:       queries,
		Rows:          rows,
		Seconds:       elapsed.Seconds(),
		QueriesPerSec: float64(queries) / elapsed.Seconds(),
		TotalIOs:      delta.IOCost(),
		Metrics:       db.Metrics(),
	}, nil
}
