package bench

import "testing"

// The acceptance pair for the vectorized RID pipeline: batched must
// beat per-entry by >=2x ops/sec with fewer allocs/op on the spilled
// workload (recorded in BENCH_pipeline.json at the repo root).

func BenchmarkJscanPipeline(b *testing.B) {
	f, err := newIndexScanFixture()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("per-entry", func(b *testing.B) { BenchJscanPerEntry(b, f) })
	b.Run("batched", func(b *testing.B) { BenchJscanBatched(b, f) })
}

func BenchmarkFinalFetch(b *testing.B) {
	f, err := newFinalFetchFixture()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("per-rid", func(b *testing.B) { BenchFinalPerRID(b, f) })
	b.Run("grouped", func(b *testing.B) { BenchFinalGrouped(b, f) })
}
