package bench

import (
	"fmt"

	"rdbdyn/internal/competition"
	"rdbdyn/internal/dist"
)

// Fig21 regenerates Figure 2.1: transformations of the uniform
// selectivity distribution under AND/OR chains and correlation
// assumptions. Each row is one transformed distribution: its summary
// statistics plus a 16-bucket density profile (the figure's curve,
// coarsened for text output).
func Fig21(bins int) (*Report, error) {
	if bins <= 0 {
		bins = dist.DefaultBins
	}
	r := &Report{
		ID:     "F2.1",
		Title:  "Transformation of uniform selectivity distributions (paper Figure 2.1)",
		Header: []string{"expr", "corr", "mean", "median", "skew", "density profile (16 buckets)"},
	}
	u := dist.Uniform(bins)
	type cse struct {
		label string
		corr  string
		build func() (*dist.Dist, error)
	}
	cases := []cse{
		{"&X", "+1", func() (*dist.Dist, error) { return dist.ApplyC("&", u, 1) }},
		{"&X", "0", func() (*dist.Dist, error) { return dist.ApplyC("&", u, 0) }},
		{"&X", "-0.9", func() (*dist.Dist, error) { return dist.ApplyC("&", u, -0.9) }},
		{"&X", "unknown", func() (*dist.Dist, error) { return dist.Apply("&", u) }},
		{"&&X", "unknown", func() (*dist.Dist, error) { return dist.Apply("&&", u) }},
		{"&&&X", "unknown", func() (*dist.Dist, error) { return dist.Apply("&&&", u) }},
		{"|X", "unknown", func() (*dist.Dist, error) { return dist.Apply("|", u) }},
		{"||X", "unknown", func() (*dist.Dist, error) { return dist.Apply("||", u) }},
		{"|&X", "unknown", func() (*dist.Dist, error) { return dist.Apply("|&", u) }},
		{"||&&X", "unknown", func() (*dist.Dist, error) { return dist.Apply("||&&", u) }},
	}
	for _, c := range cases {
		d, err := c.build()
		if err != nil {
			return nil, err
		}
		st := d.LShapeStats()
		r.AddRow(c.label, c.corr, f(st.Mean), f(st.Median), f(st.Skew), profile(d, 16))
	}
	r.Notef("paper: AND chains produce L-shapes concentrated near zero, OR chains mirror them at one,")
	r.Notef("skewness grows as correlation decreases and as chains lengthen; balanced |& mixes flatten back.")
	return r, nil
}

// Fig22 regenerates Figure 2.2: degradation of a precise estimate
// (bell with mean 0.2, error 0.005) under AND/OR chains with unknown
// correlation.
func Fig22(bins int) (*Report, error) {
	if bins <= 0 {
		bins = dist.DefaultBins
	}
	r := &Report{
		ID:     "F2.2",
		Title:  "Degradation of certainty: bell m=0.2, e=0.005 (paper Figure 2.2)",
		Header: []string{"expr", "mean", "stddev", "spread vs X", "density profile (16 buckets)"},
	}
	x := dist.Bell(bins, 0.2, 0.005)
	base := x.StdDev()
	for _, ops := range []string{"", "&", "|", "||", "|||", "|||||&"} {
		d := x
		var err error
		if ops != "" {
			d, err = dist.Apply(ops, x)
			if err != nil {
				return nil, err
			}
		}
		label := ops + "X"
		r.AddRow(label, f(d.Mean()), f(d.StdDev()), f(d.StdDev()/base), profile(d, 16))
	}
	r.Notef("paper: a single AND or OR instantly inflates the spread to the order of the distance")
	r.Notef("from the interval end; repeated ORs about double the spread each time until L-shapes form.")
	return r, nil
}

// HyperbolaFits regenerates the Section 2 hyperbola-fit errors: &X with
// relative error ~1/4, &&X ~1/7, &&&X ~1/23.
func HyperbolaFits(bins int) (*Report, error) {
	if bins <= 0 {
		bins = 256
	}
	r := &Report{
		ID:     "T2.H",
		Title:  "Truncated-hyperbola fit quality (paper Section 2)",
		Header: []string{"expr", "rel error", "paper", "A", "B", "C"},
	}
	u := dist.Uniform(bins)
	paper := map[string]string{"&": "1/4 = 0.250", "&&": "1/7 = 0.143", "&&&": "1/23 = 0.043"}
	for _, ops := range []string{"&", "&&", "&&&"} {
		d, err := dist.Apply(ops, u)
		if err != nil {
			return nil, err
		}
		fit := dist.FitHyperbola(d)
		r.AddRow(ops+"X", f(fit.RelError), paper[ops],
			f(fit.Hyperbola.A), f(fit.Hyperbola.B), f(fit.Hyperbola.C))
	}
	r.Notef("shape to reproduce: the fit error shrinks rapidly as AND chains lengthen —")
	r.Notef("deep AND chains are nearly perfect truncated hyperbolas.")
	return r, nil
}

// CompetitionCosts regenerates the Section 3 analysis: on L-shaped cost
// distributions, the switch arrangement averages (m2+c2+M1)/2 — about
// half the traditional cost — and proportional simultaneous runs do
// better still.
func CompetitionCosts() (*Report, error) {
	r := &Report{
		ID:    "T3.C",
		Title: "Competition vs traditional plan choice on L-shaped costs (paper Section 3)",
		Header: []string{"scenario", "traditional M1", "switch@c2", "paper (m2+c2+M1)/2",
			"optimal switch", "proportional", "ratio trad/prop"},
	}
	type scen struct {
		name           string
		scale1, scale2 float64
		head, headMass float64
	}
	scens := []scen{
		{"equal plans", 1000, 1000, 0.02, 0.5},
		{"A2 riskier", 800, 1200, 0.02, 0.5},
		{"wide heads", 1000, 1000, 0.10, 0.5},
		{"70% head mass", 1000, 1000, 0.02, 0.7},
	}
	for _, s := range scens {
		p1, err := competition.LShaped(512, s.scale1, s.head, s.headMass)
		if err != nil {
			return nil, err
		}
		p2, err := competition.LShaped(512, s.scale2, s.head, s.headMass)
		if err != nil {
			return nil, err
		}
		m1 := competition.TraditionalCost(p1, p2)
		c2 := p2.Quantile(s.headMass)
		sw := competition.SwitchCost(p2, c2, m1)
		m2 := p2.PartialMean(c2) / p2.CDF(c2)
		paperFormula := (m2 + c2 + m1) / 2
		_, opt := competition.OptimalSwitch(p2, m1)
		_, prop, err := competition.OptimalAlpha(p1, p2)
		if err != nil {
			return nil, err
		}
		r.AddRow(s.name, f(m1), f(sw), f(paperFormula), f(opt), f(prop), f(m1/prop))
	}
	r.Notef("shape to reproduce: switch-at-c2 ~ half the traditional cost; proportional runs at least as good.")
	return r, nil
}

// profile renders a coarse density curve as bucket values.
func profile(d *dist.Dist, buckets int) string {
	rb := d.Rebin(buckets)
	parts := make([]string, buckets)
	for i := 0; i < buckets; i++ {
		parts[i] = fmt.Sprintf("%.1f", rb.Density(i))
	}
	return "[" + join(parts, " ") + "]"
}

func join(parts []string, sep string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += sep
		}
		out += p
	}
	return out
}
