package bench

import (
	"fmt"

	"rdbdyn/internal/catalog"
	"rdbdyn/internal/core"
	"rdbdyn/internal/engine"
	"rdbdyn/internal/storage"
	"rdbdyn/internal/workload"
)

// lab is an experiment fixture: a database loaded from a workload spec,
// with cold-cache measurement helpers.
type lab struct {
	db  *engine.DB
	tab *catalog.Table
}

// newLab builds a database with the given buffer-pool frame budget and
// loads the spec.
func newLab(poolFrames int, optCfg core.Config, spec workload.TableSpec) (*lab, error) {
	db := engine.Open(engine.Options{PoolFrames: poolFrames, Optimizer: optCfg})
	tab, err := workload.Build(db.Catalog(), spec)
	if err != nil {
		return nil, err
	}
	return &lab{db: db, tab: tab}, nil
}

// coldRun evicts the cache, zeroes counters, runs f, and returns the
// I/O it cost.
func (l *lab) coldRun(f func() error) (storage.IOStats, error) {
	l.db.Pool().EvictAll()
	l.db.Pool().ResetStats()
	if err := f(); err != nil {
		return storage.IOStats{}, err
	}
	return l.db.Pool().Stats(), nil
}

// drain pulls up to limit rows (0 = all) from a result and closes it.
func drainResult(res *engine.Result, limit int) (int, error) {
	count := 0
	for {
		_, ok, err := res.Next()
		if err != nil {
			res.Close()
			return count, err
		}
		if !ok {
			break
		}
		count++
		if limit > 0 && count >= limit {
			break
		}
	}
	return count, res.Close()
}

// runStmt executes a prepared statement cold and reports rows and I/O.
func (l *lab) runStmt(stmt *engine.Stmt, binds engine.Binds, limit int) (rows int, io storage.IOStats, st core.RetrievalStats, err error) {
	io, err = l.coldRun(func() error {
		res, err := stmt.Query(binds)
		if err != nil {
			return err
		}
		st = res.Stats() // updated below after drain
		rows, err = drainResult(res, limit)
		if err != nil {
			return err
		}
		st = res.Stats()
		return nil
	})
	return rows, io, st, err
}

// runFrozen executes a frozen statement cold.
func (l *lab) runFrozen(stmt *engine.FrozenStmt, binds engine.Binds, limit int) (rows int, io storage.IOStats, err error) {
	io, err = l.coldRun(func() error {
		res, err := stmt.Query(binds)
		if err != nil {
			return err
		}
		rows, err = drainResult(res, limit)
		return err
	})
	return rows, io, err
}

// runFixed executes a fixed strategy cold through core directly.
func (l *lab) runFixed(q *core.Query, s core.FixedStrategy, limit int) (rows int, io storage.IOStats, err error) {
	io, err = l.coldRun(func() error {
		rr := core.RunFixed(q, s, core.DefaultConfig())
		defer rr.Close()
		for {
			_, ok, err := rr.Next()
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			rows++
			if limit > 0 && rows >= limit {
				return nil
			}
		}
	})
	return rows, io, err
}

// mustIndex fetches an index by name.
func (l *lab) mustIndex(name string) (*catalog.Index, error) {
	for _, ix := range l.tab.Indexes {
		if ix.Name == name {
			return ix, nil
		}
	}
	return nil, fmt.Errorf("bench: no index %s", name)
}
