package bench

import "testing"

// The acceptance bar for partitioned scans: at 4 workers the critical
// path must be at most half the sequential I/O (>=2x scan throughput),
// while total attributed I/O stays exactly equal at every width
// (ParallelScanBenchmarks errors internally if the invariant breaks).

func TestParallelScanSpeedup(t *testing.T) {
	series, err := ParallelScanBenchmarks()
	if err != nil {
		t.Fatal(err)
	}
	if len(series) == 0 {
		t.Fatal("no parallel scan series")
	}
	for _, s := range series {
		if s.SequentialIOs == 0 {
			t.Fatalf("%s: sequential baseline is zero", s.Name)
		}
		byWorkers := map[int]ParallelScanPoint{}
		for _, p := range s.Points {
			byWorkers[p.Workers] = p
			if p.TotalIOs != s.SequentialIOs {
				t.Fatalf("%s at %d workers: total %d I/Os, sequential %d",
					s.Name, p.Workers, p.TotalIOs, s.SequentialIOs)
			}
		}
		for _, w := range []int{1, 2, 4} {
			if _, ok := byWorkers[w]; !ok {
				t.Fatalf("%s: no point at %d workers", s.Name, w)
			}
		}
		if sp := byWorkers[4].Speedup; sp < 2 {
			t.Fatalf("%s: speedup %.3f at 4 workers, want >= 2", s.Name, sp)
		}
		if sp := byWorkers[1].Speedup; sp != 1 {
			t.Fatalf("%s: speedup %.3f at 1 worker, want exactly 1", s.Name, sp)
		}
	}
}

// BenchmarkParallelScan runs the full partitioned-scan series (all
// worker counts, both scan shapes) once per iteration; the interesting
// output is deterministic simulated I/O, not wall time, so CI runs it
// with -benchtime=1x as a smoke check.
func BenchmarkParallelScan(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ParallelScanBenchmarks(); err != nil {
			b.Fatal(err)
		}
	}
}
