package bench

import (
	"fmt"

	"rdbdyn/internal/core"
)

// Adaptive-width benchmarks.
//
// The adaptive policy (core.PlanParallelWidth) picks a scan's worker
// width from its appraised I/O, the per-worker startup cost, and the
// engine load, minimizing estIO/k + startup·(k-1). These benchmarks
// replay the policy against the partitioned-scan fixtures and hold it
// to its two promises: on large scans the chosen width's effective
// speedup — critical-path I/O plus the startup charge for the workers
// actually launched — must reach at least 0.9x the best static width's,
// and on a small scan the policy must launch strictly fewer workers
// than the static knob would (ideally none beyond the coordinator).
// Both checks fail the benchmark run loudly, like the partitioning
// invariant.

// AdaptiveScanResult is the adaptive policy's showing on one large-scan
// shape, against the best static width from the same measured series.
type AdaptiveScanResult struct {
	Name          string  `json:"name"`
	SequentialIOs int64   `json:"sequential_ios"`
	StartupCost   float64 `json:"startup_cost"`
	// ChosenWidth is the policy's pick for this scan on an idle engine.
	ChosenWidth           int     `json:"chosen_width"`
	ChosenCriticalPathIOs int64   `json:"chosen_critical_path_ios"`
	ChosenSpeedup         float64 `json:"chosen_speedup"`
	BestStaticWidth       int     `json:"best_static_width"`
	BestStaticSpeedup     float64 `json:"best_static_speedup"`
	// RelativeToBestStatic is ChosenSpeedup / BestStaticSpeedup; the
	// acceptance bar is >= 0.9.
	RelativeToBestStatic float64 `json:"relative_to_best_static"`
}

// AdaptiveSmallScan records the policy keeping a few-page scan
// sequential where the static knob fans out.
type AdaptiveSmallScan struct {
	SequentialIOs int64 `json:"sequential_ios"`
	StaticWidth   int   `json:"static_width"`
	// StaticWorkers is how many workers the static knob actually
	// launches on this heap (clamped to its page count).
	StaticWorkers int `json:"static_workers"`
	// AdaptiveWidth must be strictly smaller than StaticWorkers.
	AdaptiveWidth int `json:"adaptive_width"`
}

// adaptiveSmallRows sizes the small-scan fixture to a handful of heap
// pages: enough for the static knob to split, small enough that the
// policy's startup charge keeps it sequential.
const adaptiveSmallRows = 350

// AdaptiveScanBenchmarks replays the adaptive width policy over the
// measured static series (both large-scan shapes) and the small-scan
// fixture, enforcing both acceptance bars.
func AdaptiveScanBenchmarks(static []ParallelScanSeries) ([]AdaptiveScanResult, *AdaptiveSmallScan, error) {
	const startup = core.DefaultParallelStartupCost
	measure := map[string]func(w int) ([]int64, error){
		"PartitionedTscan": func(w int) ([]int64, error) { return measureHeapScan(pipeRows, w) },
		"PartitionedJscan": measureIndexScan,
	}
	// Effective speedup: the startup charge for k-1 extra workers is
	// real coordinator work, so it counts against the critical path.
	eff := func(seq, critical int64, w int) float64 {
		return float64(seq) / (float64(critical) + startup*float64(w-1))
	}
	var out []AdaptiveScanResult
	for _, s := range static {
		m := measure[s.Name]
		if m == nil {
			continue
		}
		maxW, bestW, bestEff := 1, 1, 0.0
		for _, p := range s.Points {
			if p.Workers > maxW {
				maxW = p.Workers
			}
			if e := eff(s.SequentialIOs, p.CriticalPathIOs, p.Workers); e > bestEff {
				bestW, bestEff = p.Workers, e
			}
		}
		chosen := core.PlanParallelWidth(float64(s.SequentialIOs), maxW, 0, startup)
		per, err := m(chosen)
		if err != nil {
			return nil, nil, err
		}
		var total, critical int64
		for _, c := range per {
			total += c
			if c > critical {
				critical = c
			}
		}
		if total != s.SequentialIOs {
			return nil, nil, fmt.Errorf("bench: %s at adaptive width %d charged %d total I/Os, sequential charged %d (partitioning invariant broken)",
				s.Name, chosen, total, s.SequentialIOs)
		}
		chosenEff := eff(s.SequentialIOs, critical, chosen)
		rel := chosenEff / bestEff
		if rel < 0.9 {
			return nil, nil, fmt.Errorf("bench: %s adaptive width %d reaches %.3fx effective speedup, %.2fx of the best static width %d (%.3fx); want >= 0.9x",
				s.Name, chosen, chosenEff, rel, bestW, bestEff)
		}
		out = append(out, AdaptiveScanResult{
			Name:                  s.Name,
			SequentialIOs:         s.SequentialIOs,
			StartupCost:           startup,
			ChosenWidth:           chosen,
			ChosenCriticalPathIOs: critical,
			ChosenSpeedup:         chosenEff,
			BestStaticWidth:       bestW,
			BestStaticSpeedup:     bestEff,
			RelativeToBestStatic:  rel,
		})
	}
	small, err := adaptiveSmallScanBenchmark()
	if err != nil {
		return nil, nil, err
	}
	return out, small, nil
}

// adaptiveSmallScanBenchmark measures the few-page heap at width 1 for
// the sequential baseline, counts the workers the static knob would
// launch, and checks the policy stays below that.
func adaptiveSmallScanBenchmark() (*AdaptiveSmallScan, error) {
	counts := parallelWorkerCounts()
	staticW := counts[len(counts)-1]
	seqPer, err := measureHeapScan(adaptiveSmallRows, 1)
	if err != nil {
		return nil, err
	}
	var seq int64
	for _, c := range seqPer {
		seq += c
	}
	staticPer, err := measureHeapScan(adaptiveSmallRows, staticW)
	if err != nil {
		return nil, err
	}
	adaptiveW := core.PlanParallelWidth(float64(seq), staticW, 0, core.DefaultParallelStartupCost)
	if adaptiveW >= len(staticPer) {
		return nil, fmt.Errorf("bench: small scan (%d sequential I/Os): adaptive width %d not below the static knob's %d workers",
			seq, adaptiveW, len(staticPer))
	}
	return &AdaptiveSmallScan{
		SequentialIOs: seq,
		StaticWidth:   staticW,
		StaticWorkers: len(staticPer),
		AdaptiveWidth: adaptiveW,
	}, nil
}
