package bench

import (
	"fmt"
	"runtime"
	"sort"

	"rdbdyn/internal/btree"
	"rdbdyn/internal/storage"
)

// Parallel partitioned-scan benchmarks.
//
// The executor's partitioned Tscan and Jscan (core/parallel.go) split a
// scan's page range across workers, each charging its own
// storage.Tracker. Because all costs in this reproduction are simulated
// I/O, scan throughput under parallelism is a deterministic quantity:
// the partitioned scan's makespan is its critical path — the largest
// per-worker attributed I/O — while its total work must equal the
// sequential scan's I/O exactly (the partitioning invariant). These
// benchmarks replay the executor's own partitioning arithmetic
// (contiguous heap chunks; leaf-aligned B-tree partitions) against cold
// pools and report the measured per-worker charges, so the speedup
// series is exact and reproducible on any machine, including
// single-CPU hosts where wall-clock parallel speedup is unobservable.

// ParallelScanPoint is one worker count's measurement.
type ParallelScanPoint struct {
	Workers         int     `json:"workers"`
	PerWorkerIOs    []int64 `json:"per_worker_ios"`
	TotalIOs        int64   `json:"total_ios"`
	CriticalPathIOs int64   `json:"critical_path_ios"`
	// Speedup is sequential I/O over the critical path: the scan-
	// throughput multiple a worker-per-CPU execution realizes.
	Speedup float64 `json:"speedup"`
}

// ParallelScanSeries is one scan shape measured across worker counts.
type ParallelScanSeries struct {
	Name          string              `json:"name"`
	SequentialIOs int64               `json:"sequential_ios"`
	Points        []ParallelScanPoint `json:"points"`
}

// parallelWorkerCounts is the benchmark's worker-count axis: 1, 2, 4,
// and NumCPU, deduplicated and sorted.
func parallelWorkerCounts() []int {
	set := map[int]bool{1: true, 2: true, 4: true, runtime.NumCPU(): true}
	counts := make([]int, 0, len(set))
	for c := range set {
		counts = append(counts, c)
	}
	sort.Ints(counts)
	return counts
}

// ParallelScanBenchmarks measures the partitioned heap scan and the
// leaf-aligned partitioned index scan at each worker count. Every point
// verifies the partitioning invariant — per-worker charges sum to the
// sequential total — and fails loudly if it ever breaks.
func ParallelScanBenchmarks() ([]ParallelScanSeries, error) {
	heap, err := benchParallelHeapScan()
	if err != nil {
		return nil, err
	}
	index, err := benchParallelIndexScan()
	if err != nil {
		return nil, err
	}
	return []ParallelScanSeries{*heap, *index}, nil
}

// benchParallelHeapScan charges each contiguous heap chunk to its own
// tracker, rebuilding the fixture per point so every worker starts on a
// cold pool (all page gets are misses, exactly the executor's charge
// profile for a one-pass scan).
func benchParallelHeapScan() (*ParallelScanSeries, error) {
	series := &ParallelScanSeries{Name: "PartitionedTscan"}
	for _, w := range parallelWorkerCounts() {
		per, err := measureHeapScan(pipeRows, w)
		if err != nil {
			return nil, err
		}
		if err := series.addPoint(w, per); err != nil {
			return nil, err
		}
	}
	return series, nil
}

// measureHeapScan charges one partitioned heap scan of an nrows-row
// fixture at width w and returns the per-worker attributed I/O. The
// fixture is rebuilt and the pool evicted per call, so every
// measurement starts from the same all-miss profile and per-worker
// charges are page counts. Fewer than w workers run when the heap has
// fewer pages — exactly the executor's clamp.
func measureHeapScan(nrows, w int) ([]int64, error) {
	f, err := newHeapFixtureN(nrows)
	if err != nil {
		return nil, err
	}
	f.pool.EvictAll()
	npages := f.tab.Heap.NumPages()
	k := w
	if k > npages {
		k = npages
	}
	var per []int64
	for i := 0; i < k; i++ {
		start := storage.PageNo(i * npages / k)
		end := storage.PageNo((i + 1) * npages / k)
		tr := storage.NewTracker(nil)
		cur := f.tab.Heap.RangeCursorTracked(start, end, tr)
		for {
			_, _, ok, err := cur.Next()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
		}
		cur.Close()
		per = append(per, tr.IOCost())
	}
	return per, nil
}

// benchParallelIndexScan partitions the index-scan fixture's full key
// range with the executor's leaf-aligned PartitionRange: worker 0 pays
// the root-to-leaf descent (as the sequential scan does), every other
// worker opens directly on its first leaf for one charge, interior
// workers stop by exact entry count, and the last worker runs to the
// end of the range.
func benchParallelIndexScan() (*ParallelScanSeries, error) {
	series := &ParallelScanSeries{Name: "PartitionedJscan"}
	for _, w := range parallelWorkerCounts() {
		per, err := measureIndexScan(w)
		if err != nil {
			return nil, err
		}
		if per == nil {
			// Range too small to split at this width; skip the point.
			continue
		}
		if err := series.addPoint(w, per); err != nil {
			return nil, err
		}
	}
	return series, nil
}

// measureIndexScan charges one leaf-aligned partitioned scan of the
// index fixture's full key range at width w and returns the per-worker
// attributed I/O (nil when the range cannot split to w partitions).
// Worker 0 pays the root-to-leaf descent as the sequential scan does;
// every other worker opens directly on its first leaf for one charge.
func measureIndexScan(w int) ([]int64, error) {
	f, err := newIndexScanFixture()
	if err != nil {
		return nil, err
	}
	f.pool.EvictAll() // cold start (see measureHeapScan)
	if w == 1 {
		tr := storage.NewTracker(nil)
		cur, err := f.tree.SeekTracked(nil, nil, tr)
		if err != nil {
			return nil, err
		}
		if err := drainEntries(cur, -1); err != nil {
			return nil, err
		}
		return []int64{tr.IOCost()}, nil
	}
	parts, err := f.tree.PartitionRange(nil, nil, w)
	if err != nil {
		return nil, err
	}
	if parts == nil {
		return nil, nil
	}
	var per []int64
	for i, p := range parts {
		tr := storage.NewTracker(nil)
		var cur *btree.Cursor
		if i == 0 {
			cur, err = f.tree.SeekTracked(nil, nil, tr)
		} else {
			cur, err = f.tree.SeekPartitionLeaf(p.Leaf, nil, tr)
		}
		if err != nil {
			return nil, err
		}
		limit := p.Count
		if i == len(parts)-1 {
			limit = -1 // the last partition terminates on the range bound
		}
		if err := drainEntries(cur, limit); err != nil {
			return nil, err
		}
		per = append(per, tr.IOCost())
	}
	return per, nil
}

// drainEntries consumes up to limit entries (-1 = to exhaustion) in
// leaf-sized batches, mirroring the executor's bounded operator: the
// batch is clamped to the remaining budget, so a count-bounded worker
// never loads a leaf beyond its partition.
func drainEntries(cur *btree.Cursor, limit int64) error {
	defer cur.Close()
	batch := make([]btree.Entry, 256)
	for limit != 0 {
		dst := batch
		if limit > 0 && int64(len(dst)) > limit {
			dst = dst[:limit]
		}
		n, err := cur.NextBatch(dst)
		if err != nil {
			return err
		}
		if n == 0 {
			return nil
		}
		if limit > 0 {
			limit -= int64(n)
		}
	}
	return nil
}

// addPoint folds one worker count's per-worker charges into the series,
// checking the partitioning invariant against the sequential baseline
// (the 1-worker point, which every series records first).
func (s *ParallelScanSeries) addPoint(workers int, per []int64) error {
	var total, max int64
	for _, c := range per {
		total += c
		if c > max {
			max = c
		}
	}
	if s.SequentialIOs == 0 {
		s.SequentialIOs = total
	}
	if total != s.SequentialIOs {
		return fmt.Errorf("bench: %s at %d workers charged %d total I/Os, sequential charged %d (partitioning invariant broken)",
			s.Name, workers, total, s.SequentialIOs)
	}
	speedup := 0.0
	if max > 0 {
		speedup = float64(s.SequentialIOs) / float64(max)
	}
	s.Points = append(s.Points, ParallelScanPoint{
		Workers:         workers,
		PerWorkerIOs:    per,
		TotalIOs:        total,
		CriticalPathIOs: max,
		Speedup:         speedup,
	})
	return nil
}
