package bench

import (
	"strconv"
	"strings"
	"testing"
)

// cellF parses a numeric report cell.
func cellF(t *testing.T, r *Report, row, col int) float64 {
	t.Helper()
	if row >= len(r.Rows) || col >= len(r.Rows[row]) {
		t.Fatalf("%s: no cell (%d,%d)", r.ID, row, col)
	}
	v, err := strconv.ParseFloat(r.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("%s: cell (%d,%d) = %q not numeric", r.ID, row, col, r.Rows[row][col])
	}
	return v
}

func colIndex(t *testing.T, r *Report, name string) int {
	t.Helper()
	for i, h := range r.Header {
		if h == name {
			return i
		}
	}
	t.Fatalf("%s: no column %q in %v", r.ID, name, r.Header)
	return -1
}

func TestFig21Shapes(t *testing.T) {
	r, err := Fig21(128)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 10 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	med := colIndex(t, r, "median")
	// Medians fall along the AND chain (&X, &&X, &&&X are rows 3,4,5).
	if !(cellF(t, r, 3, med) > cellF(t, r, 4, med) && cellF(t, r, 4, med) > cellF(t, r, 5, med)) {
		t.Fatal("AND chain medians must fall")
	}
	sk := colIndex(t, r, "skew")
	// Skew grows as correlation falls (rows 0..2: +1, 0, -0.9).
	if !(cellF(t, r, 0, sk) < cellF(t, r, 1, sk) && cellF(t, r, 1, sk) < cellF(t, r, 2, sk)) {
		t.Fatal("skew must grow as correlation decreases")
	}
	// OR mirrors AND: |X skew = -(&X skew) approximately.
	if cellF(t, r, 3, sk)+cellF(t, r, 6, sk) > 0.01 {
		t.Fatalf("|X must mirror &X: %v vs %v", cellF(t, r, 3, sk), cellF(t, r, 6, sk))
	}
}

func TestFig22Shapes(t *testing.T) {
	r, err := Fig22(256)
	if err != nil {
		t.Fatal(err)
	}
	spread := colIndex(t, r, "spread vs X")
	// One AND inflates the spread by an order of magnitude.
	if cellF(t, r, 1, spread) < 5 {
		t.Fatalf("single AND spread factor = %v", cellF(t, r, 1, spread))
	}
	// Spread grows monotonically along the OR chain (rows 2..4).
	if !(cellF(t, r, 2, spread) < cellF(t, r, 3, spread) && cellF(t, r, 3, spread) < cellF(t, r, 4, spread)) {
		t.Fatal("OR chain must keep spreading")
	}
}

func TestHyperbolaFitShapes(t *testing.T) {
	r, err := HyperbolaFits(256)
	if err != nil {
		t.Fatal(err)
	}
	e := colIndex(t, r, "rel error")
	if !(cellF(t, r, 0, e) > cellF(t, r, 1, e) && cellF(t, r, 1, e) > cellF(t, r, 2, e)) {
		t.Fatal("fit error must fall along the AND chain")
	}
	if cellF(t, r, 0, e) > 0.5 {
		t.Fatalf("&X fit error %v too large", cellF(t, r, 0, e))
	}
}

func TestCompetitionShapes(t *testing.T) {
	r, err := CompetitionCosts()
	if err != nil {
		t.Fatal(err)
	}
	trad := colIndex(t, r, "traditional M1")
	sw := colIndex(t, r, "switch@c2")
	paper := colIndex(t, r, "paper (m2+c2+M1)/2")
	for i := range r.Rows {
		// Switch formula matches the paper's closed form within 10%
		// when the head carries 50% (rows 0-2).
		if i < 3 {
			got, want := cellF(t, r, i, sw), cellF(t, r, i, paper)
			if got/want > 1.1 || want/got > 1.1 {
				t.Fatalf("row %d: switch %v vs paper formula %v", i, got, want)
			}
		}
		// Competition always beats the traditional choice.
		if cellF(t, r, i, sw) >= cellF(t, r, i, trad) {
			t.Fatalf("row %d: switch did not beat traditional", i)
		}
	}
}

func TestHostVariableShapes(t *testing.T) {
	r, err := HostVariable(0)
	if err != nil {
		t.Fatal(err)
	}
	dyn := colIndex(t, r, "dynamic I/O")
	fs := colIndex(t, r, "fixed Fscan I/O")
	ts := colIndex(t, r, "fixed Tscan I/O")
	sn := colIndex(t, r, "frozen-sniffed I/O")
	for i := range r.Rows {
		best := cellF(t, r, i, fs)
		if v := cellF(t, r, i, ts); v < best {
			best = v
		}
		if got := cellF(t, r, i, dyn); got > 3*best+20 {
			t.Fatalf("row %d: dynamic %v strays from best fixed %v", i, got, best)
		}
	}
	// The sniffed frozen plan blows up on the all-rows binding (last row).
	last := len(r.Rows) - 1
	if cellF(t, r, last, sn) < 3*cellF(t, r, last, dyn) {
		t.Fatalf("frozen-sniffed %v should dwarf dynamic %v on A1=0",
			cellF(t, r, last, sn), cellF(t, r, last, dyn))
	}
}

func TestEstimationShapes(t *testing.T) {
	r, err := EstimationStudy(0)
	if err != nil {
		t.Fatal(err)
	}
	truth := colIndex(t, r, "truth")
	desc := colIndex(t, r, "descent k*f^(l-1)")
	cost := colIndex(t, r, "descent I/O")
	scan := colIndex(t, r, "Tscan I/O equivalent")
	for i := range r.Rows {
		// Estimation is far cheaper than scanning.
		if cellF(t, r, i, cost) > cellF(t, r, i, scan)/10 {
			t.Fatalf("row %d: estimation cost %v not small vs scan %v",
				i, cellF(t, r, i, cost), cellF(t, r, i, scan))
		}
		// The descent stays within an order of magnitude.
		tr, d := cellF(t, r, i, truth), cellF(t, r, i, desc)
		if tr > 0 && (d > 10*tr || d < tr/10) {
			t.Fatalf("row %d: descent %v vs truth %v off by >10x", i, d, tr)
		}
	}
}

func TestJscanShapes(t *testing.T) {
	r, err := JscanStudy(0)
	if err != nil {
		t.Fatal(err)
	}
	io := colIndex(t, r, "I/O")
	rows := colIndex(t, r, "rows")
	// Every executor returns the same row count.
	want := cellF(t, r, 0, rows)
	for i := range r.Rows {
		if cellF(t, r, i, rows) != want {
			t.Fatalf("row %d: row count %v != %v", i, cellF(t, r, i, rows), want)
		}
	}
	// dynamic (row 0) <= static thresholds (row 1) <= no competition may
	// vary, but dynamic must beat static clearly on this workload.
	if cellF(t, r, 0, io) >= cellF(t, r, 1, io) {
		t.Fatalf("dynamic %v did not beat static thresholds %v",
			cellF(t, r, 0, io), cellF(t, r, 1, io))
	}
}

func TestTacticBackgroundShapes(t *testing.T) {
	r, err := TacticBackground(0)
	if err != nil {
		t.Fatal(err)
	}
	dyn := colIndex(t, r, "dynamic I/O")
	fs := colIndex(t, r, "fixed Fscan I/O")
	ts := colIndex(t, r, "fixed Tscan I/O")
	for i := range r.Rows {
		best := cellF(t, r, i, fs)
		if v := cellF(t, r, i, ts); v < best {
			best = v
		}
		if got := cellF(t, r, i, dyn); got > 2*best+30 {
			t.Fatalf("row %d: dynamic %v strays from best %v", i, got, best)
		}
	}
	// At the unselective end, fixed Fscan must be far worse than dynamic.
	last := len(r.Rows) - 1
	if cellF(t, r, last, fs) < 3*cellF(t, r, last, dyn) {
		t.Fatal("Fscan should blow up at the unselective end")
	}
}

func TestTacticFastFirstShapes(t *testing.T) {
	r, err := TacticFastFirst(0)
	if err != nil {
		t.Fatal(err)
	}
	ff := colIndex(t, r, "fast-first I/O")
	fs := colIndex(t, r, "fixed Fscan I/O")
	// Drained to the end (last row), fast-first must clearly beat the
	// Fscan random-fetch blowup.
	last := len(r.Rows) - 1
	if cellF(t, r, last, ff) > cellF(t, r, last, fs)/2 {
		t.Fatalf("fast-first full drain %v vs Fscan %v", cellF(t, r, last, ff), cellF(t, r, last, fs))
	}
	// At limit 1 it stays within a small constant of Fscan.
	if cellF(t, r, 0, ff) > cellF(t, r, 0, fs)+50 {
		t.Fatalf("fast-first early %v vs Fscan %v", cellF(t, r, 0, ff), cellF(t, r, 0, fs))
	}
}

func TestTacticSortedShapes(t *testing.T) {
	r, err := TacticSorted(0)
	if err != nil {
		t.Fatal(err)
	}
	so := colIndex(t, r, "sorted tactic I/O")
	fs := colIndex(t, r, "plain Fscan I/O")
	// At the most selective filter (row 0) the cooperation saves most
	// fetches.
	if cellF(t, r, 0, so) > cellF(t, r, 0, fs)/3 {
		t.Fatalf("sorted tactic %v vs plain Fscan %v", cellF(t, r, 0, so), cellF(t, r, 0, fs))
	}
	// It never costs much more than the plain Fscan.
	for i := range r.Rows {
		if cellF(t, r, i, so) > cellF(t, r, i, fs)*1.2+30 {
			t.Fatalf("row %d: sorted tactic %v overshoots Fscan %v",
				i, cellF(t, r, i, so), cellF(t, r, i, fs))
		}
	}
}

func TestTacticIndexOnlyShapes(t *testing.T) {
	r, err := TacticIndexOnly(0)
	if err != nil {
		t.Fatal(err)
	}
	dyn := colIndex(t, r, "dynamic I/O")
	ss := colIndex(t, r, "pure Sscan I/O")
	ts := colIndex(t, r, "Tscan I/O")
	for i := range r.Rows {
		best := cellF(t, r, i, ss)
		if v := cellF(t, r, i, ts); v < best {
			best = v
		}
		if got := cellF(t, r, i, dyn); got > 3*best+30 {
			t.Fatalf("row %d: dynamic %v strays from best %v", i, got, best)
		}
	}
}

func TestGoalInferenceReport(t *testing.T) {
	r, err := GoalInference()
	if err != nil {
		t.Fatal(err)
	}
	wantGoals := []string{"FAST FIRST", "TOTAL TIME", "TOTAL TIME", "TOTAL TIME", "FAST FIRST", "TOTAL TIME", "FAST FIRST"}
	if len(r.Rows) != len(wantGoals) {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for i, want := range wantGoals {
		if got := r.Rows[i][2]; got != want {
			t.Fatalf("row %d (%s): goal %q, want %q", i, r.Rows[i][0], got, want)
		}
	}
}

func TestHybridContainerShapes(t *testing.T) {
	r, err := HybridContainer()
	if err != nil {
		t.Fatal(err)
	}
	spilled := colIndex(t, r, "spilled")
	for _, row := range r.Rows {
		size, _ := strconv.Atoi(row[0])
		cfg := row[1]
		sp := row[spilled] == "true"
		switch {
		case cfg == "always-allocate" && sp:
			t.Fatalf("always-allocate spilled at size %d", size)
		case strings.HasPrefix(cfg, "hybrid") && size <= 20 && sp:
			t.Fatalf("hybrid spilled a tiny list (%d)", size)
		case strings.HasPrefix(cfg, "hybrid") && size >= 50000 && !sp:
			t.Fatalf("hybrid failed to spill a huge list (%d)", size)
		}
	}
}

func TestReportRendering(t *testing.T) {
	r := &Report{ID: "X", Title: "t", Header: []string{"a", "bb"}}
	r.AddRow("1", "2")
	r.Notef("note %d", 7)
	var sb strings.Builder
	r.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"== X: t ==", "a", "bb", "note 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestUnionScanShapes(t *testing.T) {
	r, err := UnionScan(0)
	if err != nil {
		t.Fatal(err)
	}
	dyn := colIndex(t, r, "dynamic I/O")
	ts := colIndex(t, r, "fixed Tscan I/O")
	// The thinnest union (row 0) beats Tscan clearly.
	if cellF(t, r, 0, dyn) > cellF(t, r, 0, ts)/2 {
		t.Fatalf("thin union %v vs Tscan %v", cellF(t, r, 0, dyn), cellF(t, r, 0, ts))
	}
	// The widest union (last row) abandons and stays near Tscan.
	last := len(r.Rows) - 1
	if cellF(t, r, last, dyn) > cellF(t, r, last, ts)*1.2 {
		t.Fatalf("wide union %v should abandon to ~Tscan %v", cellF(t, r, last, dyn), cellF(t, r, last, ts))
	}
	if !strings.Contains(r.Rows[last][5], "Tscan") {
		t.Fatalf("wide union strategy %q should include Tscan", r.Rows[last][5])
	}
}

func TestAblationsShapes(t *testing.T) {
	r, err := Ablations(0)
	if err != nil {
		t.Fatal(err)
	}
	cor := colIndex(t, r, "correlated I/O")
	// The default (row 0) must beat no-competition (last row) on the
	// correlated workload.
	last := len(r.Rows) - 1
	if r.Rows[last][0] != "no competition at all" {
		t.Fatalf("unexpected last config %q", r.Rows[last][0])
	}
	if cellF(t, r, 0, cor) >= cellF(t, r, last, cor) {
		t.Fatalf("default %v did not beat no-competition %v",
			cellF(t, r, 0, cor), cellF(t, r, last, cor))
	}
	// The aggressive threshold changes the borderline strategy.
	if r.Rows[1][4] == r.Rows[0][4] {
		t.Fatalf("aggressive threshold should flip the borderline strategy: %q", r.Rows[1][4])
	}
}

func TestInterferenceShapes(t *testing.T) {
	r, err := Interference(0)
	if err != nil {
		t.Fatal(err)
	}
	v := colIndex(t, r, "victim I/O")
	solo, mixed := cellF(t, r, 0, v), cellF(t, r, 1, v)
	if mixed <= solo {
		t.Fatalf("interleaving must raise the victim's cost: solo %v, mixed %v", solo, mixed)
	}
}

func TestHistogramBaselineShapes(t *testing.T) {
	r, err := HistogramBaseline(50000)
	if err != nil {
		t.Fatal(err)
	}
	truth := colIndex(t, r, "truth")
	desc := colIndex(t, r, "descent")
	hist := colIndex(t, r, "histogram-100")
	// Zipf hot point (row 3): descent within 2x of truth, histogram
	// off by more than 10x.
	tr := cellF(t, r, 3, truth)
	if d := cellF(t, r, 3, desc); d < tr/2 || d > tr*2 {
		t.Fatalf("descent on the spike: %v vs truth %v", d, tr)
	}
	if h := cellF(t, r, 3, hist); h > tr/10 {
		t.Fatalf("histogram should miss the spike: %v vs truth %v", h, tr)
	}
	// Descent probes stay ~tree-height; the build scans every leaf.
	cost := colIndex(t, r, "descent I/O")
	build := colIndex(t, r, "hist build I/O")
	if cellF(t, r, 0, cost)*10 > cellF(t, r, 0, build) {
		t.Fatalf("descent %v not far below build %v", cellF(t, r, 0, cost), cellF(t, r, 0, build))
	}
}

func TestSamplerComparisonShapes(t *testing.T) {
	r, err := SamplerComparison(50000)
	if err != nil {
		t.Fatal(err)
	}
	ranked := colIndex(t, r, "ranked node visits")
	ar := colIndex(t, r, "A/R node visits")
	for i := range r.Rows {
		if cellF(t, r, i, ranked)*10 > cellF(t, r, i, ar) {
			t.Fatalf("row %d: ranked %v not far below A/R %v",
				i, cellF(t, r, i, ranked), cellF(t, r, i, ar))
		}
	}
}
