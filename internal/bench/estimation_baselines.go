package bench

import (
	"fmt"
	"math/rand"

	"rdbdyn/internal/core"
	"rdbdyn/internal/estimate"
	"rdbdyn/internal/expr"
	"rdbdyn/internal/workload"
)

// HistogramBaseline regenerates the Section 5 comparison against
// equi-width histograms, demonstrating all three drawbacks the paper
// lists: costly build rescans, sub-granularity blindness for the small
// ranges that matter most, and staleness under updates (the B-tree
// descent "is always up-to-date").
func HistogramBaseline(rows int) (*Report, error) {
	if rows <= 0 {
		rows = 100000
	}
	spec := workload.TableSpec{
		Name: "H",
		Rows: rows,
		Columns: []workload.ColumnSpec{
			{Name: "K", Gen: workload.Uniform{Lo: 0, Hi: int64(rows)}},
			// A hot spike the uniform histogram cannot see: 2% of rows
			// concentrated on a single key.
			{Name: "Z", Gen: &workload.Zipf{S: 2.0, V: 1, N: 100000}},
		},
		Indexes: [][]string{{"K"}, {"Z"}},
		Seed:    91,
	}
	l, err := newLab(0, core.DefaultConfig(), spec)
	if err != nil {
		return nil, err
	}
	kIx, err := l.mustIndex("H_IX0_K")
	if err != nil {
		return nil, err
	}
	zIx, err := l.mustIndex("H_IX1_Z")
	if err != nil {
		return nil, err
	}
	l.db.Pool().EvictAll()
	l.db.Pool().ResetStats()
	hK, err := estimate.BuildHistogram(kIx, 100)
	if err != nil {
		return nil, err
	}
	l.db.Pool().EvictAll()
	hZ, err := estimate.BuildHistogram(zIx, 100)
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:     "T5.H",
		Title:  fmt.Sprintf("Descent-to-split vs equi-width histograms over %d rows (paper Section 5)", rows),
		Header: []string{"case", "truth", "descent", "histogram-100", "descent I/O", "hist build I/O"},
	}
	intRange := func(a, b int64) expr.Range {
		return expr.Range{
			Lo: expr.Bound{Value: expr.Int(a), Inclusive: true, Present: true},
			Hi: expr.Bound{Value: expr.Int(b), Present: true},
		}
	}
	type probeCase struct {
		name string
		ix   int // 0 = K, 1 = Z
		rg   expr.Range
	}
	probes := []probeCase{
		{"uniform, wide (10%)", 0, intRange(1000, 1000+int64(rows/10))},
		{"uniform, medium (0.5%)", 0, intRange(5000, 5000+int64(rows/200))},
		{"uniform, sub-bucket (0.01%)", 0, intRange(7000, 7000+int64(rows/10000))},
		{"zipf hot point", 1, intRange(0, 1)},
		{"zipf cold slice", 1, intRange(50000, 60000)},
	}
	for _, p := range probes {
		ix, h := kIx, hK
		if p.ix == 1 {
			ix, h = zIx, hZ
		}
		lo, hi := p.rg.EncodedBounds()
		truth, err := ix.Tree.CountRange(lo, hi)
		if err != nil {
			return nil, err
		}
		l.db.Pool().EvictAll()
		l.db.Pool().ResetStats()
		desc, _, err := ix.Tree.EstimateRangeRefined(lo, hi)
		if err != nil {
			return nil, err
		}
		descCost := l.db.Pool().Stats().IOCost()
		hist := h.EstimateRange(p.rg)
		r.AddRow(p.name, n(truth), f(desc), f(hist), n(descCost), n(h.BuildCost))
	}
	// Staleness: double the uniform keys; the tree follows, the
	// histogram doesn't.
	for i := 0; i < rows/2; i++ {
		if _, err := l.tab.Insert(expr.Row{expr.Int(int64(i % rows)), expr.Int(0)}); err != nil {
			return nil, err
		}
	}
	rg := intRange(1000, 1000+int64(rows/10))
	lo, hi := rg.EncodedBounds()
	truth, err := kIx.Tree.CountRange(lo, hi)
	if err != nil {
		return nil, err
	}
	desc, _, err := kIx.Tree.EstimateRangeRefined(lo, hi)
	if err != nil {
		return nil, err
	}
	r.AddRow("after +50% inserts (stale hist)", n(truth), f(desc), f(hK.EstimateRange(rg)), "-", "-")
	r.Notef("the histogram estimates sub-bucket ranges by bucket-uniformity (wrong for spikes and thin")
	r.Notef("slices), costs a full index scan to build, and silently drifts as the table changes;")
	r.Notef("the descent estimate is leaf-exact for small ranges, costs ~height I/Os, and never goes stale.")
	return r, nil
}

// SamplerComparison regenerates the Section 5 / [Ant92] claim that
// ranked ("pseudo-ranked B+-tree") sampling "significantly supersedes
// the known acceptance/rejection method" of [OlRo89]: same sample
// count, far fewer node visits.
func SamplerComparison(rows int) (*Report, error) {
	if rows <= 0 {
		rows = 100000
	}
	spec := workload.TableSpec{
		Name: "SMP",
		Rows: rows,
		Columns: []workload.ColumnSpec{
			{Name: "K", Gen: workload.Uniform{Lo: 0, Hi: int64(rows)}},
		},
		Indexes: [][]string{{"K"}},
		Seed:    17,
	}
	l, err := newLab(0, core.DefaultConfig(), spec)
	if err != nil {
		return nil, err
	}
	ix, err := l.mustIndex("SMP_IX0_K")
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:     "T5.S",
		Title:  "Ranked sampling [Ant92-style] vs acceptance/rejection [OlRo89] (paper Section 5)",
		Header: []string{"samples wanted", "ranked node visits", "A/R node visits", "A/R attempts", "A/R accept rate"},
	}
	rng := rand.New(rand.NewSource(23))
	mf := ix.Tree.MaxFanout()
	for _, want := range []int{16, 64, 256} {
		// Ranked: each sample is one O(height) descent (plus the two
		// rank probes, amortized).
		rankedVisits := (want + 2) * ix.Tree.Height()
		// A/R: draw until accepted.
		attempts, visits, accepted := 0, 0, 0
		for accepted < want && attempts < want*100000 {
			attempts++
			_, _, ok, v, err := ix.Tree.SampleAcceptReject(rng, mf)
			if err != nil {
				return nil, err
			}
			visits += v
			if ok {
				accepted++
			}
		}
		rate := float64(accepted) / float64(attempts)
		r.AddRow(n(int64(want)), n(int64(rankedVisits)), n(int64(visits)), n(int64(attempts)),
			fmt.Sprintf("%.5f", rate))
	}
	r.Notef("shape to reproduce: the A/R sampler rejects most descents (acceptance = prod(fanout_i)/")
	r.Notef("prod(maxFanout)), paying orders of magnitude more node visits per accepted sample.")
	return r, nil
}
