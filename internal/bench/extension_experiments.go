package bench

import (
	"fmt"

	"rdbdyn/internal/core"
	"rdbdyn/internal/engine"
	"rdbdyn/internal/workload"
)

// UnionScan exercises the OR-coverage extension (the paper's Section 7
// names "covering ORs" as the next step for the architecture): a
// restriction whose top level is an OR of index-sargable disjuncts is
// resolved by a union scan, with the same competition-based fallback to
// Tscan when the union grows too wide.
func UnionScan(rows int) (*Report, error) {
	if rows <= 0 {
		rows = 50000
	}
	l, err := newLab(256, core.DefaultConfig(), familiesSpec(rows))
	if err != nil {
		return nil, err
	}
	if _, err := l.tab.CreateIndex("CITY_IX", "CITY"); err != nil {
		return nil, err
	}
	stmt, err := l.db.Prepare("SELECT * FROM FAMILIES WHERE AGE < :W OR CITY = :C OPTIMIZE FOR TOTAL TIME")
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:     "T8.OR",
		Title:  fmt.Sprintf("Union scan for OR restrictions over %d rows, %d pages (extension of Section 7)", rows, l.tab.Pages()),
		Header: []string{"AGE width", "CITY", "rows", "dynamic I/O", "fixed Tscan I/O", "strategy"},
	}
	cases := []struct {
		w, c int64
	}{
		{20, 900},  // two thin slices
		{200, 500}, // thin + moderate
		{2000, 2},  // moderate + hot Zipf value
		{8000, 0},  // wide: union must abandon to Tscan
	}
	for _, tc := range cases {
		binds := engine.Binds{"W": tc.w, "C": tc.c}
		nRows, dynIO, st, err := l.runStmt(stmt, binds, 0)
		if err != nil {
			return nil, err
		}
		q := stmt.CoreQuery()
		bb, err := binds.Bindings()
		if err != nil {
			return nil, err
		}
		q.Binds = bb
		_, tsIO, err := l.runFixed(q, core.FixedStrategy{Kind: core.StrategyTscan}, 0)
		if err != nil {
			return nil, err
		}
		r.AddRow(n(tc.w), n(tc.c), n(int64(nRows)), n(dynIO.IOCost()), n(tsIO.IOCost()), st.Strategy)
	}
	r.Notef("shape: selective unions resolve via per-disjunct index scans far below Tscan;")
	r.Notef("the union's two-stage competition abandons to Tscan once the projected list grows too wide.")
	return r, nil
}

// Ablations measures how each dynamic-optimizer design choice moves the
// cost on the T6.J workload (correlated + unproductive indexes): the
// switch criterion thresholds, adjacent-pair racing, the initial-stage
// short-range shortcut, and competition as a whole.
func Ablations(rows int) (*Report, error) {
	if rows <= 0 {
		rows = 40000
	}
	spec := workload.TableSpec{
		Name: "J",
		Rows: rows,
		Columns: []workload.ColumnSpec{
			{Name: "A", Gen: workload.Uniform{Lo: 0, Hi: 1000}},
			{Name: "B", Gen: workload.Correlated{Source: 0, Noise: 3}},
			{Name: "C", Gen: workload.Uniform{Lo: 0, Hi: 1000}},
			{Name: "D", Gen: workload.Uniform{Lo: 0, Hi: 1000}},
			{Name: "PAD", Gen: workload.Pad{Len: 50}},
		},
		Indexes: [][]string{{"A"}, {"B"}, {"C"}, {"D"}},
		Seed:    77,
	}
	// Two probes: the correlated/unproductive workload (exercises the
	// skip pre-check and racing) and a borderline single-index query
	// whose projected final cost sits just above the default threshold
	// (exercises mid-scan abandonment).
	sqlText := "SELECT * FROM J WHERE A < 5 AND B < 8 AND C < 800 AND D < 900"
	borderSQL := "SELECT * FROM J WHERE A < 28"
	base := core.DefaultConfig()
	mk := func(mod func(*core.Config)) core.Config {
		c := base
		mod(&c)
		return c
	}
	configs := []struct {
		name string
		cfg  core.Config
	}{
		{"default (0.95 / 0.5)", base},
		{"aggressive switch (0.50)", mk(func(c *core.Config) { c.Criterion.Threshold = 0.5 })},
		{"timid switch (0.999)", mk(func(c *core.Config) { c.Criterion.Threshold = 0.999 })},
		{"tight scan limit (0.1)", mk(func(c *core.Config) { c.Criterion.ScanCostFrac = 0.1 })},
		{"no pair racing", mk(func(c *core.Config) { c.RaceFactor = 0 })},
		{"no short-range shortcut", mk(func(c *core.Config) { c.ShortRange = 1 })},
		{"no competition at all", mk(func(c *core.Config) { c.DisableCompetition = true })},
	}
	r := &Report{
		ID:     "TA.AB",
		Title:  "Design-choice ablations (DESIGN.md knobs)",
		Header: []string{"configuration", "correlated I/O", "strategy", "borderline I/O", "strategy"},
	}
	for _, c := range configs {
		l, err := newLab(256, c.cfg, spec)
		if err != nil {
			return nil, err
		}
		stmt, err := l.db.Prepare(sqlText)
		if err != nil {
			return nil, err
		}
		_, io, st, err := l.runStmt(stmt, nil, 0)
		if err != nil {
			return nil, err
		}
		bStmt, err := l.db.Prepare(borderSQL)
		if err != nil {
			return nil, err
		}
		_, bio, bst, err := l.runStmt(bStmt, nil, 0)
		if err != nil {
			return nil, err
		}
		r.AddRow(c.name, n(io.IOCost()), st.Strategy, n(bio.IOCost()), bst.Strategy)
	}
	r.Notef("the default criterion dominates: timid switching and disabled competition pay for")
	r.Notef("unproductive scans, while an aggressive threshold risks abandoning productive ones.")
	return r, nil
}

// Interference reproduces the Section 3(c) observation: "the pattern of
// caching the disk pages is influenced by many asynchronous processes
// totally unrelated to a given retrieval". The same selective query is
// measured solo on a warm cache and interleaved row-by-row with a
// cache-hostile sequential scan sharing the pool.
func Interference(rows int) (*Report, error) {
	if rows <= 0 {
		rows = 50000
	}
	l, err := newLab(128, core.DefaultConfig(), familiesSpec(rows))
	if err != nil {
		return nil, err
	}
	if _, err := l.tab.CreateIndex("ID_IX", "ID"); err != nil {
		return nil, err
	}
	// The victim is a clustered slice: a handful of heap pages, fully
	// cacheable. The bully is a plain sequential stream sharing the pool.
	victimSQL := "SELECT * FROM FAMILIES WHERE ID < 2000"
	bullySQL := "SELECT * FROM FAMILIES"

	runVictim := func() (int64, error) {
		before := l.db.Pool().Stats().IOCost()
		res, err := l.db.Query(victimSQL, nil)
		if err != nil {
			return 0, err
		}
		if _, err := drainResult(res, 0); err != nil {
			return 0, err
		}
		return l.db.Pool().Stats().IOCost() - before, nil
	}

	r := &Report{
		ID:     "T3.I",
		Title:  "Cache interference between concurrent retrievals (paper Section 3c)",
		Header: []string{"scenario", "victim I/O"},
	}
	// Warm the cache with one run, then measure solo (mostly hits).
	if _, err := runVictim(); err != nil {
		return nil, err
	}
	solo, err := runVictim()
	if err != nil {
		return nil, err
	}
	r.AddRow("solo, warm cache", n(solo))

	// Interleaved: between every victim row, the bully streams 100 rows
	// through the shared pool.
	victim, err := l.db.Query(victimSQL, nil)
	if err != nil {
		return nil, err
	}
	var victimIO int64
	bully, err := l.db.Query(bullySQL, nil)
	if err != nil {
		return nil, err
	}
	for {
		b0 := l.db.Pool().Stats().IOCost()
		_, ok, err := victim.Next()
		if err != nil {
			return nil, err
		}
		victimIO += l.db.Pool().Stats().IOCost() - b0
		if !ok {
			break
		}
		for i := 0; i < 100; i++ {
			if _, ok, err := bully.Next(); err != nil {
				return nil, err
			} else if !ok {
				bully.Close()
				bully, err = l.db.Query(bullySQL, nil)
				if err != nil {
					return nil, err
				}
			}
		}
	}
	victim.Close()
	bully.Close()
	r.AddRow("interleaved with a scanning query", n(victimIO))
	r.Notef("same query, same data: the shared cache makes per-query cost unpredictable, which is")
	r.Notef("why the paper treats fetch costs as an uncertainty competition must absorb, not a constant.")
	return r, nil
}
