package bench

import "testing"

// The acceptance bars for the adaptive width policy, mirrored from
// AdaptiveScanBenchmarks' own fail-loudly checks: on every large scan
// the chosen width's effective speedup (startup charged) reaches at
// least 0.9x the best static width's, and on the few-page scan the
// policy stays sequential while the static knob fans out.

func TestAdaptiveScanPolicy(t *testing.T) {
	static, err := ParallelScanBenchmarks()
	if err != nil {
		t.Fatal(err)
	}
	adaptive, small, err := AdaptiveScanBenchmarks(static)
	if err != nil {
		t.Fatal(err)
	}
	if len(adaptive) != len(static) {
		t.Fatalf("adaptive covered %d of %d static series", len(adaptive), len(static))
	}
	for _, a := range adaptive {
		if a.RelativeToBestStatic < 0.9 {
			t.Fatalf("%s: adaptive width %d at %.2fx of best static width %d, want >= 0.9x",
				a.Name, a.ChosenWidth, a.RelativeToBestStatic, a.BestStaticWidth)
		}
		if a.ChosenWidth < 2 {
			t.Fatalf("%s: adaptive width %d on a large scan, want fan-out", a.Name, a.ChosenWidth)
		}
	}
	if small == nil {
		t.Fatal("no small-scan measurement")
	}
	if small.AdaptiveWidth != 1 {
		t.Fatalf("small scan: adaptive width %d, want 1", small.AdaptiveWidth)
	}
	if small.AdaptiveWidth >= small.StaticWorkers {
		t.Fatalf("small scan: adaptive width %d not below the static knob's %d workers",
			small.AdaptiveWidth, small.StaticWorkers)
	}
}
