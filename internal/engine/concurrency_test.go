package engine

import (
	"math/rand"
	"sync"
	"testing"

	"rdbdyn/internal/catalog"
	"rdbdyn/internal/expr"
)

// concurrencyDB builds a table whose per-age row counts are known, so
// parallel readers can verify results exactly.
func concurrencyDB(t *testing.T, rows, ages int, opts Options) (*DB, []int) {
	t.Helper()
	db := Open(opts)
	_, err := db.CreateTable("T",
		catalog.Column{Name: "ID", Type: expr.TypeInt},
		catalog.Column{Name: "AGE", Type: expr.TypeInt},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex("T", "AGE_IX", "AGE"); err != nil {
		t.Fatal(err)
	}
	counts := make([]int, ages)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < rows; i++ {
		age := int(rng.Int63n(int64(ages)))
		if err := db.Insert("T", i, age); err != nil {
			t.Fatal(err)
		}
		counts[age]++
	}
	return db, counts
}

// TestParallelQueries drives one prepared statement from many
// goroutines against a sharded pool and checks every result set exactly.
// Run with -race to exercise the concurrency claims of the façade.
func TestParallelQueries(t *testing.T) {
	const (
		rows    = 20000
		ages    = 1000
		workers = 16
		perWkr  = 25
	)
	db, counts := concurrencyDB(t, rows, ages, Options{PoolFrames: 1024, PoolShards: 8})
	point, err := db.Prepare("SELECT * FROM T WHERE AGE = :A")
	if err != nil {
		t.Fatal(err)
	}
	rangeStmt, err := db.Prepare("SELECT ID FROM T WHERE AGE BETWEEN :L AND :H")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWkr; i++ {
				if i%5 == 4 {
					lo := int(rng.Int63n(int64(ages - 20)))
					hi := lo + 19
					res, err := rangeStmt.Query(Binds{"L": lo, "H": hi})
					if err != nil {
						t.Error(err)
						return
					}
					got, err := res.All()
					if err != nil {
						t.Error(err)
						return
					}
					want := 0
					for a := lo; a <= hi; a++ {
						want += counts[a]
					}
					if len(got) != want {
						t.Errorf("range [%d,%d]: got %d rows, want %d", lo, hi, len(got), want)
						return
					}
				} else {
					age := int(rng.Int63n(int64(ages)))
					res, err := point.Query(Binds{"A": age})
					if err != nil {
						t.Error(err)
						return
					}
					got, err := res.All()
					if err != nil {
						t.Error(err)
						return
					}
					if len(got) != counts[age] {
						t.Errorf("age %d: got %d rows, want %d", age, len(got), counts[age])
						return
					}
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()
}

// TestParallelInserts checks that concurrent writers to one table
// serialize correctly: every row lands and the index stays consistent.
func TestParallelInserts(t *testing.T) {
	const (
		workers = 8
		perWkr  = 250
	)
	db, _ := concurrencyDB(t, 0, 10, Options{PoolFrames: 512, PoolShards: 4})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for i := 0; i < perWkr; i++ {
				if err := db.Insert("T", base+i, (base+i)%97); err != nil {
					t.Error(err)
					return
				}
			}
		}(w * perWkr)
	}
	wg.Wait()
	res, err := db.Query("SELECT COUNT(*) FROM T", nil)
	if err != nil {
		t.Fatal(err)
	}
	all, err := res.All()
	if err != nil {
		t.Fatal(err)
	}
	if n := all[0][0].I; n != workers*perWkr {
		t.Fatalf("got %d rows after parallel inserts, want %d", n, workers*perWkr)
	}
	// The index must agree with the heap.
	res, err = db.Query("SELECT * FROM T WHERE AGE = 13", nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := res.All()
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < workers*perWkr; i++ {
		if i%97 == 13 {
			want++
		}
	}
	if len(rows) != want {
		t.Fatalf("index query got %d rows, want %d", len(rows), want)
	}
}

// TestPerQueryAttributionMatchesPoolDelta is the acceptance check for
// tracker-based attribution: with exactly one query running, the sum of
// its attributed I/O (productive stages + estimation) equals the global
// pool-counter delta — the quantity the old snapshot-differencing code
// reported. The first run warms the optimizer's cluster-ratio cache,
// whose sampling I/O is deliberately unattributed.
func TestPerQueryAttributionMatchesPoolDelta(t *testing.T) {
	db, _ := concurrencyDB(t, 20000, 1000, Options{PoolFrames: 256})
	stmt, err := db.Prepare("SELECT * FROM T WHERE AGE BETWEEN 100 AND 120")
	if err != nil {
		t.Fatal(err)
	}
	warm, err := stmt.Query(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := warm.All(); err != nil {
		t.Fatal(err)
	}

	db.Pool().EvictAll()
	db.Pool().ResetStats()
	res, err := stmt.Query(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.All(); err != nil {
		t.Fatal(err)
	}
	st := res.Stats()
	delta := db.Pool().Stats().IOCost()
	attributed := st.IO.IOCost() + st.EstimateIO
	if delta != attributed {
		t.Fatalf("global pool delta %d != attributed %d (stage IO %d + estimate %d); tactic %s",
			delta, attributed, st.IO.IOCost(), st.EstimateIO, st.Tactic)
	}
	if delta == 0 {
		t.Fatal("expected the cold run to perform I/O")
	}
}
