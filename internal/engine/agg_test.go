package engine

import (
	"math"
	"strings"
	"testing"

	"rdbdyn/internal/catalog"
	"rdbdyn/internal/expr"
)

func aggDB(t *testing.T) *DB {
	t.Helper()
	db := Open(Options{})
	_, err := db.CreateTable("T",
		catalog.Column{Name: "ID", Type: expr.TypeInt},
		catalog.Column{Name: "V", Type: expr.TypeInt},
		catalog.Column{Name: "F", Type: expr.TypeFloat},
		catalog.Column{Name: "S", Type: expr.TypeString},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex("T", "ID_IX", "ID"); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 100; i++ {
		if err := db.Insert("T", i, i*2, float64(i)/2, "s"); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func oneValue(t *testing.T, db *DB, src string) expr.Value {
	t.Helper()
	res, err := db.Query(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := res.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || len(rows[0]) != 1 {
		t.Fatalf("aggregate returned %v", rows)
	}
	return rows[0][0]
}

func TestAggregates(t *testing.T) {
	db := aggDB(t)
	if v := oneValue(t, db, "SELECT SUM(V) FROM T"); v.I != 10100 {
		t.Fatalf("SUM = %v", v)
	}
	if v := oneValue(t, db, "SELECT MIN(V) FROM T"); v.I != 2 {
		t.Fatalf("MIN = %v", v)
	}
	if v := oneValue(t, db, "SELECT MAX(V) FROM T"); v.I != 200 {
		t.Fatalf("MAX = %v", v)
	}
	if v := oneValue(t, db, "SELECT AVG(V) FROM T"); math.Abs(v.F-101) > 1e-9 {
		t.Fatalf("AVG = %v", v)
	}
	// Float column keeps float type.
	if v := oneValue(t, db, "SELECT SUM(F) FROM T"); v.T != expr.TypeFloat || math.Abs(v.F-2525) > 1e-9 {
		t.Fatalf("SUM(F) = %v", v)
	}
	// Restricted aggregate.
	if v := oneValue(t, db, "SELECT SUM(V) FROM T WHERE ID <= 3"); v.I != 12 {
		t.Fatalf("restricted SUM = %v", v)
	}
	// Empty input -> NULL.
	if v := oneValue(t, db, "SELECT MAX(V) FROM T WHERE ID > 1000"); !v.IsNull() {
		t.Fatalf("empty MAX = %v", v)
	}
	// Aggregates infer the total-time goal.
	stmt, err := db.Prepare("SELECT SUM(V) FROM T")
	if err != nil {
		t.Fatal(err)
	}
	if g := stmt.CoreQuery().EffectiveGoal().String(); g != "TOTAL TIME" {
		t.Fatalf("goal = %s", g)
	}
}

func TestAggregateColumnHeader(t *testing.T) {
	db := aggDB(t)
	res, err := db.Query("SELECT MIN(V) FROM T", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Columns(); got[0] != "MIN(V)" {
		t.Fatalf("header = %v", got)
	}
	res.Close()
}

func TestAggregateErrors(t *testing.T) {
	db := aggDB(t)
	for _, src := range []string{
		"SELECT SUM(S) FROM T",    // non-numeric column
		"SELECT SUM(NOPE) FROM T", // unknown column
		"SELECT SUM(V FROM T",
		"EXISTS(SELECT SUM(V) FROM T)",
	} {
		if _, err := db.Query(src, nil); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestInAndBetween(t *testing.T) {
	db := aggDB(t)
	res, err := db.Query("SELECT ID FROM T WHERE ID IN (3, 5, 999)", nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := res.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("IN returned %d rows", len(rows))
	}
	// IN over an indexed column resolves via the union scan.
	if !strings.Contains(res.Stats().Strategy, "Uscan") {
		t.Fatalf("IN strategy = %q", res.Stats().Strategy)
	}
	res2, err := db.Query("SELECT COUNT(*) FROM T WHERE ID BETWEEN 10 AND 19", nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, _ = res2.All()
	if rows[0][0].I != 10 {
		t.Fatalf("BETWEEN count = %v", rows[0][0])
	}
	// NOT IN / NOT BETWEEN.
	res3, err := db.Query("SELECT COUNT(*) FROM T WHERE ID NOT IN (1, 2)", nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, _ = res3.All()
	if rows[0][0].I != 98 {
		t.Fatalf("NOT IN count = %v", rows[0][0])
	}
	res4, err := db.Query("SELECT COUNT(*) FROM T WHERE ID NOT BETWEEN 1 AND 90", nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, _ = res4.All()
	if rows[0][0].I != 10 {
		t.Fatalf("NOT BETWEEN count = %v", rows[0][0])
	}
	// Parameters inside IN.
	res5, err := db.Query("SELECT COUNT(*) FROM T WHERE ID IN (:a, :b)", Binds{"a": 7, "b": 8})
	if err != nil {
		t.Fatal(err)
	}
	rows, _ = res5.All()
	if rows[0][0].I != 2 {
		t.Fatalf("param IN count = %v", rows[0][0])
	}
}

func TestInBetweenParseErrors(t *testing.T) {
	db := aggDB(t)
	for _, src := range []string{
		"SELECT * FROM T WHERE ID IN ()",
		"SELECT * FROM T WHERE ID IN (1",
		"SELECT * FROM T WHERE ID IN (V)", // column ref in list
		"SELECT * FROM T WHERE ID BETWEEN 1",
		"SELECT * FROM T WHERE ID NOT 5",
	} {
		if _, err := db.Prepare(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}
