package engine

import (
	"math/rand"
	"testing"

	"rdbdyn/internal/catalog"
	"rdbdyn/internal/expr"
)

func benchDB(b *testing.B, rows int) *DB {
	b.Helper()
	db := Open(Options{PoolFrames: 512})
	_, err := db.CreateTable("T",
		catalog.Column{Name: "ID", Type: expr.TypeInt},
		catalog.Column{Name: "AGE", Type: expr.TypeInt},
	)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := db.CreateIndex("T", "AGE_IX", "AGE"); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < rows; i++ {
		if err := db.Insert("T", i, int(rng.Int63n(10000))); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

// BenchmarkPreparedPointQuery measures the end-to-end per-run cost of
// the dynamic optimizer on a short OLTP-style retrieval: initial-stage
// estimation, tactic choice, and delivery of a handful of rows.
func BenchmarkPreparedPointQuery(b *testing.B) {
	db := benchDB(b, 50000)
	stmt, err := db.Prepare("SELECT * FROM T WHERE AGE = :A")
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := stmt.Query(Binds{"A": int(rng.Int63n(10000))})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := res.All(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPrepareOnly measures parse + compile.
func BenchmarkPrepareOnly(b *testing.B) {
	db := benchDB(b, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Prepare("SELECT ID FROM T WHERE AGE BETWEEN 5 AND 10 ORDER BY AGE LIMIT 3"); err != nil {
			b.Fatal(err)
		}
	}
}
