package engine

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"rdbdyn/internal/catalog"
	"rdbdyn/internal/expr"
)

func benchDB(b *testing.B, rows int) *DB {
	return benchDBOpts(b, rows, Options{PoolFrames: 512})
}

func benchDBOpts(b *testing.B, rows int, opts Options) *DB {
	b.Helper()
	db := Open(opts)
	_, err := db.CreateTable("T",
		catalog.Column{Name: "ID", Type: expr.TypeInt},
		catalog.Column{Name: "AGE", Type: expr.TypeInt},
	)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := db.CreateIndex("T", "AGE_IX", "AGE"); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < rows; i++ {
		if err := db.Insert("T", i, int(rng.Int63n(10000))); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

// BenchmarkPreparedPointQuery measures the end-to-end per-run cost of
// the dynamic optimizer on a short OLTP-style retrieval: initial-stage
// estimation, tactic choice, and delivery of a handful of rows.
func BenchmarkPreparedPointQuery(b *testing.B) {
	db := benchDB(b, 50000)
	stmt, err := db.Prepare("SELECT * FROM T WHERE AGE = :A")
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := stmt.Query(Binds{"A": int(rng.Int63n(10000))})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := res.All(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelQuery measures query throughput when many
// goroutines share one DB and one prepared statement — the scenario the
// sharded buffer pool and tracker-based attribution exist for. Each
// sub-benchmark splits b.N across a fixed goroutine count so the
// 1-vs-16 ratio reflects scaling, not workload size.
func BenchmarkParallelQuery(b *testing.B) {
	db := benchDBOpts(b, 50000, Options{PoolFrames: 8192, PoolShards: 16})
	stmt, err := db.Prepare("SELECT * FROM T WHERE AGE = :A")
	if err != nil {
		b.Fatal(err)
	}
	for _, gr := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("goroutines=%d", gr), func(b *testing.B) {
			errs := make([]error, gr)
			var wg sync.WaitGroup
			b.ResetTimer()
			for w := 0; w < gr; w++ {
				n := b.N / gr
				if w < b.N%gr {
					n++
				}
				wg.Add(1)
				go func(w, n int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(100 + w)))
					for i := 0; i < n; i++ {
						res, err := stmt.Query(Binds{"A": int(rng.Int63n(10000))})
						if err != nil {
							errs[w] = err
							return
						}
						if _, err := res.All(); err != nil {
							errs[w] = err
							return
						}
					}
				}(w, n)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPrepareOnly measures parse + compile.
func BenchmarkPrepareOnly(b *testing.B) {
	db := benchDB(b, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Prepare("SELECT ID FROM T WHERE AGE BETWEEN 5 AND 10 ORDER BY AGE LIMIT 3"); err != nil {
			b.Fatal(err)
		}
	}
}
