package engine

import (
	"testing"

	"rdbdyn/internal/catalog"
	"rdbdyn/internal/expr"
)

func dmlDB(t *testing.T) *DB {
	t.Helper()
	db := Open(Options{})
	_, err := db.CreateTable("T",
		catalog.Column{Name: "ID", Type: expr.TypeInt},
		catalog.Column{Name: "NAME", Type: expr.TypeString},
		catalog.Column{Name: "SCORE", Type: expr.TypeFloat},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex("T", "ID_IX", "ID"); err != nil {
		t.Fatal(err)
	}
	return db
}

func countRows(t *testing.T, db *DB, src string) int64 {
	t.Helper()
	res, err := db.Query(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := res.All()
	if err != nil {
		t.Fatal(err)
	}
	return rows[0][0].I
}

func TestInsertStatement(t *testing.T) {
	db := dmlDB(t)
	n, err := db.Exec("INSERT INTO T VALUES (1, 'alice', 9.5), (2, 'bob', 7.25)", nil)
	if err != nil || n != 2 {
		t.Fatalf("insert: %d, %v", n, err)
	}
	if got := countRows(t, db, "SELECT COUNT(*) FROM T"); got != 2 {
		t.Fatalf("count = %d", got)
	}
	res, err := db.Query("SELECT NAME FROM T WHERE ID = 2", nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, _ := res.All()
	if len(rows) != 1 || rows[0][0].S != "bob" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestInsertWithParams(t *testing.T) {
	db := dmlDB(t)
	n, err := db.Exec("INSERT INTO T VALUES (:id, :name, :s)", Binds{"id": 7, "name": "carol", "s": 1.0})
	if err != nil || n != 1 {
		t.Fatalf("insert: %d, %v", n, err)
	}
	if _, err := db.Exec("INSERT INTO T VALUES (:missing, 'x', 0.0)", nil); err == nil {
		t.Fatal("unbound parameter accepted")
	}
}

func TestInsertTypeChecked(t *testing.T) {
	db := dmlDB(t)
	if _, err := db.Exec("INSERT INTO T VALUES ('oops', 'x', 1.0)", nil); err == nil {
		t.Fatal("type mismatch accepted")
	}
	if _, err := db.Exec("INSERT INTO T VALUES (1, 'x')", nil); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestDeleteStatementMaintainsIndexes(t *testing.T) {
	db := dmlDB(t)
	for i := 0; i < 100; i++ {
		if _, err := db.Exec("INSERT INTO T VALUES (:i, 'n', 0.5)", Binds{"i": i}); err != nil {
			t.Fatal(err)
		}
	}
	n, err := db.Exec("DELETE FROM T WHERE ID < 40", nil)
	if err != nil || n != 40 {
		t.Fatalf("delete: %d, %v", n, err)
	}
	if got := countRows(t, db, "SELECT COUNT(*) FROM T"); got != 60 {
		t.Fatalf("count after delete = %d", got)
	}
	// The index must agree (query through it).
	res, err := db.Query("SELECT COUNT(*) FROM T WHERE ID < 50", nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, _ := res.All()
	if rows[0][0].I != 10 {
		t.Fatalf("indexed count = %d, want 10", rows[0][0].I)
	}
	tab, _ := db.Catalog().Table("T")
	if tab.Indexes[0].Tree.Len() != 60 {
		t.Fatalf("index entries = %d, want 60", tab.Indexes[0].Tree.Len())
	}
}

func TestDeleteWithParamsAndAll(t *testing.T) {
	db := dmlDB(t)
	for i := 0; i < 20; i++ {
		db.Exec("INSERT INTO T VALUES (:i, 'n', 0.5)", Binds{"i": i})
	}
	n, err := db.Exec("DELETE FROM T WHERE ID >= :lo", Binds{"lo": 15})
	if err != nil || n != 5 {
		t.Fatalf("param delete: %d, %v", n, err)
	}
	n, err = db.Exec("DELETE FROM T", nil)
	if err != nil || n != 15 {
		t.Fatalf("delete all: %d, %v", n, err)
	}
	if got := countRows(t, db, "SELECT COUNT(*) FROM T"); got != 0 {
		t.Fatalf("count = %d", got)
	}
}

func TestExecRejectsSelect(t *testing.T) {
	db := dmlDB(t)
	if _, err := db.Exec("SELECT * FROM T", nil); err == nil {
		t.Fatal("SELECT through Exec accepted")
	}
}

func TestDMLParseErrors(t *testing.T) {
	db := dmlDB(t)
	for _, src := range []string{
		"INSERT T VALUES (1)",
		"INSERT INTO T (1)",
		"INSERT INTO T VALUES 1",
		"INSERT INTO T VALUES (1,)",
		"INSERT INTO T VALUES (ID, 'x', 1.0)", // column ref not allowed
		"DELETE T",
		"DELETE FROM T WHERE",
		"DELETE FROM MISSING",
	} {
		if _, err := db.Exec(src, nil); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestUpdateStatement(t *testing.T) {
	db := dmlDB(t)
	for i := 0; i < 50; i++ {
		db.Exec("INSERT INTO T VALUES (:i, 'n', 1.0)", Binds{"i": i})
	}
	n, err := db.Exec("UPDATE T SET SCORE = 9.9, NAME = 'hot' WHERE ID < 10", nil)
	if err != nil || n != 10 {
		t.Fatalf("update: %d, %v", n, err)
	}
	res, err := db.Query("SELECT NAME, SCORE FROM T WHERE ID = 3", nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, _ := res.All()
	if rows[0][0].S != "hot" || rows[0][1].F != 9.9 {
		t.Fatalf("updated row = %v", rows[0])
	}
	// Untouched rows stay.
	res2, _ := db.Query("SELECT NAME FROM T WHERE ID = 20", nil)
	rows, _ = res2.All()
	if rows[0][0].S != "n" {
		t.Fatalf("untouched row = %v", rows[0])
	}
}

func TestUpdateMaintainsIndexes(t *testing.T) {
	db := dmlDB(t)
	for i := 0; i < 50; i++ {
		db.Exec("INSERT INTO T VALUES (:i, 'n', 1.0)", Binds{"i": i})
	}
	// Move IDs 0..9 to 1000..1009: the ID index must follow.
	n, err := db.Exec("UPDATE T SET ID = :new WHERE ID = :old", Binds{"new": 1000, "old": 0})
	if err != nil || n != 1 {
		t.Fatalf("update: %d, %v", n, err)
	}
	if got := countRows(t, db, "SELECT COUNT(*) FROM T WHERE ID = 1000"); got != 1 {
		t.Fatalf("moved row not found via index: %d", got)
	}
	if got := countRows(t, db, "SELECT COUNT(*) FROM T WHERE ID = 0"); got != 0 {
		t.Fatalf("old key still matches: %d", got)
	}
	tab, _ := db.Catalog().Table("T")
	if tab.Indexes[0].Tree.Len() != 50 {
		t.Fatalf("index entries = %d, want 50", tab.Indexes[0].Tree.Len())
	}
}

func TestUpdateWithParamsAndErrors(t *testing.T) {
	db := dmlDB(t)
	db.Exec("INSERT INTO T VALUES (1, 'n', 1.0)", nil)
	if _, err := db.Exec("UPDATE T SET SCORE = :missing", nil); err == nil {
		t.Fatal("unbound param accepted")
	}
	if _, err := db.Exec("UPDATE T SET NOPE = 1", nil); err == nil {
		t.Fatal("unknown column accepted")
	}
	if _, err := db.Exec("UPDATE T SET ID = 'oops'", nil); err == nil {
		t.Fatal("type mismatch accepted")
	}
	for _, src := range []string{
		"UPDATE T SCORE = 1",
		"UPDATE T SET SCORE",
		"UPDATE T SET SCORE = ID", // column ref not allowed
		"UPDATE T SET SCORE = 1 WHERE",
	} {
		if _, err := db.Exec(src, nil); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestUpdateSelfMatchingDoesNotLoop(t *testing.T) {
	// UPDATE that makes rows match its own WHERE clause again must
	// still update each row exactly once.
	db := dmlDB(t)
	for i := 0; i < 10; i++ {
		db.Exec("INSERT INTO T VALUES (:i, 'n', 1.0)", Binds{"i": i})
	}
	n, err := db.Exec("UPDATE T SET SCORE = 2.0 WHERE SCORE >= 1.0", nil)
	if err != nil || n != 10 {
		t.Fatalf("update: %d, %v", n, err)
	}
	if got := countRows(t, db, "SELECT COUNT(*) FROM T WHERE SCORE = 2.0"); got != 10 {
		t.Fatalf("count = %d", got)
	}
}
