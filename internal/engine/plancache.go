package engine

import (
	"sort"
	"strings"
	"sync"

	"rdbdyn/internal/catalog"
	"rdbdyn/internal/core"
)

// PlanCacheConfig tunes the engine's frozen-plan cache. The cache is
// the inverse of the paper's critique of static optimizers: a plan is
// only frozen AFTER the dynamic optimizer has picked the same strategy
// for the same statement shape several runs in a row, and it is thawed
// again the moment the replayed plan's observed I/O drifts away from
// the dynamic baseline or the table underneath it changes. Disabled by
// default; the experiment suite runs with it off.
type PlanCacheConfig struct {
	// Enable turns the cache on.
	Enable bool
	// PromoteAfter is how many consecutive dynamic runs must choose the
	// identical plan before the shape is frozen (default 3).
	PromoteAfter int
	// DriftFactor demotes a frozen plan when a replay's attributed I/O
	// exceeds DriftFactor × the I/O of the dynamic run that promoted it
	// (default 2).
	DriftFactor float64
	// MaxEntries bounds the number of tracked shapes (default 256).
	MaxEntries int
}

func (c PlanCacheConfig) withDefaults() PlanCacheConfig {
	if c.PromoteAfter <= 0 {
		c.PromoteAfter = 3
	}
	if c.DriftFactor <= 1 {
		c.DriftFactor = 2
	}
	if c.MaxEntries <= 0 {
		c.MaxEntries = 256
	}
	return c
}

// cacheEntry tracks one statement shape. plan is nil until the shape
// earns promotion.
type cacheEntry struct {
	key    string
	lastFP string // fingerprint of the last dynamic run's captured plan
	streak int    // consecutive dynamic runs with that fingerprint
	plan   *core.CachedPlan

	// Promotion-time state, for invalidation and drift detection.
	baselineIO    int64  // attributed I/O of the promoting run
	version       uint64 // table schema version
	statsEpoch    uint64 // table stats epoch
	cardAtPromote int64  // table cardinality
}

// planCache is the shape-keyed frozen-plan cache. All methods are safe
// for concurrent use.
type planCache struct {
	cfg PlanCacheConfig

	mu      sync.Mutex
	entries map[string]*cacheEntry

	hits          int64
	misses        int64
	promotions    int64
	demotions     int64
	invalidations int64
}

func newPlanCache(cfg PlanCacheConfig) *planCache {
	return &planCache{cfg: cfg.withDefaults(), entries: map[string]*cacheEntry{}}
}

// statsStale reports whether enough row mutations have landed since
// epoch0 (when the table held card0 rows) to distrust decisions made
// then: more than max(32, card0/5) inserts/updates/deletes.
func statsStale(tab *catalog.Table, epoch0 uint64, card0 int64) bool {
	drift := tab.StatsEpoch() - epoch0
	thresh := uint64(32)
	if c := uint64(card0 / 5); c > thresh {
		thresh = c
	}
	return drift > thresh
}

// lookup returns the frozen plan for key, or nil on miss. A hit is
// revalidated against the table first: a schema change or stats drift
// demotes the entry back to dynamic execution on the spot.
func (c *planCache) lookup(key string, tab *catalog.Table) *core.CachedPlan {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[key]
	if e == nil || e.plan == nil {
		c.misses++
		return nil
	}
	if tab.Version() != e.version || statsStale(tab, e.statsEpoch, e.cardAtPromote) {
		e.plan, e.streak, e.lastFP = nil, 0, ""
		c.invalidations++
		c.misses++
		return nil
	}
	c.hits++
	return e.plan
}

// observeDynamic folds one completed dynamic run into the promotion
// bookkeeping. Only drained, error-free runs count: a run closed early
// says nothing about the plan, and CapturePlan itself rejects runs
// whose competition events are not exactly replayable.
func (c *planCache) observeDynamic(key string, tab *catalog.Table, st *core.RetrievalStats, drained bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[key]
	if err != nil {
		if e != nil {
			e.streak, e.lastFP = 0, ""
		}
		return
	}
	if !drained {
		return
	}
	plan, ok := core.CapturePlan(st)
	if !ok {
		if e != nil {
			e.streak, e.lastFP = 0, ""
		}
		return
	}
	if e == nil {
		if len(c.entries) >= c.cfg.MaxEntries {
			c.evictLocked()
		}
		e = &cacheEntry{key: key}
		c.entries[key] = e
	}
	if fp := plan.Fingerprint(); fp == e.lastFP {
		e.streak++
	} else {
		e.streak, e.lastFP = 1, fp
	}
	if e.plan == nil && e.streak >= c.cfg.PromoteAfter {
		e.plan = plan
		e.baselineIO = st.IO.IOCost()
		e.version = tab.Version()
		e.statsEpoch = tab.StatsEpoch()
		e.cardAtPromote = tab.Cardinality()
		c.promotions++
	}
}

// observeFrozen checks one completed replay for drift. A replay whose
// attributed I/O exceeds DriftFactor × the promotion baseline (floored
// at 4 I/Os so tiny plans aren't demoted by one pool miss), or that
// failed outright, demotes the entry: the shape re-enters dynamic
// competition and must re-earn its freeze.
func (c *planCache) observeFrozen(key string, st *core.RetrievalStats, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[key]
	if e == nil || e.plan == nil {
		return
	}
	base := e.baselineIO
	if base < 4 {
		base = 4
	}
	if err != nil || float64(st.IO.IOCost()) > c.cfg.DriftFactor*float64(base) {
		e.plan, e.streak, e.lastFP = nil, 0, ""
		c.demotions++
	}
}

// invalidateTable drops every entry whose shape references the table
// (shape keys are table-prefixed). Called on DDL like DropIndex.
func (c *planCache) invalidateTable(table string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	prefix := table + "|"
	for k, e := range c.entries {
		if strings.HasPrefix(k, prefix) {
			if e.plan != nil {
				c.invalidations++
			}
			delete(c.entries, k)
		}
	}
}

// evictLocked makes room for one new entry, preferring shapes that
// never earned a frozen plan. Map iteration order makes the victim
// arbitrary, which is fine: an evicted shape just re-earns its streak.
func (c *planCache) evictLocked() {
	var victim string
	for k, e := range c.entries {
		victim = k
		if e.plan == nil {
			break
		}
	}
	if victim != "" {
		delete(c.entries, victim)
	}
}

// PlanCacheEntry describes one cached shape in a snapshot.
type PlanCacheEntry struct {
	Shape      string `json:"shape"`
	Plan       string `json:"plan,omitempty"` // empty until promoted
	Streak     int    `json:"streak"`
	BaselineIO int64  `json:"baseline_io,omitempty"`
}

// PlanCacheSnapshot is a point-in-time view of the cache for rdbsh's
// \cache and the bench reports.
type PlanCacheSnapshot struct {
	Enabled       bool             `json:"enabled"`
	Entries       int              `json:"entries"`
	Frozen        int              `json:"frozen"`
	Hits          int64            `json:"hits"`
	Misses        int64            `json:"misses"`
	Promotions    int64            `json:"promotions"`
	Demotions     int64            `json:"demotions"`
	Invalidations int64            `json:"invalidations"`
	Plans         []PlanCacheEntry `json:"plans,omitempty"`
}

func (c *planCache) snapshot() PlanCacheSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := PlanCacheSnapshot{
		Enabled:       true,
		Entries:       len(c.entries),
		Hits:          c.hits,
		Misses:        c.misses,
		Promotions:    c.promotions,
		Demotions:     c.demotions,
		Invalidations: c.invalidations,
	}
	for _, e := range c.entries {
		pe := PlanCacheEntry{Shape: e.key, Streak: e.streak}
		if e.plan != nil {
			pe.Plan = e.plan.String()
			pe.BaselineIO = e.baselineIO
			s.Frozen++
		}
		s.Plans = append(s.Plans, pe)
	}
	sort.Slice(s.Plans, func(i, j int) bool { return s.Plans[i].Shape < s.Plans[j].Shape })
	return s
}
