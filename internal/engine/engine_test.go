package engine

import (
	"math/rand"
	"strings"
	"testing"

	"rdbdyn/internal/catalog"
	"rdbdyn/internal/core"
	"rdbdyn/internal/expr"
)

func newDB(t *testing.T, rows int) *DB {
	t.Helper()
	db := Open(Options{})
	_, err := db.CreateTable("FAMILIES",
		catalog.Column{Name: "ID", Type: expr.TypeInt},
		catalog.Column{Name: "AGE", Type: expr.TypeInt},
		catalog.Column{Name: "CITY", Type: expr.TypeString},
		catalog.Column{Name: "INCOME", Type: expr.TypeFloat},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex("FAMILIES", "AGE_IX", "AGE"); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	cities := []string{"nashua", "boston", "keene", "dover"}
	for i := 0; i < rows; i++ {
		err := db.Insert("FAMILIES",
			i, int(rng.Int63n(100)), cities[rng.Intn(len(cities))], float64(rng.Intn(90000)))
		if err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestEndToEndSelect(t *testing.T) {
	db := newDB(t, 5000)
	res, err := db.Query("SELECT ID, AGE FROM FAMILIES WHERE AGE >= 95", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Columns(); len(got) != 2 || got[0] != "ID" || got[1] != "AGE" {
		t.Fatalf("columns = %v", got)
	}
	rows, err := res.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r[1].I < 95 {
			t.Fatalf("row %v violates restriction", r)
		}
	}
}

func TestHostVariableReoptimizedPerRun(t *testing.T) {
	db := newDB(t, 20000)
	stmt, err := db.Prepare("SELECT * FROM FAMILIES WHERE ID >= :A1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex("FAMILIES", "ID_IX", "ID"); err != nil {
		t.Fatal(err)
	}
	res, err := stmt.Query(Binds{"A1": 19995})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := res.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("selective run returned %d rows", len(rows))
	}
	res2, err := stmt.Query(Binds{"A1": 0})
	if err != nil {
		t.Fatal(err)
	}
	rows2, err := res2.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows2) != 20000 {
		t.Fatalf("full run returned %d rows", len(rows2))
	}
	// The two runs should have chosen different effective strategies.
	if s1, s2 := res.Stats().Strategy, res2.Stats().Strategy; s1 == s2 {
		t.Logf("strategies: %q vs %q (traces %v / %v)", s1, s2, res.Stats().Trace, res2.Stats().Trace)
		t.Fatal("expected different strategies for different bindings")
	}
}

func TestCountStar(t *testing.T) {
	db := newDB(t, 3000)
	res, err := db.Query("SELECT COUNT(*) FROM FAMILIES WHERE AGE < 50", nil)
	if err != nil {
		t.Fatal(err)
	}
	row, ok, err := res.Next()
	if err != nil || !ok {
		t.Fatalf("count row: %v %v", ok, err)
	}
	if row[0].T != expr.TypeInt || row[0].I <= 0 || row[0].I >= 3000 {
		t.Fatalf("count = %v", row[0])
	}
	if _, ok, _ := res.Next(); ok {
		t.Fatal("count must yield exactly one row")
	}
	res.Close()
	// Cross-check against actual row drain.
	res2, _ := db.Query("SELECT * FROM FAMILIES WHERE AGE < 50", nil)
	rows, _ := res2.All()
	if int64(len(rows)) != row[0].I {
		t.Fatalf("count %d != drained %d", row[0].I, len(rows))
	}
}

func TestOrderByAndLimitThroughSQL(t *testing.T) {
	db := newDB(t, 2000)
	res, err := db.Query("SELECT AGE FROM FAMILIES WHERE AGE > 10 ORDER BY AGE LIMIT 20", nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := res.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 {
		t.Fatalf("limit returned %d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i][0].I < rows[i-1][0].I {
			t.Fatal("order violated")
		}
	}
}

func TestFrozenVsDynamicOnAdversarialBindings(t *testing.T) {
	db := Open(Options{PoolFrames: 128})
	_, err := db.CreateTable("T",
		catalog.Column{Name: "ID", Type: expr.TypeInt},
		catalog.Column{Name: "AGE", Type: expr.TypeInt},
		catalog.Column{Name: "PAD", Type: expr.TypeString},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex("T", "AGE_IX", "AGE"); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	// AGE spans [0, 10000) so sub-page selectivities exist: pages hold
	// ~110 rows, and the sniffing experiment needs a binding below
	// 1/rows-per-page selectivity for the index plan to win.
	for i := 0; i < 20000; i++ {
		if err := db.Insert("T", i, int(rng.Int63n(10000)), strings.Repeat("p", 60)); err != nil {
			t.Fatal(err)
		}
	}
	stmt, err := db.Prepare("SELECT * FROM T WHERE AGE >= :A1")
	if err != nil {
		t.Fatal(err)
	}
	frozen, err := stmt.Freeze(Binds{"A1": 9990}) // sniffs a selective value
	if err != nil {
		t.Fatal(err)
	}
	if frozen.Plan.Strategy.Kind != core.StrategyFscan {
		t.Fatalf("sniffed plan = %s, want Fscan", frozen.Plan)
	}

	run := func(exec func() (*Result, error)) int64 {
		db.Pool().EvictAll()
		db.Pool().ResetStats()
		res, err := exec()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := res.All(); err != nil {
			t.Fatal(err)
		}
		return db.Pool().Stats().IOCost()
	}

	frozenCost := run(func() (*Result, error) { return frozen.Query(Binds{"A1": 0}) })
	dynCost := run(func() (*Result, error) { return stmt.Query(Binds{"A1": 0}) })
	if frozenCost < 3*dynCost {
		t.Fatalf("frozen plan (%d I/Os) should be far worse than dynamic (%d I/Os) on the adversarial binding",
			frozenCost, dynCost)
	}
}

func TestBindsConversion(t *testing.T) {
	b := Binds{"i": 1, "i64": int64(2), "f": 1.5, "s": "x", "b": true, "v": expr.Int(7), "n": nil}
	bb, err := b.toBindings()
	if err != nil {
		t.Fatal(err)
	}
	if bb["i"].I != 1 || bb["i64"].I != 2 || bb["f"].F != 1.5 || bb["s"].S != "x" || !bb["b"].Truth() || bb["v"].I != 7 || !bb["n"].IsNull() {
		t.Fatalf("conversion wrong: %v", bb)
	}
	if _, err := (Binds{"bad": struct{}{}}).toBindings(); err == nil {
		t.Fatal("unsupported type accepted")
	}
	if out, err := (Binds)(nil).toBindings(); err != nil || out != nil {
		t.Fatal("nil binds must stay nil")
	}
}

func TestInsertValidationThroughEngine(t *testing.T) {
	db := newDB(t, 1)
	if err := db.Insert("MISSING", 1); err == nil {
		t.Fatal("missing table accepted")
	}
	if err := db.Insert("FAMILIES", 1); err == nil {
		t.Fatal("arity error accepted")
	}
	if err := db.Insert("FAMILIES", 1, 2, 3, struct{}{}); err == nil {
		t.Fatal("unsupported value accepted")
	}
}

func TestPrepareErrors(t *testing.T) {
	db := newDB(t, 1)
	if _, err := db.Prepare("SELEKT * FROM FAMILIES"); err == nil {
		t.Fatal("bad syntax accepted")
	}
	if _, err := db.Prepare("SELECT * FROM NOPE"); err == nil {
		t.Fatal("unknown table accepted")
	}
	if _, err := db.Query("SELECT * FROM FAMILIES WHERE AGE = :P", Binds{"P": struct{}{}}); err == nil {
		t.Fatal("bad binding accepted")
	}
}

func TestStatsExposeTacticAndTrace(t *testing.T) {
	db := newDB(t, 5000)
	res, err := db.Query("SELECT * FROM FAMILIES WHERE AGE = 97", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.All(); err != nil {
		t.Fatal(err)
	}
	st := res.Stats()
	if st.Tactic == "" || len(st.Trace) == 0 {
		t.Fatalf("stats incomplete: %+v", st)
	}
}
