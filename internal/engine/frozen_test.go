package engine

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"rdbdyn/internal/catalog"
	"rdbdyn/internal/expr"
)

// frozenFixture builds a small two-index table for the FrozenStmt
// staleness tests.
func frozenFixture(t *testing.T, rows int, opts ...Options) *DB {
	t.Helper()
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	db := Open(o)
	if _, err := db.CreateTable("F",
		catalog.Column{Name: "ID", Type: expr.TypeInt},
		catalog.Column{Name: "AGE", Type: expr.TypeInt},
		catalog.Column{Name: "PAD", Type: expr.TypeString},
	); err != nil {
		t.Fatal(err)
	}
	pad := strings.Repeat("p", 64)
	for i := 0; i < rows; i++ {
		if err := db.Insert("F", i, (i*37)%1000, pad); err != nil {
			t.Fatal(err)
		}
	}
	for _, ix := range [][2]string{{"AGE_IX", "AGE"}, {"ID_IX", "ID"}} {
		if _, err := db.CreateIndex("F", ix[0], ix[1]); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func frozenCount(t *testing.T, f *FrozenStmt, binds Binds) int {
	t.Helper()
	res, err := f.Query(binds)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, ok, err := res.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if err := res.Close(); err != nil {
		t.Fatal(err)
	}
	return n
}

// Regression: a FrozenStmt used to hold its plan forever, replaying
// against indexes that no longer existed. Now a schema change
// re-prepares the plan (with the original sniffed bindings) on the next
// Query, and an unchanged table re-prepares nothing.
func TestFrozenStmtRefreshesOnIndexDrop(t *testing.T) {
	db := frozenFixture(t, 2000)
	stmt, err := db.Prepare("SELECT * FROM F WHERE AGE >= :a")
	if err != nil {
		t.Fatal(err)
	}
	frozen, err := stmt.Freeze(Binds{"a": 995})
	if err != nil {
		t.Fatal(err)
	}
	before := frozen.Plan
	if !strings.Contains(before.String(), "AGE_IX") {
		t.Fatalf("sniffed selective plan does not use AGE_IX: %s", before)
	}
	want := frozenCount(t, frozen, Binds{"a": 995})
	if frozen.Plan != before {
		t.Fatal("query against an unchanged table re-prepared the plan")
	}

	if err := db.DropIndex("F", "AGE_IX"); err != nil {
		t.Fatal(err)
	}
	if got := frozenCount(t, frozen, Binds{"a": 995}); got != want {
		t.Fatalf("post-drop frozen query: %d rows, want %d", got, want)
	}
	if frozen.Plan == before {
		t.Fatal("plan not re-prepared after index drop")
	}
	if strings.Contains(frozen.Plan.String(), "AGE_IX") {
		t.Fatalf("refreshed plan still references dropped AGE_IX: %s", frozen.Plan)
	}
}

func TestFrozenStmtRefreshesOnStatsDrift(t *testing.T) {
	db := frozenFixture(t, 100)
	stmt, err := db.Prepare("SELECT * FROM F WHERE AGE >= :a")
	if err != nil {
		t.Fatal(err)
	}
	frozen, err := stmt.Freeze(Binds{"a": 990})
	if err != nil {
		t.Fatal(err)
	}
	before := frozen.Plan
	frozenCount(t, frozen, Binds{"a": 990})
	if frozen.Plan != before {
		t.Fatal("unchanged table re-prepared the plan")
	}
	// 100 rows at freeze -> threshold max(32, 20) = 32 mutations.
	for i := 0; i < 33; i++ {
		if err := db.Insert("F", 10000+i, 999, "p"); err != nil {
			t.Fatal(err)
		}
	}
	if got := frozenCount(t, frozen, Binds{"a": 990}); got < 33 {
		t.Fatalf("post-drift frozen query: %d rows, want >= 33", got)
	}
	if frozen.Plan == before {
		t.Fatal("plan not re-prepared after stats drift")
	}
}

// Regression (-race): Freeze estimates by descending live B-trees; a
// concurrent Insert splitting a page mid-descent raced with it. The
// whole estimation now runs under the table's read-lock.
func TestFreezeRaceWithConcurrentInserts(t *testing.T) {
	db := frozenFixture(t, 500)
	stmt, err := db.Prepare("SELECT * FROM F WHERE AGE >= :a")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := db.Insert("F", 100000+i, (i*13)%1000, "p"); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 50; i++ {
		if _, err := stmt.Freeze(Binds{"a": 900}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// Concurrent Stmt.Query traffic through the plan cache must be safe:
// promotions, hits, and demotions may interleave arbitrarily but the
// results must always be correct. Run under -race.
func TestPlanCacheConcurrentQueries(t *testing.T) {
	db := frozenFixture(t, 2000, Options{
		EnableFeedback: true,
		PlanCache:      PlanCacheConfig{Enable: true, PromoteAfter: 2},
	})
	if _, err := db.Query("SELECT COUNT(*) FROM F", nil); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				lo := (g*7 + i*13) % 1000
				res, err := db.Query("SELECT * FROM F WHERE AGE >= :a", Binds{"a": lo})
				if err != nil {
					t.Error(err)
					return
				}
				rows, err := res.All()
				if err != nil {
					t.Error(err)
					return
				}
				want := 0
				for r := 0; r < 2000; r++ {
					if (r*37)%1000 >= lo {
						want++
					}
				}
				if len(rows) != want {
					t.Errorf("AGE >= %d: %d rows, want %d", lo, len(rows), want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := recoverMetrics(db); err != nil {
		t.Fatal(err)
	}
}

// recoverMetrics sanity-checks that the metrics snapshot is readable
// after concurrent load.
func recoverMetrics(db *DB) error {
	m := db.Metrics()
	if m.Queries <= 0 {
		return fmt.Errorf("no queries recorded")
	}
	return nil
}
