package engine

import (
	"strings"
	"testing"
)

func TestOrderByDescWithIndex(t *testing.T) {
	db := newDB(t, 5000)
	res, err := db.Query("SELECT AGE FROM FAMILIES WHERE AGE >= 10 ORDER BY AGE DESC LIMIT 50", nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := res.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 50 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i][0].I > rows[i-1][0].I {
			t.Fatalf("not descending at %d: %v after %v", i, rows[i][0], rows[i-1][0])
		}
	}
	// The top value must be the global max within the range.
	maxRes, err := db.Query("SELECT MAX(AGE) FROM FAMILIES WHERE AGE >= 10", nil)
	if err != nil {
		t.Fatal(err)
	}
	mr, _ := maxRes.All()
	if rows[0][0].I != mr[0][0].I {
		t.Fatalf("DESC first row %v != MAX %v", rows[0][0], mr[0][0])
	}
}

func TestOrderByDescIndexIsCheapForTopK(t *testing.T) {
	db := newDB(t, 20000)
	db.Pool().EvictAll()
	db.Pool().ResetStats()
	res, err := db.Query("SELECT AGE FROM FAMILIES ORDER BY AGE DESC LIMIT 5 OPTIMIZE FOR FAST FIRST", nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := res.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	tab, _ := db.Catalog().Table("FAMILIES")
	if c := db.Pool().Stats().IOCost(); c > int64(tab.Pages())/4 {
		t.Fatalf("top-k DESC through the index cost %d I/Os (pages %d): %q / %v",
			c, tab.Pages(), res.Stats().Strategy, res.Stats().Trace)
	}
}

func TestOrderByDescSortFallback(t *testing.T) {
	db := newDB(t, 2000)
	// INCOME has no index: materialize-and-sort, descending.
	res, err := db.Query("SELECT INCOME FROM FAMILIES WHERE AGE < 50 ORDER BY INCOME DESC", nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := res.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for i := 1; i < len(rows); i++ {
		if rows[i][0].F > rows[i-1][0].F {
			t.Fatalf("sort fallback not descending at %d", i)
		}
	}
	if !strings.HasPrefix(res.Stats().Tactic, "sort(") {
		t.Fatalf("tactic = %s", res.Stats().Tactic)
	}
}

func TestMixedDirectionsRejected(t *testing.T) {
	db := newDB(t, 10)
	if _, err := db.Prepare("SELECT * FROM FAMILIES ORDER BY AGE ASC, ID DESC"); err == nil {
		t.Fatal("mixed directions accepted")
	}
}

func TestDescMatchesAscReversedThroughAllPaths(t *testing.T) {
	db := newDB(t, 3000)
	asc, err := db.Query("SELECT ID, AGE FROM FAMILIES WHERE AGE BETWEEN 10 AND 30 ORDER BY AGE", nil)
	if err != nil {
		t.Fatal(err)
	}
	up, err := asc.All()
	if err != nil {
		t.Fatal(err)
	}
	desc, err := db.Query("SELECT ID, AGE FROM FAMILIES WHERE AGE BETWEEN 10 AND 30 ORDER BY AGE DESC", nil)
	if err != nil {
		t.Fatal(err)
	}
	down, err := desc.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(up) != len(down) {
		t.Fatalf("row counts differ: %d vs %d", len(up), len(down))
	}
	// The AGE sequences must mirror (ties may permute IDs).
	for i := range up {
		if up[i][1].I != down[len(down)-1-i][1].I {
			t.Fatalf("AGE mirror broken at %d", i)
		}
	}
}
