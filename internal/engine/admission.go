package engine

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// Admission-control failures. Both are fast rejections: the caller
// learns at once that the engine will not run the query, instead of
// queueing unboundedly behind saturated slots.
var (
	// ErrAdmissionQueueFull is returned when all execution slots are
	// taken and the wait queue is at its configured depth.
	ErrAdmissionQueueFull = errors.New("engine: admission queue full")
	// ErrAdmissionTimeout is returned when a queued query waited the
	// configured AdmissionTimeout without a slot freeing up.
	ErrAdmissionTimeout = errors.New("engine: admission wait timed out")
)

// admission is the engine's concurrency governor: a semaphore of
// execution slots plus a bounded wait queue. A nil *admission (the
// default: Options.MaxConcurrentQueries == 0) admits everything
// immediately, so unconfigured databases behave exactly as before.
type admission struct {
	slots    chan struct{} // buffered; one token per in-flight query
	max      int           // cap(slots), kept for saturation arithmetic
	queueCap int
	timeout  time.Duration
	waiting  atomic.Int64
	inFlight atomic.Int64
}

func newAdmission(maxInFlight, queueDepth int, timeout time.Duration) *admission {
	if maxInFlight <= 0 {
		return nil
	}
	return &admission{
		slots:    make(chan struct{}, maxInFlight),
		max:      maxInFlight,
		queueCap: queueDepth,
		timeout:  timeout,
	}
}

// acquire claims an execution slot, waiting in the bounded queue if
// none is free. It returns a release function that must be called
// exactly once when the query finishes; calling it more than once is
// safe (subsequent calls are no-ops), so Result.Close can stay
// idempotent.
func (a *admission) acquire(ctx context.Context) (func(), error) {
	if a == nil {
		return func() {}, nil
	}
	// Fast path: a slot is free right now.
	select {
	case a.slots <- struct{}{}:
		return a.releaser(), nil
	default:
	}
	// Saturated: join the wait queue if it has room, else reject at
	// once. The CAS loop keeps the waiter count exact under racing
	// arrivals.
	for {
		w := a.waiting.Load()
		if int(w) >= a.queueCap {
			return nil, ErrAdmissionQueueFull
		}
		if a.waiting.CompareAndSwap(w, w+1) {
			break
		}
	}
	defer a.waiting.Add(-1)
	var timeoutC <-chan time.Time
	if a.timeout > 0 {
		t := time.NewTimer(a.timeout)
		defer t.Stop()
		timeoutC = t.C
	}
	select {
	case a.slots <- struct{}{}:
		return a.releaser(), nil
	case <-timeoutC:
		return nil, ErrAdmissionTimeout
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// releaser records the admission and returns the once-only slot
// release.
func (a *admission) releaser() func() {
	a.inFlight.Add(1)
	var once sync.Once
	return func() {
		once.Do(func() {
			a.inFlight.Add(-1)
			<-a.slots
		})
	}
}

// InFlight reports how many queries currently hold execution slots.
func (a *admission) InFlight() int64 {
	if a == nil {
		return 0
	}
	return a.inFlight.Load()
}

// Saturation reports the fraction of execution slots held by queries
// other than the caller, in [0, 1]. The caller is assumed to hold a
// slot itself (it is called from inside an admitted query), so a lone
// query on an idle engine reads 0 — its adaptive fan-out is not
// penalized by its own admission. A nil *admission (admission control
// off) always reads 0: without a configured ceiling there is no
// saturation to measure.
func (a *admission) Saturation() float64 {
	if a == nil || a.max < 1 {
		return 0
	}
	others := a.inFlight.Load() - 1
	if others < 0 {
		others = 0
	}
	f := float64(others) / float64(a.max)
	if f > 1 {
		f = 1
	}
	return f
}
