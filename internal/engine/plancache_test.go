package engine

import (
	"fmt"
	"testing"

	"rdbdyn/internal/catalog"
	"rdbdyn/internal/core"
	"rdbdyn/internal/expr"
)

// cacheRows is the fixture size for the plan-cache tests: big enough
// that tactics differ by selectivity, small enough to stay fast.
const cacheRows = 20000

// buildCacheDB loads the FAMILIES fixture deterministically (no
// randomness: column values are arithmetic in the row number, so twin
// databases are bit-identical).
func buildCacheDB(t testing.TB, opts Options) *DB {
	t.Helper()
	opts.Optimizer.RaceFactor = -1 // keep runs deterministic for twin comparison
	db := Open(opts)
	_, err := db.CreateTable("FAMILIES",
		catalog.Column{Name: "ID", Type: expr.TypeInt},
		catalog.Column{Name: "AGE", Type: expr.TypeInt},
		catalog.Column{Name: "CITY", Type: expr.TypeString},
		catalog.Column{Name: "PAD", Type: expr.TypeString},
	)
	if err != nil {
		t.Fatal(err)
	}
	pad := make([]byte, 40)
	for i := range pad {
		pad[i] = 'x'
	}
	for i := 0; i < cacheRows; i++ {
		age := (i * 7919) % 10000 // pseudo-uniform, deterministic
		city := fmt.Sprintf("C%03d", (i*31)%97)
		if err := db.Insert("FAMILIES", i, age, city, string(pad)); err != nil {
			t.Fatal(err)
		}
	}
	for _, ix := range [][2]string{{"AGE_IX", "AGE"}, {"CITY_IX", "CITY"}, {"ID_IX", "ID"}} {
		if _, err := db.CreateIndex("FAMILIES", ix[0], ix[1]); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// cacheShape is one statement shape exercised by the equivalence suite.
type cacheShape struct {
	name  string
	src   string
	binds Binds
	// tactic the dynamic optimizer settles on (checked so the suite is
	// known to cover distinct plan forms, not six spellings of tscan).
	tactic string
}

func cacheShapes() []cacheShape {
	pad := ""
	for i := 0; i < 40; i++ {
		pad += "x"
	}
	return []cacheShape{
		{"seq-sweep", "SELECT * FROM FAMILIES WHERE PAD = :p", Binds{"p": pad}, "tscan"},
		{"covered-range", "SELECT AGE FROM FAMILIES WHERE AGE >= :lo", Binds{"lo": 9900}, "sscan"},
		{"ordered-range", "SELECT ID, AGE FROM FAMILIES WHERE AGE >= :lo ORDER BY AGE", Binds{"lo": 9950}, "fscan"},
		{"intersection", "SELECT * FROM FAMILIES WHERE AGE >= :lo AND CITY = :c", Binds{"lo": 9000, "c": "C042"}, "background-only"},
		{"limited", "SELECT * FROM FAMILIES WHERE CITY = :c LIMIT 5", Binds{"c": "C042"}, "fast-first"},
		{"sorted-filter", "SELECT * FROM FAMILIES WHERE AGE >= :lo AND CITY = :c ORDER BY AGE", Binds{"lo": 9930, "c": "C042"}, "sorted"},
		{"count-range", "SELECT COUNT(*) FROM FAMILIES WHERE AGE >= :lo", Binds{"lo": 9900}, "background-only"},
	}
}

// runShape executes one shape and returns its rows and stats.
func runShape(t testing.TB, db *DB, sh cacheShape) ([]expr.Row, core.RetrievalStats) {
	t.Helper()
	res, err := db.Query(sh.src, sh.binds)
	if err != nil {
		t.Fatalf("%s: %v", sh.name, err)
	}
	var rows []expr.Row
	for {
		row, ok, err := res.Next()
		if err != nil {
			t.Fatalf("%s: %v", sh.name, err)
		}
		if !ok {
			break
		}
		rows = append(rows, row.Clone())
	}
	if err := res.Close(); err != nil {
		t.Fatalf("%s: close: %v", sh.name, err)
	}
	// Stats are finalized by Close; read them after.
	return rows, res.Stats()
}

// TestPlanCacheEquivalence runs the same query history against twin
// databases — one with the plan cache off, one with it on — and demands
// bit-equal results every round: same rows in the same order, same
// attributed IOStats (reads, writes, AND pool hits: a replay must touch
// exactly the pages the clean dynamic run touches), same rows
// delivered. The shape list covers six distinct tactics, so frozen
// replay is exercised across every replayable plan form.
func TestPlanCacheEquivalence(t *testing.T) {
	shapes := cacheShapes()
	cold := buildCacheDB(t, Options{})
	warm := buildCacheDB(t, Options{PlanCache: PlanCacheConfig{Enable: true, PromoteAfter: 2}})
	const rounds = 5
	for round := 1; round <= rounds; round++ {
		for _, sh := range shapes {
			rc, stc := runShape(t, cold, sh)
			rw, stw := runShape(t, warm, sh)
			if round == 1 && stc.Tactic != sh.tactic {
				t.Errorf("%s: dynamic tactic = %s, suite expects %s", sh.name, stc.Tactic, sh.tactic)
			}
			if len(rc) != len(rw) {
				t.Fatalf("round %d %s: %d rows cold, %d warm", round, sh.name, len(rc), len(rw))
			}
			for i := range rc {
				if len(rc[i]) != len(rw[i]) {
					t.Fatalf("round %d %s row %d: width differs", round, sh.name, i)
				}
				for j := range rc[i] {
					if expr.Compare(rc[i][j], rw[i][j]) != 0 {
						t.Fatalf("round %d %s row %d col %d: cold %s, warm %s",
							round, sh.name, i, j, rc[i][j], rw[i][j])
					}
				}
			}
			if stc.IO != stw.IO {
				t.Errorf("round %d %s: IOStats cold %+v, warm %+v", round, sh.name, stc.IO, stw.IO)
			}
			if stc.RowsDelivered != stw.RowsDelivered {
				t.Errorf("round %d %s: RowsDelivered cold %d, warm %d", round, sh.name, stc.RowsDelivered, stw.RowsDelivered)
			}
		}
	}
	// Per-tactic win totals must agree: a replayed plan counts toward
	// the same tactic as the dynamic competition it replaced. (Decision
	// counters like abandonments legitimately differ — a replay holds no
	// competition — and the estimate-error histogram is excluded by
	// design: replays carry no fresh estimate.)
	cm, wm := cold.Metrics(), warm.Metrics()
	if cm.Queries != wm.Queries {
		t.Errorf("query counts differ: cold %d, warm %d", cm.Queries, wm.Queries)
	}
	if fmt.Sprint(cm.TacticWins) != fmt.Sprint(wm.TacticWins) {
		t.Errorf("tactic wins differ:\ncold %v\nwarm %v", cm.TacticWins, wm.TacticWins)
	}
	snap := warm.PlanCacheSnapshot()
	if snap.Frozen < 6 {
		t.Errorf("frozen plans = %d, want >= 6 (snapshot %+v)", snap.Frozen, snap.Plans)
	}
	if snap.Hits == 0 {
		t.Error("plan cache recorded no hits across five rounds")
	}
	if snap.Demotions != 0 {
		t.Errorf("unexpected demotions: %d", snap.Demotions)
	}
	tactics := map[string]bool{}
	for _, p := range snap.Plans {
		if p.Plan != "" {
			name := p.Plan
			if i := len(name); i > 0 {
				if j := indexByte(name, '('); j >= 0 {
					name = name[:j]
				}
			}
			tactics[name] = true
		}
	}
	if len(tactics) < 5 {
		t.Errorf("frozen tactic diversity = %d (%v), want >= 5", len(tactics), tactics)
	}
	if cold.PlanCacheSnapshot().Enabled {
		t.Error("cache-off DB reports an enabled plan cache")
	}
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// TestPlanCacheDriftDemotion promotes a plan with a highly selective
// binding, then replays it with a binding that balloons the I/O: the
// replay must still be row-correct, but the drift detector must demote
// the plan so the next run re-enters dynamic competition.
func TestPlanCacheDriftDemotion(t *testing.T) {
	// Bounded pool: fetches miss, so drift is visible in real reads (on
	// an unbounded pool everything is a free hit and nothing can drift).
	db := buildCacheDB(t, Options{PoolFrames: 64, PlanCache: PlanCacheConfig{Enable: true, PromoteAfter: 2}})
	narrow := cacheShape{name: "narrow", src: "SELECT * FROM FAMILIES WHERE AGE >= :lo", binds: Binds{"lo": 9990}}
	for i := 0; i < 3; i++ {
		runShape(t, db, narrow)
	}
	snap := db.PlanCacheSnapshot()
	if snap.Promotions != 1 || snap.Frozen != 1 {
		t.Fatalf("after warmup: promotions=%d frozen=%d (want 1/1)", snap.Promotions, snap.Frozen)
	}
	hitsBefore := snap.Hits

	// Same shape, catastrophic binding: the frozen plan walks the whole
	// index. Rows must still be exactly right (bounds are recomputed
	// from the live bindings; the restriction is re-checked per row).
	wide := cacheShape{name: "wide", src: narrow.src, binds: Binds{"lo": 0}}
	rows, st := runShape(t, db, wide)
	if len(rows) != cacheRows {
		t.Fatalf("replayed plan dropped rows: got %d, want %d", len(rows), cacheRows)
	}
	snap = db.PlanCacheSnapshot()
	if snap.Hits != hitsBefore+1 {
		t.Fatalf("wide run did not replay the frozen plan (hits %d -> %d)", hitsBefore, snap.Hits)
	}
	if snap.Demotions != 1 || snap.Frozen != 0 {
		t.Fatalf("drift not demoted: demotions=%d frozen=%d (replay io=%d)", snap.Demotions, snap.Frozen, st.IO.IOCost())
	}

	// Post-demotion the shape must re-run the competition, not replay.
	_, st = runShape(t, db, wide)
	after := db.PlanCacheSnapshot()
	if after.Hits != snap.Hits {
		t.Fatalf("post-demotion run still replayed (hits %d -> %d)", snap.Hits, after.Hits)
	}
	if st.Tactic == "" {
		t.Fatal("post-demotion run reported no tactic")
	}
}

// TestPlanCacheDropIndexInvalidation promotes a plan that drives
// through AGE_IX, drops the index, and checks the shape falls back to
// dynamic execution with correct results instead of replaying a plan
// against a ghost index.
func TestPlanCacheDropIndexInvalidation(t *testing.T) {
	db := buildCacheDB(t, Options{PlanCache: PlanCacheConfig{Enable: true, PromoteAfter: 2}})
	sh := cacheShape{name: "narrow", src: "SELECT * FROM FAMILIES WHERE AGE >= :lo", binds: Binds{"lo": 9990}}
	var want int
	for i := 0; i < 3; i++ {
		rows, _ := runShape(t, db, sh)
		want = len(rows)
	}
	if snap := db.PlanCacheSnapshot(); snap.Frozen != 1 {
		t.Fatalf("shape did not promote: %+v", snap)
	}
	if err := db.DropIndex("FAMILIES", "AGE_IX"); err != nil {
		t.Fatal(err)
	}
	if snap := db.PlanCacheSnapshot(); snap.Entries != 0 {
		t.Fatalf("DropIndex left %d cache entries", snap.Entries)
	}
	rows, st := runShape(t, db, sh)
	if len(rows) != want {
		t.Fatalf("post-drop run: %d rows, want %d", len(rows), want)
	}
	if st.Tactic == "" {
		t.Fatal("post-drop run reported no tactic")
	}
	// Dropping a missing index errors cleanly.
	if err := db.DropIndex("FAMILIES", "AGE_IX"); err == nil {
		t.Fatal("double drop succeeded")
	}
}

// TestPlanCacheStatsDriftInvalidation promotes a plan on a small table,
// then piles on enough inserts to cross the staleness threshold: the
// next lookup must invalidate instead of replaying against statistics
// that no longer describe the table.
func TestPlanCacheStatsDriftInvalidation(t *testing.T) {
	db := Open(Options{PlanCache: PlanCacheConfig{Enable: true, PromoteAfter: 2}, Optimizer: core.Config{RaceFactor: -1}})
	if _, err := db.CreateTable("T",
		catalog.Column{Name: "ID", Type: expr.TypeInt},
		catalog.Column{Name: "V", Type: expr.TypeInt},
	); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := db.Insert("T", i, i%10); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.CreateIndex("T", "V_IX", "V"); err != nil {
		t.Fatal(err)
	}
	sh := cacheShape{name: "v", src: "SELECT * FROM T WHERE V >= :lo", binds: Binds{"lo": 9}}
	for i := 0; i < 3; i++ {
		runShape(t, db, sh)
	}
	if snap := db.PlanCacheSnapshot(); snap.Frozen != 1 {
		t.Skipf("small-table shape did not promote (%+v); staleness covered elsewhere", snap)
	}
	// 100 rows at promotion -> threshold max(32, 20) = 32 mutations.
	for i := 0; i < 33; i++ {
		if err := db.Insert("T", 1000+i, 9); err != nil {
			t.Fatal(err)
		}
	}
	rows, _ := runShape(t, db, sh)
	if len(rows) != 10+33 {
		t.Fatalf("post-drift run: %d rows, want %d", len(rows), 43)
	}
	snap := db.PlanCacheSnapshot()
	if snap.Invalidations == 0 {
		t.Fatalf("stats drift did not invalidate: %+v", snap)
	}
}

// TestFeedbackSnapshotWiring checks the engine-level feedback switch:
// off by default (nil snapshot), and learning per-(table, index)
// corrections from completed retrievals when enabled.
func TestFeedbackSnapshotWiring(t *testing.T) {
	off := buildCacheDB(t, Options{})
	runShape(t, off, cacheShapes()[3])
	if s := off.FeedbackSnapshot(); s != nil {
		t.Fatalf("feedback off, snapshot = %v", s)
	}

	// Bounded pool so retrievals do real I/O for the loop to observe.
	on := buildCacheDB(t, Options{PoolFrames: 64, EnableFeedback: true})
	for i := 0; i < 3; i++ {
		for _, sh := range cacheShapes() {
			runShape(t, on, sh)
		}
	}
	s := on.FeedbackSnapshot()
	if len(s) == 0 {
		t.Fatal("feedback on, no corrections learned after 21 retrievals")
	}
	for _, c := range s {
		if c.Table != "FAMILIES" {
			t.Errorf("correction for unexpected table %q", c.Table)
		}
	}
}
