// Package engine is the public façade of the reproduction: an embedded
// database with the paper's dynamic single-table optimizer as its
// executor, plus the traditional static optimizer as a frozen baseline.
//
// Typical use:
//
//	db := engine.Open(engine.Options{})
//	tab, _ := db.CreateTable("FAMILIES",
//	    catalog.Column{Name: "ID", Type: expr.TypeInt},
//	    catalog.Column{Name: "AGE", Type: expr.TypeInt})
//	db.CreateIndex("FAMILIES", "AGE_IX", "AGE")
//	...load rows...
//	stmt, _ := db.Prepare("SELECT * FROM FAMILIES WHERE AGE >= :A1")
//	res, _ := stmt.Query(engine.Binds{"A1": 30})
//	for { row, ok, _ := res.Next(); if !ok { break }; ... }
//
// Every Stmt.Query run re-optimizes dynamically with the current
// bindings; Stmt.Freeze produces the static baseline that keeps one
// plan forever.
//
// A DB and its prepared Stmts are safe for concurrent use: any number
// of goroutines may call Stmt.Query / DB.Query at once (each call gets
// its own Result, which is itself single-goroutine), and writes
// serialize per table. Per-query I/O attribution stays exact under
// concurrency because every scan charges a private storage.Tracker
// rather than differencing the shared pool's global counters. A
// retrieval must not overlap a mutation of the same table; scheduling
// that is the application's job.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"rdbdyn/internal/catalog"
	"rdbdyn/internal/core"
	"rdbdyn/internal/expr"
	"rdbdyn/internal/feedback"
	"rdbdyn/internal/planner"
	"rdbdyn/internal/sql"
	"rdbdyn/internal/storage"
)

// Options configures a database instance.
type Options struct {
	// PageSize in bytes (default storage.DefaultPageSize).
	PageSize int
	// PoolFrames caps the buffer pool (0 = unbounded). Bounded pools
	// make random fetches genuinely expensive, as on the paper's
	// hardware.
	PoolFrames int
	// PoolShards partitions the buffer pool into this many
	// independently-locked shards (rounded up to a power of two) to cut
	// lock contention under parallel query load. 0 keeps the default:
	// one shard for bounded pools (exact global LRU, so simulated I/O
	// costs are reproducible), one shard per CPU for unbounded pools.
	PoolShards int
	// Optimizer tunes the dynamic optimizer (zero value = defaults).
	Optimizer core.Config
	// MaxConcurrentQueries caps how many queries may execute at once
	// (0 = unlimited, the historical behavior). Excess arrivals wait in
	// a bounded queue and are rejected fast when it overflows.
	MaxConcurrentQueries int
	// AdmissionQueueDepth bounds how many queries may wait for an
	// execution slot when MaxConcurrentQueries is saturated. A query
	// arriving with the queue full fails immediately with
	// ErrAdmissionQueueFull. 0 = no waiting: reject as soon as all
	// slots are taken.
	AdmissionQueueDepth int
	// AdmissionTimeout bounds how long a queued query waits for a slot
	// before failing with ErrAdmissionTimeout. 0 = wait until the
	// query's context is done.
	AdmissionTimeout time.Duration
	// EnableFeedback turns on the estimation feedback loop: each
	// completed dynamic retrieval folds its observed cardinality and
	// attributed I/O into per-(table, index) correction factors that
	// scale future inexact estimates. Off by default — the paper's
	// estimator (and the experiment suite) runs uncorrected.
	EnableFeedback bool
	// PlanCache configures the frozen-plan cache (see PlanCacheConfig).
	// Disabled by default.
	PlanCache PlanCacheConfig
}

// DB is an embedded database instance.
type DB struct {
	disk  *storage.Disk
	pool  *storage.BufferPool
	cat   *catalog.Catalog
	opt   *core.Optimizer
	admit *admission
	fb    *feedback.Registry // nil unless Options.EnableFeedback
	plans *planCache         // nil unless Options.PlanCache.Enable
}

// Open creates an empty database.
func Open(opts Options) *DB {
	disk := storage.NewDisk(opts.PageSize)
	var pool *storage.BufferPool
	if opts.PoolShards > 0 {
		pool = storage.NewBufferPoolSharded(disk, opts.PoolFrames, opts.PoolShards)
	} else {
		pool = storage.NewBufferPool(disk, opts.PoolFrames)
	}
	db := &DB{
		disk:  disk,
		pool:  pool,
		cat:   catalog.New(pool),
		admit: newAdmission(opts.MaxConcurrentQueries, opts.AdmissionQueueDepth, opts.AdmissionTimeout),
	}
	if opts.EnableFeedback {
		db.fb = feedback.New(0)
		opts.Optimizer.Feedback = db.fb
	}
	// Zero-valued Config fields are filled in field-wise by the
	// optimizer (core.Config.WithDefaults), so a caller tuning one knob
	// keeps the paper defaults for every other.
	db.opt = core.NewOptimizer(opts.Optimizer)
	if opts.PlanCache.Enable {
		db.plans = newPlanCache(opts.PlanCache)
	}
	return db
}

// InFlightQueries reports how many queries currently hold admission
// slots (always 0 when MaxConcurrentQueries is unset).
func (db *DB) InFlightQueries() int64 { return db.admit.InFlight() }

// admitQuery claims an admission slot for ctx, recording fast
// rejections (queue full, admission timeout) in the metrics. Context
// cancellation while queued is a cancellation, not an admission
// rejection.
func (db *DB) admitQuery(ctx context.Context) (func(), error) {
	release, err := db.admit.acquire(ctx)
	if err != nil {
		if errors.Is(err, ErrAdmissionQueueFull) || errors.Is(err, ErrAdmissionTimeout) {
			db.opt.Metrics().RecordAdmissionRejected()
		}
		return nil, err
	}
	return release, nil
}

// execCtx builds the per-query execution context: the caller's ctx
// plus, under adaptive parallelism, the engine's live load signal
// (admission-slot saturation by other queries). Non-adaptive sessions
// get the plain context so their execution state is bit-identical to
// builds without the load plumbing.
func (db *DB) execCtx(ctx context.Context) *core.ExecCtx {
	ec := core.NewExecCtx(ctx, 0)
	if db.opt.Config().AdaptiveParallelism {
		ec = ec.WithLoad(db.admit.Saturation)
	}
	return ec
}

// Catalog exposes the schema registry.
func (db *DB) Catalog() *catalog.Catalog { return db.cat }

// Pool exposes the buffer pool (I/O statistics live here).
func (db *DB) Pool() *storage.BufferPool { return db.pool }

// Optimizer exposes the dynamic optimizer for direct core.Query use.
func (db *DB) Optimizer() *core.Optimizer { return db.opt }

// Metrics snapshots the optimizer's cumulative competition telemetry:
// per-tactic win counts, abandonments, strategy switches, and the
// estimate-error histogram. Safe to call concurrently with queries.
func (db *DB) Metrics() core.MetricsSnapshot { return db.opt.Metrics().Snapshot() }

// FeedbackSnapshot reports the learned estimation correction factors,
// sorted by (table, index). Nil when Options.EnableFeedback is off.
func (db *DB) FeedbackSnapshot() []feedback.Correction { return db.fb.Snapshot() }

// PlanCacheSnapshot reports the frozen-plan cache's entries and
// hit/promotion/demotion counters. Enabled=false (and all zeroes) when
// the cache is off.
func (db *DB) PlanCacheSnapshot() PlanCacheSnapshot {
	if db.plans == nil {
		return PlanCacheSnapshot{}
	}
	return db.plans.snapshot()
}

// CreateTable registers a table.
func (db *DB) CreateTable(name string, cols ...catalog.Column) (*catalog.Table, error) {
	return db.cat.CreateTable(name, cols)
}

// CreateIndex builds an index on an existing table.
func (db *DB) CreateIndex(table, index string, cols ...string) (*catalog.Index, error) {
	tab, err := db.cat.Table(table)
	if err != nil {
		return nil, err
	}
	return tab.CreateIndex(index, cols...)
}

// DropIndex removes an index and eagerly invalidates every cached plan
// for the table: a frozen plan referencing the dropped index must never
// be replayed. (The cache's version check would also catch it lazily;
// eager invalidation keeps the window at zero.)
func (db *DB) DropIndex(table, index string) error {
	tab, err := db.cat.Table(table)
	if err != nil {
		return err
	}
	if err := tab.DropIndex(index); err != nil {
		return err
	}
	if db.plans != nil {
		db.plans.invalidateTable(table)
	}
	return nil
}

// Insert adds a row to a table. Values are converted like Binds.
func (db *DB) Insert(table string, values ...any) error {
	tab, err := db.cat.Table(table)
	if err != nil {
		return err
	}
	row := make(expr.Row, len(values))
	for i, v := range values {
		row[i], err = toValue(v)
		if err != nil {
			return err
		}
	}
	_, err = tab.Insert(row)
	return err
}

// Binds maps host-variable names to Go values (int, int64, float64,
// string, bool, or expr.Value).
type Binds map[string]any

func (b Binds) toBindings() (expr.Bindings, error) {
	if b == nil {
		return nil, nil
	}
	out := make(expr.Bindings, len(b))
	for k, v := range b {
		val, err := toValue(v)
		if err != nil {
			return nil, fmt.Errorf("engine: bind %s: %w", k, err)
		}
		out[k] = val
	}
	return out, nil
}

func toValue(v any) (expr.Value, error) {
	switch t := v.(type) {
	case nil:
		return expr.Null(), nil
	case int:
		return expr.Int(int64(t)), nil
	case int32:
		return expr.Int(int64(t)), nil
	case int64:
		return expr.Int(t), nil
	case float64:
		return expr.Float(t), nil
	case string:
		return expr.Str(t), nil
	case bool:
		return expr.Bool(t), nil
	case expr.Value:
		return t, nil
	default:
		return expr.Null(), fmt.Errorf("unsupported Go type %T", v)
	}
}

// Stmt is a prepared statement executed with dynamic optimization: each
// Query call re-plans with the run's bindings — unless the plan cache
// has promoted this statement's shape, in which case the frozen plan is
// replayed without re-running the competition.
type Stmt struct {
	db       *DB
	compiled *sql.Compiled
	shape    string // plan-cache key; "" when the cache is off
}

// Prepare parses and compiles a statement.
func (db *DB) Prepare(src string) (*Stmt, error) {
	return db.PrepareContext(context.Background(), src)
}

// PrepareContext is Prepare honoring ctx: an already-cancelled or
// expired context fails before any parse or compile work.
func (db *DB) PrepareContext(ctx context.Context, src string) (*Stmt, error) {
	stmt, err := sql.ParseContext(ctx, src)
	if err != nil {
		return nil, err
	}
	c, err := sql.CompileContext(ctx, db.cat, stmt)
	if err != nil {
		return nil, err
	}
	s := &Stmt{db: db, compiled: c}
	if db.plans != nil {
		s.shape = c.ShapeKey()
	}
	return s, nil
}

// CoreQuery returns a copy of the compiled core query (no bindings),
// for plan inspection and direct core-level execution. Nil for
// multi-table statements — use JoinQuery.
func (s *Stmt) CoreQuery() *core.Query {
	if s.compiled.Query == nil {
		return nil
	}
	q := *s.compiled.Query
	return &q
}

// JoinQuery returns a copy of the compiled multi-table query (no
// bindings), or nil for single-table statements.
func (s *Stmt) JoinQuery() *core.JoinQuery {
	if s.compiled.Join == nil {
		return nil
	}
	jq := *s.compiled.Join
	return &jq
}

// Query runs the statement with the given bindings under the dynamic
// optimizer. EXPLAIN statements return the plan description instead of
// data rows.
func (s *Stmt) Query(binds Binds) (*Result, error) {
	return s.QueryContext(context.Background(), binds)
}

// QueryContext is Query under an execution context: cancellation and
// deadline stop the retrieval within one simulated page I/O (the error
// surfaces from Result.Next), a core.WithIOBudget budget carried by
// ctx bounds the query's attributed I/O, and the admission governor
// (Options.MaxConcurrentQueries) gates the start. The admission slot
// is held until Result.Close.
func (s *Stmt) QueryContext(ctx context.Context, binds Binds) (*Result, error) {
	bb, err := binds.toBindings()
	if err != nil {
		return nil, err
	}
	release, err := s.db.admitQuery(ctx)
	if err != nil {
		return nil, err
	}
	if s.compiled.Join != nil {
		res, err := s.queryJoin(ctx, bb)
		if err != nil {
			release()
			return nil, err
		}
		res.release = release
		return res, nil
	}
	q := *s.compiled.Query
	q.Binds = bb
	ec := s.db.execCtx(ctx)
	if s.compiled.Explain {
		res, err := s.explain(ec, &q, s.compiled.Analyze)
		if err != nil {
			release()
			return nil, err
		}
		res.release = release
		return res, nil
	}
	var rows core.Rows
	var onDone func(st *core.RetrievalStats, drained bool, err error)
	if cache := s.db.plans; cache != nil {
		if plan := cache.lookup(s.shape, q.Table); plan != nil {
			// Warm path: replay the frozen plan, skipping estimation and
			// competition. Drift demotion watches the replay's I/O.
			rows = s.db.opt.RunFrozen(ec, &q, plan)
			shape := s.shape
			onDone = func(st *core.RetrievalStats, _ bool, err error) {
				if isCancellation(err) {
					return // deadline pressure is not the plan's fault
				}
				cache.observeFrozen(shape, st, err)
			}
		} else {
			// Cold path: dynamic competition, with the outcome counted
			// toward promotion once the result fully drains.
			rows = s.db.opt.RunExec(ec, &q)
			shape, tab := s.shape, q.Table
			onDone = func(st *core.RetrievalStats, drained bool, err error) {
				cache.observeDynamic(shape, tab, st, drained, err)
			}
		}
	} else {
		rows = s.db.opt.RunExec(ec, &q)
	}
	res, err := newResult(s.db, s.compiled, rows)
	if err != nil {
		rows.Close()
		release()
		return nil, err
	}
	res.release = release
	res.onDone = onDone
	return res, nil
}

// queryJoin executes a multi-table statement through the dynamic join
// path. Join plans are never frozen, so the plan cache is bypassed
// entirely (the retrieval's own trace carries the capture rejection).
func (s *Stmt) queryJoin(ctx context.Context, bb expr.Bindings) (*Result, error) {
	jq := *s.compiled.Join
	jq.Binds = bb
	ec := s.db.execCtx(ctx)
	if s.compiled.Explain {
		return s.explainJoin(ec, &jq, s.compiled.Analyze)
	}
	rows := s.db.opt.RunJoin(ec, &jq)
	res, err := newResult(s.db, s.compiled, rows)
	if err != nil {
		rows.Close()
		return nil, err
	}
	return res, nil
}

// explainJoin describes the dynamic join run as (aspect, detail) rows:
// the chosen order and operators, per-stage estimated-vs-actual
// cardinality under ANALYZE, the competition events, and the static
// optimizer's frozen join plan for contrast.
func (s *Stmt) explainJoin(ec *core.ExecCtx, jq *core.JoinQuery, analyze bool) (*Result, error) {
	var st core.RetrievalStats
	var delivered int64
	if analyze {
		rows := s.db.opt.RunJoin(ec, jq)
		for {
			_, ok, err := rows.Next()
			if err != nil {
				rows.Close()
				return nil, err
			}
			if !ok {
				break
			}
			delivered++
		}
		st = rows.Stats()
		if err := rows.Close(); err != nil {
			return nil, err
		}
	} else {
		plan, err := s.db.opt.PlanJoin(ec, jq)
		if err != nil {
			return nil, err
		}
		st.Tactic = "join"
		st.Strategy = plan.Describe(jq)
	}
	out := [][2]string{
		{"goal", jq.Goal.String()},
		{"tactic", st.Tactic},
		{"join plan", st.Strategy},
	}
	if analyze {
		out = append(out,
			[2]string{"rows", fmt.Sprintf("%d", delivered)},
			[2]string{"attributed I/O", fmt.Sprintf("%d", st.IO.IOCost())},
			[2]string{"estimation I/O", fmt.Sprintf("%d", st.EstimateIO)},
		)
		if st.SortAvoided {
			out = append(out, [2]string{"order", "plan order satisfies ORDER BY; final materialized sort skipped"})
		}
		for i, sg := range st.JoinStages {
			detail := fmt.Sprintf("%s est %.0f rows, actual %d, I/O %d", sg.Operator, sg.EstRows, sg.ActualRows, sg.IO)
			if sg.Index != "" {
				detail += " via " + sg.Index
			}
			if sg.Reoptimized {
				detail += " [re-optimized]"
			}
			out = append(out, [2]string{fmt.Sprintf("stage %d:%s", i, sg.Table), detail})
		}
		for _, ev := range st.Events {
			out = append(out, [2]string{"event:" + ev.Kind.String(), ev.String()})
		}
	}
	var staticPlan string
	if plan, err := planner.PrepareJoin(core.NewExecCtx(context.Background(), 0), jq); err == nil {
		staticPlan = plan.String()
	} else {
		staticPlan = "error: " + err.Error()
	}
	out = append(out, [2]string{"static optimizer would freeze", staticPlan})
	exp := make([]expr.Row, len(out))
	for i, kv := range out {
		exp[i] = expr.Row{expr.Str(kv[0]), expr.Str(kv[1])}
	}
	return &Result{
		rows:    nil,
		columns: []string{"aspect", "detail"},
		explain: exp,
		expStat: &st,
	}, nil
}

// isCancellation reports whether err is an execution-context unwind
// (caller cancellation, deadline, or I/O budget) rather than a fault of
// the plan or data.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, storage.ErrBudgetExceeded)
}

// explain plans the retrieval with the current bindings and reports the
// decision as (aspect, detail) rows — the typed competition events plus
// the static optimizer's frozen choice for contrast. Plain EXPLAIN
// closes the retrieval without executing the productive stages; EXPLAIN
// ANALYZE drains it to completion first, so the rows also show what
// actually happened (winning strategy, rows delivered, attributed I/O)
// and the event stream covers the whole competition.
func (s *Stmt) explain(ec *core.ExecCtx, q *core.Query, analyze bool) (*Result, error) {
	rows := s.db.opt.RunExec(ec, q)
	var delivered int64
	if analyze {
		for {
			_, ok, err := rows.Next()
			if err != nil {
				rows.Close()
				return nil, err
			}
			if !ok {
				break
			}
			delivered++
		}
	}
	st := rows.Stats()
	if err := rows.Close(); err != nil {
		return nil, err
	}
	out := [][2]string{
		{"goal", q.EffectiveGoal().String()},
		{"tactic", st.Tactic},
	}
	if analyze {
		out = append(out,
			[2]string{"strategy", st.Strategy},
			[2]string{"rows", fmt.Sprintf("%d", delivered)},
			[2]string{"attributed I/O", fmt.Sprintf("%d", st.IO.IOCost())},
		)
	}
	out = append(out, [2]string{"estimation I/O", fmt.Sprintf("%d", st.EstimateIO)})
	for _, ev := range st.Events {
		out = append(out, [2]string{"event:" + ev.Kind.String(), ev.String()})
	}
	var staticPlan string
	if plan, err := planner.Prepare(q); err == nil {
		staticPlan = plan.String()
	} else {
		staticPlan = "error: " + err.Error()
	}
	out = append(out, [2]string{"static optimizer would freeze", staticPlan})
	exp := make([]expr.Row, len(out))
	for i, kv := range out {
		exp[i] = expr.Row{expr.Str(kv[0]), expr.Str(kv[1])}
	}
	return &Result{
		rows:    nil,
		columns: []string{"aspect", "detail"},
		explain: exp,
		expStat: &st,
	}, nil
}

// Freeze produces the static-optimizer baseline for this statement. If
// binds is non-nil, the plan is chosen by estimating with those values
// ("parameter sniffing"); otherwise compile-time default selectivities
// apply. The plan survives until the table underneath it changes shape
// (an index appears or disappears) or drifts far enough from the
// statistics it was estimated against; then the next Query re-prepares
// it with the same sniffed bindings.
//
// The whole estimation runs under the table's read-lock: the planner
// descends live B-trees, and a concurrent Insert splitting a page
// mid-descent would otherwise corrupt the estimate (or worse).
func (s *Stmt) Freeze(binds Binds) (*FrozenStmt, error) {
	bb, err := binds.toBindings()
	if err != nil {
		return nil, err
	}
	if s.compiled.Join != nil {
		return nil, fmt.Errorf("engine: multi-table statements cannot be frozen; use planner.PrepareJoin for the static baseline")
	}
	tab := s.compiled.Query.Table
	unlock := tab.RLock()
	defer unlock()
	plan, err := freezePlan(s.compiled.Query, bb)
	if err != nil {
		return nil, err
	}
	return &FrozenStmt{
		db:       s.db,
		compiled: s.compiled,
		Plan:     plan,
		sniffed:  bb,
		version:  tab.Version(),
		epoch:    tab.StatsEpoch(),
		card:     tab.Cardinality(),
	}, nil
}

func freezePlan(q *core.Query, bb expr.Bindings) (*planner.Plan, error) {
	if bb != nil {
		return planner.PrepareSniffing(q, bb)
	}
	return planner.Prepare(q)
}

// FrozenStmt executes one frozen plan for every run — the traditional
// static optimizer the paper improves upon. Unlike the original, it is
// no longer allowed to hold a plan forever against a changing table:
// each Query revalidates the plan against the table's schema version
// and stats epoch, and re-prepares (with the original sniffed bindings)
// when either has moved. An unchanged table re-freezes nothing, so the
// baseline's behavior on static data is untouched.
type FrozenStmt struct {
	db       *DB
	compiled *sql.Compiled
	Plan     *planner.Plan

	mu      sync.Mutex
	sniffed expr.Bindings // bindings the plan was sniffed with (nil = defaults)
	version uint64        // table schema version at freeze
	epoch   uint64        // table stats epoch at freeze
	card    int64         // table cardinality at freeze
}

// ensureFresh returns the plan to execute, re-preparing it first if the
// table's schema changed (index created or dropped) or its statistics
// drifted past the staleness threshold since the plan was frozen.
func (f *FrozenStmt) ensureFresh() (*planner.Plan, error) {
	tab := f.compiled.Query.Table
	f.mu.Lock()
	defer f.mu.Unlock()
	if tab.Version() == f.version && !statsStale(tab, f.epoch, f.card) {
		return f.Plan, nil
	}
	unlock := tab.RLock()
	defer unlock()
	plan, err := freezePlan(f.compiled.Query, f.sniffed)
	if err != nil {
		return nil, err
	}
	f.Plan = plan
	f.version = tab.Version()
	f.epoch = tab.StatsEpoch()
	f.card = tab.Cardinality()
	return plan, nil
}

// Query runs the frozen plan with the given bindings.
func (f *FrozenStmt) Query(binds Binds) (*Result, error) {
	return f.QueryContext(context.Background(), binds)
}

// QueryContext runs the frozen plan under an execution context, with
// the same cancellation, budget, and admission semantics as
// Stmt.QueryContext.
func (f *FrozenStmt) QueryContext(ctx context.Context, binds Binds) (*Result, error) {
	bb, err := binds.toBindings()
	if err != nil {
		return nil, err
	}
	plan, err := f.ensureFresh()
	if err != nil {
		return nil, err
	}
	release, err := f.db.admitQuery(ctx)
	if err != nil {
		return nil, err
	}
	q := *f.compiled.Query
	q.Binds = bb
	rows := plan.ExecuteExec(core.NewExecCtx(ctx, 0), &q)
	res, err := newResult(f.db, f.compiled, rows)
	if err != nil {
		rows.Close()
		release()
		return nil, err
	}
	res.release = release
	return res, nil
}

// Query is Prepare + Query in one call.
func (db *DB) Query(src string, binds Binds) (*Result, error) {
	return db.QueryContext(context.Background(), src, binds)
}

// QueryContext is Prepare + Query in one call, honoring ctx throughout
// parse, compile, admission, and execution.
func (db *DB) QueryContext(ctx context.Context, src string, binds Binds) (*Result, error) {
	stmt, err := db.PrepareContext(ctx, src)
	if err != nil {
		return nil, err
	}
	return stmt.QueryContext(ctx, binds)
}

// Result iterates a statement's rows. For COUNT(*) statements the
// single result row holds the count; for EXISTS statements it holds a
// boolean; for EXPLAIN statements the rows describe the plan.
type Result struct {
	rows    core.Rows
	columns []string
	count   bool
	exists  bool
	agg     *sql.Aggregate
	counted bool
	explain []expr.Row
	expPos  int
	expStat *core.RetrievalStats

	release  func() // admission slot; nil when unadmitted
	closed   bool
	closeErr error

	// Plan-cache observation: onDone fires exactly once, from the first
	// Close, with the retrieval's final stats. drained is set when the
	// underlying retrieval was read to exhaustion — only such runs carry
	// trustworthy I/O totals for promotion. (EXISTS results stop at the
	// first row by design and therefore never promote.)
	onDone  func(st *core.RetrievalStats, drained bool, err error)
	drained bool
	iterErr error
}

func newResult(db *DB, c *sql.Compiled, rows core.Rows) (*Result, error) {
	r := &Result{rows: rows, count: c.CountStar, exists: c.Exists, agg: c.Agg}
	switch {
	case c.Exists:
		r.columns = []string{"EXISTS"}
	case c.CountStar:
		r.columns = []string{"COUNT(*)"}
	case c.Agg != nil:
		r.columns = []string{c.Agg.Kind + "(" + c.Agg.Col + ")"}
	case c.Join != nil:
		r.columns = c.JoinColumnNames()
	case c.Query.Projection == nil:
		tab := c.Query.Table
		for _, col := range tab.Columns {
			r.columns = append(r.columns, col.Name)
		}
	default:
		tab := c.Query.Table
		for _, ci := range c.Query.Projection {
			r.columns = append(r.columns, tab.Columns[ci].Name)
		}
	}
	return r, nil
}

// Columns returns the result column names.
func (r *Result) Columns() []string { return r.columns }

// Next returns the next row; ok=false at end of data.
func (r *Result) Next() (expr.Row, bool, error) {
	if r.explain != nil {
		if r.expPos >= len(r.explain) {
			return nil, false, nil
		}
		row := r.explain[r.expPos]
		r.expPos++
		return row, true, nil
	}
	if r.exists {
		if r.counted {
			return nil, false, nil
		}
		r.counted = true
		_, ok, err := r.rows.Next()
		if err != nil {
			r.iterErr = err
			return nil, false, err
		}
		return expr.Row{expr.Bool(ok)}, true, nil
	}
	if r.agg != nil {
		if r.counted {
			return nil, false, nil
		}
		r.counted = true
		v, err := r.aggregate()
		if err != nil {
			r.iterErr = err
			return nil, false, err
		}
		r.drained = true
		return expr.Row{v}, true, nil
	}
	if r.count {
		if r.counted {
			return nil, false, nil
		}
		var n int64
		for {
			_, ok, err := r.rows.Next()
			if err != nil {
				r.iterErr = err
				return nil, false, err
			}
			if !ok {
				break
			}
			n++
		}
		r.counted = true
		r.drained = true
		return expr.Row{expr.Int(n)}, true, nil
	}
	row, ok, err := r.rows.Next()
	switch {
	case err != nil:
		r.iterErr = err
	case !ok:
		r.drained = true
	}
	return row, ok, err
}

// Close releases the retrieval and the admission slot. It is
// idempotent: every call after the first is a no-op returning the
// first call's error, and the admission slot is released exactly once
// no matter how many paths (All's error handling, deferred Close,
// explicit Close) reach it.
func (r *Result) Close() error {
	if r.closed {
		return r.closeErr
	}
	r.closed = true
	if r.rows != nil {
		r.closeErr = r.rows.Close()
	}
	if r.onDone != nil && r.rows != nil {
		st := r.rows.Stats()
		err := r.iterErr
		if err == nil {
			err = r.closeErr
		}
		r.onDone(&st, r.drained, err)
	}
	if r.release != nil {
		r.release()
	}
	return r.closeErr
}

// Stats reports what the executor did. For EXPLAIN results these are
// the stats of the explained retrieval (complete under ANALYZE, the
// planning prefix otherwise).
func (r *Result) Stats() core.RetrievalStats {
	if r.rows == nil {
		if r.expStat != nil {
			return *r.expStat
		}
		return core.RetrievalStats{Tactic: "explain"}
	}
	return r.rows.Stats()
}

// All drains the result into a slice and closes it.
func (r *Result) All() ([]expr.Row, error) {
	var out []expr.Row
	for {
		row, ok, err := r.Next()
		if err != nil {
			r.Close()
			return nil, err
		}
		if !ok {
			break
		}
		out = append(out, row)
	}
	return out, r.Close()
}

// Bindings converts Binds to expression bindings (exported for harness
// code that drives core-level execution with the same values).
func (b Binds) Bindings() (expr.Bindings, error) { return b.toBindings() }

// Exec runs a DML statement (INSERT INTO ... VALUES, DELETE FROM ...)
// and returns the number of rows affected. Deletions evaluate the
// restriction over a sequential scan (DML is outside the paper's
// retrieval-optimization scope) and maintain every index.
func (db *DB) Exec(src string, binds Binds) (int, error) {
	stmt, err := sql.ParseStatement(src)
	if err != nil {
		return 0, err
	}
	bb, err := binds.toBindings()
	if err != nil {
		return 0, err
	}
	switch t := stmt.(type) {
	case *sql.InsertStmt:
		return db.execInsert(t, bb)
	case *sql.DeleteStmt:
		return db.execDelete(t, bb)
	case *sql.UpdateStmt:
		return db.execUpdate(t, bb)
	default:
		return 0, fmt.Errorf("engine: Exec expects INSERT, UPDATE, or DELETE; use Query for SELECT")
	}
}

func (db *DB) execInsert(stmt *sql.InsertStmt, bb expr.Bindings) (int, error) {
	tab, err := db.cat.Table(stmt.Table)
	if err != nil {
		return 0, err
	}
	inserted := 0
	for _, nodes := range stmt.Rows {
		row := make(expr.Row, len(nodes))
		for i, nd := range nodes {
			switch v := nd.(type) {
			case sql.LitNode:
				row[i] = v.V
			case sql.ParamNode:
				val, ok := bb[v.Name]
				if !ok {
					return inserted, fmt.Errorf("engine: unbound parameter :%s", v.Name)
				}
				row[i] = val
			default:
				return inserted, fmt.Errorf("engine: unsupported VALUES entry %T", nd)
			}
		}
		if _, err := tab.Insert(row); err != nil {
			return inserted, err
		}
		inserted++
	}
	return inserted, nil
}

func (db *DB) execDelete(stmt *sql.DeleteStmt, bb expr.Bindings) (int, error) {
	tab, err := db.cat.Table(stmt.Table)
	if err != nil {
		return 0, err
	}
	restriction, err := sql.CompileExpr(db.cat, stmt.Table, stmt.Where)
	if err != nil {
		return 0, err
	}
	// Collect matching RIDs first, then delete, so the scan never
	// observes its own modifications.
	var victims []storage.RID
	cur := tab.Heap.Cursor()
	for {
		rec, rid, ok, err := cur.Next()
		if err != nil {
			return 0, err
		}
		if !ok {
			break
		}
		row, err := expr.DecodeRow(rec)
		if err != nil {
			return 0, err
		}
		keep, err := expr.EvalPred(restriction, row, bb)
		if err != nil {
			return 0, err
		}
		if keep {
			victims = append(victims, rid)
		}
	}
	for i, rid := range victims {
		if err := tab.Delete(rid); err != nil {
			return i, err
		}
	}
	return len(victims), nil
}

// aggregate drains the retrieval computing the requested aggregate.
// NULLs are skipped; an empty input yields NULL (and 0 for SUM over an
// integer column, matching common SQL engines is NOT attempted — NULL
// keeps the semantics simple and explicit).
func (r *Result) aggregate() (expr.Value, error) {
	var (
		sum      float64
		sawInt   = true
		min, max expr.Value
		count    int64
	)
	for {
		row, ok, err := r.rows.Next()
		if err != nil {
			return expr.Null(), err
		}
		if !ok {
			break
		}
		v := row[0]
		if v.IsNull() {
			continue
		}
		f, numOK := v.AsFloat()
		if !numOK {
			return expr.Null(), fmt.Errorf("engine: %s over non-numeric value %s", r.agg.Kind, v)
		}
		if v.T != expr.TypeInt {
			sawInt = false
		}
		sum += f
		if count == 0 || expr.Compare(v, min) < 0 {
			min = v
		}
		if count == 0 || expr.Compare(v, max) > 0 {
			max = v
		}
		count++
	}
	if count == 0 {
		return expr.Null(), nil
	}
	switch r.agg.Kind {
	case "SUM":
		if sawInt {
			return expr.Int(int64(sum)), nil
		}
		return expr.Float(sum), nil
	case "AVG":
		return expr.Float(sum / float64(count)), nil
	case "MIN":
		return min, nil
	case "MAX":
		return max, nil
	default:
		return expr.Null(), fmt.Errorf("engine: unknown aggregate %s", r.agg.Kind)
	}
}

func (db *DB) execUpdate(stmt *sql.UpdateStmt, bb expr.Bindings) (int, error) {
	tab, err := db.cat.Table(stmt.Table)
	if err != nil {
		return 0, err
	}
	restriction, err := sql.CompileExpr(db.cat, stmt.Table, stmt.Where)
	if err != nil {
		return 0, err
	}
	type set struct {
		col int
		val expr.Value
	}
	sets := make([]set, len(stmt.Sets))
	for i, sc := range stmt.Sets {
		ci, err := tab.ColumnIndex(sc.Col)
		if err != nil {
			return 0, err
		}
		var v expr.Value
		switch t := sc.Value.(type) {
		case sql.LitNode:
			v = t.V
		case sql.ParamNode:
			val, ok := bb[t.Name]
			if !ok {
				return 0, fmt.Errorf("engine: unbound parameter :%s", t.Name)
			}
			v = val
		}
		sets[i] = set{col: ci, val: v}
	}
	// Collect matching RIDs first so the scan never observes its own
	// modifications (an updated row must not match again).
	var victims []storage.RID
	cur := tab.Heap.Cursor()
	for {
		rec, rid, ok, err := cur.Next()
		if err != nil {
			return 0, err
		}
		if !ok {
			break
		}
		row, err := expr.DecodeRow(rec)
		if err != nil {
			return 0, err
		}
		keep, err := expr.EvalPred(restriction, row, bb)
		if err != nil {
			return 0, err
		}
		if keep {
			victims = append(victims, rid)
		}
	}
	for i, rid := range victims {
		row, err := tab.Fetch(rid)
		if err != nil {
			return i, err
		}
		newRow := row.Clone()
		for _, sc := range sets {
			newRow[sc.col] = sc.val
		}
		if err := tab.Update(rid, newRow); err != nil {
			return i, err
		}
	}
	return len(victims), nil
}
