package engine

import (
	"strings"
	"testing"

	"rdbdyn/internal/expr"
)

func TestExistsStatement(t *testing.T) {
	db := newDB(t, 5000)
	res, err := db.Query("EXISTS(SELECT * FROM FAMILIES WHERE AGE = 42)", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Columns(); len(got) != 1 || got[0] != "EXISTS" {
		t.Fatalf("columns = %v", got)
	}
	row, ok, err := res.Next()
	if err != nil || !ok {
		t.Fatalf("Next: %v %v", ok, err)
	}
	if !row[0].Truth() {
		t.Fatal("AGE=42 exists in the fixture")
	}
	if _, ok, _ := res.Next(); ok {
		t.Fatal("EXISTS must yield exactly one row")
	}
	res.Close()

	res2, err := db.Query("EXISTS(SELECT * FROM FAMILIES WHERE AGE = 4200)", nil)
	if err != nil {
		t.Fatal(err)
	}
	row, _, err = res2.Next()
	if err != nil {
		t.Fatal(err)
	}
	if row[0].Truth() {
		t.Fatal("AGE=4200 must not exist")
	}
	res2.Close()
}

func TestExistsInfersFastFirst(t *testing.T) {
	db := newDB(t, 100)
	stmt, err := db.Prepare("EXISTS(SELECT * FROM FAMILIES WHERE AGE > 5)")
	if err != nil {
		t.Fatal(err)
	}
	q := stmt.CoreQuery()
	if q.EffectiveGoal().String() != "FAST FIRST" {
		t.Fatalf("EXISTS goal = %v", q.EffectiveGoal())
	}
	if q.Limit != 1 {
		t.Fatalf("EXISTS limit = %d, want 1", q.Limit)
	}
}

func TestExistsIsCheap(t *testing.T) {
	db := newDB(t, 20000)
	db.Pool().EvictAll()
	db.Pool().ResetStats()
	res, err := db.Query("EXISTS(SELECT * FROM FAMILIES WHERE AGE >= 10)", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.All(); err != nil {
		t.Fatal(err)
	}
	tab, _ := db.Catalog().Table("FAMILIES")
	if c := db.Pool().Stats().IOCost(); c > int64(tab.Pages())/4 {
		t.Fatalf("EXISTS over a common predicate cost %d I/Os (pages %d)", c, tab.Pages())
	}
}

func TestExplainStatement(t *testing.T) {
	db := newDB(t, 5000)
	res, err := db.Query("EXPLAIN SELECT * FROM FAMILIES WHERE AGE = 42", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Columns(); len(got) != 2 || got[0] != "aspect" {
		t.Fatalf("columns = %v", got)
	}
	rows, err := res.All()
	if err != nil {
		t.Fatal(err)
	}
	var all strings.Builder
	for _, r := range rows {
		all.WriteString(r[0].S + "=" + r[1].S + "\n")
	}
	out := all.String()
	for _, want := range []string{"goal=TOTAL TIME", "tactic=", "static optimizer would freeze"} {
		if !strings.Contains(out, want) {
			t.Fatalf("explain output missing %q:\n%s", want, out)
		}
	}
}

func TestExplainDoesNotExecute(t *testing.T) {
	db := newDB(t, 20000)
	db.Pool().EvictAll()
	db.Pool().ResetStats()
	res, err := db.Query("EXPLAIN SELECT * FROM FAMILIES WHERE AGE >= 0", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.All(); err != nil {
		t.Fatal(err)
	}
	// Only planning I/O (estimation, cluster sampling), no scan.
	tab, _ := db.Catalog().Table("FAMILIES")
	if c := db.Pool().Stats().IOCost(); c > int64(tab.Pages())/4 {
		t.Fatalf("EXPLAIN cost %d I/Os — it must not execute the scan", c)
	}
}

func TestExplainExists(t *testing.T) {
	db := newDB(t, 1000)
	res, err := db.Query("EXPLAIN EXISTS(SELECT * FROM FAMILIES WHERE AGE = 1)", nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := res.All()
	if err != nil || len(rows) == 0 {
		t.Fatalf("explain exists: %d rows, %v", len(rows), err)
	}
	found := false
	for _, r := range rows {
		if r[0].S == "goal" && r[1].S == "FAST FIRST" {
			found = true
		}
	}
	if !found {
		t.Fatal("EXPLAIN EXISTS must show the fast-first goal")
	}
}

// explainRows drains an EXPLAIN result into aspect=detail strings.
func explainRows(t *testing.T, res *Result) []string {
	t.Helper()
	rows, err := res.All()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r[0].S + "=" + r[1].S
	}
	return out
}

func containsAspect(rows []string, prefix string) bool {
	for _, r := range rows {
		if strings.HasPrefix(r, prefix) {
			return true
		}
	}
	return false
}

// TestExplainAnalyzeFlipsStrategyWithBindings is the acceptance test
// for EXPLAIN ANALYZE: the same prepared statement, executed with a
// selective and a non-selective binding, must show different run-time
// behavior in its typed event stream — the selective run completes its
// Jscan, the wide run switches to Tscan mid-flight (experiment T4.A).
func TestExplainAnalyzeFlipsStrategyWithBindings(t *testing.T) {
	db := newDB(t, 20000)
	stmt, err := db.Prepare("EXPLAIN ANALYZE SELECT * FROM FAMILIES WHERE AGE >= :A1")
	if err != nil {
		t.Fatal(err)
	}

	selRes, err := stmt.Query(Binds{"A1": 99})
	if err != nil {
		t.Fatal(err)
	}
	sel := explainRows(t, selRes)
	if !containsAspect(sel, "event:tactic-chosen=") {
		t.Fatalf("selective run missing tactic-chosen event:\n%s", strings.Join(sel, "\n"))
	}
	if containsAspect(sel, "event:strategy-switch=") {
		t.Fatalf("selective run must not switch strategies:\n%s", strings.Join(sel, "\n"))
	}
	if st := selRes.Stats(); !strings.Contains(st.Strategy, "Jscan[AGE_IX]") {
		t.Fatalf("selective strategy = %q, want the index scan to win", st.Strategy)
	}

	wideRes, err := stmt.Query(Binds{"A1": 0})
	if err != nil {
		t.Fatal(err)
	}
	wide := explainRows(t, wideRes)
	if !containsAspect(wide, "event:tactic-chosen=") {
		t.Fatalf("wide run missing tactic-chosen event:\n%s", strings.Join(wide, "\n"))
	}
	if !containsAspect(wide, "event:strategy-switch=") {
		t.Fatalf("wide run must switch to Tscan:\n%s", strings.Join(wide, "\n"))
	}
	st := wideRes.Stats()
	if !strings.Contains(st.Strategy, "Tscan") {
		t.Fatalf("wide strategy = %q, want Tscan", st.Strategy)
	}
	if !containsAspect(wide, "rows=20000") {
		t.Fatalf("ANALYZE must report the delivered row count:\n%s", strings.Join(wide, "\n"))
	}
	for _, aspect := range []string{"strategy=", "attributed I/O=", "estimation I/O="} {
		if !containsAspect(wide, aspect) {
			t.Fatalf("ANALYZE output missing %q:\n%s", aspect, strings.Join(wide, "\n"))
		}
	}

	// The cumulative metrics saw both runs and the mid-flight switch.
	snap := db.Metrics()
	if snap.Queries < 2 || snap.StrategySwitches < 1 {
		t.Fatalf("metrics = %+v, want >=2 queries and >=1 strategy switch", snap)
	}
}

// TestExplainWithoutAnalyzeStaysCheap pins the plain-EXPLAIN contract
// after the ANALYZE addition: no strategy/rows rows, no execution.
func TestExplainWithoutAnalyzeStaysCheap(t *testing.T) {
	db := newDB(t, 5000)
	res, err := db.Query("EXPLAIN SELECT * FROM FAMILIES WHERE AGE >= 0", nil)
	if err != nil {
		t.Fatal(err)
	}
	rows := explainRows(t, res)
	if containsAspect(rows, "rows=") || containsAspect(rows, "attributed I/O=") {
		t.Fatalf("plain EXPLAIN must not carry ANALYZE rows:\n%s", strings.Join(rows, "\n"))
	}
}

func TestUnionThroughSQL(t *testing.T) {
	db := newDB(t, 10000)
	if _, err := db.CreateIndex("FAMILIES", "ID_IX", "ID"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("SELECT ID, AGE FROM FAMILIES WHERE ID < 20 OR AGE = 77", nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := res.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	seen := map[string]bool{}
	for _, r := range rows {
		if !(r[0].I < 20 || r[1].I == 77) {
			t.Fatalf("row %v violates the OR restriction", r)
		}
		key := r[0].String()
		if seen[key] {
			t.Fatalf("duplicate ID %s delivered", key)
		}
		seen[key] = true
	}
	if !strings.Contains(res.Stats().Strategy, "Uscan") {
		t.Fatalf("expected Uscan, got %q (trace %v)", res.Stats().Strategy, res.Stats().Trace)
	}
}

func TestParseExistsErrors(t *testing.T) {
	db := newDB(t, 10)
	for _, src := range []string{
		"EXISTS SELECT * FROM FAMILIES",
		"EXISTS(SELECT * FROM FAMILIES",
		"EXISTS(SELECT COUNT(*) FROM FAMILIES)",
		"EXPLAIN",
	} {
		if _, err := db.Prepare(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestExistsRowValue(t *testing.T) {
	db := newDB(t, 100)
	res, err := db.Query("EXISTS(SELECT * FROM FAMILIES WHERE ID = 5)", nil)
	if err != nil {
		t.Fatal(err)
	}
	row, ok, err := res.Next()
	if err != nil || !ok || row[0].T != expr.TypeBool {
		t.Fatalf("exists row: %v %v %v", row, ok, err)
	}
}
