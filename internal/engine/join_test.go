package engine

import (
	"math/rand"
	"strings"
	"testing"

	"rdbdyn/internal/catalog"
	"rdbdyn/internal/core"
	"rdbdyn/internal/expr"
)

// newJoinDB builds a CUST/ORD pair with referential join keys.
func newJoinDB(t *testing.T, nCust, nOrd int, opts Options) *DB {
	t.Helper()
	db := Open(opts)
	if _, err := db.CreateTable("CUST",
		catalog.Column{Name: "ID", Type: expr.TypeInt},
		catalog.Column{Name: "SEG", Type: expr.TypeInt},
		catalog.Column{Name: "NAME", Type: expr.TypeString},
	); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("ORD",
		catalog.Column{Name: "ID", Type: expr.TypeInt},
		catalog.Column{Name: "CUST", Type: expr.TypeInt},
		catalog.Column{Name: "QTY", Type: expr.TypeInt},
	); err != nil {
		t.Fatal(err)
	}
	for _, ix := range [][3]string{
		{"CUST", "CUST_ID_IX", "ID"},
		{"ORD", "ORD_CUST_IX", "CUST"},
	} {
		if _, err := db.CreateIndex(ix[0], ix[1], ix[2]); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < nCust; i++ {
		if err := db.Insert("CUST", i, int(rng.Int63n(4)), "c"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < nOrd; i++ {
		if err := db.Insert("ORD", i, int(rng.Int63n(int64(nCust))), 1+int(rng.Int63n(9))); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestEngineJoinSQL(t *testing.T) {
	db := newJoinDB(t, 200, 800, Options{})
	res, err := db.Query(
		"SELECT CUST.NAME, ORD.QTY FROM CUST JOIN ORD ON CUST.ID = ORD.CUST WHERE SEG = 0 AND QTY >= :Q",
		Binds{"Q": 5})
	if err != nil {
		t.Fatal(err)
	}
	if cols := res.Columns(); len(cols) != 2 || cols[0] != "CUST.NAME" || cols[1] != "ORD.QTY" {
		t.Fatalf("columns = %v", cols)
	}
	rows, err := res.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("join returned no rows")
	}
	for _, r := range rows {
		if r[1].I < 5 {
			t.Fatalf("row %v violates QTY restriction", r)
		}
	}
	st := res.Stats()
	if st.Tactic != "join" || len(st.JoinStages) != 2 {
		t.Fatalf("stats = tactic %q, %d stages", st.Tactic, len(st.JoinStages))
	}

	// Cross-check the count against two single-table scans.
	var want int64
	cres, err := db.Query("SELECT ID FROM CUST WHERE SEG = 0", nil)
	if err != nil {
		t.Fatal(err)
	}
	crows, err := cres.All()
	if err != nil {
		t.Fatal(err)
	}
	seg0 := map[int64]bool{}
	for _, r := range crows {
		seg0[r[0].I] = true
	}
	ores, err := db.Query("SELECT CUST, QTY FROM ORD WHERE QTY >= 5", nil)
	if err != nil {
		t.Fatal(err)
	}
	orows, err := ores.All()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range orows {
		if seg0[r[0].I] {
			want++
		}
	}
	if int64(len(rows)) != want {
		t.Fatalf("join delivered %d rows, independent count says %d", len(rows), want)
	}
}

func TestEngineJoinCountStar(t *testing.T) {
	db := newJoinDB(t, 100, 400, Options{})
	res, err := db.Query("SELECT COUNT(*) FROM CUST JOIN ORD ON CUST.ID = ORD.CUST", nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := res.All()
	if err != nil {
		t.Fatal(err)
	}
	// Every order references an existing customer.
	if len(rows) != 1 || rows[0][0].I != 400 {
		t.Fatalf("COUNT(*) = %v", rows)
	}
}

func TestEngineJoinExplainAnalyze(t *testing.T) {
	db := newJoinDB(t, 100, 400, Options{})
	res, err := db.Query(
		"EXPLAIN ANALYZE SELECT * FROM CUST JOIN ORD ON CUST.ID = ORD.CUST WHERE SEG = 1", nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := res.All()
	if err != nil {
		t.Fatal(err)
	}
	aspects := map[string]string{}
	var stageRows int
	for _, r := range rows {
		aspects[r[0].S] = r[1].S
		if strings.HasPrefix(r[0].S, "stage ") {
			stageRows++
		}
	}
	if aspects["tactic"] != "join" {
		t.Fatalf("tactic aspect = %q", aspects["tactic"])
	}
	if aspects["join plan"] == "" {
		t.Fatalf("no join plan aspect in %v", aspects)
	}
	if stageRows != 2 {
		t.Fatalf("want 2 per-stage rows, got %d (%v)", stageRows, aspects)
	}
	if _, ok := aspects["static optimizer would freeze"]; !ok {
		t.Fatalf("missing static contrast row")
	}
	// Stage rows carry est-vs-actual.
	for k, v := range aspects {
		if strings.HasPrefix(k, "stage ") && (!strings.Contains(v, "est ") || !strings.Contains(v, "actual ")) {
			t.Fatalf("stage row %q = %q lacks est/actual", k, v)
		}
	}
}

func TestEngineJoinPlainExplainDoesNotExecute(t *testing.T) {
	db := newJoinDB(t, 100, 400, Options{})
	res, err := db.Query("EXPLAIN SELECT * FROM CUST JOIN ORD ON CUST.ID = ORD.CUST", nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := res.All()
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, r := range rows {
		if r[0].S == "join plan" && r[1].S != "" {
			found = true
		}
	}
	if !found {
		t.Fatalf("EXPLAIN output lacks join plan: %v", rows)
	}
	if got := db.Metrics().JoinQueries; got != 0 {
		t.Fatalf("plain EXPLAIN executed %d join queries", got)
	}
}

// TestEngineJoinNeverFrozen runs a join repeatedly through a DB with
// the plan cache on: the shape must never promote, the capture
// rejection must be counted, and single-table promotion must keep
// working alongside.
func TestEngineJoinNeverFrozen(t *testing.T) {
	db := newJoinDB(t, 100, 400, Options{PlanCache: PlanCacheConfig{Enable: true, PromoteAfter: 2}})
	stmt, err := db.Prepare("SELECT * FROM CUST JOIN ORD ON CUST.ID = ORD.CUST WHERE SEG = 0")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		res, err := stmt.Query(nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := res.All(); err != nil {
			t.Fatal(err)
		}
	}
	snap := db.PlanCacheSnapshot()
	if snap.Frozen != 0 {
		t.Fatalf("join shape froze: %+v", snap)
	}
	m := db.Metrics()
	if m.JoinQueries != 5 || m.PlanCaptureRejected < 5 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.JoinOrdersChosen != 5 {
		t.Fatalf("join orders chosen = %d", m.JoinOrdersChosen)
	}

	// The same DB still promotes single-table shapes.
	single, err := db.Prepare("SELECT * FROM CUST WHERE ID >= 90")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		res, err := single.Query(nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := res.All(); err != nil {
			t.Fatal(err)
		}
	}
	if snap := db.PlanCacheSnapshot(); snap.Frozen == 0 {
		t.Fatalf("single-table shape failed to freeze alongside joins: %+v", snap)
	}
}

func TestEngineJoinFreezeRejected(t *testing.T) {
	db := newJoinDB(t, 10, 20, Options{})
	stmt, err := db.Prepare("SELECT * FROM CUST JOIN ORD ON CUST.ID = ORD.CUST")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stmt.Freeze(nil); err == nil {
		t.Fatal("Freeze accepted a join statement")
	}
	if q := stmt.CoreQuery(); q != nil {
		t.Fatalf("CoreQuery on a join = %+v", q)
	}
	if jq := stmt.JoinQuery(); jq == nil || len(jq.Tables) != 2 {
		t.Fatalf("JoinQuery = %+v", jq)
	}
}

// TestEngineSelfJoinAliases runs an aliased self-join end to end: two
// occurrences of CUST joined on ID, so every seg-0 customer pairs with
// itself exactly once.
func TestEngineSelfJoinAliases(t *testing.T) {
	db := newJoinDB(t, 120, 300, Options{})
	res, err := db.Query("SELECT a.ID, b.NAME FROM CUST a JOIN CUST AS b ON a.ID = b.ID WHERE a.SEG = 0", nil)
	if err != nil {
		t.Fatal(err)
	}
	if cols := res.Columns(); len(cols) != 2 || cols[0] != "a.ID" || cols[1] != "b.NAME" {
		t.Fatalf("columns = %v", cols)
	}
	rows, err := res.All()
	if err != nil {
		t.Fatal(err)
	}
	cres, err := db.Query("SELECT COUNT(*) FROM CUST WHERE SEG = 0", nil)
	if err != nil {
		t.Fatal(err)
	}
	crows, err := cres.All()
	if err != nil {
		t.Fatal(err)
	}
	if want := crows[0][0].I; int64(len(rows)) != want {
		t.Fatalf("self-join delivered %d rows, want %d", len(rows), want)
	}
	// Stage names carry the aliases.
	st := res.Stats()
	names := map[string]bool{}
	for _, sg := range st.JoinStages {
		names[sg.Table] = true
	}
	if !names["a"] || !names["b"] {
		t.Fatalf("stage tables = %v, want aliases a and b", names)
	}
	// Unaliased self-joins stay rejected, with an alias hint.
	if _, err := db.Query("SELECT * FROM CUST JOIN CUST ON CUST.ID = CUST.SEG", nil); err == nil ||
		!strings.Contains(err.Error(), "alias") {
		t.Fatalf("unaliased self-join error = %v", err)
	}
}

// TestEngineJoinPicksHashJoin joins on columns with no usable probe
// index: the per-stage competition must run an hj stage and count it.
func TestEngineJoinPicksHashJoin(t *testing.T) {
	db := newJoinDB(t, 60, 200, Options{})
	res, err := db.Query("SELECT CUST.ID, ORD.ID FROM CUST JOIN ORD ON CUST.SEG = ORD.QTY", nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := res.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("join returned no rows")
	}
	var ranHJ bool
	for _, sg := range res.Stats().JoinStages {
		if sg.Operator == core.JoinOpHJ {
			ranHJ = true
		}
	}
	if !ranHJ {
		t.Fatalf("no hj stage in %s", res.Stats().Strategy)
	}
	if m := db.Metrics(); m.JoinOperatorWins[core.JoinOpHJ] == 0 {
		t.Fatalf("hj win not counted: %+v", m.JoinOperatorWins)
	}
}

// newSortAvoidDB builds the fat-table schema whose cheapest ORDER BY
// plan is order-preserving (see core's sortAvoidFixture).
func newSortAvoidDB(t *testing.T, opts Options) *DB {
	t.Helper()
	db := Open(opts)
	if _, err := db.CreateTable("CUST",
		catalog.Column{Name: "ID", Type: expr.TypeInt},
		catalog.Column{Name: "SEG", Type: expr.TypeInt},
		catalog.Column{Name: "PAD", Type: expr.TypeString},
	); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("ORD",
		catalog.Column{Name: "ID", Type: expr.TypeInt},
		catalog.Column{Name: "CUST", Type: expr.TypeInt},
		catalog.Column{Name: "PAD", Type: expr.TypeString},
	); err != nil {
		t.Fatal(err)
	}
	for _, ix := range [][3]string{{"CUST", "CUST_ID_IX", "ID"}, {"ORD", "ORD_CUST_IX", "CUST"}} {
		if _, err := db.CreateIndex(ix[0], ix[1], ix[2]); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(11))
	pad := strings.Repeat("p", 400)
	for i := 0; i < 300; i++ {
		if err := db.Insert("CUST", i, i%5, pad); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 900; i++ {
		if err := db.Insert("ORD", i, int(rng.Int63n(300)), pad); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// TestEngineJoinOrderBySortAvoided runs an ORDER BY join through SQL on
// twin databases, one with sort avoidance disabled: the aware run must
// skip the materialized sort and deliver the baseline's rows in the
// same order.
func TestEngineJoinOrderBySortAvoided(t *testing.T) {
	src := "SELECT CUST.ID, ORD.ID FROM CUST JOIN ORD ON CUST.ID = ORD.CUST WHERE CUST.ID < 12 ORDER BY CUST.ID"
	aware := newSortAvoidDB(t, Options{})
	base := newSortAvoidDB(t, Options{Optimizer: core.Config{DisableJoinSortAvoidance: true}})
	ares, err := aware.Query(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	arows, err := ares.All()
	if err != nil {
		t.Fatal(err)
	}
	bres, err := base.Query(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	brows, err := bres.All()
	if err != nil {
		t.Fatal(err)
	}
	if !ares.Stats().SortAvoided {
		t.Fatalf("aware run sorted anyway: %s", ares.Stats().Strategy)
	}
	if bres.Stats().SortAvoided {
		t.Fatal("baseline avoided the sort with avoidance disabled")
	}
	if len(arows) == 0 || len(arows) != len(brows) {
		t.Fatalf("aware %d rows, baseline %d", len(arows), len(brows))
	}
	for i := range arows {
		for c := range arows[i] {
			if expr.Compare(arows[i][c], brows[i][c]) != 0 {
				t.Fatalf("row %d differs: %v vs %v", i, arows[i], brows[i])
			}
		}
	}
	if m := aware.Metrics(); m.JoinSortsAvoided == 0 {
		t.Fatalf("sorts-avoided metric = %+v", m)
	}
}

// TestEngineJoinFeedbackLoop runs the same join twice with feedback on:
// the second run's driver estimate must be corrected by the first run's
// observed actuals.
func TestEngineJoinFeedbackLoop(t *testing.T) {
	db := newJoinDB(t, 200, 800, Options{EnableFeedback: true})
	src := "SELECT * FROM CUST JOIN ORD ON CUST.ID = ORD.CUST WHERE SEG = 0"
	for i := 0; i < 2; i++ {
		res, err := db.Query(src, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := res.All(); err != nil {
			t.Fatal(err)
		}
	}
	if len(db.FeedbackSnapshot()) == 0 {
		t.Fatal("join runs recorded no feedback corrections")
	}
}
