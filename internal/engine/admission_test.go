package engine

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rdbdyn/internal/catalog"
	"rdbdyn/internal/core"
	"rdbdyn/internal/expr"
)

func newDBOpts(t *testing.T, rows int, opts Options) *DB {
	t.Helper()
	db := Open(opts)
	_, err := db.CreateTable("FAMILIES",
		catalog.Column{Name: "ID", Type: expr.TypeInt},
		catalog.Column{Name: "AGE", Type: expr.TypeInt},
		catalog.Column{Name: "CITY", Type: expr.TypeString},
		catalog.Column{Name: "INCOME", Type: expr.TypeFloat},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex("FAMILIES", "AGE_IX", "AGE"); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	cities := []string{"nashua", "boston", "keene", "dover"}
	for i := 0; i < rows; i++ {
		err := db.Insert("FAMILIES",
			i, int(rng.Int63n(100)), cities[rng.Intn(len(cities))], float64(rng.Intn(90000)))
		if err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// TestAdmissionRejectsWhenSaturated pins the single execution slot with
// an open Result and expects the next arrival to fail fast with
// ErrAdmissionQueueFull (queue depth 0 = no waiting), recorded in the
// metrics; closing the Result frees the slot for the next query.
func TestAdmissionRejectsWhenSaturated(t *testing.T) {
	db := newDBOpts(t, 2000, Options{MaxConcurrentQueries: 1})
	ctx := context.Background()
	res, err := db.QueryContext(ctx, "SELECT * FROM FAMILIES WHERE AGE >= 10", nil)
	if err != nil {
		t.Fatal(err)
	}
	if n := db.InFlightQueries(); n != 1 {
		t.Fatalf("InFlightQueries = %d, want 1", n)
	}
	if _, err := db.QueryContext(ctx, "SELECT * FROM FAMILIES WHERE AGE >= 50", nil); !errors.Is(err, ErrAdmissionQueueFull) {
		t.Fatalf("second query err = %v, want ErrAdmissionQueueFull", err)
	}
	if m := db.Metrics(); m.AdmissionRejected != 1 {
		t.Fatalf("AdmissionRejected = %d, want 1", m.AdmissionRejected)
	}
	if err := res.Close(); err != nil {
		t.Fatal(err)
	}
	if n := db.InFlightQueries(); n != 0 {
		t.Fatalf("InFlightQueries after Close = %d, want 0", n)
	}
	res2, err := db.QueryContext(ctx, "SELECT * FROM FAMILIES WHERE AGE >= 50", nil)
	if err != nil {
		t.Fatalf("query after slot release: %v", err)
	}
	if _, err := res2.All(); err != nil {
		t.Fatal(err)
	}
}

// TestAdmissionQueueTimeout joins the wait queue and expects
// ErrAdmissionTimeout after the configured wait, while a context that
// expires first surfaces as a plain deadline (not an admission
// rejection).
func TestAdmissionQueueTimeout(t *testing.T) {
	db := newDBOpts(t, 2000, Options{
		MaxConcurrentQueries: 1,
		AdmissionQueueDepth:  4,
		AdmissionTimeout:     20 * time.Millisecond,
	})
	ctx := context.Background()
	res, err := db.QueryContext(ctx, "SELECT * FROM FAMILIES WHERE AGE >= 10", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	if _, err := db.QueryContext(ctx, "SELECT * FROM FAMILIES WHERE AGE >= 50", nil); !errors.Is(err, ErrAdmissionTimeout) {
		t.Fatalf("queued query err = %v, want ErrAdmissionTimeout", err)
	}
	if m := db.Metrics(); m.AdmissionRejected != 1 {
		t.Fatalf("AdmissionRejected = %d, want 1", m.AdmissionRejected)
	}
	// A context deadline shorter than the admission timeout wins and is
	// not an admission rejection.
	shortCtx, cancel := context.WithTimeout(ctx, time.Millisecond)
	defer cancel()
	db2 := newDBOpts(t, 10, Options{
		MaxConcurrentQueries: 1,
		AdmissionQueueDepth:  4,
		AdmissionTimeout:     10 * time.Second,
	})
	res2, err := db2.QueryContext(ctx, "SELECT * FROM FAMILIES WHERE AGE >= 0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer res2.Close()
	if _, err := db2.QueryContext(shortCtx, "SELECT * FROM FAMILIES WHERE AGE >= 0", nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ctx-bounded wait err = %v, want context.DeadlineExceeded", err)
	}
	if m := db2.Metrics(); m.AdmissionRejected != 0 {
		t.Fatalf("context expiry counted as admission rejection: %+v", m)
	}
}

// TestAdmissionUnderConcurrency hammers a limit-4 database with 32
// goroutines (run under -race in CI) and asserts the in-flight count
// never exceeds the limit, every waiter either runs or fails with an
// admission error, and no slot leaks.
func TestAdmissionUnderConcurrency(t *testing.T) {
	const (
		limit      = 4
		goroutines = 32
	)
	db := newDBOpts(t, 5000, Options{
		MaxConcurrentQueries: limit,
		AdmissionQueueDepth:  goroutines,
		AdmissionTimeout:     30 * time.Second,
	})
	stmt, err := db.Prepare("SELECT * FROM FAMILIES WHERE AGE >= :A1")
	if err != nil {
		t.Fatal(err)
	}
	var (
		wg         sync.WaitGroup
		completed  atomic.Int64
		rejected   atomic.Int64
		violations atomic.Int64
	)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			res, err := stmt.QueryContext(context.Background(), Binds{"A1": int64(g % 90)})
			if err != nil {
				if errors.Is(err, ErrAdmissionQueueFull) || errors.Is(err, ErrAdmissionTimeout) {
					rejected.Add(1)
					return
				}
				t.Errorf("goroutine %d: %v", g, err)
				return
			}
			for {
				if n := db.InFlightQueries(); n > limit {
					violations.Add(1)
				}
				_, ok, err := res.Next()
				if err != nil {
					t.Errorf("goroutine %d: Next: %v", g, err)
					break
				}
				if !ok {
					break
				}
			}
			if err := res.Close(); err != nil {
				t.Errorf("goroutine %d: Close: %v", g, err)
				return
			}
			completed.Add(1)
		}(g)
	}
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("in-flight exceeded the limit %d times", v)
	}
	if completed.Load()+rejected.Load() != goroutines {
		t.Fatalf("accounted for %d of %d goroutines", completed.Load()+rejected.Load(), goroutines)
	}
	if n := db.InFlightQueries(); n != 0 {
		t.Fatalf("InFlightQueries after drain = %d, want 0", n)
	}
	if n := db.Pool().PinnedPages(); n != 0 {
		t.Fatalf("%d pins leaked", n)
	}
}

// TestResultCloseIdempotent closes a Result repeatedly: the slot must
// be released exactly once (a double release would either underflow
// the in-flight count or block draining an empty semaphore).
func TestResultCloseIdempotent(t *testing.T) {
	db := newDBOpts(t, 500, Options{MaxConcurrentQueries: 1})
	res, err := db.QueryContext(context.Background(), "SELECT * FROM FAMILIES WHERE AGE >= 0", nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := res.Close(); err != nil {
			t.Fatalf("Close #%d: %v", i+1, err)
		}
	}
	if n := db.InFlightQueries(); n != 0 {
		t.Fatalf("InFlightQueries = %d, want 0", n)
	}
	// The slot is genuinely free: the next query admits immediately.
	res2, err := db.QueryContext(context.Background(), "SELECT COUNT(*) FROM FAMILIES", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res2.All(); err != nil {
		t.Fatal(err)
	}
}

// TestAllErrorPathReleasesSlot fails a query mid-drain (budget
// exhaustion inside All, which closes internally) and then closes
// again by hand: one slot release, zero leaked pins, budget counted.
func TestAllErrorPathReleasesSlot(t *testing.T) {
	db := newDBOpts(t, 5000, Options{MaxConcurrentQueries: 1})
	db.Pool().EvictAll() // budgets meter pool misses; start cold
	ctx := core.WithIOBudget(context.Background(), 5)
	res, err := db.QueryContext(ctx, "SELECT * FROM FAMILIES WHERE INCOME >= 0", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.All(); !errors.Is(err, core.ErrBudgetExceeded) {
		t.Fatalf("All err = %v, want ErrBudgetExceeded", err)
	}
	if err := res.Close(); err != nil {
		t.Fatalf("Close after failed All: %v", err)
	}
	if n := db.InFlightQueries(); n != 0 {
		t.Fatalf("InFlightQueries = %d, want 0", n)
	}
	if n := db.Pool().PinnedPages(); n != 0 {
		t.Fatalf("%d pins leaked", n)
	}
	if m := db.Metrics(); m.QueriesBudgetExceeded != 1 {
		t.Fatalf("QueriesBudgetExceeded = %d, want 1: %+v", m.QueriesBudgetExceeded, m)
	}
}

// TestExplainAnalyzeAbandonedReleasesSlot covers the rows==nil Result
// shape: an EXPLAIN ANALYZE result abandoned after partial reads must
// still release its admission slot on (repeated) Close.
func TestExplainAnalyzeAbandonedReleasesSlot(t *testing.T) {
	db := newDBOpts(t, 1000, Options{MaxConcurrentQueries: 1})
	res, err := db.QueryContext(context.Background(), "EXPLAIN ANALYZE SELECT * FROM FAMILIES WHERE AGE >= 30", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Read one plan row, then abandon.
	if _, ok, err := res.Next(); err != nil || !ok {
		t.Fatalf("explain row: ok=%v err=%v", ok, err)
	}
	res.Close()
	res.Close()
	if n := db.InFlightQueries(); n != 0 {
		t.Fatalf("InFlightQueries = %d, want 0", n)
	}
	res2, err := db.QueryContext(context.Background(), "SELECT COUNT(*) FROM FAMILIES", nil)
	if err != nil {
		t.Fatalf("slot not released by explain result: %v", err)
	}
	res2.Close()
}

// TestQueryContextCancelMidStream cancels between Next calls at the
// engine surface: the error must be context.Canceled, the cancellation
// must be visible in the metrics and the typed event stream, and no
// pin may survive Close.
func TestQueryContextCancelMidStream(t *testing.T) {
	db := newDBOpts(t, 20000, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res, err := db.QueryContext(ctx, "SELECT * FROM FAMILIES WHERE AGE >= 1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := res.Next(); err != nil || !ok {
		t.Fatalf("first row: ok=%v err=%v", ok, err)
	}
	cancel()
	_, _, err = res.Next()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Next err = %v, want context.Canceled", err)
	}
	st := res.Stats()
	found := false
	for _, ev := range st.Events {
		if ev.Kind == core.EvQueryCancelled {
			found = true
		}
	}
	if !found {
		t.Fatalf("no query-cancelled event; trace: %v", st.Trace)
	}
	if err := res.Close(); err != nil {
		t.Fatal(err)
	}
	if n := db.Pool().PinnedPages(); n != 0 {
		t.Fatalf("%d pins leaked", n)
	}
	if m := db.Metrics(); m.QueriesCancelled != 1 {
		t.Fatalf("QueriesCancelled = %d, want 1", m.QueriesCancelled)
	}
}

// TestFrozenQueryContextBudget drives the frozen-plan engine path
// under a budget.
func TestFrozenQueryContextBudget(t *testing.T) {
	db := newDBOpts(t, 5000, Options{})
	stmt, err := db.Prepare("SELECT * FROM FAMILIES WHERE INCOME >= :A1")
	if err != nil {
		t.Fatal(err)
	}
	frozen, err := stmt.Freeze(nil)
	if err != nil {
		t.Fatal(err)
	}
	db.Pool().EvictAll()
	ctx := core.WithIOBudget(context.Background(), 5)
	res, err := frozen.QueryContext(ctx, Binds{"A1": 0.0})
	if err != nil {
		t.Fatal(err)
	}
	_, err = res.All()
	if !errors.Is(err, core.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	res.Close()
	if n := db.Pool().PinnedPages(); n != 0 {
		t.Fatalf("%d pins leaked", n)
	}
}

// TestPrepareContextExpired covers the parse/compile checkpoints.
func TestPrepareContextExpired(t *testing.T) {
	db := newDBOpts(t, 10, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.PrepareContext(ctx, "SELECT * FROM FAMILIES"); !errors.Is(err, context.Canceled) {
		t.Fatalf("PrepareContext err = %v, want context.Canceled", err)
	}
	if _, err := db.QueryContext(ctx, "SELECT * FROM FAMILIES", nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("QueryContext err = %v, want context.Canceled", err)
	}
}
