package estimate

import (
	"bytes"
	"math"

	"rdbdyn/internal/catalog"
)

// DefaultJoinDistinctFraction is the fallback distinct-value ratio for
// a join column with no index to sample: the classic 10% guess, the
// same magic number the static System R baseline uses for equality
// selectivity.
const DefaultJoinDistinctFraction = 0.1

// JoinCPURowsPerIO converts join CPU work into the simulated-I/O
// currency: this many row visits (hash insertions, probe comparisons,
// sort comparisons) cost as much as one page access. The calibration is
// deliberately CPU-respecting — coarse enough that heap-sized I/O still
// dominates small queries, fine enough that a nested loop's quadratic
// comparison count and a materialized sort's n·log n both register at
// bench scales. Only join planning uses the conversion; single-table
// retrievals and every paper experiment remain pure-I/O.
const JoinCPURowsPerIO = 64

// JoinCPUCost prices rows row visits in the simulated-I/O currency.
func JoinCPUCost(rows float64) float64 {
	if rows <= 0 {
		return 0
	}
	return rows / JoinCPURowsPerIO
}

// JoinSortCost prices the final materialized sort of a join's output —
// n·log2(n) comparisons in the shared CPU currency. This is the bar an
// order-preserving plan must beat: it wins whenever its extra I/O stays
// within the avoided sort's cost.
func JoinSortCost(rows float64) float64 {
	if rows < 2 {
		return 0
	}
	return JoinCPUCost(rows * math.Log2(rows))
}

// distinctSampleRanks is how many evenly-ranked entries DistinctEstimate
// reads. Deterministic (no randomness), so twin databases produce
// identical estimates.
const distinctSampleRanks = 16

// DistinctEstimate estimates the number of distinct leading-column
// values in an index by reading a few evenly-ranked entries: if evenly
// spaced probes already collide, duplication is heavy and the distinct
// count scales down proportionally. The probes are planning arithmetic
// (untracked), like partition planning.
func DistinctEstimate(ix *catalog.Index) float64 {
	n := ix.Tree.Len()
	if n <= 1 {
		return float64(n)
	}
	k := int64(distinctSampleRanks)
	if k > n {
		k = n
	}
	var prev []byte
	distinct := 0
	for i := int64(0); i < k; i++ {
		rank := i * (n - 1) / (k - 1)
		key, _, err := ix.Tree.EntryAt(rank)
		if err != nil {
			return float64(n) * DefaultJoinDistinctFraction
		}
		if prev == nil || !bytes.Equal(key, prev) {
			distinct++
		}
		prev = key
	}
	d := float64(n) * float64(distinct) / float64(k)
	if d < 1 {
		d = 1
	}
	return d
}

// JoinTable is the estimator's view of one FROM table for join
// ordering: a corrected filtered-cardinality estimate plus per-column
// distinct estimates for the columns it joins on.
type JoinTable struct {
	Name string
	// Card is the estimated cardinality after the table's local
	// restriction (feedback-corrected when inexact).
	Card float64
	// Rows is the table's total live row count.
	Rows float64
	// Pages is the heap page count (the table's Tscan cost).
	Pages float64
	// Distinct maps a join column position to its estimated distinct
	// value count (missing columns fall back to
	// DefaultJoinDistinctFraction of Rows).
	Distinct map[int]float64
}

// distinctOn returns the distinct estimate for a join column.
func (t JoinTable) distinctOn(col int) float64 {
	if d, ok := t.Distinct[col]; ok && d >= 1 {
		return d
	}
	d := t.Rows * DefaultJoinDistinctFraction
	if d < 1 {
		d = 1
	}
	return d
}

// JoinEdge is one equi-join predicate tables[T1].C1 = tables[T2].C2
// (table indices into the JoinTable slice, table-local columns).
type JoinEdge struct{ T1, C1, T2, C2 int }

// JoinStageEst is one step of a greedy join order: the table joined in
// at this stage and the estimated intermediate cardinality afterwards.
type JoinStageEst struct {
	Table   int
	OutRows float64
}

// stageOut estimates the output of joining table t (with filtered
// cardinality card) into an intermediate of cur rows: the textbook
// cur·card/d with d the largest distinct count among the connecting
// join columns, or a cross product when no edge connects.
func stageOut(tables []JoinTable, edges []JoinEdge, inSet func(int) bool, t int, cur float64) (out float64, connected bool) {
	d := 0.0
	for _, e := range edges {
		switch {
		case e.T1 == t && inSet(e.T2):
			if dd := tables[t].distinctOn(e.C1); dd > d {
				d = dd
			}
		case e.T2 == t && inSet(e.T1):
			if dd := tables[t].distinctOn(e.C2); dd > d {
				d = dd
			}
		}
	}
	if d == 0 {
		return cur * tables[t].Card, false
	}
	out = cur * tables[t].Card / d
	if out < 1 {
		out = 1
	}
	return out, true
}

// GreedyJoinOrder picks a full join order: the table with the smallest
// filtered cardinality drives, then GreedyJoinRest adds the rest. Ties
// break toward the lower table index, so the order is deterministic.
func GreedyJoinOrder(tables []JoinTable, edges []JoinEdge) []JoinStageEst {
	if len(tables) == 0 {
		return nil
	}
	driver := 0
	for i := 1; i < len(tables); i++ {
		if tables[i].Card < tables[driver].Card {
			driver = i
		}
	}
	first := JoinStageEst{Table: driver, OutRows: tables[driver].Card}
	return append([]JoinStageEst{first},
		GreedyJoinRest(tables, edges, []int{driver}, first.OutRows)...)
}

// GreedyJoinRest orders the tables not yet joined (chosen lists those
// already in the intermediate, whose current cardinality is curRows):
// at each step it adds the table minimizing the estimated stage output,
// preferring tables connected by a join edge over cross products. This
// is also the mid-flight re-optimization entry: after a stage's actual
// cardinality diverges, the executor re-orders the remaining tables
// from the observed curRows.
func GreedyJoinRest(tables []JoinTable, edges []JoinEdge, chosen []int, curRows float64) []JoinStageEst {
	in := make([]bool, len(tables))
	for _, t := range chosen {
		in[t] = true
	}
	inSet := func(t int) bool { return in[t] }
	var out []JoinStageEst
	for {
		best, bestOut, bestConn := -1, 0.0, false
		for t := range tables {
			if in[t] {
				continue
			}
			o, conn := stageOut(tables, edges, inSet, t, curRows)
			if best == -1 || (conn && !bestConn) || (conn == bestConn && o < bestOut) {
				best, bestOut, bestConn = t, o, conn
			}
		}
		if best == -1 {
			return out
		}
		in[best] = true
		curRows = bestOut
		out = append(out, JoinStageEst{Table: best, OutRows: bestOut})
	}
}
