package estimate

import (
	"math"
	"math/rand"
	"testing"

	"rdbdyn/internal/catalog"
	"rdbdyn/internal/expr"
	"rdbdyn/internal/storage"
)

// buildTable creates a FAMILIES-like table with AGE uniform in [0,100)
// and CITY with a skewed distribution, indexed on both.
func buildTable(t *testing.T, rows int) (*catalog.Table, *catalog.Index, *catalog.Index) {
	t.Helper()
	c := catalog.New(storage.NewBufferPool(storage.NewDisk(4096), 0))
	tb, err := c.CreateTable("FAMILIES", []catalog.Column{
		{Name: "ID", Type: expr.TypeInt},
		{Name: "AGE", Type: expr.TypeInt},
		{Name: "CITY", Type: expr.TypeInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	ageIx, err := tb.CreateIndex("AGE_IX", "AGE")
	if err != nil {
		t.Fatal(err)
	}
	cityIx, err := tb.CreateIndex("CITY_IX", "CITY")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < rows; i++ {
		age := rng.Int63n(100)
		city := int64(0)
		if rng.Intn(10) == 0 {
			city = 1 + rng.Int63n(99) // 10% spread over 99 cities
		}
		if _, err := tb.Insert(expr.Row{expr.Int(int64(i)), expr.Int(age), expr.Int(city)}); err != nil {
			t.Fatal(err)
		}
	}
	return tb, ageIx, cityIx
}

func ageCol(t *testing.T, tb *catalog.Table) int {
	t.Helper()
	i, err := tb.ColumnIndex("AGE")
	if err != nil {
		t.Fatal(err)
	}
	return i
}

func TestAppraiseOrdersByEstimatedRIDs(t *testing.T) {
	tb, _, _ := buildTable(t, 20000)
	age := ageCol(t, tb)
	cityIdx, _ := tb.ColumnIndex("CITY")
	// AGE in [0,50) matches ~50%; CITY = 77 matches ~0.1%.
	restriction := expr.NewAnd(
		expr.NewCmp(expr.LT, expr.Col(age, "AGE"), expr.Lit(expr.Int(50))),
		expr.NewCmp(expr.EQ, expr.Col(cityIdx, "CITY"), expr.Lit(expr.Int(77))),
	)
	res, err := Appraise(tb.Indexes, restriction, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.EmptyRange {
		t.Fatal("range is not empty")
	}
	if len(res.Estimates) == 0 {
		t.Fatal("no estimates")
	}
	first := res.Estimates[0]
	if first.Index.Name != "CITY_IX" {
		t.Fatalf("most selective index should come first, got %s", first.Index.Name)
	}
	if first.RIDs >= res.Estimates[len(res.Estimates)-1].RIDs {
		t.Fatal("estimates not ascending")
	}
}

func TestAppraiseEmptyRangeCancelsRetrieval(t *testing.T) {
	tb, _, _ := buildTable(t, 5000)
	age := ageCol(t, tb)
	restriction := expr.NewAnd(
		expr.NewCmp(expr.GT, expr.Col(age, "AGE"), expr.Lit(expr.Int(10))),
		expr.NewCmp(expr.LT, expr.Col(age, "AGE"), expr.Lit(expr.Int(5))),
	)
	res, err := Appraise(tb.Indexes, restriction, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.EmptyRange {
		t.Fatal("contradictory restriction must cancel retrieval")
	}
}

func TestAppraiseExactEmptyRangeDetected(t *testing.T) {
	tb, _, _ := buildTable(t, 5000)
	age := ageCol(t, tb)
	// AGE = 200 is syntactically fine but matches nothing; the descent
	// reaches a leaf and counts zero.
	restriction := expr.NewCmp(expr.EQ, expr.Col(age, "AGE"), expr.Lit(expr.Int(200)))
	res, err := Appraise(tb.Indexes, restriction, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.EmptyRange {
		t.Fatal("exact zero count must cancel retrieval")
	}
}

func TestAppraiseShortRangeShortcut(t *testing.T) {
	tb, _, _ := buildTable(t, 20000)
	idCol, _ := tb.ColumnIndex("ID")
	if _, err := tb.CreateIndex("ID_IX", "ID"); err != nil {
		t.Fatal(err)
	}
	// ID = 7 matches exactly one row; probing ID_IX first (via
	// PreviousOrder) must shortcut before estimating the other indexes.
	restriction := expr.NewCmp(expr.EQ, expr.Col(idCol, "ID"), expr.Lit(expr.Int(7)))
	opts := DefaultOptions()
	opts.PreviousOrder = []string{"ID_IX"}
	res, err := Appraise(tb.Indexes, restriction, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Shortcut {
		t.Fatal("point lookup must shortcut estimation")
	}
	if len(res.Estimates) != 1 {
		t.Fatalf("shortcut should stop after 1 estimate, got %d", len(res.Estimates))
	}
	if res.Estimates[0].Index.Name != "ID_IX" {
		t.Fatalf("previous-order probe ignored: %s", res.Estimates[0].Index.Name)
	}
}

func TestAppraiseHostVariableChangesEstimate(t *testing.T) {
	tb, ageIx, _ := buildTable(t, 20000)
	age := ageCol(t, tb)
	restriction := expr.NewCmp(expr.GE, expr.Col(age, "AGE"), expr.Var("A1"))
	// The descent estimator is designed for small ranges; for huge
	// ranges the requirement is only that it clearly signals "big"
	// (so the optimizer prefers Tscan) and preserves ordering.
	sel := func(a1 int64) (float64, bool) {
		res, err := Appraise([]*catalog.Index{ageIx}, restriction, expr.Bindings{"A1": expr.Int(a1)}, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if res.EmptyRange {
			return 0, true
		}
		return res.Estimates[0].Selectivity(), false
	}
	s0, e0 := sel(0)
	s50, e50 := sel(50)
	s90, e90 := sel(90)
	_, e200 := sel(200)
	if e0 || e50 || e90 {
		t.Fatal("non-empty ranges flagged empty")
	}
	if !e200 {
		t.Fatal("A1=200 must be detected as empty")
	}
	if !(s0 > s50 && s50 > s90) {
		t.Fatalf("selectivities must fall as A1 rises: %v, %v, %v", s0, s50, s90)
	}
	if s0 < 0.4 {
		t.Fatalf("A1=0 selectivity %v should read as 'large'", s0)
	}
	if math.Abs(s90-0.1) > 0.15 {
		t.Fatalf("A1=90 selectivity %v, want ~0.1", s90)
	}
}

func TestAppraiseUnboundParamYieldsFullRange(t *testing.T) {
	tb, ageIx, _ := buildTable(t, 2000)
	age := ageCol(t, tb)
	restriction := expr.NewCmp(expr.GE, expr.Col(age, "AGE"), expr.Var("MISSING"))
	res, err := Appraise([]*catalog.Index{ageIx}, restriction, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimates[0].Sargable != 0 {
		t.Fatal("unbound parameter must not be sargable")
	}
	if res.Estimates[0].Lo != nil || res.Estimates[0].Hi != nil {
		t.Fatal("bounds should be open on both sides")
	}
}

func TestEstimationMuchCheaperThanRetrieval(t *testing.T) {
	tb, _, _ := buildTable(t, 50000)
	age := ageCol(t, tb)
	restriction := expr.NewCmp(expr.GE, expr.Col(age, "AGE"), expr.Lit(expr.Int(10)))
	res, err := Appraise(tb.Indexes, restriction, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Estimation cost is bounded by two edge descents per index,
	// vastly below the table's page count.
	if res.TotalCost > int64(10*len(tb.Indexes)) {
		t.Fatalf("estimation cost %d too high", res.TotalCost)
	}
	if res.TotalCost >= int64(tb.Pages())/10 {
		t.Fatalf("estimation cost %d not small vs table pages %d", res.TotalCost, tb.Pages())
	}
}

func TestSampleSelectivityRefinesNonRangeRestriction(t *testing.T) {
	tb, ageIx, _ := buildTable(t, 20000)
	age := ageCol(t, tb)
	// Restriction: AGE >= 0 (full range) AND AGE divisible check cannot
	// be expressed; instead use AGE >= 50 evaluated by sampling within
	// the full range: matching fraction ~0.5.
	restriction := expr.NewCmp(expr.GE, expr.Col(age, "AGE"), expr.Lit(expr.Int(50)))
	rng := rand.New(rand.NewSource(6))
	rids, err := SampleSelectivity(ageIx, expr.FullRange(), restriction, nil, rng, 400)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(tb.Cardinality()) * 0.5
	if math.Abs(rids-want)/want > 0.2 {
		t.Fatalf("sampled estimate %v, want ~%v", rids, want)
	}
}

func TestSampleSelectivityEmptyRange(t *testing.T) {
	_, ageIx, _ := buildTable(t, 1000)
	rng := rand.New(rand.NewSource(6))
	rg := expr.Range{
		Lo: expr.Bound{Value: expr.Int(500), Inclusive: true, Present: true},
		Hi: expr.Bound{Value: expr.Int(600), Present: true},
	}
	rids, err := SampleSelectivity(ageIx, rg, nil, nil, rng, 100)
	if err != nil || rids != 0 {
		t.Fatalf("empty range: %v, %v", rids, err)
	}
}

func TestCostModelShapes(t *testing.T) {
	m := CostModel{TablePages: 1000, TableRows: 50000, ClusterRatio: 0}
	if m.TscanCost() != 1000 {
		t.Fatalf("Tscan = %v", m.TscanCost())
	}
	// Unclustered, unsorted: ~1 I/O per row.
	if got := m.FetchCost(100, false); math.Abs(got-100) > 1 {
		t.Fatalf("unclustered fetch = %v", got)
	}
	// Sorted RID list: bounded by distinct pages.
	if got := m.FetchCost(500000, true); got > 1001 {
		t.Fatalf("sorted fetch cost %v exceeds table pages", got)
	}
	// Clustered: rows/page cheaper.
	mc := CostModel{TablePages: 1000, TableRows: 50000, ClusterRatio: 1}
	if got := mc.FetchCost(100, false); got > 3 {
		t.Fatalf("clustered fetch = %v", got)
	}
	// Monotonicity of Cardenas estimate.
	if m.DistinctPages(10) >= m.DistinctPages(10000) {
		t.Fatal("DistinctPages must grow")
	}
	if m.DistinctPages(1e9) > 1000.0001 {
		t.Fatal("DistinctPages bounded by table pages")
	}
	// Scan costs include the descent.
	if m.SscanCost(0, 100, 3) < 3 {
		t.Fatal("Sscan must include descent cost")
	}
	if m.FscanCost(100, 100, 3) <= m.SscanCost(100, 100, 3) {
		t.Fatal("Fscan must cost more than Sscan for the same RIDs")
	}
	if m.JscanFinalCost(0) != 0 {
		t.Fatal("empty final stage is free")
	}
}

func TestCostModelClusterRatioClamped(t *testing.T) {
	m := CostModel{TablePages: 100, TableRows: 1000, ClusterRatio: 7}
	if got := m.FetchCost(10, false); got > 10 {
		t.Fatalf("clamped clustered fetch = %v", got)
	}
	m.ClusterRatio = -3
	if got := m.FetchCost(10, false); math.Abs(got-10) > 0.1 {
		t.Fatalf("clamped unclustered fetch = %v", got)
	}
}

func TestAppraiseCorrectionScalesInexactEstimates(t *testing.T) {
	tb, _, _ := buildTable(t, 20000)
	age := ageCol(t, tb)
	// A wide AGE range yields an inexact (extrapolated) estimate on a
	// 20k-row table.
	restriction := expr.NewCmp(expr.LT, expr.Col(age, "AGE"), expr.Lit(expr.Int(50)))
	base, err := Appraise(tb.Indexes, restriction, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var baseAge IndexEstimate
	for _, e := range base.Estimates {
		if e.Index.Name == "AGE_IX" {
			baseAge = e
		}
	}
	if baseAge.Index == nil || baseAge.Exact {
		t.Fatalf("want an inexact AGE_IX estimate, got %+v", baseAge)
	}
	if baseAge.Corrected {
		t.Fatal("no correction requested, estimate flagged corrected")
	}
	opts := DefaultOptions()
	opts.Correction = func(index string) float64 {
		if index == "AGE_IX" {
			return 2
		}
		return 1
	}
	corr, err := Appraise(tb.Indexes, restriction, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range corr.Estimates {
		if e.Index.Name != "AGE_IX" {
			if e.Corrected {
				t.Fatalf("%s corrected by neutral factor", e.Index.Name)
			}
			continue
		}
		if !e.Corrected {
			t.Fatal("AGE_IX estimate not flagged corrected")
		}
		if math.Abs(e.RIDs-2*baseAge.RIDs) > 1e-9 {
			t.Fatalf("corrected RIDs = %v, want %v", e.RIDs, 2*baseAge.RIDs)
		}
	}
}

func TestAppraiseCorrectionLeavesExactEstimatesAlone(t *testing.T) {
	tb, _, _ := buildTable(t, 20000)
	cityIdx, _ := tb.ColumnIndex("CITY")
	// CITY = 77 is rare: the edge descent resolves it exactly.
	restriction := expr.NewCmp(expr.EQ, expr.Col(cityIdx, "CITY"), expr.Lit(expr.Int(77)))
	opts := DefaultOptions()
	opts.Correction = func(string) float64 { return 8 }
	res, err := Appraise(tb.Indexes, restriction, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Estimates {
		if e.Exact && e.Corrected {
			t.Fatalf("exact estimate for %s was corrected", e.Index.Name)
		}
	}
}
